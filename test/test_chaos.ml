(* Live-cluster chaos: the Section 6 recovery machinery exercised over
   real sockets under a deterministic fault schedule, with a lock-file
   witness for mutual exclusion. Also hosts the node-runner robustness
   regressions (timer precision, with_lock timeout drain) that need a
   real runtime rather than the simulator. *)

open Dmutex
module RCluster = Netkit.Cluster.Make (Resilient) (Wire.Protocol_codec)
module BCluster = Netkit.Cluster.Make (Basic) (Wire.Protocol_codec)
module PV = Dmutex_store.Protocol_view

let chaos_seed =
  match Sys.getenv_opt "DMUTEX_CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 20260807)
  | None -> 20260807

let log_dir = Sys.getenv_opt "DMUTEX_CHAOS_LOG_DIR"

let soak_cfg n =
  {
    (Resilient.config ~token_timeout:0.6 ~enquiry_timeout:0.3
       ~arbiter_timeout:0.9 ~n ())
    with
    Types.Config.t_collect = 0.02;
    t_forward = 0.02;
    retry_timeout = 0.3;
  }

(* Mutual-exclusion witness shared by every node of the in-process
   cluster: entering the CS creates a lock file with O_EXCL, leaving
   unlinks it. A second creation while the file exists is a safety
   violation observed by the operating system, not by protocol
   introspection. *)
module Witness = struct
  type t = { path : string; mu : Mutex.t; mutable violations : int }

  let create name =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dmutex-%s-%d.lock" name (Unix.getpid ()))
    in
    (try Unix.unlink path with _ -> ());
    { path; mu = Mutex.create (); violations = 0 }

  (* Returns whether we own the file (and so must [leave]). *)
  let enter t =
    match Unix.openfile t.path [ O_CREAT; O_EXCL; O_WRONLY ] 0o600 with
    | fd ->
        Unix.close fd;
        true
    | exception Unix.Unix_error (EEXIST, _, _) ->
        Mutex.lock t.mu;
        t.violations <- t.violations + 1;
        Mutex.unlock t.mu;
        false

  let leave t = try Unix.unlink t.path with _ -> ()

  let violations t =
    Mutex.lock t.mu;
    let v = t.violations in
    Mutex.unlock t.mu;
    v

  let dispose t = try Unix.unlink t.path with _ -> ()
end

(* One structured trace sink per soak when logs are collected: CS
   entries/exits, recovery milestones and liveness suspicions from
   every node land in one ring, flushed as JSONL next to the soak
   log so CI uploads it with the rest of the artifacts. *)
let make_trace () =
  match log_dir with
  | None -> None
  | Some _ -> Some (Dmutex_obs.Events.create ~capacity:16384 ())

let write_soak_logs ?(name = "chaos-soak") ?trace cluster ~witness_violations
    ~served =
  match log_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
      (match trace with
      | Some sink ->
          Dmutex_obs.Events.flush_file sink
            (Filename.concat dir (name ^ "-trace.jsonl"))
      | None -> ());
      let oc = open_out (Filename.concat dir (name ^ ".log")) in
      Printf.fprintf oc "seed: %d\n" chaos_seed;
      Printf.fprintf oc "witness violations: %d\n" witness_violations;
      Array.iteri (fun i s -> Printf.fprintf oc "node %d served: %d\n" i s) served;
      List.iter
        (fun (at, msg) -> Printf.fprintf oc "chaos @ %6.2fs: %s\n" at msg)
        (RCluster.chaos_log cluster);
      List.iter
        (fun (name, k) -> Printf.fprintf oc "note %s: %d\n" name k)
        (RCluster.notes cluster);
      Printf.fprintf oc "metrics: %s\n"
        (Format.asprintf "%a" Netkit.Transport.pp_metrics
           (RCluster.metrics cluster));
      Printf.fprintf oc "report: %s\n"
        (Format.asprintf "%a" Dmutex_obs.Report.pp
           (RCluster.obs_report cluster));
      List.iter
        (fun (lock, r) ->
          Printf.fprintf oc "report[%s]: %s\n" lock
            (Format.asprintf "%a" Dmutex_obs.Report.pp r))
        (RCluster.obs_report_by_lock cluster);
      for i = 0 to RCluster.n cluster - 1 do
        Printf.fprintf oc "node %d: %s | notes %s\n" i
          (Format.asprintf "%a" Netkit.Transport.pp_metrics
             (RCluster.Node.metrics (RCluster.node cluster i)))
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%s:%d" k v)
                (RCluster.Node.notes (RCluster.node cluster i))))
      done;
      for i = 0 to RCluster.n cluster - 1 do
        List.iter
          (fun lock ->
            let st = RCluster.Node.state ~lock (RCluster.node cluster i) in
            Printf.fprintf oc
              "state[%s] %s watching=%b elec=%d epoch=%d susp=%b\n" lock
              (Format.asprintf "%a" Protocol.pp_state st)
              st.Protocol.watching st.Protocol.election st.Protocol.token_epoch
              st.Protocol.suspended)
          (RCluster.locks cluster)
      done;
      close_out oc

(* Role selectors shared by the crash and restart drills: each takes
   the cluster size and then matches the [Crash_where]/[Restart_where]
   selector signature. Single-role selectors judge the first hosted
   lock; [select_multi_token_holder] spans the whole namespace. *)

let select_token_holder n ~states ~locks ~live =
  let lock = List.hd locks in
  List.find_opt
    (fun i ->
      live i
      &&
      let st : Protocol.state = states i ~lock in
      st.Protocol.token <> None
      && match st.Protocol.role with Protocol.Normal -> true | _ -> false)
    (List.init n Fun.id)

let select_watched_arbiter n ~states ~locks ~live =
  let lock = List.hd locks in
  let ids = List.init n Fun.id in
  match
    List.find_opt
      (fun w ->
        live w
        &&
        let st : Protocol.state = states w ~lock in
        st.Protocol.watching && live st.Protocol.arbiter
        && st.Protocol.arbiter <> w)
      ids
  with
  | Some w -> Some (states w ~lock).Protocol.arbiter
  | None ->
      (* Fallback: the node currently acting as arbiter. *)
      List.find_opt
        (fun i ->
          live i
          &&
          match (states i ~lock).Protocol.role with
          | Protocol.Normal -> false
          | _ -> true)
        ids

(* An arbiter caught mid-collection: an ENQUIRY round is in flight on
   it right now. Falls back to whoever is arbitering when the window
   is missed. *)
let select_collecting_arbiter n ~states ~locks ~live =
  match
    List.find_opt
      (fun i -> live i && (states i ~lock:(List.hd locks)).Protocol.recovery <> None)
      (List.init n Fun.id)
  with
  | Some i -> Some i
  | None -> select_watched_arbiter n ~states ~locks ~live

(* A node holding the tokens of at least two locks at once — the
   victim the sharded restart drill is after: its crash entangles
   several instances' recovery machinery in one outage. *)
let select_multi_token_holder n ~states ~locks ~live =
  List.find_opt
    (fun i ->
      live i
      && List.length
           (List.filter
              (fun lock -> (states i ~lock).Protocol.token <> None)
              locks)
         >= 2)
    (List.init n Fun.id)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with _ -> ())
  | _ -> ( try Unix.unlink path with _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Where restart drills keep their per-node state directories: under
   DMUTEX_CHAOS_STATE_DIR when set (CI uploads it on failure), else a
   throwaway under the system temp dir. *)
let soak_state_root name =
  match Sys.getenv_opt "DMUTEX_CHAOS_STATE_DIR" with
  | Some d -> Filename.concat d name
  | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dmutex-%s-%d" name (Unix.getpid ()))

let has_sub s sub =
  let n = String.length s and k = String.length sub in
  let rec scan i = i + k <= n && (String.sub s i k = sub || scan (i + 1)) in
  scan 0

(* The headline drill: 5 nodes over real sockets, each hosting TWO
   independent locks over the shared transport; the schedule applies
   7% loss, crash-stops the token holder of the first lock, then the
   arbiter watched by its previous arbiter, partitions the cluster and
   heals it. The survivors must keep taking both locks with zero
   witness violations on either, and the Section 6 notes must show a
   two-phase invalidation and a PROBE takeover actually fired. *)
let test_chaos_soak () =
  let n = 5 in
  let locks = [ "alpha"; "beta" ] in
  let trace = make_trace () in
  let cluster =
    RCluster.launch ~base_port:8501 ~seed:chaos_seed ~locks
      ~heartbeat_period:0.2 ~suspect_timeout:0.8 ?trace (soak_cfg n)
  in
  let fault = RCluster.fault cluster in
  (* One O_EXCL witness per lock: exclusion must hold within each lock,
     while the two locks are routinely held concurrently. *)
  let witnesses =
    List.map (fun l -> (l, Witness.create ("chaos-soak-" ^ l))) locks
  in
  let served = Array.make n 0 in
  let served_mu = Mutex.create () in
  let stop = ref false in
  let worker i lock () =
    let witness = List.assoc lock witnesses in
    let rng = Random.State.make [| chaos_seed; i; 0x50a1; Hashtbl.hash lock |] in
    while (not !stop) && not (Netkit.Fault.is_crashed fault i) do
      (match
         RCluster.Node.with_lock ~timeout:3.0 ~lock (RCluster.node cluster i)
           (fun () ->
             let owned = Witness.enter witness in
             Thread.delay 0.002;
             if owned then Witness.leave witness)
       with
      | Some () ->
          Mutex.lock served_mu;
          served.(i) <- served.(i) + 1;
          Mutex.unlock served_mu
      | None -> ());
      Thread.delay (0.005 +. Random.State.float rng 0.03)
    done
  in
  let threads =
    List.concat_map
      (fun lock -> List.init n (fun i -> Thread.create (worker i lock) ()))
      locks
  in
  RCluster.chaos cluster
    [
      (0.0, RCluster.Fault (Netkit.Fault.Set_loss 0.07));
      (1.5, RCluster.Crash_where ("token-holder", select_token_holder n));
      (4.5, RCluster.Crash_where ("watched-arbiter", select_watched_arbiter n));
      (7.5, RCluster.Fault (Netkit.Fault.Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ]));
      (9.5, RCluster.Fault Netkit.Fault.Heal);
      (11.0, RCluster.Fault (Netkit.Fault.Set_loss 0.0));
    ];
  RCluster.wait_chaos cluster;
  (* Post-fault convergence: every surviving node must keep getting
     served after the last fault cleared. *)
  let survivors =
    List.filter
      (fun i -> not (Netkit.Fault.is_crashed fault i))
      (List.init n Fun.id)
  in
  let snapshot =
    Mutex.lock served_mu;
    let s = Array.copy served in
    Mutex.unlock served_mu;
    s
  in
  let deadline = Unix.gettimeofday () +. 25.0 in
  let rec settle () =
    let progressed =
      Mutex.lock served_mu;
      let p =
        List.for_all (fun i -> served.(i) >= snapshot.(i) + 2) survivors
      in
      Mutex.unlock served_mu;
      p
    in
    if progressed then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.1;
      settle ()
    end
  in
  let all_served = settle () in
  stop := true;
  List.iter Thread.join threads;
  let per_lock_violations =
    List.map (fun (l, w) -> (l, Witness.violations w)) witnesses
  in
  let violations =
    List.fold_left (fun acc (_, v) -> acc + v) 0 per_lock_violations
  in
  write_soak_logs ?trace cluster ~witness_violations:violations ~served;
  let chaos_entries = List.length (RCluster.chaos_log cluster) in
  let recovery = RCluster.note_count cluster "recovery-started" in
  let takeover = RCluster.note_count cluster "arbiter-takeover" in
  let regenerated = RCluster.note_count cluster "token-regenerated" in
  RCluster.shutdown cluster;
  List.iter (fun (_, w) -> Witness.dispose w) witnesses;
  Alcotest.(check bool) "schedule ran" true (chaos_entries >= 6);
  List.iter
    (fun (l, v) ->
      Alcotest.(check int)
        (Printf.sprintf "zero mutual-exclusion violations on %s" l)
        0 v)
    per_lock_violations;
  Alcotest.(check bool)
    (Printf.sprintf "at least two survivors (%d)" (List.length survivors))
    true
    (List.length survivors >= 2);
  Alcotest.(check bool) "every survivor served after the storm" true all_served;
  Alcotest.(check bool)
    (Printf.sprintf "two-phase invalidation fired (%d)" recovery)
    true (recovery >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "PROBE takeover fired (%d)" takeover)
    true (takeover >= 1);
  Logs.app (fun m ->
      m "soak: served=%s recovery=%d takeover=%d regenerated=%d"
        (String.concat ","
           (Array.to_list (Array.map string_of_int served)))
        recovery takeover regenerated)

(* With an empty schedule the chaos layer must be invisible: every
   grant lands promptly, nothing is dropped, and the recovery
   machinery never starts. *)
let test_empty_schedule_baseline () =
  let n = 3 in
  let cluster =
    RCluster.launch ~base_port:8551 ~seed:chaos_seed ~heartbeat_period:0.2
      ~suspect_timeout:0.8 (soak_cfg n)
  in
  RCluster.chaos cluster [];
  RCluster.wait_chaos cluster;
  let rounds = 4 in
  let latencies = ref [] in
  for _round = 1 to rounds do
    for i = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      match
        RCluster.Node.with_lock ~timeout:20.0 (RCluster.node cluster i)
          (fun () -> ())
      with
      | Some () -> latencies := (Unix.gettimeofday () -. t0) :: !latencies
      | None -> Alcotest.failf "baseline grant timed out on node %d" i
    done
  done;
  let m = RCluster.metrics cluster in
  let recovery = RCluster.note_count cluster "recovery-started" in
  RCluster.shutdown cluster;
  let mean =
    List.fold_left ( +. ) 0.0 !latencies
    /. float_of_int (List.length !latencies)
  in
  Alcotest.(check int) "all grants measured" (rounds * n)
    (List.length !latencies);
  Alcotest.(check bool)
    (Printf.sprintf "mean grant latency sane (%.3fs)" mean)
    true (mean < 1.0);
  Alcotest.(check int) "nothing dropped without chaos" 0
    m.Netkit.Transport.dropped;
  Alcotest.(check int) "recovery never started" 0 recovery

(* Satellite regression: a with_lock that times out must not leave a
   claimable ghost request — the stale grant is drained the moment it
   lands. *)
let test_with_lock_timeout_drains () =
  let n = 3 in
  let cfg =
    {
      (Basic.config ~n ()) with
      Types.Config.t_collect = 0.02;
      t_forward = 0.02;
    }
  in
  let cluster = BCluster.launch ~base_port:8571 cfg in
  let holder = BCluster.node cluster 0 in
  let victim = BCluster.node cluster 1 in
  let bystander = BCluster.node cluster 2 in
  let release_holder = Mutex.create () in
  Mutex.lock release_holder;
  let holder_thread =
    Thread.create
      (fun () ->
        ignore
          (BCluster.Node.with_lock ~timeout:20.0 holder (fun () ->
               (* Hold the token until the main thread says go. *)
               Mutex.lock release_holder;
               Mutex.unlock release_holder)))
      ()
  in
  (* Wait until the holder actually has the CS. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (BCluster.Node.holding holder)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) "holder entered" true (BCluster.Node.holding holder);
  (* The victim's request cannot be served while the holder sits on
     the lock: it times out, leaving its REQUEST queued cluster-wide. *)
  let r = BCluster.Node.with_lock ~timeout:0.2 victim (fun () -> ()) in
  Alcotest.(check bool) "victim timed out" true (r = None);
  (* Free the lock; the stale grant for the victim must be drained,
     not held. *)
  Mutex.unlock release_holder;
  Thread.join holder_thread;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec victim_stays_clean () =
    if BCluster.Node.holding victim then false
    else if Unix.gettimeofday () >= deadline then true
    else begin
      Thread.delay 0.005;
      victim_stays_clean ()
    end
  in
  (* A bystander can take the lock — impossible if the victim's ghost
     grant were stuck held. *)
  let got =
    BCluster.Node.with_lock ~timeout:10.0 bystander (fun () ->
        BCluster.Node.holding victim)
  in
  Alcotest.(check (option bool)) "bystander served, victim not holding"
    (Some false) got;
  Alcotest.(check bool) "victim never stuck holding" true
    (victim_stays_clean ());
  (* And the victim itself can lock again normally. *)
  let again = BCluster.Node.with_lock ~timeout:10.0 victim (fun () -> 7) in
  Alcotest.(check (option int)) "victim reusable" (Some 7) again;
  BCluster.shutdown cluster

(* Satellite regression: the timer thread sleeps to the earliest
   deadline and is woken by Set_timer/Cancel_timer, so a short timer
   armed while a long one is pending still fires on time, and a
   cancelled timer never fires. *)
module Tick = struct
  type state = { t0 : float; fires : (int * float) list }
  type message = unit
  type timer = int

  let name = "tick"
  let fault_support = { Types.crash_stop = false; message_loss = false }
  let init _cfg _me = { t0 = 0.0; fires = [] }
  let rejoin = init

  let handle _cfg ~now st input =
    match (input : (message, timer) Types.input) with
    | Types.Request_cs | Types.Request_shared_cs ->
        ({ st with t0 = now }, [ Types.Set_timer (2, 0.4) ])
    | Types.Cs_done -> (st, [ Types.Cancel_timer 2 ])
    | Types.Receive (_, ()) -> (st, [ Types.Set_timer (1, 0.06) ])
    | Types.Timer_fired k ->
        ({ st with fires = (k, now -. st.t0) :: st.fires }, [])

  let in_cs _ = false
  let cs_mode _ = Types.Exclusive
  let wants_cs _ = false
  let message_kind () = "TICK"
  let pp_message ppf () = Format.fprintf ppf "tick"
  let pp_state ppf st = Format.fprintf ppf "%d fires" (List.length st.fires)
end

module TickCodec = struct
  type message = unit

  let encode () = "t"
  let decode _ = ()
end

module TickNode = Netkit.Node_runner.Make (Tick) (TickCodec)

let test_timer_deadline_precision () =
  let peers = [| { Netkit.Transport.host = "127.0.0.1"; port = 8591 } |] in
  let node = TickNode.create (Types.Config.default ~n:1) ~me:0 ~peers () in
  (* Arm the long timer (0.4 s), then immediately a short one (60 ms):
     the timer thread is asleep until the long deadline and must be
     woken to honour the short one. *)
  TickNode.inject node Types.Request_cs;
  TickNode.inject node (Types.Receive (0, ()));
  Thread.delay 0.2;
  (* Cancel the long timer before it is due. *)
  TickNode.inject node Types.Cs_done;
  Thread.delay 0.4;
  let st = TickNode.state node in
  TickNode.shutdown node;
  let short = List.assoc_opt 1 st.Tick.fires in
  (match short with
  | None -> Alcotest.fail "short timer never fired"
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "short timer fired on time (%.3fs)" d)
        true
        (d >= 0.05 && d <= 0.25));
  Alcotest.(check bool) "cancelled timer never fired" true
    (List.assoc_opt 2 st.Tick.fires = None)

(* Satellite regression for heartbeat piggybacking: the transport
   suppresses a peer's beacon whenever some frame was already written
   to it within the period, so heavy REQUEST traffic must never
   starve the liveness signal — no false suspicions of live nodes
   while data flows, a crashed node still suspected within the
   monitor deadline, and alive again on return. *)
let test_heartbeat_piggyback_liveness () =
  let n = 3 in
  let cfg = soak_cfg n in
  let locks = [ "hb-a"; "hb-b"; "hb-c"; "hb-d" ] in
  let peers =
    Array.init n (fun i ->
        { Netkit.Transport.host = "127.0.0.1"; port = 8751 + i })
  in
  let events = ref [] in
  let mu = Mutex.create () in
  let record me what peer =
    Mutex.lock mu;
    events := (Unix.gettimeofday (), me, what, peer) :: !events;
    Mutex.unlock mu
  in
  let snapshot () =
    Mutex.lock mu;
    let l = List.rev !events in
    Mutex.unlock mu;
    l
  in
  let make me =
    RCluster.Node.create ~heartbeat_period:0.1 ~suspect_timeout:0.4
      ~on_suspect:(record me `Suspect)
      ~on_alive:(record me `Alive) ~locks cfg ~me ~peers ()
  in
  let nodes = Array.init n make in
  (* Phase 1 — heavy multi-lock REQUEST traffic for a stretch many
     suspect-timeouts long: beacons are suppressed behind the data,
     which must itself keep every monitor fed. *)
  let stop = Atomic.make false in
  let served = Atomic.make 0 in
  let workers =
    List.concat_map
      (fun lock ->
        List.init n (fun i ->
            Thread.create
              (fun () ->
                while not (Atomic.get stop) do
                  match
                    RCluster.Node.with_lock ~timeout:5.0 ~lock nodes.(i)
                      (fun () -> ())
                  with
                  | Some () -> Atomic.incr served
                  | None -> ()
                done)
              ()))
      locks
  in
  Thread.delay 1.2;
  Atomic.set stop true;
  List.iter Thread.join workers;
  Alcotest.(check bool)
    (Printf.sprintf "traffic actually flowed (%d grants)" (Atomic.get served))
    true
    (Atomic.get served >= 30);
  Alcotest.(check int) "no false suspicion under batched-REQUEST load" 0
    (List.length (snapshot ()));
  (* Phase 2 — crash node 2: with the chatter gone the survivors must
     still notice within the monitor deadline (plus scheduling slack;
     the beacon suppression must not have pushed last-heard stale). *)
  let t_crash = Unix.gettimeofday () in
  RCluster.Node.crash nodes.(2);
  let suspected_by i =
    List.exists
      (fun (_, me, what, peer) -> me = i && what = `Suspect && peer = 2)
      (snapshot ())
  in
  let both_suspect =
    let deadline = t_crash +. 2.0 in
    let rec go () =
      if suspected_by 0 && suspected_by 1 then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.02;
        go ()
      end
    in
    go ()
  in
  Alcotest.(check bool) "crashed node suspected within deadline + slack" true
    both_suspect;
  Alcotest.(check bool) "node 2 listed suspect" true
    (List.mem 2 (RCluster.Node.suspected nodes.(0)));
  (* Phase 3 — the node returns (fresh process, same endpoint): the
     first frames heard from it must flip the monitors back. *)
  let reborn = make 2 in
  let alive_on i =
    List.exists
      (fun (ts, me, what, peer) ->
        ts > t_crash && me = i && what = `Alive && peer = 2)
      (snapshot ())
  in
  let both_alive =
    let deadline = Unix.gettimeofday () +. 3.0 in
    let rec go () =
      if alive_on 0 && alive_on 1 then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.02;
        go ()
      end
    in
    go ()
  in
  Alcotest.(check bool) "alive fires when the node returns" true both_alive;
  RCluster.Node.shutdown reborn;
  Array.iter RCluster.Node.shutdown nodes

let suite =
  ( "chaos",
    [
      Alcotest.test_case "timer deadline precision" `Quick
        test_timer_deadline_precision;
      Alcotest.test_case "heartbeat piggybacking keeps liveness" `Slow
        test_heartbeat_piggyback_liveness;
      Alcotest.test_case "with_lock timeout drains stale grant" `Quick
        test_with_lock_timeout_drains;
      Alcotest.test_case "empty schedule is invisible" `Slow
        test_empty_schedule_baseline;
      Alcotest.test_case "live chaos soak (Section 6 on real sockets)" `Slow
        test_chaos_soak;
    ] )

(* ------------------------------------------------------------------ *)
(* Restart drills: nodes are torn down for real (sockets closed, store
   aborted without flush) and brought back from their state
   directories mid-protocol. Separate suite so CI can run it as its
   own job: [test/main.exe test restart-soak]. *)

(* Kill-and-restart soak: the token holder dies mid-CS with durable
   custody, the arbiter dies mid-collection, and a fixed node restarts
   for good measure. Every node must come back from disk, mutual
   exclusion must hold throughout (O_EXCL witness), and the whole
   cluster must keep being served afterwards. *)
let test_restart_soak () =
  let n = 4 in
  let locks = [ "alpha"; "beta" ] in
  let cfg = soak_cfg n in
  let state_root = soak_state_root "restart-soak" in
  (* Stale directories from a previous run would restore the wrong
     incarnation instead of starting fresh. *)
  rm_rf state_root;
  let trace = make_trace () in
  let cluster =
    RCluster.launch ~base_port:8601 ~seed:chaos_seed ~locks
      ~heartbeat_period:0.2 ~suspect_timeout:0.8 ~state_root ?trace
      ~persist:PV.capture ~restore:(PV.restore cfg) cfg
  in
  let fault = RCluster.fault cluster in
  let witnesses =
    List.map (fun l -> (l, Witness.create ("restart-soak-" ^ l))) locks
  in
  let served = Array.make n 0 in
  let served_mu = Mutex.create () in
  let stop = ref false in
  let worker i lock () =
    let witness = List.assoc lock witnesses in
    let rng = Random.State.make [| chaos_seed; i; 0x7e57; Hashtbl.hash lock |] in
    while not !stop do
      if Netkit.Fault.is_crashed fault i then Thread.delay 0.05
      else begin
        (match
           RCluster.Node.with_lock ~timeout:3.0 ~lock (RCluster.node cluster i)
             (fun () ->
               let owned = Witness.enter witness in
               Thread.delay 0.002;
               if owned then Witness.leave witness)
         with
        | Some () ->
            Mutex.lock served_mu;
            served.(i) <- served.(i) + 1;
            Mutex.unlock served_mu
        | None -> ());
        Thread.delay (0.005 +. Random.State.float rng 0.03)
      end
    done
  in
  let threads =
    List.concat_map
      (fun lock -> List.init n (fun i -> Thread.create (worker i lock) ()))
      locks
  in
  RCluster.chaos cluster
    [
      ( 1.0,
        RCluster.Restart_where
          {
            label = "token-holder";
            select = select_token_holder n;
            after = 0.6;
          } );
      ( 4.0,
        RCluster.Restart_where
          {
            label = "collecting-arbiter";
            select = select_collecting_arbiter n;
            after = 0.6;
          } );
      (7.0, RCluster.Restart { node = 0; after = 0.4 });
    ];
  RCluster.wait_chaos cluster;
  (* Post-restart convergence: every node — the restarted ones
     included — must keep getting served. *)
  let snapshot =
    Mutex.lock served_mu;
    let s = Array.copy served in
    Mutex.unlock served_mu;
    s
  in
  let deadline = Unix.gettimeofday () +. 25.0 in
  let rec settle () =
    let progressed =
      Mutex.lock served_mu;
      let p =
        List.for_all
          (fun i -> served.(i) >= snapshot.(i) + 2)
          (List.init n Fun.id)
      in
      Mutex.unlock served_mu;
      p
    in
    if progressed then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.1;
      settle ()
    end
  in
  let all_served = settle () in
  stop := true;
  List.iter Thread.join threads;
  let per_lock_violations =
    List.map (fun (l, w) -> (l, Witness.violations w)) witnesses
  in
  let violations =
    List.fold_left (fun acc (_, v) -> acc + v) 0 per_lock_violations
  in
  write_soak_logs ~name:"restart-soak" ?trace cluster
    ~witness_violations:violations
    ~served;
  let restarts_completed =
    List.length
      (List.filter (fun (_, m) -> has_sub m "back up")
         (RCluster.chaos_log cluster))
  in
  (* Both locks' instances persist through their own live stores. *)
  let store_live =
    List.for_all
      (fun lock ->
        RCluster.Node.store_stats ~lock (RCluster.node cluster 0) <> None)
      locks
  in
  let recovery = RCluster.note_count cluster "recovery-started" in
  let regenerated = RCluster.note_count cluster "token-regenerated" in
  RCluster.shutdown cluster;
  List.iter (fun (_, w) -> Witness.dispose w) witnesses;
  Alcotest.(check bool) "nodes persist through per-lock live stores" true
    store_live;
  List.iter
    (fun (l, v) ->
      Alcotest.(check int)
        (Printf.sprintf "zero mutual-exclusion violations on %s" l)
        0 v)
    per_lock_violations;
  Alcotest.(check bool)
    (Printf.sprintf "restart drills completed (%d)" restarts_completed)
    true
    (restarts_completed >= 2);
  Alcotest.(check bool) "every node served after the restarts" true all_served;
  Logs.app (fun m ->
      m "restart soak: served=%s restarts=%d recovery=%d regenerated=%d"
        (String.concat ","
           (Array.to_list (Array.map string_of_int served)))
        restarts_completed recovery regenerated);
  if Sys.getenv_opt "DMUTEX_CHAOS_STATE_DIR" = None then rm_rf state_root

(* Amnesia end-to-end: a node loses its state directory across the
   restart (disk wiped while it was down). The amnesiac rejoin must
   never regenerate a token while a live one circulates — it resyncs
   from the running cluster and is eventually served normally. *)
let test_amnesiac_restart_stays_safe () =
  let n = 3 in
  let cfg = soak_cfg n in
  let state_root = soak_state_root "amnesia-restart" in
  rm_rf state_root;
  let cluster =
    RCluster.launch ~base_port:8641 ~seed:chaos_seed ~heartbeat_period:0.2
      ~suspect_timeout:0.8 ~state_root ~persist:PV.capture
      ~restore:(PV.restore cfg) cfg
  in
  let witness = Witness.create "amnesia-restart" in
  let stop = ref false in
  (* Keep the token circulating on the survivors so a live token
     provably exists the whole time the amnesiac is resyncing. *)
  let worker i () =
    while not !stop do
      (match
         RCluster.Node.with_lock ~timeout:3.0 (RCluster.node cluster i)
           (fun () ->
             let owned = Witness.enter witness in
             Thread.delay 0.002;
             if owned then Witness.leave witness)
       with
      | Some () | None -> ());
      Thread.delay 0.01
    done
  in
  let threads = List.map (fun i -> Thread.create (worker i) ()) [ 0; 2 ] in
  Thread.delay 1.0;
  RCluster.crash cluster 1;
  (* The disk dies with the process: wipe node 1's state directory so
     the restart comes back with an empty store — amnesia. *)
  rm_rf (Filename.concat state_root "node-1");
  Thread.delay 0.5;
  RCluster.restart cluster 1;
  let restarted = RCluster.node cluster 1 in
  Alcotest.(check bool) "empty state dir restarts amnesiac" true
    (RCluster.Node.state restarted).Protocol.amnesiac;
  (* Liveness: the amnesiac must still get the lock once resynced
     (sync_wait parks the request, the retry valve or the next
     NEW-ARBITER releases it). *)
  let got =
    RCluster.Node.with_lock ~timeout:20.0 restarted (fun () ->
        let owned = Witness.enter witness in
        Thread.delay 0.002;
        if owned then Witness.leave witness)
  in
  stop := true;
  List.iter Thread.join threads;
  let regenerated_by_amnesiac =
    RCluster.Node.note_count restarted "token-regenerated"
  in
  let resynced = not (RCluster.Node.state restarted).Protocol.amnesiac in
  let violations = Witness.violations witness in
  RCluster.shutdown cluster;
  Witness.dispose witness;
  Alcotest.(check bool) "amnesiac eventually served" true (got = Some ());
  Alcotest.(check bool) "amnesia cleared by live knowledge" true resynced;
  Alcotest.(check int) "amnesiac never regenerated the token" 0
    regenerated_by_amnesiac;
  Alcotest.(check int) "zero mutual-exclusion violations" 0 violations;
  if Sys.getenv_opt "DMUTEX_CHAOS_STATE_DIR" = None then rm_rf state_root

let restart_suite =
  ( "restart-soak",
    [
      Alcotest.test_case "amnesiac restart stays safe" `Slow
        test_amnesiac_restart_stays_safe;
      Alcotest.test_case "kill-and-restart soak (holder mid-CS, arbiter \
                          mid-collection)"
        `Slow test_restart_soak;
    ] )

(* ------------------------------------------------------------------ *)
(* Rolling-churn soak: the dynamic-membership tentpole end to end.
   A 5-node birth cluster grows to 8 through live JOIN-REQUEST knocks,
   survives a kill-and-restart of a birth node mid-churn (the restart
   must rejoin the *current* epoch-2 view from disk, not the birth
   view), then shrinks to 4 through LEAVE-REQUEST excisions — the
   initial arbiter and a freshly joined node among the leavers — all
   under live with_lock traffic on two locks. Safety: zero O_EXCL
   witness violations per lock. Liveness: every survivor keeps being
   served after the churn, and no worker thread is left stuck.
   Bookkeeping: the view epoch observed on a survivor is monotone and
   ends at one commit per churn event, matching the
   [dmutex_view_epoch] gauge. Separate suite so CI can run it as its
   own job: [test/main.exe test churn-soak]. *)
let test_churn_soak () =
  let birth_n = 5 in
  let max_n = 8 in
  let observer = 4 in
  (* never churned *)
  let locks = [ "alpha"; "beta" ] in
  let cfg = soak_cfg birth_n in
  let state_root = soak_state_root "churn-soak" in
  rm_rf state_root;
  let trace = make_trace () in
  let cluster =
    RCluster.launch ~base_port:8671 ~seed:chaos_seed ~locks
      ~heartbeat_period:0.2 ~suspect_timeout:0.8 ~state_root ?trace
      ~persist:PV.capture ~restore:(PV.restore cfg) cfg
  in
  let fault = RCluster.fault cluster in
  let witnesses =
    List.map (fun l -> (l, Witness.create ("churn-soak-" ^ l))) locks
  in
  let served = Array.make max_n 0 in
  let served_mu = Mutex.create () in
  let stop = ref false in
  let retired = Array.make max_n false in
  let worker i lock () =
    let witness = List.assoc lock witnesses in
    let rng = Random.State.make [| chaos_seed; i; 0xc4a0; Hashtbl.hash lock |] in
    while (not !stop) && not retired.(i) do
      if Netkit.Fault.is_crashed fault i then Thread.delay 0.05
      else begin
        (match
           RCluster.Node.with_lock ~timeout:3.0 ~lock (RCluster.node cluster i)
             (fun () ->
               let owned = Witness.enter witness in
               Thread.delay 0.002;
               if owned then Witness.leave witness)
         with
        | Some () ->
            Mutex.lock served_mu;
            served.(i) <- served.(i) + 1;
            Mutex.unlock served_mu
        | None -> ());
        Thread.delay (0.005 +. Random.State.float rng 0.03)
      end
    done
  in
  let threads = ref [] in
  let spawn_workers i =
    threads :=
      List.map (fun lock -> Thread.create (worker i lock) ()) locks @ !threads
  in
  List.iter spawn_workers (List.init birth_n Fun.id);
  let wait_until ~timeout ~what pred =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if pred () then ()
      else if Unix.gettimeofday () >= deadline then
        Alcotest.failf "churn soak: timed out waiting for %s" what
      else begin
        Thread.delay 0.05;
        go ()
      end
    in
    go ()
  in
  let obs_view lock =
    (RCluster.Node.state ~lock (RCluster.node cluster observer)).Protocol.view
  in
  (* One sample of the observer's view epoch after every churn event:
     the sequence must come out monotone. *)
  let epochs = ref [] in
  let sample_epoch () =
    epochs := (obs_view "alpha").Protocol.vnum :: !epochs
  in
  let member_everywhere id =
    List.for_all
      (fun lock ->
        List.mem_assoc id (RCluster.Node.membership ~lock (RCluster.node cluster id))
        && List.mem_assoc id
             (RCluster.Node.membership ~lock (RCluster.node cluster observer)))
      locks
  in
  let join seed =
    let id =
      RCluster.add_node cluster ~init:(fun ~me ~addr ~lock:_ ->
          ( Resilient.joiner cfg ~me ~seed ~addr,
            [ Types.Timer_fired Resilient.T_view ] ))
    in
    wait_until ~timeout:20.0
      ~what:(Printf.sprintf "admission of node %d" id)
      (fun () ->
        List.for_all
          (fun lock ->
            let st = RCluster.Node.state ~lock (RCluster.node cluster id) in
            (not st.Protocol.joining)
            && Protocol.is_member st.Protocol.view id)
          locks
        && member_everywhere id);
    sample_epoch ();
    spawn_workers id;
    id
  in
  let excised_at_observer i =
    List.for_all
      (fun lock ->
        not
          (List.mem_assoc i
             (RCluster.Node.membership ~lock (RCluster.node cluster observer))))
      locks
  in
  let leave i =
    (* The LEAVE-REQUEST relay is fire-and-forget (a coordinator busy
       with another view change defers it without retry), so keep
       re-injecting until the excision is visible on the observer. *)
    let deadline = Unix.gettimeofday () +. 20.0 in
    let rec nag () =
      if excised_at_observer i then ()
      else if Unix.gettimeofday () >= deadline then
        Alcotest.failf "churn soak: timed out excising node %d" i
      else begin
        RCluster.remove_node cluster i ~leave:(fun ~lock:_ ->
            Types.Receive (i, Resilient.Leave_request i));
        let rec poll k =
          if k > 0 && not (excised_at_observer i) then begin
            Thread.delay 0.1;
            poll (k - 1)
          end
        in
        poll 10;
        nag ()
      end
    in
    nag ();
    sample_epoch ();
    retired.(i) <- true;
    Thread.delay 0.1;
    RCluster.retire cluster i
  in
  (* Let the birth cluster take real traffic before churning. *)
  Thread.delay 1.0;
  (* Grow 5 -> 7. *)
  let id5 = join observer in
  let id6 = join observer in
  Alcotest.(check (list int)) "joined ids are appended" [ 5; 6 ] [ id5; id6 ];
  (* Kill-and-restart a birth node mid-churn: it must come back in the
     current (twice-grown) view straight from its store, not the birth
     view — two joins were committed and persisted before it died. *)
  Netkit.Fault.crash fault 1;
  RCluster.crash cluster 1;
  Thread.delay 0.5;
  RCluster.restart cluster 1;
  let restored_vnum =
    (RCluster.Node.state ~lock:"alpha" (RCluster.node cluster 1)).Protocol.view
      .Protocol.vnum
  in
  Alcotest.(check bool)
    (Printf.sprintf "restart rejoins a churned view from disk (vnum %d)"
       restored_vnum)
    true (restored_vnum >= 1);
  (* Grow to 8. *)
  let id7 = join observer in
  Alcotest.(check int) "third joiner id" 7 id7;
  (* Shrink 8 -> 4: the initial arbiter first (the token's birthplace),
     then another birth node, a freshly joined node, and one more. *)
  List.iter leave [ 0; 2; 5; 3 ];
  let survivors = [ 1; 4; 6; 7 ] in
  List.iter
    (fun lock ->
      Alcotest.(check (list int))
        (Printf.sprintf "final membership on %s" lock)
        survivors
        (List.sort compare
           (List.map fst
              (RCluster.Node.membership ~lock (RCluster.node cluster observer)))))
    locks;
  (* Post-churn convergence: every survivor keeps being served. *)
  let snapshot =
    Mutex.lock served_mu;
    let s = Array.copy served in
    Mutex.unlock served_mu;
    s
  in
  wait_until ~timeout:25.0 ~what:"post-churn progress on every survivor"
    (fun () ->
      Mutex.lock served_mu;
      let p = List.for_all (fun i -> served.(i) >= snapshot.(i) + 2) survivors in
      Mutex.unlock served_mu;
      p);
  stop := true;
  List.iter Thread.join !threads;
  let per_lock_violations =
    List.map (fun (l, w) -> (l, Witness.violations w)) witnesses
  in
  let violations =
    List.fold_left (fun acc (_, v) -> acc + v) 0 per_lock_violations
  in
  write_soak_logs ~name:"churn-soak" ?trace cluster
    ~witness_violations:violations ~served;
  let epoch_seq = List.rev !epochs in
  let final_epoch = (obs_view "alpha").Protocol.vnum in
  let gauge_epoch =
    Dmutex_obs.Registry.Gauge.(
      value
        (get
           (RCluster.registries cluster).(observer)
           ~labels:[ ("lock", "alpha") ]
           Dmutex_obs.Names.view_epoch))
  in
  RCluster.shutdown cluster;
  List.iter (fun (_, w) -> Witness.dispose w) witnesses;
  List.iter
    (fun (l, v) ->
      Alcotest.(check int)
        (Printf.sprintf "zero mutual-exclusion violations on %s" l)
        0 v)
    per_lock_violations;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "view epoch monotone through churn (%s)"
       (String.concat "," (List.map string_of_int epoch_seq)))
    true (monotone epoch_seq);
  Alcotest.(check bool)
    (Printf.sprintf "one commit per churn event (final epoch %d)" final_epoch)
    true
    (final_epoch >= 7);
  Alcotest.(check (float 0.01)) "view-epoch gauge tracks the observer"
    (float_of_int final_epoch) gauge_epoch;
  Logs.app (fun m ->
      m "churn soak: served=%s epochs=%s restored_vnum=%d"
        (String.concat "," (Array.to_list (Array.map string_of_int served)))
        (String.concat "," (List.map string_of_int epoch_seq))
        restored_vnum);
  if Sys.getenv_opt "DMUTEX_CHAOS_STATE_DIR" = None then rm_rf state_root

let churn_suite =
  ( "churn-soak",
    [
      Alcotest.test_case "rolling churn 5->8->4 with live traffic" `Slow
        test_churn_soak;
    ] )

(* ------------------------------------------------------------------ *)
(* Sharded soak: the lock-namespace tentpole end to end. 8 independent
   locks on a 5-node cluster, every node contending on every lock over
   one shared transport, durable per-lock stores — then a node caught
   holding the tokens of at least two locks is killed and restarted
   from disk, entangling several instances' Section 6 recovery in one
   outage. Per lock: zero O_EXCL witness violations and a
   messages-per-CS in the paper's Eq. 4 band. *)
let test_sharded_soak () =
  let n = 5 in
  let locks = List.init 8 (fun k -> Printf.sprintf "shard-%d" k) in
  let cfg = soak_cfg n in
  let state_root = soak_state_root "sharded-soak" in
  rm_rf state_root;
  let trace = make_trace () in
  let cluster =
    RCluster.launch ~base_port:8661 ~seed:chaos_seed ~locks
      ~heartbeat_period:0.2 ~suspect_timeout:0.8 ~state_root ?trace
      ~persist:PV.capture ~restore:(PV.restore cfg) cfg
  in
  let fault = RCluster.fault cluster in
  let witnesses =
    List.map (fun l -> (l, Witness.create ("sharded-" ^ l))) locks
  in
  let served = Array.make n 0 in
  let served_mu = Mutex.create () in
  let stop = ref false in
  let worker i lock () =
    let witness = List.assoc lock witnesses in
    let rng =
      Random.State.make [| chaos_seed; i; 0x5a4d; Hashtbl.hash lock |]
    in
    while not !stop do
      if Netkit.Fault.is_crashed fault i then Thread.delay 0.05
      else begin
        (match
           RCluster.Node.with_lock ~timeout:3.0 ~lock (RCluster.node cluster i)
             (fun () ->
               let owned = Witness.enter witness in
               Thread.delay 0.002;
               if owned then Witness.leave witness)
         with
        | Some () ->
            Mutex.lock served_mu;
            served.(i) <- served.(i) + 1;
            Mutex.unlock served_mu
        | None -> ());
        Thread.delay (0.01 +. Random.State.float rng 0.05)
      end
    done
  in
  let threads =
    List.concat_map
      (fun lock -> List.init n (fun i -> Thread.create (worker i lock) ()))
      locks
  in
  (* Let every shard make contended progress, then kill-and-restart a
     node currently holding tokens for two or more locks. *)
  RCluster.chaos cluster
    [
      ( 2.5,
        RCluster.Restart_where
          {
            label = "multi-token-holder";
            select = select_multi_token_holder n;
            after = 0.6;
          } );
    ];
  RCluster.wait_chaos cluster;
  (* Post-restart convergence: every node keeps being served. *)
  let snapshot =
    Mutex.lock served_mu;
    let s = Array.copy served in
    Mutex.unlock served_mu;
    s
  in
  let deadline = Unix.gettimeofday () +. 25.0 in
  let rec settle () =
    let progressed =
      Mutex.lock served_mu;
      let p =
        List.for_all
          (fun i -> served.(i) >= snapshot.(i) + 2)
          (List.init n Fun.id)
      in
      Mutex.unlock served_mu;
      p
    in
    if progressed then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.1;
      settle ()
    end
  in
  let all_served = settle () in
  stop := true;
  List.iter Thread.join threads;
  let per_lock_violations =
    List.map (fun (l, w) -> (l, Witness.violations w)) witnesses
  in
  let violations =
    List.fold_left (fun acc (_, v) -> acc + v) 0 per_lock_violations
  in
  write_soak_logs ~name:"sharded-soak" ?trace cluster
    ~witness_violations:violations ~served;
  let restarts_completed =
    List.length
      (List.filter (fun (_, m) -> has_sub m "back up")
         (RCluster.chaos_log cluster))
  in
  let reports =
    List.map (fun lock -> (lock, RCluster.obs_report ~lock cluster)) locks
  in
  RCluster.shutdown cluster;
  List.iter (fun (_, w) -> Witness.dispose w) witnesses;
  List.iter
    (fun (l, v) ->
      Alcotest.(check int)
        (Printf.sprintf "zero mutual-exclusion violations on %s" l)
        0 v)
    per_lock_violations;
  Alcotest.(check bool)
    (Printf.sprintf "multi-token-holder restart completed (%d)"
       restarts_completed)
    true
    (restarts_completed >= 1);
  Alcotest.(check bool) "every node served after the restart" true all_served;
  (* Per-lock message complexity: each shard behaves like its own
     single-lock cluster, landing in the paper's Eq. 4 band — the
     multiplexing is free in protocol messages. *)
  List.iter
    (fun (l, (r : Dmutex_obs.Report.t)) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: served at least once (%d)" l r.cs_entries)
        true (r.cs_entries > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: messages per CS in Eq. 4 band (%.2f)" l
           r.messages_per_cs)
        true
        (r.messages_per_cs >= 2.5 && r.messages_per_cs <= 4.5))
    reports;
  Logs.app (fun m ->
      m "sharded soak: served=%s restarts=%d"
        (String.concat "," (Array.to_list (Array.map string_of_int served)))
        restarts_completed)

let sharded_suite =
  ( "sharded-soak",
    [
      Alcotest.test_case
        "sharded soak (8 locks x 5 nodes, multi-token restart)" `Slow
        test_sharded_soak;
    ] )

(* ------------------------------------------------------------------ *)
(* Client-session soak: hundreds of thin-client sessions over the
   session layer of a 5-node cluster. The node hosting a busy session
   service is killed mid-grant and restarted from disk; one client
   stalls inside a held grant past its lease. Safety is judged at the
   resource: a fencing-checked O_EXCL witness per lock — every entry
   must carry a strictly higher fencing token than the one before it,
   and no two holders may overlap. *)

module S = Netkit.Session.Make (Resilient) (Wire.Protocol_codec)
module SC = Netkit.Session_client
module WC = Wire.Client

(* O_EXCL witness that also checks fencing order: entries must be
   strictly monotonic per lock. A holder whose token is older than
   the newest entry is stale (it lost its lease or its node) and must
   not do the protected work; a newer token may fence off a stale
   occupant's residue. Raw overlap with ordered-token entry intact is
   counted as a violation. *)
module Fenced_witness = struct
  type t = {
    path : string;
    mu : Mutex.t;
    mutable entered : int list;  (* newest first; chronological CS order *)
    mutable violations : int;
    mutable takeovers : int;
    mutable stale_self : int;
  }

  let create name =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dmutex-%s-%d.lock" name (Unix.getpid ()))
    in
    (try Unix.unlink path with _ -> ());
    {
      path;
      mu = Mutex.create ();
      entered = [];
      violations = 0;
      takeovers = 0;
      stale_self = 0;
    }

  (* Returns whether we own the witness (and so must [leave]). *)
  let rec enter ?(attempt = 0) t ~fencing =
    match Unix.openfile t.path [ O_CREAT; O_EXCL; O_WRONLY ] 0o600 with
    | fd ->
        Unix.close fd;
        Mutex.lock t.mu;
        (match t.entered with
        | last :: _ when fencing <= last -> t.violations <- t.violations + 1
        | _ -> ());
        t.entered <- fencing :: t.entered;
        Mutex.unlock t.mu;
        true
    | exception Unix.Unix_error (EEXIST, _, _) ->
        Mutex.lock t.mu;
        let newest = match t.entered with f :: _ -> f | [] -> min_int in
        if fencing <= newest then begin
          (* We are the stale holder: our grant was drained (lease) or
             superseded (node kill + regeneration). Back off. *)
          t.stale_self <- t.stale_self + 1;
          Mutex.unlock t.mu;
          false
        end
        else if attempt >= 3 then begin
          t.violations <- t.violations + 1;
          Mutex.unlock t.mu;
          false
        end
        else begin
          (* Newer token fences off a stale occupant's residue. *)
          t.takeovers <- t.takeovers + 1;
          Mutex.unlock t.mu;
          (try Unix.unlink t.path with _ -> ());
          enter ~attempt:(attempt + 1) t ~fencing
        end

  let leave t = try Unix.unlink t.path with _ -> ()
  let dispose t = try Unix.unlink t.path with _ -> ()
end

let rotate l k =
  let n = List.length l in
  List.init n (fun i -> List.nth l ((i + k) mod n))

(* Raw framing for the deliberately ill-behaved client: no renewal
   thread, no reconnect — it must be able to stall. *)
let craw_rpc fd req =
  Netkit.Session_frame.send fd (WC.encode_request req);
  WC.decode_response (Netkit.Session_frame.recv fd)

let test_client_soak () =
  let n = 5 in
  let k = 4 in
  let client_threads = 75 in
  let generations = 3 in
  let rounds = 2 in
  let lease_ms = 1_000 in
  let locks = List.init k (fun i -> Printf.sprintf "cl-%d" i) in
  let cfg = soak_cfg n in
  let state_root = soak_state_root "client-soak" in
  rm_rf state_root;
  let trace = make_trace () in
  let cluster =
    RCluster.launch ~base_port:8701 ~seed:chaos_seed ~locks
      ~heartbeat_period:0.2 ~suspect_timeout:0.8 ~state_root ?trace
      ~persist:PV.capture ~restore:(PV.restore cfg) cfg
  in
  let mk_server i =
    S.create ~lease_ms ?trace
      ~seed:(chaos_seed + i)
      ~fencing:PV.fencing_of_state
      ~node:(RCluster.node cluster i)
      ~addr:{ Netkit.Transport.host = "127.0.0.1"; port = 0 }
      ()
  in
  let servers = Array.init n mk_server in
  let ports = Array.map S.port servers in
  let addrs =
    Array.to_list
      (Array.map (fun p -> { Netkit.Transport.host = "127.0.0.1"; port = p }) ports)
  in
  let witnesses =
    List.map (fun l -> (l, Fenced_witness.create ("client-soak-" ^ l))) locks
  in
  let grants = Atomic.make 0 in
  let lost = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let sessions_opened = Atomic.make 0 in
  let failure_log = ref [] in
  let flog_mu = Mutex.create () in
  let worker c () =
    for g = 0 to generations - 1 do
      let cl =
        SC.connect ~lease_ms
          ~seed:(chaos_seed + (c * 31) + g)
          ~addrs:(rotate addrs ((c + g) mod n))
          ()
      in
      let lock = Printf.sprintf "cl-%d" (c mod k) in
      let witness = List.assoc lock witnesses in
      let had_session = ref false in
      for _ = 1 to rounds do
        (match
           SC.with_lock ~timeout:60.0 ~lock cl (fun ~fencing ->
               let owned = Fenced_witness.enter witness ~fencing in
               Thread.delay 0.002;
               if owned then Fenced_witness.leave witness)
         with
        | Ok () -> Atomic.incr grants
        | Error (SC.Session_lost _) -> Atomic.incr lost
        | Error e ->
            Atomic.incr failures;
            Mutex.lock flog_mu;
            failure_log := SC.string_of_error e :: !failure_log;
            Mutex.unlock flog_mu);
        (* A grant or a loud loss both prove a session existed, even
           if it is gone again by the time we close. *)
        if SC.session_id cl <> None then had_session := true
      done;
      if !had_session || SC.session_id cl <> None then
        Atomic.incr sessions_opened;
      SC.close cl
    done
  in
  let threads =
    List.init client_threads (fun c -> Thread.create (worker c) ())
  in
  (* Let traffic build, then stall one client inside a held grant:
     grant cl-1 to a raw session that will never release or renew. *)
  let wait_for ?(timeout = 30.0) pred =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if pred () then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.05;
        go ()
      end
    in
    go ()
  in
  ignore (wait_for (fun () -> Atomic.get grants >= 10));
  let stall_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect stall_fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", ports.(1)));
  Unix.setsockopt_float stall_fd Unix.SO_RCVTIMEO 30.0;
  (match craw_rpc stall_fd (WC.Hello { rid = 1 }) with
  | WC.Hello_ok _ -> ()
  | _ -> Alcotest.fail "stalled client hello");
  (match
     craw_rpc stall_fd
       (WC.Open_session { rid = 2; lease_ms; resume = None })
   with
  | WC.Session_opened _ -> Atomic.incr sessions_opened
  | _ -> Alcotest.fail "stalled client open");
  Netkit.Session_frame.send stall_fd
    (WC.encode_request
       (WC.Acquire
          {
            rid = 3;
            lock = "cl-1";
            timeout_ms = 45_000;
            try_only = false;
            shared = false;
          }));
  let stall_fencing =
    match WC.decode_response (Netkit.Session_frame.recv stall_fd) with
    | WC.Granted { fencing; _ } ->
        (* Do the protected work promptly, then hold the grant
           forever: the lease must drain it without our help. *)
        let w = List.assoc "cl-1" witnesses in
        let owned = Fenced_witness.enter w ~fencing in
        if owned then Fenced_witness.leave w;
        fencing
    | _ -> Alcotest.fail "stalled client grant"
  in
  (* Kill the busiest session host mid-grant and bring it back. *)
  ignore (wait_for (fun () -> (S.stats servers.(0)).S.granted >= 5));
  S.shutdown servers.(0);
  RCluster.crash cluster 0;
  Thread.delay 0.8;
  RCluster.restart cluster 0;
  let rec recreate attempt =
    match
      S.create ~lease_ms ?trace ~seed:(chaos_seed + 100)
        ~fencing:PV.fencing_of_state
        ~node:(RCluster.node cluster 0)
        ~addr:{ Netkit.Transport.host = "127.0.0.1"; port = ports.(0) }
        ()
    with
    | s -> s
    | exception Unix.Unix_error _ when attempt < 10 ->
        Thread.delay 0.3;
        recreate (attempt + 1)
  in
  servers.(0) <- recreate 0;
  (* The stalled client must be told, loudly, that its lease lapsed. *)
  let stall_lost =
    match WC.decode_response (Netkit.Session_frame.recv stall_fd) with
    | WC.Session_lost { rid = 0; _ } -> true
    | _ -> false
    | exception _ -> false
  in
  (try Unix.close stall_fd with _ -> ());
  List.iter Thread.join threads;
  let served =
    Array.map (fun s -> (S.stats s).S.granted) servers
  in
  write_soak_logs ~name:"client-soak" ?trace cluster
    ~witness_violations:
      (List.fold_left
         (fun acc (_, w) -> acc + w.Fenced_witness.violations)
         0 witnesses)
    ~served;
  (match log_dir with
  | None -> ()
  | Some dir ->
      let oc = open_out (Filename.concat dir "client-soak-clients.log") in
      Printf.fprintf oc
        "sessions=%d grants=%d lost=%d failures=%d stall_fencing=%d \
         stall_lost=%b\n"
        (Atomic.get sessions_opened) (Atomic.get grants) (Atomic.get lost)
        (Atomic.get failures) stall_fencing stall_lost;
      List.iter (fun m -> Printf.fprintf oc "failure: %s\n" m) !failure_log;
      List.iter
        (fun (l, w) ->
          Printf.fprintf oc
            "%s: entries=%d violations=%d takeovers=%d stale_self=%d\n" l
            (List.length w.Fenced_witness.entered)
            w.Fenced_witness.violations w.Fenced_witness.takeovers
            w.Fenced_witness.stale_self)
        witnesses;
      close_out oc);
  Array.iter S.shutdown servers;
  RCluster.shutdown cluster;
  List.iter (fun (_, w) -> Fenced_witness.dispose w) witnesses;
  (* Safety: no raw overlap, and fencing strictly monotonic per lock
     (the per-entry check counts any out-of-order entry as a
     violation, so one assert covers both). *)
  List.iter
    (fun (l, w) ->
      Alcotest.(check int)
        (Printf.sprintf "zero witness violations on %s" l)
        0 w.Fenced_witness.violations;
      let chronological = List.rev w.Fenced_witness.entered in
      let rec strictly_up = function
        | a :: (b :: _ as rest) -> a < b && strictly_up rest
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "fencing strictly monotonic on %s" l)
        true (strictly_up chronological))
    witnesses;
  (* Scale: the soak actually exercised hundreds of sessions. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 200 sessions (%d)" (Atomic.get sessions_opened))
    true
    (Atomic.get sessions_opened >= 200);
  (* Liveness: nobody hung — every with_lock resolved (we got here),
     explicit failures stayed rare, and the drained stalled grant let
     cl-1 keep moving to strictly higher fencing tokens. *)
  Alcotest.(check int)
    (Printf.sprintf "no unexplained client failures (%s)"
       (String.concat "; " !failure_log))
    0 (Atomic.get failures);
  Alcotest.(check bool) "stalled client lost its session loudly" true
    stall_lost;
  let cl1 = List.assoc "cl-1" witnesses in
  let newest_cl1 =
    match cl1.Fenced_witness.entered with f :: _ -> f | [] -> min_int
  in
  Alcotest.(check bool) "cl-1 advanced past the stalled grant" true
    (newest_cl1 > stall_fencing);
  Logs.app (fun m ->
      m "client soak: sessions=%d grants=%d lost=%d stall_lost=%b"
        (Atomic.get sessions_opened) (Atomic.get grants) (Atomic.get lost)
        stall_lost);
  if Sys.getenv_opt "DMUTEX_CHAOS_STATE_DIR" = None then rm_rf state_root

let client_suite =
  ( "client-soak",
    [
      Alcotest.test_case
        "client-session soak (200+ sessions, node kill mid-grant, stalled \
         lease)"
        `Slow test_client_soak;
    ] )
