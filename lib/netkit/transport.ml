type endpoint = { host : string; port : int }

let pp_endpoint ppf e = Format.fprintf ppf "%s:%d" e.host e.port

let src_log = Logs.Src.create "netkit.transport" ~doc:"framed TCP transport"

module Log = (val Logs.src_log src_log)

type metrics = {
  sent : int;
  delivered : int;
  dropped : int;
  retries : int;
  reconnects : int;
  queue_depth : int;
}

let pp_metrics ppf m =
  Format.fprintf ppf
    "sent=%d delivered=%d dropped=%d retries=%d reconnects=%d queued=%d"
    m.sent m.delivered m.dropped m.retries m.reconnects m.queue_depth

(* A frame waiting in a peer channel: full body (header + payload),
   whether it participates in the data-frame counters (heartbeats do
   not), and the earliest wall-clock instant it may hit the socket
   (chaos [Delay] verdicts). *)
type item = { body : string; counted : bool; not_before : float }

(* One outbound channel per peer: its own mutex, so a dead or slow
   peer can only ever stall its own queue, never sends to the rest of
   the cluster. *)
type chan = {
  dst : int;
  mu : Mutex.t;
  cond : Condition.t;
  q : item Queue.t;
  mutable fd : Unix.file_descr option;
  mutable writer_started : bool;
  mutable connected_once : bool;
}

(* Handles into an externally owned metrics registry, resolved once at
   [create]: the transport's ad-hoc ints stay authoritative for the
   [metrics] record, and these mirror every bump into the canonical
   [Dmutex_obs.Names] series when the node carries a registry. *)
type obs_handles = {
  o_sent : Dmutex_obs.Registry.Counter.handle;
  o_delivered : Dmutex_obs.Registry.Counter.handle;
  o_dropped : Dmutex_obs.Registry.Counter.handle;
  o_retries : Dmutex_obs.Registry.Counter.handle;
  o_reconnects : Dmutex_obs.Registry.Counter.handle;
  o_queue_depth : Dmutex_obs.Registry.Gauge.handle;
}

type t = {
  me : int;
  peers : endpoint array;
  on_frame : src:int -> lock:string -> string -> unit;
  on_heartbeat : src:int -> unit;
  fault : Fault.t option;
  listener : Unix.file_descr;
  chans : chan array;
  max_queue : int;
  heartbeat_period : float option;
  obs : obs_handles option;
  stats : Mutex.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable retries : int;
  mutable reconnects : int;
  mutable closed : bool;
  mutable loss : float;
  loss_rng : Random.State.t;
  backoff_rng : Random.State.t;
  inbound : Unix.file_descr list ref;  (* guarded by [inbound_mu] *)
  inbound_mu : Mutex.t;
}

let register_inbound t fd =
  Mutex.lock t.inbound_mu;
  t.inbound := fd :: !(t.inbound);
  Mutex.unlock t.inbound_mu

let detach_inbound t fd =
  Mutex.lock t.inbound_mu;
  t.inbound := List.filter (fun f -> f <> fd) !(t.inbound);
  Mutex.unlock t.inbound_mu;
  try Unix.close fd with _ -> ()

let backoff_floor = 0.05
let backoff_cap = 1.0
let connect_attempts_per_frame = 6

let bump t f =
  Mutex.lock t.stats;
  f t;
  Mutex.unlock t.stats

let obs_incr t pick =
  match t.obs with
  | Some h -> Dmutex_obs.Registry.Counter.incr (pick h)
  | None -> ()

let count_dropped t counted =
  if counted then begin
    bump t (fun t -> t.dropped <- t.dropped + 1);
    obs_incr t (fun h -> h.o_dropped)
  end

let rec really_read fd buf off len =
  if len > 0 then begin
    let n = Unix.read fd buf off len in
    if n = 0 then raise End_of_file;
    really_read fd buf (off + n) (len - n)
  end

let read_frame fd =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > 64 * 1024 * 1024 then
    failwith (Printf.sprintf "Transport: bad frame length %d" len);
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  Bytes.unsafe_to_string payload

let write_frame fd body =
  let len = String.length body in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string body 0 buf 4 len;
  let rec push off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd buf off remaining in
      push (off + n) (remaining - n)
    end
  in
  push 0 (4 + len)

(* Every frame body starts with the sender id, a frame kind and the
   lock key it is addressed to ({!Wire.Frame}) so the receiver can
   demultiplex peers without per-peer inbound sockets, tell heartbeats
   from protocol data, and route each payload to the right protocol
   instance over the one shared connection. *)
let reader_loop t fd =
  try
    while not t.closed do
      let frame = read_frame fd in
      let h = Wire.Frame.decode_header frame in
      let src = h.Wire.Frame.src in
      if src < 0 || src >= Array.length t.peers || src = t.me then
        raise (Wire.Malformed (Printf.sprintf "bad sender id %d" src));
      let admit =
        match t.fault with
        | None -> true
        | Some f -> Fault.reachable f ~src ~dst:t.me
      in
      if admit then
        match h.Wire.Frame.kind with
        | Wire.Frame.Heartbeat -> t.on_heartbeat ~src
        | Wire.Frame.Data ->
            let payload =
              String.sub frame h.Wire.Frame.payload_start
                (String.length frame - h.Wire.Frame.payload_start)
            in
            bump t (fun t -> t.delivered <- t.delivered + 1);
            obs_incr t (fun h -> h.o_delivered);
            t.on_frame ~src ~lock:h.Wire.Frame.lock payload
      else count_dropped t (h.Wire.Frame.kind = Wire.Frame.Data)
    done;
    detach_inbound t fd
  with
  | End_of_file | Unix.Unix_error _ -> detach_inbound t fd
  | Failure msg | Wire.Malformed msg ->
      Log.warn (fun m -> m "reader stopped: %s" msg);
      detach_inbound t fd

let accept_loop t =
  try
    while not t.closed do
      let fd, _addr = Unix.accept t.listener in
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      register_inbound t fd;
      ignore (Thread.create (reader_loop t) fd)
    done
  with Unix.Unix_error _ -> ()

let connect t dst =
  let ep = t.peers.(dst) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Some fd
  with Unix.Unix_error _ ->
    (try Unix.close fd with _ -> ());
    None

(* Interruptible sleep: close must not wait out a full backoff. *)
let rec chill t duration =
  if duration > 0.0 && not t.closed then begin
    Thread.delay (Float.min duration 0.05);
    chill t (duration -. 0.05)
  end

let jittered t backoff =
  let j =
    Mutex.lock t.stats;
    let j = Random.State.float t.backoff_rng 1.0 in
    Mutex.unlock t.stats;
    j
  in
  backoff *. (0.5 +. j)

(* Drains one peer's queue forever. Connection management lives here:
   reconnection with capped exponential backoff + jitter, bounded
   retries per frame, and a write-time connectivity re-check so frames
   queued just before a chaos crash/partition still honour it. *)
let writer_loop t ch =
  let backoff = ref backoff_floor in
  let take () =
    Mutex.lock ch.mu;
    while Queue.is_empty ch.q && not t.closed do
      Condition.wait ch.cond ch.mu
    done;
    let item = if t.closed then None else Some (Queue.pop ch.q) in
    Mutex.unlock ch.mu;
    item
  in
  let ensure_fd () =
    match ch.fd with
    | Some fd -> Some fd
    | None -> (
        match connect t ch.dst with
        | Some fd ->
            ch.fd <- Some fd;
            if ch.connected_once then begin
              bump t (fun t -> t.reconnects <- t.reconnects + 1);
              obs_incr t (fun h -> h.o_reconnects)
            end;
            ch.connected_once <- true;
            backoff := backoff_floor;
            Some fd
        | None -> None)
  in
  let rec dispatch item attempts =
    if t.closed then count_dropped t item.counted
    else if attempts >= connect_attempts_per_frame then begin
      (* The peer looks gone: shed this frame and move on so the
         queue keeps draining — DME tolerates loss by design. *)
      count_dropped t item.counted;
      Log.debug (fun m -> m "node %d: shedding frame for dead peer %d" t.me ch.dst)
    end
    else begin
      let now = Unix.gettimeofday () in
      if item.not_before > now then chill t (item.not_before -. now);
      let reachable =
        match t.fault with
        | None -> true
        | Some f -> Fault.reachable f ~src:t.me ~dst:ch.dst
      in
      if not reachable then count_dropped t item.counted
      else
        match ensure_fd () with
        | None ->
            bump t (fun t -> t.retries <- t.retries + 1);
            obs_incr t (fun h -> h.o_retries);
            chill t (jittered t !backoff);
            backoff := Float.min backoff_cap (!backoff *. 2.0);
            dispatch item (attempts + 1)
        | Some fd -> (
            try
              write_frame fd item.body;
              if item.counted then begin
                bump t (fun t -> t.sent <- t.sent + 1);
                obs_incr t (fun h -> h.o_sent)
              end
            with Unix.Unix_error _ | Sys_error _ ->
              (try Unix.close fd with _ -> ());
              ch.fd <- None;
              bump t (fun t -> t.retries <- t.retries + 1);
              obs_incr t (fun h -> h.o_retries);
              chill t (jittered t !backoff);
              backoff := Float.min backoff_cap (!backoff *. 2.0);
              dispatch item (attempts + 1))
    end
  in
  let rec loop () =
    match take () with
    | None -> ()
    | Some item ->
        dispatch item 0;
        loop ()
  in
  loop ();
  Mutex.lock ch.mu;
  (match ch.fd with
  | Some fd ->
      (try Unix.close fd with _ -> ());
      ch.fd <- None
  | None -> ());
  Mutex.unlock ch.mu

let enqueue t ~dst ~counted ~not_before body =
  let ch = t.chans.(dst) in
  Mutex.lock ch.mu;
  let ok =
    if t.closed then false
    else if Queue.length ch.q >= t.max_queue then begin
      count_dropped t counted;
      false
    end
    else begin
      Queue.push { body; counted; not_before } ch.q;
      if not ch.writer_started then begin
        ch.writer_started <- true;
        ignore (Thread.create (writer_loop t) ch)
      end;
      Condition.signal ch.cond;
      true
    end
  in
  Mutex.unlock ch.mu;
  ok

let send_kind t ~dst ~lock ~counted kind payload =
  if t.closed || dst = t.me || dst < 0 || dst >= Array.length t.peers then false
  else begin
    let lost =
      Mutex.lock t.stats;
      let l = t.loss > 0.0 && Random.State.float t.loss_rng 1.0 < t.loss in
      Mutex.unlock t.stats;
      l
    in
    if lost then begin
      (* Chaos mode: the network ate it. The caller sees success (that
         is the point) but the counters record a drop, never a send —
         matching [Simkit.Network] accounting. *)
      count_dropped t counted;
      true
    end
    else
      let body = Wire.Frame.encode_header ~src:t.me ~lock kind ^ payload in
      match t.fault with
      | None -> enqueue t ~dst ~counted ~not_before:0.0 body
      | Some f -> (
          match Fault.verdict f ~src:t.me ~dst body with
          | Fault.Drop ->
              count_dropped t counted;
              true
          | Fault.Deliver -> enqueue t ~dst ~counted ~not_before:0.0 body
          | Fault.Delay d ->
              enqueue t ~dst ~counted
                ~not_before:(Unix.gettimeofday () +. d)
                body)
  end

let send t ~dst ?(lock = "") payload =
  send_kind t ~dst ~lock ~counted:true Wire.Frame.Data payload

let broadcast t ?(lock = "") payload =
  let ok = ref 0 in
  for dst = 0 to Array.length t.peers - 1 do
    if dst <> t.me && send t ~dst ~lock payload then incr ok
  done;
  !ok

(* Heartbeats are per-connection liveness, not per-instance: one
   beacon per peer per period regardless of how many locks the node
   hosts, addressed to the empty key. *)
let heartbeat_loop t period =
  while not t.closed do
    chill t period;
    if not t.closed then
      for dst = 0 to Array.length t.peers - 1 do
        if dst <> t.me then
          ignore
            (send_kind t ~dst ~lock:"" ~counted:false Wire.Frame.Heartbeat "")
      done
  done

let create ?fault ?heartbeat_period ?(max_queue = 1024) ?(seed = 0x10ad)
    ?(on_heartbeat = fun ~src:_ -> ()) ?obs ~me ~peers ~on_frame () =
  (* A write to a peer that closed mid-stream must surface as [EPIPE]
     for the writer thread to retry, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let ep = peers.(me) in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener
    (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port));
  Unix.listen listener 64;
  let chans =
    Array.init (Array.length peers) (fun dst ->
        {
          dst;
          mu = Mutex.create ();
          cond = Condition.create ();
          q = Queue.create ();
          fd = None;
          writer_started = false;
          connected_once = false;
        })
  in
  let t =
    {
      me;
      peers;
      on_frame;
      on_heartbeat;
      fault;
      listener;
      chans;
      max_queue;
      heartbeat_period;
      obs =
        Option.map
          (fun reg ->
            let open Dmutex_obs in
            {
              o_sent = Registry.Counter.get reg Names.transport_sent_total;
              o_delivered =
                Registry.Counter.get reg Names.transport_delivered_total;
              o_dropped =
                Registry.Counter.get reg Names.transport_dropped_total;
              o_retries =
                Registry.Counter.get reg Names.transport_retries_total;
              o_reconnects =
                Registry.Counter.get reg Names.transport_reconnects_total;
              o_queue_depth =
                Registry.Gauge.get reg Names.transport_queue_depth;
            })
          obs;
      stats = Mutex.create ();
      sent = 0;
      delivered = 0;
      dropped = 0;
      retries = 0;
      reconnects = 0;
      closed = false;
      loss = 0.0;
      loss_rng = Random.State.make [| seed; me |];
      backoff_rng = Random.State.make [| seed; me; 0xb0ff |];
      inbound = ref [];
      inbound_mu = Mutex.create ();
    }
  in
  ignore (Thread.create accept_loop t);
  (match heartbeat_period with
  | Some p when p > 0.0 -> ignore (Thread.create (heartbeat_loop t) p)
  | _ -> ());
  t

let set_loss t p = bump t (fun t -> t.loss <- p)
let sent t = t.sent

let queue_depth t =
  let total = ref 0 in
  Array.iter
    (fun ch ->
      Mutex.lock ch.mu;
      total := !total + Queue.length ch.q;
      Mutex.unlock ch.mu)
    t.chans;
  !total

let metrics t =
  Mutex.lock t.stats;
  let m =
    {
      sent = t.sent;
      delivered = t.delivered;
      dropped = t.dropped;
      retries = t.retries;
      reconnects = t.reconnects;
      queue_depth = 0;
    }
  in
  Mutex.unlock t.stats;
  let qd = queue_depth t in
  (match t.obs with
  | Some h ->
      (* The queue depth is a level, not a stream of events: sample it
         into the gauge whenever somebody reads the metrics. *)
      Dmutex_obs.Registry.Gauge.set h.o_queue_depth (float_of_int qd)
  | None -> ());
  { m with queue_depth = qd }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* A thread parked in [accept] pins the listening socket (the port
       would stay bound); poke it with a throwaway self-connection so
       the accept loop observes [closed] and exits. *)
    (try
       let ep = t.peers.(t.me) in
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port))
        with _ -> ());
       try Unix.close fd with _ -> ()
     with _ -> ());
    (try Unix.close t.listener with _ -> ());
    (* Readers are parked in [read]: a plain close would not wake them
       (and would leave the connection established, so peers would
       keep "delivering" into a dead endpoint). [shutdown] forces EOF
       on our side and a FIN to the sender; each reader then closes
       and unregisters its own fd. *)
    Mutex.lock t.inbound_mu;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      !(t.inbound);
    Mutex.unlock t.inbound_mu;
    Array.iter
      (fun ch ->
        Mutex.lock ch.mu;
        Condition.broadcast ch.cond;
        (* Writer threads close their own fd on exit; cover channels
           whose writer never started. *)
        if not ch.writer_started then begin
          (match ch.fd with
          | Some fd -> ( try Unix.close fd with _ -> ())
          | None -> ());
          ch.fd <- None
        end;
        Mutex.unlock ch.mu)
      t.chans
  end
