(** Durable per-node protocol store: append-only CRC-framed
    write-ahead log plus atomic snapshot.

    A node persists the protocol-critical slice of its state — the
    token-regeneration epoch, the election and ENQUIRY-round counters,
    its own request counter, the last-served sequence per peer (the
    paper's [L] vector), and {e token custody} — so that after a
    crash-restart it provably knows whether it held the token and from
    which epoch universe it came. Section 6's failure handling assumes
    a failed node can come back; without this store a restarted node
    has amnesia and could re-mint the token or reuse a regeneration
    epoch, breaking safety.

    Durability discipline (enforced by the caller, [Netkit.Node_runner]):
    the post-step view is {!record}ed — and fsynced — {e before} any of
    the step's effects are applied. In particular the custody record
    hits disk before the node enters its critical section and before a
    dispatched token's PRIVILEGE frame can reach the socket, so a
    crash at any point leaves a view that never {e over}-claims
    custody of a token some other node might hold.

    On-disk layout in the state directory: [snapshot.bin] (one framed
    record, replaced atomically by write-temp + fsync + rename) and
    [wal.bin] (framed delta records appended and fsynced per
    {!record}). Every frame leads with {!Wire.format_version} and ends
    with a CRC-32, so a stale or foreign state directory fails loudly
    ({!Corrupt}) while a torn tail — the normal shape of a crash
    mid-append — silently truncates to the last intact record.

    All operations are thread-safe. *)

exception Corrupt of string
(** The state directory cannot be trusted: format-version mismatch,
    snapshot CRC failure, or a cluster-size mismatch. Never raised for
    a torn or truncated WAL tail, which is expected crash damage and
    is repaired by truncation. *)

(** Who held the token, according to the last fsynced record. *)
type custody =
  | No_token
  | Holding of { epoch : int; shared : bool }
      (** The node held the token of this regeneration epoch. [shared]
          records that the hold was as the coordinator of a shared
          read batch — informational for post-crash forensics; custody
          semantics (who must start invalidation) are identical. *)

type view = {
  epoch : int;  (** Highest token-regeneration epoch witnessed. *)
  election : int;  (** Highest arbiter-election number witnessed. *)
  enq_round : int;  (** Highest ENQUIRY round seen or started. *)
  next_seq : int;  (** The node's own request counter. *)
  granted : int array;
      (** Last-served request sequence per peer (the [L] vector); may
          be longer than the birth cluster size once nodes join. *)
  custody : custody;
  mview : (int * (int * string) list) option;
      (** Last {e committed} membership view: [(vnum, members)] with
          each member as [(id, addr)]. [None] until a view change
          commits — the node still belongs to the birth view. A
          restart rejoins the recorded view, not the birth view. *)
}
(** The protocol-critical slice of one node's state. *)

type stats = {
  wal_records : int;  (** Delta records appended since open/snapshot. *)
  wal_bytes : int;  (** Current WAL size in bytes. *)
  snapshots : int;  (** Snapshots written since open. *)
  replayed : int;  (** WAL records replayed at open. *)
  last_flush : float;  (** Unix time of the last fsync; 0 if none. *)
}

type t

val empty_view : n:int -> view
(** All counters zero, nothing granted, no custody — the view of a
    node that has never run. *)

val dir_name_of_key : string -> string
(** Filesystem-safe directory name for a lock key: characters outside
    [[A-Za-z0-9_-]] are percent-encoded (lowercase hex). Guarded by an
    encode→decode round trip — if the encoding would not decode back
    to the exact key (so two distinct keys could share a state
    directory), raises {!Corrupt} instead of returning. Shared by
    every tool that lays out per-lock state directories so they all
    agree on the mapping. *)

val key_of_dir_name : string -> string
(** Inverse of {!dir_name_of_key}; accepts both hex cases in
    [%XX]-escapes (directories written by older builds used either).
    Raises {!Corrupt} on a truncated or non-hex escape. *)

val fencing_minor_bits : int
(** Bit width of the fencing token's per-epoch grant counter (40). *)

val fencing : epoch:int -> minor:int -> int
(** Pack a fencing token: the token-regeneration [epoch] above a
    per-epoch grant counter [minor] ([epoch * 2^40 + minor], both
    components non-negative or [Invalid_argument]). Tokens compare
    with plain integer [>]: a regeneration bumps [epoch] and dominates
    any grant count from the stale universe. *)

val fencing_epoch : int -> int
val fencing_minor : int -> int
(** Unpack the components of a {!fencing} token. *)

val grant_sum : int array -> int
(** Sum of [(granted.(j) + 1)] over served slots of an [L] vector —
    the number of grants it records. Within one regeneration epoch
    this is non-decreasing as grants are marked, which is what makes
    it usable as the fencing minor component. *)

val fencing_floor : view -> int
(** The largest fencing token that could have been issued under the
    durable state in [view] — what a restarted node must never go
    below. Derived, not separately stored: the epoch and the [L]
    vector are already persisted per {!record}. *)

val open_ :
  ?wal_limit:int -> ?key:string -> ?obs:Dmutex_obs.Registry.t ->
  dir:string -> n:int -> unit -> t
(** Open (creating if needed) the state directory and recover:
    load the snapshot if present, replay the WAL over it, and truncate
    any torn tail. [n] is the birth cluster size; a directory written
    for a different [n] raises {!Corrupt} {e unless} the snapshot
    records a committed membership view (churned clusters outgrow
    their birth size), as does any format-version mismatch. [key] (default [""]) names the lock instance this store
    belongs to: it is embedded in the snapshot and stamped as the first
    record of every fresh WAL, so a directory written for a different
    lock key raises {!Corrupt} instead of silently cross-feeding
    instances. [wal_limit] (default 4096) bounds the WAL record count
    before an automatic snapshot folds it away. [obs] mirrors store
    activity into that registry: WAL appends and snapshot counts as
    counters, per-{!record} fsync latency as a histogram (the
    [dmutex_store_*] series of {!Dmutex_obs.Names}). *)

val view : t -> view option
(** The recovered (and since-updated) view, or [None] if the
    directory held no durable state — which on a {e restart} is
    amnesia and must be treated as such by the caller. *)

val record : t -> view -> unit
(** Make [v] durable: append one delta record per changed field to the
    WAL and fsync once. A no-change call writes nothing. Automatically
    folds the WAL into a snapshot past [wal_limit]. No-op after
    {!close}/{!abort}. *)

val flush : t -> unit
(** Fold the current view into the snapshot now (write-temp + fsync +
    rename + directory fsync) and truncate the WAL. No-op if nothing
    was ever recorded, or after {!close}/{!abort}. *)

val stats : t -> stats

val close : t -> unit
(** Graceful shutdown: {!flush}, then close the file descriptors.
    Idempotent. *)

val abort : t -> unit
(** Crash-style shutdown: close the descriptors {e without} flushing —
    what a real crash leaves behind is exactly the already-fsynced
    snapshot + WAL. Used by restart chaos drills. Idempotent. *)
