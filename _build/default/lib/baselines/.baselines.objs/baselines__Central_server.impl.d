lib/baselines/central_server.ml: Config Dmutex Format
