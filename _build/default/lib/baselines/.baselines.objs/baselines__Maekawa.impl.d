lib/baselines/maekawa.ml: Array Config Dmutex Float Format List Printf String
