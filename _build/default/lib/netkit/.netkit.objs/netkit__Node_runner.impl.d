lib/netkit/node_runner.ml: Condition Config Dmutex Float Fun Hashtbl List Logs Mutex Thread Transport Unix Wire
