(** Ricart-Agrawala permission-based algorithm (CACM 1981), reference
    [10] of the paper and one of the two Figure 6 comparators. A
    requester broadcasts a timestamped REQUEST and enters the CS after
    collecting a REPLY from every other node: exactly 2(N-1) messages
    per CS at every load. *)

open Dmutex.Types

type message = Request of { ts : int; j : node_id } | Reply
type timer = |

type state = {
  me : node_id;
  n : int;
  clock : int;
  my_ts : int option;  (* timestamp of our outstanding request *)
  replies : int;  (* replies still awaited *)
  deferred : node_id list;
  in_cs : bool;
  pending : int;
}

let name = "ricart-agrawala"

(* No failure model: the original algorithm assumes reliable nodes and
   channels, so injected crashes or losses must fail loudly rather
   than silently measure behaviour the algorithm never claimed. *)
let fault_support = { crash_stop = false; message_loss = false }

let init cfg me =
  {
    me;
    n = cfg.Config.n;
    clock = 0;
    my_ts = None;
    replies = 0;
    deferred = [];
    in_cs = false;
    pending = 0;
  }

let rejoin = init

let in_cs st = st.in_cs

(* No shared-mode path: every grant is exclusive. *)
let cs_mode _ = Exclusive
let wants_cs st = st.my_ts <> None || st.pending > 0

(* Lexicographic (timestamp, id) priority: smaller wins. *)
let beats (ts, j) (ts', j') = ts < ts' || (ts = ts' && j < j')

let rec handle cfg ~now st input =
  match input with
  | Request_cs | Request_shared_cs ->
      if st.my_ts <> None || st.in_cs then
        ({ st with pending = st.pending + 1 }, [])
      else begin
        let ts = st.clock + 1 in
        let st =
          { st with clock = ts; my_ts = Some ts; replies = st.n - 1 }
        in
        if st.n = 1 then ({ st with in_cs = true }, [ Enter_cs ])
        else (st, [ Broadcast (Request { ts; j = st.me }) ])
      end
  | Receive (_, Request { ts; j }) ->
      let st = { st with clock = max st.clock ts } in
      let defer =
        st.in_cs
        ||
        match st.my_ts with
        | Some mine -> beats (mine, st.me) (ts, j)
        | None -> false
      in
      if defer then ({ st with deferred = st.deferred @ [ j ] }, [])
      else (st, [ Send (j, Reply) ])
  | Receive (_, Reply) ->
      let replies = st.replies - 1 in
      if replies = 0 && st.my_ts <> None then
        ({ st with replies; in_cs = true }, [ Enter_cs ])
      else ({ st with replies }, [])
  | Cs_done ->
      let effs = List.map (fun j -> Send (j, Reply)) st.deferred in
      let st =
        { st with in_cs = false; my_ts = None; deferred = []; replies = 0 }
      in
      if st.pending > 0 then
        let st, effs' =
          handle cfg ~now { st with pending = st.pending - 1 } Request_cs
        in
        (st, effs @ effs')
      else (st, effs)
  | Timer_fired _ -> (st, [])

let message_kind = function Request _ -> "REQUEST" | Reply -> "REPLY"

let pp_message ppf = function
  | Request { ts; j } -> Format.fprintf ppf "REQUEST(%d,%d)" ts j
  | Reply -> Format.pp_print_string ppf "REPLY"

let pp_state ppf st =
  Format.fprintf ppf "node %d: clock=%d awaiting=%d%s" st.me st.clock
    st.replies
    (if st.in_cs then " IN-CS" else "")
