bin/dmutex_sim.ml: Arg Baselines Cmd Cmdliner Dmutex Experiments Filename Format Mcheck Printf Simkit String Term
