(** The basic algorithm of Section 2: arbiter rotation, Q-list token,
    request collection and forwarding phases. This is {!Protocol} with
    every optional feature off. *)

include Protocol

let name = "bc-basic"

(** Paper-faithful configuration: [T_msg = T_exec = T_fwd = 0.1],
    [T_req = t_collect] (default [0.1]), node 0 initially the
    arbiter. *)
let config ?(t_collect = 0.1) ~n () =
  { (Types.Config.default ~n) with Types.Config.t_collect }
