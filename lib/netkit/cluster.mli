(** In-process test cluster: [n] protocol nodes on loopback TCP.

    Each node is a full {!Node_runner} with its own sockets and
    threads; only the process boundary is missing compared to a real
    deployment. All nodes share one {!Fault} injector, so the
    simulator's chaos machinery (loss, partitions, crash-stop) applies
    to live frames, driven either directly through {!fault} or by a
    deterministic wall-clock {!chaos} schedule. Used by the examples,
    the end-to-end tests and the chaos soak. *)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) : sig
  module Node : module type of Node_runner.Make (A) (C)

  type selector =
    states:(int -> lock:string -> A.state) ->
    locks:string list ->
    live:(int -> bool) ->
    int option
  (** Role-targeted victim selection: inspect any node's protocol
      state for any hosted lock ([states i ~lock]) and the list of
      lock keys, and name a victim — e.g. "whoever holds the token of
      lock [x] right now", or "any node holding tokens for at least
      two locks". *)

  (** One step of a chaos schedule. *)
  type chaos_event =
    | Fault of Fault.event  (** Static fault: loss, crash by id, partition… *)
    | Crash_where of string * selector
        (** Role-targeted crash-stop: the selector inspects live
            protocol states and names the victim (e.g. "whoever holds
            the token right now"). Polled every 20 ms until it returns
            a live node, giving up after 10 s; the label is for the
            chaos log. *)
    | Restart of { node : int; after : float }
        (** Full restart drill: tear [node] down for real ({!crash} —
            sockets closed, stores aborted without flush), keep it down
            for [after] seconds, then {!restart} it from its state
            directories. The schedule thread blocks through the outage
            (events are deliberately sequential). *)
    | Restart_where of { label : string; select : selector; after : float }
        (** Role-targeted {!Restart}: victim selection as in
            [Crash_where] — e.g. "whoever holds the token right now",
            killed mid-CS and brought back from disk. *)

  type chaos_schedule = (float * chaos_event) list
  (** Events paired with wall-clock offsets in seconds from
      {!chaos}-call time. *)

  type t

  val launch :
    ?base_port:int ->
    ?seed:int ->
    ?locks:string list ->
    ?heartbeat_period:float ->
    ?suspect_timeout:float ->
    ?state_root:string ->
    ?trace:Dmutex_obs.Events.sink ->
    ?persist:(A.state -> Dmutex_store.Store.view) ->
    ?restore:
      (me:int ->
      Dmutex_store.Store.view option ->
      A.state * (A.message, A.timer) Dmutex.Types.input list) ->
    Dmutex.Types.Config.t ->
    t
  (** Start [cfg.n] nodes on 127.0.0.1 ports [base_port ..
      base_port+n-1] (default base port 7801; picks free ports by
      retrying a few bases on bind failure). [seed] drives the shared
      fault injector and per-node transport randomness, making chaos
      runs reproducible. Every node hosts one protocol instance per
      [locks] entry (default [[Node.default_lock]]), all multiplexed
      over its one transport; a duplicate lock name (which would
      silently shadow the first instance) or an empty list is rejected
      with [Invalid_argument] before any node starts.
      [heartbeat_period] enables each node's peer liveness monitor
      (off by default), shared by all of its instances.

      [state_root] enables durability: node [i] persists lock [k]
      through a [Dmutex_store.Store] in
      [state_root/node-i/lock-<sanitized k>] (created as needed; keys
      are percent-encoded for the directory name and stamped into the
      store so a mix-up fails loudly at open), capturing states through
      [persist] after every step (see {!Node_runner.Make.create}).
      [restore] rebuilds one instance's state from its recovered view
      at {!restart} time — called once per lock; [None] view means an
      empty directory, i.e. amnesia; the returned inputs are injected
      into that fresh instance (e.g. a self-addressed WARNING when
      custody was durable). Defaults to [A.rejoin] with no inputs.

      Every node gets its own {!Dmutex_obs.Registry} (see
      {!registries}), owned by the cluster and re-attached across
      {!restart}, so counters span a node's whole life including
      crash-restart drills. [trace] plugs one shared structured event
      sink into every node. *)

  val node : t -> int -> Node.t
  val n : t -> int

  val locks : t -> string list
  (** The lock keys every node hosts, in [launch] order. *)

  val with_locks :
    ?timeout:float ->
    ?retries:int ->
    locks:(string * Dmutex.Types.mode) list ->
    t ->
    int ->
    (unit -> 'a) ->
    'a option
  (** [with_locks ~locks t i f]: run [f] on node [i] holding the whole
      multi-lock set atomically — {!Node_runner.Make.with_locks} on
      that node (canonical acquisition order, all-or-nothing with
      bounded retry). *)

  val fault : t -> Fault.t
  (** The cluster-wide fault injector (shared by every node's
      transport) for direct, un-scheduled chaos. *)

  val chaos : t -> chaos_schedule -> unit
  (** Run a chaos schedule on a background thread: each event fires at
      its wall-clock offset from now. At most one schedule at a time.
      {!shutdown} aborts a running schedule. *)

  val wait_chaos : t -> unit
  (** Block until the running schedule (if any) has fired its last
      event. *)

  val chaos_log : t -> (float * string) list
  (** What the schedule actually did, with offsets — including which
      node each [Crash_where] resolved to. *)

  val metrics : t -> Transport.metrics
  (** Transport counters summed over all nodes. *)

  val notes : t -> (string * int) list
  (** Protocol note counters summed over all nodes (the live
      equivalent of the simulator's outcome notes). *)

  val note_count : t -> string -> int

  val registries : t -> Dmutex_obs.Registry.t array
  (** Per-node metrics registries, indexed by node id. Stable across
      {!restart}: a restarted node keeps accumulating into the same
      registry. *)

  val obs_snapshot : t -> Dmutex_obs.Registry.snapshot
  (** Cluster-wide merged snapshot of every node's registry. *)

  val obs_report : ?lock:string -> t -> Dmutex_obs.Report.t
  (** Derived run report over the merged snapshot: total messages
      sent/received, CS entries, {e messages per critical section},
      per-kind breakdown, sync-delay and queue-length statistics. The
      live counterpart of the simulator's per-CS accounting — same
      series names, same derivation. With [lock], restricted to the
      series carrying that [lock=<key>] label — the per-lock view of a
      sharded run. *)

  val obs_report_by_lock : t -> (string * Dmutex_obs.Report.t) list
  (** One {!obs_report} per lock key found in the merged snapshot,
      sorted by key. *)

  val add_node :
    t ->
    init:
      (me:int ->
      addr:string ->
      lock:string ->
      A.state * (A.message, A.timer) Dmutex.Types.input list) ->
    int
  (** Grow the cluster by one brand-new node: allocates the next id
      and a fresh loopback endpoint, starts a full {!Node} there (with
      its own store directories when [state_root] was given, and its
      own registry appended to {!registries}), and injects the inputs
      [init] returns per lock. [init ~me ~addr ~lock] builds the
      per-lock starting state — normally [Protocol.joiner] with a live
      seed member, so the node knocks with JOIN-REQUEST until a view
      commit admits it; [addr] is the ["host:port"] the new node is
      reachable at (travels in the join request). Returns the new id.
      Existing nodes learn the newcomer's address from the committed
      view — nothing is reconfigured here. *)

  val remove_node :
    t ->
    int ->
    leave:(lock:string -> (A.message, A.timer) Dmutex.Types.input) ->
    unit
  (** Start excising node [i]: [leave ~lock] builds the protocol input
      announcing the departure (for {!Dmutex.Protocol},
      [Receive (i, Leave_request i)]) and is injected into [i] itself,
      which relays it toward the token-holding arbiter. The node keeps
      running until the commit excises it — use {!retire} once the
      view has moved on to stop its process. *)

  val retire : t -> int -> unit
  (** Stop an excised node's process (graceful store close). Its slot
      stays allocated and dead: ids are never reused. *)

  val crash : t -> int -> unit
  (** Fail-stop one node for real (sockets closed, threads stopped,
      store aborted {e without} flushing) — unlike [Fault.crash],
      which only severs a node from the network and is reversible. *)

  val restart : t -> int -> unit
  (** Bring a {!crash}ed node back: reopen its state directory (when
      [state_root] was given), rebuild its protocol state through the
      [restore] hook, rebind the same endpoint (retrying while the old
      sockets drain), and inject the restore inputs. The node rejoins
      the running cluster as a restarted process would. *)

  val shutdown : t -> unit
  (** Abort any chaos schedule and stop every node gracefully (stores
      flushed and closed). *)
end
