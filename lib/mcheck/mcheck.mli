(** Explicit-state model checker for {!Dmutex.Types.ALGO} state
    machines.

    Exhaustively explores every interleaving of a small configuration:
    message deliveries in any order, timers firing at any moment an
    event can occur (a sound over-approximation of real-time
    behaviour), and critical sections completing at any point. Checks

    - {b mutual exclusion}, read-write flavour: concurrent CS holders
      are legal exactly when every one reports {!Dmutex.Types.Shared}
      via [cs_mode]; an exclusive holder must be alone. Without shared
      requests this is the classic "never two in CS", and
    - {b deadlock freedom}: no reachable state where some node wants
      the CS but no transition is enabled.

    This mechanizes the paper's informal Section 2.3 argument for
    bounded configurations. State counts grow quickly; [n = 2..3] with
    one or two requests per node is the practical envelope. *)

module Make (A : Dmutex.Types.ALGO) : sig
  type violation = {
    kind : [ `Safety | `Deadlock ];
    trace : string list;
        (** Human-readable transition labels from the initial state to
            the offending state. *)
  }

  type result = {
    states : int;  (** Distinct global states visited. *)
    transitions : int;
    violation : violation option;
    truncated : bool;  (** Hit [max_states] before exhausting. *)
  }

  val run :
    ?max_states:int ->
    ?requests_per_node:int ->
    ?shared_per_node:int ->
    ?fire_timers:bool ->
    ?fifo:bool ->
    ?progress:bool ->
    Dmutex.Types.Config.t ->
    result
  (** [run cfg] explores from the all-initial state with
      [requests_per_node] (default 1) exclusive CS requests and
      [shared_per_node] (default 0) shared CS requests injectable at
      each node, visiting at most [max_states] (default 2_000_000)
      states.
      [fire_timers] (default [true]) lets armed timers fire
      nondeterministically; switch it off to model a perfectly timed
      system. [fifo] (default [false]) restricts each (src, dst)
      channel to in-order delivery — required by algorithms such as
      Lamport's, which the unrestricted checker correctly refutes. *)

  val run_random :
    ?walks:int ->
    ?depth:int ->
    ?seed:int ->
    ?requests_per_node:int ->
    ?shared_per_node:int ->
    ?fire_timers:bool ->
    ?fifo:bool ->
    Dmutex.Types.Config.t ->
    result
  (** Monte-Carlo exploration for configurations beyond exhaustive
      reach: [walks] (default 1000) independent random walks of up to
      [depth] (default 400) uniformly chosen transitions each,
      checking the same properties along the way. [states] reports
      distinct states touched. Finding nothing is evidence, not
      proof. *)

  val pp_result : Format.formatter -> result -> unit
end
