let test_order () =
  let h = Simkit.Heap.create () in
  List.iter (fun p -> Simkit.Heap.push h ~priority:p p)
    [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.map fst (Simkit.Heap.to_sorted_list h) in
  Alcotest.(check (list (float 0.0))) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    order

let test_fifo_ties () =
  let h = Simkit.Heap.create () in
  List.iter (fun v -> Simkit.Heap.push h ~priority:1.0 v) [ "a"; "b"; "c" ];
  Simkit.Heap.push h ~priority:0.5 "first";
  let vs = List.map snd (Simkit.Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "a"; "b"; "c" ] vs

let test_peek_pop () =
  let h = Simkit.Heap.create () in
  Alcotest.(check bool) "empty" true (Simkit.Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.0) int))) "peek empty" None
    (Simkit.Heap.peek h);
  Simkit.Heap.push h ~priority:2.0 2;
  Simkit.Heap.push h ~priority:1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "peek min" (Some (1.0, 1))
    (Simkit.Heap.peek h);
  Alcotest.(check int) "size" 2 (Simkit.Heap.size h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop min" (Some (1.0, 1))
    (Simkit.Heap.pop h);
  Alcotest.(check int) "size after pop" 1 (Simkit.Heap.size h)

let test_clear () =
  let h = Simkit.Heap.create () in
  for i = 1 to 100 do
    Simkit.Heap.push h ~priority:(float_of_int i) i
  done;
  Simkit.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Simkit.Heap.is_empty h);
  Simkit.Heap.push h ~priority:1.0 1;
  Alcotest.(check int) "usable after clear" 1 (Simkit.Heap.size h)

let test_grow () =
  let h = Simkit.Heap.create ~capacity:2 () in
  for i = 1000 downto 1 do
    Simkit.Heap.push h ~priority:(float_of_int i) i
  done;
  Alcotest.(check int) "all inserted" 1000 (Simkit.Heap.size h);
  Alcotest.(check (option (pair (float 0.0) int))) "min" (Some (1.0, 1))
    (Simkit.Heap.pop h)

let test_capacity_preallocates () =
  (* [~capacity] must actually size the backing array: a 512-slot heap
     is at least ~500 words bigger than a 1-slot heap before any push. *)
  let words c = Obj.reachable_words (Obj.repr (Simkit.Heap.create ~capacity:c ())) in
  Alcotest.(check bool) "capacity preallocates" true
    (words 512 - words 1 >= 500)

(* Build a heap holding one heap-allocated value tracked by a weak
   pointer, without leaving a stack reference to the value behind. *)
let heap_with_tracked_value () =
  let h = Simkit.Heap.create () in
  let w = Weak.create 1 in
  let v = Bytes.make 32 'x' in
  Weak.set w 0 (Some v);
  Simkit.Heap.push h ~priority:1.0 v;
  (h, w)

let test_pop_releases_value () =
  let h, w = heap_with_tracked_value () in
  ignore (Simkit.Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "popped value is collectable" false (Weak.check w 0);
  Alcotest.(check int) "heap still usable" 0 (Simkit.Heap.size h)

let test_clear_releases_values () =
  let h, w = heap_with_tracked_value () in
  Simkit.Heap.push h ~priority:2.0 (Bytes.make 8 'y');
  Simkit.Heap.clear h;
  Gc.full_major ();
  Alcotest.(check bool) "cleared values are collectable" false (Weak.check w 0)

let test_drain_releases_last_value () =
  (* The final pop (size reaching 0) must also drop slot 0. *)
  let h, w = heap_with_tracked_value () in
  Simkit.Heap.push h ~priority:0.5 (Bytes.make 8 'z');
  ignore (Simkit.Heap.pop h);
  ignore (Simkit.Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "drained heap retains nothing" false (Weak.check w 0)

let prop_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun ps ->
      let h = Simkit.Heap.create () in
      List.iter (fun p -> Simkit.Heap.push h ~priority:p p) ps;
      let drained = List.map fst (Simkit.Heap.to_sorted_list h) in
      drained = List.sort compare ps)

let prop_size =
  QCheck.Test.make ~name:"heap size tracks pushes and pops" ~count:200
    QCheck.(pair (small_list (float_bound_exclusive 10.0)) small_nat)
    (fun (ps, pops) ->
      let h = Simkit.Heap.create () in
      List.iter (fun p -> Simkit.Heap.push h ~priority:p p) ps;
      let pops = min pops (List.length ps) in
      for _ = 1 to pops do
        ignore (Simkit.Heap.pop h)
      done;
      Simkit.Heap.size h = List.length ps - pops)

let suite =
  ( "heap",
    [
      Alcotest.test_case "ascending order" `Quick test_order;
      Alcotest.test_case "FIFO on equal priorities" `Quick test_fifo_ties;
      Alcotest.test_case "peek and pop" `Quick test_peek_pop;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "growth from small capacity" `Quick test_grow;
      Alcotest.test_case "capacity preallocates" `Quick
        test_capacity_preallocates;
      Alcotest.test_case "pop releases value" `Quick test_pop_releases_value;
      Alcotest.test_case "clear releases values" `Quick
        test_clear_releases_values;
      Alcotest.test_case "drain releases last value" `Quick
        test_drain_releases_last_value;
      QCheck_alcotest.to_alcotest prop_sorted;
      QCheck_alcotest.to_alcotest prop_size;
    ] )
