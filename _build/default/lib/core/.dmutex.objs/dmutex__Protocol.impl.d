lib/core/protocol.ml: Config Float Format List Qlist Types
