let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if sumsq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sumsq)

let t_table =
  (* Two-sided 95% (i.e. 0.975 quantile) Student-t critical values for
     1..30 degrees of freedom. *)
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let student_t95 df =
  if df <= 0 then nan else if df <= 30 then t_table.(df - 1) else 1.96

module Tally = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; sum = 0.0;
      min = infinity; max = neg_infinity }

  let reset t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.sum <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then nan else t.mean

  let variance t =
    if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let ci95_halfwidth t =
    if t.count < 2 then 0.0
    else
      let crit = student_t95 (t.count - 1) in
      crit *. stddev t /. sqrt (float_of_int t.count)

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let na = float_of_int a.count and nb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. nb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. float_of_int n) in
      { count = n; mean; m2; sum = a.sum +. b.sum;
        min = Float.min a.min b.min; max = Float.max a.max b.max }
    end

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.6g +/-%.2g sd=%.4g min=%.4g max=%.4g"
      t.count (mean t) (ci95_halfwidth t) (stddev t) t.min t.max
end

module Window = struct
  type t = {
    data : float array;
    mutable filled : int;
    mutable next : int;
    mutable sum : float;
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Window.create: capacity must be positive";
    { data = Array.make capacity 0.0; filled = 0; next = 0; sum = 0.0 }

  let add t x =
    let cap = Array.length t.data in
    if t.filled = cap then t.sum <- t.sum -. t.data.(t.next)
    else t.filled <- t.filled + 1;
    t.data.(t.next) <- x;
    t.sum <- t.sum +. x;
    t.next <- (t.next + 1) mod cap

  let count t = t.filled
  let is_full t = t.filled = Array.length t.data
  let mean t = if t.filled = 0 then nan else t.sum /. float_of_int t.filled

  let last t =
    if t.filled = 0 then None
    else
      let cap = Array.length t.data in
      Some t.data.((t.next + cap - 1) mod cap)
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array; (* slot 0 = underflow, slot k+1 = overflow *)
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; width = (hi -. lo) /. float_of_int buckets;
      counts = Array.make (buckets + 2) 0; total = 0 }

  let buckets t = Array.length t.counts - 2

  let slot t x =
    if x < t.lo then 0
    else if x >= t.hi then buckets t + 1
    else 1 + int_of_float ((x -. t.lo) /. t.width)

  let add t x =
    let s = Stdlib.min (slot t x) (buckets t + 1) in
    t.counts.(s) <- t.counts.(s) + 1;
    t.total <- t.total + 1

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.total <- 0

  let count t = t.total

  let bucket_bounds t s =
    if s = 0 then (neg_infinity, t.lo)
    else if s = buckets t + 1 then (t.hi, infinity)
    else
      let lo = t.lo +. (float_of_int (s - 1) *. t.width) in
      (lo, lo +. t.width)

  let quantile t q =
    if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int t.total in
    let rec scan s acc =
      if s > buckets t + 1 then t.hi
      else
        let acc' = acc + t.counts.(s) in
        if float_of_int acc' >= target && t.counts.(s) > 0 then
          let lo, hi = bucket_bounds t s in
          if Float.is_finite lo && Float.is_finite hi then (lo +. hi) /. 2.0
          else if Float.is_finite lo then lo
          else hi
        else scan (s + 1) acc'
    in
    scan 0 0

  let bucket_counts t =
    List.init (buckets t + 2) (fun s ->
        let lo, hi = bucket_bounds t s in
        (lo, hi, t.counts.(s)))

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (lo, hi, c) ->
        if c > 0 then Format.fprintf ppf "[%g, %g): %d@," lo hi c)
      (bucket_counts t);
    Format.fprintf ppf "@]"
end

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  let get t name =
    match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  (* Zero in place rather than [Hashtbl.reset]: keeps the interned key
     strings and ref cells, so a reused sweep arena allocates nothing. *)
  let reset t = Hashtbl.iter (fun _ r -> r := 0) t

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    List.iter (fun (k, v) -> Format.fprintf ppf "%s: %d@," k v) (to_list t);
    Format.fprintf ppf "@]"
end
