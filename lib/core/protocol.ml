(* The Banerjee-Chrysanthis arbiter/Q-list token protocol (ICDCS'96),
   as one pure state machine. Config flags select the paper's variants:
   [monitor] enables the Section 4.1 starvation-free extension,
   [priorities] the Section 5.2 prioritized access, [recovery] the
   Section 6 failure handling. The exported modules [Basic],
   [Monitored], [Resilient] and [Prioritized] in this library are thin
   specializations of this module. *)

open Types

type member = { mid : node_id; maddr : string }
(* [maddr] is opaque metadata the pure protocol never interprets; the
   TCP runtime packs "host:port" into it so a View_change doubles as
   address distribution, while the simulator and model checker leave
   it empty. *)

type view = { vnum : int; vmembers : member list }
(* The epoch-numbered membership view. [vnum] 0 is the birth view
   (members 0..n-1); every committed join/leave increments it. Member
   lists are kept sorted by id. *)

type token = {
  tq : Qlist.t;
  granted : Qlist.Granted.g;
  epoch : int;
  election : int;
  vepoch : int;
}
(* [epoch] is incremented each time a lost token is regenerated
   (Section 6); it lets nodes discard a stale token that resurfaces
   after regeneration, which the paper's prose assumes away.
   [election] counts arbiter hand-offs: every dispatch increments it,
   and it rides in both the token and the NEW-ARBITER broadcast so
   that a reordered stale announcement can never re-elect a node that
   has already passed the role on. [vepoch] is the membership view
   the token was last dispatched under: view changes are only
   committed by a token-holding arbiter, so a token bearing an older
   view epoch than the receiver's is provably stale and rejected. *)

type enq_status = Have_token | Executed | Waiting_token

type new_arbiter = {
  na_arbiter : node_id;
  na_q : Qlist.t;
  na_granted : Qlist.Granted.g;
  na_counter : int;  (* adaptive monitor period counter (Section 4.1) *)
  na_monitor : node_id;  (* current monitor; -1 when the variant is off *)
  na_epoch : int;
  na_election : int;
  na_view : view;
}
(* [na_view] makes every announcement an anti-entropy carrier for the
   membership view: a member that missed a VIEW-CHANGE commit catches
   up at the next broadcast instead of dropping the new member's
   frames forever. *)

type view_change = {
  vc_view : view;  (* the proposed / committed new view *)
  vc_commit : bool;  (* false = proposal (quorum phase), true = commit *)
  vc_granted : Qlist.Granted.g;
  vc_epoch : int;  (* coordinator's token epoch — joiner sync payload *)
  vc_election : int;
  vc_arbiter : node_id;
}

type message =
  | Request of Qlist.entry
  | Monitor_request of Qlist.entry
      (* resubmission of a starving request directly to the monitor *)
  | Privilege of token
  | Monitor_privilege of token
      (* token routed through the monitor without a NEW-ARBITER
         broadcast; the monitor broadcasts instead *)
  | New_arbiter of new_arbiter
  | Warning
  | Enquiry of { round : int }
  | Enquiry_reply of { round : int; status : enq_status }
  | Resume of { round : int }
  | Invalidate of { round : int }
  | Probe
  | Probe_ack
  | Join_request of member
      (* a node outside the view asks to be admitted; relayed toward
         the token-holding arbiter like a stashed request *)
  | Leave_request of node_id
      (* excise this node from the view (voluntary departure or an
         operator/liveness decision); relayed like Join_request *)
  | View_change of view_change
  | View_ack of { va_vnum : int }
  | Read_grant of read_grant
      (* shared-batch grant: the batch coordinator (the token-holding
         head reader) admits a fellow reader into the CS. [rg_minor] is
         the batch's fencing minor — the granted-vector total with the
         whole batch marked — so every reader in the batch surfaces the
         same fencing token. *)
  | Read_done of { rd_seq : int }
      (* a batched reader left the CS; the coordinator may pass the
         token on once every reader (and itself) is done *)

and read_grant = { rg_epoch : int; rg_minor : int; rg_entry : Qlist.entry }

type timer =
  | T_dispatch  (* end of the current request-collection window *)
  | T_forward_end  (* end of the request-forwarding phase *)
  | T_retry  (* blind retransmission of an unacknowledged request *)
  | T_stash  (* drain parked third-party requests toward the arbiter *)
  | T_token  (* requester's patience for the token (recovery) *)
  | T_enquiry  (* arbiter's patience for ENQUIRY replies *)
  | T_watch  (* previous arbiter watching the new arbiter *)
  | T_probe  (* patience for a PROBE answer *)
  | T_view
      (* joiner: re-send JOIN-REQUEST until admitted; coordinator:
         re-send VIEW-CHANGE to silent members until quorum/acks *)
  | T_rbatch
      (* batch coordinator's patience for READ-DONE replies: re-grant
         silent readers, and (with recovery on) eventually force the
         batch complete so a crashed reader cannot wedge the token *)

type role =
  | Normal
  | Await_token of Qlist.t
      (* elected arbiter, collecting while the token travels to us *)
  | Collecting of { cq : Qlist.t; anchor : float; armed : bool }
      (* arbiter holding the token; [anchor] is the start of the
         current collection window, [armed] whether T_dispatch is set *)
  | Forwarding of { next_arbiter : node_id }

type recovery = {
  rround : int;
  expected : node_id list;  (* peers we sent ENQUIRY to *)
  replied : node_id list;
  waiting : Qlist.t;  (* entries of peers that answered "waiting" *)
}

type rbatch = {
  rb_entries : Qlist.t;  (* the whole batch, coordinator's entry first *)
  rb_await : node_id list;  (* readers whose READ-DONE is still out *)
  rb_minor : int;  (* the batch fencing minor, shared by every reader *)
  rb_tries : int;  (* T_rbatch re-grant rounds already spent *)
}
(* The token-holding head reader of a maximal shared run coordinates
   the batch: it enters the CS itself, READ-GRANTs the other readers,
   and holds the token until its own CS and every READ-DONE are in.
   Only then is the whole batch marked served (one served-vector
   update, one fencing advance) and the token passed on. *)

type rgrant = {
  rg_from : node_id;  (* the coordinator to answer with READ-DONE *)
  rg_seq : int;  (* our request being served *)
  rg_fepoch : int;  (* fencing epoch the grant rode in on *)
  rg_fminor : int;  (* shared batch fencing minor *)
}
(* A reader admitted into the CS by a READ-GRANT: it holds no token;
   the pair (rg_fepoch, rg_fminor) is what its fencing derives from. *)

type pending_vc = {
  pv_view : view;  (* the new view being installed *)
  pv_quorum : int;  (* acks needed, counting ourselves *)
  pv_acks : node_id list;
  pv_committed : bool;
      (* false: proposal phase — a majority of the OLD view must ack
         before commit, so a partitioned minority can never change the
         view. true: committed locally and broadcast; we keep
         re-sending to silent new-view members until a majority of the
         NEW view has acked (announcements carry the view onward). *)
}

type state = {
  me : node_id;
  arbiter : node_id;
  prev_arbiter : node_id;
  monitor : node_id;  (* -1 = starvation-free variant off *)
  role : role;
  next_seq : int;
  outstanding : int option;  (* seq of our in-flight request *)
  out_mode : Types.mode;  (* mode of the outstanding request *)
  pending : int;  (* application requests queued behind [outstanding] *)
  pending_modes : Types.mode list;
  (* FIFO modes of the [pending] queued requests, oldest first; kept
     exactly [pending] long so surfacing a pending request knows its
     mode *)
  in_cs : bool;
  rbatch : rbatch option;  (* we coordinate an in-flight shared batch *)
  rgrant : rgrant option;  (* we are in the CS under a READ-GRANT *)
  token : token option;
  suspended : bool;  (* token passing frozen by an ENQUIRY (Section 6) *)
  misses : int;  (* consecutive NEW-ARBITER broadcasts omitting us *)
  monitor_misses : int;  (* misses since last resubmission, for τ *)
  retries_left : int;  (* timeout retransmissions remaining; -1 = ∞ *)
  observed_q_len : int;  (* |Q| in the last announcement we saw *)
  last_q : Qlist.t;  (* Q-list of the latest NEW-ARBITER we saw *)
  granted_known : Qlist.Granted.g;  (* best-known L vector *)
  na_counter : int;
  qsizes : int list;  (* moving window of observed |Q|, newest first *)
  executed_this_round : bool;
  monitor_buffer : Qlist.t;  (* requests parked at the monitor *)
  stash : Qlist.t;
  (* requests that reached us while we were not the arbiter; handed to
     the next arbiter we learn of (see receive_request) *)
  token_epoch : int;  (* highest token epoch witnessed *)
  election : int;  (* highest election number witnessed *)
  enq_round : int;  (* highest ENQUIRY round seen or started *)
  recovery : recovery option;
  watching : bool;
  (* recovery only: we are the (unique) watcher of the current arbiter
     — the last dispatcher that handed the role to someone else. The
     uniqueness is what makes PROBE-timeout takeover safe: two
     simultaneous self-proclaimed arbiters would regenerate two
     tokens. *)
  amnesiac : bool;
  (* restarted with no durable state: our epoch/election counters may
     be arbitrarily stale, so starting or finishing a token
     regeneration could mint a second token (or reuse a burnt epoch).
     Cleared by the first current-election NEW-ARBITER or PRIVILEGE
     absorbed — fresh knowledge that re-anchors the counters. *)
  sync_wait : bool;
  (* restarted: park application requests until the first announcement
     (or token) is absorbed, so any higher epoch heard resynchronizes
     us before our own REQUEST goes out. T_retry is the escape valve
     when the system is idle and no announcement ever comes. *)
  view : view;  (* current membership view *)
  joining : bool;
  (* we are outside the view, periodically (T_view) sending
     JOIN-REQUEST to our seed contact until a VIEW-CHANGE commit
     containing us arrives *)
  pending_vc : pending_vc option;
  (* coordinator only: the view change we are installing. Dispatch is
     deferred while a proposal is un-committed, so the token never
     leaves the coordinator mid-view-change — which is exactly what
     makes the token the serialization point for views. *)
  last_token_seen : float;
  (* recovery only: the last instant the live token was in our hands
     (received, held through a CS, dispatched or regenerated). A
     WARNING arriving within one token_timeout of this is staler than
     our own knowledge and is ignored: starting an enquiry round while
     the token demonstrably lives can race it (every reply can say
     "waiting" while the token is airborne between two repliers) and
     end in a second token. *)
}

let name = "banerjee-chrysanthis"

(* The paper's protocol is explicitly fault-tolerant: NEW-ARBITER
   election survives arbiter crashes and token regeneration survives
   token-holder crashes, so injected crash-stop faults and lost
   messages are within the modelled behaviour. *)
let fault_support = { Types.crash_stop = true; message_loss = true }

let no_monitor = -1

(* ------------------------------------------------------------------ *)
(* Membership views                                                    *)

let birth_view cfg =
  { vnum = 0;
    vmembers = List.init cfg.Config.n (fun i -> { mid = i; maddr = "" }) }

let member_ids v = List.map (fun m -> m.mid) v.vmembers
let is_member v j = List.exists (fun m -> m.mid = j) v.vmembers
let view_size v = List.length v.vmembers
let majority v = (view_size v / 2) + 1

let sort_members ms =
  List.sort_uniq (fun a b -> compare a.mid b.mid) ms

(* Emit the legacy Broadcast effect while the view is still the birth
   universe — runtimes deliver it to 0..n-1, and simulator/model-
   checker/bench accounting stays bit-identical to the fixed-N
   protocol. Any churned view uses explicit per-member sends. *)
let is_birth cfg v = v.vnum = 0 && view_size v = cfg.Config.n

let bcast cfg st msg =
  if is_birth cfg st.view then [ Broadcast msg ]
  else
    List.filter_map
      (fun m -> if m.mid = st.me then None else Some (Send (m.mid, msg)))
      st.view.vmembers

let note_view v =
  Note
    (Membership
       { vepoch = v.vnum;
         members = List.map (fun m -> (m.mid, m.maddr)) v.vmembers })

let init cfg me =
  let cfg = Config.validate cfg in
  let monitor = match cfg.Config.monitor with Some m -> m | None -> no_monitor in
  let is_first = me = cfg.Config.initial_arbiter in
  {
    me;
    arbiter = cfg.Config.initial_arbiter;
    prev_arbiter = cfg.Config.initial_arbiter;
    monitor;
    role =
      (if is_first then Collecting { cq = []; anchor = 0.0; armed = false }
       else Normal);
    next_seq = 0;
    outstanding = None;
    out_mode = Types.Exclusive;
    pending = 0;
    pending_modes = [];
    in_cs = false;
    rbatch = None;
    rgrant = None;
    token =
      (if is_first then
         Some
           { tq = []; granted = Qlist.Granted.create cfg.Config.n; epoch = 0;
             election = 0; vepoch = 0 }
       else None);
    suspended = false;
    misses = 0;
    monitor_misses = 0;
    retries_left = 0;
    observed_q_len = 0;
    last_q = [];
    granted_known = Qlist.Granted.create cfg.Config.n;
    na_counter = 0;
    qsizes = [];
    executed_this_round = false;
    monitor_buffer = [];
    stash = [];
    token_epoch = 0;
    election = 0;
    enq_round = 0;
    recovery = None;
    watching = false;
    view = birth_view cfg;
    joining = false;
    pending_vc = None;
    amnesiac = false;
    sync_wait = false;
    (* Never: a node that has never touched the token must not treat
       a WARNING as stale, whatever the clock says. *)
    last_token_seen = Float.neg_infinity;
  }

(* A restarted node comes back as a plain participant: shift the
   would-be initial arbiter away from [me] so [init] gives us neither
   the token nor the arbiter role. It resynchronizes through the next
   NEW-ARBITER broadcast (and the relaying of its stale-addressed
   requests). With the recovery variant on, a restart with no durable
   state is {e amnesia}: the node must neither claim anything about
   the token nor regenerate one until fresh knowledge arrives (see the
   [amnesiac] field). *)
let rejoin cfg me =
  let cfg = Config.validate cfg in
  let base =
    if cfg.Config.n = 1 then init cfg me
    else if cfg.Config.initial_arbiter = me then
      init
        { cfg with Config.initial_arbiter = (me + 1) mod cfg.Config.n }
        me
    else init cfg me
  in
  if cfg.Config.recovery && cfg.Config.n > 1 then
    { base with amnesiac = true; sync_wait = true }
  else base

(* A brand-new node outside every view: it knows only its own identity
   and one seed member to contact. The runtime injects a first
   [Timer_fired T_view]; every firing sends JOIN-REQUEST toward the
   seed (relayed to the token-holding arbiter) and re-arms, until a
   VIEW-CHANGE commit admits us. Application requests park behind
   [sync_wait] until the commit's sync payload re-anchors us. *)
let joiner cfg ~me ~seed ~addr =
  let cfg = Config.validate cfg in
  if seed = me then invalid_arg "Protocol.joiner: seed must differ from me";
  let ia = if me = 0 then min 1 (cfg.Config.n - 1) else 0 in
  let base = init { cfg with Config.initial_arbiter = ia } me in
  {
    base with
    arbiter = seed;
    prev_arbiter = seed;
    view = { vnum = -1; vmembers = [ { mid = me; maddr = addr } ] };
    joining = true;
    sync_wait = true;
  }

type restored = {
  r_epoch : int;
  r_election : int;
  r_enq_round : int;
  r_next_seq : int;
  r_granted : Qlist.Granted.g;
  r_had_token : bool;
  r_view : (int * (node_id * string) list) option;
      (* last durable membership view: a mid-churn restart must rejoin
         the current view, not the birth view *)
}

(* A restart backed by a durable store: the monotone counters and the
   L vector come back, so the node is not amnesiac — its epoch
   knowledge is exactly what it had proven durable before the crash.
   It still resynchronizes ([sync_wait]) before issuing requests, and
   it never resurrects the token object itself: if custody was durable
   at the crash, the token provably died with us and the caller
   injects a WARNING to start the Section 6 invalidation. *)
let rejoin_restored cfg me r =
  let base = rejoin cfg me in
  let view =
    match r.r_view with
    | Some (vnum, ms) when vnum > 0 ->
        { vnum;
          vmembers =
            sort_members (List.map (fun (mid, maddr) -> { mid; maddr }) ms) }
    | _ -> base.view
  in
  {
    base with
    amnesiac = false;
    sync_wait = cfg.Config.recovery && cfg.Config.n > 1;
    next_seq = r.r_next_seq;
    granted_known = Qlist.Granted.merge base.granted_known r.r_granted;
    token_epoch = max base.token_epoch r.r_epoch;
    election = max base.election r.r_election;
    enq_round = max base.enq_round r.r_enq_round;
    view;
    arbiter = (if is_member view base.arbiter then base.arbiter
               else (match member_ids view with
                     | m :: _ when m <> me -> m
                     | _ :: m :: _ -> m
                     | _ -> base.arbiter));
  }

let in_cs st = st.in_cs
let wants_cs st = st.outstanding <> None || st.pending > 0

(* Shared occupancy exists only inside a live batch: a coordinator (or
   a READ-GRANTed reader) reports [Shared]; a solo shared request rides
   the unchanged exclusive path and conservatively reports [Exclusive]. *)
let cs_mode st =
  if st.rgrant <> None || st.rbatch <> None then Types.Shared
  else Types.Exclusive

(* Wait-for edges visible from this node, as [(waiter, holder)] pairs.
   Only the token holder sees the authoritative Q-list, so exactly one
   node per lock contributes edges at any instant; the union across
   locks is the cluster's wait-for graph ({!Dmutex_obs.Wfg}). Holders
   are this node (exclusive) or the live reader batch; waiters are the
   queued entries behind them. *)
let wait_edges st =
  match st.token with
  | None -> []
  | Some tk ->
      let holders =
        match st.rbatch with
        | Some b ->
            List.map (fun (e : Qlist.entry) -> e.Qlist.node) b.rb_entries
        | None -> if st.in_cs then [ st.me ] else []
      in
      if holders = [] then []
      else
        let waiters =
          List.filter_map
            (fun (e : Qlist.entry) ->
              if List.mem e.Qlist.node holders then None
              else Some e.Qlist.node)
            tk.tq
        in
        List.concat_map
          (fun w -> List.map (fun h -> (w, h)) holders)
          waiters

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let monitored st = st.monitor >= 0

let truncate_window cfg xs =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take cfg.Config.window xs

let avg_qsize_ceiling st =
  match st.qsizes with
  | [] -> 1 (* no observations yet: shortest period, per the paper's
               low-load reasoning *)
  | xs ->
      let sum = List.fold_left ( + ) 0 xs in
      let mean = float_of_int sum /. float_of_int (List.length xs) in
      max 1 (int_of_float (Float.ceil mean))

(* A requester's patience before blindly retransmitting: at least the
   configured floor, and at least a few full queue rotations as
   estimated from the last announced Q-list length — at saturation a
   rotation (and hence the next implicit ack) takes |Q|·(T_msg+T_exec),
   which can dwarf any fixed timeout. *)
let retry_delay cfg st =
  let rotation =
    float_of_int (max 1 st.observed_q_len)
    *. (cfg.Config.t_msg +. cfg.Config.t_exec)
  in
  Float.max cfg.Config.retry_timeout
    ((3.0 *. rotation) +. cfg.Config.t_collect +. cfg.Config.t_forward)

(* Residual time until the next conceptual collection-window boundary.
   Faithful to the paper's fixed windows without busy-looping when the
   system is idle: the window grid is anchored at [anchor]. *)
let window_residual cfg ~now ~anchor =
  let w = cfg.Config.t_collect in
  if w <= 0.0 then 0.0
  else
    let elapsed = now -. anchor in
    let r = w -. Float.rem elapsed w in
    if r <= 0.0 then w else r

(* State components that only optional variants read are kept at
   their initial value when the variant is off: the protocol behaves
   identically, and the model checker's state space stays small. *)
let observe_qsize cfg st q =
  if monitored st then truncate_window cfg (List.length q :: st.qsizes)
  else []

let keep_last_q cfg q = if cfg.Config.recovery then q else []
let keep_prev cfg st v = if cfg.Config.recovery then v else st.prev_arbiter
let keep_counter st v = if monitored st then v else 0

(* ------------------------------------------------------------------ *)
(* Requester side                                                      *)

(* Pop the oldest pending request's mode; callers pair this with the
   [pending - 1] bookkeeping. Exclusive when the mode queue is somehow
   short — the conservative default. *)
let pop_pending_mode st =
  match st.pending_modes with
  | m :: rest -> (m, { st with pending_modes = rest })
  | [] -> (Types.Exclusive, st)

(* Issue the next application request: either register directly in our
   own collection (when we are the arbiter) or send REQUEST(me, seq) to
   the believed arbiter. *)
let issue_request cfg ~now ?(mode = Types.Exclusive) st =
  ignore now;
  let seq = st.next_seq in
  let e = Qlist.entry ~mode ~node:st.me ~seq () in
  let st =
    { st with next_seq = seq + 1; outstanding = Some seq; out_mode = mode;
      misses = 0; monitor_misses = 0; retries_left = cfg.Config.max_retries }
  in
  match st.role with
  | Await_token q -> ({ st with role = Await_token (Qlist.enqueue e q) }, [])
  | Collecting { cq; anchor; armed } ->
      let effs =
        if armed then []
        else [ Set_timer (T_dispatch, window_residual cfg ~now ~anchor) ]
      in
      ( { st with
          role =
            Collecting { cq = Qlist.enqueue e cq; anchor; armed = true } },
        effs )
  | Normal | Forwarding _ ->
      let arm =
        if cfg.Config.max_retries = 0 then []
        else [ Set_timer (T_retry, retry_delay cfg st) ]
      in
      (* Lost-token watchdog from the moment the request leaves us, not
         only once a Q-list acknowledges it: if the request wanders
         between stale stash-relays because the elected arbiter died
         with the token in transit (and restarted as a normal node), no
         announcement ever comes — yet someone must eventually WARNING
         the believed arbiter or the token stays lost forever. Spurious
         firings are harmless: the warned node holds (or locates) the
         token and recovery never starts. *)
      let watchdog =
        if cfg.Config.recovery then
          [ Set_timer (T_token, cfg.Config.token_timeout) ]
        else []
      in
      (st, (Send (st.arbiter, Request e) :: arm) @ watchdog)

let request_cs cfg ~now ?(mode = Types.Exclusive) st =
  if st.outstanding <> None || st.in_cs then
    ( { st with pending = st.pending + 1;
        pending_modes = st.pending_modes @ [ mode ] },
      [] )
  else if st.sync_wait then
    (* Restarted and not yet resynchronized: park the request until
       the first announcement (or token) is absorbed, so any higher
       epoch out there reaches us before our own REQUEST goes out.
       T_retry is the escape valve if the system stays silent. *)
    ( { st with pending = st.pending + 1;
        pending_modes = st.pending_modes @ [ mode ] },
      [ Set_timer (T_retry, retry_delay cfg st) ] )
  else issue_request cfg ~now ~mode st

(* Fresh current-election knowledge arrived (a live NEW-ARBITER or the
   token itself): the restart resynchronization is over. Clears both
   gates and surfaces a parked application request, now addressed to
   the arbiter we just learned of. *)
let end_resync cfg ~now st =
  if not (st.amnesiac || st.sync_wait) then (st, [])
  else
    let was_waiting = st.sync_wait in
    let st = { st with amnesiac = false; sync_wait = false } in
    if was_waiting && st.pending > 0 && st.outstanding = None && not st.in_cs
    then
      let mode, st = pop_pending_mode st in
      let st = { st with pending = st.pending - 1 } in
      issue_request cfg ~now ~mode st
    else (st, [])

(* ------------------------------------------------------------------ *)
(* Membership: adopting a committed view                               *)

(* Adopt a newer committed view: every structure that can hold entries
   (or identities) of excised nodes is drained — the Q-list inside a
   held token, the collection queues, the stash, the monitor buffer,
   the last announced Q-list, and an in-flight enquiry round's target
   and reply sets — without losing the token. The sync payload's
   monotone knowledge (L vector, token epoch, election) is absorbed,
   and the change is surfaced to the runtime as a [Membership] note so
   transports and liveness monitors re-point on the fly. *)
(* Requests a node holds outside any token queue: the collection
   queue, the pre-queue of an arbiter awaiting the token, the resync
   stash, the monitor's parking buffer, and requests frozen by an
   in-flight enquiry round. An excised arbiter must fold these into
   the token it hands off — dropping them silently starves the
   requesters, whose blind retries are finite. *)
let parked_requests st =
  (match st.role with
  | Collecting { cq; _ } -> cq
  | Await_token q -> q
  | Normal | Forwarding _ -> [])
  @ st.stash @ st.monitor_buffer
  @ (match st.recovery with Some r -> r.waiting | None -> [])

(* The queue an excised token-holder hands off: surviving token-queue
   entries first, then surviving parked requests not already served.
   Shared with [commit_view] so the arbiter named in the commit and
   the heir the token actually goes to always agree. *)
let drained_queue st (v : view) ~granted tk =
  let keep e = is_member v e.Qlist.node in
  let merged = Qlist.Granted.merge tk.granted granted in
  List.fold_left
    (fun acc e -> Qlist.enqueue e acc)
    (List.filter keep tk.tq)
    (Qlist.prune merged (List.filter keep (parked_requests st)))

let apply_view cfg ~now st (v : view) ~granted ~tepoch ~elec ~arbiter =
  let keep e = is_member v e.Qlist.node in
  let filter_q = List.filter keep in
  (* Survivors' requests parked at this node, not yet in any token. *)
  let absorb tk =
    { tk with
      tq = drained_queue st v ~granted tk;
      granted = Qlist.Granted.merge tk.granted granted }
  in
  if st.joining && not (is_member v st.me) then
    (* Still outside the view: keep knocking. Adopting a universe that
       excludes us would stop the join retries (and lose our own
       address metadata). *)
    (st, [])
  else if not (is_member v st.me) then
    if (st.in_cs || st.rbatch <> None) && st.token <> None then
      (* Excised while inside the critical section: adopting the view
         must not hand the token away under our feet — mutual
         exclusion outranks membership. Adopt the view, shed every
         other responsibility, but keep the token and the CS; the
         hand-off happens at [Cs_done] (see [cs_done]). *)
      ( { st with
          view = v;
          joining = false;
          pending_vc = None;
          role = Normal;
          (* Parked survivor requests ride inside the kept token so
             the [Cs_done] hand-off carries them to the heir. *)
          token = Option.map absorb st.token;
          outstanding = None;
          pending = 0;
          pending_modes = [];
          (* An in-flight batch keeps coordinating: the hand-off waits
             in [finish_batch], which re-checks membership. Excised
             awaited readers can no longer answer — drop them. *)
          rbatch =
            Option.map
              (fun b ->
                { b with rb_await = List.filter (is_member v) b.rb_await })
              st.rbatch;
          watching = false;
          recovery = None;
          stash = [];
          monitor_buffer = [];
          granted_known = Qlist.Granted.merge st.granted_known granted;
          token_epoch = max st.token_epoch tepoch;
          election = max st.election elec },
        [ note_view v; Note (Custom "excised-in-cs");
          Cancel_timer T_token; Cancel_timer T_retry;
          Cancel_timer T_enquiry; Cancel_timer T_watch;
          Cancel_timer T_probe; Cancel_timer T_view ] )
    else
    (* We were excised. If the token is in our hands (a voluntary
       leave committed by ourselves as coordinator), hand it — stamped
       with the new view — to an heir before going dark: the queue
       head if any requests survive, else the lowest surviving id. *)
    let handoff =
      match st.token with
      | None -> []
      | Some tk ->
          let tk = { (absorb tk) with vepoch = v.vnum } in
          let heir =
            match tk.tq with
            | e :: _ -> e.Qlist.node
            | [] -> (
                match member_ids v with h :: _ -> h | [] -> st.me)
          in
          if heir = st.me then [] else [ Send (heir, Privilege tk) ]
    in
    let reader_done =
      (* Excised while reading under a READ-GRANT: best-effort answer
         so the coordinator's batch completes without waiting for its
         T_rbatch force. *)
      match st.rgrant with
      | Some r -> [ Send (r.rg_from, Read_done { rd_seq = r.rg_seq }) ]
      | None -> []
    in
    ( { st with
        view = v;
        joining = false;
        pending_vc = None;
        role = Normal;
        token = None;
        outstanding = None;
        pending = 0;
        pending_modes = [];
        in_cs = false;
        rbatch = None;
        rgrant = None;
        watching = false;
        recovery = None;
        stash = [];
        monitor_buffer = [];
        granted_known = Qlist.Granted.merge st.granted_known granted;
        token_epoch = max st.token_epoch tepoch;
        election = max st.election elec },
      reader_done @ handoff
      @ [ note_view v; Note (Custom "excised");
          Cancel_timer T_token; Cancel_timer T_retry;
          Cancel_timer T_enquiry; Cancel_timer T_watch;
          Cancel_timer T_probe; Cancel_timer T_view ] )
  else begin
    let joined_now = st.joining in
    (* The commit's arbiter field is a hint naming the heir at commit
       time; the token may well have moved on since. Only let it
       override a pointer that is demonstrably broken (names an
       excised node) or loses a strictly newer election — a node that
       has watched the token travel knows better than the commit. And
       never adopt a hint naming ourselves unless we are actually
       positioned to receive the token: a tokenless node believing
       itself arbiter is a request sink (it suppresses its own retries
       and swallows relayed requests, expecting a token that will
       never come). *)
    let expects_token =
      st.token <> None
      ||
      match st.role with
      | Await_token _ | Collecting _ -> true
      | Normal | Forwarding _ -> false
    in
    let broken = elec > st.election || not (is_member v st.arbiter) in
    let new_arbiter =
      if not broken then st.arbiter
      else if is_member v arbiter && (arbiter <> st.me || expects_token)
      then arbiter
      else
        (* Hint unusable: re-point at some surviving peer — the
           stash-relay chain walks the request to the real holder. *)
        match List.filter (fun j -> j <> st.me) (member_ids v) with
        | h :: _ -> h
        | [] -> st.me
    in
    let st =
      { st with
        view = v;
        joining = false;
        token =
          Option.map
            (fun tk -> { tk with tq = filter_q tk.tq; vepoch = v.vnum })
            st.token;
        role =
          (match st.role with
          | Normal -> Normal
          | Forwarding _ as r -> r
          | Await_token q -> Await_token (filter_q q)
          | Collecting c -> Collecting { c with cq = filter_q c.cq });
        recovery =
          Option.map
            (fun r ->
              { r with
                expected = List.filter (is_member v) r.expected;
                replied = List.filter (is_member v) r.replied;
                waiting = filter_q r.waiting })
            st.recovery;
        rbatch =
          Option.map
            (fun b ->
              { b with rb_await = List.filter (is_member v) b.rb_await })
            st.rbatch;
        stash = filter_q st.stash;
        monitor_buffer = filter_q st.monitor_buffer;
        last_q = filter_q st.last_q;
        granted_known = Qlist.Granted.merge st.granted_known granted;
        token_epoch = max st.token_epoch tepoch;
        election = max st.election elec;
        arbiter = new_arbiter }
    in
    let joined_effs = if joined_now then [ Cancel_timer T_view ] else [] in
    (* Our outstanding request may have been parked at — or in flight
       to — a node this view excised; those copies are gone, and blind
       retries are finite. Re-issue it to the arbiter we now believe
       in, with a fresh retry budget: duplicates are harmless (the
       Q-list deduplicates, the granted ledger rejects the served). *)
    let st, resend_effs =
      match st.outstanding with
      | Some seq
        when st.arbiter <> st.me && (not st.in_cs)
             && not
                  (Qlist.Granted.already_served st.granted_known
                     (Qlist.entry ~node:st.me ~seq ())) ->
          ( { st with misses = 0; retries_left = cfg.Config.max_retries },
            [ Send
                ( st.arbiter,
                  Request
                    (Qlist.entry ~mode:st.out_mode ~node:st.me ~seq ()) );
              Set_timer (T_retry, retry_delay cfg st) ] )
      | _ -> (st, [])
    in
    let st, resync_effs = end_resync cfg ~now st in
    (st, (note_view v :: joined_effs) @ resend_effs @ resync_effs)
  end

(* ------------------------------------------------------------------ *)
(* Arbiter side: accepting, forwarding and dispatching requests        *)

let accept_request cfg ~now st e =
  (* We are collecting (either awaiting the token or holding it). *)
  match st.role with
  | Await_token q -> ({ st with role = Await_token (Qlist.enqueue e q) }, [])
  | Collecting { cq; anchor; armed } ->
      let effs =
        if armed then []
        else [ Set_timer (T_dispatch, window_residual cfg ~now ~anchor) ]
      in
      ( { st with
          role =
            Collecting { cq = Qlist.enqueue e cq; anchor; armed = true } },
        effs )
  | Normal | Forwarding _ -> assert false

let receive_request cfg ~now st e =
  if Qlist.Granted.already_served st.granted_known e then
    (* A duplicate of a request we know has been satisfied. The
       requester clearly never learned (its grant or our announcement
       was lost): silence here would leave it retransmitting forever,
       so answer with our current view — the L vector in it clears the
       requester's [outstanding] (see [observe_qlist]). *)
    ( st,
      [ Note Dropped_request;
        Send
          ( e.Qlist.node,
            New_arbiter
              {
                na_arbiter = st.arbiter;
                na_q = st.last_q;
                na_granted = st.granted_known;
                na_counter = st.na_counter;
                na_monitor = st.monitor;
                na_epoch = st.token_epoch;
                na_election = st.election;
                na_view = st.view;
              } ) ] )
  else
    match st.role with
    | Await_token _ | Collecting _ -> accept_request cfg ~now st e
    | Forwarding { next_arbiter } ->
        if monitored st && e.Qlist.hops >= cfg.Config.forward_threshold then
          (* Over the τ budget: drop; the requester will escape to the
             monitor after τ NEW-ARBITER misses (Section 4.1). *)
          (st, [ Note Dropped_request ])
        else
          ( st,
            [ Send (next_arbiter, Request { e with Qlist.hops = e.Qlist.hops + 1 });
              Note Forwarded ] )
    | Normal ->
        (* The paper drops requests that arrive after the forwarding
           phase and relies on retransmission. We are more careful:
           a mislaid request is relayed toward our believed arbiter —
           believed-arbiter pointers only move forward in election
           order, so such chains terminate at the live arbiter — and
           once it exhausts its hop budget it is parked here and
           re-launched by a timer. The monitored variant instead drops
           over-budget requests, as Section 4.1 specifies: the
           requester escapes to the monitor. *)
        if e.Qlist.hops < cfg.Config.forward_threshold then
          if st.arbiter <> st.me then
            ( st,
              [ Send
                  (st.arbiter, Request { e with Qlist.hops = e.Qlist.hops + 1 });
                Note Stash_forwarded ] )
          else ({ st with stash = Qlist.enqueue e st.stash }, [ Note Stashed ])
        else if monitored st then (st, [ Note Dropped_request ])
        else
          ( { st with stash = Qlist.enqueue e st.stash },
            [ Note Stashed;
              Set_timer (T_stash, cfg.Config.retry_timeout) ] )

let receive_monitor_request cfg ~now st e =
  if st.me <> st.monitor then (* stale monitor identity; park it anyway *)
    (st, [ Send (st.monitor, Monitor_request e) ])
  else if Qlist.Granted.already_served st.granted_known e then
    (st, [ Note Dropped_request ])
  else
    match st.role with
    | Await_token _ | Collecting _ ->
        (* The monitor happens to be the current arbiter: serve the
           request through the normal collection directly. *)
        accept_request cfg ~now st e
    | Normal | Forwarding _ ->
        ({ st with monitor_buffer = Qlist.enqueue e st.monitor_buffer }, [])

(* Broadcast NEW-ARBITER for queue [q], honouring the Section 3.1
   suppression option. A self-singleton is not announced when the
   arbiter identity is unchanged ([prev_announced] is already us):
   nobody's knowledge goes stale and Eq. 1 counts zero messages for
   the requester-is-arbiter case. *)
let announce cfg st ~prev_announced ~q ~counter ~next_monitor =
  let tail = match Qlist.final_holder q with Some t -> t | None -> st.me in
  let msg =
    New_arbiter
      {
        na_arbiter = tail;
        na_q = q;
        na_granted = st.granted_known;
        na_counter = counter;
        na_monitor = next_monitor;
        na_epoch = st.token_epoch;
        na_election = st.election;
        na_view = st.view;
      }
  in
  match q with
  | [ e ]
    when e.Qlist.node = st.me && prev_announced = st.me
         && not cfg.Config.recovery ->
      (* Self-singleton, role unchanged: nothing anyone needs to hear.
         With recovery on we announce anyway — the epoch riding on the
         announcement is what lets a healed partition discover (and
         invalidate) a superseded token universe; a silent self-serving
         arbiter would keep a split brain alive indefinitely. *)
      []
  | [ e ] when cfg.Config.skip_new_arbiter_to_tail ->
      (* Send point-to-point to everyone except ourselves and the new
         arbiter, which learns its election from the token itself. *)
      List.filter_map
        (fun dst ->
          if dst = st.me || dst = e.Qlist.node then None
          else Some (Send (dst, msg)))
        (member_ids st.view)
  | _ -> bcast cfg st msg

(* Coordinator's patience for READ-DONE replies: at least one blind
   retry period, and at least a grant round-trip plus the CS itself. *)
let rbatch_delay cfg =
  Float.max cfg.Config.retry_timeout
    ((2.0 *. cfg.Config.t_msg) +. cfg.Config.t_exec)

let read_grants token ~minor others =
  List.map
    (fun e ->
      Send
        ( e.Qlist.node,
          Read_grant
            { rg_epoch = token.epoch; rg_minor = minor; rg_entry = e } ))
    others

(* Give the token (with Q-list [q]) its first hop, or enter the CS
   directly when we head the list ourselves. When the head of the list
   opens a maximal run of two or more compatible readers, the head
   becomes the batch coordinator: it enters the CS and READ-GRANTs the
   rest of the run in one grant batch. A batch of one — every
   exclusive grant, and a solo reader — takes the unchanged path. *)
let launch_token cfg ~now st token =
  let st = { st with last_token_seen = now } in
  match token.tq with
  | [] -> assert false
  | head :: _ when head.Qlist.node = st.me -> (
      let outstanding =
        match st.outstanding with
        | Some s when s <= head.Qlist.seq -> None
        | o -> o
      in
      match Qlist.head_batch token.tq with
      | [] | [ _ ] ->
          ( { st with in_cs = true; token = Some token; outstanding;
              executed_this_round = cfg.Config.recovery },
            [ Enter_cs; Cancel_timer T_token; Cancel_timer T_retry ] )
      | batch ->
          let minor =
            Qlist.Granted.total (Qlist.Granted.mark_all token.granted batch)
          in
          let others =
            List.filter (fun e -> e.Qlist.node <> st.me) batch
          in
          ( { st with in_cs = true; token = Some token; outstanding;
              executed_this_round = cfg.Config.recovery;
              rbatch =
                Some
                  { rb_entries = batch;
                    rb_await = List.map (fun e -> e.Qlist.node) others;
                    rb_minor = minor;
                    rb_tries = 0 } },
            (Enter_cs :: read_grants token ~minor others)
            @ [ Note (Read_batch (List.length batch));
                Set_timer (T_rbatch, rbatch_delay cfg);
                Cancel_timer T_token; Cancel_timer T_retry ] ))
  | head :: _ ->
      ({ st with token = None }, [ Send (head.Qlist.node, Privilege token) ])

(* End of a collection window with the token in hand: Figure 1's
   dispatch step. *)
let dispatch cfg ~now st =
  match (st.role, st.token) with
  | Collecting _, Some _
    when (match st.pending_vc with
         | Some pv -> not pv.pv_committed
         | None -> false) ->
      (* A view-change proposal is awaiting its quorum: hold the token
         (the serialization point for views) and try again shortly. *)
      ( st,
        [ Set_timer
            ( T_dispatch,
              Float.max cfg.Config.t_collect cfg.Config.enquiry_timeout ) ] )
  | Collecting { cq; anchor; _ }, Some token ->
      let q = Qlist.prune token.granted cq in
      if q = [] then
        (* Nothing (new) to schedule: keep collecting, unarmed; the
           next request re-arms at the window boundary. *)
        ( { st with role = Collecting { cq = []; anchor; armed = false } },
          [] )
      else begin
        let q =
          match cfg.Config.priorities with
          | Some p -> Qlist.sort_by_priority p q
          | None ->
              if cfg.Config.least_served_first then
                Qlist.sort_least_served token.granted q
              else q
        in
        (* Writer priority (read-write policy): mode dominates, any
           other sort is the tie-break within each mode class. Sorting
           readers adjacent is also what lets maximal batches form. *)
        let q =
          if cfg.Config.writer_priority && cfg.Config.priorities = None then
            Qlist.sort_writers_first q
          else q
        in
        let prev_announced = st.arbiter in
        let tail = match Qlist.final_holder q with Some t -> t | None -> st.me in
        let counter = st.na_counter + 1 in
        let monitor_route =
          monitored st && st.me <> st.monitor
          && counter >= avg_qsize_ceiling st
        in
        let base =
          { st with
            last_q = keep_last_q cfg q;
            prev_arbiter = keep_prev cfg st st.me;
            arbiter = tail;
            election = st.election + 1;
            executed_this_round = false;
            observed_q_len = List.length q;
            qsizes = observe_qsize cfg st q }
        in
        let base =
          { base with
            watching = cfg.Config.recovery && tail <> st.me }
        in
        let watch =
          if base.watching then
            [ Set_timer (T_watch, cfg.Config.arbiter_timeout) ]
          else []
        in
        let note =
          [
            Note (Queue_length (List.length q));
            (* Collection window just closed: its duration is dispatch
               time minus the window anchor (Figure 1's Tcoll, as
               actually realised — idle windows stretch it). *)
            Note (Phase ("collection", now -. anchor));
          ]
        in
        if monitor_route then begin
          (* Section 4.1: hand the token to the monitor without
             broadcasting; the monitor augments Q, broadcasts with the
             counter reset, and forwards the token. *)
          let token = { token with tq = q; election = base.election; vepoch = base.view.vnum } in
          let st' =
            { base with
              token = None;
              last_token_seen = now;
              na_counter = counter;
              role =
                (if tail = st.me then Await_token []
                 else Forwarding { next_arbiter = tail }) }
          in
          let forward_end =
            if tail = st.me then
              (* The token is travelling back to us via the monitor;
                 it can die en route, and as the Await_token arbiter
                 nobody else will notice (Section 6, Lost Token). *)
              if cfg.Config.recovery then
                [ Set_timer (T_token, cfg.Config.token_timeout) ]
              else []
            else [ Set_timer (T_forward_end, cfg.Config.t_forward) ]
          in
          ( st',
            [ Send (st.monitor, Monitor_privilege token); Note Monitor_pass ]
            @ forward_end @ watch @ note )
        end
        else begin
          let counter = if st.me = st.monitor then 0 else counter in
          let base = { base with na_counter = keep_counter st counter } in
          (* When the arbiter is itself the monitor, flush its parked
             requests into this dispatch. *)
          let q, base =
            if st.me = st.monitor && base.monitor_buffer <> [] then
              let merged =
                List.fold_left
                  (fun acc e -> Qlist.enqueue e acc)
                  q
                  (Qlist.prune token.granted base.monitor_buffer)
              in
              (merged, { base with monitor_buffer = []; last_q = merged })
            else (q, base)
          in
          let tail = match Qlist.final_holder q with Some t -> t | None -> st.me in
          let base = { base with arbiter = tail } in
          (* Monitor rotation happens only when the monitor itself
             broadcasts (Section 5.1); a regular dispatch re-announces
             the current monitor unchanged. *)
          let announce_effs =
            announce cfg base ~prev_announced ~q ~counter
              ~next_monitor:st.monitor
          in
          let token = { token with tq = q; election = base.election; vepoch = base.view.vnum } in
          let st', launch_effs =
            if tail = st.me then begin
              (* We stay arbiter: after our own CS completes the token
                 stays here and collection restarts. *)
              let st' = { base with role = Await_token [] } in
              let st', effs = launch_token cfg ~now st' token in
              (* If the token left us (sent to the queue head), arm the
                 lost-token watchdog: we are the only node positioned
                 to notice it never comes back. *)
              if cfg.Config.recovery && st'.token = None then
                (st', effs @ [ Set_timer (T_token, cfg.Config.token_timeout) ])
              else (st', effs)
            end
            else begin
              let st' =
                { base with role = Forwarding { next_arbiter = tail } }
              in
              let st', effs = launch_token cfg ~now st' token in
              (st', effs @ [ Set_timer (T_forward_end, cfg.Config.t_forward) ])
            end
          in
          (st', announce_effs @ launch_effs @ watch @ note)
        end
      end
  | _ -> (st, []) (* stale dispatch timer *)

(* The token has come into our hands as (future) arbiter: start a
   fresh full collection window (Figure 1: request-collection runs
   after the privilege arrives). If we have an unserved request of our
   own that is not yet queued anywhere (it may have been dropped while
   travelling), schedule it here: the arbiter must never starve
   itself. *)
let become_collecting cfg ~now st pre_q token =
  (* Absorb any requests parked while we were not yet the arbiter. *)
  let pre_q =
    List.fold_left (fun acc e -> Qlist.enqueue e acc) pre_q st.stash
  in
  let st = { st with stash = [] } in
  let pre_q =
    match st.outstanding with
    | Some seq
      when (not (Qlist.mem st.me pre_q))
           && not
                (Qlist.Granted.already_served token.granted
                   (Qlist.entry ~node:st.me ~seq ())) ->
        Qlist.enqueue (Qlist.entry ~mode:st.out_mode ~node:st.me ~seq ()) pre_q
    | _ -> pre_q
  in
  let armed = Qlist.prune token.granted pre_q <> [] in
  let st' =
    { st with
      role = Collecting { cq = pre_q; anchor = now; armed };
      token = Some token;
      last_token_seen = now;
      arbiter = st.me }
  in
  let cancel =
    if cfg.Config.recovery then [ Cancel_timer T_token ] else []
  in
  let effs =
    cancel
    @
    if armed then [ Set_timer (T_dispatch, cfg.Config.t_collect) ] else []
  in
  if cfg.Config.t_collect <= 0.0 then
    (* Degenerate zero-length window: dispatch immediately (the armed
       timer, if any, becomes a harmless stale no-op). *)
    let st'', effs' = dispatch cfg ~now st' in
    (st'', effs @ effs')
  else (st', effs)

(* ------------------------------------------------------------------ *)
(* Token passing                                                       *)

let pass_token_on cfg ~now st token =
  match token.tq with
  | [] ->
      (* We are the tail: the new arbiter. We may or may not have seen
         our NEW-ARBITER announcement (it can be suppressed by the
         Section 3.1 option); the token itself is the proof. *)
      let pre_q = match st.role with Await_token q -> q | _ -> [] in
      let st = { st with prev_arbiter = keep_prev cfg st st.arbiter } in
      let st', effs = become_collecting cfg ~now st pre_q token in
      (st', (Note Became_arbiter :: effs))
  | head :: _ when head.Qlist.node = st.me ->
      (* Possible only with a duplicate entry for us; serve it. *)
      launch_token cfg ~now st token
  | head :: _ ->
      ( { st with token = None; last_token_seen = now },
        [ Send (head.Qlist.node, Privilege token) ] )

(* Surface the next queued application request, if any. *)
let surface_pending cfg ~now (st, effs) =
  if st.pending > 0 then begin
    let mode, st = pop_pending_mode st in
    let st = { st with pending = st.pending - 1 } in
    let st, effs' = issue_request cfg ~now ~mode st in
    (st, effs @ effs')
  end
  else (st, effs)

(* The whole shared batch is over (our own CS and every READ-DONE):
   mark every batch entry in the served vector at once — one grant,
   one fencing advance — drop the batch from the Q-list and move the
   token on. Mirrors the tail of [cs_done] for the exclusive case. *)
let finish_batch cfg ~now st token b =
  let granted = Qlist.Granted.mark_all token.granted b.rb_entries in
  let in_batch e =
    List.exists
      (fun be -> be.Qlist.node = e.Qlist.node && be.Qlist.seq = e.Qlist.seq)
      b.rb_entries
  in
  let tq = List.filter (fun e -> not (in_batch e)) token.tq in
  let token = { token with tq; granted } in
  let st =
    { st with rbatch = None;
      granted_known = Qlist.Granted.merge st.granted_known granted }
  in
  if not (is_member st.view st.me) then
    (* Excised while the batch was in flight ([apply_view] deferred the
       hand-off exactly as for an exclusive holder mid-CS): drain the
       queue of excised entries, stamp the committed view and hand the
       token to the heir before going dark. *)
    let tq =
      List.filter (fun e -> is_member st.view e.Qlist.node) token.tq
    in
    let token = { token with tq; vepoch = st.view.vnum } in
    let heir =
      match tq with
      | e :: _ -> e.Qlist.node
      | [] -> ( match member_ids st.view with h :: _ -> h | [] -> st.me)
    in
    ( { st with token = None; role = Normal; suspended = false },
      Cancel_timer T_rbatch
      :: (if heir = st.me then [] else [ Send (heir, Privilege token) ])
      @ [ Note (Custom "excised-handoff") ] )
  else if st.suspended then
    (* An ENQUIRY froze us: hold the token until RESUME. *)
    ( { st with token = Some token; last_token_seen = now },
      [ Cancel_timer T_rbatch ] )
  else
    let st, effs = pass_token_on cfg ~now st token in
    (st, Cancel_timer T_rbatch :: effs)

let cs_done cfg ~now st =
  match st.rgrant with
  | Some r ->
      (* A batched reader leaving the CS: tell the coordinator. Our own
         slot of the served vector can be recorded right away — the
         coordinator marks the whole batch when it completes. *)
      let e = Qlist.entry ~mode:Types.Shared ~node:st.me ~seq:r.rg_seq () in
      let st =
        { st with in_cs = false; rgrant = None;
          granted_known = Qlist.Granted.mark st.granted_known e }
      in
      surface_pending cfg ~now
        (st, [ Send (r.rg_from, Read_done { rd_seq = r.rg_seq }) ])
  | None -> (
  match (st.token, st.rbatch) with
  | None, _ -> (st, []) (* spurious *)
  | Some token, Some b ->
      (* Batch coordinator done with its own read: the token may only
         move once every batched reader's READ-DONE is in. *)
      let st = { st with in_cs = false } in
      if b.rb_await = [] then
        surface_pending cfg ~now (finish_batch cfg ~now st token b)
      else surface_pending cfg ~now (st, [])
  | Some token, None ->
      let served, rest =
        match token.tq with
        | e :: rest when e.Qlist.node = st.me -> (Some e, rest)
        | q -> (None, q)
      in
      let granted =
        match served with
        | Some e -> Qlist.Granted.mark token.granted e
        | None -> token.granted
      in
      let token = { token with tq = rest; granted } in
      let st =
        { st with in_cs = false; granted_known =
            Qlist.Granted.merge st.granted_known granted }
      in
      if not (is_member st.view st.me) then
        (* Excised mid-CS ([apply_view] deferred the hand-off to keep
           mutual exclusion): now that the CS is over, hand the token
           — stamped with the committed view, drained of our own and
           other excised entries — to the heir and go dark. *)
        let tq =
          List.filter (fun e -> is_member st.view e.Qlist.node) token.tq
        in
        let token = { token with tq; vepoch = st.view.vnum } in
        let heir =
          match tq with
          | e :: _ -> e.Qlist.node
          | [] -> ( match member_ids st.view with h :: _ -> h | [] -> st.me)
        in
        ( { st with token = None; role = Normal; suspended = false },
          (if heir = st.me then []
           else [ Send (heir, Privilege token) ])
          @ [ Note (Custom "excised-handoff") ] )
      else
      let st, effs =
        if st.suspended then
          (* An ENQUIRY froze us: hold the token until RESUME. *)
          ({ st with token = Some token; last_token_seen = now }, [])
        else pass_token_on cfg ~now st token
      in
      surface_pending cfg ~now (st, effs))

(* ------------------------------------------------------------------ *)
(* NEW-ARBITER bookkeeping (requester side + election)                 *)

(* Requester-side reaction to an announced Q-list: the Q-list is the
   implicit acknowledgement (Section 6, Lost Request). Runs both on a
   received NEW-ARBITER and on the Q-list a node announces itself (a
   broadcaster is not delivered its own broadcast, but it has observed
   the same information). *)
let observe_qlist cfg st q =
  match st.outstanding with
  | None -> (st, [])
  | Some seq ->
      if
        Qlist.Granted.already_served st.granted_known
          (Qlist.entry ~node:st.me ~seq ())
      then
        ({ st with outstanding = None },
         [ Cancel_timer T_retry; Cancel_timer T_token ])
      else if Qlist.mem st.me q then
        (* Confirmed scheduled: the blind retry timer is no longer
           needed (and at large N a queue rotation can outlast it,
           which would flood the arbiter with duplicates). *)
        let effs =
          Cancel_timer T_retry
          ::
          (if cfg.Config.recovery then
             [ Set_timer (T_token, cfg.Config.token_timeout) ]
           else [])
        in
        ({ st with misses = 0 }, effs)
      else if st.arbiter = st.me then
        (* We are (about to be) the arbiter ourselves; our request is
           re-queued by [become_collecting], never retransmitted. *)
        (st, [])
      else begin
        let misses = st.misses + 1 in
        let monitor_misses =
          if monitored st then st.monitor_misses + 1 else 0
        in
        if
          monitored st && st.me <> st.monitor
          && monitor_misses >= cfg.Config.forward_threshold
        then
          ( { st with misses; monitor_misses = 0 },
            [ Send
                ( st.monitor,
                  Monitor_request
                    (Qlist.entry ~mode:st.out_mode ~node:st.me ~seq ()) );
              Note Resubmitted_to_monitor ] )
        else if misses >= cfg.Config.retransmit_misses then
          let arm =
            if cfg.Config.max_retries = 0 then []
            else [ Set_timer (T_retry, retry_delay cfg st) ]
          in
          ( { st with misses = 0; monitor_misses },
            Send
              ( st.arbiter,
                Request (Qlist.entry ~mode:st.out_mode ~node:st.me ~seq ()) )
            :: Note Retransmitted :: arm )
        else ({ st with misses; monitor_misses }, [])
      end

let receive_new_arbiter cfg ~now st ~src na =
  if na.na_view.vnum < st.view.vnum then
    (* An announcement from a superseded membership universe: only its
       monotone knowledge is absorbed; obeying its election could
       resurrect an excised arbiter. *)
    ( { st with
        granted_known = Qlist.Granted.merge st.granted_known na.na_granted;
        token_epoch = max st.token_epoch na.na_epoch },
      [ Note (Custom "stale-view-announcement") ] )
  else
  let st, view_effs =
    if na.na_view.vnum > st.view.vnum then
      (* The announcement carries a newer view than ours (we missed a
         VIEW-CHANGE commit): anti-entropy catch-up. *)
      apply_view cfg ~now st na.na_view ~granted:na.na_granted
        ~tepoch:na.na_epoch ~elec:na.na_election ~arbiter:na.na_arbiter
    else (st, [])
  in
  if not (is_member st.view st.me) then (st, view_effs)
  else
  let st, main_effs =
  (* Split-brain repair: a healed partition can leave two arbiters,
     each with a token, both racing their election counters so neither
     ever adopts the other's announcement. Token epochs are the
     tie-breaker — they only move on regeneration — so epoch knowledge
     must travel unconditionally, and a token from a superseded epoch
     must be discarded by whoever holds it (not mid-CS: the current
     excursion finishes; the token dies right after). *)
  let stale_token =
    cfg.Config.recovery && (not st.in_cs) && st.rbatch = None
    && match st.token with
       | Some tk -> tk.epoch < na.na_epoch
       | None -> false
  in
  let st, pre_effs =
    if not stale_token then (st, [])
    else
      let q =
        match st.role with
        | Collecting { cq; _ } -> cq
        | Await_token q -> q
        | Normal | Forwarding _ -> []
      in
      if na.na_arbiter = st.me then
        (* We are the arbiter of the newer universe too: keep the
           queue and wait for the valid token. *)
        ( { st with
            token = None;
            role = Await_token q;
            token_epoch = max st.token_epoch na.na_epoch },
          [ Note (Custom "token-invalidated");
            Set_timer (T_token, cfg.Config.token_timeout) ] )
      else
        let fwd = List.map (fun e -> Send (na.na_arbiter, Request e)) q in
        ( { st with
            token = None;
            role = Normal;
            arbiter = na.na_arbiter;
            token_epoch = max st.token_epoch na.na_epoch },
          Note (Custom "token-invalidated") :: fwd )
  in
  if na.na_election < st.election then
    (* A reordered announcement from a past election: obeying it could
       re-elect a node that has already handed the role on. Only the
       monotone knowledge (the L vector and the token epoch) is
       absorbed. *)
    ( { st with
        granted_known = Qlist.Granted.merge st.granted_known na.na_granted;
        token_epoch = max st.token_epoch na.na_epoch },
      pre_effs )
  else begin
  let st =
    { st with
      arbiter = na.na_arbiter;
      prev_arbiter = keep_prev cfg st src;
      monitor = na.na_monitor;
      na_counter = keep_counter st na.na_counter;
      last_q = keep_last_q cfg na.na_q;
      granted_known = Qlist.Granted.merge st.granted_known na.na_granted;
      token_epoch = max st.token_epoch na.na_epoch;
      election = max st.election na.na_election;
      executed_this_round = false;
      observed_q_len = List.length na.na_q;
      qsizes = observe_qsize cfg st na.na_q }
  in
  (* Watch transfer: a normal hand-off (announced by the outgoing
     dispatcher) makes that dispatcher the new watcher, so everyone
     else stands down. A self-announcement (src = arbiter: a
     self-re-election or a takeover) changes nothing about who watches
     — the current watcher re-arms and keeps watching. *)
  let self_announced = src = na.na_arbiter in
  let st =
    if cfg.Config.recovery then
      { st with watching = self_announced && st.watching }
    else st
  in
  let effs =
    if not cfg.Config.recovery then []
    else
      (* Whoever this announcement names, the arbiter identity was
         just refreshed: any probe in flight is answering a stale
         question (the next T_token/T_watch cycle re-probes). *)
      Cancel_timer T_probe
      ::
      (if st.watching then [ Set_timer (T_watch, cfg.Config.arbiter_timeout) ]
       else [ Cancel_timer T_watch ])
  in
  (* A live announcement naming someone else supersedes any
     invalidation we were running ourselves: the named arbiter owns
     recovery now. Without this a superseded recoverer keeps
     re-ENQUIRYing and, once its quorum finally arrives, mints a
     competing token. *)
  let st, effs =
    if cfg.Config.recovery && st.recovery <> None && na.na_arbiter <> st.me
    then ({ st with recovery = None }, Cancel_timer T_enquiry :: effs)
    else (st, effs)
  in
  (* Election. *)
  let st, effs =
    if na.na_arbiter = st.me then
      match st.role with
      | Normal | Forwarding _ ->
          (* Elected: besides collecting, watch for the token itself —
             it can be lost before it ever reaches us (Section 6). *)
          let effs =
            if cfg.Config.recovery then
              Set_timer (T_token, cfg.Config.token_timeout) :: effs
            else effs
          in
          ({ st with role = Await_token [] }, effs)
      | Await_token _ ->
          (* Already elected and still waiting: keep our queue, but
             refresh the lost-token watchdog — this announcement is
             not the token. *)
          let effs =
            if cfg.Config.recovery then
              Set_timer (T_token, cfg.Config.token_timeout) :: effs
            else effs
          in
          (st, effs)
      | Collecting _ ->
          (* Already the arbiter with the token in hand. *)
          (st, effs)
    else
      match st.role with
      | Await_token q when q <> [] ->
          (* We were superseded (recovery path): salvage what we
             collected by forwarding it to the real arbiter. *)
          let fwd =
            List.map (fun e -> Send (na.na_arbiter, Request e)) q
          in
          ({ st with role = Normal }, effs @ fwd)
      | Await_token _ -> ({ st with role = Normal }, effs)
      | Normal | Forwarding _ | Collecting _ -> (st, effs)
  in
  (* Hand over any parked requests to the announced arbiter. *)
  let st, effs =
    if st.stash = [] then (st, effs)
    else begin
      let live = Qlist.prune st.granted_known st.stash in
      if na.na_arbiter = st.me then
        (* We are the arbiter: keep them; they merge into our queue in
           [become_collecting] (or are already there). *)
        match st.role with
        | Await_token q ->
            let q =
              List.fold_left (fun acc e -> Qlist.enqueue e acc) q live
            in
            ({ st with stash = []; role = Await_token q }, effs)
        | Collecting _ | Normal | Forwarding _ -> (st, effs)
      else
        let sends =
          List.concat_map
            (fun e ->
              [ Send
                  (na.na_arbiter,
                   Request { e with Qlist.hops = e.Qlist.hops + 1 });
                Note Stash_forwarded ])
            live
        in
        ({ st with stash = [] }, effs @ sends)
    end
  in
  (* A live announcement is the fresh knowledge that ends a restart's
     resynchronization: epoch and election were just absorbed above,
     so a parked request can finally go out. *)
  let st, resync_effs = end_resync cfg ~now st in
  (* Requester bookkeeping: the Q-list doubles as an implicit ack. *)
  let st, effs' = observe_qlist cfg st na.na_q in
  (st, pre_effs @ effs @ resync_effs @ effs')
  end
  in
  (st, view_effs @ main_effs)

(* ------------------------------------------------------------------ *)
(* Monitor pass (Section 4.1)                                          *)

let receive_monitor_privilege cfg ~now st token =
  if token.epoch < st.token_epoch then (st, [ Note (Custom "stale-token") ])
  else if token.vepoch < st.view.vnum then
    (st, [ Note (Custom "stale-view-token") ])
  else begin
    (* Same as the PRIVILEGE receipt: the token in hand supersedes any
       enquiry round we were running (see [Receive Privilege]). *)
    let aborted = st.recovery <> None in
    let st =
      { st with token_epoch = token.epoch;
        election = max st.election token.election;
        amnesiac = false; sync_wait = false; recovery = None }
    in
    let abort_effs = if aborted then [ Cancel_timer T_enquiry ] else [] in
    let q =
      List.fold_left
        (fun acc e -> Qlist.enqueue e acc)
        token.tq
        (Qlist.prune token.granted st.monitor_buffer)
    in
    let st = { st with monitor_buffer = [] } in
    match q with
    | [] ->
        (* Every scheduled request turned out served: the monitor
           becomes the arbiter itself and restarts collection. *)
        let st', effs = become_collecting cfg ~now st [] { token with tq = [] } in
        (st', abort_effs @ (Note Became_arbiter :: effs))
    | _ ->
        let prev_announced = st.arbiter in
        let tail = match Qlist.final_holder q with Some t -> t | None -> st.me in
        let next_monitor =
          if cfg.Config.rotate_monitor then (st.me + 1) mod cfg.Config.n
          else st.me
        in
        let st =
          { st with
            arbiter = tail;
            prev_arbiter = keep_prev cfg st st.me;
            na_counter = 0;
            last_q = keep_last_q cfg q;
            monitor = next_monitor;
            observed_q_len = List.length q;
            qsizes = observe_qsize cfg st q }
        in
        let announce_effs =
          announce cfg st ~prev_announced ~q ~counter:0 ~next_monitor
        in
        let token = { token with tq = q } in
        let st, effs =
          if tail = st.me then
            let st = { st with role = Await_token [] } in
            launch_token cfg ~now st token
          else launch_token cfg ~now st token
        in
        (* The monitor observes the Q-list it just announced: its own
           broadcast is not delivered back to it. *)
        let st, effs' = observe_qlist cfg st q in
        (st, abort_effs @ announce_effs @ effs @ effs')
  end

(* ------------------------------------------------------------------ *)
(* Shared grant batches                                                *)

(* A READ-GRANT admits us into the CS as one reader of a shared batch.
   The coordinator holds the token; we hold only the grant. Stale or
   duplicate grants are answered with READ-DONE immediately so the
   coordinator is never stuck on a reader that has moved on. *)
let receive_read_grant cfg st ~src rg =
  if rg.rg_epoch < st.token_epoch then
    (st, [ Note (Custom "stale-read-grant") ])
  else
    let e = rg.rg_entry in
    if st.in_cs then
      (* A duplicate of the grant we are already executing: the
         READ-DONE goes out at [Cs_done]. *)
      (st, [])
    else
      match st.outstanding with
      | Some seq when seq = e.Qlist.seq && e.Qlist.node = st.me ->
          ( { st with in_cs = true; outstanding = None;
              rgrant =
                Some
                  { rg_from = src; rg_seq = seq;
                    rg_fepoch = rg.rg_epoch; rg_fminor = rg.rg_minor };
              token_epoch = max st.token_epoch rg.rg_epoch;
              executed_this_round = cfg.Config.recovery },
            [ Enter_cs; Cancel_timer T_retry; Cancel_timer T_token ] )
      | _ -> (st, [ Send (src, Read_done { rd_seq = e.Qlist.seq }) ])

let receive_read_done cfg ~now st ~src ~rd_seq =
  match st.rbatch with
  | Some b
    when List.exists
           (fun e -> e.Qlist.node = src && e.Qlist.seq = rd_seq)
           b.rb_entries ->
      let rb_await = List.filter (fun j -> j <> src) b.rb_await in
      let b = { b with rb_await } in
      let st = { st with rbatch = Some b } in
      if rb_await = [] && not st.in_cs then
        match st.token with
        | Some token -> finish_batch cfg ~now st token b
        | None -> (st, []) (* unreachable: a coordinator holds the token *)
      else (st, [])
  | _ -> (st, []) (* stale READ-DONE from an already-completed batch *)

let rbatch_timeout cfg ~now st =
  match (st.rbatch, st.token) with
  | Some b, Some token ->
      if b.rb_await = [] then
        (* A view change may have drained the await list with nothing
           left to trigger completion: do it here. *)
        if st.in_cs then (st, []) else finish_batch cfg ~now st token b
      else if cfg.Config.recovery && b.rb_tries >= 2 then begin
        (* Readers still silent after two re-grant rounds are dead
           (crash-stop is modelled when recovery is on): force the
           batch complete so a crashed reader cannot wedge the token.
           Their requests are spent either way — the batch entries are
           marked served. *)
        let st = { st with rbatch = Some { b with rb_await = [] } } in
        if st.in_cs then (st, [ Note (Custom "rbatch-forced") ])
        else
          let st, effs = finish_batch cfg ~now st token b in
          (st, Note (Custom "rbatch-forced") :: effs)
      end
      else
        let others =
          List.filter
            (fun e -> List.mem e.Qlist.node b.rb_await)
            b.rb_entries
        in
        ( { st with rbatch = Some { b with rb_tries = b.rb_tries + 1 } },
          read_grants token ~minor:b.rb_minor others
          @ [ Set_timer (T_rbatch, rbatch_delay cfg) ] )
  | _ -> (st, []) (* stale timer *)

(* ------------------------------------------------------------------ *)
(* Section 6: recovery                                                 *)

let start_recovery cfg st =
  match st.recovery with
  | Some _ -> (st, [])
  | None ->
      if st.token <> None then (st, []) (* we hold the token: no loss *)
      else if st.amnesiac then
        (* Restarted with no durable state: our epoch knowledge may be
           arbitrarily stale, so running an invalidation could end in
           regenerating a token while the real one lives (or with a
           burnt epoch). Refuse until fresh knowledge clears the
           amnesia; the live nodes' own watchdogs cover the loss. *)
        (st, [ Note (Custom "recovery-refused-amnesiac") ])
      else begin
        let round = st.enq_round + 1 in
        (* Everyone is enquired, not just the last Q-list: the replies
           double as the quorum that gates regeneration (see
           [finish_recovery]), so the wider the net, the sooner a
           legitimate recovery completes — and a partitioned minority
           can never mint a second token. *)
        let targets =
          member_ids st.view |> List.filter (fun j -> j <> st.me)
        in
        let sends = List.map (fun j -> Send (j, Enquiry { round })) targets in
        ( { st with
            recovery =
              Some { rround = round; expected = targets; replied = []; waiting = [] };
            enq_round = round },
          sends
          @ [ Set_timer (T_enquiry, cfg.Config.enquiry_timeout);
              Note Recovery_started ] )
      end

(* Phase 2: every reply is in (or the arbiter timed out): if nobody has
   the token, regenerate it with the still-waiting requesters at the
   front of our queue (Section 6, Lost Token). *)
let finish_recovery cfg ~now st =
  match st.recovery with
  | None -> (st, [])
  | Some _ when st.amnesiac ->
      (* Belt and braces: amnesia can only postdate an in-flight
         invalidation if state was lost mid-protocol — never mint a
         token from counters we cannot trust. *)
      ( { st with recovery = None },
        [ Cancel_timer T_enquiry; Note (Custom "recovery-refused-amnesiac") ] )
  | Some r
    when 1 + List.length (List.sort_uniq compare r.replied)
         < majority st.view ->
      (* Not enough of the cluster heard from: regenerating now could
         mint a token while the real one lives across a partition.
         Keep asking the silent nodes; the quorum arrives when the
         partition heals (or never, if too many really crashed — in
         which case there is no safe recovery to be had). *)
      let silent =
        List.filter (fun j -> not (List.mem j r.replied)) r.expected
      in
      ( st,
        List.map (fun j -> Send (j, Enquiry { round = r.rround })) silent
        @ [ Set_timer (T_enquiry, cfg.Config.enquiry_timeout) ] )
  | Some r ->
      let st = { st with recovery = None } in
      let invalidates =
        List.map (fun e -> Send (e.Qlist.node, Invalidate { round = r.rround }))
          (List.filter (fun e -> e.Qlist.node <> st.me) r.waiting)
      in
      (* The epoch skip is id-salted so two nodes regenerating
         concurrently from the same base (both sides of a partition
         lost the token) cannot mint equal epochs — an equal-epoch
         pair would be two forever-valid tokens. *)
      let epoch = st.token_epoch + 1 + st.me in
      let token =
        { tq = []; granted = st.granted_known; epoch;
          election = st.election; vepoch = st.view.vnum }
      in
      let st = { st with token_epoch = epoch } in
      let pre_q, st =
        match st.role with
        | Await_token q -> (q, st)
        | Collecting { cq; _ } -> (cq, st)
        | Normal | Forwarding _ -> ([], { st with role = Await_token [] })
      in
      let merged =
        List.fold_left (fun acc e -> Qlist.enqueue e acc) r.waiting pre_q
      in
      let st, effs = become_collecting cfg ~now st merged token in
      (st, invalidates @ (Note Token_regenerated :: effs)
           @ [ Cancel_timer T_enquiry ])

let receive_enquiry cfg st ~src ~round =
  let status =
    if st.token <> None then Have_token
    else if st.executed_this_round then Executed
    else Waiting_token
  in
  let st =
    if status = Have_token then
      { st with suspended = true; enq_round = max st.enq_round round }
    else { st with enq_round = max st.enq_round round }
  in
  (* An ENQUIRY proves [src] is running an invalidation of its own. If
     we are too, exactly one of the two may finish: both completing
     regenerates two tokens (the id-salted epochs keep them unequal,
     but both are live until they meet — a transient mutual-exclusion
     hole, easily hit when a healed partition lets two pending rounds
     reach quorum together). Lowest id wins: the higher-id node folds
     its round and becomes a quorum member of the survivor's — its
     WAITING reply carries its requesters into the regenerated token's
     queue. The lost-token watchdog is re-armed so a winner that dies
     mid-round just delays recovery instead of stranding it. *)
  let st, tie_break =
    if st.recovery <> None && status <> Have_token && src < st.me then
      ( { st with recovery = None },
        [ Cancel_timer T_enquiry;
          Set_timer (T_token, cfg.Config.token_timeout);
          Note (Custom "recovery-yielded") ] )
    else (st, [])
  in
  (st, Send (src, Enquiry_reply { round; status }) :: tie_break)

let receive_enquiry_reply cfg ~now st ~src ~round ~status =
  match st.recovery with
  | Some r when r.rround = round ->
      let r = { r with replied = src :: r.replied } in
      (match status with
      | Have_token ->
          (* Token located: resume normal operation. If we are the
             arbiter still waiting for it, keep the lost-token
             watchdog armed — the resumed pass can die in transit
             exactly like the one that triggered this round. *)
          ( { st with recovery = None },
            [ Send (src, Resume { round }); Cancel_timer T_enquiry ]
            @
            (if st.arbiter = st.me && st.token = None then
               [ Set_timer (T_token, cfg.Config.token_timeout) ]
             else []) )
      | Executed | Waiting_token ->
          let r =
            if status = Waiting_token then
              match
                List.find_opt (fun e -> e.Qlist.node = src) st.last_q
              with
              | Some e -> { r with waiting = r.waiting @ [ e ] }
              | None -> r
            else r
          in
          let st = { st with recovery = Some r } in
          let all_in =
            List.for_all (fun j -> List.mem j r.replied) r.expected
          in
          if all_in then finish_recovery cfg ~now st else (st, []))
  | _ ->
      (* Stale round — but a HAVE-TOKEN straggler still deserves its
         RESUME: the replier froze itself on our ENQUIRY (possibly a
         duplicate that landed after we closed the round), and with
         the round gone no verdict is coming — it would sit on the
         token forever. Resuming is safe either way: a stale-epoch
         token dies at the receivers' epoch guard. *)
      if status = Have_token then (st, [ Send (src, Resume { round }) ])
      else (st, [])

let receive_resume cfg ~now st ~round =
  if round < st.enq_round then (st, [])
  else begin
    let st = { st with suspended = false } in
    match (st.in_cs, st.token) with
    | false, Some token when st.rbatch = None ->
        (* We were frozen after finishing our CS: pass the token now.
           A batch coordinator instead keeps holding until its last
           READ-DONE arrives — [finish_batch] sees [suspended] off. *)
        pass_token_on cfg ~now st token
    | _ -> (st, [])
  end

let receive_invalidate cfg st ~round =
  if round < st.enq_round then (st, [])
  else
    ( { st with enq_round = round },
      if cfg.Config.recovery && st.outstanding <> None then
        [ Set_timer (T_token, cfg.Config.token_timeout) ]
      else [] )

let token_timeout cfg st =
  if st.arbiter = st.me then
    (* We are the arbiter and the token has not reached us. *)
    match st.role with
    | Await_token _ -> start_recovery cfg st
    | Normal | Forwarding _ | Collecting _ -> (st, [])
  else
    match st.outstanding with
    | None -> (st, [])
    | Some _ ->
        ( st,
          [ Send (st.arbiter, Warning);
            Set_timer (T_token, cfg.Config.token_timeout) ] )

let watch_timeout cfg st =
  (* We dispatched a while ago and saw no NEW-ARBITER since: probe the
     arbiter we are watching. *)
  if (not st.watching) || st.arbiter = st.me then (st, [])
  else
    ( st,
      [ Send (st.arbiter, Probe);
        Set_timer (T_probe, cfg.Config.enquiry_timeout) ] )

let probe_timeout cfg ~now st =
  ignore now;
  (* The arbiter is dead: proclaim ourselves (Section 6, Failed
     Arbiter), then locate or regenerate the token. *)
  let st =
    { st with
      arbiter = st.me;
      watching = false;
      election = st.election + 1;
      role =
        (match st.role with
        | Await_token _ | Collecting _ -> st.role
        | Normal | Forwarding _ -> Await_token []) }
  in
  let effs =
    bcast cfg st
      (New_arbiter
         {
           na_arbiter = st.me;
           na_q = [];
           na_granted = st.granted_known;
           na_counter = st.na_counter;
           na_monitor = st.monitor;
           na_epoch = st.token_epoch;
           na_election = st.election;
           na_view = st.view;
         })
    @ [ Note Arbiter_takeover ]
  in
  let st, effs' = start_recovery cfg st in
  (st, effs @ effs')

(* ------------------------------------------------------------------ *)
(* Membership: join / leave choreography                               *)

let vc_msg st ~view ~commit =
  View_change
    {
      vc_view = view;
      vc_commit = commit;
      vc_granted = st.granted_known;
      vc_epoch = st.token_epoch;
      vc_election = st.election;
      vc_arbiter = st.arbiter;
    }

(* Commit a quorum-approved view: apply locally first (the coordinator
   holds the token, so this stamps it with the new view epoch and
   drains excised requesters), then broadcast the commit — to the
   union of old and new members, so both a joiner and a voluntary
   leaver hear the outcome. *)
let commit_view cfg ~now st pv =
  let v = pv.pv_view in
  let old_members = member_ids st.view in
  (* Name the post-commit arbiter: ourselves, unless we are excising
     ourselves — then the TAIL of the drained queue the token carries
     out (the token ends its run there and collection restarts; the
     head is merely the next grantee), or the lowest survivor when the
     queue leaves with nothing in it. *)
  let arb =
    if is_member v st.me then st.me
    else
      let fallback =
        match member_ids v with h :: _ -> h | [] -> st.me
      in
      match st.token with
      | Some tk -> (
          match
            Qlist.final_holder (drained_queue st v ~granted:st.granted_known tk)
          with
          | Some t -> t
          | None -> fallback)
      | None -> fallback
  in
  let st, apply_effs =
    apply_view cfg ~now st v ~granted:st.granted_known
      ~tepoch:st.token_epoch ~elec:st.election ~arbiter:arb
  in
  let st = { st with arbiter = (if is_member v st.me then st.arbiter else arb) } in
  let msg = vc_msg { st with arbiter = arb } ~view:v ~commit:true in
  let recipients =
    List.sort_uniq compare (old_members @ member_ids v)
    |> List.filter (fun j -> j <> st.me)
  in
  ( { st with pending_vc = Some { pv with pv_committed = true; pv_acks = [] } },
    List.map (fun j -> Send (j, msg)) recipients
    @ apply_effs
    @ [ Set_timer (T_view, cfg.Config.enquiry_timeout);
        Note (Custom "view-committed") ] )

(* Propose a new view to every old-view member. The commit is gated on
   acks from a majority of the OLD view (counting ourselves), so a
   coordinator cut off in a minority partition can never change the
   view — the same quorum discipline that guards token regeneration. *)
let propose_view cfg ~now st v =
  let pv =
    { pv_view = v; pv_quorum = majority st.view; pv_acks = [];
      pv_committed = false }
  in
  if 1 >= pv.pv_quorum then commit_view cfg ~now st pv
  else
    let targets = member_ids st.view |> List.filter (fun j -> j <> st.me) in
    let msg = vc_msg st ~view:v ~commit:false in
    ( { st with pending_vc = Some pv },
      List.map (fun j -> Send (j, msg)) targets
      @ [ Set_timer (T_view, cfg.Config.enquiry_timeout);
          Note (Custom "view-proposed") ] )

let holding_as_arbiter st =
  st.token <> None
  && match st.role with Collecting _ -> true | _ -> false

let receive_join_request cfg ~now st (m : member) =
  if m.mid = st.me then (st, [])
  else if is_member st.view m.mid then
    (* Already admitted — the commit may have been lost. Re-send it if
       we are in a position to speak for the view. *)
    if holding_as_arbiter st then
      (st, [ Send (m.mid, vc_msg st ~view:st.view ~commit:true) ])
    else (st, [])
  else if holding_as_arbiter st then
    match st.pending_vc with
    | Some _ -> (st, [ Note (Custom "join-deferred") ])
    | None ->
        let v =
          { vnum = st.view.vnum + 1;
            vmembers = sort_members (m :: st.view.vmembers) }
        in
        propose_view cfg ~now st v
  else if st.arbiter <> st.me then
    (* Relay toward the token-holding arbiter, like a stashed
       request: believed-arbiter pointers only move forward, so the
       chain terminates. The joiner re-sends on T_view regardless. *)
    (st, [ Send (st.arbiter, Join_request m) ])
  else (st, [ Note (Custom "join-deferred") ])

let receive_leave_request cfg ~now st lid =
  if not (is_member st.view lid) then (st, [])
  else if holding_as_arbiter st then
    match st.pending_vc with
    | Some _ -> (st, [ Note (Custom "leave-deferred") ])
    | None ->
        let v =
          { vnum = st.view.vnum + 1;
            vmembers =
              List.filter (fun m -> m.mid <> lid) st.view.vmembers }
        in
        if v.vmembers = [] then (st, [ Note (Custom "leave-refused-last") ])
        else propose_view cfg ~now st v
  else if st.arbiter <> st.me && is_member st.view st.arbiter then
    (st, [ Send (st.arbiter, Leave_request lid) ])
  else (st, [ Note (Custom "leave-deferred") ])

let receive_view_change cfg ~now st ~src vc =
  let ack = Send (src, View_ack { va_vnum = vc.vc_view.vnum }) in
  if not vc.vc_commit then
    (* Proposal phase: the ack only certifies reachability — nothing
       is applied until the commit. *)
    (st, [ ack ])
  else if vc.vc_view.vnum <= st.view.vnum then (st, [ ack ])
  else
    let st, effs =
      apply_view cfg ~now st vc.vc_view ~granted:vc.vc_granted
        ~tepoch:vc.vc_epoch ~elec:vc.vc_election ~arbiter:vc.vc_arbiter
    in
    (st, ack :: effs)

let receive_view_ack cfg ~now st ~src ~va_vnum =
  match st.pending_vc with
  | Some pv when pv.pv_view.vnum = va_vnum ->
      let pv =
        { pv with pv_acks = List.sort_uniq compare (src :: pv.pv_acks) }
      in
      if not pv.pv_committed then
        if 1 + List.length pv.pv_acks >= pv.pv_quorum then
          commit_view cfg ~now st pv
        else ({ st with pending_vc = Some pv }, [])
      else if 1 + List.length pv.pv_acks >= majority pv.pv_view then
        ({ st with pending_vc = None }, [ Cancel_timer T_view ])
      else ({ st with pending_vc = Some pv }, [])
  | _ -> (st, [])

let view_timer cfg st =
  if st.joining then
    (* Keep knocking until a commit admits us. *)
    let self_m =
      match List.find_opt (fun m -> m.mid = st.me) st.view.vmembers with
      | Some m -> m
      | None -> { mid = st.me; maddr = "" }
    in
    ( st,
      [ Send (st.arbiter, Join_request self_m);
        Set_timer (T_view, cfg.Config.retry_timeout) ] )
  else
    match st.pending_vc with
    | Some pv ->
        let commit = pv.pv_committed in
        let universe =
          if commit then member_ids pv.pv_view else member_ids st.view
        in
        let silent =
          List.filter
            (fun j -> j <> st.me && not (List.mem j pv.pv_acks))
            universe
        in
        let msg = vc_msg st ~view:pv.pv_view ~commit in
        ( st,
          List.map (fun j -> Send (j, msg)) silent
          @ [ Set_timer (T_view, cfg.Config.enquiry_timeout) ] )
    | None ->
        (* Idle refresh: re-surface the current view to the runtime
           (used after a restart to re-point gauges and transports). *)
        (st, [ note_view st.view ])

(* ------------------------------------------------------------------ *)
(* Main entry point                                                    *)

let handle_inner cfg ~now st (input : (message, timer) input) :
    state * (message, timer) effect_ list =
  match input with
  | Request_cs -> request_cs cfg ~now ~mode:Types.Exclusive st
  | Request_shared_cs -> request_cs cfg ~now ~mode:Types.Shared st
  | Cs_done -> cs_done cfg ~now st
  | Timer_fired T_dispatch -> dispatch cfg ~now st
  | Timer_fired T_rbatch -> rbatch_timeout cfg ~now st
  | Timer_fired T_forward_end -> (
      match st.role with
      | Forwarding _ ->
          ( { st with role = Normal },
            [ Note (Phase ("forwarding", cfg.Config.t_forward)) ] )
      | _ -> (st, []))
  | Timer_fired T_stash -> (
      match st.role with
      | Normal | Forwarding _ when st.stash <> [] && st.arbiter <> st.me ->
          let live = Qlist.prune st.granted_known st.stash in
          let sends =
            List.concat_map
              (fun e ->
                [ Send (st.arbiter, Request { e with Qlist.hops = 0 });
                  Note Stash_forwarded ])
              live
          in
          ({ st with stash = [] }, sends)
      | _ -> (st, []))
  | Timer_fired T_retry
    when st.sync_wait && st.outstanding = None && st.pending > 0
         && not st.in_cs ->
      (* Restart resynchronization escape valve: the system stayed
         silent past a whole retry period, so stop waiting for an
         announcement and issue the parked request with the knowledge
         we have. Amnesia (if any) stays: this is a timeout, not fresh
         knowledge. *)
      let mode, st = pop_pending_mode st in
      let st = { st with sync_wait = false; pending = st.pending - 1 } in
      issue_request cfg ~now ~mode st
  | Timer_fired T_retry -> (
      match st.outstanding with
      | Some seq
        when st.arbiter <> st.me && (not st.in_cs) && st.retries_left <> 0 ->
          let retries_left =
            if st.retries_left > 0 then st.retries_left - 1
            else st.retries_left
          in
          ( { st with retries_left },
            [ Send
                ( st.arbiter,
                  Request
                    (Qlist.entry ~mode:st.out_mode ~node:st.me ~seq ()) );
              Set_timer (T_retry, retry_delay cfg st);
              Note Retransmitted ] )
      | _ -> (st, []))
  | Timer_fired T_token ->
      if cfg.Config.recovery then token_timeout cfg st else (st, [])
  | Timer_fired T_enquiry -> finish_recovery cfg ~now st
  | Timer_fired T_watch ->
      if cfg.Config.recovery then watch_timeout cfg st else (st, [])
  | Timer_fired T_probe ->
      if cfg.Config.recovery then probe_timeout cfg ~now st else (st, [])
  | Timer_fired T_view -> view_timer cfg st
  | Receive (_, Join_request m) -> receive_join_request cfg ~now st m
  | Receive (_, Leave_request lid) -> receive_leave_request cfg ~now st lid
  | Receive (src, View_change vc) -> receive_view_change cfg ~now st ~src vc
  | Receive (src, View_ack { va_vnum }) ->
      receive_view_ack cfg ~now st ~src ~va_vnum
  | Receive (_, Request e) -> receive_request cfg ~now st e
  | Receive (_, Monitor_request e) -> receive_monitor_request cfg ~now st e
  | Receive (_, Privilege token) ->
      if token.epoch < st.token_epoch then (st, [ Note (Custom "stale-token") ])
      else if token.vepoch < st.view.vnum then
        (* View changes are committed only while the token is in the
           coordinator's hands, so a token stamped with an older view
           epoch is a relic of a superseded universe. Reject loudly;
           the live token (or a regeneration) carries the current
           view. *)
        (st, [ Note (Custom "stale-view-token") ])
      else begin
        (* Holding the live token is the freshest knowledge there is:
           any restart resynchronization ends here — and so does any
           enquiry round we were running: the token cannot be lost
           while it is in our hands, yet letting the round run out
           would conclude exactly that and mint a second one. *)
        let aborted = st.recovery <> None in
        let st =
          { st with token_epoch = token.epoch;
            election = max st.election token.election;
            amnesiac = false; sync_wait = false; recovery = None }
        in
        let st, effs =
          match token.tq with
          | head :: _ when head.Qlist.node = st.me ->
              launch_token cfg ~now st token
          | _ -> pass_token_on cfg ~now st token
        in
        if aborted then (st, Cancel_timer T_enquiry :: effs) else (st, effs)
      end
  | Receive (_, Monitor_privilege token) ->
      receive_monitor_privilege cfg ~now st token
  | Receive (src, Read_grant rg) -> receive_read_grant cfg st ~src rg
  | Receive (src, Read_done { rd_seq }) ->
      receive_read_done cfg ~now st ~src ~rd_seq
  | Receive (src, New_arbiter na) -> receive_new_arbiter cfg ~now st ~src na
  | Receive (src, Warning) ->
      if not cfg.Config.recovery then (st, [])
      else if
        src <> st.me
        && now -. st.last_token_seen < cfg.Config.token_timeout
      then
        (* The token passed through our hands within one watchdog
           period: the warner's knowledge is staler than ours, and our
           own dispatch-time watchdog covers the interim. Starting an
           enquiry round against a demonstrably live token can race it
           — every reply can say "waiting" while the token is airborne
           between two repliers — and end in a second token.
           Self-warnings (injected at restart when durable custody
           proves the token died with us) are always honoured. *)
        (st, [ Note (Custom "warning-ignored-token-live") ])
      else start_recovery cfg st
  | Receive (src, Enquiry { round }) -> receive_enquiry cfg st ~src ~round
  | Receive (src, Enquiry_reply { round; status }) ->
      receive_enquiry_reply cfg ~now st ~src ~round ~status
  | Receive (_, Resume { round }) -> receive_resume cfg ~now st ~round
  | Receive (_, Invalidate { round }) -> receive_invalidate cfg st ~round
  | Receive (src, Probe) -> (st, [ Send (src, Probe_ack) ])
  | Receive (_, Probe_ack) ->
      ( st,
        if cfg.Config.recovery && st.watching then
          [ Cancel_timer T_probe;
            Set_timer (T_watch, cfg.Config.arbiter_timeout) ]
        else if cfg.Config.recovery then [ Cancel_timer T_probe ]
        else [] )

(* Defense in depth against stale senders: once membership can shrink,
   frames from outside the current view must not reach the protocol
   proper. Membership traffic itself (a joiner's knock and acks, a
   leaver's commit), and a PRIVILEGE hand-off from a leaving
   coordinator, are the only messages a non-member may deliver. *)
let handle cfg ~now st (input : (message, timer) input) :
    state * (message, timer) effect_ list =
  match input with
  | Receive (src, msg)
    when src <> st.me && (not st.joining)
         && not (is_member st.view src) -> (
      match msg with
      | Join_request _ | Leave_request _ | View_change _ | View_ack _
      | Privilege _ ->
          handle_inner cfg ~now st input
      | _ -> (st, [ Note (Custom "nonmember-dropped") ]))
  | _ -> handle_inner cfg ~now st input

(* ------------------------------------------------------------------ *)
(* Introspection and printing                                          *)

let message_kind = function
  | Request _ -> "REQUEST"
  | Monitor_request _ -> "MONITOR-REQUEST"
  | Privilege _ -> "PRIVILEGE"
  | Monitor_privilege _ -> "MONITOR-PRIVILEGE"
  | New_arbiter _ -> "NEW-ARBITER"
  | Warning -> "WARNING"
  | Enquiry _ -> "ENQUIRY"
  | Enquiry_reply _ -> "ENQUIRY-REPLY"
  | Resume _ -> "RESUME"
  | Invalidate _ -> "INVALIDATE"
  | Probe -> "PROBE"
  | Probe_ack -> "PROBE-ACK"
  | Join_request _ -> "JOIN-REQUEST"
  | Leave_request _ -> "LEAVE-REQUEST"
  | View_change _ -> "VIEW-CHANGE"
  | View_ack _ -> "VIEW-ACK"
  | Read_grant _ -> "READ-GRANT"
  | Read_done _ -> "READ-DONE"

let pp_status ppf = function
  | Have_token -> Format.pp_print_string ppf "have-token"
  | Executed -> Format.pp_print_string ppf "executed"
  | Waiting_token -> Format.pp_print_string ppf "waiting"

let pp_message ppf = function
  | Request e -> Format.fprintf ppf "REQUEST(%a)" Qlist.pp_entry e
  | Monitor_request e ->
      Format.fprintf ppf "MONITOR-REQUEST(%a)" Qlist.pp_entry e
  | Privilege t -> Format.fprintf ppf "PRIVILEGE(%a)" Qlist.pp t.tq
  | Monitor_privilege t ->
      Format.fprintf ppf "MONITOR-PRIVILEGE(%a)" Qlist.pp t.tq
  | New_arbiter na ->
      Format.fprintf ppf "NEW-ARBITER(%d, %a, c=%d)" na.na_arbiter Qlist.pp
        na.na_q na.na_counter
  | Warning -> Format.pp_print_string ppf "WARNING"
  | Enquiry { round } -> Format.fprintf ppf "ENQUIRY(r=%d)" round
  | Enquiry_reply { round; status } ->
      Format.fprintf ppf "ENQUIRY-REPLY(r=%d, %a)" round pp_status status
  | Resume { round } -> Format.fprintf ppf "RESUME(r=%d)" round
  | Invalidate { round } -> Format.fprintf ppf "INVALIDATE(r=%d)" round
  | Probe -> Format.pp_print_string ppf "PROBE"
  | Probe_ack -> Format.pp_print_string ppf "PROBE-ACK"
  | Join_request m -> Format.fprintf ppf "JOIN-REQUEST(%d@%s)" m.mid m.maddr
  | Leave_request lid -> Format.fprintf ppf "LEAVE-REQUEST(%d)" lid
  | View_change vc ->
      Format.fprintf ppf "VIEW-CHANGE(v=%d,%s,[%s])" vc.vc_view.vnum
        (if vc.vc_commit then "commit" else "propose")
        (String.concat ","
           (List.map (fun m -> string_of_int m.mid) vc.vc_view.vmembers))
  | View_ack { va_vnum } -> Format.fprintf ppf "VIEW-ACK(v=%d)" va_vnum
  | Read_grant { rg_epoch; rg_minor; rg_entry } ->
      Format.fprintf ppf "READ-GRANT(%a, e=%d, m=%d)" Qlist.pp_entry rg_entry
        rg_epoch rg_minor
  | Read_done { rd_seq } -> Format.fprintf ppf "READ-DONE(#%d)" rd_seq

let pp_role ppf = function
  | Normal -> Format.pp_print_string ppf "normal"
  | Await_token q -> Format.fprintf ppf "await-token%a" Qlist.pp q
  | Collecting { cq; armed; _ } ->
      Format.fprintf ppf "collecting%a%s" Qlist.pp cq
        (if armed then "+" else "-")
  | Forwarding { next_arbiter } ->
      Format.fprintf ppf "forwarding->%d" next_arbiter

let pp_state ppf st =
  Format.fprintf ppf
    "@[<h>node %d: view=%d arbiter=%d role=%a%s%s%s out=%s pend=%d misses=%d@]"
    st.me st.view.vnum st.arbiter pp_role st.role
    (if st.in_cs then
       if st.rgrant <> None then " IN-CS(r)"
       else if st.rbatch <> None then " IN-CS(R)"
       else " IN-CS"
     else "")
    (if st.token <> None then " TOKEN" else "")
    (if st.amnesiac then " AMNESIAC" else if st.sync_wait then " SYNC-WAIT"
     else "")
    (match st.outstanding with Some s -> string_of_int s | None -> "-")
    st.pending st.misses
