open Simkit

let test_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let fire tag _ = log := tag :: !log in
  ignore (Engine.schedule e ~delay:3.0 (fire "c"));
  ignore (Engine.schedule e ~delay:1.0 (fire "a"));
  ignore (Engine.schedule e ~delay:2.0 (fire "b"));
  Engine.run e;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun _ -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun _ -> fired := true) in
  Engine.cancel e h;
  Alcotest.(check int) "pending after cancel" 0 (Engine.pending e);
  Engine.run e;
  Alcotest.(check bool) "cancelled never fires" false !fired;
  (* double cancel is a no-op *)
  Engine.cancel e h

let test_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec arm d =
    ignore
      (Engine.schedule e ~delay:d (fun _ ->
           incr count;
           arm 1.0))
  in
  arm 1.0;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "events within bound" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at bound" 5.5 (Engine.now e)

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule e ~delay:1.0 (fun e ->
           incr count;
           if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  Alcotest.(check int) "stopped early" 3 !count;
  Engine.run e;
  Alcotest.(check int) "run resumes" 10 !count

let test_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun _ -> incr count))
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "bounded" 4 !count

let test_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun _ -> ()));
  Engine.run e;
  Alcotest.check_raises "past schedule rejected"
    (Invalid_argument
       "Engine.schedule_at: time 1 is in the past (now 5)")
    (fun () -> ignore (Engine.schedule_at e ~time:1.0 (fun _ -> ())))

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun e ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~delay:0.0 (fun _ -> log := "inner" :: !log))));
  ignore (Engine.schedule e ~delay:2.0 (fun _ -> log := "later" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested zero-delay fires before later"
    [ "outer"; "inner"; "later" ] (List.rev !log)

let suite =
  ( "engine",
    [
      Alcotest.test_case "timestamp ordering" `Quick test_ordering;
      Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
      Alcotest.test_case "cancellation" `Quick test_cancel;
      Alcotest.test_case "run until bound" `Quick test_until;
      Alcotest.test_case "stop" `Quick test_stop;
      Alcotest.test_case "max events" `Quick test_max_events;
      Alcotest.test_case "past scheduling rejected" `Quick test_past_rejected;
      Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    ] )
