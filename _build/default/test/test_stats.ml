open Simkit.Stats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_tally_basics () =
  let t = Tally.create () in
  Alcotest.(check int) "empty count" 0 (Tally.count t);
  List.iter (Tally.add t) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check bool) "mean" true (feq (Tally.mean t) 5.0);
  Alcotest.(check bool) "variance (unbiased)" true
    (feq (Tally.variance t) (32.0 /. 7.0));
  Alcotest.(check bool) "min" true (feq (Tally.min t) 2.0);
  Alcotest.(check bool) "max" true (feq (Tally.max t) 9.0);
  Alcotest.(check bool) "sum" true (feq (Tally.sum t) 40.0)

let test_tally_merge () =
  let a = Tally.create () and b = Tally.create () and all = Tally.create () in
  let xs = [ 1.0; 2.5; -3.0; 7.25; 0.0; 12.0 ] in
  List.iteri
    (fun i x ->
      Tally.add all x;
      Tally.add (if i mod 2 = 0 then a else b) x)
    xs;
  let m = Tally.merge a b in
  Alcotest.(check bool) "merged mean" true (feq (Tally.mean m) (Tally.mean all));
  Alcotest.(check bool) "merged variance" true
    (feq ~eps:1e-6 (Tally.variance m) (Tally.variance all));
  Alcotest.(check int) "merged count" (Tally.count all) (Tally.count m)

let test_ci95 () =
  let t = Tally.create () in
  Alcotest.(check bool) "ci of <2 samples" true (feq (Tally.ci95_halfwidth t) 0.0);
  Tally.add t 1.0;
  Tally.add t 3.0;
  (* n=2: sd = sqrt(2), t(1) = 12.706, hw = 12.706 * sqrt(2) / sqrt(2) *)
  Alcotest.(check bool) "small-sample t quantile" true
    (feq ~eps:1e-3 (Tally.ci95_halfwidth t) 12.706)

let test_student_t () =
  Alcotest.(check bool) "df=1" true (feq (student_t95 1) 12.706);
  Alcotest.(check bool) "df=30" true (feq (student_t95 30) 2.042);
  Alcotest.(check bool) "df large" true (feq (student_t95 1000) 1.96)

let test_window () =
  let w = Window.create 3 in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Window.mean w));
  Window.add w 1.0;
  Window.add w 2.0;
  Alcotest.(check bool) "partial mean" true (feq (Window.mean w) 1.5);
  Alcotest.(check bool) "not yet full" true (not (Window.is_full w));
  Window.add w 3.0;
  Window.add w 10.0;
  (* evicts 1.0 *)
  Alcotest.(check bool) "rolling mean" true (feq (Window.mean w) 5.0);
  Alcotest.(check (option (float 0.0))) "last" (Some 10.0) (Window.last w);
  Alcotest.(check int) "count capped" 3 (Window.count w)

let test_histogram () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Histogram.add h) [ -1.0; 0.5; 1.5; 1.7; 5.0; 25.0 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  let counts = Histogram.bucket_counts h in
  let under = List.hd counts in
  let _, _, under_n = under in
  Alcotest.(check int) "underflow" 1 under_n;
  let _, _, over_n = List.nth counts (List.length counts - 1) in
  Alcotest.(check int) "overflow" 1 over_n;
  let q = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median in [1,2)" true (q >= 1.0 && q < 2.0)

let test_counter () =
  let c = Counter.create () in
  Counter.incr c "a";
  Counter.incr ~by:4 c "b";
  Counter.incr c "a";
  Alcotest.(check int) "a" 2 (Counter.get c "a");
  Alcotest.(check int) "b" 4 (Counter.get c "b");
  Alcotest.(check int) "missing" 0 (Counter.get c "zzz");
  Alcotest.(check (list (pair string int))) "sorted list"
    [ ("a", 2); ("b", 4) ] (Counter.to_list c)

let prop_tally_mean =
  QCheck.Test.make ~name:"tally mean equals list mean" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let t = Tally.create () in
      List.iter (Tally.add t) xs;
      let expected = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      abs_float (Tally.mean t -. expected) < 1e-6)

let prop_window_mean =
  QCheck.Test.make ~name:"window mean equals mean of last k" ~count:300
    QCheck.(pair (int_range 1 10) (list_of_size Gen.(1 -- 60) (float_bound_exclusive 100.0)))
    (fun (k, xs) ->
      let w = Window.create k in
      List.iter (Window.add w) xs;
      let lastk =
        let rev = List.rev xs in
        List.filteri (fun i _ -> i < k) rev
      in
      let expected =
        List.fold_left ( +. ) 0.0 lastk /. float_of_int (List.length lastk)
      in
      abs_float (Window.mean w -. expected) < 1e-6)

let suite =
  ( "stats",
    [
      Alcotest.test_case "tally basics" `Quick test_tally_basics;
      Alcotest.test_case "tally merge" `Quick test_tally_merge;
      Alcotest.test_case "confidence interval" `Quick test_ci95;
      Alcotest.test_case "student-t table" `Quick test_student_t;
      Alcotest.test_case "moving window" `Quick test_window;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "counter" `Quick test_counter;
      QCheck_alcotest.to_alcotest prop_tally_mean;
      QCheck_alcotest.to_alcotest prop_window_mean;
    ] )
