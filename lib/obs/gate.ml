type outcome = {
  lines : string list;
  failures : string list;
  summary : string list;
}

(* Which way is "worse": costs (messages/CS, wall-clock) regress
   upward, rates (throughput) regress downward. *)
type direction = Higher_bad | Lower_bad

type check = {
  label : string;
  dotted : string;  (* where the metric lives, for diagnostics *)
  probe : Json.t -> float option;
  tolerance : float;  (* relative: fail when cur is worse than base by more *)
  absolute_tolerance : float option;
      (* when set, replaces the relative rule: |cur - base| must not
         exceed it (for metrics near zero, e.g. scaling exponents,
         where a relative tolerance is meaningless) *)
  band : (float * float) option;  (* absolute bounds on the current value *)
  direction : direction;
  optional : bool;  (* absent from both runs: skip instead of failing *)
}

let get path json = Option.bind (Json.path path json) Json.num

let of_path ~label ?(tolerance = 0.25) ?band ?(direction = Higher_bad)
    ?(optional = false) path =
  {
    label;
    dotted = String.concat "." path;
    probe = (fun json -> get path json);
    tolerance;
    absolute_tolerance = None;
    band;
    direction;
    optional;
  }

(* --- derived.scale probes ------------------------------------------- *)

(* The scale table's dmutex row carries the Eq. 4 claim out to N=1000;
   its checks are generated from whatever Ns the current run actually
   swept, so adding or removing sweep points never silently drops the
   band. *)

let dmutex_scale_algorithm = "this-paper (basic)"

let scale_row ~algorithm json =
  match Json.path [ "derived"; "scale"; "rows" ] json with
  | Some (Json.List rows) ->
      List.find_opt
        (fun r ->
          match Option.bind (Json.member "algorithm" r) Json.str with
          | Some a -> String.equal a algorithm
          | None -> false)
        rows
  | _ -> None

let scale_cells row =
  match Json.member "cells" row with
  | Some (Json.List cells) -> cells
  | _ -> []

let cell_n c =
  Option.bind (Json.member "n" c) Json.num |> Option.map int_of_float

let scale_cell_probe ~algorithm ~n json =
  Option.bind (scale_row ~algorithm json) (fun row ->
      List.find_opt (fun c -> cell_n c = Some n) (scale_cells row))
  |> Fun.flip Option.bind (fun c ->
         Option.bind (Json.member "messages_per_cs" c) Json.num)

let scale_exponent_probe ~algorithm json =
  Option.bind (scale_row ~algorithm json) (fun row ->
      Option.bind (Json.member "exponent" row) Json.num)

(* --- the gate -------------------------------------------------------- *)

let run ?(tolerance = 0.25) ?(wall_tolerance = 0.25) ?(band = (2.5, 4.5))
    ?(exponent_tolerance = 0.15) ?sharded_floor ?client_floor
    ?(allow_missing = false) ~baseline ~current () =
  let static_checks =
    [
      of_path ~label:"high-load messages/CS" ~tolerance ~band
        [ "derived"; "high_load"; "messages_per_cs" ];
      of_path ~label:"light-load messages/CS" ~tolerance
        [ "derived"; "light_load"; "messages_per_cs" ];
      (* The sharded (multi-lock) live experiment: per-CS cost must
         stay in the same Eq. 4 band as the single lock — the keyed
         multiplexing is free in protocol messages — and aggregate
         throughput must not collapse. Both are optional so baselines
         recorded before the lock namespace existed still gate. *)
      of_path ~label:"sharded messages/CS" ~tolerance ~band ~optional:true
        [ "derived"; "sharded"; "messages_per_cs" ];
      (* Live wall-clock rate on a shared runner: same looseness as
         the wall-clock check. The optional absolute floor pins the
         reactor transport's throughput win so a drifting baseline
         cannot ratchet it away. *)
      of_path ~label:"sharded aggregate throughput" ~tolerance:wall_tolerance
        ?band:(Option.map (fun lo -> (lo, infinity)) sharded_floor)
        ~direction:Lower_bad ~optional:true
        [ "derived"; "sharded"; "cs_per_sec" ];
      (* The client-swarm experiment: M ≫ N thin clients behind the
         session layer. Per-CS protocol cost must stay in the Eq. 4
         band — sessions multiplex onto the same token passing, they
         do not add protocol messages — and the aggregate grant rate
         must not collapse (optional absolute floor, like sharded). *)
      of_path ~label:"client-swarm messages/CS" ~tolerance ~band ~optional:true
        [ "derived"; "client"; "messages_per_cs" ];
      of_path ~label:"client-swarm acquisitions/sec" ~tolerance:wall_tolerance
        ?band:(Option.map (fun lo -> (lo, infinity)) client_floor)
        ~direction:Lower_bad ~optional:true
        [ "derived"; "client"; "acq_per_sec" ];
      (* Read-write batching: the 90/10 read-heavy saturated run must
         clear at least twice the exclusive-only throughput on the
         same seed — the payoff the shared-grant machinery exists for.
         Optional so baselines predating lock modes still gate. *)
      of_path ~label:"rw read-heavy speedup" ~tolerance
        ~band:(2.0, infinity) ~direction:Lower_bad ~optional:true
        [ "derived"; "rw"; "speedup" ];
      of_path ~label:"total wall-clock" ~tolerance:wall_tolerance
        [ "total_seconds" ];
    ]
  in
  (* Per-N band checks generated from the current run's dmutex scale
     row: Eq. 4 (M = 3 - 2/N, accepted in [band]) must hold at every
     swept N — including N far past the paper's largest experiment.
     The relative comparison against the baseline's matching cell
     rides along; a baseline predating the sweep (or swept over
     different Ns) skips it while the absolute band still applies. *)
  let scale_checks =
    match scale_row ~algorithm:dmutex_scale_algorithm current with
    | None -> []
    | Some row ->
        let per_n =
          List.filter_map cell_n (scale_cells row)
          |> List.map (fun n ->
                 {
                   label =
                     Printf.sprintf "scale dmutex messages/CS @ N=%d" n;
                   dotted = Printf.sprintf "derived.scale[dmutex][n=%d]" n;
                   probe =
                     scale_cell_probe ~algorithm:dmutex_scale_algorithm ~n;
                   tolerance;
                   absolute_tolerance = None;
                   band = Some band;
                   direction = Higher_bad;
                   optional = false;
                 })
        in
        per_n
        @ [
            {
              label = "scale dmutex exponent";
              dotted = "derived.scale[dmutex].exponent";
              probe = scale_exponent_probe ~algorithm:dmutex_scale_algorithm;
              tolerance;
              absolute_tolerance = Some exponent_tolerance;
              band = None;
              direction = Higher_bad;
              optional = true;
            };
          ]
  in
  let checks = static_checks @ scale_checks in
  let lines = ref [] and failures = ref [] and summary = ref [] in
  let say l = lines := l :: !lines in
  let fail l =
    failures := l :: !failures;
    say l
  in
  let num_or_dash = function
    | Some v -> Printf.sprintf "%12.4f" v
    | None -> Printf.sprintf "%12s" "-"
  in
  let summarize c base cur status =
    let delta =
      match (base, cur) with
      | Some b, Some v when b <> 0.0 ->
          Printf.sprintf "%+7.1f%%" (100. *. (v -. b) /. b)
      | _ -> Printf.sprintf "%8s" "-"
    in
    summary :=
      Printf.sprintf "%-34s %s %s %s  %s" c.label (num_or_dash base)
        (num_or_dash cur) delta status
      :: !summary
  in
  (* The scale table is a gated artefact: if the current run dropped it
     entirely the per-N band checks silently vanish, so its absence is
     itself a failure (unless the run was deliberately sectioned with
     [allow_missing]). *)
  (match scale_row ~algorithm:dmutex_scale_algorithm current with
  | Some _ -> ()
  | None ->
      if allow_missing then
        say "skip scale table: no derived.scale in current run"
      else
        fail
          "FAIL scale table: current run has no derived.scale dmutex row \
           (bench ran without the lab section?)");
  List.iter
    (fun c ->
      match (c.probe baseline, c.probe current) with
      | None, None when c.optional ->
          say (Printf.sprintf "skip %s: not measured in either run" c.label)
      | base, None ->
          if c.optional || allow_missing then begin
            say
              (Printf.sprintf "skip %s: missing %s in current run" c.label
                 c.dotted);
            summarize c base None "skip"
          end
          else begin
            fail
              (Printf.sprintf "FAIL %s: missing %s in current run" c.label
                 c.dotted);
            summarize c base None "FAIL"
          end
      | None, Some cur -> (
          say
            (Printf.sprintf "skip %s: baseline has no %s (current %.4f)"
               c.label c.dotted cur);
          (* The acceptance band is absolute — it applies even when the
             baseline predates the metric. *)
          match c.band with
          | Some (lo, hi) when cur < lo || cur > hi ->
              fail
                (Printf.sprintf
                   "FAIL %s — current %.4f outside acceptance band [%.2f, \
                    %.2f]"
                   c.label cur lo hi);
              summarize c None (Some cur) "FAIL"
          | Some _ | None -> summarize c None (Some cur) "ok")
      | Some base, Some cur ->
          let delta = if base = 0. then 0. else (cur -. base) /. base in
          let rel_ok =
            match c.absolute_tolerance with
            | Some at -> Float.abs (cur -. base) <= at
            | None -> (
                match c.direction with
                | Higher_bad -> cur <= base *. (1. +. c.tolerance)
                | Lower_bad -> cur >= base *. (1. -. c.tolerance))
          in
          let band_bad =
            match c.band with
            | Some (lo, hi) when cur < lo || cur > hi -> Some (lo, hi)
            | Some _ | None -> None
          in
          let detail =
            match c.absolute_tolerance with
            | Some at ->
                Printf.sprintf "%s: baseline %.4f current %.4f (tol ±%.2f)"
                  c.label base cur at
            | None ->
                Printf.sprintf
                  "%s: baseline %.4f current %.4f (%+.1f%%, tol %.0f%%)"
                  c.label base cur (100. *. delta) (100. *. c.tolerance)
          in
          (match (rel_ok, band_bad) with
          | true, None ->
              say ("ok   " ^ detail);
              summarize c (Some base) (Some cur) "ok"
          | false, _ ->
              fail ("FAIL " ^ detail ^ " — regression over tolerance");
              summarize c (Some base) (Some cur) "FAIL"
          | true, Some (lo, hi) ->
              fail
                (Printf.sprintf
                   "FAIL %s — current %.4f outside acceptance band [%.2f, \
                    %.2f]"
                   c.label cur lo hi);
              summarize c (Some base) (Some cur) "FAIL"))
    checks;
  let header =
    Printf.sprintf "%-34s %12s %12s %8s  %s" "metric" "baseline" "current"
      "delta" "status"
  in
  {
    lines = List.rev !lines;
    failures = List.rev !failures;
    summary = header :: List.rev !summary;
  }
