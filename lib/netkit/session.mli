(** Client-facing session service: thin clients acquire the
    distributed locks a node hosts without joining the protocol's
    broadcast set.

    The paper makes every participant a full Q-list node; at "millions
    of users" scale that is untenable, so M ≫ N clients connect here
    over the {!Wire.Client} request/response protocol and the node
    enters the critical section on their behalf — one {e pump} thread
    per lock drives {!Node_runner}'s [with_lock] (reusing its timeout
    and abandoned-grant draining) and holds the CS while the granted
    clients run: exactly one for an exclusive acquire, or the whole
    leading run of shared waiters at once for read acquires — the
    session-layer face of the protocol's reader batches, all members
    carrying the same fencing token.

    Robustness invariants:

    - {b Leases.} A session must renew (any request renews; [Renew]
      exists for idle holders) within [lease_ms] or it is expired: its
      held grants are drained (the pump releases the distributed
      lock), its queued acquires are cancelled, and its connection
      gets an unsolicited [Session_lost]. A stalled or dead client can
      delay a lock by at most one lease.
    - {b Fencing.} Every grant carries a fencing token — strictly
      monotonic per lock, cluster-wide — derived from durable protocol
      state ({!Dmutex_store.Protocol_view.fencing_of_state}): the
      token-regeneration epoch above the [L] vector's grant sum.
      Downstream resources reject a staler holder by comparing tokens.
      Grants for which no genuine token can be derived (recovery
      re-grants of already-served requests) are dropped and retried,
      never issued.
    - {b Failover.} A disconnected session stays resumable by sid for
      a [grace_ms] window; resuming returns the held-locks list so a
      client whose [Granted] reply died with the connection recovers
      its grant state. Past the window the session is gone — loudly.
    - {b Load shedding.} Admission control caps live sessions
      ([max_sessions]), each lock's wait queue ([max_waiters]) and
      each session's in-flight acquires ([max_inflight]); every
      refusal is an explicit [Rejected] with a retry-after hint. No
      request is ever silently dropped. *)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) : sig
  module Node : module type of Node_runner.Make (A) (C)

  type t

  type stats = {
    opened : int;  (** Sessions opened (fresh, not resumes). *)
    resumed : int;  (** Successful re-attaches by sid. *)
    expired : int;  (** Lease/grace expiries, incl. shutdown. *)
    granted : int;  (** Grants issued (fencing tokens handed out). *)
    rejected : int;  (** Explicit [Rejected] replies of any reason. *)
    stale_grants : int;
        (** Grants dropped because no genuine fencing token could be
            derived — retried, never issued. *)
  }

  val create :
    ?lease_ms:int ->
    ?grace_ms:int ->
    ?max_sessions:int ->
    ?max_waiters:int ->
    ?max_inflight:int ->
    ?obs:Dmutex_obs.Registry.t ->
    ?trace:Dmutex_obs.Events.sink ->
    ?seed:int ->
    fencing:(A.state -> int option) ->
    node:Node.t ->
    addr:Transport.endpoint ->
    unit ->
    t
  (** Bind [addr] (port [0] picks an ephemeral one; see {!port}) and
      serve sessions for the locks [node] hosts. [fencing] derives the
      fencing token from the protocol state observed inside the CS —
      pass {!Dmutex_store.Protocol_view.fencing_of_state} for the
      stock protocol. Defaults: [lease_ms] 5000, [grace_ms] =
      [lease_ms], [max_sessions] 1024, [max_waiters] 256 per lock,
      [max_inflight] 32 per session. [obs] mirrors session activity
      into the [dmutex_client_*] series; [trace] records session
      lifecycle events. *)

  val port : t -> int
  (** The actually bound TCP port. *)

  val sessions : t -> int
  (** Live sessions right now (attached + in-grace detached). *)

  val stats : t -> stats

  val last_fencing : t -> lock:string -> int option
  (** The last fencing token this node issued for [lock], if any —
      test/debug visibility into the monotonicity invariant. *)

  val shutdown : t -> unit
  (** Stop accepting, expire every session (each attached client gets
      an unsolicited [Session_lost] so failover starts immediately),
      and join the service threads. Pump threads exit once the
      underlying node stops granting — shut the node down after this.
      Idempotent. *)
end
