lib/core/basic.ml: Protocol Types
