test/test_variants.ml: Alcotest Array Basic Dmutex Hashtbl Monitored Printf Prioritized Protocol Sim_runner Simkit Types
