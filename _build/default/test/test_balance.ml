(* Section 5.1: load-balance and fairness claims, plus the Fair
   (least-served-first) variant. *)

open Dmutex
module RF = Sim_runner.Make (Fair)

let test_fair_variant_correct () =
  let o = RF.run_poisson ~seed:1 ~requests:8_000 ~rate:0.3 (Fair.config ~n:8 ()) in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "no backlog beyond steady state" true (o.unserved < 20)

let test_fair_variant_saturated () =
  let o = RF.run_saturated ~seed:2 ~requests:10_000 (Fair.config ~n:10 ()) in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  (* Reordering inside the Q-list costs nothing in messages. *)
  Alcotest.(check bool) "Eq. 4 unaffected" true
    (abs_float (o.messages_per_cs -. Analysis.heavy_load_messages ~n:10) < 0.05)

let test_least_served_sort () =
  let granted = [| 5; -1; 2; 0 |] in
  let q =
    [
      Qlist.entry ~node:0 ~seq:6 ();
      Qlist.entry ~node:2 ~seq:3 ();
      Qlist.entry ~node:1 ~seq:0 ();
      Qlist.entry ~node:3 ~seq:1 ();
    ]
  in
  let sorted = Qlist.sort_least_served granted q in
  Alcotest.(check (list int)) "ascending by past grants" [ 1; 3; 2; 0 ]
    (List.map (fun e -> e.Qlist.node) sorted)

let test_load_balance_proportional () =
  let rows, jain = Experiments.table_load_balance ~n:10 ~requests:15_000 () in
  Alcotest.(check int) "ten rows" 10 (List.length rows);
  let r0 = List.hd rows in
  (* Node 0 is both idle and the start-up arbiter: it may dispatch a
     few times before the role moves on, then never again. *)
  Alcotest.(check bool) "idle node does (almost) no arbitration" true
    (r0.Experiments.arbiter_share < 0.005);
  Alcotest.(check (float 1e-9)) "idle node is never granted" 0.0
    r0.Experiments.grants_share;
  Alcotest.(check bool)
    (Printf.sprintf "arbiter duty proportional to load (Jain %.3f)" jain)
    true (jain > 0.95);
  (* Monotone: the chattiest node arbitrates the most. *)
  let shares = List.map (fun r -> r.Experiments.arbiter_share) rows in
  let rec weakly_increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 0.02 && weakly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "duty increases with rate" true
    (weakly_increasing shares)

let test_per_node_stats_consistency () =
  let module RB = Sim_runner.Make (Basic) in
  let o = RB.run_saturated ~seed:3 ~requests:5_000 (Basic.config ~n:10 ()) in
  let sum f = Array.fold_left (fun a st -> a + f st) 0 o.per_node in
  Alcotest.(check int) "grants sum to completed" o.completed
    (sum (fun st -> st.Sim_runner.grants));
  Alcotest.(check int) "sent sums to messages" o.messages
    (sum (fun st -> st.Sim_runner.sent));
  (* At saturation every node is granted exactly once per epoch; the
     arbiter role, by contrast, may lock onto one node (the rotation
     is deterministic), so only grants are asserted balanced. *)
  let grants =
    Array.map (fun st -> float_of_int st.Sim_runner.grants) o.per_node
  in
  Alcotest.(check bool) "saturated grants balanced" true
    (Simkit.Stats.jain_fairness grants > 0.999)

let test_fairness_table () =
  let rows = Experiments.table_fairness ~n:8 ~requests:8_000 () in
  Alcotest.(check int) "two policies" 2 (List.length rows);
  List.iter
    (fun (name, jain, msgs) ->
      Alcotest.(check bool) (name ^ " fair per demand") true (jain > 0.9);
      Alcotest.(check bool) (name ^ " message cost sane") true
        (msgs > 2.0 && msgs < 11.0))
    rows

let suite =
  ( "balance",
    [
      Alcotest.test_case "fair variant correct" `Quick
        test_fair_variant_correct;
      Alcotest.test_case "fair variant at saturation" `Quick
        test_fair_variant_saturated;
      Alcotest.test_case "least-served sort" `Quick test_least_served_sort;
      Alcotest.test_case "arbiter duty proportional to load" `Slow
        test_load_balance_proportional;
      Alcotest.test_case "per-node stats consistency" `Quick
        test_per_node_stats_consistency;
      Alcotest.test_case "fairness table" `Slow test_fairness_table;
    ] )
