(** The ordered list of scheduled critical-section requests carried
    inside the token (the paper's {e Q-list}), plus the per-node
    granted-sequence vector [L] of the Section 2.4 sequence-number
    extension.

    Entries are kept in service order: head is served next, tail is the
    next arbiter. Sequence numbers make retransmitted requests
    idempotent: an entry is dropped whenever [L] already records an
    equal or newer grant for its node. *)

type entry = {
  node : Types.node_id;
  seq : int;  (** The requester's request counter when it sent this. *)
  hops : int;  (** Times this request has been forwarded (τ budget). *)
  mode : Types.mode;
      (** Requested access mode. [Exclusive] (the default) reproduces
          the paper's protocol exactly; [Shared] entries at the head of
          the list are batched into one grant. *)
}

val entry :
  ?hops:int -> ?mode:Types.mode -> node:Types.node_id -> seq:int -> unit -> entry

type t = entry list
(** Service order, head first. The empty list is a valid (empty)
    Q-list. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val mem : Types.node_id -> t -> bool
(** Is some request from this node scheduled? *)

val head : t -> entry option
val tail_node : t -> Types.node_id option
(** The last entry's node — the next arbiter. *)

val enqueue : entry -> t -> t
(** FCFS insert at the back, deduplicating by node: if the node already
    has an entry, keep the one with the larger sequence number in its
    original position. *)

val sort_by_priority : int array -> t -> t
(** Stable sort, higher priority first (Section 5.2); FCFS order is
    preserved within a priority level. *)

val sort_writers_first : t -> t
(** Stable sort, [Exclusive] entries first: the writer-priority policy
    of the read-write extension, expressed as a Section 5.2 priority
    sort with the mode as the key. FCFS within each mode class. *)

val compatible : entry -> entry -> bool
(** Can these two requests hold the CS simultaneously? True exactly
    when both are [Shared]. *)

val head_batch : t -> t
(** The maximal batch servable as one grant: the head entry alone when
    it is [Exclusive], else the maximal prefix run of [Shared]
    entries. [head_batch [] = []]. *)

val final_holder : t -> Types.node_id option
(** The node holding the token once the queue is fully served — the
    next arbiter a NEW-ARBITER broadcast must name. The tail, unless
    the queue ends in a run of two or more [Shared] entries: that run
    is granted as one batch whose coordinator (the run's first entry)
    keeps the token while the rest execute on READ-GRANTs. *)

val sort_least_served : int array -> t -> t
(** Stable sort by past grants ascending: [granted.(node)] is the last
    served sequence number, a proxy for how often the node has been
    served (Section 5.1's stricter fairness). *)

(** The granted vector [L]: [granted.(j)] is the sequence number of the
    last request by node [j] that was (or is being) served. *)
module Granted : sig
  type g = int array

  val create : int -> g
  (** All entries [-1]: nothing granted yet. *)

  val get : g -> Types.node_id -> int
  (** Last granted sequence for the node; [-1] when the vector has no
      slot for it yet (a joiner beyond the birth cluster size). *)

  val ensure : g -> int -> g
  (** Grow (never shrink) to at least the given length, padding with
      [-1]. Returns the argument unchanged when already long enough. *)

  val already_served : g -> entry -> bool
  val mark : g -> entry -> g
  (** Functional update recording that [entry] was served; grows the
      vector when the entry's node id is beyond its current length. *)

  val mark_all : g -> entry list -> g
  (** Mark every entry of a grant batch at once — the served-vector
      update of a shared batch is one step, not one per reader. *)

  val merge : g -> g -> g
  (** Pointwise max over the union of lengths — used when a
      regenerated token meets a stale one's knowledge, and when views
      of different sizes exchange vectors. *)

  val total : g -> int
  (** Total grants recorded (each served slot counts [seq + 1]).
      Strictly increases on every [mark] / non-trivial [mark_all] —
      the minor half of a fencing token, advancing once per grant
      batch. *)

  val pp : Format.formatter -> g -> unit
end

val prune : Granted.g -> t -> t
(** Remove entries already served according to [L]. *)
