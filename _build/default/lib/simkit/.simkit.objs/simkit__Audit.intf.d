lib/simkit/audit.mli: Format Stats Trace
