(* The paper's optional variants: starvation-free (Section 4.1),
   prioritized (Section 5.2), rotation (Section 5.1), and the Section
   3.1 broadcast-suppression option. *)

open Dmutex
module RB = Sim_runner.Make (Basic)
module RM = Sim_runner.Make (Monitored)
module RP = Sim_runner.Make (Prioritized)

let test_monitored_correct () =
  let cfg = Monitored.config ~n:10 () in
  let o = RM.run_poisson ~seed:1 ~requests:10_000 ~rate:0.2 cfg in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  (* An open-loop run stops with the steady-state in-flight requests
     still pending; only an excess would indicate starvation. *)
  Alcotest.(check bool) "no backlog beyond steady state" true
    (o.unserved < 20)

let test_monitored_low_load_overhead () =
  (* Paper: ~1 extra message per CS at very low load (one token pass
     to the monitor per period, one CS per period). *)
  let basic =
    RB.run_poisson ~seed:2 ~requests:8_000 ~rate:0.01 (Basic.config ~n:10 ())
  in
  let mon =
    RM.run_poisson ~seed:2 ~requests:8_000 ~rate:0.01 (Monitored.config ~n:10 ())
  in
  let overhead = mon.messages_per_cs -. basic.messages_per_cs in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f in [0.5, 2.5]" overhead)
    true
    (overhead > 0.5 && overhead < 2.5);
  Alcotest.(check bool) "monitor passes happened" true (mon.monitor_passes > 0)

let test_monitored_high_load_no_overhead () =
  let basic = RB.run_saturated ~seed:3 ~requests:10_000 (Basic.config ~n:10 ()) in
  let mon = RM.run_saturated ~seed:3 ~requests:10_000 (Monitored.config ~n:10 ()) in
  Alcotest.(check bool) "negligible overhead at saturation" true
    (mon.messages_per_cs -. basic.messages_per_cs < 0.1)

let test_monitor_is_arbiter_sometimes () =
  (* The monitor must also be able to serve as a regular arbiter. *)
  let cfg = Monitored.config ~monitor:0 ~n:4 () in
  let o = RM.run_poisson ~seed:4 ~requests:5_000 ~rate:0.5 cfg in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check int) "all served" 0 o.unserved

let test_rotation () =
  let cfg = Monitored.config ~rotate:true ~n:6 () in
  let o = RM.run_poisson ~seed:5 ~requests:8_000 ~rate:0.2 cfg in
  Alcotest.(check int) "no violations with rotating monitor" 0
    o.safety_violations;
  Alcotest.(check int) "all served" 0 o.unserved

let test_priorities_reorder () =
  (* Half the nodes are high priority; under contention they must wait
     less on average. *)
  let n = 8 in
  let priorities = Array.init n (fun i -> if i < 4 then 10 else 0) in
  let cfg = Prioritized.config ~priorities ~n () in
  let t = RP.create ~seed:6 cfg in
  let engine = RP.engine t in
  let rng = Simkit.Rng.create 3 in
  let grants_hi = ref 0 and grants_lo = ref 0 in
  let waits_hi = Simkit.Stats.Tally.create ()
  and waits_lo = Simkit.Stats.Tally.create () in
  let outstanding = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let node_rng = Simkit.Rng.split rng in
    ignore
      (Simkit.Workload.poisson engine ~rng:node_rng ~rate:0.8
         ~on_arrival:(fun _ ->
           if not (Hashtbl.mem outstanding i) then begin
             Hashtbl.replace outstanding i (Simkit.Engine.now engine);
             RP.request t i
           end))
  done;
  let rec sample () =
    ignore
      (Simkit.Engine.schedule engine ~delay:0.02 (fun _ ->
           for i = 0 to n - 1 do
             if (RP.state t i).Protocol.in_cs then
               match Hashtbl.find_opt outstanding i with
               | Some t0 ->
                   Hashtbl.remove outstanding i;
                   let w = Simkit.Engine.now engine -. t0 in
                   if i < 4 then begin
                     incr grants_hi;
                     Simkit.Stats.Tally.add waits_hi w
                   end
                   else begin
                     incr grants_lo;
                     Simkit.Stats.Tally.add waits_lo w
                   end
               | None -> ()
           done;
           sample ()))
  in
  sample ();
  RP.step_until t 200.0;
  Alcotest.(check bool) "both classes served" true
    (!grants_hi > 50 && !grants_lo > 50);
  Alcotest.(check bool) "high priority waits less" true
    (Simkit.Stats.Tally.mean waits_hi < Simkit.Stats.Tally.mean waits_lo);
  Alcotest.(check int) "no violations" 0 (RP.outcome t).safety_violations

let test_priorities_no_starvation () =
  (* Section 5.2: even the lowest priority node is eventually served
     (it tends to become the arbiter). *)
  let n = 4 in
  let priorities = [| 0; 10; 10; 10 |] in
  let cfg = Prioritized.config ~priorities ~n () in
  let t = RP.create ~seed:7 cfg in
  for _ = 1 to 5 do
    RP.request t 0;
    RP.request t 1;
    RP.request t 2;
    RP.request t 3
  done;
  RP.step_until t 120.0;
  let o = RP.outcome t in
  Alcotest.(check int) "everything served" 20 o.completed;
  Alcotest.(check int) "nothing left over" 0 o.unserved

(* ------------------------------------------------------------------ *)
(* Read-write policy (Prioritized.rw_config): batching and the
   writer-priority starvation pin *)

let test_rw_config_shape () =
  (* rw_config is the same incremental priority machine with the mode
     as the key: writer_priority on, no static priority table. *)
  let cfg = Prioritized.rw_config ~n:6 () in
  Alcotest.(check bool) "writer priority on" true
    cfg.Types.Config.writer_priority;
  Alcotest.(check bool) "no static priorities" true
    (cfg.Types.Config.priorities = None);
  (* The static-priority constructor still validates its table. *)
  (match Prioritized.config ~priorities:[| 1; 2 |] ~n:3 () with
  | _ -> Alcotest.fail "short priority table must be rejected"
  | exception Invalid_argument _ -> ())

let test_rw_read_mix_batches () =
  (* A 90/10 read-heavy saturated run under the read-write policy:
     still zero violations, and shared batches actually form. *)
  let cfg = Prioritized.rw_config ~n:8 () in
  let o = RP.run_saturated ~seed:11 ~requests:6_000 ~read_fraction:0.9 cfg in
  Alcotest.(check int) "no violations with shared grants" 0
    o.safety_violations;
  Alcotest.(check bool) "reader batches formed" true
    (List.mem_assoc "read-batch" o.notes);
  (* Batching must beat one-at-a-time service on throughput: the same
     workload served exclusively needs strictly more time per CS. *)
  let excl = RP.run_saturated ~seed:11 ~requests:6_000 cfg in
  Alcotest.(check bool)
    (Printf.sprintf "read-heavy throughput higher (%.1f vs %.1f cs/s)"
       (float_of_int o.completed /. o.sim_time)
       (float_of_int excl.completed /. excl.sim_time))
    true
    (float_of_int o.completed /. o.sim_time
    > float_of_int excl.completed /. excl.sim_time)

let test_rw_writer_not_starved () =
  (* The starvation pin: one writer against seven loop-requesting
     readers. Writer priority reorders each dispatched window, so the
     writer's requests are all served despite the reader flood. *)
  let n = 8 in
  let cfg = Prioritized.rw_config ~n () in
  let t = RP.create ~seed:12 cfg in
  let writer_rounds = 6 in
  for _ = 1 to writer_rounds do
    RP.request t 0 (* defaults to Exclusive *)
  done;
  for _ = 1 to 12 do
    for i = 1 to n - 1 do
      RP.request ~mode:Types.Shared t i
    done
  done;
  RP.step_until t 600.0;
  let o = RP.outcome t in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check int) "nothing starved, writer included" 0 o.unserved;
  Alcotest.(check int) "writer served every round" writer_rounds
    o.per_node.(0).Sim_runner.grants

let test_skip_broadcast_saves_messages () =
  let base = Basic.config ~n:10 () in
  let skip = { base with Types.Config.skip_new_arbiter_to_tail = true } in
  let o_base = RB.run_poisson ~seed:8 ~requests:8_000 ~rate:0.005 base in
  let o_skip = RB.run_poisson ~seed:8 ~requests:8_000 ~rate:0.005 skip in
  Alcotest.(check bool)
    (Printf.sprintf "skip saves ~1 message (%.2f vs %.2f)"
       o_skip.messages_per_cs o_base.messages_per_cs)
    true
    (o_base.messages_per_cs -. o_skip.messages_per_cs > 0.5);
  Alcotest.(check int) "still correct" 0 o_skip.safety_violations;
  Alcotest.(check int) "still live" 0 o_skip.unserved

let test_zero_collection_window () =
  (* Degenerate tuning: dispatch immediately after the token arrives.
     More messages, still correct. *)
  let cfg = Basic.config ~t_collect:0.0 ~n:6 () in
  let o = RB.run_poisson ~seed:9 ~requests:5_000 ~rate:0.3 cfg in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "no backlog beyond in-flight" true (o.unserved <= 3)

let test_initial_arbiter_choice () =
  let cfg = { (Basic.config ~n:5 ()) with Types.Config.initial_arbiter = 3 } in
  let o = RB.run_poisson ~seed:10 ~requests:3_000 ~rate:0.2 cfg in
  Alcotest.(check int) "works from any initial arbiter" 0 o.safety_violations;
  Alcotest.(check int) "served" 0 o.unserved

let suite =
  ( "variants",
    [
      Alcotest.test_case "monitored correct" `Quick test_monitored_correct;
      Alcotest.test_case "monitored low-load overhead ~1" `Quick
        test_monitored_low_load_overhead;
      Alcotest.test_case "monitored high-load overhead ~0" `Quick
        test_monitored_high_load_no_overhead;
      Alcotest.test_case "monitor doubling as arbiter" `Quick
        test_monitor_is_arbiter_sometimes;
      Alcotest.test_case "rotating monitor" `Quick test_rotation;
      Alcotest.test_case "priorities reorder service" `Slow
        test_priorities_reorder;
      Alcotest.test_case "low priority not starved" `Quick
        test_priorities_no_starvation;
      Alcotest.test_case "rw: config shape" `Quick test_rw_config_shape;
      Alcotest.test_case "rw: read-mix batches and throughput" `Quick
        test_rw_read_mix_batches;
      Alcotest.test_case "rw: writer not starved by readers" `Quick
        test_rw_writer_not_starved;
      Alcotest.test_case "Section 3.1 suppression saves messages" `Quick
        test_skip_broadcast_saves_messages;
      Alcotest.test_case "zero-length collection window" `Quick
        test_zero_collection_window;
      Alcotest.test_case "non-default initial arbiter" `Quick
        test_initial_arbiter_choice;
    ] )
