type t = Complete | Ring | Star of int | Grid | Tree | Line

let rec tree_depth i = if i = 0 then 0 else 1 + tree_depth ((i - 1) / 2)

(* Depth of the lowest common ancestor in the binary-heap tree. *)
let tree_lca_depth i j =
  let rec lift x d = if d = 0 then x else lift ((x - 1) / 2) (d - 1) in
  let di = tree_depth i and dj = tree_depth j in
  let i = lift i (max 0 (di - dj)) and j = lift j (max 0 (dj - di)) in
  let rec up i j = if i = j then tree_depth i else up ((i - 1) / 2) ((j - 1) / 2) in
  up i j

let hops topo ~n i j =
  if i = j then 0
  else
    match topo with
    | Complete -> 1
    | Ring ->
        let d = abs (i - j) in
        min d (n - d)
    | Star hub -> if i = hub || j = hub then 1 else 2
    | Grid ->
        let k = int_of_float (Float.ceil (sqrt (float_of_int n))) in
        abs ((i / k) - (j / k)) + abs ((i mod k) - (j mod k))
    | Tree ->
        let di = tree_depth i and dj = tree_depth j in
        di + dj - (2 * tree_lca_depth i j)
    | Line -> abs (i - j)

let fold_pairs topo ~n f init =
  let acc = ref init in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := f !acc (hops topo ~n i j)
    done
  done;
  !acc

let diameter topo ~n = fold_pairs topo ~n max 0

let mean_distance topo ~n =
  if n < 2 then 0.0
  else
    let total = fold_pairs topo ~n ( + ) 0 in
    float_of_int total /. float_of_int (n * (n - 1))

let latency topo ~n ~per_hop =
  Network.Per_pair (fun i j -> per_hop *. float_of_int (hops topo ~n i j))

let pp ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Ring -> Format.pp_print_string ppf "ring"
  | Star hub -> Format.fprintf ppf "star(%d)" hub
  | Grid -> Format.pp_print_string ppf "grid"
  | Tree -> Format.pp_print_string ppf "tree"
  | Line -> Format.pp_print_string ppf "line"

let of_string = function
  | "complete" -> Ok Complete
  | "ring" -> Ok Ring
  | "star" -> Ok (Star 0)
  | "grid" -> Ok Grid
  | "tree" -> Ok Tree
  | "line" -> Ok Line
  | s -> Error (Printf.sprintf "unknown topology %S" s)

let all = [ Complete; Ring; Star 0; Grid; Tree; Line ]
