module WC = Wire.Client

type error =
  | Timeout
  | Rejected of WC.reject_reason * float
  | Session_lost of string
  | Disconnected of string

let string_of_error = function
  | Timeout -> "timeout"
  | Rejected (r, after) ->
      Printf.sprintf "rejected: %s (retry after %.1fs)"
        (WC.string_of_reason r) after
  | Session_lost r -> "session lost: " ^ r
  | Disconnected r -> "disconnected: " ^ r

type pend = { mutable presp : WC.resp option; mutable pfail : bool }

type t = {
  mu : Mutex.t;
  cv : Condition.t;
  wmu : Mutex.t;  (** serializes frame writes on the live socket *)
  addrs : Transport.endpoint array;
  lease_ms : int;
  backoff_base : float;
  backoff_cap : float;
  rng : Random.State.t;  (** backoff jitter; guarded by [mu] *)
  mutable rr : int;  (** next endpoint to try (sticks to the last good) *)
  mutable fd : Unix.file_descr option;
  mutable sid : string option;
  mutable held : (string * int) list;  (** lock -> fencing token *)
  mutable lost : string option;  (** sticky until surfaced to the caller *)
  mutable next_rid : int;
  pending : (int, pend) Hashtbl.t;
  mutable connecting : bool;
  mutable reading : bool;  (** one thread multiplexes reads at a time *)
  mutable rfd : Unix.file_descr option;  (** the fd being read right now *)
  mutable dead : Unix.file_descr list;  (** closed once no longer read *)
  mutable stopping : bool;
  mutable renewer : Thread.t option;
}

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Socket reads with idle detection.

   The socket carries a 50 ms receive timeout; a timeout on the very
   first byte of a frame is a clean "nothing to read" ([Idle]), while
   a stall in the middle of a frame — the sender writes whole frames
   in one syscall, so mid-frame silence means a broken peer — fails
   the connection after ~2 s of retries. *)

exception Idle

let rec read_part fd buf pos len ~first ~tries =
  if len > 0 then
    match Unix.read fd buf pos len with
    | 0 -> raise Session_frame.Closed
    | n -> read_part fd buf (pos + n) (len - n) ~first:false ~tries
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if first then raise Idle
        else if tries >= 40 then failwith "frame stalled mid-read"
        else read_part fd buf pos len ~first ~tries:(tries + 1)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        read_part fd buf pos len ~first ~tries

let recv_msg fd =
  let hdr = Bytes.create 4 in
  read_part fd hdr 0 4 ~first:true ~tries:0;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > Session_frame.max_frame then
    raise (Wire.Malformed (Printf.sprintf "client frame length %d" len));
  let body = Bytes.create len in
  read_part fd body 0 len ~first:false ~tries:0;
  WC.decode_response (Bytes.unsafe_to_string body)

(* ------------------------------------------------------------------ *)
(* Connection lifecycle *)

(* Tear down [fd] as the live connection (send failure, read failure,
   or a deliberate break). Pending calls fail — their callers decide
   whether to retry on a fresh connection. The fd itself is closed
   here unless another thread is mid-read on it, in which case that
   thread closes it when it surfaces. *)
let conn_down t fd reason =
  ignore reason;
  Mutex.lock t.mu;
  if t.fd = Some fd then begin
    t.fd <- None;
    Hashtbl.iter (fun _ p -> p.pfail <- true) t.pending;
    Condition.broadcast t.cv
  end;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  if t.rfd = Some fd then t.dead <- fd :: t.dead
  else (try Unix.close fd with _ -> ());
  Mutex.unlock t.mu

(* One TCP connect + hello + open/resume handshake against [ep].
   Synchronous: no other thread touches this fd until it is published
   as [t.fd]. *)
let try_endpoint t ep ~resume =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let cleanup () = try Unix.close fd with _ -> () in
  match
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string ep.Transport.host, ep.port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0;
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
    Session_frame.send fd (WC.encode_request (WC.Hello { rid = 0 }));
    WC.decode_response (Session_frame.recv fd)
  with
  | exception _ ->
      cleanup ();
      `Unreachable
  | WC.Hello_ok _ -> (
      let rec open_ resume =
        Session_frame.send fd
          (WC.encode_request
             (WC.Open_session { rid = 1; lease_ms = t.lease_ms; resume }));
        match WC.decode_response (Session_frame.recv fd) with
        | WC.Session_opened { sid; resumed; held; _ } ->
            `Opened (sid, if resumed then held else [])
        | WC.Session_lost _ when resume <> None ->
            (* Grace window closed (or wrong node after a wipe). With
               grants at stake this is a loud session-lost; otherwise
               just start over with a fresh session. *)
            if t.held <> [] then `Lost "session not resumable, grants lost"
            else open_ None
        | WC.Session_lost { reason; _ } -> `Lost reason
        | WC.Rejected { retry_after_ms; _ } -> `Shedding retry_after_ms
        | _ -> `Unreachable
      in
      match open_ resume with
      | exception _ ->
          cleanup ();
          `Unreachable
      | `Opened o ->
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05 with _ -> ());
          `Conn (fd, o)
      | (`Lost _ | `Shedding _ | `Unreachable) as r ->
          cleanup ();
          r)
  | _ ->
      cleanup ();
      `Unreachable

(* Get a live connection (and session) or say why not. Loops over all
   endpoints with capped-exponential backoff between full sweeps,
   until [deadline]. Called with [t.mu] held; returns with it held. *)
let rec ensure_conn t ~deadline =
  if t.stopping then Error (Disconnected "client closed")
  else
    match t.lost with
    | Some r ->
        (* Surface the loss exactly once; the next call starts a
           fresh session from scratch. *)
        t.lost <- None;
        t.sid <- None;
        t.held <- [];
        Error (Session_lost r)
    | None -> (
        match t.fd with
        | Some fd -> Ok fd
        | None ->
            if t.connecting then begin
              Condition.wait t.cv t.mu;
              ensure_conn t ~deadline
            end
            else begin
              t.connecting <- true;
              let resume = t.sid in
              let n = Array.length t.addrs in
              let start = t.rr in
              Mutex.unlock t.mu;
              let result = ref `Unreachable in
              (try
                 for k = 0 to n - 1 do
                   match !result with
                   | `Conn _ | `Lost _ -> ()
                   | _ -> (
                       let i = (start + k) mod n in
                       match try_endpoint t t.addrs.(i) ~resume with
                       | `Conn _ as c ->
                           result := c;
                           Mutex.lock t.mu;
                           t.rr <- i;
                           Mutex.unlock t.mu
                       | `Lost _ as l -> result := l
                       | `Shedding _ as s ->
                           if !result = `Unreachable then result := s
                       | `Unreachable -> ())
                 done
               with e ->
                 Mutex.lock t.mu;
                 t.connecting <- false;
                 Condition.broadcast t.cv;
                 Mutex.unlock t.mu;
                 raise e);
              Mutex.lock t.mu;
              t.connecting <- false;
              Condition.broadcast t.cv;
              match !result with
              | `Conn (fd, (sid, held)) ->
                  t.fd <- Some fd;
                  t.sid <- Some sid;
                  t.held <- held;
                  Condition.broadcast t.cv;
                  Ok fd
              | `Lost r ->
                  t.sid <- None;
                  t.held <- [];
                  Error (Session_lost r)
              | (`Shedding _ | `Unreachable) as r ->
                  let wait =
                    let base =
                      match r with
                      | `Shedding ms when ms > 0 -> float_of_int ms /. 1000.
                      | _ ->
                          let sweep = t.next_rid land 7 in
                          Float.min t.backoff_cap
                            (t.backoff_base *. (2. ** float_of_int sweep))
                    in
                    base *. (0.5 +. Random.State.float t.rng 1.0)
                  in
                  if now () +. wait > deadline then
                    Error (Disconnected "no session node reachable")
                  else begin
                    Mutex.unlock t.mu;
                    Thread.delay wait;
                    Mutex.lock t.mu;
                    ensure_conn t ~deadline
                  end
            end)

(* ------------------------------------------------------------------ *)
(* Multiplexed request/response *)

(* Route one received response. Called with [t.mu] held. *)
let route t resp =
  let deliver rid =
    match Hashtbl.find_opt t.pending rid with
    | Some p ->
        p.presp <- Some resp;
        Condition.broadcast t.cv
    | None -> () (* late reply for a call that already gave up *)
  in
  match resp with
  | WC.Session_lost { rid = 0; reason } ->
      (* Unsolicited: lease expired server-side, load shed, or the
         node is going down. The session is gone. *)
      t.lost <- Some reason;
      t.sid <- None;
      t.held <- [];
      Hashtbl.iter (fun _ p -> p.pfail <- true) t.pending;
      Condition.broadcast t.cv
  | WC.Session_lost { rid; reason = _ } as r ->
      t.sid <- None;
      t.held <- [];
      deliver rid;
      ignore r
  | WC.Hello_ok { rid; _ }
  | WC.Session_opened { rid; _ }
  | WC.Granted { rid; _ }
  | WC.Rejected { rid; _ }
  | WC.Released { rid; _ }
  | WC.Renewed { rid; _ }
  | WC.Closed { rid } ->
      deliver rid

(* Wait for [pend] to resolve. Whoever gets here first while nobody
   is reading becomes the reader and multiplexes responses for every
   waiter; the rest sleep on the condition. Called with [t.mu] held;
   returns with it held. *)
let rec await t pend ~deadline ~fd =
  if pend.presp <> None then `Resp (Option.get pend.presp)
  else if pend.pfail then `Fail
  else if now () > deadline then `Timeout
  else if t.reading then begin
    Condition.wait t.cv t.mu;
    await t pend ~deadline ~fd
  end
  else begin
    t.reading <- true;
    t.rfd <- Some fd;
    Mutex.unlock t.mu;
    let outcome = try `Msg (recv_msg fd) with Idle -> `Idle | _ -> `Err in
    Mutex.lock t.mu;
    t.reading <- false;
    t.rfd <- None;
    if List.mem fd t.dead then begin
      t.dead <- List.filter (fun d -> d <> fd) t.dead;
      try Unix.close fd with _ -> ()
    end;
    (match outcome with
    | `Msg m ->
        route t m;
        Condition.broadcast t.cv
    | `Idle -> Condition.broadcast t.cv
    | `Err ->
        Mutex.unlock t.mu;
        conn_down t fd "read failed";
        Mutex.lock t.mu);
    await t pend ~deadline ~fd
  end

let rpc t ~deadline req_of_rid =
  Mutex.lock t.mu;
  let res =
    match ensure_conn t ~deadline with
    | Error e -> Error e
    | Ok fd -> (
        let rid = t.next_rid in
        t.next_rid <- rid + 1;
        let pend = { presp = None; pfail = false } in
        Hashtbl.replace t.pending rid pend;
        Mutex.unlock t.mu;
        let sent =
          Mutex.lock t.wmu;
          let r =
            try
              Session_frame.send fd (WC.encode_request (req_of_rid rid));
              true
            with _ -> false
          in
          Mutex.unlock t.wmu;
          r
        in
        if not sent then conn_down t fd "write failed";
        Mutex.lock t.mu;
        let r =
          if sent then await t pend ~deadline ~fd
          else `Fail
        in
        Hashtbl.remove t.pending rid;
        match r with
        | `Resp resp -> Ok resp
        | `Fail -> Error (Disconnected "connection lost")
        | `Timeout -> Error Timeout)
  in
  Mutex.unlock t.mu;
  res

(* Drain any unsolicited messages queued on the socket (one 50 ms
   idle probe). A server-side session kill is only visible as an
   unread [Session_lost] until somebody reads — so any fast path that
   trusts cached state ([held]) must drain first. *)
let drain_notices t =
  Mutex.lock t.mu;
  let rec loop () =
    match t.fd with
    | Some fd when not t.reading ->
        t.reading <- true;
        t.rfd <- Some fd;
        Mutex.unlock t.mu;
        let outcome = try `Msg (recv_msg fd) with Idle -> `Idle | _ -> `Err in
        Mutex.lock t.mu;
        t.reading <- false;
        t.rfd <- None;
        if List.mem fd t.dead then begin
          t.dead <- List.filter (fun d -> d <> fd) t.dead;
          try Unix.close fd with _ -> ()
        end;
        (match outcome with
        | `Msg m ->
            route t m;
            Condition.broadcast t.cv;
            loop ()
        | `Idle -> Condition.broadcast t.cv
        | `Err ->
            Mutex.unlock t.mu;
            conn_down t fd "read failed";
            Mutex.lock t.mu)
    | _ -> ()
  in
  loop ();
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)
(* Public operations *)

let held_fencing t lock =
  Mutex.lock t.mu;
  let f = List.assoc_opt lock t.held in
  Mutex.unlock t.mu;
  f

(* [held] is only trustworthy after the queued notices are read. *)
let held_fencing_fresh t lock =
  (match held_fencing t lock with Some _ -> drain_notices t | None -> ());
  held_fencing t lock

let acquire ?(timeout = 30.0) ?(shared = false) ~lock t =
  let deadline = now () +. timeout in
  let rec go () =
    match held_fencing_fresh t lock with
    | Some f -> Ok f (* a grant landed during failover; resume restored it *)
    | None ->
        let remaining = deadline -. now () in
        if remaining <= 0. then Error Timeout
        else
          let timeout_ms = int_of_float (Float.max 1. (remaining *. 1000.)) in
          (* The server enforces [timeout_ms]; the local deadline gets
             slack so the server's explicit rejection wins the race. *)
          let r =
            rpc t ~deadline:(deadline +. 2.0) (fun rid ->
                WC.Acquire { rid; lock; timeout_ms; try_only = false; shared })
          in
          handle r
  and handle = function
    | Ok (WC.Granted { fencing; _ }) ->
        Mutex.lock t.mu;
        t.held <- (lock, fencing) :: List.remove_assoc lock t.held;
        Mutex.unlock t.mu;
        Ok fencing
    | Ok (WC.Rejected { reason = WC.Already_held; _ }) -> (
        match held_fencing t lock with
        | Some f -> Ok f
        | None -> Error (Rejected (WC.Already_held, 0.)))
    | Ok (WC.Rejected { reason; retry_after_ms; _ }) ->
        Error (Rejected (reason, float_of_int retry_after_ms /. 1000.))
    | Ok (WC.Session_lost { reason; _ }) -> Error (Session_lost reason)
    | Ok _ -> Error (Disconnected "unexpected response")
    | Error (Disconnected _) when now () < deadline -> go ()
    | Error e -> Error e
  in
  go ()

let try_acquire ?(shared = false) ~lock t =
  match held_fencing_fresh t lock with
  | Some f -> Ok f
  | None -> (
      let r =
        rpc t
          ~deadline:(now () +. 5.0)
          (fun rid ->
            WC.Acquire { rid; lock; timeout_ms = 0; try_only = true; shared })
      in
      match r with
      | Ok (WC.Granted { fencing; _ }) ->
          Mutex.lock t.mu;
          t.held <- (lock, fencing) :: List.remove_assoc lock t.held;
          Mutex.unlock t.mu;
          Ok fencing
      | Ok (WC.Rejected { reason = WC.Lock_timeout; _ }) -> Error Timeout
      | Ok (WC.Rejected { reason; retry_after_ms; _ }) ->
          Error (Rejected (reason, float_of_int retry_after_ms /. 1000.))
      | Ok (WC.Session_lost { reason; _ }) -> Error (Session_lost reason)
      | Ok _ -> Error (Disconnected "unexpected response")
      | Error e -> Error e)

let release ~lock t =
  let deadline = now () +. 10.0 in
  let forget () =
    Mutex.lock t.mu;
    t.held <- List.remove_assoc lock t.held;
    Mutex.unlock t.mu
  in
  let rec go () =
    match held_fencing t lock with
    | None -> Ok () (* already released, or drained server-side *)
    | Some _ -> (
        match
          rpc t ~deadline (fun rid -> WC.Release { rid; lock })
        with
        | Ok (WC.Released _) ->
            forget ();
            Ok ()
        | Ok (WC.Rejected { reason = WC.Not_held; _ }) ->
            (* The lease lapsed and the server drained the grant: the
               lock is free (the caller's goal state) but their
               fencing token is stale — say so. *)
            forget ();
            Error (Rejected (WC.Not_held, 0.))
        | Ok (WC.Rejected { reason; retry_after_ms; _ }) ->
            Error (Rejected (reason, float_of_int retry_after_ms /. 1000.))
        | Ok (WC.Session_lost { reason; _ }) ->
            forget ();
            Error (Session_lost reason)
        | Ok _ -> Error (Disconnected "unexpected response")
        | Error (Disconnected _) when now () < deadline ->
            go () (* failover resume refreshes [held]; retry or observe *)
        | Error (Session_lost _ as e) ->
            forget ();
            Error e
        | Error e -> Error e)
  in
  go ()

let renew t =
  match rpc t ~deadline:(now () +. 2.0) (fun rid -> WC.Renew { rid }) with
  | Ok (WC.Renewed _) -> Ok ()
  | Ok (WC.Session_lost { reason; _ }) -> Error (Session_lost reason)
  | Ok (WC.Rejected { reason; retry_after_ms; _ }) ->
      Error (Rejected (reason, float_of_int retry_after_ms /. 1000.))
  | Ok _ -> Error (Disconnected "unexpected response")
  | Error e -> Error e

let with_lock ?timeout ?shared ~lock t f =
  match acquire ?timeout ?shared ~lock t with
  | Error e -> Error e
  | Ok fencing -> (
      match f ~fencing with
      | v ->
          ignore (release ~lock t);
          Ok v
      | exception e ->
          ignore (release ~lock t);
          raise e)

(* Transactions: hold a whole multi-lock set at once. Safety against
   deadlock does not come from luck — every participant acquires in
   the one canonical (lexicographic) key order, so the hold-and-wait
   graph over lock keys is acyclic by construction. Within one
   attempt each acquire gets a slice of the total budget; a refusal
   mid-set releases everything already held (all-or-nothing) and
   retries, so two transactions colliding half-way both back off
   instead of wedging. *)
let with_locks ?(timeout = 30.0) ?(retries = 4) ~locks t f =
  if locks = [] then invalid_arg "Session_client.with_locks: empty lock list";
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> String.compare a b) locks
  in
  let rec check_dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg
            (Printf.sprintf "Session_client.with_locks: duplicate lock %S" a)
        else check_dup rest
    | _ -> ()
  in
  check_dup sorted;
  let deadline = now () +. timeout in
  let slice = Float.max 0.05 (timeout /. float_of_int (retries + 1)) in
  (* [held] lists are newest-first, so iterating releases in reverse
     acquisition order. *)
  let release_all held =
    List.iter (fun (lock, _) -> ignore (release ~lock t)) held
  in
  let rec attempt tries =
    let sub = Float.min deadline (now () +. slice) in
    let rec grab held = function
      | [] -> Ok held
      | (lock, mode) :: rest -> (
          let tmo = Float.max 0.05 (sub -. now ()) in
          match
            acquire ~timeout:tmo
              ~shared:(mode = Dmutex.Types.Shared)
              ~lock t
          with
          | Ok fencing -> grab ((lock, fencing) :: held) rest
          | Error e ->
              release_all held;
              Error e)
    in
    match grab [] sorted with
    | Ok held -> (
        (* The transaction's fencing token: the max over the set
           dominates every per-lock token, so a downstream resource
           guarded by any of the locks rejects staler holders. *)
        let fencing = List.fold_left (fun acc (_, f) -> max acc f) 0 held in
        match f ~fencing with
        | v ->
            release_all held;
            Ok v
        | exception e ->
            release_all held;
            raise e)
    | Error (Session_lost _ as e) | Error (Disconnected _ as e) -> Error e
    | Error e ->
        if tries < retries && now () < deadline then attempt (tries + 1)
        else Error e
  in
  attempt 0

let session_id t =
  Mutex.lock t.mu;
  let s = t.sid in
  Mutex.unlock t.mu;
  s

let connected t =
  Mutex.lock t.mu;
  let c = t.fd <> None in
  Mutex.unlock t.mu;
  c

let break_conn t =
  Mutex.lock t.mu;
  let fd = t.fd in
  Mutex.unlock t.mu;
  match fd with Some fd -> conn_down t fd "broken for test" | None -> ()

let close t =
  let fd =
    Mutex.lock t.mu;
    let fd = t.fd in
    Mutex.unlock t.mu;
    fd
  in
  (match fd with
  | Some _ ->
      (* Best-effort graceful close so the server frees the session
         now instead of at lease expiry. *)
      ignore (rpc t ~deadline:(now () +. 1.0) (fun rid -> WC.Close { rid }))
  | None -> ());
  Mutex.lock t.mu;
  t.stopping <- true;
  t.lost <- None;
  t.sid <- None;
  t.held <- [];
  Condition.broadcast t.cv;
  let fd = t.fd in
  t.fd <- None;
  Mutex.unlock t.mu;
  (match fd with
  | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
      Mutex.lock t.mu;
      if t.rfd = Some fd then t.dead <- fd :: t.dead
      else (try Unix.close fd with _ -> ());
      Mutex.unlock t.mu
  | None -> ());
  match t.renewer with Some th -> Thread.join th | None -> ()

(* Keep the lease warm (and eagerly re-attach after a disconnection)
   from a background thread, so a client sitting in its critical
   section never loses the session to a lease it forgot to renew. *)
let renew_loop t =
  let period = Float.max 0.1 (float_of_int t.lease_ms /. 3000.) in
  let rec sleep remaining =
    if remaining > 0. && not t.stopping then begin
      Thread.delay (Float.min 0.1 remaining);
      sleep (remaining -. 0.1)
    end
  in
  while not t.stopping do
    sleep period;
    if not t.stopping then begin
      let have_session =
        Mutex.lock t.mu;
        let h = t.sid <> None || t.held <> [] in
        Mutex.unlock t.mu;
        h
      in
      if have_session then
        match renew t with
        | Ok () | Error _ -> () (* errors surface on the next user call *)
    end
  done

let connect ?(lease_ms = 5_000) ?(backoff = (0.05, 2.0)) ?seed ~addrs () =
  if addrs = [] then invalid_arg "Session_client.connect: no endpoints";
  let backoff_base, backoff_cap = backoff in
  let seed =
    match seed with
    | Some s -> s
    | None ->
        (int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () * 31))
        land max_int
  in
  let t =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      wmu = Mutex.create ();
      addrs = Array.of_list addrs;
      lease_ms;
      backoff_base;
      backoff_cap;
      rng = Random.State.make [| seed; 0xc11e |];
      rr = 0;
      fd = None;
      sid = None;
      held = [];
      lost = None;
      next_rid = 2;
      pending = Hashtbl.create 8;
      connecting = false;
      reading = false;
      rfd = None;
      dead = [];
      stopping = false;
      renewer = None;
    }
  in
  t.renewer <- Some (Thread.create renew_loop t);
  t
