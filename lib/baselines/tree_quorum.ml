(** Agrawal & El Abbadi's tree-quorum algorithm (TOCS 1991), reference
    [1] of the paper ("an efficient and fault-tolerant solution for
    distributed mutual exclusion").

    Nodes are arranged in a logical complete binary tree (heap layout,
    root 0). A quorum is obtained by {!quorum}: take the root and
    recurse into one child ({e a root-to-leaf path}, size O(log N)) —
    and when a node has failed, substitute it by taking quorums of
    {e both} of its subtrees. Any two quorums intersect, with up to
    ⌈(N-1)/2⌉ tolerated failures in the best case.

    The voting protocol itself (LOCKED / FAILED / INQUIRE /
    RELINQUISH, candidacy-timestamped) is shared with {!Maekawa}; only
    the quorum shape differs. Without failures every quorum contains
    the root, so tree quorums trade Maekawa's 2√N-1 spread for log N
    messages and a root hotspot — visible in the benchmarks. *)

open Dmutex.Types

(* The failure-aware quorum rule of the paper. Returns [None] when no
   quorum can be formed (too many failures). For the incomplete last
   level of a heap-shaped tree, a missing subtree cannot host a path
   (extension through it fails) but an interior substitution simply
   has nothing to collect from it. *)
let rec quorum_avoiding ~failed ~n root =
  if root >= n then None
  else
    let left = (2 * root) + 1 and right = (2 * root) + 2 in
    let leaf = left >= n in
    if not (failed root) then
      if leaf then Some [ root ]
      else
        (* Root alive: root + a path-quorum of one child's subtree
           (prefer the left, fall back to the right). *)
        let continue_via child =
          if child >= n then None
          else
            Option.map (fun q -> root :: q) (quorum_avoiding ~failed ~n child)
        in
        (match continue_via left with
        | Some q -> Some q
        | None -> continue_via right)
    else if leaf then None
    else
      (* Failed interior node: replace it by quorums of BOTH existing
         subtrees. *)
      let sub child =
        if child >= n then Some [] else quorum_avoiding ~failed ~n child
      in
      match (sub left, sub right) with
      | Some l, Some r -> Some (l @ r)
      | _ -> None

let quorum ?(failed = fun _ -> false) n =
  if n <= 0 then None else quorum_avoiding ~failed ~n 0

(* Static (failure-free) per-node quorums for the voting protocol:
   node i uses the root-to-i path extended to a leaf, so its own vote
   is included and all quorums share the root. *)
let path_to_root i =
  let rec up i acc = if i = 0 then 0 :: acc else up ((i - 1) / 2) (i :: acc) in
  up i []

let extend_to_leaf ~n i =
  let rec down i acc =
    let left = (2 * i) + 1 in
    if left >= n then List.rev acc else down left (left :: acc)
  in
  down i []

let build_tree_quorums n =
  Array.init n (fun i ->
      List.sort_uniq compare (path_to_root i @ extend_to_leaf ~n i))

(* Same one-entry memo as {!Maekawa.quorums}: [init] needs the full
   quorum table once per node, so an uncached rebuild turns N-node
   creation quadratic. *)
let tree_quorum_cache :
    (int * Dmutex.Types.node_id list array) option Atomic.t =
  Atomic.make None

let tree_quorums n =
  match Atomic.get tree_quorum_cache with
  | Some (n', qs) when n' = n -> qs
  | _ ->
      let qs = build_tree_quorums n in
      Atomic.set tree_quorum_cache (Some (n, qs));
      qs

include Maekawa
(* [include] brings Maekawa's grid [quorums] into scope too; [init]
   below deliberately uses [tree_quorums] instead. *)

let name = "tree-quorum"

(* No failure model: the original algorithm assumes reliable nodes and
   channels, so injected crashes or losses must fail loudly rather
   than silently measure behaviour the algorithm never claimed. *)
let fault_support = { crash_stop = false; message_loss = false }

let init cfg me =
  let base = Maekawa.init cfg me in
  { base with quorum = (tree_quorums cfg.Config.n).(me) }

let rejoin = init
