lib/simkit/network.mli: Engine Rng
