(** Binary serialization combinators for the TCP runtime.

    Big-endian, length-prefixed, no external dependencies. Encoders
    append to a growable buffer; decoders consume a string and raise
    {!Malformed} on any ill-formed input, so a corrupt or truncated
    frame can never produce a silently wrong message. *)

exception Malformed of string
(** Raised by decoders on truncated or invalid input. *)

val format_version : int
(** Wire-format version byte carried at the front of every transport
    frame (see {!Frame}) and of every persistent store record
    ([Dmutex_store]). Decoders reject any other value with a distinct
    {!Malformed} error, so mixed-version clusters and stale state
    directories fail loudly instead of misparsing. *)

(** Append-only encoder. *)
module Enc : sig
  type t

  val create : ?size:int -> unit -> t
  val contents : t -> string
  val u8 : t -> int -> unit
  (** [u8 e v] with [0 <= v < 256]. *)

  val u16 : t -> int -> unit
  val i32 : t -> int -> unit
  (** 32-bit two's-complement; must fit. *)

  val i64 : t -> int64 -> unit
  val int_ : t -> int -> unit
  (** OCaml [int] via its 64-bit image. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  (** IEEE-754 double bits. *)

  val string : t -> string -> unit
  (** 32-bit length prefix + bytes. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** 32-bit count prefix, then each element. *)

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit
end

(** Sequential decoder over a string. *)
module Dec : sig
  type t

  val of_string : string -> t
  val remaining : t -> int
  val eof : t -> bool

  val check_eof : t -> unit
  (** Raise {!Malformed} unless all input was consumed — catches
      messages with trailing garbage. *)

  val u8 : t -> int
  val u16 : t -> int
  val i32 : t -> int
  val i64 : t -> int64
  val int_ : t -> int
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val pair : t -> (t -> 'a) -> (t -> 'b) -> 'a * 'b
end

(** The TCP transport's intra-frame header: every framed payload
    starts with the format version, the sender's id, a frame kind and
    the lock key the payload belongs to, so a receiver can demultiplex
    peers on one listening socket, tell protocol data apart from
    transport-level heartbeats, and route each payload to the right
    protocol instance. Shared between [Netkit.Transport] and the
    transport robustness tests so both agree on the byte layout. *)
module Frame : sig
  type kind =
    | Data  (** An application payload for the receive callback. *)
    | Heartbeat  (** Transport-level liveness beacon; no payload. *)

  type header = {
    src : int;  (** Sender's node id. *)
    kind : kind;
    lock : string;
        (** Lock key the payload is addressed to; [""] on heartbeats,
            which are per-connection rather than per-instance. *)
    payload_start : int;
        (** Offset of the first payload byte in the frame body; the
            header is variable-length because it embeds the key. *)
  }

  val fixed_len : int
  (** Bytes of fixed header prefix at the front of every frame body
      (currently 8: the {!format_version} byte, a 32-bit big-endian
      sender id, one kind byte, and a 16-bit big-endian lock-key
      length). The key bytes follow immediately. *)

  val max_lock_len : int
  (** Longest lock key the header can carry (65535 bytes). *)

  val header_len : lock:string -> int
  (** Bytes the header for [lock] occupies ({!fixed_len} plus the key);
      raises [Invalid_argument] when [lock] exceeds {!max_lock_len}. *)

  val blit_header : Bytes.t -> pos:int -> src:int -> lock:string -> kind -> int
  (** Write the header into [b] at [pos] without allocating; returns
      the offset just past it. The transport serializes coalesced
      flushes through this straight into a pooled buffer. The caller
      guarantees [header_len ~lock] bytes of room. *)

  val encode_header : src:int -> lock:string -> kind -> string
  (** Raises [Invalid_argument] when [lock] exceeds {!max_lock_len}. *)

  val decode_header_bytes : Bytes.t -> off:int -> len:int -> header
  (** Parse a header in place from [len] bytes of [b] at [off] — the
      pooled-read-buffer twin of {!decode_header}. [payload_start] is
      relative to [off]; only the lock key is materialized. Same
      failure cases as {!decode_header}. *)

  val decode_header : string -> header
  (** Parse the header at the front of a frame body; raises
      {!Malformed} on a short body, a {!format_version} mismatch, an
      unknown kind byte, or a body truncated inside the lock key. *)
end

(** The thin-client request/response frame family: what a client
    library speaks to any node's session service ([Netkit.Session]).
    Versioned independently of {!format_version} — clients are
    deployed separately from the cluster — with its own leading
    version byte, rejected loudly on mismatch. Framing on the socket
    (a 32-bit big-endian length prefix per message) is the session
    layer's job; this module only maps messages to bytes. *)
module Client : sig
  val version : int
  (** Client-protocol version byte at the front of every request and
      response. *)

  (** Why a request was refused. Every rejection is explicit — the
      session service never leaves a request unanswered. *)
  type reject_reason =
    | Lock_timeout  (** The acquire deadline passed while queued. *)
    | Queue_full  (** Per-lock wait queue or per-session cap hit. *)
    | Session_limit  (** Admission control: node is at max sessions. *)
    | Already_held  (** The session already holds this lock. *)
    | Not_held  (** Release/renew of something the session lacks. *)
    | Unknown_lock  (** The node does not host this lock instance. *)
    | Bad_request  (** Protocol misuse (e.g. acquire before open). *)

  (** Client → node. Every request carries a client-chosen request id
      echoed in the response, so one connection can multiplex
      concurrent calls. *)
  type req =
    | Hello of { rid : int }
    | Open_session of { rid : int; lease_ms : int; resume : string option }
        (** [resume = Some sid] re-attaches to an existing session
            within its grace window (failover); [None] opens fresh. *)
    | Acquire of {
        rid : int;
        lock : string;
        timeout_ms : int;
        try_only : bool;
        shared : bool;
            (** Request a shared (read) grant — compatible shared
                holders may be admitted together. [false] is the
                classic exclusive acquire. *)
      }
    | Release of { rid : int; lock : string }
    | Renew of { rid : int }
    | Close of { rid : int }

  (** Node → client. [Session_lost] with [rid = 0] is unsolicited:
      the lease expired, the session was shed, or the node is going
      down. *)
  type resp =
    | Hello_ok of { rid : int; node : int; proto : int }
    | Session_opened of {
        rid : int;
        sid : string;
        lease_ms : int;
        grace_ms : int;
        resumed : bool;
        held : (string * int) list;
            (** Locks the session currently holds with their fencing
                tokens — non-empty only on resume, where it restores
                the client's grant state after a failover (a grant can
                land while the reply connection is already dead). *)
      }
    | Granted of { rid : int; lock : string; fencing : int }
        (** [fencing] is the monotonic fencing token for this grant. *)
    | Rejected of { rid : int; reason : reject_reason; retry_after_ms : int }
    | Released of { rid : int; lock : string }
    | Renewed of { rid : int; lease_ms : int }
    | Closed of { rid : int }
    | Session_lost of { rid : int; reason : string }

  val string_of_reason : reject_reason -> string
  val encode_request : req -> string

  val decode_request : string -> req
  (** Raises {!Malformed} on truncation, trailing garbage, unknown
      tags, or a {!version} mismatch. *)

  val encode_response : resp -> string

  val decode_response : string -> resp
  (** Same failure cases as {!decode_request}. *)
end

(** Encode / decode one protocol message. [decode] must consume the
    whole payload. *)
module type CODEC = sig
  type message

  val encode : message -> string
  val decode : string -> message
end

module Protocol_codec : CODEC with type message = Dmutex.Protocol.message
(** Wire format for the paper's protocol messages, shared by
    {!Dmutex.Basic}, {!Dmutex.Monitored}, {!Dmutex.Resilient} and
    {!Dmutex.Prioritized}. *)
