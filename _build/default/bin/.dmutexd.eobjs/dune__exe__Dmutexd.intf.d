bin/dmutexd.mli:
