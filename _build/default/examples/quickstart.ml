(* Quickstart: simulate the paper's algorithm on ten nodes and print
   the headline numbers.

     dune exec examples/quickstart.exe *)

module Runner = Dmutex.Sim_runner.Make (Dmutex.Basic)

let () =
  (* The paper's setup: N = 10, T_msg = T_exec = T_fwd = 0.1 s,
     collection phase 0.1 s. *)
  let cfg = Dmutex.Basic.config ~n:10 () in

  (* Light load: each node asks for the critical section rarely
     (Poisson, λ = 0.02 requests/s per node). *)
  let light = Runner.run_poisson ~seed:1 ~requests:20_000 ~rate:0.02 cfg in

  (* Heavy load: every node re-requests as soon as it leaves the CS. *)
  let heavy = Runner.run_saturated ~seed:1 ~requests:20_000 cfg in

  Format.printf "light load : %.2f messages per CS (paper: (N^2-1)/N = %.2f)@."
    light.messages_per_cs
    (Dmutex.Analysis.light_load_messages ~n:10);
  Format.printf "heavy load : %.2f messages per CS (paper: 3 - 2/N = %.2f)@."
    heavy.messages_per_cs
    (Dmutex.Analysis.heavy_load_messages ~n:10);
  Format.printf "safety     : %d violations in %d critical sections@."
    (light.safety_violations + heavy.safety_violations)
    (light.completed + heavy.completed);
  (* The saturated (closed-loop) run necessarily ends with one request
     in flight per node, so only the open-loop run can leave requests
     genuinely unserved. *)
  Format.printf "fairness   : unserved open-loop requests: %d@."
    light.unserved
