type t = {
  reg : Registry.t;
  labels : (string * string) list;
  cs_entries : Registry.Counter.handle;
  cs_time : Registry.Histogram.handle;
  sync_delay : Registry.Histogram.handle;
  qlen : Registry.Histogram.handle;
  rbatches : Registry.Counter.handle;
  rbatch_size : Registry.Histogram.handle;
  (* Label cardinality is tiny (message kinds, phases, note tags), but
     these run on hot paths, so handles are memoized per instance to
     keep the registry mutex out of the steady state. *)
  sent_by_kind : (string, Registry.Counter.handle) Hashtbl.t;
  recv_by_kind : (string, Registry.Counter.handle) Hashtbl.t;
  notes_by_tag : (string, Registry.Counter.handle) Hashtbl.t;
  phase_by_name : (string, Registry.Histogram.handle) Hashtbl.t;
  mutable requested_at : float option;
  mutable entered_at : float option;
}

let create ?(labels = []) reg =
  {
    reg;
    labels;
    cs_entries = Registry.Counter.get reg ~labels Names.cs_entries_total;
    cs_time = Registry.Histogram.get reg ~labels Names.cs_time_seconds;
    sync_delay = Registry.Histogram.get reg ~labels Names.sync_delay_seconds;
    qlen = Registry.Histogram.get reg ~labels Names.queue_length;
    rbatches = Registry.Counter.get reg ~labels Names.read_batches_total;
    rbatch_size = Registry.Histogram.get reg ~labels Names.read_batch_size;
    sent_by_kind = Hashtbl.create 8;
    recv_by_kind = Hashtbl.create 8;
    notes_by_tag = Hashtbl.create 8;
    phase_by_name = Hashtbl.create 4;
    requested_at = None;
    entered_at = None;
  }

let registry t = t.reg

let memo tbl t get name labels_of key =
  match Hashtbl.find_opt tbl key with
  | Some h -> h
  | None ->
      let h = get t.reg ?labels:(Some (labels_of key @ t.labels)) name in
      Hashtbl.add tbl key h;
      h

let sent t ~kind =
  Registry.Counter.incr
    (memo t.sent_by_kind t Registry.Counter.get Names.messages_sent_total
       Names.kind_label kind)

let sent_many t ~kind n =
  Registry.Counter.add
    (memo t.sent_by_kind t Registry.Counter.get Names.messages_sent_total
       Names.kind_label kind)
    n

let received t ~kind =
  Registry.Counter.incr
    (memo t.recv_by_kind t Registry.Counter.get Names.messages_received_total
       Names.kind_label kind)

let mark_request t ~now =
  match t.requested_at with Some _ -> () | None -> t.requested_at <- Some now

let cs_entered t ~now =
  Registry.Counter.incr t.cs_entries;
  (match t.requested_at with
  | Some at ->
      t.requested_at <- None;
      Registry.Histogram.observe t.sync_delay (Float.max 0. (now -. at))
  | None -> ());
  t.entered_at <- Some now

let cs_exited t ~now =
  match t.entered_at with
  | Some at ->
      t.entered_at <- None;
      Registry.Histogram.observe t.cs_time (Float.max 0. (now -. at))
  | None -> ()

let queue_length t k = Registry.Histogram.observe t.qlen (float_of_int k)

let read_batch t k =
  Registry.Counter.incr t.rbatches;
  Registry.Histogram.observe t.rbatch_size (float_of_int k)

let phase t ~name dur =
  Registry.Histogram.observe
    (memo t.phase_by_name t Registry.Histogram.get Names.phase_seconds
       Names.phase_label name)
    dur

let note t tag =
  Registry.Counter.incr
    (memo t.notes_by_tag t Registry.Counter.get Names.notes_total
       Names.note_label tag)
