open Dmutex.Types

module Make (A : Dmutex.Types.ALGO) = struct
  type violation = { kind : [ `Safety | `Deadlock ]; trace : string list }

  type result = {
    states : int;
    transitions : int;
    violation : violation option;
    truncated : bool;
  }

  (* A global state. All components are kept in canonical form so that
     structural equality identifies equivalent states. Messages are
     grouped into per-(src, dst) channel queues: in FIFO mode the queue
     order is semantic; otherwise each queue is kept sorted. *)
  type gstate = {
    nodes : A.state array;
    inflight : ((int * int) * A.message list) list;
        (* sorted by channel key; message list in FIFO order *)
    timers : (int * A.timer) list;  (* armed timers *)
    budget : int array;  (* exclusive CS requests not yet injected *)
    sbudget : int array;  (* shared CS requests not yet injected *)
  }

  type transition =
    | Inject of int
    | Inject_shared of int
    | Deliver of int * int * A.message
    | Fire of int * A.timer
    | Finish of int  (* node leaves its CS *)

  let label = function
    | Inject i -> Printf.sprintf "node %d requests CS" i
    | Inject_shared i -> Printf.sprintf "node %d requests shared CS" i
    | Deliver (src, dst, m) ->
        Format.asprintf "deliver %d->%d: %a" src dst A.pp_message m
    | Fire (i, _) -> Printf.sprintf "timer fires at node %d" i
    | Finish i -> Printf.sprintf "node %d leaves CS" i

  (* Canonicalize the channel map: drop empty queues, sort by key;
     without FIFO semantics also sort within each queue. *)
  let canon_msgs ~fifo l =
    l
    |> List.filter (fun (_, q) -> q <> [])
    |> List.map (fun (k, q) -> (k, if fifo then q else List.sort compare q))
    |> List.sort compare

  let canon_timers l = List.sort_uniq compare l

  let channel_add key msg l =
    let rec go = function
      | [] -> [ (key, [ msg ]) ]
      | (k, q) :: rest when k = key -> (k, q @ [ msg ]) :: rest
      | kv :: rest -> kv :: go rest
    in
    go l

  let channel_remove key msg l =
    let rec drop_first = function
      | [] -> []
      | m :: rest when m = msg -> rest
      | m :: rest -> m :: drop_first rest
    in
    List.map (fun (k, q) -> if k = key then (k, drop_first q) else (k, q)) l

  (* Apply one transition; effects are folded into the successor
     state. *)
  let apply ~fifo cfg g tr =
    let n = Array.length g.nodes in
    let nodes = Array.copy g.nodes in
    let inflight = ref g.inflight in
    let timers = ref g.timers in
    let budget = Array.copy g.budget in
    let sbudget = Array.copy g.sbudget in
    let step i input =
      let st, effs = A.handle cfg ~now:0.0 nodes.(i) input in
      nodes.(i) <- st;
      List.iter
        (fun eff ->
          match eff with
          | Send (dst, m) -> inflight := channel_add (i, dst) m !inflight
          | Broadcast m ->
              for dst = 0 to n - 1 do
                if dst <> i then inflight := channel_add (i, dst) m !inflight
              done
          | Enter_cs -> ()
          | Set_timer (k, _) ->
              timers := (i, k) :: List.filter (fun t -> t <> (i, k)) !timers
          | Cancel_timer k ->
              timers := List.filter (fun t -> t <> (i, k)) !timers
          | Note _ -> ())
        effs
    in
    (match tr with
    | Inject i ->
        budget.(i) <- budget.(i) - 1;
        step i Request_cs
    | Inject_shared i ->
        sbudget.(i) <- sbudget.(i) - 1;
        step i Request_shared_cs
    | Deliver (src, dst, m) ->
        inflight := channel_remove (src, dst) m !inflight;
        step dst (Receive (src, m))
    | Fire (i, k) ->
        timers := List.filter (fun t -> t <> (i, k)) !timers;
        step i (Timer_fired k)
    | Finish i -> step i Cs_done);
    {
      nodes;
      inflight = canon_msgs ~fifo !inflight;
      timers = canon_timers !timers;
      budget;
      sbudget;
    }

  let enabled ~fifo ~fire_timers g =
    let n = Array.length g.nodes in
    let injects =
      List.filter_map
        (fun i -> if g.budget.(i) > 0 then Some (Inject i) else None)
        (List.init n (fun i -> i))
      @ List.filter_map
          (fun i ->
            if g.sbudget.(i) > 0 then Some (Inject_shared i) else None)
          (List.init n (fun i -> i))
    in
    let delivers =
      List.concat_map
        (fun ((src, dst), q) ->
          let candidates =
            if fifo then match q with [] -> [] | m :: _ -> [ m ]
            else List.sort_uniq compare q
          in
          List.map (fun m -> Deliver (src, dst, m)) candidates)
        g.inflight
    in
    let fires =
      if fire_timers then List.map (fun (i, k) -> Fire (i, k)) g.timers
      else []
    in
    let finishes =
      List.filter_map
        (fun i -> if A.in_cs g.nodes.(i) then Some (Finish i) else None)
        (List.init n (fun i -> i))
    in
    injects @ delivers @ fires @ finishes

  (* Mutual exclusion, read-write flavour: concurrent holders are
     legal exactly when every one of them holds in [Shared] mode — an
     [Exclusive] holder must be alone. With no shared requests in the
     mix this degenerates to the classic "never two in CS". *)
  let unsafe g =
    let holders = List.filter A.in_cs (Array.to_list g.nodes) in
    match holders with
    | [] | [ _ ] -> false
    | holders ->
        List.exists (fun st -> A.cs_mode st = Exclusive) holders

  let wants g = Array.exists (fun st -> A.wants_cs st) g.nodes

  let run ?(max_states = 2_000_000) ?(requests_per_node = 1)
      ?(shared_per_node = 0) ?(fire_timers = true) ?(fifo = false)
      ?(progress = false) cfg =
    let n = cfg.Config.n in
    let initial =
      {
        nodes = Array.init n (fun i -> A.init cfg i);
        inflight = [];
        timers = [];
        budget = Array.make n requests_per_node;
        sbudget = Array.make n shared_per_node;
      }
    in
    (* States are keyed by the MD5 of their marshalled image: the
       default polymorphic hash samples only a few words of these large
       records, which would degenerate the table. The parent map keeps
       digests and labels only, so the visited set stays compact. *)
    let digest (g : gstate) = Digest.string (Marshal.to_string g []) in
    let visited : (string, unit) Hashtbl.t = Hashtbl.create 65536 in
    let parent : (string, string * string) Hashtbl.t =
      Hashtbl.create 65536
    in
    let queue = Queue.create () in
    let d0 = digest initial in
    Hashtbl.replace visited d0 ();
    Queue.add (initial, d0) queue;
    let transitions = ref 0 in
    let truncated = ref false in
    let violation = ref None in
    let trace_to d =
      let rec go d acc =
        match Hashtbl.find_opt parent d with
        | None -> acc
        | Some (p, lbl) -> go p (lbl :: acc)
      in
      go d []
    in
    (try
       while not (Queue.is_empty queue) do
         let g, dg = Queue.pop queue in
         let trs = enabled ~fifo ~fire_timers g in
         if trs = [] && wants g then begin
           violation := Some { kind = `Deadlock; trace = trace_to dg };
           raise Exit
         end;
         List.iter
           (fun tr ->
             incr transitions;
             let g' = apply ~fifo cfg g tr in
             let dg' = digest g' in
             if not (Hashtbl.mem visited dg') then begin
               Hashtbl.replace visited dg' ();
               if progress && Hashtbl.length visited mod 20_000 = 0 then
                 Printf.eprintf "  ... %d states, %d in flight\n%!"
                   (Hashtbl.length visited)
                   (List.length g'.inflight);
               Hashtbl.replace parent dg' (dg, label tr);
               if unsafe g' then begin
                 violation :=
                   Some { kind = `Safety; trace = trace_to dg' };
                 raise Exit
               end;
               if Hashtbl.length visited >= max_states then begin
                 truncated := true;
                 raise Exit
               end;
               Queue.add (g', dg') queue
             end)
           trs
       done
     with Exit -> ());
    {
      states = Hashtbl.length visited;
      transitions = !transitions;
      violation = !violation;
      truncated = !truncated;
    }

  let run_random ?(walks = 1000) ?(depth = 400) ?(seed = 1)
      ?(requests_per_node = 1) ?(shared_per_node = 0) ?(fire_timers = true)
      ?(fifo = false) cfg =
    let n = cfg.Config.n in
    let initial =
      {
        nodes = Array.init n (fun i -> A.init cfg i);
        inflight = [];
        timers = [];
        budget = Array.make n requests_per_node;
        sbudget = Array.make n shared_per_node;
      }
    in
    let rng = Random.State.make [| seed |] in
    let digest (g : gstate) = Digest.string (Marshal.to_string g []) in
    let visited : (string, unit) Hashtbl.t = Hashtbl.create 65536 in
    let transitions = ref 0 in
    let violation = ref None in
    (try
       for _ = 1 to walks do
         let g = ref initial in
         let path = ref [] in
         (try
            for _ = 1 to depth do
              match enabled ~fifo ~fire_timers !g with
              | [] ->
                  if wants !g then begin
                    violation :=
                      Some { kind = `Deadlock; trace = List.rev !path };
                    raise Exit
                  end
                  else raise Not_found (* quiescent: walk over *)
              | trs ->
                  let tr = List.nth trs (Random.State.int rng (List.length trs)) in
                  incr transitions;
                  path := label tr :: !path;
                  g := apply ~fifo cfg !g tr;
                  Hashtbl.replace visited (digest !g) ();
                  if unsafe !g then begin
                    violation :=
                      Some { kind = `Safety; trace = List.rev !path };
                    raise Exit
                  end
            done
          with Not_found -> ())
       done
     with Exit -> ());
    {
      states = Hashtbl.length visited;
      transitions = !transitions;
      violation = !violation;
      truncated = true (* random exploration is never exhaustive *);
    }

  let pp_result ppf r =
    match r.violation with
    | None ->
        Format.fprintf ppf "OK: %d states, %d transitions%s" r.states
          r.transitions
          (if r.truncated then " (TRUNCATED)" else "")
    | Some v ->
        Format.fprintf ppf "%s after %d states:@,%a"
          (match v.kind with
          | `Safety -> "SAFETY VIOLATION"
          | `Deadlock -> "DEADLOCK")
          r.states
          (Format.pp_print_list ~pp_sep:Format.pp_print_newline
             Format.pp_print_string)
          v.trace
end
