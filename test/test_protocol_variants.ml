(* Unit tests of the Section 4.1 (monitor) and Section 6 (recovery)
   message handlers, driving Protocol.handle directly — the
   integration suites exercise these paths end-to-end; these pin the
   individual transitions. *)

open Dmutex
open Dmutex.Types

let mon_cfg = Monitored.config ~monitor:0 ~threshold:2 ~window:4 ~n:4 ()

let res_cfg =
  Resilient.config ~token_timeout:1.0 ~enquiry_timeout:0.5
    ~arbiter_timeout:2.0 ~n:4 ()

let step ?(now = 0.0) cfg st input = Protocol.handle cfg ~now st input

let sends effs =
  List.filter_map
    (function Send (dst, m) -> Some (dst, m) | _ -> None)
    effs

let broadcasts effs =
  List.filter_map (function Broadcast m -> Some m | _ -> None) effs

let timers effs =
  List.filter_map (function Set_timer (k, d) -> Some (k, d) | _ -> None) effs

let entry ?(hops = 0) node seq = Qlist.entry ~hops ~node ~seq ()

let token ?(epoch = 0) ?(election = 1) q =
  { Protocol.tq = q; granted = Qlist.Granted.create 4; epoch; election; vepoch = 0 }

(* ------------------------- monitor (§4.1) ------------------------ *)

let test_monitor_request_parked () =
  (* The monitor, as a bystander, parks resubmitted requests. *)
  let st = Protocol.init mon_cfg 0 in
  let st = { st with Protocol.role = Protocol.Normal } in
  let st, effs =
    step mon_cfg st (Receive (2, Protocol.Monitor_request (entry 2 0)))
  in
  Alcotest.(check int) "no sends" 0 (List.length (sends effs));
  Alcotest.(check bool) "parked" true
    (Qlist.mem 2 st.Protocol.monitor_buffer)

let test_monitor_request_served_if_arbiter () =
  (* If the monitor happens to be the collecting arbiter, a
     resubmission joins the normal queue directly. *)
  let st = Protocol.init mon_cfg 0 in
  let st, _ =
    step mon_cfg st (Receive (2, Protocol.Monitor_request (entry 2 0)))
  in
  match st.Protocol.role with
  | Protocol.Collecting { cq; _ } ->
      Alcotest.(check bool) "joined the collection" true (Qlist.mem 2 cq);
      Alcotest.(check int) "buffer untouched" 0
        (List.length st.Protocol.monitor_buffer)
  | _ -> Alcotest.fail "monitor should be collecting initially"

let test_monitor_privilege_flushes_buffer () =
  (* MONITOR-PRIVILEGE: append parked requests, broadcast NEW-ARBITER
     with counter 0, forward the token to the head. *)
  let st = Protocol.init mon_cfg 0 in
  let st = { st with Protocol.role = Protocol.Normal; token = None } in
  let st, _ =
    step mon_cfg st (Receive (3, Protocol.Monitor_request (entry 3 0)))
  in
  let st, effs =
    step mon_cfg st
      (Receive (1, Protocol.Monitor_privilege (token [ entry 1 1 ])))
  in
  (match broadcasts effs with
  | [ Protocol.New_arbiter na ] ->
      Alcotest.(check int) "counter reset" 0 na.Protocol.na_counter;
      Alcotest.(check (list int)) "buffered request appended" [ 1; 3 ]
        (List.map (fun e -> e.Qlist.node) na.Protocol.na_q);
      Alcotest.(check int) "tail (parked requester) is new arbiter" 3
        na.Protocol.na_arbiter
  | _ -> Alcotest.fail "expected a NEW-ARBITER broadcast from the monitor");
  (match sends effs with
  | [ (1, Protocol.Privilege t) ] ->
      Alcotest.(check int) "token forwarded to head" 2
        (List.length t.Protocol.tq)
  | _ -> Alcotest.fail "expected the token to move to node 1");
  Alcotest.(check int) "buffer discarded" 0
    (List.length st.Protocol.monitor_buffer)

let test_over_budget_drop_when_monitored () =
  (* A request over the τ hop budget is dropped by a forwarding
     arbiter in the monitored variant (the requester will escape to
     the monitor). *)
  let st = Protocol.init mon_cfg 1 in
  let st =
    { st with Protocol.role = Protocol.Forwarding { next_arbiter = 2 } }
  in
  let _, effs =
    step mon_cfg st (Receive (3, Protocol.Request (entry ~hops:2 3 0)))
  in
  Alcotest.(check int) "not forwarded" 0 (List.length (sends effs));
  Alcotest.(check bool) "dropped note" true
    (List.exists (function Note Dropped_request -> true | _ -> false) effs)

let test_miss_escape_to_monitor () =
  (* τ consecutive NEW-ARBITER misses: the requester resubmits to the
     monitor rather than the arbiter. *)
  let st = Protocol.init mon_cfg 2 in
  let st, _ = step mon_cfg st Request_cs in
  let na ~election =
    Protocol.New_arbiter
      {
        na_arbiter = 3;
        na_q = [ entry 1 0 ];
        na_granted = Qlist.Granted.create 4;
        na_counter = 1;
        na_monitor = 0;
        na_epoch = 0;
        na_election = election;
        na_view = Protocol.birth_view mon_cfg;
      }
  in
  let st, _ = step mon_cfg st (Receive (1, na ~election:1)) in
  let _, effs = step mon_cfg st (Receive (1, na ~election:2)) in
  Alcotest.(check bool) "escaped to the monitor" true
    (List.exists
       (function
         | Send (0, Protocol.Monitor_request e) -> e.Qlist.node = 2
         | _ -> false)
       effs);
  Alcotest.(check bool) "noted" true
    (List.exists
       (function Note Resubmitted_to_monitor -> true | _ -> false)
       effs)

(* ------------------------- recovery (§6) ------------------------- *)

let elected_arbiter () =
  (* Node 2 elected via NEW-ARBITER, awaiting the token, with a known
     last Q-list. *)
  let st = Protocol.init res_cfg 2 in
  let na =
    Protocol.New_arbiter
      {
        na_arbiter = 2;
        na_q = [ entry 1 0; entry 2 0 ];
        na_granted = Qlist.Granted.create 4;
        na_counter = 1;
        na_monitor = -1;
        na_epoch = 0;
        na_election = 3;
        na_view = Protocol.birth_view res_cfg;
      }
  in
  let st, effs = step res_cfg st (Receive (0, na)) in
  (st, effs)

let test_elected_arbiter_arms_token_timeout () =
  let _, effs = elected_arbiter () in
  Alcotest.(check bool) "T_token armed" true
    (List.exists (fun (k, _) -> k = Protocol.T_token) (timers effs))

let test_warning_starts_enquiry () =
  let st, _ = elected_arbiter () in
  let st, effs = step res_cfg st (Receive (1, Protocol.Warning)) in
  let enquiries =
    List.filter
      (function _, Protocol.Enquiry _ -> true | _ -> false)
      (sends effs)
  in
  (* Every peer is enquired (not just the last Q-list): the replies
     double as the quorum gating regeneration. *)
  Alcotest.(check (list int)) "enquired peers" [ 0; 1; 3 ]
    (List.sort compare (List.map fst enquiries));
  Alcotest.(check bool) "recovery running" true (st.Protocol.recovery <> None);
  Alcotest.(check bool) "noted" true
    (List.exists (function Note Recovery_started -> true | _ -> false) effs)

let test_warning_ignored_when_token_held () =
  let st = Protocol.init res_cfg 0 in
  (* initial arbiter holds the token *)
  let st', effs = step res_cfg st (Receive (3, Protocol.Warning)) in
  Alcotest.(check bool) "no recovery with token in hand" true
    (st'.Protocol.recovery = None && effs = [])

let test_enquiry_reply_have_token_resumes () =
  let st, _ = elected_arbiter () in
  let st, _ = step res_cfg st (Receive (1, Protocol.Warning)) in
  let st, effs =
    step res_cfg st
      (Receive
         (1, Protocol.Enquiry_reply { round = 1; status = Protocol.Have_token }))
  in
  Alcotest.(check bool) "resume sent to holder" true
    (List.mem (1, Protocol.Resume { round = 1 }) (sends effs));
  Alcotest.(check bool) "recovery closed" true (st.Protocol.recovery = None)

let test_all_waiting_regenerates () =
  let st, _ = elected_arbiter () in
  let st, _ = step res_cfg st (Receive (1, Protocol.Warning)) in
  let reply src status =
    Receive (src, Protocol.Enquiry_reply { round = 1; status })
  in
  let st, _ = step res_cfg st (reply 0 Protocol.Executed) in
  let st, _ = step res_cfg st (reply 1 Protocol.Waiting_token) in
  (* Node 3 stays silent; with n = 4 the recoverer plus two repliers
     is already a majority, so the enquiry timeout regenerates. *)
  let st, effs = step res_cfg st (Timer_fired Protocol.T_enquiry) in
  Alcotest.(check bool) "token regenerated" true
    (List.exists (function Note Token_regenerated -> true | _ -> false) effs);
  Alcotest.(check bool) "waiting node invalidated" true
    (List.mem (1, Protocol.Invalidate { round = 1 }) (sends effs));
  (* Regeneration epochs are id-salted (+1+me) so concurrent
     recoveries can never mint equal epochs. *)
  Alcotest.(check bool) "epoch bumped" true (st.Protocol.token_epoch = 3);
  (match st.Protocol.token with
  | Some t -> Alcotest.(check int) "fresh token epoch" 3 t.Protocol.epoch
  | None -> Alcotest.fail "arbiter should now hold a token");
  (* The waiting responder is rescheduled at the front. *)
  match st.Protocol.role with
  | Protocol.Collecting { cq; _ } ->
      Alcotest.(check bool) "waiting node at front of queue" true
        (match cq with e :: _ -> e.Qlist.node = 1 | [] -> false)
  | _ -> Alcotest.fail "arbiter should be collecting with the new token"

let test_quorum_blocks_regeneration () =
  (* A recoverer that has heard from fewer than a majority must not
     mint a token — across a partition the real one may still be
     alive. It keeps re-enquirying the silent peers instead. *)
  let st, _ = elected_arbiter () in
  let st, _ = step res_cfg st (Receive (1, Protocol.Warning)) in
  let st, _ =
    step res_cfg st
      (Receive (0, Protocol.Enquiry_reply { round = 1; status = Protocol.Executed }))
  in
  (* recoverer + 1 replier = 2 < 3 (majority of 4) *)
  let st, effs = step res_cfg st (Timer_fired Protocol.T_enquiry) in
  Alcotest.(check bool) "no regeneration below quorum" false
    (List.exists (function Note Token_regenerated -> true | _ -> false) effs);
  Alcotest.(check bool) "recovery still running" true
    (st.Protocol.recovery <> None);
  let re_enquired =
    List.filter_map
      (function dst, Protocol.Enquiry _ -> Some dst | _ -> None)
      (sends effs)
  in
  Alcotest.(check (list int)) "silent peers re-enquired" [ 1; 3 ]
    (List.sort compare re_enquired);
  Alcotest.(check bool) "enquiry timer re-armed" true
    (List.exists (fun (k, _) -> k = Protocol.T_enquiry) (timers effs))

let test_announcement_cancels_recovery () =
  (* A higher-election announcement naming another arbiter supersedes
     our in-flight invalidation: it owns recovery now. *)
  let st, _ = elected_arbiter () in
  let st, _ = step res_cfg st (Receive (1, Protocol.Warning)) in
  Alcotest.(check bool) "recovery running" true (st.Protocol.recovery <> None);
  let na =
    Protocol.New_arbiter
      {
        na_arbiter = 3;
        na_q = [];
        na_granted = Qlist.Granted.create 4;
        na_counter = 2;
        na_monitor = -1;
        na_epoch = 0;
        na_election = 9;
        na_view = Protocol.birth_view res_cfg;
      }
  in
  let st, effs = step res_cfg st (Receive (3, na)) in
  Alcotest.(check bool) "recovery cancelled" true
    (st.Protocol.recovery = None);
  Alcotest.(check bool) "enquiry timer cancelled" true
    (List.mem (Cancel_timer Protocol.T_enquiry) effs)

let test_enquiry_suspends_holder () =
  (* A token holder answering an ENQUIRY suspends passing until
     RESUME. *)
  let st = Protocol.init res_cfg 1 in
  let st, _ = step res_cfg st Request_cs in
  let st, _ =
    step res_cfg st (Receive (0, Protocol.Privilege (token [ entry 1 0 ])))
  in
  let st, effs = step res_cfg st (Receive (3, Protocol.Enquiry { round = 7 })) in
  (match sends effs with
  | [ (3, Protocol.Enquiry_reply { round = 7; status = Protocol.Have_token }) ]
    -> ()
  | _ -> Alcotest.fail "expected have-token reply");
  Alcotest.(check bool) "suspended" true st.Protocol.suspended;
  (* CS completes while suspended: the token is held, not passed. *)
  let st, effs = step res_cfg st Cs_done in
  Alcotest.(check int) "no token hop while suspended" 0
    (List.length (sends effs));
  Alcotest.(check bool) "token retained" true (st.Protocol.token <> None);
  (* RESUME releases it (empty queue -> become arbiter here). *)
  let st, _ = step res_cfg st (Receive (3, Protocol.Resume { round = 7 })) in
  Alcotest.(check bool) "unsuspended" false st.Protocol.suspended;
  Alcotest.(check bool) "acts on the held token" true
    (match st.Protocol.role with
    | Protocol.Collecting _ -> true
    | _ -> false)

let test_probe_ack () =
  let st = Protocol.init res_cfg 3 in
  let _, effs = step res_cfg st (Receive (0, Protocol.Probe)) in
  Alcotest.(check bool) "ack" true
    (sends effs = [ (0, Protocol.Probe_ack) ])

let test_takeover_on_probe_timeout () =
  (* The watcher probes; no answer; it proclaims itself and starts
     recovery. *)
  let st = Protocol.init res_cfg 0 in
  (* Make node 0 the watcher of arbiter 2. *)
  let st =
    { st with Protocol.role = Protocol.Normal; arbiter = 2; watching = true;
      token = None;
      last_q = [ entry 1 0 ] }
  in
  let st, effs = step res_cfg st (Timer_fired Protocol.T_watch) in
  Alcotest.(check bool) "probe sent" true
    (List.mem (2, Protocol.Probe) (sends effs));
  let st, effs = step res_cfg st (Timer_fired Protocol.T_probe) in
  (match broadcasts effs with
  | [ Protocol.New_arbiter na ] ->
      Alcotest.(check int) "proclaims itself" 0 na.Protocol.na_arbiter;
      Alcotest.(check bool) "election bumped" true (na.Protocol.na_election >= 1)
  | _ -> Alcotest.fail "expected takeover broadcast");
  Alcotest.(check bool) "takeover noted" true
    (List.exists (function Note Arbiter_takeover -> true | _ -> false) effs);
  Alcotest.(check bool) "recovery started to find the token" true
    (st.Protocol.recovery <> None)

let test_watch_survives_self_announcement () =
  (* A self-announcement (src = arbiter) must keep the watcher
     watching. *)
  let st = Protocol.init res_cfg 0 in
  let st =
    { st with Protocol.role = Protocol.Normal; arbiter = 2; watching = true }
  in
  let na ~src ~election =
    Receive
      ( src,
        Protocol.New_arbiter
          {
            na_arbiter = 2;
            na_q = [ entry 2 5 ];
            na_granted = Qlist.Granted.create 4;
            na_counter = 1;
            na_monitor = -1;
            na_epoch = 0;
            na_election = election;
            na_view = Protocol.birth_view res_cfg;
          } )
  in
  let st, effs = step res_cfg st (na ~src:2 ~election:1) in
  Alcotest.(check bool) "still watching" true st.Protocol.watching;
  Alcotest.(check bool) "watch timer re-armed" true
    (List.exists (fun (k, _) -> k = Protocol.T_watch) (timers effs));
  (* A normal hand-off announced by a different dispatcher stands the
     watcher down. *)
  let st, effs = step res_cfg st (na ~src:1 ~election:2) in
  Alcotest.(check bool) "stood down" false st.Protocol.watching;
  Alcotest.(check bool) "watch cancelled" true
    (List.exists
       (function Cancel_timer Protocol.T_watch -> true | _ -> false)
       effs)

let test_stale_round_ignored () =
  let st = Protocol.init res_cfg 1 in
  let st = { st with Protocol.enq_round = 5 } in
  let st', effs = step res_cfg st (Receive (0, Protocol.Resume { round = 3 })) in
  Alcotest.(check bool) "stale resume ignored" true (st' = st && effs = []);
  let st', _ = step res_cfg st (Receive (0, Protocol.Invalidate { round = 3 })) in
  Alcotest.(check bool) "stale invalidate ignored" true
    (st'.Protocol.enq_round = 5)

let suite =
  ( "protocol-variants",
    [
      Alcotest.test_case "monitor parks resubmissions" `Quick
        test_monitor_request_parked;
      Alcotest.test_case "monitor-as-arbiter serves directly" `Quick
        test_monitor_request_served_if_arbiter;
      Alcotest.test_case "monitor pass flushes buffer" `Quick
        test_monitor_privilege_flushes_buffer;
      Alcotest.test_case "over-budget drop (monitored)" `Quick
        test_over_budget_drop_when_monitored;
      Alcotest.test_case "τ misses escape to monitor" `Quick
        test_miss_escape_to_monitor;
      Alcotest.test_case "elected arbiter arms token timeout" `Quick
        test_elected_arbiter_arms_token_timeout;
      Alcotest.test_case "WARNING starts two-phase enquiry" `Quick
        test_warning_starts_enquiry;
      Alcotest.test_case "WARNING ignored with token in hand" `Quick
        test_warning_ignored_when_token_held;
      Alcotest.test_case "have-token reply resumes" `Quick
        test_enquiry_reply_have_token_resumes;
      Alcotest.test_case "all-waiting regenerates the token" `Quick
        test_all_waiting_regenerates;
      Alcotest.test_case "quorum gates regeneration" `Quick
        test_quorum_blocks_regeneration;
      Alcotest.test_case "announcement cancels rival recovery" `Quick
        test_announcement_cancels_recovery;
      Alcotest.test_case "ENQUIRY suspends a holder" `Quick
        test_enquiry_suspends_holder;
      Alcotest.test_case "PROBE is acknowledged" `Quick test_probe_ack;
      Alcotest.test_case "takeover on probe timeout" `Quick
        test_takeover_on_probe_timeout;
      Alcotest.test_case "watch survives self-announcement" `Quick
        test_watch_survives_self_announcement;
      Alcotest.test_case "stale rounds ignored" `Quick
        test_stale_round_ignored;
    ] )
