lib/core/analysis.ml: Types
