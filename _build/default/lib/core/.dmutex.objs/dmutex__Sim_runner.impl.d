lib/core/sim_runner.ml: Array Engine Float Format Hashtbl List Network Queue Rng Simkit Stats Trace Types Workload
