(* The client session layer end-to-end: leases, fencing tokens,
   failover, load shedding — a real cluster behind real session
   sockets, plus codec unit tests for the client wire family.

   The lease-edge cases use a *raw* client (hand-rolled frames, no
   renewal thread) so a stalled or dead client can actually stall:
   the Session_client library is deliberately too well-behaved to
   exhibit them. *)

module WC = Wire.Client
module RC = Netkit.Cluster.Make (Dmutex.Resilient) (Wire.Protocol_codec)
module S = Netkit.Session.Make (Dmutex.Resilient) (Wire.Protocol_codec)
module SC = Netkit.Session_client

(* ------------------------------------------------------------------ *)
(* Client wire-format units *)

let test_codec_roundtrip () =
  let reqs =
    [
      WC.Hello { rid = 1 };
      WC.Open_session { rid = 2; lease_ms = 5000; resume = None };
      WC.Open_session { rid = 3; lease_ms = 0; resume = Some "ab%cd" };
      WC.Acquire
        { rid = 4; lock = "a/b"; timeout_ms = 250; try_only = true;
          shared = false };
      WC.Acquire
        { rid = 8; lock = "rw"; timeout_ms = 100; try_only = false;
          shared = true };
      WC.Release { rid = 5; lock = "" };
      WC.Renew { rid = 6 };
      WC.Close { rid = 7 };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request round-trips" true
        (WC.decode_request (WC.encode_request r) = r))
    reqs;
  let resps =
    [
      WC.Hello_ok { rid = 1; node = 3; proto = WC.version };
      WC.Session_opened
        {
          rid = 2;
          sid = "s";
          lease_ms = 100;
          grace_ms = 200;
          resumed = true;
          held = [ ("l1", 42); ("l2", 7) ];
        };
      WC.Granted { rid = 3; lock = "x"; fencing = 1 lsl 41 };
      WC.Rejected { rid = 4; reason = WC.Queue_full; retry_after_ms = 125 };
      WC.Released { rid = 5; lock = "x" };
      WC.Renewed { rid = 6; lease_ms = 5000 };
      WC.Closed { rid = 7 };
      WC.Session_lost { rid = 0; reason = "lease expired" };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "response round-trips" true
        (WC.decode_response (WC.encode_response r) = r))
    resps

let test_codec_version_mismatch () =
  let s = WC.encode_request (WC.Hello { rid = 1 }) in
  let bad = Bytes.of_string s in
  Bytes.set bad 0 (Char.chr (WC.version + 1));
  (match WC.decode_request (Bytes.to_string bad) with
  | _ -> Alcotest.fail "foreign version byte must be rejected"
  | exception Wire.Malformed _ -> ());
  let s = WC.encode_response (WC.Closed { rid = 1 }) in
  (match WC.decode_response (String.sub s 0 (String.length s - 1)) with
  | _ -> Alcotest.fail "truncated response must be rejected"
  | exception Wire.Malformed _ -> ())

(* ------------------------------------------------------------------ *)
(* Live-cluster scaffolding *)

let fast_cfg n =
  {
    (Dmutex.Resilient.config ~n ()) with
    Dmutex.Types.Config.t_collect = 0.02;
    t_forward = 0.02;
  }

let with_cluster ?(n = 3) ?(locks = [ "apex" ]) ~base_port ?lease_ms ?grace_ms
    ?max_sessions ?max_waiters f =
  let cluster = RC.launch ~base_port ~locks (fast_cfg n) in
  let servers =
    Array.init n (fun i ->
        S.create ?lease_ms ?grace_ms ?max_sessions ?max_waiters
          ~fencing:Dmutex_store.Protocol_view.fencing_of_state
          ~node:(RC.node cluster i)
          ~addr:{ Netkit.Transport.host = "127.0.0.1"; port = 0 }
          ())
  in
  let addrs =
    Array.to_list
      (Array.map
         (fun s -> { Netkit.Transport.host = "127.0.0.1"; port = S.port s })
         servers)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter S.shutdown servers;
      RC.shutdown cluster)
    (fun () -> f cluster servers addrs)

(* Raw client: blocking frames on a socket, no renewal, no retries. *)
let raw_connect (ep : Netkit.Transport.endpoint) =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let raw_send fd req = Netkit.Session_frame.send fd (WC.encode_request req)
let raw_recv fd = WC.decode_response (Netkit.Session_frame.recv fd)

let raw_rpc fd req =
  raw_send fd req;
  raw_recv fd

let raw_open ?(lease_ms = 400) fd =
  (match raw_rpc fd (WC.Hello { rid = 1 }) with
  | WC.Hello_ok _ -> ()
  | r -> Alcotest.failf "hello: unexpected %s" (match r with _ -> "response"));
  match raw_rpc fd (WC.Open_session { rid = 2; lease_ms; resume = None }) with
  | WC.Session_opened { sid; _ } -> sid
  | _ -> Alcotest.fail "open failed"

(* ------------------------------------------------------------------ *)
(* Grants and fencing *)

let test_acquire_release_fencing () =
  with_cluster ~base_port:9101 (fun _cluster servers addrs ->
      let cl = SC.connect ~seed:1 ~addrs () in
      let f1 =
        match SC.acquire ~timeout:20.0 ~lock:"apex" cl with
        | Ok f -> f
        | Error e -> Alcotest.failf "acquire 1: %s" (SC.string_of_error e)
      in
      (match SC.release ~lock:"apex" cl with
      | Ok () -> ()
      | Error e -> Alcotest.failf "release 1: %s" (SC.string_of_error e));
      let f2 =
        match SC.acquire ~timeout:20.0 ~lock:"apex" cl with
        | Ok f -> f
        | Error e -> Alcotest.failf "acquire 2: %s" (SC.string_of_error e)
      in
      Alcotest.(check bool) "fencing strictly monotonic" true (f2 > f1);
      (match SC.release ~lock:"apex" cl with
      | Ok () -> ()
      | Error e -> Alcotest.failf "release 2: %s" (SC.string_of_error e));
      Alcotest.(check bool)
        "server remembers last fencing" true
        (Array.exists (fun s -> S.last_fencing s ~lock:"apex" = Some f2) servers);
      SC.close cl)

let test_swarm_mutual_exclusion () =
  (* Many clients, one counter behind one lock: grants must serialize
     and every fencing token must be unique and increasing. *)
  with_cluster ~base_port:9111 (fun _cluster _servers addrs ->
      let clients = 12 and rounds = 3 in
      let counter = ref 0 in
      let fencings = ref [] in
      let m = Mutex.create () in
      let failures = Atomic.make 0 in
      let worker c () =
        let cl = SC.connect ~seed:(100 + c) ~addrs () in
        for _ = 1 to rounds do
          match
            SC.with_lock ~timeout:60.0 ~lock:"apex" cl (fun ~fencing ->
                let v = !counter in
                Thread.delay 0.001;
                counter := v + 1;
                Mutex.lock m;
                fencings := fencing :: !fencings;
                Mutex.unlock m)
          with
          | Ok () -> ()
          | Error _ -> Atomic.incr failures
        done;
        SC.close cl
      in
      let threads =
        List.init clients (fun c -> Thread.create (worker c) ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "no failures" 0 (Atomic.get failures);
      Alcotest.(check int) "no lost increments" (clients * rounds) !counter;
      let fs = !fencings in
      let sorted = List.sort_uniq compare fs in
      Alcotest.(check int)
        "fencing tokens all distinct" (clients * rounds)
        (List.length sorted))

let test_try_acquire () =
  with_cluster ~base_port:9121 (fun _cluster _servers addrs ->
      let a = SC.connect ~seed:2 ~addrs () in
      let b = SC.connect ~seed:3 ~addrs () in
      (match SC.acquire ~timeout:20.0 ~lock:"apex" a with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "holder: %s" (SC.string_of_error e));
      (match SC.try_acquire ~lock:"apex" b with
      | Error SC.Timeout -> ()
      | Ok _ -> Alcotest.fail "try_acquire must not steal a held lock"
      | Error e -> Alcotest.failf "try while held: %s" (SC.string_of_error e));
      (match SC.release ~lock:"apex" a with
      | Ok () -> ()
      | Error e -> Alcotest.failf "release: %s" (SC.string_of_error e));
      (match SC.try_acquire ~lock:"apex" b with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "try when free: %s" (SC.string_of_error e));
      SC.close a;
      SC.close b)

(* ------------------------------------------------------------------ *)
(* Lease edges *)

let test_lease_expiry_in_cs () =
  (* A stalls inside its CS past the lease: the server drains the
     grant (protocol lock released) and B's later grant carries a
     strictly higher fencing token. *)
  with_cluster ~base_port:9131 ~lease_ms:400 (fun _cluster servers addrs ->
      let fd = raw_connect (List.nth addrs 0) in
      let _sid = raw_open ~lease_ms:400 fd in
      raw_send fd
        (WC.Acquire { rid = 10; lock = "apex"; timeout_ms = 10_000; try_only = false; shared = false });
      let fa =
        match raw_recv fd with
        | WC.Granted { fencing; _ } -> fencing
        | _ -> Alcotest.fail "raw grant"
      in
      (* Stall: no renewals, no release. The next frame on this socket
         must be the unsolicited lease-expiry Session_lost. *)
      (match raw_recv fd with
      | WC.Session_lost { rid = 0; _ } -> ()
      | _ -> Alcotest.fail "expected unsolicited Session_lost");
      let b = SC.connect ~seed:4 ~addrs:[ List.nth addrs 1 ] () in
      let fb =
        match SC.acquire ~timeout:20.0 ~lock:"apex" b with
        | Ok f -> f
        | Error e -> Alcotest.failf "B after expiry: %s" (SC.string_of_error e)
      in
      Alcotest.(check bool) "fencing advanced past drained grant" true (fb > fa);
      ignore (SC.release ~lock:"apex" b);
      SC.close b;
      (try Unix.close fd with _ -> ());
      Alcotest.(check bool) "server counted an expiry" true
        ((S.stats servers.(0)).S.expired >= 1))

let test_renewal_racing_expiry () =
  (* Renew arriving after the sweeper expired the session must lose
     loudly, never silently revive the lease. *)
  with_cluster ~base_port:9141 ~lease_ms:300 (fun _cluster _servers addrs ->
      let fd = raw_connect (List.nth addrs 0) in
      let _sid = raw_open ~lease_ms:300 fd in
      Thread.delay 0.8 (* comfortably past lease + sweep period *);
      (* The expiry notice is already queued on the socket; the renew
         reply follows it. *)
      raw_send fd (WC.Renew { rid = 11 });
      let saw_lost = ref false and saw_renewed = ref false in
      (try
         for _ = 1 to 2 do
           match raw_recv fd with
           | WC.Session_lost _ -> saw_lost := true
           | WC.Renewed _ -> saw_renewed := true
           | _ -> ()
         done
       with _ -> ());
      Alcotest.(check bool) "renewal lost loudly" true !saw_lost;
      Alcotest.(check bool) "renewal must not revive" false !saw_renewed;
      try Unix.close fd with _ -> ())

let test_dead_client_queued_cancelled () =
  (* B queues behind A, then B dies (lease lapses while waiting). When
     A finally releases, B's request must have been cancelled — the
     grant may not be issued to a dead session. *)
  with_cluster ~base_port:9151 ~lease_ms:400 (fun _cluster servers addrs ->
      let a = SC.connect ~seed:5 ~addrs:[ List.nth addrs 0 ] () in
      (match SC.acquire ~timeout:20.0 ~lock:"apex" a with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "A: %s" (SC.string_of_error e));
      let fdb = raw_connect (List.nth addrs 0) in
      let _sidb = raw_open ~lease_ms:400 fdb in
      raw_send fdb
        (WC.Acquire { rid = 20; lock = "apex"; timeout_ms = 20_000; try_only = false; shared = false });
      (* B now stalls without renewing; its lease lapses while queued. *)
      (match raw_recv fdb with
      | WC.Session_lost { rid = 0; _ } -> ()
      | WC.Granted _ -> Alcotest.fail "dead session must not be granted"
      | _ -> Alcotest.fail "expected B's lease expiry");
      (match SC.release ~lock:"apex" a with
      | Ok () -> ()
      | Error e -> Alcotest.failf "A release: %s" (SC.string_of_error e));
      (* The lock is free and B got nothing: C can take it. *)
      let c = SC.connect ~seed:6 ~addrs () in
      (match SC.acquire ~timeout:20.0 ~lock:"apex" c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "C: %s" (SC.string_of_error e));
      ignore (SC.release ~lock:"apex" c);
      SC.close c;
      SC.close a;
      (try Unix.close fdb with _ -> ());
      Alcotest.(check bool) "B's grant was never issued" true
        ((S.stats servers.(0)).S.granted <= 3))

(* ------------------------------------------------------------------ *)
(* Failover and shedding *)

let test_failover_resume () =
  (* Break the TCP connection under a held lock: the client must
     reconnect, resume by sid, and still know its grant. *)
  with_cluster ~base_port:9161 (fun _cluster _servers addrs ->
      let cl = SC.connect ~seed:7 ~addrs () in
      let f1 =
        match SC.acquire ~timeout:20.0 ~lock:"apex" cl with
        | Ok f -> f
        | Error e -> Alcotest.failf "acquire: %s" (SC.string_of_error e)
      in
      let sid_before = SC.session_id cl in
      SC.break_conn cl;
      (match SC.renew cl with
      | Ok () -> ()
      | Error e -> Alcotest.failf "renew after break: %s" (SC.string_of_error e));
      Alcotest.(check bool) "same session resumed" true
        (SC.session_id cl = sid_before);
      (match SC.release ~lock:"apex" cl with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "release after resume: %s" (SC.string_of_error e));
      let f2 =
        match SC.acquire ~timeout:20.0 ~lock:"apex" cl with
        | Ok f -> f
        | Error e -> Alcotest.failf "reacquire: %s" (SC.string_of_error e)
      in
      Alcotest.(check bool) "fencing kept advancing" true (f2 > f1);
      ignore (SC.release ~lock:"apex" cl);
      SC.close cl)

let test_failover_to_other_node () =
  (* The node hosting the session shuts its session service down; a
     client with no grants silently fails over, one with grants loses
     its session loudly — then recovers with a fresh one. *)
  with_cluster ~base_port:9171 ~lease_ms:600 (fun _cluster servers addrs ->
      let idle =
        SC.connect ~seed:8 ~addrs:[ List.nth addrs 0; List.nth addrs 1 ] ()
      in
      ignore (SC.acquire ~timeout:20.0 ~lock:"apex" idle);
      ignore (SC.release ~lock:"apex" idle);
      let holder =
        SC.connect ~seed:9 ~addrs:[ List.nth addrs 0; List.nth addrs 1 ] ()
      in
      (match SC.acquire ~timeout:20.0 ~lock:"apex" holder with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "holder: %s" (SC.string_of_error e));
      S.shutdown servers.(0);
      (* Holder: loses the session loudly exactly once... *)
      let lost =
        match SC.acquire ~timeout:10.0 ~lock:"apex" holder with
        | Error (SC.Session_lost _) -> true
        | Ok _ -> false
        | Error e -> Alcotest.failf "holder fate: %s" (SC.string_of_error e)
      in
      Alcotest.(check bool) "grants lost loudly" true lost;
      (* ...then works again via node 1 on a fresh session. *)
      (match SC.acquire ~timeout:30.0 ~lock:"apex" holder with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "holder recovery: %s" (SC.string_of_error e));
      ignore (SC.release ~lock:"apex" holder);
      (* Idle client just fails over. *)
      (match SC.acquire ~timeout:30.0 ~lock:"apex" idle with
      | Ok _ -> ()
      | Error (SC.Session_lost _) -> (
          match SC.acquire ~timeout:30.0 ~lock:"apex" idle with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "idle retry: %s" (SC.string_of_error e))
      | Error e -> Alcotest.failf "idle failover: %s" (SC.string_of_error e));
      ignore (SC.release ~lock:"apex" idle);
      SC.close holder;
      SC.close idle)

let test_admission_cap () =
  with_cluster ~base_port:9181 ~max_sessions:2 (fun _cluster _servers addrs ->
      let ep = [ List.nth addrs 0 ] in
      let a = SC.connect ~seed:10 ~addrs:ep () in
      let b = SC.connect ~seed:11 ~addrs:ep () in
      (match SC.renew a with Ok () -> () | Error e -> Alcotest.failf "a: %s" (SC.string_of_error e));
      (match SC.renew b with Ok () -> () | Error e -> Alcotest.failf "b: %s" (SC.string_of_error e));
      let fd = raw_connect (List.nth addrs 0) in
      (match raw_rpc fd (WC.Hello { rid = 1 }) with
      | WC.Hello_ok _ -> ()
      | _ -> Alcotest.fail "hello");
      (match raw_rpc fd (WC.Open_session { rid = 2; lease_ms = 0; resume = None }) with
      | WC.Rejected { reason = WC.Session_limit; retry_after_ms; _ } ->
          Alcotest.(check bool) "retry-after hint" true (retry_after_ms > 0)
      | _ -> Alcotest.fail "third session must be shed");
      (try Unix.close fd with _ -> ());
      SC.close a;
      SC.close b)

let test_queue_cap () =
  with_cluster ~base_port:9191 ~max_waiters:1 (fun _cluster _servers addrs ->
      let ep = [ List.nth addrs 0 ] in
      let a = SC.connect ~seed:12 ~addrs:ep () in
      (match SC.acquire ~timeout:20.0 ~lock:"apex" a with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "holder: %s" (SC.string_of_error e));
      (* One waiter fills the queue... *)
      let fdb = raw_connect (List.nth addrs 0) in
      let _ = raw_open ~lease_ms:5000 fdb in
      raw_send fdb
        (WC.Acquire { rid = 30; lock = "apex"; timeout_ms = 5_000; try_only = false; shared = false });
      Thread.delay 0.2;
      (* ...the next one is shed with an explicit retry-after. *)
      let fdc = raw_connect (List.nth addrs 0) in
      let _ = raw_open ~lease_ms:5000 fdc in
      (match
         raw_rpc fdc
           (WC.Acquire { rid = 31; lock = "apex"; timeout_ms = 5_000; try_only = false; shared = false })
       with
      | WC.Rejected { reason = WC.Queue_full; retry_after_ms; _ } ->
          Alcotest.(check bool) "retry-after hint" true (retry_after_ms > 0)
      | _ -> Alcotest.fail "over-cap waiter must be shed");
      (match
         raw_rpc fdc (WC.Acquire { rid = 32; lock = "nope"; timeout_ms = 100; try_only = false; shared = false })
       with
      | WC.Rejected { reason = WC.Unknown_lock; _ } -> ()
      | _ -> Alcotest.fail "unknown lock must be rejected");
      ignore (SC.release ~lock:"apex" a);
      SC.close a;
      (try Unix.close fdb with _ -> ());
      try Unix.close fdc with _ -> ())

(* ------------------------------------------------------------------ *)
(* Lock modes through the session layer *)

let test_shared_batch_grants () =
  (* Two readers pinned to different nodes: when their shared requests
     land in the same protocol window they are granted as one batch —
     concurrently, with one shared fencing token. Overlap is timing
     dependent (a shared waiter arriving after a batch dispatched
     serializes behind it), so we retry a few rounds until both
     readers are observed inside the CS at once. *)
  with_cluster ~base_port:9201 (fun _cluster _servers addrs ->
      let a = SC.connect ~seed:20 ~addrs:[ List.nth addrs 0 ] () in
      let b = SC.connect ~seed:21 ~addrs:[ List.nth addrs 1 ] () in
      let overlap_fencings = ref None in
      let rec round i =
        if i > 10 then ()
        else begin
          let inside = Atomic.make 0 in
          let overlapped = Atomic.make false in
          let fa = ref None and fb = ref None in
          let reader cl slot () =
            match
              SC.with_lock ~timeout:20.0 ~shared:true ~lock:"apex" cl
                (fun ~fencing ->
                  slot := Some fencing;
                  Atomic.incr inside;
                  (* Linger so the other reader has a chance to be in
                     the CS at the same time. *)
                  let t0 = Unix.gettimeofday () in
                  let rec spin () =
                    if Atomic.get inside >= 2 then Atomic.set overlapped true
                    else if Unix.gettimeofday () -. t0 < 0.5 then begin
                      Thread.delay 0.005;
                      spin ()
                    end
                  in
                  spin ();
                  ignore (Atomic.fetch_and_add inside (-1)))
            with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "shared acquire: %s" (SC.string_of_error e)
          in
          let t1 = Thread.create (reader a fa) () in
          let t2 = Thread.create (reader b fb) () in
          Thread.join t1;
          Thread.join t2;
          if Atomic.get overlapped then overlap_fencings := Some (!fa, !fb)
          else round (i + 1)
        end
      in
      round 1;
      let f_read =
        match !overlap_fencings with
        | Some (Some f1, Some f2) ->
            Alcotest.(check bool)
              "batched readers share one fencing token" true (f1 = f2);
            f1
        | _ -> Alcotest.fail "no concurrent shared grant observed in 10 rounds"
      in
      (* A writer after the batch advances fencing past the shared
         token and excludes readers while held. *)
      (match SC.acquire ~timeout:20.0 ~lock:"apex" a with
      | Ok fw ->
          Alcotest.(check bool)
            "writer fencing dominates the batch" true (fw > f_read)
      | Error e -> Alcotest.failf "writer: %s" (SC.string_of_error e));
      (match SC.try_acquire ~shared:true ~lock:"apex" b with
      | Error SC.Timeout -> ()
      | Ok _ -> Alcotest.fail "reader must not slip past a held writer"
      | Error e -> Alcotest.failf "reader vs writer: %s" (SC.string_of_error e));
      ignore (SC.release ~lock:"apex" a);
      SC.close a;
      SC.close b)

let test_rejected_vs_timeout () =
  (* A queue-side expiry is the *server's* verdict: the session
     sweeper rejects the expired waiter with Lock_timeout well inside
     the client's local deadline (server timeout + slack), so the
     caller sees Rejected — never the local Timeout, which is
     reserved for "no verdict arrived at all". *)
  with_cluster ~base_port:9211 (fun _cluster _servers addrs ->
      let a = SC.connect ~seed:22 ~addrs () in
      (match SC.acquire ~timeout:20.0 ~lock:"apex" a with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "holder: %s" (SC.string_of_error e));
      let b = SC.connect ~seed:23 ~addrs () in
      (match SC.with_lock ~timeout:0.3 ~lock:"apex" b (fun ~fencing:_ -> ()) with
      | Error (SC.Rejected (WC.Lock_timeout, retry_after)) ->
          Alcotest.(check bool) "retry-after hint sane" true (retry_after >= 0.0)
      | Error SC.Timeout ->
          Alcotest.fail
            "queue expiry must surface as the server's Rejected, not the \
             local Timeout"
      | Ok () -> Alcotest.fail "must not be granted while held"
      | Error e -> Alcotest.failf "waiter: %s" (SC.string_of_error e));
      (* try_acquire keeps its distinct contract: busy is Timeout. *)
      (match SC.try_acquire ~lock:"apex" b with
      | Error SC.Timeout -> ()
      | Ok _ -> Alcotest.fail "try_acquire must not steal a held lock"
      | Error e -> Alcotest.failf "try: %s" (SC.string_of_error e));
      ignore (SC.release ~lock:"apex" a);
      SC.close a;
      SC.close b)

let suite =
  ( "session",
    [
      Alcotest.test_case "client codec round-trips" `Quick test_codec_roundtrip;
      Alcotest.test_case "client codec rejects foreign versions" `Quick
        test_codec_version_mismatch;
      Alcotest.test_case "acquire/release carries monotonic fencing" `Quick
        test_acquire_release_fencing;
      Alcotest.test_case "client swarm mutual exclusion" `Quick
        test_swarm_mutual_exclusion;
      Alcotest.test_case "try_acquire" `Quick test_try_acquire;
      Alcotest.test_case "lease expiry in CS drains and advances fencing"
        `Quick test_lease_expiry_in_cs;
      Alcotest.test_case "renewal racing expiry loses loudly" `Quick
        test_renewal_racing_expiry;
      Alcotest.test_case "dead client's queued acquire is cancelled" `Quick
        test_dead_client_queued_cancelled;
      Alcotest.test_case "failover resumes session by sid" `Quick
        test_failover_resume;
      Alcotest.test_case "failover to another node" `Quick
        test_failover_to_other_node;
      Alcotest.test_case "admission cap sheds with retry-after" `Quick
        test_admission_cap;
      Alcotest.test_case "queue cap sheds with retry-after" `Quick
        test_queue_cap;
      Alcotest.test_case "shared readers batch under one fencing token" `Quick
        test_shared_batch_grants;
      Alcotest.test_case "queue expiry is Rejected, local deadline is Timeout"
        `Quick test_rejected_vs_timeout;
    ] )
