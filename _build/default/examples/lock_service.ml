(* A replicated counter guarded by the paper's protocol over real TCP.

   Five nodes run in one process (each with its own sockets, threads
   and timers — only the process boundary is missing compared to a
   real deployment). Each node increments a shared counter 20 times
   under the distributed lock; a data race would lose increments.

     dune exec examples/lock_service.exe *)

module Cluster = Netkit.Cluster.Make (Dmutex.Basic) (Wire.Protocol_codec)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let n = 5 and rounds = 20 in
  let cfg =
    { (Dmutex.Basic.config ~n ()) with
      Dmutex.Types.Config.t_collect = 0.02;
      t_forward = 0.02 }
  in
  let cluster = Cluster.launch cfg in

  (* The "service": an unprotected shared cell. The distributed lock is
     the only thing standing between these threads and lost updates. *)
  let counter = ref 0 in

  let worker i () =
    for round = 1 to rounds do
      match
        Cluster.Node.with_lock ~timeout:30.0 (Cluster.node cluster i)
          (fun () ->
            let v = !counter in
            Thread.delay 0.002 (* widen the race window *);
            counter := v + 1)
      with
      | Some () -> ()
      | None ->
          Printf.printf "node %d: timed out in round %d\n%!" i round
    done;
    Printf.printf "node %d done (%d rounds)\n%!" i rounds
  in

  let threads = List.init n (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Printf.printf "counter = %d (expected %d)\n" !counter (n * rounds);
  Cluster.shutdown cluster;
  if !counter <> n * rounds then exit 1
