(** Derived run report: the paper's comparison axes computed from a
    (merged) registry snapshot.

    Messages-per-CS — the headline quantity of Eqs. 1–6 and Figures
    3–6 — is total protocol messages sent divided by total CS
    entries. Sync delay is reported from the
    [dmutex_sync_delay_seconds] histogram. [Cluster.obs_report]
    merges per-node snapshots and derives one of these for a live
    run; the bench embeds the same fields into [BENCH_RESULTS.json]
    from simulator runs, so the two are directly comparable. *)

type t = {
  messages_sent : int;
  messages_received : int;
  cs_entries : int;
  messages_per_cs : float;  (** [nan] when no CS was entered *)
  by_kind : (string * int) list;  (** sent, per message kind, sorted *)
  sync_delay_mean : float;  (** seconds; [nan] when unobserved *)
  sync_delay_max : float;
  queue_length_mean : float;
}

val derive : ?lock:string -> Registry.snapshot -> t
(** Without [lock], aggregate across every series — including all lock
    instances of a keyed deployment. With [lock], restrict to series
    labelled [lock=<key>] (histograms with matching labels are merged;
    only count, sum and max survive the merge, which is all the report
    uses). *)

val locks : Registry.snapshot -> string list
(** Distinct values of the [lock] label across the snapshot's series,
    sorted. Empty for a single-instance (unlabelled) run. *)

val by_lock : Registry.snapshot -> (string * t) list
(** One {!derive} per {!locks} entry — the per-lock breakdown of a
    keyed run. *)

val to_json : t -> Json.t
(** NaNs render as JSON [null]. *)

val pp : Format.formatter -> t -> unit
