lib/simkit/rng.mli:
