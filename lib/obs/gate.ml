type outcome = { lines : string list; failures : string list }

type check = {
  label : string;
  path : string list;
  tolerance : float;  (* relative: fail when cur > base * (1 + tolerance) *)
  band : (float * float) option;  (* absolute bounds on the current value *)
}

let get path json = Option.bind (Json.path path json) Json.num

let run ?(tolerance = 0.25) ?(wall_tolerance = 0.25) ?(band = (2.5, 4.5))
    ~baseline ~current () =
  let checks =
    [
      {
        label = "high-load messages/CS";
        path = [ "derived"; "high_load"; "messages_per_cs" ];
        tolerance;
        band = Some band;
      };
      {
        label = "light-load messages/CS";
        path = [ "derived"; "light_load"; "messages_per_cs" ];
        tolerance;
        band = None;
      };
      {
        label = "total wall-clock";
        path = [ "total_seconds" ];
        tolerance = wall_tolerance;
        band = None;
      };
    ]
  in
  let lines = ref [] and failures = ref [] in
  let say l = lines := l :: !lines in
  let fail l =
    failures := l :: !failures;
    say l
  in
  List.iter
    (fun c ->
      let dotted = String.concat "." c.path in
      match (get c.path baseline, get c.path current) with
      | _, None -> fail (Printf.sprintf "FAIL %s: missing %s in current run" c.label dotted)
      | None, Some cur -> (
          say
            (Printf.sprintf "skip %s: baseline has no %s (current %.4f)"
               c.label dotted cur);
          (* The acceptance band is absolute — it applies even when the
             baseline predates the metric. *)
          match c.band with
          | Some (lo, hi) when cur < lo || cur > hi ->
              fail
                (Printf.sprintf
                   "FAIL %s — current %.4f outside acceptance band [%.2f, %.2f]"
                   c.label cur lo hi)
          | Some _ | None -> ())
      | Some base, Some cur ->
          let delta = if base = 0. then 0. else (cur -. base) /. base in
          let rel_ok = cur <= base *. (1. +. c.tolerance) in
          let band_bad =
            match c.band with
            | Some (lo, hi) when cur < lo || cur > hi -> Some (lo, hi)
            | Some _ | None -> None
          in
          let detail =
            Printf.sprintf "%s: baseline %.4f current %.4f (%+.1f%%, tol %.0f%%)"
              c.label base cur (100. *. delta) (100. *. c.tolerance)
          in
          (match (rel_ok, band_bad) with
          | true, None -> say ("ok   " ^ detail)
          | false, _ ->
              fail ("FAIL " ^ detail ^ " — regression over tolerance")
          | true, Some (lo, hi) ->
              fail
                (Printf.sprintf
                   "FAIL %s — current %.4f outside acceptance band [%.2f, %.2f]"
                   c.label cur lo hi)))
    checks;
  { lines = List.rev !lines; failures = List.rev !failures }
