(* Canonical metric names, shared by the simulator and the live
   runtime so a Grafana query (or the Cluster run report) reads the
   same series from either. Naming follows Prometheus conventions:
   [_total] for counters, [_seconds] for duration histograms, bare
   names for gauges and dimensionless histograms. *)

(* Protocol *)
let messages_sent_total = "dmutex_messages_sent_total" (* label: kind *)
let messages_received_total = "dmutex_messages_received_total" (* label: kind *)
let cs_entries_total = "dmutex_cs_entries_total"
let cs_time_seconds = "dmutex_cs_time_seconds" (* histogram: CS occupancy *)
let sync_delay_seconds = "dmutex_sync_delay_seconds" (* request -> CS entry *)
let queue_length = "dmutex_queue_length" (* histogram: Q length at dispatch *)
let phase_seconds = "dmutex_phase_seconds" (* label: phase=collection|forwarding *)
let notes_total = "dmutex_notes_total" (* label: note — protocol Note effects *)

let kind_label kind = [ ("kind", kind) ]
let phase_label phase = [ ("phase", phase) ]
let note_label note = [ ("note", note) ]

let lock_label lock = [ ("lock", lock) ]
(* Lock-instance dimension: every protocol series carries [lock=<key>]
   when the node hosts a keyed instance registry, so one scrape (or one
   merged snapshot) separates per-lock traffic. *)

(* Transport *)
let transport_sent_total = "dmutex_transport_sent_total"
let transport_delivered_total = "dmutex_transport_delivered_total"
let transport_dropped_total = "dmutex_transport_dropped_total"
let transport_retries_total = "dmutex_transport_retries_total"
let transport_reconnects_total = "dmutex_transport_reconnects_total"
let transport_queue_depth = "dmutex_transport_queue_depth" (* gauge *)
let transport_flushes_total = "dmutex_transport_flushes_total"

let transport_frames_per_flush = "dmutex_transport_frames_per_flush"
(* histogram: frames coalesced into one flush syscall *)

(* Liveness / node runtime *)
let suspicions_total = "dmutex_suspicions_total"

(* Dynamic membership. [view_epoch] and [member_count] carry
   [lock=<key>] — each lock instance runs its own view machinery, and a
   churn soak asserts the epoch is monotone per lock. *)
let view_epoch = "dmutex_view_epoch" (* gauge, label: lock *)
let member_count = "dmutex_member_count" (* gauge, label: lock *)

let unknown_peer_total = "dmutex_unknown_peer_total"
(* frames from a sender outside every current member set, dropped
   before protocol dispatch *)

(* Client session layer. [client_fencing] and the per-lock counters
   carry [lock=<key>]; rejections carry [reason=<reject reason>]. *)
let client_sessions = "dmutex_client_sessions" (* gauge: live sessions *)
let client_sessions_opened_total = "dmutex_client_sessions_opened_total"
let client_resumes_total = "dmutex_client_resumes_total"
let client_grants_total = "dmutex_client_grants_total" (* label: lock *)
let client_rejections_total = "dmutex_client_rejections_total" (* label: reason *)
let client_lease_expiries_total = "dmutex_client_lease_expiries_total"
let client_stale_grants_total = "dmutex_client_stale_grants_total"
(* grants dropped because no genuine fencing token could be derived
   (e.g. a recovery re-granted an already-served request) *)

let client_waiters = "dmutex_client_waiters" (* gauge, label: lock *)
let client_fencing = "dmutex_client_fencing" (* gauge, label: lock *)
let reason_label reason = [ ("reason", reason) ]

(* Read-write grants. Batched reader grants are counted per lock; the
   batch-size histogram shows how much sharing the workload admits. *)
let read_batches_total = "dmutex_read_batches_total" (* label: lock *)
let read_batch_size = "dmutex_read_batch_size" (* histogram, label: lock *)

(* Wait-for-graph deadlock detector ({!Wfg}): edges observed in the
   last scan and cycles ever found. Canonically ordered transactions
   must keep [wfg_cycles_total] at zero — the transaction soak asserts
   exactly that. *)
let wfg_edges = "dmutex_wfg_edges" (* gauge: edges in last scan *)
let wfg_cycles_total = "dmutex_wfg_cycles_total" (* counter *)

(* Durable store *)
let store_wal_appends_total = "dmutex_store_wal_appends_total"
let store_fsync_seconds = "dmutex_store_fsync_seconds" (* histogram *)
let store_snapshots_total = "dmutex_store_snapshots_total"
