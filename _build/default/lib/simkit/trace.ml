type record = { time : float; node : int; tag : string; detail : string }

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable records : record list; (* newest first *)
  mutable length : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; enabled = false; records = []; length = 0 }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let truncate t =
  (* Amortized: let the list grow to 2x capacity, then cut back. *)
  if t.length > 2 * t.capacity then begin
    t.records <- List.filteri (fun i _ -> i < t.capacity) t.records;
    t.length <- t.capacity
  end

let add t ~time ~node ~tag detail =
  if t.enabled then begin
    t.records <- { time; node; tag; detail } :: t.records;
    t.length <- t.length + 1;
    truncate t
  end

let addf t ~time ~node ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> add t ~time ~node ~tag detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let records t =
  let r = List.filteri (fun i _ -> i < t.capacity) t.records in
  List.rev r

let length t = min t.length t.capacity
let clear t = t.records <- [];
              t.length <- 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10.4f  node %2d  %-12s %s@," r.time r.node r.tag
        r.detail)
    (records t);
  Format.fprintf ppf "@]"
