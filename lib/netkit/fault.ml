type verdict = Deliver | Drop | Delay of float

type event =
  | Set_loss of float
  | Crash of int
  | Recover of int
  | Restart of { node : int; after : float }
  | Partition of int list list
  | Heal

type schedule = (float * event) list

type t = {
  n : int; (* birth-cluster size; arrays grow past it as nodes join *)
  mutex : Mutex.t;
  rng : Random.State.t;
  mutable loss : float;
  mutable crashed : bool array;
  mutable group_of : int array option;
  mutable interceptor : (src:int -> dst:int -> string -> verdict) option;
  mutable drops : int;
}

let create ?(seed = 0xfa017) ~n () =
  if n <= 0 then invalid_arg "Fault.create: n must be positive";
  {
    n;
    mutex = Mutex.create ();
    rng = Random.State.make [| seed; n; 0xc4a05 |];
    loss = 0.0;
    crashed = Array.make n false;
    group_of = None;
    interceptor = None;
    drops = 0;
  }

let n t = t.n

let with_mutex t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_loss t p = with_mutex t (fun () -> t.loss <- p)

let check_id t i name =
  ignore t;
  if i < 0 then
    invalid_arg (Printf.sprintf "Fault.%s: node id out of range" name)

(* Dynamic membership: node ids beyond the birth size appear once
   nodes join. Must hold [t.mutex]. *)
let ensure_locked t i =
  let len = Array.length t.crashed in
  if i >= len then begin
    let crashed = Array.make (i + 1) false in
    Array.blit t.crashed 0 crashed 0 len;
    t.crashed <- crashed;
    match t.group_of with
    | Some g when Array.length g <= i ->
        let g' = Array.make (i + 1) (-1) in
        Array.blit g 0 g' 0 (Array.length g);
        t.group_of <- Some g'
    | _ -> ()
  end

let crash t i =
  check_id t i "crash";
  with_mutex t (fun () ->
      ensure_locked t i;
      t.crashed.(i) <- true)

let recover t i =
  check_id t i "recover";
  with_mutex t (fun () ->
      ensure_locked t i;
      t.crashed.(i) <- false)

let is_crashed t i =
  check_id t i "is_crashed";
  with_mutex t (fun () -> i < Array.length t.crashed && t.crashed.(i))

let partition t groups =
  let top =
    List.fold_left (List.fold_left (fun acc i -> max acc i)) (t.n - 1) groups
  in
  let group_of = Array.make (top + 1) (-1) in
  List.iteri
    (fun g members ->
      List.iter
        (fun i ->
          check_id t i "partition";
          group_of.(i) <- g)
        members)
    groups;
  with_mutex t (fun () -> t.group_of <- Some group_of)

let heal t = with_mutex t (fun () -> t.group_of <- None)
let set_interceptor t f = with_mutex t (fun () -> t.interceptor <- Some f)
let clear_interceptor t = with_mutex t (fun () -> t.interceptor <- None)
let drops t = with_mutex t (fun () -> t.drops)

let severed_locked t ~src ~dst =
  let crashed i = i < Array.length t.crashed && t.crashed.(i) in
  crashed src || crashed dst
  ||
  match t.group_of with
  | None -> false
  | Some g ->
      (* Ids past the partition map form the implicit extra group. *)
      let grp i = if i < Array.length g then g.(i) else -1 in
      grp src <> grp dst

let reachable t ~src ~dst =
  check_id t src "reachable";
  check_id t dst "reachable";
  with_mutex t (fun () -> not (severed_locked t ~src ~dst))

(* Same decision order as [Simkit.Network.send]: connectivity first,
   then the loss draw, then the targeted interceptor. *)
let verdict t ~src ~dst payload =
  check_id t src "verdict";
  check_id t dst "verdict";
  let v =
    with_mutex t (fun () ->
        if severed_locked t ~src ~dst then Drop
        else if t.loss > 0.0 && Random.State.float t.rng 1.0 < t.loss then Drop
        else
          match t.interceptor with
          | None -> Deliver
          | Some f -> f ~src ~dst payload)
  in
  (match v with
  | Drop -> with_mutex t (fun () -> t.drops <- t.drops + 1)
  | Deliver | Delay _ -> ());
  v

let apply t = function
  | Set_loss p -> set_loss t p
  | Crash i -> crash t i
  | Recover i -> recover t i
  | Restart { node; after } ->
      (* Network-level restart: sever the node now, bring it back
         [after] seconds later on a helper thread so the caller's
         schedule keeps running through the outage. The node's process
         state survives — for a full teardown-and-rebuild from the
         durable store, use [Cluster]'s restart events instead. *)
      crash t node;
      ignore
        (Thread.create
           (fun () ->
             Thread.delay (Float.max 0.0 after);
             recover t node)
           ())
  | Partition groups -> partition t groups
  | Heal -> heal t

let pp_event ppf = function
  | Set_loss p -> Format.fprintf ppf "loss=%.3f" p
  | Crash i -> Format.fprintf ppf "crash(%d)" i
  | Recover i -> Format.fprintf ppf "recover(%d)" i
  | Restart { node; after } ->
      Format.fprintf ppf "restart(%d, +%.2fs)" node after
  | Partition groups ->
      Format.fprintf ppf "partition(%s)"
        (String.concat "|"
           (List.map
              (fun g -> String.concat "," (List.map string_of_int g))
              groups))
  | Heal -> Format.fprintf ppf "heal"
