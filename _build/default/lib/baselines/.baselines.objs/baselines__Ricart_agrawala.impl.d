lib/baselines/ricart_agrawala.ml: Config Dmutex Format List
