type t = { mutable stopped : bool; mutable arrivals : int }

let make_process engine ~next_gap ~per_arrival ~on_arrival =
  let t = { stopped = false; arrivals = 0 } in
  (* One [fire] closure re-arms itself for every arrival of the
     process, instead of allocating a fresh closure per event — the
     arrival path runs once per request over million-request sweeps. *)
  let rec fire engine =
    if not t.stopped then begin
      let k = per_arrival () in
      for _ = 1 to k do
        t.arrivals <- t.arrivals + 1;
        on_arrival engine
      done;
      arm ()
    end
  and arm () =
    match next_gap () with
    | None -> ()
    | Some gap -> ignore (Engine.schedule engine ~delay:gap fire)
  in
  arm ();
  t

let poisson engine ~rng ~rate ~on_arrival =
  if rate < 0.0 then invalid_arg "Workload.poisson: negative rate";
  if rate = 0.0 then { stopped = true; arrivals = 0 }
  else
    make_process engine
      ~next_gap:(fun () -> Some (Rng.exponential rng ~rate))
      ~per_arrival:(fun () -> 1)
      ~on_arrival

let deterministic engine ~period ~on_arrival =
  if period <= 0.0 then invalid_arg "Workload.deterministic: period must be positive";
  make_process engine
    ~next_gap:(fun () -> Some period)
    ~per_arrival:(fun () -> 1)
    ~on_arrival

let burst engine ~rng ~rate ~burst_size ~on_arrival =
  if rate <= 0.0 then invalid_arg "Workload.burst: rate must be positive";
  if burst_size <= 0 then invalid_arg "Workload.burst: burst_size must be positive";
  make_process engine
    ~next_gap:(fun () -> Some (Rng.exponential rng ~rate))
    ~per_arrival:(fun () -> burst_size)
    ~on_arrival

let stop t = t.stopped <- true
let arrivals t = t.arrivals
