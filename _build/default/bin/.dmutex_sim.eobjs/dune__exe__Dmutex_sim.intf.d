bin/dmutex_sim.mli:
