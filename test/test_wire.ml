open Dmutex

let roundtrip m = Wire.Protocol_codec.decode (Wire.Protocol_codec.encode m)

let entry ?(hops = 0) node seq = Qlist.entry ~hops ~node ~seq ()

let sample_token =
  {
    Protocol.tq = [ entry 1 4; entry ~hops:2 3 0 ];
    granted = [| 3; -1; 0; 7 |];
    epoch = 2;
    election = 41;
    vepoch = 5;
  }

let messages : Protocol.message list =
  [
    Protocol.Request (entry 2 9);
    Protocol.Monitor_request (entry ~hops:3 0 1);
    Protocol.Privilege sample_token;
    Protocol.Monitor_privilege sample_token;
    Protocol.New_arbiter
      {
        na_arbiter = 3;
        na_q = [ entry 3 0 ];
        na_granted = [| 0; 1; 2; 3 |];
        na_counter = 5;
        na_monitor = 1;
        na_epoch = 0;
        na_election = 17;
        na_view =
          { Protocol.vnum = 3;
            vmembers =
              [ { Protocol.mid = 0; maddr = "127.0.0.1:7000" };
                { Protocol.mid = 3; maddr = "" };
                { Protocol.mid = 5; maddr = "10.0.0.5:7100" } ] };
      };
    Protocol.Warning;
    Protocol.Enquiry { round = 3 };
    Protocol.Enquiry_reply { round = 3; status = Protocol.Have_token };
    Protocol.Enquiry_reply { round = 4; status = Protocol.Executed };
    Protocol.Enquiry_reply { round = 5; status = Protocol.Waiting_token };
    Protocol.Resume { round = 9 };
    Protocol.Invalidate { round = 10 };
    Protocol.Probe;
    Protocol.Probe_ack;
  ]

let test_roundtrip_all () =
  List.iter
    (fun m ->
      let m' = roundtrip m in
      if m' <> m then
        Alcotest.failf "roundtrip mismatch for %s"
          (Protocol.message_kind m))
    messages

let test_distinct_encodings () =
  let encs = List.map Wire.Protocol_codec.encode messages in
  let uniq = List.sort_uniq compare encs in
  Alcotest.(check int) "all encodings distinct" (List.length messages)
    (List.length uniq)

let test_truncated_rejected () =
  let enc = Wire.Protocol_codec.encode (Protocol.Privilege sample_token) in
  for cut = 0 to String.length enc - 1 do
    let short = String.sub enc 0 cut in
    match Wire.Protocol_codec.decode short with
    | _ -> Alcotest.failf "truncation at %d accepted" cut
    | exception Wire.Malformed _ -> ()
  done

let test_trailing_garbage_rejected () =
  let enc = Wire.Protocol_codec.encode Protocol.Warning in
  match Wire.Protocol_codec.decode (enc ^ "x") with
  | _ -> Alcotest.fail "trailing garbage accepted"
  | exception Wire.Malformed _ -> ()

let test_bad_tag_rejected () =
  match Wire.Protocol_codec.decode "\xFF" with
  | _ -> Alcotest.fail "bad tag accepted"
  | exception Wire.Malformed _ -> ()

let test_primitives () =
  let e = Wire.Enc.create () in
  Wire.Enc.u8 e 200;
  Wire.Enc.u16 e 65_000;
  Wire.Enc.i32 e (-12345);
  Wire.Enc.i64 e 0x1122334455667788L;
  Wire.Enc.bool e true;
  Wire.Enc.float e 3.25;
  Wire.Enc.string e "hello";
  Wire.Enc.option e Wire.Enc.int_ (Some 7);
  Wire.Enc.option e Wire.Enc.int_ None;
  Wire.Enc.list e Wire.Enc.int_ [ 1; 2; 3 ];
  Wire.Enc.array e Wire.Enc.u8 [| 4; 5 |];
  Wire.Enc.pair e Wire.Enc.int_ Wire.Enc.string (9, "ab");
  let d = Wire.Dec.of_string (Wire.Enc.contents e) in
  Alcotest.(check int) "u8" 200 (Wire.Dec.u8 d);
  Alcotest.(check int) "u16" 65_000 (Wire.Dec.u16 d);
  Alcotest.(check int) "i32" (-12345) (Wire.Dec.i32 d);
  Alcotest.(check int64) "i64" 0x1122334455667788L (Wire.Dec.i64 d);
  Alcotest.(check bool) "bool" true (Wire.Dec.bool d);
  Alcotest.(check (float 0.0)) "float" 3.25 (Wire.Dec.float d);
  Alcotest.(check string) "string" "hello" (Wire.Dec.string d);
  Alcotest.(check (option int)) "some" (Some 7)
    (Wire.Dec.option d Wire.Dec.int_);
  Alcotest.(check (option int)) "none" None (Wire.Dec.option d Wire.Dec.int_);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Wire.Dec.list d Wire.Dec.int_);
  Alcotest.(check (array int)) "array" [| 4; 5 |]
    (Wire.Dec.array d Wire.Dec.u8);
  Alcotest.(check (pair int string)) "pair" (9, "ab")
    (Wire.Dec.pair d Wire.Dec.int_ Wire.Dec.string);
  Wire.Dec.check_eof d

let test_enc_range_checks () =
  let e = Wire.Enc.create () in
  Alcotest.check_raises "u8 range" (Invalid_argument "Enc.u8: out of range")
    (fun () -> Wire.Enc.u8 e 256);
  Alcotest.check_raises "u16 range" (Invalid_argument "Enc.u16: out of range")
    (fun () -> Wire.Enc.u16 e (-1))

let gen_entry =
  QCheck.Gen.(
    map3
      (fun node seq hops -> Qlist.entry ~hops ~node ~seq ())
      (int_range 0 100) (int_range 0 1000) (int_range 0 10))

let gen_token =
  QCheck.Gen.(
    map3
      (fun tq granted (epoch, election) ->
        { Protocol.tq;
          granted = Array.of_list granted;
          epoch;
          election;
          vepoch = epoch * 7 mod 11;
        })
      (list_size (0 -- 10) gen_entry)
      (list_size (1 -- 10) (int_range (-1) 1000))
      (pair (int_range 0 50) (int_range 0 5000)))

let gen_message =
  QCheck.Gen.(
    oneof
      [
        map (fun e -> Protocol.Request e) gen_entry;
        map (fun e -> Protocol.Monitor_request e) gen_entry;
        map (fun t -> Protocol.Privilege t) gen_token;
        map (fun t -> Protocol.Monitor_privilege t) gen_token;
        map3
          (fun q granted (arb, counter, election) ->
            Protocol.New_arbiter
              {
                na_arbiter = arb;
                na_q = q;
                na_granted = Array.of_list granted;
                na_counter = counter;
                na_monitor = arb - 1;
                na_epoch = counter mod 3;
                na_election = election;
                na_view =
                  {
                    Protocol.vnum = counter mod 5;
                    vmembers =
                      List.mapi
                        (fun i g ->
                          { Protocol.mid = i; maddr = string_of_int g })
                        granted;
                  };
              })
          (list_size (0 -- 8) gen_entry)
          (list_size (1 -- 8) (int_range (-1) 100))
          (triple (int_range 0 20) (int_range 0 100) (int_range 0 10000));
        return Protocol.Warning;
        map (fun round -> Protocol.Enquiry { round }) (int_range 0 1000);
        map2
          (fun round s ->
            Protocol.Enquiry_reply
              {
                round;
                status =
                  (match s mod 3 with
                  | 0 -> Protocol.Have_token
                  | 1 -> Protocol.Executed
                  | _ -> Protocol.Waiting_token);
              })
          (int_range 0 1000) int;
        map (fun round -> Protocol.Resume { round }) (int_range 0 1000);
        map (fun round -> Protocol.Invalidate { round }) (int_range 0 1000);
        return Protocol.Probe;
        return Protocol.Probe_ack;
      ])

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip on random messages" ~count:500
    (QCheck.make gen_message)
    (fun m -> roundtrip m = m)

let prop_random_bytes_never_crash =
  QCheck.Test.make ~name:"random bytes either decode or raise Malformed"
    ~count:300
    (QCheck.make QCheck.Gen.(string_size (0 -- 40) ~gen:char))
    (fun s ->
      match Wire.Protocol_codec.decode s with
      | _ -> true
      | exception Wire.Malformed _ -> true)

let test_frame_header_version () =
  (* The version byte leads every frame header and gates decoding. *)
  let h = Wire.Frame.encode_header ~src:3 ~lock:"orders" Wire.Frame.Data in
  Alcotest.(check int) "header length"
    (Wire.Frame.fixed_len + String.length "orders")
    (String.length h);
  Alcotest.(check int) "leading version byte" Wire.format_version
    (String.get_uint8 h 0);
  let hd = Wire.Frame.decode_header h in
  Alcotest.(check int) "src roundtrips" 3 hd.Wire.Frame.src;
  Alcotest.(check bool) "kind roundtrips" true (hd.Wire.Frame.kind = Wire.Frame.Data);
  Alcotest.(check string) "lock key roundtrips" "orders" hd.Wire.Frame.lock;
  Alcotest.(check int) "payload starts right after the key" (String.length h)
    hd.Wire.Frame.payload_start;
  let bumped =
    String.init (String.length h) (fun i ->
        if i = 0 then Char.chr (Wire.format_version + 1) else h.[i])
  in
  match Wire.Frame.decode_header bumped with
  | _ -> Alcotest.fail "future-version header must not decode"
  | exception Wire.Malformed msg ->
      let mentions_version =
        let n = String.length msg and p = "version" in
        let k = String.length p in
        let rec scan i = i + k <= n && (String.sub msg i k = p || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error names the version (%s)" msg)
        true mentions_version

let test_frame_header_lock_truncated () =
  (* A lock-length field promising more key bytes than the frame
     carries must be rejected, not read out of bounds. *)
  let h = Wire.Frame.encode_header ~src:1 ~lock:"orders" Wire.Frame.Data in
  let truncated = String.sub h 0 (String.length h - 2) in
  (match Wire.Frame.decode_header truncated with
  | _ -> Alcotest.fail "truncated lock key must not decode"
  | exception Wire.Malformed _ -> ());
  (* And the empty key is a first-class value, not a parse accident. *)
  let h0 = Wire.Frame.encode_header ~src:1 ~lock:"" Wire.Frame.Heartbeat in
  let hd = Wire.Frame.decode_header h0 in
  Alcotest.(check string) "empty lock key roundtrips" "" hd.Wire.Frame.lock;
  Alcotest.(check bool) "heartbeat kind roundtrips" true
    (hd.Wire.Frame.kind = Wire.Frame.Heartbeat)

let suite =
  ( "wire",
    [
      Alcotest.test_case "all message kinds roundtrip" `Quick
        test_roundtrip_all;
      Alcotest.test_case "frame header version byte" `Quick
        test_frame_header_version;
      Alcotest.test_case "frame header lock key bounds" `Quick
        test_frame_header_lock_truncated;
      Alcotest.test_case "encodings distinct" `Quick test_distinct_encodings;
      Alcotest.test_case "every truncation rejected" `Quick
        test_truncated_rejected;
      Alcotest.test_case "trailing garbage rejected" `Quick
        test_trailing_garbage_rejected;
      Alcotest.test_case "unknown tag rejected" `Quick test_bad_tag_rejected;
      Alcotest.test_case "primitive roundtrips" `Quick test_primitives;
      Alcotest.test_case "encoder range checks" `Quick test_enc_range_checks;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_random_bytes_never_crash;
    ] )
