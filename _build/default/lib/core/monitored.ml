(** The starvation-free variant of Section 4.1: a monitor node parks
    requests that exceeded the forwarding budget τ, and the token is
    routed through the monitor with a period that adapts to the
    moving-window average Q-list size. *)

include Protocol

let name = "bc-monitored"

(* Liveness note: this variant *drops* requests that exhaust the τ
   forwarding budget (Section 4.1); the paper's escape hatch —
   resubmitting to the monitor after τ consecutive NEW-ARBITER misses
   — only engages while broadcasts keep flowing. In a quiescent system
   the blind retransmission timeout is therefore load-bearing: running
   this variant with [max_retries = 0] admits a starvation our model
   checker exhibits (see DESIGN.md §5.3). *)

let config ?(monitor = 0) ?(threshold = 3) ?(window = 16) ?(rotate = false)
    ?(t_collect = 0.1) ~n () =
  {
    (Types.Config.default ~n) with
    Types.Config.monitor = Some monitor;
    forward_threshold = threshold;
    window;
    rotate_monitor = rotate;
    t_collect;
  }
