open Simkit

let test_poisson_rate () =
  let e = Engine.create () in
  let rng = Rng.create 9 in
  let count = ref 0 in
  let w = Workload.poisson e ~rng ~rate:5.0 ~on_arrival:(fun _ -> incr count) in
  Engine.run ~until:1000.0 e;
  Workload.stop w;
  let observed = float_of_int !count /. 1000.0 in
  Alcotest.(check bool) "rate within 5%" true (abs_float (observed -. 5.0) < 0.25);
  Alcotest.(check int) "arrivals counter" !count (Workload.arrivals w)

let test_zero_rate () =
  let e = Engine.create () in
  let rng = Rng.create 9 in
  let count = ref 0 in
  ignore (Workload.poisson e ~rng ~rate:0.0 ~on_arrival:(fun _ -> incr count));
  Engine.run ~until:100.0 e;
  Alcotest.(check int) "no arrivals" 0 !count

let test_stop () =
  let e = Engine.create () in
  let rng = Rng.create 9 in
  let count = ref 0 in
  let w = Workload.poisson e ~rng ~rate:10.0 ~on_arrival:(fun _ -> incr count) in
  Engine.run ~until:10.0 e;
  let at_stop = !count in
  Workload.stop w;
  Engine.run ~until:100.0 e;
  Alcotest.(check int) "no arrivals after stop" at_stop !count

let test_deterministic () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Workload.deterministic e ~period:2.5 ~on_arrival:(fun e ->
         times := Engine.now e :: !times));
  Engine.run ~until:10.0 e;
  Alcotest.(check (list (float 1e-9))) "periodic" [ 2.5; 5.0; 7.5; 10.0 ]
    (List.rev !times)

let test_burst () =
  let e = Engine.create () in
  let rng = Rng.create 12 in
  let count = ref 0 in
  let w =
    Workload.burst e ~rng ~rate:1.0 ~burst_size:7 ~on_arrival:(fun _ ->
        incr count)
  in
  Engine.run ~until:200.0 e;
  Workload.stop w;
  Alcotest.(check int) "multiple of burst size" 0 (!count mod 7);
  Alcotest.(check bool) "some bursts" true (!count > 0)

let suite =
  ( "workload",
    [
      Alcotest.test_case "poisson empirical rate" `Quick test_poisson_rate;
      Alcotest.test_case "zero rate" `Quick test_zero_rate;
      Alcotest.test_case "stop" `Quick test_stop;
      Alcotest.test_case "deterministic period" `Quick test_deterministic;
      Alcotest.test_case "bursts" `Quick test_burst;
    ] )
