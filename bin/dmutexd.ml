(* One real lock-service node over TCP. Start N of these (one per peer
   in the shared peer list) and they form a distributed-mutex cluster
   running the paper's algorithm — one independent protocol instance
   per --locks key, multiplexed over the node's single transport;
   --demo makes the node repeatedly acquire every lock and print while
   holding it.

   Example (three shells):
     dmutexd --id 0 --peers 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 --demo
     dmutexd --id 1 --peers 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 --demo
     dmutexd --id 2 --peers 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 --demo

   With --state-dir the node persists each lock's protocol-critical
   state (epoch, counters, token custody) in its own subdirectory, and
   a later start from the same directory is a durable restart:
   counters come back, custody is honoured (a dead custodian triggers
   the Section 6 invalidation), and the node never regenerates a token
   from amnesia. SIGTERM/SIGINT flush the stores before exiting. *)

open Cmdliner
module Node = Netkit.Node_runner.Make (Dmutex.Resilient) (Wire.Protocol_codec)
module Session = Netkit.Session.Make (Dmutex.Resilient) (Wire.Protocol_codec)

let parse_endpoint s =
  match String.split_on_char ':' s with
  | [ host; port ] -> (
      match int_of_string_opt port with
      | Some port -> Ok { Netkit.Transport.host; port }
      | None -> Error (`Msg (Printf.sprintf "bad port in %S" s)))
  | _ -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s))

let endpoint_conv =
  Arg.conv
    ( parse_endpoint,
      fun ppf e -> Netkit.Transport.pp_endpoint ppf e )

let id_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "id" ] ~doc:"This node's index into the peer list.")

let peers_arg =
  Arg.(
    required
    & opt (some (list endpoint_conv)) None
    & info [ "peers" ] ~doc:"Comma-separated HOST:PORT list, one per node.")

let locks_arg =
  Arg.(
    value
    & opt (list string) [ Node.default_lock ]
    & info [ "locks" ]
        ~doc:
          "Comma-separated lock keys this cluster serves. Every node \
           must be started with the same list; each key runs its own \
           independent protocol instance over the shared connections."
        ~docv:"KEY,...")

let demo_arg =
  Arg.(
    value & flag
    & info [ "demo" ]
        ~doc:
          "Repeatedly acquire each lock (one worker per key), print, \
           hold 200 ms, release.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let metrics_every_arg =
  Arg.(
    value & opt float 0.0
    & info [ "metrics-every" ]
        ~doc:
          "Print transport metrics (sent/delivered/dropped/retries/\
           reconnects/queue depth) and protocol note counters every \
           $(docv) seconds. 0 disables." ~docv:"SEC")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ]
        ~doc:
          "Chaos: drop each outgoing frame with this probability \
           before it reaches the socket." ~docv:"P")

let heartbeat_arg =
  Arg.(
    value & opt float 0.5
    & info [ "heartbeat" ]
        ~doc:
          "Transport heartbeat period in seconds; peers silent for \
           longer than four periods are reported suspect. 0 disables \
           the liveness monitor." ~docv:"SEC")

let flush_us_arg =
  Arg.(
    value & opt int 0
    & info [ "flush-us" ]
        ~doc:
          "Hold outbound frames back up to $(docv) microseconds so \
           more of them share one coalesced write (trades a little \
           latency for fewer syscalls under load). 0 flushes on the \
           next reactor pass, which already batches everything a \
           protocol step produced. Overrides DMUTEX_FLUSH_US." ~docv:"US")

let metrics_addr_arg =
  Arg.(
    value
    & opt (some endpoint_conv) None
    & info [ "metrics-addr" ]
        ~doc:
          "Serve this node's metrics registry as a Prometheus text \
           endpoint (format 0.0.4) on $(docv). Any HTTP request path \
           returns the full exposition." ~docv:"HOST:PORT")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-file" ]
        ~doc:
          "Record structured trace events (CS enter/exit, recovery \
           milestones, liveness suspicions) into an in-memory ring and \
           flush them to $(docv) as JSONL on exit — including signal- \
           driven shutdown." ~docv:"PATH")

let join_arg =
  Arg.(
    value
    & opt (some endpoint_conv) None
    & info [ "join" ]
        ~doc:
          "Join a running cluster as a brand-new member: knock at this \
           seed member's HOST:PORT (which must be another entry of \
           --peers) with JOIN-REQUEST until a view commit admits the \
           node. --peers lists the current members' addresses plus \
           this node's own listen address at index --id. Durable state \
           in --state-dir takes precedence: a restart rejoins the view \
           it last committed instead of knocking anew." ~docv:"HOST:PORT")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ]
        ~doc:
          "Directory for the durable protocol stores (created if \
           missing; one lock-KEY subdirectory per lock). Every \
           protocol step is made durable before its effects apply; \
           starting again from the same directory is a crash-restart \
           with memory. Without it a restart is amnesiac: the node \
           rejoins but refuses to regenerate tokens until \
           resynchronized." ~docv:"DIR")

let client_addr_arg =
  Arg.(
    value
    & opt (some endpoint_conv) None
    & info [ "client-addr" ]
        ~doc:
          "Serve thin clients on this HOST:PORT (port 0 picks an \
           ephemeral port, logged at startup). Clients speak the \
           session wire protocol — hello / open-session / acquire / \
           release / renew — and this node holds the protocol token \
           on their behalf; every grant carries a fencing token. \
           Without this flag the node serves no clients." ~docv:"HOST:PORT")

let lease_ms_arg =
  Arg.(
    value
    & opt int 5_000
    & info [ "lease-ms" ]
        ~doc:
          "Client session lease in milliseconds. A session whose \
           client stops renewing for this long is expired: its grants \
           are released, queued requests cancelled, and a reconnecting \
           client is told the session is lost. Only meaningful with \
           --client-addr." ~docv:"MS")

let print_metrics node id =
  let m = Node.metrics node in
  let notes = Node.notes node in
  let suspects = Node.suspected node in
  Printf.printf "node %d: %s%s%s\n%!" id
    (Format.asprintf "%a" Netkit.Transport.pp_metrics m)
    (match suspects with
    | [] -> ""
    | l ->
        " suspects=[" ^ String.concat "," (List.map string_of_int l) ^ "]")
    (match notes with
    | [] -> ""
    | l ->
        " notes={"
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) l)
        ^ "}")

let print_store_stats node id =
  List.iter
    (fun lock ->
      match Node.store_stats ~lock node with
      | None -> ()
      | Some s ->
          Printf.printf
            "node %d: lock %s: store wal-records=%d wal-bytes=%d snapshots=%d \
             replayed=%d last-flush=%s\n\
             %!"
            id lock s.Dmutex_store.Store.wal_records
            s.Dmutex_store.Store.wal_bytes s.Dmutex_store.Store.snapshots
            s.Dmutex_store.Store.replayed
            (if s.Dmutex_store.Store.last_flush = 0.0 then "never"
             else
               Printf.sprintf "%.1fs ago"
                 (Unix.gettimeofday () -. s.Dmutex_store.Store.last_flush)))
    (Node.locks node)

(* Minimal single-threaded HTTP responder. [/wfg] answers with the
   current cross-lock wait-for graph as JSON; every other path gets
   the Prometheus exposition. Enough for a scrape target and a
   deadlock spot-check; not a web server. *)
let serve_metrics (ep : Netkit.Transport.endpoint) reg ~wfg =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock
    (Unix.ADDR_INET (Unix.inet_addr_of_string ep.Netkit.Transport.host, ep.port));
  Unix.listen sock 8;
  ignore
    (Thread.create
       (fun () ->
         while true do
           match Unix.accept sock with
           | exception Unix.Unix_error _ -> Thread.delay 0.1
           | fd, _ ->
               (try
                  let buf = Bytes.create 4096 in
                  let n = try Unix.read fd buf 0 4096 with _ -> 0 in
                  let path =
                    match
                      String.split_on_char ' '
                        (Bytes.sub_string buf 0 (max 0 n))
                    with
                    | _meth :: p :: _ -> p
                    | _ -> "/"
                  in
                  let body, ctype =
                    if path = "/wfg" then (wfg (), "application/json")
                    else
                      ( Dmutex_obs.Registry.expose
                          (Dmutex_obs.Registry.snapshot reg),
                        "text/plain; version=0.0.4" )
                  in
                  let resp =
                    Printf.sprintf
                      "HTTP/1.1 200 OK\r\n\
                       Content-Type: %s\r\n\
                       Content-Length: %d\r\n\
                       Connection: close\r\n\
                       \r\n\
                       %s"
                      ctype (String.length body) body
                  in
                  ignore
                    (Unix.write_substring fd resp 0 (String.length resp))
                with _ -> ());
               (try Unix.close fd with _ -> ())
         done)
       ())

let run id peers locks demo verbose metrics_every loss heartbeat flush_us
    metrics_addr trace_file join state_dir client_addr lease_ms =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
  let peers = Array.of_list peers in
  let n = Array.length peers in
  if id < 0 || id >= n then (
    prerr_endline "--id out of range of --peers";
    exit 1);
  (* Reject a malformed lock list here, with the flag named, rather
     than letting the node constructor's Invalid_argument escape as a
     backtrace: each key is one protocol instance, and a duplicate
     would silently alias two instances onto one. *)
  if locks = [] then (
    prerr_endline "--locks: at least one lock key is required";
    exit 1);
  (let rec first_dup = function
     | [] -> None
     | k :: rest -> if List.mem k rest then Some k else first_dup rest
   in
   match first_dup locks with
   | Some k ->
       Printf.eprintf
         "--locks: duplicate lock key %S (each key must appear once)\n" k;
       exit 1
   | None -> ());
  let join_seed =
    match join with
    | None -> None
    | Some ep ->
        let idx = ref (-1) in
        Array.iteri
          (fun i p -> if !idx < 0 && i <> id && p = ep then idx := i)
          peers;
        if !idx < 0 then (
          prerr_endline "--join address must be another entry of --peers";
          exit 1);
        Some !idx
  in
  let cfg =
    { (Dmutex.Resilient.config ~n ()) with
      Dmutex.Types.Config.t_collect = 0.05;
      t_forward = 0.05 }
  in
  let heartbeat_period = if heartbeat > 0.0 then Some heartbeat else None in
  let obs = Dmutex_obs.Registry.create () in
  let trace =
    Option.map
      (fun path ->
        let sink = Dmutex_obs.Events.create () in
        Dmutex_obs.Events.attach_at_exit sink path;
        sink)
      trace_file
  in
  (* Durable stores: a non-empty per-lock directory means this start
     is a restart of that instance — rebuild its protocol state from
     the recovered view and let a durable token custody trigger
     recovery immediately. *)
  let per_lock =
    match state_dir with
    | None -> []
    | Some root ->
        let rec mkdir_p dir =
          if not (Sys.file_exists dir) then (
            mkdir_p (Filename.dirname dir);
            try Unix.mkdir dir 0o755
            with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
        in
        mkdir_p root;
        List.map
          (fun lock ->
            (* Directory-name encoding shared with the test cluster
               via the store, so both tools lay out (and can reopen)
               the same per-lock state directories. *)
            let dir =
              Filename.concat root
                ("lock-" ^ Dmutex_store.Store.dir_name_of_key lock)
            in
            let store = Dmutex_store.Store.open_ ~dir ~key:lock ~n ~obs () in
            match Dmutex_store.Store.view store with
            | None -> (lock, (store, None, []))
            | Some view ->
                let state, inputs =
                  Dmutex_store.Protocol_view.restore cfg ~me:id (Some view)
                in
                Logs.info (fun m ->
                    m "node %d: lock %s: restarting from %s (epoch %d, \
                       custody %s)"
                      id lock dir view.Dmutex_store.Store.epoch
                      (match view.Dmutex_store.Store.custody with
                      | Dmutex_store.Store.Holding _ -> "held"
                      | Dmutex_store.Store.No_token -> "none"));
                (lock, (store, Some state, inputs)))
          locks
  in
  let store, persist =
    match per_lock with
    | [] -> (None, None)
    | _ ->
        ( Some
            (fun ~lock ->
              Option.map (fun (s, _, _) -> s) (List.assoc_opt lock per_lock)),
          Some Dmutex_store.Protocol_view.capture )
  in
  (* A joining node starts every instance outside the view, knocking
     at the seed; a durable restart wins over the knock — the node
     rejoins the view it last committed (Protocol_view.restore). *)
  let joiner_init =
    Option.map
      (fun seed ->
        let addr =
          Printf.sprintf "%s:%d" peers.(id).Netkit.Transport.host
            peers.(id).Netkit.Transport.port
        in
        fun () ->
          ( Dmutex.Resilient.joiner cfg ~me:id ~seed ~addr,
            [ Dmutex.Types.Timer_fired Dmutex.Resilient.T_view ] ))
      join_seed
  in
  let restored ~lock =
    Option.bind (List.assoc_opt lock per_lock) (fun (_, st, _) -> st)
  in
  let initial =
    match (per_lock, joiner_init) with
    | [], None -> None
    | _ ->
        Some
          (fun ~lock ->
            match restored ~lock with
            | Some st -> Some st
            | None -> Option.map (fun mk -> fst (mk ())) joiner_init)
  in
  let node =
    Node.create ?heartbeat_period
      ~suspect_timeout:(Float.max 0.5 (4.0 *. heartbeat))
      ~on_suspect:(fun peer ->
        Logs.warn (fun m -> m "node %d: peer %d suspected down" id peer))
      ~on_alive:(fun peer ->
        Logs.info (fun m -> m "node %d: peer %d alive again" id peer))
      ~locks ?initial ?store ?persist ~obs ?trace ~flush_us cfg ~me:id
      ~peers ()
  in
  List.iter
    (fun lock ->
      let inputs =
        match (restored ~lock, List.assoc_opt lock per_lock, joiner_init) with
        | Some _, Some (_, _, inputs), _ -> inputs
        | _, _, Some mk -> snd (mk ())
        | _, Some (_, _, inputs), None -> inputs
        | _ -> []
      in
      List.iter (Node.inject ~lock node) inputs)
    locks;
  if loss > 0.0 then Node.set_loss node loss;
  (match metrics_addr with
  | None -> ()
  | Some ep ->
      (* The /wfg handler scans every hosted lock's protocol state for
         holder/waiter edges and unions them into one wait-for graph;
         a cycle also bumps the wfg_cycles_total counter and emits a
         trace event via [Wfg.record]. *)
      let wfg_obs = Dmutex_obs.Wfg.obs obs in
      let wfg () =
        let scan =
          List.map
            (fun lock ->
              (lock, Dmutex.Protocol.wait_edges (Node.state ~lock node)))
            (Node.locks node)
        in
        let g = Dmutex_obs.Wfg.of_scan scan in
        let cycle = Dmutex_obs.Wfg.record ?trace wfg_obs g in
        let open Dmutex_obs.Json in
        to_string
          (Obj
             [
               ("node", Num (float_of_int id));
               ( "edges",
                 List
                   (List.map
                      (fun e ->
                        Obj
                          [
                            ("waiter", Num (float_of_int e.Dmutex_obs.Wfg.waiter));
                            ("holder", Num (float_of_int e.Dmutex_obs.Wfg.holder));
                            ("lock", Str e.Dmutex_obs.Wfg.lock);
                          ])
                      (Dmutex_obs.Wfg.edges g)) );
               ( "cycle",
                 match cycle with
                 | None -> Null
                 | Some c -> List (List.map (fun i -> Num (float_of_int i)) c)
               );
             ])
      in
      serve_metrics ep obs ~wfg;
      Logs.info (fun m ->
          m "node %d: metrics on http://%s:%d/metrics, wait-for graph on /wfg"
            id ep.Netkit.Transport.host ep.port));
  (* Client session service: thin clients connect here and this node
     fronts the protocol for them. Started after the node so grants
     can flow immediately; shut down before the node so in-flight
     grants drain through a live protocol engine. *)
  let session_server =
    Option.map
      (fun (addr : Netkit.Transport.endpoint) ->
        let srv =
          Session.create ~lease_ms ~obs ?trace
            ~fencing:Dmutex_store.Protocol_view.fencing_of_state ~node ~addr ()
        in
        Logs.info (fun m ->
            m "node %d: serving clients on %s:%d (lease %dms)" id addr.host
              (Session.port srv) lease_ms);
        srv)
      client_addr
  in
  if metrics_every > 0.0 then
    ignore
      (Thread.create
         (fun () ->
           while true do
             Thread.delay metrics_every;
             print_metrics node id
           done)
         ());
  (* Graceful shutdown: flush the store and report before exiting.
     Signals only set the flag — the main loop below does the work
     outside the signal handler. *)
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
  Printf.printf "node %d/%d listening on %s:%d%s\n%!" id n peers.(id).host
    peers.(id).port
    (match state_dir with
    | Some dir -> Printf.sprintf " (durable: %s)" dir
    | None -> "");
  let finish () =
    (* Metrics before shutdown (a closed transport reads all-zero),
       store stats after (so the final flush is included). *)
    print_metrics node id;
    Option.iter
      (fun srv ->
        let s = Session.stats srv in
        Printf.printf
          "node %d: sessions opened=%d resumed=%d expired=%d granted=%d \
           rejected=%d stale-grants=%d\n\
           %!"
          id s.Session.opened s.Session.resumed s.Session.expired
          s.Session.granted s.Session.rejected s.Session.stale_grants;
        Session.shutdown srv)
      session_server;
    Node.shutdown node;
    print_store_stats node id;
    (match (trace, trace_file) with
    | Some sink, Some path -> Dmutex_obs.Events.flush_file sink path
    | _ -> ());
    exit 0
  in
  if demo then (
    (* One worker per lock key: independent instances should make
       independent progress, so contend on all of them at once. *)
    List.iter
      (fun lock ->
        ignore
          (Thread.create
             (fun () ->
               let rec loop k =
                 if not (Atomic.get stop) then (
                   (match
                      Node.with_lock ~timeout:30.0 ~lock node (fun () ->
                          Printf.printf "node %d holds %s (round %d)\n%!" id
                            lock k;
                          Thread.delay 0.2)
                    with
                   | Some () -> ()
                   | None ->
                       Printf.printf "node %d: lock %s timed out\n%!" id lock);
                   Thread.delay (0.1 +. Random.float 0.5);
                   loop (k + 1))
               in
               loop 1)
             ()))
      locks;
    let rec wait () =
      if Atomic.get stop then finish ();
      Thread.delay 0.2;
      wait ()
    in
    wait ())
  else
    (* Serve forever; the node participates in the protocol (forwards
       requests, relays the token) without requesting the CS. *)
    let rec idle () =
      if Atomic.get stop then finish ();
      Thread.delay 0.2;
      idle ()
    in
    idle ()

let main =
  Cmd.v
    (Cmd.info "dmutexd" ~version:"1.0.0"
       ~doc:
         "A node of the ICDCS'96 token-passing distributed mutual \
          exclusion protocol over TCP.")
    Term.(
      const run $ id_arg $ peers_arg $ locks_arg $ demo_arg $ verbose_arg
      $ metrics_every_arg $ loss_arg $ heartbeat_arg $ flush_us_arg
      $ metrics_addr_arg $ trace_file_arg $ join_arg $ state_dir_arg
      $ client_addr_arg $ lease_ms_arg)

let () = exit (Cmd.eval main)
