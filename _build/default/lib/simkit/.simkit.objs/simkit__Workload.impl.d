lib/simkit/workload.ml: Engine Rng
