(** Network topologies for latency modelling.

    The paper makes "no assumptions with respect to the network
    topology" (Section 2.1); this module lets experiments check that
    claim by deriving per-pair message delays from hop counts on
    standard topologies. Use with {!Network.Per_pair}. *)

type t =
  | Complete  (** Every pair one hop (the paper's implicit model). *)
  | Ring  (** Bidirectional ring; distance = min walk. *)
  | Star of int  (** All traffic through a hub node. *)
  | Grid  (** ⌈√N⌉ × ⌈√N⌉ mesh, Manhattan distance. *)
  | Tree  (** Complete binary tree rooted at 0 (Raymond's shape). *)
  | Line  (** A path 0 - 1 - ... - (n-1). *)

val hops : t -> n:int -> int -> int -> int
(** [hops topo ~n i j] is the hop distance between nodes [i] and [j]
    (0 when [i = j]). *)

val diameter : t -> n:int -> int
(** Largest pairwise hop distance. *)

val mean_distance : t -> n:int -> float
(** Average hop distance over ordered distinct pairs. *)

val latency : t -> n:int -> per_hop:float -> Network.latency
(** A {!Network.Per_pair} latency of [per_hop * hops]. *)

val pp : Format.formatter -> t -> unit
val of_string : string -> (t, string) result
(** Parse ["complete" | "ring" | "star" | "grid" | "tree" | "line"]
    (star uses hub 0). *)

val all : t list
(** One representative of each shape (star hub 0). *)
