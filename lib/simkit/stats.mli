(** Streaming statistics for simulation output analysis.

    Everything here is single-pass and O(1) memory (except
    {!Histogram}, which is O(buckets)), so a million-request run can be
    summarized without retaining samples. *)

(** Running mean / variance / extrema via Welford's online algorithm,
    which is numerically stable for long runs. *)
module Tally : sig
  type t

  val create : unit -> t

  val reset : t -> unit
  (** Forget every sample in place (arena reuse across sweep
      replicates). *)

  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** Mean of the samples so far; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val ci95_halfwidth : t -> float
  (** Half-width of the 95% confidence interval for the mean, using
      Student's t for small sample counts and the normal quantile
      beyond 30 samples. [0.] with fewer than two samples. *)

  val merge : t -> t -> t
  (** Combine two tallies as if all samples were added to one
      (Chan's parallel variance formula). *)

  val pp : Format.formatter -> t -> unit
end

(** Fixed-capacity moving window mean, as used by the starvation-free
    variant's adaptive monitor period (average Q-list size within a
    moving window, paper Section 4.1). *)
module Window : sig
  type t

  val create : int -> t
  (** [create capacity] keeps the last [capacity] samples. *)

  val add : t -> float -> unit
  val count : t -> int
  val is_full : t -> bool

  val mean : t -> float
  (** Mean over the samples currently in the window; [nan] when
      empty. *)

  val last : t -> float option
end

(** Fixed-width bucket histogram on [\[lo, hi)] with overflow and
    underflow buckets. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int

  val reset : t -> unit
  (** Zero every bucket in place, keeping the bucket layout. *)

  val quantile : t -> float -> float
  (** [quantile t q] approximates the [q]-quantile ([0 <= q <= 1]) from
      bucket midpoints. Requires at least one sample. *)

  val bucket_counts : t -> (float * float * int) list
  (** [(lo, hi, count)] per bucket, in order, including the
      under/overflow buckets with infinite edges. *)

  val pp : Format.formatter -> t -> unit
end

(** Named monotonically increasing counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int

  val reset : t -> unit
  (** Zero every counter in place, keeping the interned names. *)

  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val pp : Format.formatter -> t -> unit
end

val jain_fairness : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over non-negative
    allocations: 1.0 = perfectly even, 1/n = maximally skewed.
    Returns 1.0 for an empty or all-zero vector. *)

val student_t95 : int -> float
(** [student_t95 df] is the two-sided 97.5% Student-t quantile for [df]
    degrees of freedom (exact table for df <= 30, 1.96 beyond). *)
