lib/simkit/heap.mli:
