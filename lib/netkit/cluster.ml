let src_log = Logs.Src.create "netkit.cluster" ~doc:"in-process TCP cluster"

module Log = (val Logs.src_log src_log)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) =
struct
  module Node = Node_runner.Make (A) (C)

  type chaos_event =
    | Fault of Fault.event
    | Crash_where of
        string * (states:(int -> A.state) -> live:(int -> bool) -> int option)

  type chaos_schedule = (float * chaos_event) list

  type t = {
    nodes : Node.t array;
    mutable live : bool array;
    fault : Fault.t;
    mutable chaos_thread : Thread.t option;
    chaos_log : (float * string) list ref;
    chaos_mu : Mutex.t;
    mutable stopping : bool;
  }

  let endpoints ~base_port n =
    Array.init n (fun i ->
        { Transport.host = "127.0.0.1"; port = base_port + i })

  let try_launch cfg ~base_port ~seed ~heartbeat_period ~suspect_timeout =
    let n = cfg.Dmutex.Types.Config.n in
    let peers = endpoints ~base_port n in
    let fault = Fault.create ~seed ~n () in
    let started = ref [] in
    try
      let nodes =
        Array.init n (fun i ->
            let node =
              Node.create ~fault ?heartbeat_period ~suspect_timeout
                ~seed:(seed + i) cfg ~me:i ~peers ()
            in
            started := node :: !started;
            node)
      in
      Some
        {
          nodes;
          live = Array.make n true;
          fault;
          chaos_thread = None;
          chaos_log = ref [];
          chaos_mu = Mutex.create ();
          stopping = false;
        }
    with Unix.Unix_error ((EADDRINUSE | EACCES), _, _) ->
      List.iter Node.shutdown !started;
      None

  let launch ?(base_port = 7801) ?(seed = 0xc1a05) ?heartbeat_period
      ?(suspect_timeout = 1.0) cfg =
    (* Ports may be taken by a previous run still in TIME_WAIT; probe a
       few bases before giving up. *)
    let rec attempt k =
      if k >= 20 then failwith "Cluster.launch: no free port range"
      else
        match
          try_launch cfg
            ~base_port:(base_port + (k * 100))
            ~seed ~heartbeat_period ~suspect_timeout
        with
        | Some t -> t
        | None -> attempt (k + 1)
    in
    attempt 0

  let node t i = t.nodes.(i)
  let n t = Array.length t.nodes
  let fault t = t.fault

  let crash t i =
    if t.live.(i) then begin
      t.live.(i) <- false;
      Node.shutdown t.nodes.(i)
    end

  let log_chaos t at msg =
    Mutex.lock t.chaos_mu;
    t.chaos_log := (at, msg) :: !(t.chaos_log);
    Mutex.unlock t.chaos_mu;
    Log.info (fun m -> m "chaos @ %.2fs: %s" at msg)

  let chaos_log t =
    Mutex.lock t.chaos_mu;
    let l = List.rev !(t.chaos_log) in
    Mutex.unlock t.chaos_mu;
    l

  (* Interruptible wall-clock sleep used by the schedule runner. *)
  let rec sleep_until t deadline =
    let now = Unix.gettimeofday () in
    if now < deadline && not t.stopping then begin
      Thread.delay (Float.min 0.05 (deadline -. now));
      sleep_until t deadline
    end

  let alive t i = t.live.(i) && not (Fault.is_crashed t.fault i)

  (* Resolve a role-targeted crash: poll the live protocol states
     until the selector names a victim (roles move with the token, so
     the schedule cannot know ids in advance). *)
  let run_crash_where t at label select =
    let give_up = Unix.gettimeofday () +. 10.0 in
    let rec poll () =
      if t.stopping then ()
      else
        match
          select
            ~states:(fun i -> Node.state t.nodes.(i))
            ~live:(alive t)
        with
        | Some i when alive t i ->
            Fault.crash t.fault i;
            log_chaos t at (Printf.sprintf "crash[%s] -> node %d" label i)
        | Some _ | None ->
            if Unix.gettimeofday () < give_up then begin
              Thread.delay 0.02;
              poll ()
            end
            else
              log_chaos t at
                (Printf.sprintf "crash[%s] -> no victim within 10s" label)
    in
    poll ()

  let run_schedule t schedule =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (at, ev) ->
        sleep_until t (t0 +. at);
        if not t.stopping then
          match ev with
          | Fault fe ->
              Fault.apply t.fault fe;
              log_chaos t at (Format.asprintf "%a" Fault.pp_event fe)
          | Crash_where (label, select) -> run_crash_where t at label select)
      schedule

  let chaos t schedule =
    (match t.chaos_thread with
    | Some _ -> invalid_arg "Cluster.chaos: a schedule is already running"
    | None -> ());
    let schedule =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) schedule
    in
    t.chaos_thread <- Some (Thread.create (run_schedule t) schedule)

  let wait_chaos t =
    match t.chaos_thread with
    | None -> ()
    | Some th ->
        Thread.join th;
        t.chaos_thread <- None

  let metrics t =
    Array.fold_left
      (fun acc node ->
        let m = Node.metrics node in
        {
          Transport.sent = acc.Transport.sent + m.Transport.sent;
          delivered = acc.Transport.delivered + m.Transport.delivered;
          dropped = acc.Transport.dropped + m.Transport.dropped;
          retries = acc.Transport.retries + m.Transport.retries;
          reconnects = acc.Transport.reconnects + m.Transport.reconnects;
          queue_depth = acc.Transport.queue_depth + m.Transport.queue_depth;
        })
      {
        Transport.sent = 0;
        delivered = 0;
        dropped = 0;
        retries = 0;
        reconnects = 0;
        queue_depth = 0;
      }
      t.nodes

  let notes t =
    let merged = Hashtbl.create 16 in
    Array.iter
      (fun node ->
        List.iter
          (fun (name, k) ->
            Hashtbl.replace merged name
              (k + Option.value ~default:0 (Hashtbl.find_opt merged name)))
          (Node.notes node))
      t.nodes;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])

  let note_count t name =
    Array.fold_left (fun acc node -> acc + Node.note_count node name) 0 t.nodes

  let shutdown t =
    t.stopping <- true;
    wait_chaos t;
    Array.iteri (fun i _ -> crash t i) t.nodes
end
