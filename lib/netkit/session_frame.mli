(** Length-prefixed message framing for the client session protocol:
    each {!Wire.Client} request or response travels as a 32-bit
    big-endian length followed by the encoded body, over a blocking
    socket. Shared by the session service ({!Session}) and the client
    library ({!Session_client}) so both agree on the byte stream. *)

exception Closed
(** The peer closed the connection (EOF mid-frame or before one). *)

val max_frame : int
(** Upper bound on one message body (1 MiB); a larger announced
    length raises {!Wire.Malformed} — garbage, not a message. *)

val recv : Unix.file_descr -> string
(** Read one framed message body. Raises {!Closed} on EOF,
    {!Wire.Malformed} on an absurd length, [Unix.Unix_error] on socket
    failure. *)

val send : Unix.file_descr -> string -> unit
(** Write one framed message. Raises [Unix.Unix_error] on socket
    failure (including a send timeout if the socket has one set). *)
