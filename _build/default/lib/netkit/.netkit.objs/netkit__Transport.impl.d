lib/netkit/transport.ml: Array Bytes Format Int32 Logs Mutex Printf Random String Thread Unix
