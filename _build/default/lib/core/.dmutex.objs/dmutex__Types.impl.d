lib/core/types.ml: Array Format
