(** Section 5.1's stricter fairness notion: "access to the critical
    section is granted based on the number of times a node has entered
    its critical section previously. The node that has accessed the
    critical section the least number of times is given priority" —
    realized here, as the paper suggests, through the sequence-number
    machinery of Section 2.4: the arbiter stably sorts each dispatched
    Q-list by the token's L vector, least-served node first. *)

include Protocol

let name = "bc-fair"

let config ?(t_collect = 0.1) ~n () =
  {
    (Types.Config.default ~n) with
    Types.Config.least_served_first = true;
    t_collect;
  }
