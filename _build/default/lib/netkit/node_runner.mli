(** Host one protocol state machine on a real network.

    The same pure {!Dmutex.Types.ALGO} implementations that the
    simulator and the model checker drive are run here over framed TCP
    ({!Transport}) with wall-clock timers, turning the paper's
    algorithm into a usable distributed lock. *)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) : sig
  type t

  val create :
    ?on_grant:(unit -> unit) ->
    Dmutex.Types.Config.t ->
    me:int ->
    peers:Transport.endpoint array ->
    unit ->
    t
  (** Start a node: bind its endpoint, start its timer thread, and put
      the state machine in its initial state. [on_grant] fires (on an
      internal thread) whenever the node enters the critical section;
      alternatively use {!with_lock}. *)

  val acquire : t -> unit
  (** Ask for the critical section (non-blocking). *)

  val release : t -> unit
  (** Leave the critical section. Must only be called while holding
      it. *)

  val holding : t -> bool
  (** Whether this node is currently inside the critical section. *)

  val with_lock : ?timeout:float -> t -> (unit -> 'a) -> 'a option
  (** [with_lock t f] acquires the distributed lock, runs [f], and
      releases. Returns [None] if [timeout] (default 30 s) expires
      before the lock is granted — the request is then abandoned
      (a later grant is released immediately). *)

  val state : t -> A.state
  (** Snapshot of the protocol state (for inspection and tests). *)

  val messages_sent : t -> int

  val set_loss : t -> float -> unit
  (** Drop outgoing frames with this probability (chaos testing; see
      {!Transport.set_loss}). *)

  val inject : t -> (A.message, A.timer) Dmutex.Types.input -> unit
  (** Feed an arbitrary input to the state machine — test hook for
      fault drills (e.g. simulating a WARNING or a timer). *)

  val shutdown : t -> unit
  (** Close sockets and stop the timer thread. The node stops
      responding — to the rest of the cluster this is a crash, which
      is exactly how fail-stop drills are staged. *)
end
