test/test_protocol.ml: Alcotest Basic Dmutex List Protocol Qlist
