let src_log = Logs.Src.create "netkit.cluster" ~doc:"in-process TCP cluster"

module Log = (val Logs.src_log src_log)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) =
struct
  module Node = Node_runner.Make (A) (C)

  type selector =
    states:(int -> lock:string -> A.state) ->
    locks:string list ->
    live:(int -> bool) ->
    int option

  type chaos_event =
    | Fault of Fault.event
    | Crash_where of string * selector
    | Restart of { node : int; after : float }
    | Restart_where of { label : string; select : selector; after : float }

  type chaos_schedule = (float * chaos_event) list

  type t = {
    (* [nodes], [live], [peers] and [obs] grow in lock-step as members
       join ({!add_node}); slots are never removed — an excised node's
       slot stays (dead) so ids remain stable. Guarded by
       [restart_mu] for growth; readers take benign-stale snapshots. *)
    mutable nodes : Node.t array;
    mutable live : bool array;
    fault : Fault.t;
    cfg : Dmutex.Types.Config.t;
    mutable peers : Transport.endpoint array;
    base_port : int;  (** the probed base actually bound. *)
    seed : int;
    locks : string list;
    heartbeat_period : float option;
    suspect_timeout : float;
    state_root : string option;
    (* One registry per node slot, owned by the cluster and handed to
       every incarnation of that node: counters survive kill-and-
       restart drills, so a run report covers the whole run. *)
    mutable obs : Dmutex_obs.Registry.t array;
    trace : Dmutex_obs.Events.sink option;
    persist : (A.state -> Dmutex_store.Store.view) option;
    restore :
      me:int ->
      Dmutex_store.Store.view option ->
      A.state * (A.message, A.timer) Dmutex.Types.input list;
    mutable chaos_thread : Thread.t option;
    chaos_log : (float * string) list ref;
    chaos_mu : Mutex.t;
    restart_mu : Mutex.t;
    mutable stopping : bool;
  }

  let endpoints ~base_port n =
    Array.init n (fun i ->
        { Transport.host = "127.0.0.1"; port = base_port + i })

  let state_dir root i = Filename.concat root (Printf.sprintf "node-%d" i)

  (* Lock keys are arbitrary strings; the store's round-trip-guarded
     percent-encoding maps every key to a distinct, portable
     subdirectory name (shared with [bin/dmutexd] so both tools agree
     on the layout). *)
  let lock_dir root i key =
    Filename.concat (state_dir root i)
      ("lock-" ^ Dmutex_store.Store.dir_name_of_key key)

  (* Per-lock store opener for node [i]: each instance recovers from
     (and appends to) its own key-stamped subdirectory. *)
  let open_stores ~root ~n ~obs i ~lock =
    (try Unix.mkdir (state_dir root i) 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Some
      (Dmutex_store.Store.open_ ~dir:(lock_dir root i lock) ~key:lock ~n ~obs
         ())

  let try_launch cfg ~base_port ~seed ~locks ~heartbeat_period
      ~suspect_timeout ~state_root ~obs ~trace ~persist ~restore =
    let n = cfg.Dmutex.Types.Config.n in
    let peers = endpoints ~base_port n in
    let fault = Fault.create ~seed ~n () in
    (match state_root with
    | Some root -> (
        try Unix.mkdir root 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    | None -> ());
    let restore =
      match restore with
      | Some f -> f
      | None ->
          fun ~me v ->
            ignore v;
            (A.rejoin cfg me, [])
    in
    let started = ref [] in
    try
      let nodes =
        Array.init n (fun i ->
            let store =
              Option.map
                (fun root -> open_stores ~root ~n ~obs:obs.(i) i)
                state_root
            in
            let node =
              Node.create ~fault ?heartbeat_period ~suspect_timeout
                ~seed:(seed + i) ~locks ?store ?persist ~obs:obs.(i) ?trace
                cfg ~me:i ~peers ()
            in
            started := node :: !started;
            node)
      in
      Some
        {
          nodes;
          live = Array.make n true;
          fault;
          cfg;
          peers;
          base_port;
          seed;
          locks;
          heartbeat_period;
          suspect_timeout;
          state_root;
          obs;
          trace;
          persist;
          restore;
          chaos_thread = None;
          chaos_log = ref [];
          chaos_mu = Mutex.create ();
          restart_mu = Mutex.create ();
          stopping = false;
        }
    with Unix.Unix_error ((EADDRINUSE | EACCES), _, _) ->
      List.iter Node.crash !started;
      None

  let launch ?(base_port = 7801) ?(seed = 0xc1a05)
      ?(locks = [ Node.default_lock ]) ?heartbeat_period
      ?(suspect_timeout = 1.0) ?state_root ?trace ?persist ?restore cfg =
    (* Validate the lock list before any node binds a port: a
       duplicate key would otherwise surface as a mid-launch
       [Node.create] failure after some nodes already started. *)
    if locks = [] then invalid_arg "Cluster.launch: empty lock list";
    (let seen = Hashtbl.create (List.length locks) in
     List.iter
       (fun l ->
         if Hashtbl.mem seen l then
           invalid_arg
             (Printf.sprintf
                "Cluster.launch: duplicate lock name %S (each lock key names \
                 one protocol instance; listing it twice would silently \
                 shadow the first)"
                l);
         Hashtbl.add seen l ())
       locks);
    let obs =
      Array.init cfg.Dmutex.Types.Config.n (fun _ ->
          Dmutex_obs.Registry.create ())
    in
    (* Ports may be taken by a previous run still in TIME_WAIT; probe a
       few bases before giving up. *)
    let rec attempt k =
      if k >= 20 then failwith "Cluster.launch: no free port range"
      else
        match
          try_launch cfg
            ~base_port:(base_port + (k * 100))
            ~seed ~locks ~heartbeat_period ~suspect_timeout ~state_root ~obs
            ~trace ~persist ~restore
        with
        | Some t -> t
        | None -> attempt (k + 1)
    in
    attempt 0

  let node t i = t.nodes.(i)
  let n t = Array.length t.nodes
  let locks t = t.locks

  let with_locks ?timeout ?retries ~locks t i f =
    Node.with_locks ?timeout ?retries ~locks t.nodes.(i) f
  let fault t = t.fault

  let crash t i =
    if t.live.(i) then begin
      t.live.(i) <- false;
      (* Crash-style: the store is closed without a final snapshot
         fold, leaving exactly what explicit fsyncs made durable. *)
      Node.crash t.nodes.(i)
    end

  (* Bring node [i] back: reopen its per-lock state directories,
     rebuild each instance's protocol state through the [restore]
     hook, bind the same endpoint again (retrying while the old
     sockets drain), and feed the restore inputs (e.g. a
     self-addressed WARNING for a dead token custodian) through the
     fresh node, per lock. *)
  let restart t i =
    Mutex.lock t.restart_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.restart_mu)
      (fun () ->
        if t.live.(i) then crash t i;
        Fault.recover t.fault i;
        (* Stores are always opened with the birth-cluster size: the
           recorded [n] is a layout invariant, not the current member
           count (growth past it is recorded by the view itself). *)
        let n = t.cfg.Dmutex.Types.Config.n in
        let per_lock =
          List.map
            (fun key ->
              let store =
                match t.state_root with
                | None -> None
                | Some root -> open_stores ~root ~n ~obs:t.obs.(i) i ~lock:key
              in
              let view =
                Option.join (Option.map Dmutex_store.Store.view store)
              in
              let initial, inputs = t.restore ~me:i view in
              (key, (store, initial, inputs)))
            t.locks
        in
        let find key = List.assoc key per_lock in
        let rec bind attempts =
          match
            Node.create ~fault:t.fault ?heartbeat_period:t.heartbeat_period
              ~suspect_timeout:t.suspect_timeout ~seed:(t.seed + i)
              ~locks:t.locks
              ~initial:(fun ~lock ->
                let _, st, _ = find lock in
                Some st)
              ~store:(fun ~lock ->
                let s, _, _ = find lock in
                s)
              ?persist:t.persist ~obs:t.obs.(i) ?trace:t.trace t.cfg ~me:i
              ~peers:t.peers ()
          with
          | node -> node
          | exception Unix.Unix_error ((EADDRINUSE | EACCES), _, _)
            when attempts < 40 ->
              Thread.delay 0.05;
              bind (attempts + 1)
        in
        let node = bind 0 in
        t.nodes.(i) <- node;
        t.live.(i) <- true;
        List.iter
          (fun (key, (_, _, inputs)) ->
            List.iter (Node.inject ~lock:key node) inputs)
          per_lock)

  (* Admit a brand-new node: allocate the next id and endpoint, start
     its runner with per-lock states from [init] (normally
     [Protocol.joiner], knowing only itself and a seed member), and
     feed the startup inputs (a first [T_view] kick so the knock goes
     out). Admission itself is the protocol's job — the node starts
     outside every view and re-knocks until a commit lands. Returns
     the new node's id. *)
  let add_node t ~init =
    Mutex.lock t.restart_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.restart_mu)
      (fun () ->
        let i = Array.length t.nodes in
        let reg = Dmutex_obs.Registry.create () in
        let rec attempt k =
          if k >= 5 then failwith "Cluster.add_node: no free port"
          else
            let port = t.base_port + i + (k * 1000) in
            let ep = { Transport.host = "127.0.0.1"; port } in
            let peers = Array.append t.peers [| ep |] in
            let addr = Printf.sprintf "127.0.0.1:%d" port in
            let per_lock =
              List.map (fun key -> (key, init ~me:i ~addr ~lock:key)) t.locks
            in
            let store =
              Option.map
                (fun root ->
                  open_stores ~root ~n:t.cfg.Dmutex.Types.Config.n ~obs:reg i)
                t.state_root
            in
            match
              Node.create ~fault:t.fault ?heartbeat_period:t.heartbeat_period
                ~suspect_timeout:t.suspect_timeout ~seed:(t.seed + i)
                ~locks:t.locks
                ~initial:(fun ~lock -> Some (fst (List.assoc lock per_lock)))
                ?store ?persist:t.persist ~obs:reg ?trace:t.trace t.cfg ~me:i
                ~peers ()
            with
            | node ->
                t.nodes <- Array.append t.nodes [| node |];
                t.live <- Array.append t.live [| true |];
                t.peers <- peers;
                t.obs <- Array.append t.obs [| reg |];
                List.iter
                  (fun (key, (_, inputs)) ->
                    List.iter (Node.inject ~lock:key node) inputs)
                  per_lock;
                Log.info (fun m ->
                    m "add_node: node %d joining at %s" i addr);
                i
            | exception Unix.Unix_error ((EADDRINUSE | EACCES), _, _) ->
                attempt (k + 1)
        in
        attempt 0)

  (* Ask the cluster to excise node [i]: [leave ~lock] builds the
     protocol input announcing the departure (for {!Dmutex.Protocol},
     [Receive (i, Leave_request i)]) and is injected into [i] itself,
     which relays toward the token-holding arbiter. The node keeps
     running until the commit excises it; call {!retire} afterwards to
     stop its process. *)
  let remove_node t i ~leave =
    if i < 0 || i >= Array.length t.nodes then
      invalid_arg "Cluster.remove_node: no such node";
    List.iter
      (fun key -> Node.inject ~lock:key t.nodes.(i) (leave ~lock:key))
      t.locks

  (* Stop an excised node's process for good (graceful store close);
     its slot stays dead. *)
  let retire t i =
    if i >= 0 && i < Array.length t.nodes && t.live.(i) then begin
      t.live.(i) <- false;
      Node.shutdown t.nodes.(i)
    end

  let log_chaos t at msg =
    Mutex.lock t.chaos_mu;
    t.chaos_log := (at, msg) :: !(t.chaos_log);
    Mutex.unlock t.chaos_mu;
    Log.info (fun m -> m "chaos @ %.2fs: %s" at msg)

  let chaos_log t =
    Mutex.lock t.chaos_mu;
    let l = List.rev !(t.chaos_log) in
    Mutex.unlock t.chaos_mu;
    l

  (* Interruptible wall-clock sleep used by the schedule runner. *)
  let rec sleep_until t deadline =
    let now = Unix.gettimeofday () in
    if now < deadline && not t.stopping then begin
      Thread.delay (Float.min 0.05 (deadline -. now));
      sleep_until t deadline
    end

  let alive t i = t.live.(i) && not (Fault.is_crashed t.fault i)

  (* Resolve a role-targeted crash: poll the live protocol states
     until the selector names a victim (roles move with the token, so
     the schedule cannot know ids in advance). *)
  let run_crash_where t at label select =
    let give_up = Unix.gettimeofday () +. 10.0 in
    let rec poll () =
      if t.stopping then ()
      else
        match
          select
            ~states:(fun i ~lock -> Node.state ~lock t.nodes.(i))
            ~locks:t.locks ~live:(alive t)
        with
        | Some i when alive t i ->
            Fault.crash t.fault i;
            log_chaos t at (Printf.sprintf "crash[%s] -> node %d" label i)
        | Some _ | None ->
            if Unix.gettimeofday () < give_up then begin
              Thread.delay 0.02;
              poll ()
            end
            else
              log_chaos t at
                (Printf.sprintf "crash[%s] -> no victim within 10s" label)
    in
    poll ()

  (* Tear node [i] down for real, wait out the outage, bring it back
     from its state directory. Blocks the schedule thread for [after]
     seconds — chaos events are deliberately sequential. *)
  let run_restart t at label i after =
    crash t i;
    log_chaos t at (Printf.sprintf "restart[%s]: node %d down" label i);
    sleep_until t (Unix.gettimeofday () +. Float.max 0.0 after);
    if not t.stopping then begin
      restart t i;
      log_chaos t at (Printf.sprintf "restart[%s]: node %d back up" label i)
    end

  (* Role-targeted restart: same victim polling as [run_crash_where]. *)
  let run_restart_where t at label select after =
    let give_up = Unix.gettimeofday () +. 10.0 in
    let rec poll () =
      if t.stopping then ()
      else
        match
          select
            ~states:(fun i ~lock -> Node.state ~lock t.nodes.(i))
            ~locks:t.locks ~live:(alive t)
        with
        | Some i when alive t i -> run_restart t at label i after
        | Some _ | None ->
            if Unix.gettimeofday () < give_up then begin
              Thread.delay 0.02;
              poll ()
            end
            else
              log_chaos t at
                (Printf.sprintf "restart[%s] -> no victim within 10s" label)
    in
    poll ()

  let run_schedule t schedule =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (at, ev) ->
        sleep_until t (t0 +. at);
        if not t.stopping then
          match ev with
          | Fault fe ->
              Fault.apply t.fault fe;
              log_chaos t at (Format.asprintf "%a" Fault.pp_event fe)
          | Crash_where (label, select) -> run_crash_where t at label select
          | Restart { node; after } -> run_restart t at "node" node after
          | Restart_where { label; select; after } ->
              run_restart_where t at label select after)
      schedule

  let chaos t schedule =
    (match t.chaos_thread with
    | Some _ -> invalid_arg "Cluster.chaos: a schedule is already running"
    | None -> ());
    let schedule =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) schedule
    in
    t.chaos_thread <- Some (Thread.create (run_schedule t) schedule)

  let wait_chaos t =
    match t.chaos_thread with
    | None -> ()
    | Some th ->
        Thread.join th;
        t.chaos_thread <- None

  let metrics t =
    Array.fold_left
      (fun acc node ->
        let m = Node.metrics node in
        {
          Transport.sent = acc.Transport.sent + m.Transport.sent;
          delivered = acc.Transport.delivered + m.Transport.delivered;
          dropped = acc.Transport.dropped + m.Transport.dropped;
          retries = acc.Transport.retries + m.Transport.retries;
          reconnects = acc.Transport.reconnects + m.Transport.reconnects;
          flushes = acc.Transport.flushes + m.Transport.flushes;
          queue_depth = acc.Transport.queue_depth + m.Transport.queue_depth;
        })
      {
        Transport.sent = 0;
        delivered = 0;
        dropped = 0;
        retries = 0;
        reconnects = 0;
        flushes = 0;
        queue_depth = 0;
      }
      t.nodes

  let notes t =
    let merged = Hashtbl.create 16 in
    Array.iter
      (fun node ->
        List.iter
          (fun (name, k) ->
            Hashtbl.replace merged name
              (k + Option.value ~default:0 (Hashtbl.find_opt merged name)))
          (Node.notes node))
      t.nodes;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])

  let note_count t name =
    Array.fold_left (fun acc node -> acc + Node.note_count node name) 0 t.nodes

  let registries t = t.obs

  let obs_snapshot t =
    Dmutex_obs.Registry.merge
      (Array.to_list (Array.map Dmutex_obs.Registry.snapshot t.obs))

  let obs_report ?lock t = Dmutex_obs.Report.derive ?lock (obs_snapshot t)
  let obs_report_by_lock t = Dmutex_obs.Report.by_lock (obs_snapshot t)

  let shutdown t =
    t.stopping <- true;
    wait_chaos t;
    (* Graceful: flush every surviving store so the directories are
       left with a folded snapshot. *)
    Array.iteri
      (fun i node ->
        if t.live.(i) then begin
          t.live.(i) <- false;
          Node.shutdown node
        end)
      t.nodes
end
