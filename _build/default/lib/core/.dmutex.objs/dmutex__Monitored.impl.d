lib/core/monitored.ml: Protocol Types
