lib/simkit/workload.mli: Engine Rng
