(* Frame-codec robustness: reader_loop's failure paths driven by raw
   sockets speaking deliberately broken framing, plus the supervised
   outbound channel (retry, shedding, reconnect-after-close). *)

let addr port = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)

(* A transport under test listening on [port] as node 0 of a 2-node
   peer list, collecting every delivered payload. *)
let listener ~port ~peer_port =
  let received = ref [] in
  let mu = Mutex.create () in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port };
      { Netkit.Transport.host = "127.0.0.1"; port = peer_port };
    |]
  in
  let tr =
    Netkit.Transport.create ~me:0 ~peers
      ~on_frame:(fun ~src ~lock payload ->
        Mutex.lock mu;
        received := (src, lock, payload) :: !received;
        Mutex.unlock mu)
      ()
  in
  let snapshot () =
    Mutex.lock mu;
    let l = List.rev !received in
    Mutex.unlock mu;
    l
  in
  (tr, snapshot)

let connect_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (addr port);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let rec push off =
    if off < Bytes.length b then
      push (off + Unix.write fd b off (Bytes.length b - off))
  in
  push 0

(* A well-formed wire frame: length prefix + Frame header + payload. *)
let good_frame ?(src = 1) ?(lock = "") payload =
  let body = Wire.Frame.encode_header ~src ~lock Wire.Frame.Data ^ payload in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length body));
  Bytes.to_string b ^ body

let length_prefix len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

let wait_for ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* Feed one malformed byte stream to a fresh connection, then prove
   the transport survived it: a subsequent clean connection still
   delivers. *)
let survives_garbage ~port ~peer_port garbage =
  let tr, snapshot = listener ~port ~peer_port in
  let bad = connect_raw port in
  write_all bad garbage;
  (* Give the reader a moment to choke on it. *)
  Thread.delay 0.1;
  (try Unix.close bad with _ -> ());
  let ok = connect_raw port in
  write_all ok (good_frame "after-garbage");
  let delivered =
    wait_for (fun () ->
        List.exists (fun (_, _, p) -> p = "after-garbage") (snapshot ()))
  in
  Unix.close ok;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "garbage never delivered" false
    (List.exists (fun (_, _, p) -> p <> "after-garbage") (snapshot ()));
  Alcotest.(check bool) "clean frame delivered after garbage" true delivered

let test_oversized_length () =
  survives_garbage ~port:8701 ~peer_port:8702
    (length_prefix 100_000_000 ^ "xxxx")

let test_negative_length () =
  survives_garbage ~port:8703 ~peer_port:8704 (length_prefix (-1))

let test_short_frame () =
  (* Body shorter than the 8-byte fixed frame header. *)
  survives_garbage ~port:8705 ~peer_port:8706 (length_prefix 2 ^ "ab")

let test_bad_frame_kind () =
  (* Valid version byte, sender id and (empty) lock key, kind byte 255. *)
  let body = "\004\000\000\000\001\255\000\000payload" in
  survives_garbage ~port:8707 ~peer_port:8708
    (length_prefix (String.length body) ^ body)

let test_truncated_lock_key () =
  (* Lock-length field promises 200 key bytes; the frame ends first. *)
  let body = "\004\000\000\000\001\000\000\200key" in
  survives_garbage ~port:8724 ~peer_port:8725
    (length_prefix (String.length body) ^ body)

let test_version_mismatch () =
  (* A well-formed frame from a peer speaking a future format: the
     version byte must reject it before the kind byte is even read. *)
  let body = "\005\000\000\000\001\000\000\000payload" in
  Alcotest.(check bool) "crafted frame differs only in version" true
    (String.get_uint8 body 0 <> Wire.format_version);
  survives_garbage ~port:8726 ~peer_port:8727
    (length_prefix (String.length body) ^ body)

let test_bad_sender_id () =
  (* Sender ids are only loosely bounded (a joiner's first frames
     arrive before the receiver's peer table has a slot for it);
     src = me is the one id that can never be legitimate. *)
  let body = Wire.Frame.encode_header ~src:0 ~lock:"" Wire.Frame.Data ^ "evil" in
  survives_garbage ~port:8709 ~peer_port:8710
    (length_prefix (String.length body) ^ body)

let test_joiner_sender_id () =
  (* The flip side: an id beyond the peer table is delivered, carrying
     its real src — that's how a JOIN-REQUEST reaches the protocol
     before any view admits the sender. *)
  let tr, snapshot = listener ~port:8730 ~peer_port:8731 in
  let raw = connect_raw 8730 in
  write_all raw (good_frame ~src:99 "knock");
  let delivered =
    wait_for (fun () ->
        List.exists (fun (s, _, p) -> s = 99 && p = "knock") (snapshot ()))
  in
  (try Unix.close raw with _ -> ());
  Netkit.Transport.close tr;
  Alcotest.(check bool) "high sender id delivered" true delivered

let test_partial_header_disconnect () =
  (* Peer dies after two bytes of the length prefix. *)
  survives_garbage ~port:8711 ~peer_port:8712 "\000\000"

let test_mid_frame_disconnect () =
  (* Length promises 100 bytes; only 10 arrive before the close. *)
  survives_garbage ~port:8713 ~peer_port:8714 (length_prefix 100 ^ "0123456789")

let test_unreachable_peer_sheds () =
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8715 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8716 };
    |]
  in
  let tr =
    Netkit.Transport.create ~me:0 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  (* Peer 1 never started: the frame is accepted (the writer thread
     owns retrying), then shed once the per-frame budget runs out. *)
  Alcotest.(check bool) "send to dead peer accepted" true
    (Netkit.Transport.send tr ~dst:1 "hello");
  Alcotest.(check bool) "self-send refused" false
    (Netkit.Transport.send tr ~dst:0 "self");
  Alcotest.(check bool) "out-of-range refused" false
    (Netkit.Transport.send tr ~dst:7 "mars");
  let shed =
    wait_for ~timeout:15.0 (fun () ->
        (Netkit.Transport.metrics tr).Netkit.Transport.dropped >= 1)
  in
  Alcotest.(check bool) "frame shed after retry budget" true shed;
  let m = Netkit.Transport.metrics tr in
  Alcotest.(check int) "never counted as sent" 0 m.Netkit.Transport.sent;
  Alcotest.(check bool) "connect attempts counted as retries" true
    (m.Netkit.Transport.retries >= 1);
  Netkit.Transport.close tr;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "send after close refused" false
    (Netkit.Transport.send tr ~dst:1 "late")

let test_lock_key_demux () =
  (* Frames for different lock keys share one connection and come out
     with their key intact — the demultiplexing contract every
     multi-instance node depends on. *)
  let tr, snapshot = listener ~port:8728 ~peer_port:8729 in
  let raw = connect_raw 8728 in
  write_all raw (good_frame ~lock:"orders" "o-payload");
  write_all raw (good_frame ~lock:"billing" "b-payload");
  write_all raw (good_frame "plain");
  let all_in =
    wait_for (fun () -> List.length (snapshot ()) >= 3)
  in
  Unix.close raw;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "all three frames delivered" true all_in;
  let got = snapshot () in
  Alcotest.(check bool) "orders key routed" true
    (List.mem (1, "orders", "o-payload") got);
  Alcotest.(check bool) "billing key routed" true
    (List.mem (1, "billing", "b-payload") got);
  Alcotest.(check bool) "empty key routed" true (List.mem (1, "", "plain") got)

let test_chaos_loss_counted () =
  (* A frame eaten by set_loss reports success to the caller but is
     counted as dropped and never as sent — Simkit.Network semantics
     on live counters. *)
  let tr, _snapshot = listener ~port:8717 ~peer_port:8718 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8717 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8718 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  Netkit.Transport.set_loss sender 1.0;
  for _ = 1 to 10 do
    Alcotest.(check bool) "lost send still reports success" true
      (Netkit.Transport.send sender ~dst:0 "into the void")
  done;
  let m = Netkit.Transport.metrics sender in
  Alcotest.(check int) "all ten counted dropped" 10 m.Netkit.Transport.dropped;
  Alcotest.(check int) "none counted sent" 0 m.Netkit.Transport.sent;
  Netkit.Transport.close sender;
  Netkit.Transport.close tr

let test_reconnect_after_close () =
  (* The receiving endpoint dies and is reborn on the same port; the
     sender's writer thread must reconnect and deliver again. *)
  let tr0, snapshot0 = listener ~port:8719 ~peer_port:8720 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8719 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8720 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  ignore (Netkit.Transport.send sender ~dst:0 "first");
  Alcotest.(check bool) "first frame delivered" true
    (wait_for (fun () -> List.mem (1, "", "first") (snapshot0 ())));
  Netkit.Transport.close tr0;
  Thread.delay 0.1;
  (* Restart the endpoint, then keep sending until a frame lands: the
     first few writes may hit the dead connection and be retried or
     shed, which is exactly the behaviour under test. *)
  let tr0', snapshot0' = listener ~port:8719 ~peer_port:8720 in
  let landed =
    wait_for ~timeout:15.0 (fun () ->
        ignore (Netkit.Transport.send sender ~dst:0 "reborn");
        Thread.delay 0.05;
        List.exists (fun (_, _, p) -> p = "reborn") (snapshot0' ()))
  in
  Alcotest.(check bool) "frame delivered to reborn endpoint" true landed;
  Alcotest.(check bool) "reconnect counted" true
    ((Netkit.Transport.metrics sender).Netkit.Transport.reconnects >= 1);
  Netkit.Transport.close sender;
  Netkit.Transport.close tr0'

let test_one_dead_peer_does_not_stall_others () =
  (* The per-peer channel redesign in one assertion: with peer 1 dead,
     sends to live peer 2 keep flowing immediately. *)
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8721 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8722 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8723 };
    |]
  in
  let received = ref 0 in
  let mu = Mutex.create () in
  let tr2 =
    Netkit.Transport.create ~me:2 ~peers
      ~on_frame:(fun ~src:_ ~lock:_ _ ->
        Mutex.lock mu;
        incr received;
        Mutex.unlock mu)
      ()
  in
  let tr0 =
    Netkit.Transport.create ~me:0 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  (* Flood the dead peer 1 first, then time deliveries to live peer 2. *)
  for k = 1 to 50 do
    ignore (Netkit.Transport.send tr0 ~dst:1 (Printf.sprintf "dead-%d" k))
  done;
  let t_start = Unix.gettimeofday () in
  for k = 1 to 20 do
    ignore (Netkit.Transport.send tr0 ~dst:2 (Printf.sprintf "live-%d" k))
  done;
  let all =
    wait_for (fun () ->
        Mutex.lock mu;
        let n = !received in
        Mutex.unlock mu;
        n >= 20)
  in
  let elapsed = Unix.gettimeofday () -. t_start in
  Netkit.Transport.close tr0;
  Netkit.Transport.close tr2;
  Alcotest.(check bool) "live peer got all frames" true all;
  Alcotest.(check bool)
    (Printf.sprintf "no head-of-line blocking through dead peer (%.3fs)"
       elapsed)
    true (elapsed < 2.0)

(* A stateful frame reader over a raw socket: coalesced flushes put
   many frames into one read, so the carry buffer must persist across
   frames. [next ()] returns None at EOF. *)
let frame_reader fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec need n =
    Buffer.length buf >= n
    ||
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> false
    | got ->
        Buffer.add_subbytes buf chunk 0 got;
        need n
  in
  let take n =
    let s = Buffer.contents buf in
    let h = String.sub s 0 n in
    Buffer.clear buf;
    Buffer.add_substring buf s n (String.length s - n);
    h
  in
  fun () ->
    if not (need 4) then None
    else
      let len = Int32.to_int (String.get_int32_be (take 4) 0) in
      if not (need len) then None
      else
        let body = take len in
        let h = Wire.Frame.decode_header body in
        Some
          ( h.Wire.Frame.kind,
            String.sub body h.Wire.Frame.payload_start
              (String.length body - h.Wire.Frame.payload_start) )

(* Regression for the old writer-thread start race: two sends racing
   the channel's first use could each decide to start a writer and
   open two connections. The reactor design leaves exactly one owner
   per peer; pin it by racing 8 threads' first sends at a raw
   accept-counting listener and counting connections and frames. *)
let test_no_double_connection () =
  let port = 8731 in
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (addr port);
  Unix.listen srv 16;
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port };
      { Netkit.Transport.host = "127.0.0.1"; port = 8732 };
    |]
  in
  let tr =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  let barrier = Atomic.make 0 in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < 8 do
              Thread.yield ()
            done;
            ignore (Netkit.Transport.send tr ~dst:0 (Printf.sprintf "race-%d" i)))
          ())
  in
  List.iter Thread.join threads;
  (* Count accepted connections and frames for a settling window. *)
  let conns = ref [] and payloads = ref [] in
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec accept_loop () =
    let now = Unix.gettimeofday () in
    if now < deadline then begin
      match Unix.select [ srv ] [] [] (deadline -. now) with
      | [], _, _ -> accept_loop ()
      | _ ->
          let fd, _ = Unix.accept srv in
          conns := fd :: !conns;
          ignore
            (Thread.create
               (fun () ->
                 let next = frame_reader fd in
                 let rec drain () =
                   match next () with
                   | Some (Wire.Frame.Data, p) ->
                       payloads := p :: !payloads;
                       drain ()
                   | Some (Wire.Frame.Heartbeat, _) -> drain ()
                   | None -> ()
                   | exception _ -> ()
                 in
                 drain ())
               ());
          accept_loop ()
    end
  in
  accept_loop ();
  let all_in =
    wait_for (fun () -> List.length !payloads >= 8)
  in
  Netkit.Transport.close tr;
  List.iter (fun fd -> try Unix.close fd with _ -> ()) !conns;
  Unix.close srv;
  Alcotest.(check int) "exactly one connection for 8 racing first sends" 1
    (List.length !conns);
  Alcotest.(check bool) "all 8 racing frames arrived" true all_in;
  Alcotest.(check int) "no frame duplicated" 8
    (List.length (List.sort_uniq compare !payloads))

let test_partial_write_large_frames () =
  (* Frames far bigger than a socket buffer force the flush into
     partial writes; every byte must still arrive, in order. *)
  let tr, snapshot = listener ~port:8733 ~peer_port:8734 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8733 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8734 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  let big i = String.make 524_288 (Char.chr (Char.code 'a' + i)) in
  Netkit.Transport.cork sender;
  for i = 0 to 5 do
    Alcotest.(check bool) "big frame accepted" true
      (Netkit.Transport.send sender ~dst:0 (big i))
  done;
  Netkit.Transport.uncork sender;
  let all_in = wait_for ~timeout:15.0 (fun () -> List.length (snapshot ()) >= 6) in
  let got = snapshot () in
  (* The sent counter settles on the reactor thread after the write
     syscall; the receiver can see every frame first. *)
  ignore
    (wait_for (fun () -> (Netkit.Transport.metrics sender).Netkit.Transport.sent >= 6));
  let m = Netkit.Transport.metrics sender in
  Netkit.Transport.close sender;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "all six 512KB frames delivered" true all_in;
  List.iteri
    (fun i (_, _, p) ->
      Alcotest.(check bool)
        (Printf.sprintf "frame %d intact and in order" i)
        true
        (String.length p = 524_288 && p.[0] = Char.chr (Char.code 'a' + i)))
    got;
  Alcotest.(check int) "none dropped" 0 m.Netkit.Transport.dropped;
  Alcotest.(check int) "all counted sent" 6 m.Netkit.Transport.sent

let test_cork_coalesces_multi_lock () =
  (* Frames for many lock instances sent inside one cork window ride
     fewer write syscalls than frames — and still arrive in enqueue
     order with their keys intact. *)
  let tr, snapshot = listener ~port:8735 ~peer_port:8736 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8735 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8736 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  (* Establish the connection so the corked batch hits a live socket. *)
  ignore (Netkit.Transport.send sender ~dst:0 "warmup");
  Alcotest.(check bool) "warmup delivered" true
    (wait_for (fun () -> List.length (snapshot ()) >= 1));
  Netkit.Transport.cork sender;
  for i = 0 to 15 do
    ignore
      (Netkit.Transport.send sender ~dst:0
         ~lock:(Printf.sprintf "shard-%d" (i mod 4))
         (Printf.sprintf "m-%02d" i))
  done;
  Netkit.Transport.uncork sender;
  let all_in = wait_for (fun () -> List.length (snapshot ()) >= 17) in
  let got = snapshot () in
  (* The sent counter settles on the reactor thread after the write
     syscall; the receiver can see every frame first. *)
  ignore
    (wait_for (fun () ->
         (Netkit.Transport.metrics sender).Netkit.Transport.sent >= 17));
  let m = Netkit.Transport.metrics sender in
  Netkit.Transport.close sender;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "warmup + 16 corked frames delivered" true all_in;
  Alcotest.(check int) "all counted sent" 17 m.Netkit.Transport.sent;
  Alcotest.(check bool)
    (Printf.sprintf "coalesced: %d flushes for %d frames"
       m.Netkit.Transport.flushes m.Netkit.Transport.sent)
    true
    (m.Netkit.Transport.flushes < m.Netkit.Transport.sent);
  let batch = List.filteri (fun i _ -> i >= 1) got in
  List.iteri
    (fun i (_, lock, p) ->
      Alcotest.(check string)
        (Printf.sprintf "frame %d in enqueue order" i)
        (Printf.sprintf "m-%02d" i) p;
      Alcotest.(check string)
        (Printf.sprintf "frame %d key intact" i)
        (Printf.sprintf "shard-%d" (i mod 4))
        lock)
    batch

let test_flush_timer_liveness () =
  (* A flush timer must delay frames, not lose them — and an empty
     ring between sends must not wedge the reactor's timer path. *)
  let tr, snapshot = listener ~port:8737 ~peer_port:8738 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8737 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8738 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~flush_us:3000
      ~on_frame:(fun ~src:_ ~lock:_ _ -> ())
      ()
  in
  ignore (Netkit.Transport.send sender ~dst:0 "timed-1");
  Alcotest.(check bool) "frame delivered despite flush delay" true
    (wait_for (fun () -> List.mem (1, "", "timed-1") (snapshot ())));
  (* Let the ring drain completely, then prove the loop still runs. *)
  Thread.delay 0.2;
  ignore (Netkit.Transport.send sender ~dst:0 "timed-2");
  Alcotest.(check bool) "second frame delivered after idle ring" true
    (wait_for (fun () -> List.mem (1, "", "timed-2") (snapshot ())));
  ignore
    (wait_for (fun () -> (Netkit.Transport.metrics sender).Netkit.Transport.sent >= 2));
  let m = Netkit.Transport.metrics sender in
  Netkit.Transport.close sender;
  Netkit.Transport.close tr;
  Alcotest.(check int) "nothing dropped" 0 m.Netkit.Transport.dropped;
  Alcotest.(check int) "both counted sent" 2 m.Netkit.Transport.sent

let test_reconnect_preserves_pending_ring () =
  (* Frames queued against a not-yet-listening endpoint must survive
     the failed connect attempts and all land, in order, once the
     endpoint appears — no loss, no duplication, nothing shed. *)
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8739 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8740 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  for i = 1 to 20 do
    Alcotest.(check bool) "frame to dead endpoint accepted" true
      (Netkit.Transport.send sender ~dst:0 (Printf.sprintf "pending-%02d" i))
  done;
  Thread.delay 0.2;
  let tr, snapshot = listener ~port:8739 ~peer_port:8740 in
  let all_in =
    wait_for ~timeout:15.0 (fun () -> List.length (snapshot ()) >= 20)
  in
  let got = snapshot () in
  ignore
    (wait_for (fun () ->
         (Netkit.Transport.metrics sender).Netkit.Transport.sent >= 20));
  let m = Netkit.Transport.metrics sender in
  Netkit.Transport.close sender;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "all 20 queued frames delivered" true all_in;
  List.iteri
    (fun i (_, _, p) ->
      Alcotest.(check string)
        (Printf.sprintf "frame %d in order" i)
        (Printf.sprintf "pending-%02d" (i + 1))
        p)
    got;
  Alcotest.(check int) "nothing dropped" 0 m.Netkit.Transport.dropped;
  Alcotest.(check int) "exactly 20 sent" 20 m.Netkit.Transport.sent;
  Alcotest.(check bool) "failed connects counted as retries" true
    (m.Netkit.Transport.retries >= 1)

let test_retire_mid_cork () =
  (* A peer excised by a view change while the sender is inside a cork
     window: everything latched for it must be shed at uncork — never
     requeued toward the dead ring, never delivered — and reviving the
     slot (a rejoin) must flow cleanly again. *)
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8741 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8742 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:0 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ())
      ()
  in
  let tr, snapshot =
    let received = ref [] in
    let mu = Mutex.create () in
    let tr =
      Netkit.Transport.create ~me:1 ~peers
        ~on_frame:(fun ~src ~lock:_ payload ->
          Mutex.lock mu;
          received := (src, payload) :: !received;
          Mutex.unlock mu)
        ()
    in
    ( tr,
      fun () ->
        Mutex.lock mu;
        let l = List.rev !received in
        Mutex.unlock mu;
        l )
  in
  (* Warm the connection up so the corked frames would otherwise fly. *)
  Alcotest.(check bool) "warm-up send accepted" true
    (Netkit.Transport.send sender ~dst:1 "warm-up");
  Alcotest.(check bool) "warm-up delivered" true
    (wait_for (fun () -> List.exists (fun (_, p) -> p = "warm-up") (snapshot ())));
  Netkit.Transport.cork sender;
  Alcotest.(check bool) "corked send accepted" true
    (Netkit.Transport.send sender ~dst:1 "corked-then-retired");
  Netkit.Transport.retire_peer sender ~dst:1;
  Netkit.Transport.uncork sender;
  Alcotest.(check bool) "retired flag set" true
    (Netkit.Transport.peer_retired sender ~dst:1);
  let shed =
    wait_for (fun () ->
        (Netkit.Transport.metrics sender).Netkit.Transport.dropped >= 1)
  in
  Alcotest.(check bool) "corked frame shed on retire" true shed;
  (* Sends to a retired slot are shed silently (like chaos loss). *)
  Alcotest.(check bool) "send to retired slot accepted-and-shed" true
    (Netkit.Transport.send sender ~dst:1 "into-the-void");
  (* Revive the slot — the rejoin path — and prove traffic flows. *)
  Netkit.Transport.add_peer sender ~dst:1 ~host:"127.0.0.1" ~port:8742;
  Alcotest.(check bool) "send after revive accepted" true
    (Netkit.Transport.send sender ~dst:1 "after-revive");
  let revived =
    wait_for (fun () ->
        List.exists (fun (_, p) -> p = "after-revive") (snapshot ()))
  in
  Alcotest.(check bool) "frame delivered after revive" true revived;
  Alcotest.(check bool) "retired frames never delivered" false
    (List.exists
       (fun (_, p) -> p = "corked-then-retired" || p = "into-the-void")
       (snapshot ()));
  Netkit.Transport.close sender;
  Netkit.Transport.close tr

let test_add_peer_mid_cork () =
  (* The opposite race: a peer added (view commit) inside a cork
     window. Frames sent to the brand-new slot while still corked must
     be flushed by the uncork like any other latched send. *)
  let sender =
    Netkit.Transport.create ~me:0
      ~peers:[| { Netkit.Transport.host = "127.0.0.1"; port = 8743 } |]
      ~on_frame:(fun ~src:_ ~lock:_ _ -> ())
      ()
  in
  let tr, snapshot =
    let received = ref [] in
    let mu = Mutex.create () in
    let peers =
      [|
        { Netkit.Transport.host = "127.0.0.1"; port = 8743 };
        { Netkit.Transport.host = "127.0.0.1"; port = 8744 };
      |]
    in
    let tr =
      Netkit.Transport.create ~me:1 ~peers
        ~on_frame:(fun ~src ~lock payload ->
          Mutex.lock mu;
          received := (src, lock, payload) :: !received;
          Mutex.unlock mu)
        ()
    in
    ( tr,
      fun () ->
        Mutex.lock mu;
        let l = List.rev !received in
        Mutex.unlock mu;
        l )
  in
  Netkit.Transport.cork sender;
  (* The slot does not exist yet: out-of-table sends are refused... *)
  Alcotest.(check bool) "send before add_peer refused" false
    (Netkit.Transport.send sender ~dst:1 "too-early");
  (* ...until the view commit installs it, mid-cork. *)
  Netkit.Transport.add_peer sender ~dst:1 ~host:"127.0.0.1" ~port:8744;
  Alcotest.(check bool) "send to fresh slot accepted" true
    (Netkit.Transport.send sender ~dst:1 "corked-to-newcomer");
  Netkit.Transport.uncork sender;
  let delivered =
    wait_for (fun () ->
        List.exists
          (fun (_, _, p) -> p = "corked-to-newcomer")
          (snapshot ()))
  in
  Alcotest.(check bool) "corked frame flushed to added peer" true delivered;
  Netkit.Transport.close sender;
  Netkit.Transport.close tr

let suite =
  ( "transport",
    [
      Alcotest.test_case "oversized length header" `Quick test_oversized_length;
      Alcotest.test_case "negative length header" `Quick test_negative_length;
      Alcotest.test_case "short (<header) frame" `Quick test_short_frame;
      Alcotest.test_case "unknown frame kind" `Quick test_bad_frame_kind;
      Alcotest.test_case "truncated lock key" `Quick test_truncated_lock_key;
      Alcotest.test_case "frame format version mismatch" `Quick
        test_version_mismatch;
      Alcotest.test_case "lock key demultiplexing" `Quick test_lock_key_demux;
      Alcotest.test_case "out-of-range sender id" `Quick test_bad_sender_id;
      Alcotest.test_case "beyond-table sender id delivered" `Quick
        test_joiner_sender_id;
      Alcotest.test_case "peer retired mid-cork" `Quick test_retire_mid_cork;
      Alcotest.test_case "peer added mid-cork" `Quick test_add_peer_mid_cork;
      Alcotest.test_case "partial header then disconnect" `Quick
        test_partial_header_disconnect;
      Alcotest.test_case "mid-frame disconnect" `Quick
        test_mid_frame_disconnect;
      Alcotest.test_case "unreachable peer: retry then shed" `Slow
        test_unreachable_peer_sheds;
      Alcotest.test_case "chaos loss counted as dropped" `Quick
        test_chaos_loss_counted;
      Alcotest.test_case "reconnect after endpoint restart" `Slow
        test_reconnect_after_close;
      Alcotest.test_case "dead peer cannot stall live peers" `Quick
        test_one_dead_peer_does_not_stall_others;
      Alcotest.test_case "racing first sends open one connection" `Quick
        test_no_double_connection;
      Alcotest.test_case "partial writes on oversized frames" `Quick
        test_partial_write_large_frames;
      Alcotest.test_case "cork coalesces multi-lock frames" `Quick
        test_cork_coalesces_multi_lock;
      Alcotest.test_case "flush timer: delay without loss" `Quick
        test_flush_timer_liveness;
      Alcotest.test_case "reconnect preserves pending ring" `Slow
        test_reconnect_preserves_pending_ring;
    ] )
