(** The Banerjee–Chrysanthis arbiter/Q-list token protocol (ICDCS
    1996) as a single pure state machine.

    {!Types.Config} flags select the paper's variants: [monitor]
    enables the Section 4.1 starvation-free extension, [priorities]
    the Section 5.2 prioritized access, [least_served_first] the
    Section 5.1 strict fairness ordering, and [recovery] the Section 6
    failure handling. The exported modules {!Basic}, {!Monitored},
    {!Resilient}, {!Prioritized} and {!Fair} are thin specializations.

    All types are exposed concretely: tests, the model checker, and
    fault-injection harnesses inspect protocol states freely. Regular
    users should treat everything except {!init}, {!handle} and the
    two predicates as read-only. *)

open Types

(** One entry of a membership view. [maddr] is opaque metadata the
    pure protocol never interprets: the TCP runtime packs "host:port"
    into it so view changes double as address distribution, while the
    simulator and model checker leave it empty. *)
type member = { mid : node_id; maddr : string }

(** The epoch-numbered membership view. Epoch 0 is the birth view
    (members [0 .. n-1]); every committed join or leave increments
    it. Views are only changed by the token-holding arbiter, after a
    majority of the outgoing view acknowledged the proposal. *)
type view = { vnum : int; vmembers : member list }

(** The PRIVILEGE message's payload (the {e token}). Exactly one
    non-stale token exists at any time. *)
type token = {
  tq : Qlist.t;  (** The Q-list: nodes scheduled to enter the CS, in order. *)
  granted : Qlist.Granted.g;
      (** The Section 2.4 [L] vector: last served sequence number per
          node; makes retransmitted requests idempotent. *)
  epoch : int;
      (** Regeneration counter (Section 6): a token resurfacing from
          before a regeneration is discarded by its stale epoch. *)
  election : int;
      (** Arbiter hand-off counter; see {!new_arbiter.na_election}. *)
  vepoch : int;
      (** Membership view epoch the token was last dispatched under.
          Views only change while the token sits with the coordinator,
          so a token bearing an older view epoch than the receiver's is
          provably stale and rejected loudly. *)
}

(** A node's answer to the two-phase token invalidation ENQUIRY
    (Section 6): "I had the token and executed", "I have the token",
    "I am waiting for the token". *)
type enq_status = Have_token | Executed | Waiting_token

(** Payload of the NEW-ARBITER broadcast. *)
type new_arbiter = {
  na_arbiter : node_id;  (** The newly declared arbiter: [Tail(Q)]. *)
  na_q : Qlist.t;
      (** The dispatched Q-list — doubling as the implicit
          acknowledgement of every scheduled request (Section 6). *)
  na_granted : Qlist.Granted.g;  (** Best-known [L] vector. *)
  na_counter : int;
      (** Monitor-period counter (Section 4.1), reset by the
          monitor. *)
  na_monitor : node_id;  (** Current monitor node; [-1] = variant off. *)
  na_epoch : int;  (** Highest token epoch known to the sender. *)
  na_election : int;
      (** Monotone election number: receivers ignore announcements
          older than the latest they have seen, so a reordered stale
          broadcast can never re-elect a node that already handed the
          role on. *)
  na_view : view;
      (** The sender's membership view: every announcement is an
          anti-entropy carrier, so a member that missed a VIEW-CHANGE
          commit catches up at the next broadcast. *)
}

(** Payload of the VIEW-CHANGE message (proposal and commit phases of
    a membership change). *)
type view_change = {
  vc_view : view;  (** The proposed / committed new view. *)
  vc_commit : bool;
      (** [false]: proposal — receivers only acknowledge reachability;
          a majority of the outgoing view must ack before commit.
          [true]: commit — receivers adopt the view and drain excised
          nodes from every queue. *)
  vc_granted : Qlist.Granted.g;  (** Joiner sync payload: [L] vector. *)
  vc_epoch : int;  (** Joiner sync payload: coordinator's token epoch. *)
  vc_election : int;  (** Joiner sync payload: election number. *)
  vc_arbiter : node_id;  (** The post-commit arbiter. *)
}

(** Protocol messages. The first five are the paper's; WARNING through
    PROBE-ACK implement Section 6. *)
type message =
  | Request of Qlist.entry  (** REQUEST(j, n): node j's (n+1)-th request. *)
  | Monitor_request of Qlist.entry
      (** Resubmission of a starving request to the monitor (§4.1). *)
  | Privilege of token  (** The token, sent to [Head(Q)]. *)
  | Monitor_privilege of token
      (** Token routed through the monitor without a NEW-ARBITER
          broadcast; the monitor augments Q and broadcasts instead. *)
  | New_arbiter of new_arbiter
  | Warning  (** Requester's token timeout fired (§6). *)
  | Enquiry of { round : int }  (** Phase 1 of token invalidation. *)
  | Enquiry_reply of { round : int; status : enq_status }
  | Resume of { round : int }  (** Token located: continue normally. *)
  | Invalidate of { round : int }
      (** Token declared lost; the receiver is rescheduled at the
          front of the regenerating arbiter's queue. *)
  | Probe  (** Previous-arbiter liveness check of the current one. *)
  | Probe_ack
  | Join_request of member
      (** A node outside the view asks to be admitted; relayed toward
          the token-holding arbiter like a stashed request. *)
  | Leave_request of node_id
      (** Excise this node from the view (voluntary departure or an
          operator / liveness decision); relayed like JOIN-REQUEST. *)
  | View_change of view_change
  | View_ack of { va_vnum : int }
      (** Acknowledgement of a VIEW-CHANGE (either phase). *)
  | Read_grant of read_grant
      (** Shared-batch grant: the batch coordinator (the token-holding
          head reader of a maximal shared run) admits a fellow reader
          into the CS. [rg_minor] is the batch's fencing minor — the
          granted-vector total with the whole batch marked — so every
          reader of one batch derives the {e same} fencing token. *)
  | Read_done of { rd_seq : int }
      (** A batched reader left the CS; once every READ-DONE (and the
          coordinator's own CS) is in, the whole batch is marked served
          at once and the token moves on. *)

and read_grant = { rg_epoch : int; rg_minor : int; rg_entry : Qlist.entry }

(** Timer keys (managed by the hosting runtime via [Set_timer] /
    [Cancel_timer]; at most one instance of each key is armed). *)
type timer =
  | T_dispatch  (** End of the current request-collection window. *)
  | T_forward_end  (** End of the request-forwarding phase. *)
  | T_retry
      (** Blind retransmission of an unacknowledged request; patience
          scales with the observed Q-list length. *)
  | T_stash  (** Drain parked third-party requests toward the arbiter. *)
  | T_token  (** Requester's patience for the token (recovery). *)
  | T_enquiry  (** Arbiter's patience for ENQUIRY replies. *)
  | T_watch  (** The watcher's patience for arbiter liveness evidence. *)
  | T_probe  (** Patience for a PROBE answer. *)
  | T_view
      (** Joiner: re-send JOIN-REQUEST until admitted. Coordinator:
          re-send VIEW-CHANGE to silent members until quorum / acks.
          Otherwise: an idle firing re-surfaces the current view as a
          [Membership] note (used after restarts). *)
  | T_rbatch
      (** Batch coordinator's patience for READ-DONE replies: re-grant
          silent readers, and (with recovery on) eventually force the
          batch complete so a crashed reader cannot wedge the token. *)

(** The arbiter life-cycle of Figure 1, event-driven. *)
type role =
  | Normal  (** Not the arbiter. *)
  | Await_token of Qlist.t
      (** Elected arbiter, already collecting (the carried queue)
          while the token is still travelling to us. *)
  | Collecting of { cq : Qlist.t; anchor : float; armed : bool }
      (** Arbiter holding the token. [anchor] is the start of the
          window grid; [armed] whether [T_dispatch] is pending (an
          idle arbiter keeps no timer running). *)
  | Forwarding of { next_arbiter : node_id }
      (** Post-dispatch: relaying late requests to the new arbiter. *)

(** In-progress two-phase token invalidation (Section 6), at the
    arbiter running it. *)
type recovery = {
  rround : int;  (** This invalidation's round number. *)
  expected : node_id list;  (** Peers sent an ENQUIRY. *)
  replied : node_id list;
  waiting : Qlist.t;
      (** Entries of peers that answered [Waiting_token]; they go to
          the front of the regenerated token's queue. *)
}

(** An in-flight shared grant batch at its coordinator — the
    token-holding head reader of a maximal run of compatible [Shared]
    entries. The coordinator enters the CS itself, READ-GRANTs the
    rest of the run, and holds the token until its own CS and every
    READ-DONE are in; only then is the batch marked served (one
    served-vector update, one fencing advance) and the token passed
    on. A batch of one — every exclusive grant — never allocates
    this. *)
type rbatch = {
  rb_entries : Qlist.t;  (** The whole batch, coordinator's entry first. *)
  rb_await : node_id list;  (** Readers whose READ-DONE is still out. *)
  rb_minor : int;  (** The batch fencing minor, shared by every reader. *)
  rb_tries : int;  (** [T_rbatch] re-grant rounds already spent. *)
}

(** A reader admitted into the CS by a READ-GRANT: it holds no token;
    ([rg_fepoch], [rg_fminor]) is what its fencing derives from. *)
type rgrant = {
  rg_from : node_id;  (** The coordinator to answer with READ-DONE. *)
  rg_seq : int;  (** Our request being served. *)
  rg_fepoch : int;  (** Fencing epoch the grant rode in on. *)
  rg_fminor : int;  (** Shared batch fencing minor. *)
}

(** A view change in progress at its coordinator (the token-holding
    arbiter). *)
type pending_vc = {
  pv_view : view;  (** The new view being installed. *)
  pv_quorum : int;  (** Acks needed before commit, counting ourselves. *)
  pv_acks : node_id list;
  pv_committed : bool;
      (** [false]: proposal phase — dispatch is deferred so the token
          stays with the coordinator (the serialization point for
          views). [true]: committed and broadcast; re-sent on [T_view]
          to silent members until a majority of the new view acked. *)
}

(** Complete per-node protocol state. Pure: {!handle} returns a fresh
    value. *)
type state = {
  me : node_id;
  arbiter : node_id;  (** Believed current arbiter (the ARBITER variable). *)
  prev_arbiter : node_id;  (** Tracked only when [recovery] is on. *)
  monitor : node_id;  (** Current monitor; [-1] = variant off. *)
  role : role;
  next_seq : int;  (** Our request counter (Section 2.4 sequence numbers). *)
  outstanding : int option;  (** Sequence number of our in-flight request. *)
  out_mode : Types.mode;  (** Mode of the outstanding request. *)
  pending : int;  (** Application requests queued behind [outstanding]. *)
  pending_modes : Types.mode list;
      (** FIFO modes of the [pending] queued requests, oldest first. *)
  in_cs : bool;
  rbatch : rbatch option;
      (** We coordinate an in-flight shared batch (and hold the token). *)
  rgrant : rgrant option;  (** We are in the CS under a READ-GRANT. *)
  token : token option;
  suspended : bool;  (** Token passing frozen by an ENQUIRY (Section 6). *)
  misses : int;  (** Consecutive NEW-ARBITER broadcasts omitting us. *)
  monitor_misses : int;  (** Misses since the last monitor resubmission (τ). *)
  retries_left : int;  (** Timeout retransmissions remaining; [-1] = ∞. *)
  observed_q_len : int;  (** |Q| in the last announcement seen. *)
  last_q : Qlist.t;  (** Latest announced Q-list (recovery only). *)
  granted_known : Qlist.Granted.g;  (** Best-known [L] vector. *)
  na_counter : int;  (** §4.1 period counter (monitored variant only). *)
  qsizes : int list;  (** Moving window of |Q| (monitored variant only). *)
  executed_this_round : bool;  (** For ENQUIRY replies (recovery only). *)
  monitor_buffer : Qlist.t;  (** Requests parked at the monitor. *)
  stash : Qlist.t;
      (** Third-party requests that reached us while we were not the
          arbiter; relayed to the next arbiter we learn of. *)
  token_epoch : int;  (** Highest token epoch witnessed. *)
  election : int;  (** Highest election number witnessed. *)
  enq_round : int;  (** Highest ENQUIRY round seen or started. *)
  recovery : recovery option;
  watching : bool;
      (** Recovery only: we are the {e unique} watcher of the current
          arbiter (the last dispatcher that handed the role to someone
          else). Uniqueness is what makes PROBE-timeout takeover safe:
          two simultaneous self-proclaimed arbiters would regenerate
          two tokens. *)
  amnesiac : bool;
      (** Restarted with no durable state: epoch/election knowledge
          may be arbitrarily stale, so the node refuses to start or
          finish a token regeneration until a live NEW-ARBITER or
          PRIVILEGE re-anchors it. *)
  sync_wait : bool;
      (** Restarted: application requests are parked until the first
          announcement (or token) is absorbed, so a higher epoch out
          there reaches us before our own REQUEST goes out. [T_retry]
          is the escape valve when the system stays silent. *)
  view : view;  (** Current membership view. *)
  joining : bool;
      (** We are outside every view, periodically ([T_view]) knocking
          with JOIN-REQUEST until a commit admits us. *)
  pending_vc : pending_vc option;
      (** Coordinator only: the view change being installed. *)
  last_token_seen : float;
      (** Recovery only: the last instant the live token was in this
          node's hands (received, held through a CS, dispatched or
          regenerated). A WARNING arriving within one
          [Config.token_timeout] of this is staler than the node's own
          knowledge and is ignored — its own dispatch-time watchdog
          covers the interim, and an enquiry round racing a live token
          can regenerate a second one. *)
}

val name : string

val fault_support : Types.fault_support
(** Both [crash_stop] and [message_loss]: the paper's recovery
    machinery (NEW-ARBITER election, quorum-gated token regeneration)
    makes injected crashes and losses part of the modelled
    behaviour. *)

val init : Config.t -> node_id -> state
(** Initial state: [Config.initial_arbiter] starts as the collecting
    arbiter holding the token; everyone else is [Normal]. *)

val rejoin : Config.t -> node_id -> state
(** Post-crash restart state: always a plain participant — never
    resurrects the token or the arbiter role (see
    {!Types.ALGO.rejoin}). With the recovery variant on, the state is
    additionally {!state.amnesiac} and {!state.sync_wait}: a node that
    lost all durable state must not regenerate tokens or issue
    requests until resynchronized. *)

(** The protocol-critical slice of state recovered from a durable
    store ([Dmutex_store]) at restart. *)
type restored = {
  r_epoch : int;  (** Highest token epoch proven durable. *)
  r_election : int;  (** Highest election number proven durable. *)
  r_enq_round : int;  (** Highest ENQUIRY round proven durable. *)
  r_next_seq : int;  (** The node's own request counter. *)
  r_granted : Qlist.Granted.g;  (** Last durable [L] vector. *)
  r_had_token : bool;
      (** Custody was durable at the crash: the token provably died
          with this node. [rejoin_restored] never resurrects the token
          object; the caller reacts by injecting
          [Receive (me, Warning)] so the Section 6 invalidation runs
          against knowledge that cannot over-claim. *)
  r_view : (int * (node_id * string) list) option;
      (** Last durable membership view (epoch, members with address
          metadata): a mid-churn restart rejoins the {e current} view,
          not the birth view. *)
}

val rejoin_restored : Config.t -> node_id -> restored -> state
(** Like {!rejoin}, but seeded from a durable store: the monotone
    counters and the [L] vector come back, so the node is {e not}
    amnesiac — though it still resynchronizes ({!state.sync_wait})
    before issuing its first request. *)

val joiner :
  Config.t -> me:node_id -> seed:node_id -> addr:string -> state
(** State for a brand-new node outside every view: it knows only its
    own identity, its address metadata, and one [seed] member to
    contact. The runtime injects a first [Timer_fired T_view]; every
    firing sends JOIN-REQUEST toward the seed (relayed to the
    token-holding arbiter) and re-arms, until a VIEW-CHANGE commit
    admits the node. Application requests park ({!state.sync_wait})
    until the commit's sync payload re-anchors the counters. *)

val birth_view : Config.t -> view
(** Epoch 0, members [0 .. n-1], empty address metadata. *)

val member_ids : view -> node_id list
val is_member : view -> node_id -> bool

val handle :
  Config.t ->
  now:float ->
  state ->
  (message, timer) input ->
  state * (message, timer) effect_ list
(** One atomic protocol step. See {!Types.ALGO.handle}. *)

val in_cs : state -> bool
val wants_cs : state -> bool

val cs_mode : state -> Types.mode
(** [Shared] only while this node participates in a live shared batch
    (coordinator or READ-GRANTed reader); [Exclusive] otherwise — in
    particular for a solo shared grant, which rides the unchanged
    exclusive path. See {!Types.ALGO.cs_mode}. *)

val wait_edges : state -> (Types.node_id * Types.node_id) list
(** Wait-for edges visible from this node, as [(waiter, holder)]
    pairs: the entries queued in the token's Q-list behind the grant
    currently being served. Empty unless this node holds the token
    with a holder in the CS, so exactly one node per lock contributes
    at any instant; the per-lock union across nodes feeds the
    cross-lock wait-for-graph deadlock detector
    ({!Dmutex_obs.Wfg}). *)

val message_kind : message -> string
(** ["REQUEST"], ["PRIVILEGE"], ["NEW-ARBITER"], ... — the labels used
    in per-kind message accounting. *)

val pp_message : Format.formatter -> message -> unit
val pp_role : Format.formatter -> role -> unit
val pp_state : Format.formatter -> state -> unit
