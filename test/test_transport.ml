(* Frame-codec robustness: reader_loop's failure paths driven by raw
   sockets speaking deliberately broken framing, plus the supervised
   outbound channel (retry, shedding, reconnect-after-close). *)

let addr port = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)

(* A transport under test listening on [port] as node 0 of a 2-node
   peer list, collecting every delivered payload. *)
let listener ~port ~peer_port =
  let received = ref [] in
  let mu = Mutex.create () in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port };
      { Netkit.Transport.host = "127.0.0.1"; port = peer_port };
    |]
  in
  let tr =
    Netkit.Transport.create ~me:0 ~peers
      ~on_frame:(fun ~src ~lock payload ->
        Mutex.lock mu;
        received := (src, lock, payload) :: !received;
        Mutex.unlock mu)
      ()
  in
  let snapshot () =
    Mutex.lock mu;
    let l = List.rev !received in
    Mutex.unlock mu;
    l
  in
  (tr, snapshot)

let connect_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (addr port);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let rec push off =
    if off < Bytes.length b then
      push (off + Unix.write fd b off (Bytes.length b - off))
  in
  push 0

(* A well-formed wire frame: length prefix + Frame header + payload. *)
let good_frame ?(src = 1) ?(lock = "") payload =
  let body = Wire.Frame.encode_header ~src ~lock Wire.Frame.Data ^ payload in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length body));
  Bytes.to_string b ^ body

let length_prefix len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

let wait_for ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* Feed one malformed byte stream to a fresh connection, then prove
   the transport survived it: a subsequent clean connection still
   delivers. *)
let survives_garbage ~port ~peer_port garbage =
  let tr, snapshot = listener ~port ~peer_port in
  let bad = connect_raw port in
  write_all bad garbage;
  (* Give the reader a moment to choke on it. *)
  Thread.delay 0.1;
  (try Unix.close bad with _ -> ());
  let ok = connect_raw port in
  write_all ok (good_frame "after-garbage");
  let delivered =
    wait_for (fun () ->
        List.exists (fun (_, _, p) -> p = "after-garbage") (snapshot ()))
  in
  Unix.close ok;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "garbage never delivered" false
    (List.exists (fun (_, _, p) -> p <> "after-garbage") (snapshot ()));
  Alcotest.(check bool) "clean frame delivered after garbage" true delivered

let test_oversized_length () =
  survives_garbage ~port:8701 ~peer_port:8702
    (length_prefix 100_000_000 ^ "xxxx")

let test_negative_length () =
  survives_garbage ~port:8703 ~peer_port:8704 (length_prefix (-1))

let test_short_frame () =
  (* Body shorter than the 8-byte fixed frame header. *)
  survives_garbage ~port:8705 ~peer_port:8706 (length_prefix 2 ^ "ab")

let test_bad_frame_kind () =
  (* Valid version byte, sender id and (empty) lock key, kind byte 255. *)
  let body = "\002\000\000\000\001\255\000\000payload" in
  survives_garbage ~port:8707 ~peer_port:8708
    (length_prefix (String.length body) ^ body)

let test_truncated_lock_key () =
  (* Lock-length field promises 200 key bytes; the frame ends first. *)
  let body = "\002\000\000\000\001\000\000\200key" in
  survives_garbage ~port:8724 ~peer_port:8725
    (length_prefix (String.length body) ^ body)

let test_version_mismatch () =
  (* A well-formed frame from a peer speaking a future format: the
     version byte must reject it before the kind byte is even read. *)
  let body = "\003\000\000\000\001\000\000\000payload" in
  Alcotest.(check bool) "crafted frame differs only in version" true
    (String.get_uint8 body 0 <> Wire.format_version);
  survives_garbage ~port:8726 ~peer_port:8727
    (length_prefix (String.length body) ^ body)

let test_bad_sender_id () =
  (* src 99 is out of the 2-node peer range. *)
  let body = Wire.Frame.encode_header ~src:99 ~lock:"" Wire.Frame.Data ^ "evil" in
  survives_garbage ~port:8709 ~peer_port:8710
    (length_prefix (String.length body) ^ body)

let test_partial_header_disconnect () =
  (* Peer dies after two bytes of the length prefix. *)
  survives_garbage ~port:8711 ~peer_port:8712 "\000\000"

let test_mid_frame_disconnect () =
  (* Length promises 100 bytes; only 10 arrive before the close. *)
  survives_garbage ~port:8713 ~peer_port:8714 (length_prefix 100 ^ "0123456789")

let test_unreachable_peer_sheds () =
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8715 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8716 };
    |]
  in
  let tr =
    Netkit.Transport.create ~me:0 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  (* Peer 1 never started: the frame is accepted (the writer thread
     owns retrying), then shed once the per-frame budget runs out. *)
  Alcotest.(check bool) "send to dead peer accepted" true
    (Netkit.Transport.send tr ~dst:1 "hello");
  Alcotest.(check bool) "self-send refused" false
    (Netkit.Transport.send tr ~dst:0 "self");
  Alcotest.(check bool) "out-of-range refused" false
    (Netkit.Transport.send tr ~dst:7 "mars");
  let shed =
    wait_for ~timeout:15.0 (fun () ->
        (Netkit.Transport.metrics tr).Netkit.Transport.dropped >= 1)
  in
  Alcotest.(check bool) "frame shed after retry budget" true shed;
  let m = Netkit.Transport.metrics tr in
  Alcotest.(check int) "never counted as sent" 0 m.Netkit.Transport.sent;
  Alcotest.(check bool) "connect attempts counted as retries" true
    (m.Netkit.Transport.retries >= 1);
  Netkit.Transport.close tr;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "send after close refused" false
    (Netkit.Transport.send tr ~dst:1 "late")

let test_lock_key_demux () =
  (* Frames for different lock keys share one connection and come out
     with their key intact — the demultiplexing contract every
     multi-instance node depends on. *)
  let tr, snapshot = listener ~port:8728 ~peer_port:8729 in
  let raw = connect_raw 8728 in
  write_all raw (good_frame ~lock:"orders" "o-payload");
  write_all raw (good_frame ~lock:"billing" "b-payload");
  write_all raw (good_frame "plain");
  let all_in =
    wait_for (fun () -> List.length (snapshot ()) >= 3)
  in
  Unix.close raw;
  Netkit.Transport.close tr;
  Alcotest.(check bool) "all three frames delivered" true all_in;
  let got = snapshot () in
  Alcotest.(check bool) "orders key routed" true
    (List.mem (1, "orders", "o-payload") got);
  Alcotest.(check bool) "billing key routed" true
    (List.mem (1, "billing", "b-payload") got);
  Alcotest.(check bool) "empty key routed" true (List.mem (1, "", "plain") got)

let test_chaos_loss_counted () =
  (* A frame eaten by set_loss reports success to the caller but is
     counted as dropped and never as sent — Simkit.Network semantics
     on live counters. *)
  let tr, _snapshot = listener ~port:8717 ~peer_port:8718 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8717 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8718 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  Netkit.Transport.set_loss sender 1.0;
  for _ = 1 to 10 do
    Alcotest.(check bool) "lost send still reports success" true
      (Netkit.Transport.send sender ~dst:0 "into the void")
  done;
  let m = Netkit.Transport.metrics sender in
  Alcotest.(check int) "all ten counted dropped" 10 m.Netkit.Transport.dropped;
  Alcotest.(check int) "none counted sent" 0 m.Netkit.Transport.sent;
  Netkit.Transport.close sender;
  Netkit.Transport.close tr

let test_reconnect_after_close () =
  (* The receiving endpoint dies and is reborn on the same port; the
     sender's writer thread must reconnect and deliver again. *)
  let tr0, snapshot0 = listener ~port:8719 ~peer_port:8720 in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8719 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8720 };
    |]
  in
  let sender =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  ignore (Netkit.Transport.send sender ~dst:0 "first");
  Alcotest.(check bool) "first frame delivered" true
    (wait_for (fun () -> List.mem (1, "", "first") (snapshot0 ())));
  Netkit.Transport.close tr0;
  Thread.delay 0.1;
  (* Restart the endpoint, then keep sending until a frame lands: the
     first few writes may hit the dead connection and be retried or
     shed, which is exactly the behaviour under test. *)
  let tr0', snapshot0' = listener ~port:8719 ~peer_port:8720 in
  let landed =
    wait_for ~timeout:15.0 (fun () ->
        ignore (Netkit.Transport.send sender ~dst:0 "reborn");
        Thread.delay 0.05;
        List.exists (fun (_, _, p) -> p = "reborn") (snapshot0' ()))
  in
  Alcotest.(check bool) "frame delivered to reborn endpoint" true landed;
  Alcotest.(check bool) "reconnect counted" true
    ((Netkit.Transport.metrics sender).Netkit.Transport.reconnects >= 1);
  Netkit.Transport.close sender;
  Netkit.Transport.close tr0'

let test_one_dead_peer_does_not_stall_others () =
  (* The per-peer channel redesign in one assertion: with peer 1 dead,
     sends to live peer 2 keep flowing immediately. *)
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 8721 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8722 };
      { Netkit.Transport.host = "127.0.0.1"; port = 8723 };
    |]
  in
  let received = ref 0 in
  let mu = Mutex.create () in
  let tr2 =
    Netkit.Transport.create ~me:2 ~peers
      ~on_frame:(fun ~src:_ ~lock:_ _ ->
        Mutex.lock mu;
        incr received;
        Mutex.unlock mu)
      ()
  in
  let tr0 =
    Netkit.Transport.create ~me:0 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  (* Flood the dead peer 1 first, then time deliveries to live peer 2. *)
  for k = 1 to 50 do
    ignore (Netkit.Transport.send tr0 ~dst:1 (Printf.sprintf "dead-%d" k))
  done;
  let t_start = Unix.gettimeofday () in
  for k = 1 to 20 do
    ignore (Netkit.Transport.send tr0 ~dst:2 (Printf.sprintf "live-%d" k))
  done;
  let all =
    wait_for (fun () ->
        Mutex.lock mu;
        let n = !received in
        Mutex.unlock mu;
        n >= 20)
  in
  let elapsed = Unix.gettimeofday () -. t_start in
  Netkit.Transport.close tr0;
  Netkit.Transport.close tr2;
  Alcotest.(check bool) "live peer got all frames" true all;
  Alcotest.(check bool)
    (Printf.sprintf "no head-of-line blocking through dead peer (%.3fs)"
       elapsed)
    true (elapsed < 2.0)

let suite =
  ( "transport",
    [
      Alcotest.test_case "oversized length header" `Quick test_oversized_length;
      Alcotest.test_case "negative length header" `Quick test_negative_length;
      Alcotest.test_case "short (<header) frame" `Quick test_short_frame;
      Alcotest.test_case "unknown frame kind" `Quick test_bad_frame_kind;
      Alcotest.test_case "truncated lock key" `Quick test_truncated_lock_key;
      Alcotest.test_case "frame format version mismatch" `Quick
        test_version_mismatch;
      Alcotest.test_case "lock key demultiplexing" `Quick test_lock_key_demux;
      Alcotest.test_case "out-of-range sender id" `Quick test_bad_sender_id;
      Alcotest.test_case "partial header then disconnect" `Quick
        test_partial_header_disconnect;
      Alcotest.test_case "mid-frame disconnect" `Quick
        test_mid_frame_disconnect;
      Alcotest.test_case "unreachable peer: retry then shed" `Slow
        test_unreachable_peer_sheds;
      Alcotest.test_case "chaos loss counted as dropped" `Quick
        test_chaos_loss_counted;
      Alcotest.test_case "reconnect after endpoint restart" `Slow
        test_reconnect_after_close;
      Alcotest.test_case "dead peer cannot stall live peers" `Quick
        test_one_dead_peer_does_not_stall_others;
    ] )
