(* The domain pool behind every experiment sweep: ordering, exception
   propagation, sequential fallback, nested maps, and the headline
   guarantee — a parallel sweep is bit-for-bit equal to a sequential
   one. *)

let test_ordering () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> x * x) xs)
    (Simkit.Pool.map ~jobs:4 xs ~f:(fun x -> x * x))

let test_edge_shapes () =
  Alcotest.(check (list int)) "empty" []
    (Simkit.Pool.map ~jobs:4 [] ~f:(fun x -> x + 1));
  Alcotest.(check (list int)) "singleton" [ 8 ]
    (Simkit.Pool.map ~jobs:4 [ 7 ] ~f:(fun x -> x + 1));
  Alcotest.(check (list int)) "more jobs than items" [ 2; 3 ]
    (Simkit.Pool.map ~jobs:16 [ 1; 2 ] ~f:(fun x -> x + 1))

let test_sequential_fallback () =
  Alcotest.(check (list int)) "jobs=1 is List.map" [ 4; 2; 3 ]
    (Simkit.Pool.map ~jobs:1 [ 3; 1; 2 ] ~f:(fun x -> x + 1));
  Alcotest.(check (list int)) "init" [ 0; 2; 4 ]
    (Simkit.Pool.init ~jobs:1 3 ~f:(fun i -> 2 * i))

exception Boom of int

let test_exception_propagation () =
  match
    Simkit.Pool.map ~jobs:3 (List.init 8 Fun.id) ~f:(fun i ->
        if i >= 5 then raise (Boom i) else i)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
      (* First failure in input order wins, not first to finish. *)
      Alcotest.(check int) "first failing index" 5 i

let test_pool_survives_exception () =
  (match Simkit.Pool.map ~jobs:2 [ 0; 1 ] ~f:(fun _ -> raise Exit) with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check (list int)) "pool usable afterwards" [ 1; 2; 3 ]
    (Simkit.Pool.map ~jobs:2 [ 0; 1; 2 ] ~f:(fun x -> x + 1))

let test_nested_map () =
  let got =
    Simkit.Pool.map ~jobs:2 [ 0; 10; 20 ] ~f:(fun base ->
        Simkit.Pool.map ~jobs:2 [ 1; 2; 3 ] ~f:(fun k -> base + k))
  in
  Alcotest.(check (list (list int)))
    "nested maps run inline, ordered"
    [ [ 1; 2; 3 ]; [ 11; 12; 13 ]; [ 21; 22; 23 ] ]
    got

let test_jobs_env () =
  let saved = Sys.getenv_opt "DMUTEX_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DMUTEX_JOBS" (Option.value ~default:"" saved))
    (fun () ->
      Unix.putenv "DMUTEX_JOBS" "5";
      Alcotest.(check int) "env override" 5 (Simkit.Pool.jobs ());
      Unix.putenv "DMUTEX_JOBS" "not-a-number";
      Alcotest.(check bool) "garbage falls back to >= 1" true
        (Simkit.Pool.jobs () >= 1);
      Unix.putenv "DMUTEX_JOBS" "0";
      Alcotest.(check bool) "zero falls back to >= 1" true
        (Simkit.Pool.jobs () >= 1))

(* The determinism guarantee the experiments layer relies on: a full
   fig3/4/5 sweep computed under DMUTEX_JOBS=1 and under a parallel
   jobs count is structurally identical, stat for stat. *)
let test_parallel_equals_sequential () =
  let saved = Sys.getenv_opt "DMUTEX_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DMUTEX_JOBS" (Option.value ~default:"" saved))
    (fun () ->
      let sweep () =
        Experiments.fig345 ~n:5 ~requests:800 ~runs:2 ~rates:[ 0.05; 1.0 ] ()
      in
      Unix.putenv "DMUTEX_JOBS" "1";
      let sequential = sweep () in
      Unix.putenv "DMUTEX_JOBS" "3";
      let parallel = sweep () in
      Alcotest.(check bool) "bit-for-bit equal" true (sequential = parallel))

(* Same guarantee for the big-N scale sweep (one Pool task per
   (algorithm, N) point, arenas reset between replicates). [alloc_mb]
   is GC accounting, not simulation output — the one field allowed to
   differ between schedules — so it is zeroed before comparing. *)
let test_scale_parallel_equals_sequential () =
  let saved = Sys.getenv_opt "DMUTEX_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DMUTEX_JOBS" (Option.value ~default:"" saved))
    (fun () ->
      let sweep () =
        Experiments.table_scale ~ns:[ 5; 10 ]
          ~requests_at:(fun ~algorithm:_ ~n -> 2 * n)
          ~replicates:2 ()
        |> List.map (fun (r : Experiments.scale_row) ->
               {
                 r with
                 Experiments.cells =
                   List.map
                     (fun (c : Experiments.scale_cell) ->
                       { c with Experiments.alloc_mb = 0.0 })
                     r.Experiments.cells;
               })
      in
      Unix.putenv "DMUTEX_JOBS" "1";
      let sequential = sweep () in
      Unix.putenv "DMUTEX_JOBS" "3";
      let parallel = sweep () in
      Alcotest.(check bool) "bit-for-bit equal" true (sequential = parallel))

let suite =
  ( "pool",
    [
      Alcotest.test_case "deterministic ordering" `Quick test_ordering;
      Alcotest.test_case "edge shapes" `Quick test_edge_shapes;
      Alcotest.test_case "jobs=1 sequential fallback" `Quick
        test_sequential_fallback;
      Alcotest.test_case "exception propagation" `Quick
        test_exception_propagation;
      Alcotest.test_case "pool survives task exception" `Quick
        test_pool_survives_exception;
      Alcotest.test_case "nested map safety" `Quick test_nested_map;
      Alcotest.test_case "DMUTEX_JOBS resolution" `Quick test_jobs_env;
      Alcotest.test_case "parallel sweep equals sequential" `Slow
        test_parallel_equals_sequential;
      Alcotest.test_case "scale sweep parallel equals sequential" `Slow
        test_scale_parallel_equals_sequential;
    ] )
