test/test_rng.ml: Alcotest Array Float Fun QCheck QCheck_alcotest Rng Simkit
