(** Maekawa's √N quorum algorithm (TOCS 1985), reference [6] of the
    paper. Nodes are arranged in a ⌈√N⌉ grid; a node's quorum is its
    row plus its column, so any two quorums intersect and the common
    voter serializes the two candidates. Includes the full
    INQUIRE / RELINQUISH / FAILED deadlock-avoidance machinery. The
    paper cites Maekawa for its load-balance comparison: the quorum
    work is spread evenly only when request rates are uniform. *)

open Dmutex.Types

(* Every vote-protocol message carries the timestamp of the candidacy
   it concerns: a candidate may release and request again while LOCKED,
   FAILED, INQUIRE or RELINQUISH messages for its previous candidacy
   are still in flight, and an untagged stale message would be counted
   against the wrong candidacy (a phantom vote breaks mutual
   exclusion). *)
type message =
  | Request of { ts : int; j : node_id }
  | Locked of { ts : int }
  | Failed of { ts : int }
  | Inquire of { ts : int }
  | Relinquish of { ts : int }
  | Release of { ts : int }

type timer = |

type state = {
  me : node_id;
  quorum : node_id list;  (* includes [me] *)
  clock : int;
  (* candidate side *)
  my_ts : int option;
  grants : node_id list;
  got_failed : bool;
  pending_inquires : node_id list;
  in_cs : bool;
  pending : int;
  (* voter side *)
  vote : (int * node_id) option;  (* (ts, candidate) currently granted *)
  vq : (int * node_id) list;  (* waiting requests, kept sorted *)
  inquired : bool;  (* an INQUIRE for the current vote is outstanding *)
}

let name = "maekawa"

(* No failure model: the original algorithm assumes reliable nodes and
   channels, so injected crashes or losses must fail loudly rather
   than silently measure behaviour the algorithm never claimed. *)
let fault_support = { crash_stop = false; message_loss = false }

(* Grid quorums: row ∪ column in a ⌈√N⌉ × ⌈√N⌉ layout. With a ragged
   last row some pairs can fail to intersect; in that case node 0 is
   added to every quorum, which restores the intersection property at
   a small cost in load balance. *)
let build_quorums n =
  let k = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let quorum i =
    let r = i / k and c = i mod k in
    let row = List.init k (fun x -> (r * k) + x) in
    let col = List.init k (fun y -> (y * k) + c) in
    List.sort_uniq compare (List.filter (fun j -> j < n) (row @ col))
  in
  let qs = Array.init n quorum in
  let intersects a b = List.exists (fun x -> List.mem x b) a in
  let all_ok = ref true in
  Array.iter
    (fun qi ->
      Array.iter (fun qj -> if not (intersects qi qj) then all_ok := false) qs)
    qs;
  if !all_ok then qs
  else Array.map (fun q -> List.sort_uniq compare (0 :: q)) qs

(* [build_quorums] constructs all N quorums and runs an O(N²·q²)
   all-pairs intersection check, yet [init] needs it once per node —
   without a cache, building an N-node simulation costs O(N³·q²) and
   dominates big-N sweeps. One entry suffices: sweeps create all nodes
   of one size before moving on. An [Atomic] keeps concurrent creates
   from parallel sweep workers racy-but-correct (worst case both
   recompute the same immutable array). *)
let quorum_cache : (int * node_id list array) option Atomic.t = Atomic.make None

let quorums n =
  match Atomic.get quorum_cache with
  | Some (n', qs) when n' = n -> qs
  | _ ->
      let qs = build_quorums n in
      Atomic.set quorum_cache (Some (n, qs));
      qs

let init cfg me =
  {
    me;
    quorum = (quorums cfg.Config.n).(me);
    clock = 0;
    my_ts = None;
    grants = [];
    got_failed = false;
    pending_inquires = [];
    in_cs = false;
    pending = 0;
    vote = None;
    vq = [];
    inquired = false;
  }

let rejoin = init

let in_cs st = st.in_cs

(* No shared-mode path: every grant is exclusive. *)
let cs_mode _ = Exclusive
let wants_cs st = st.my_ts <> None || st.pending > 0

let beats (ts, j) (ts', j') = ts < ts' || (ts = ts' && j < j')
let insert_sorted x l = List.sort compare (x :: l)

(* Candidate: record one more vote; enter the CS on a full quorum. *)
let add_grant st v =
  let grants =
    if List.mem v st.grants then st.grants else v :: st.grants
  in
  let st = { st with grants } in
  if
    st.my_ts <> None && (not st.in_cs)
    && List.length grants = List.length st.quorum
  then ({ st with in_cs = true; pending_inquires = [] }, [ Enter_cs ])
  else (st, [])

(* Voter: grant the vote to the best waiting request, if any. *)
let grant_next st =
  match st.vq with
  | [] -> ({ st with vote = None; inquired = false }, [])
  | ((ts, cand) as best) :: rest ->
      ( { st with vote = Some best; vq = rest; inquired = false },
        [ Send (cand, Locked { ts }) ] )

let rec handle cfg ~now st input =
  match input with
  | Request_cs | Request_shared_cs ->
      if st.my_ts <> None || st.in_cs then
        ({ st with pending = st.pending + 1 }, [])
      else begin
        let ts = st.clock + 1 in
        let st =
          { st with clock = ts; my_ts = Some ts; grants = [];
            got_failed = false; pending_inquires = [] }
        in
        (st, List.map (fun v -> Send (v, Request { ts; j = st.me })) st.quorum)
      end
  | Receive (_, Request { ts; j }) -> begin
      let st = { st with clock = max st.clock ts } in
      match st.vote with
      | None -> ({ st with vote = Some (ts, j) }, [ Send (j, Locked { ts }) ])
      | Some ((_, cj) as cur) ->
          (* A requester must learn it FAILED whenever its request is
             not the best this voter knows of — comparing against the
             current vote alone is not enough: a queued request that
             once beat the vote (and thus got no FAILED) must be failed
             retroactively when a still better one displaces it,
             otherwise two candidates can wait on each other forever. *)
          let prev_best = match st.vq with [] -> None | b :: _ -> Some b in
          let st = { st with vq = insert_sorted (ts, j) st.vq } in
          let beats_queued =
            match prev_best with Some b -> beats (ts, j) b | None -> true
          in
          if beats (ts, j) cur && beats_queued then begin
            let fail_displaced =
              match prev_best with
              | Some ((pts, pj) as p) when beats p cur ->
                  [ Send (pj, Failed { ts = pts }) ]
              | _ -> []
            in
            if not st.inquired then
              ( { st with inquired = true },
                (Send (cj, Inquire { ts = fst cur }) :: fail_displaced) )
            else (st, fail_displaced)
          end
          else (st, [ Send (j, Failed { ts }) ])
    end
  | Receive (v, Locked { ts }) ->
      if st.my_ts = Some ts then add_grant st v else (st, [])
  | Receive (_, Failed { ts }) ->
      if st.my_ts <> Some ts then (st, [])
      else begin
        (* Relinquish every vote a voter asked us about. *)
        let st = { st with got_failed = true } in
        let effs =
          List.map (fun v -> Send (v, Relinquish { ts })) st.pending_inquires
        in
        let grants =
          List.filter (fun v -> not (List.mem v st.pending_inquires)) st.grants
        in
        ({ st with pending_inquires = []; grants }, effs)
      end
  | Receive (v, Inquire { ts }) ->
      if st.my_ts <> Some ts || st.in_cs then (st, [])
        (* stale, or resolved by our RELEASE *)
      else if st.got_failed then
        ( { st with grants = List.filter (fun g -> g <> v) st.grants },
          [ Send (v, Relinquish { ts }) ] )
      else
        (* We may still win: hold the answer until a FAILED arrives. *)
        ({ st with pending_inquires = v :: st.pending_inquires }, [])
  | Receive (j, Relinquish { ts }) -> begin
      (* Our candidate returned the vote: re-queue it and vote for the
         best waiting request. *)
      match st.vote with
      | Some cur when cur = (ts, j) ->
          let st = { st with vq = insert_sorted cur st.vq } in
          grant_next st
      | _ -> (st, [])
    end
  | Receive (j, Release { ts }) -> begin
      match st.vote with
      | Some cur when cur = (ts, j) -> grant_next st
      | _ ->
          (* Not the candidacy we voted for: a stale duplicate. *)
          (st, [])
    end
  | Cs_done ->
      let released = match st.my_ts with Some ts -> ts | None -> -1 in
      let effs =
        List.map (fun v -> Send (v, Release { ts = released })) st.quorum
      in
      let st =
        { st with in_cs = false; my_ts = None; grants = [];
          got_failed = false; pending_inquires = [] }
      in
      if st.pending > 0 then
        let st, effs' =
          handle cfg ~now { st with pending = st.pending - 1 } Request_cs
        in
        (st, effs @ effs')
      else (st, effs)
  | Timer_fired _ -> (st, [])

let message_kind = function
  | Request _ -> "REQUEST"
  | Locked _ -> "LOCKED"
  | Failed _ -> "FAILED"
  | Inquire _ -> "INQUIRE"
  | Relinquish _ -> "RELINQUISH"
  | Release _ -> "RELEASE"

let pp_message ppf = function
  | Request { ts; j } -> Format.fprintf ppf "REQUEST(%d,%d)" ts j
  | Locked { ts } -> Format.fprintf ppf "LOCKED(%d)" ts
  | Failed { ts } -> Format.fprintf ppf "FAILED(%d)" ts
  | Inquire { ts } -> Format.fprintf ppf "INQUIRE(%d)" ts
  | Relinquish { ts } -> Format.fprintf ppf "RELINQUISH(%d)" ts
  | Release { ts } -> Format.fprintf ppf "RELEASE(%d)" ts

let pp_state ppf st =
  let pair (ts, c) = Printf.sprintf "(%d,%d)" ts c in
  Format.fprintf ppf
    "node %d: ts=%s grants=[%s]/%d failed=%b pinq=[%s] vote=%s vq=[%s] inq=%b%s"
    st.me
    (match st.my_ts with Some t -> string_of_int t | None -> "-")
    (String.concat ";" (List.map string_of_int st.grants))
    (List.length st.quorum) st.got_failed
    (String.concat ";" (List.map string_of_int st.pending_inquires))
    (match st.vote with Some v -> pair v | None -> "-")
    (String.concat ";" (List.map pair st.vq))
    st.inquired
    (if st.in_cs then " IN-CS" else "")
