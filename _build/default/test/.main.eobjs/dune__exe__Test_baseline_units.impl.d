test/test_baseline_units.ml: Alcotest Baselines Config Dmutex List
