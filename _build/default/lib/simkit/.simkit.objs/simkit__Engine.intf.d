lib/simkit/engine.mli:
