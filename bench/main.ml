(* The benchmark harness regenerates every quantitative artefact of
   the paper (the per-experiment index lives in DESIGN.md):

     fig3:messages        Figure 3   messages/CS vs lambda, Tcoll 0.1/0.2
     fig4:delay           Figure 4   delay/CS vs lambda
     fig5:forwarded       Figure 5   forwarded fraction vs lambda
     fig6:comparison      Figure 6   vs Ricart-Agrawala and Singhal
     table:light-load     Eq. 1-2    (N^2-1)/N across N
     table:heavy-load     Eq. 4-5    3 - 2/N across N
     table:service-time   Eq. 3, 6   delay bounds across N
     table:monitor        Section 4  starvation-free overhead
     table:recovery       Section 6  fault drills
     table:all-algorithms Section 2.4/3.3 context
     table:ablations      DESIGN.md  tuning + broadcast suppression

   plus one Bechamel micro-benchmark per experiment kernel, so a
   performance regression in the simulator or the protocol shows up
   next to the numbers it would distort.

   Sweeps fan out over a domain pool (Simkit.Pool): DMUTEX_JOBS caps
   the parallelism (1 forces sequential; output is bit-for-bit
   identical either way). Each experiment reports its wall-clock, and
   DMUTEX_BENCH_JSON=path additionally writes a machine-readable
   summary (per-experiment seconds, per-kernel ns/run, jobs count) so
   later runs can be diffed against a recorded baseline.

   DMUTEX_BENCH_REQUESTS scales the per-point simulation length
   (default 50_000; the paper used 1_000_000 — set it that high for a
   full-fidelity run). DMUTEX_BENCH_QUICK=1 shrinks everything for a
   smoke run. *)

let fmt = Format.std_formatter

let quick = Sys.getenv_opt "DMUTEX_BENCH_QUICK" = Some "1"

(* DMUTEX_BENCH_ONLY=lab (comma-separated: figures, tables, lab,
   derived, rw, sharded, client, micro) restricts the run to named
   sections — the nightly lab workflow regenerates only the big-N
   tables without paying for the live-socket experiments. The JSON
   summary then lacks the skipped sections' derived metrics, so its
   gate run needs [--allow-missing]. *)
let only_sections =
  match Sys.getenv_opt "DMUTEX_BENCH_ONLY" with
  | None | Some "" -> None
  | Some s ->
      Some (List.map String.trim (String.split_on_char ',' s))

let section name =
  match only_sections with None -> true | Some l -> List.mem name l

let requests =
  match Sys.getenv_opt "DMUTEX_BENCH_REQUESTS" with
  | Some s -> ( try int_of_string s with _ -> 50_000)
  | None -> if quick then 2_000 else 50_000

let runs = if quick then 2 else 3
let rates = if quick then [ 0.01; 0.2; 2.0 ] else Experiments.default_rates
let line () = Format.fprintf fmt "@."

(* Wall-clock per experiment, printed inline and recorded for the
   JSON summary. *)
let timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  timings := (name, dt) :: !timings;
  Format.fprintf fmt "   [%s: %.2f s wall]@.@." name dt;
  r

let figures () =
  let f3, f4, f5 =
    timed "fig3-5" (fun () -> Experiments.fig345 ~requests ~runs ~rates ())
  in
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:"fig3:messages — average messages per CS (paper Fig. 3)" f3;
  line ();
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:"fig4:delay — average delay per CS, seconds (paper Fig. 4)" f4;
  line ();
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:"fig5:forwarded — forwarded fraction of messages (paper Fig. 5)"
    f5;
  line ();
  let f6 =
    timed "fig6" (fun () ->
        Experiments.fig6_comparison ~requests ~runs ~rates ())
  in
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:
      "fig6:comparison — messages per CS vs Ricart-Agrawala and Singhal \
       (paper Fig. 6)"
    f6;
  line ()

let tables () =
  let light_load =
    timed "table:light-load" (fun () ->
        Experiments.table_light_load ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_bounds fmt
    ~title:"table:light-load — Eq. 1: M = (N^2-1)/N at light load" light_load;
  line ();
  let heavy_load =
    timed "table:heavy-load" (fun () ->
        Experiments.table_heavy_load ~requests ~runs ())
  in
  Experiments.print_bounds fmt
    ~title:"table:heavy-load — Eq. 4: M = 3 - 2/N at saturation" heavy_load;
  line ();
  let light, heavy =
    timed "table:service-time" (fun () ->
        Experiments.table_service_time ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_bounds fmt
    ~title:"table:service-time — Eq. 3 (light load delay)" light;
  line ();
  Experiments.print_bounds fmt
    ~title:
      "table:service-time — Eq. 6 (heavy load; models a mid-cycle arrival, \
       measured value is a full rotation — see EXPERIMENTS.md)"
    heavy;
  line ();
  let monitor =
    timed "table:monitor" (fun () ->
        Experiments.table_monitor_overhead ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:"table:monitor — Section 4.1 starvation-free overhead" monitor;
  line ();
  let recovery = timed "table:recovery" Experiments.table_recovery in
  Experiments.print_recovery fmt recovery;
  line ();
  let all_algorithms =
    timed "table:all-algorithms" (fun () ->
        Experiments.table_all_algorithms ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_algorithms fmt all_algorithms;
  line ();
  let collection =
    timed "table:ablations:collection" (fun () ->
        Experiments.table_collection_tuning ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_sweep ~xlabel:"Tcoll" fmt
    ~title:"table:ablations — collection-phase tuning at lambda=0.2"
    collection;
  line ();
  let skip_broadcast =
    timed "table:ablations:skip-broadcast" (fun () ->
        Experiments.table_skip_broadcast ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:"table:ablations — Section 3.1 NEW-ARBITER suppression"
    skip_broadcast;
  line ();
  let forwarding =
    timed "table:ablations:forwarding" (fun () ->
        Experiments.table_forwarding_tuning ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_sweep ~xlabel:"Tfwd" fmt
    ~title:"table:ablations — forwarding-phase tuning at lambda=0.2"
    forwarding;
  line ();
  let balance =
    timed "table:load-balance" (fun () ->
        Experiments.table_load_balance ~requests:(requests / 2) ())
  in
  Experiments.print_balance fmt balance;
  line ();
  let fairness =
    timed "table:fairness" (fun () ->
        Experiments.table_fairness ~requests:(requests / 2) ())
  in
  Experiments.print_fairness fmt fairness;
  line ();
  let topology =
    timed "table:topology" (fun () ->
        Experiments.table_topology ~requests:(requests / 2) ())
  in
  Experiments.print_topology fmt topology;
  line ();
  let delay_model =
    timed "table:delay-model" (fun () ->
        Experiments.table_delay_model ~requests:(requests / 2) ~runs ())
  in
  Experiments.print_sweep ~xlabel:"lambda" fmt
    ~title:
      "table:delay-model — gated-M/D/1 interpolation vs simulation        (beyond-paper extension)"
    delay_model;
  line ();
  let mix =
    timed "table:message-mix" (fun () ->
        Experiments.table_message_mix ~requests:(requests / 2) ())
  in
  Experiments.print_message_mix fmt mix;
  line ()

(* Everything the JSON summary embeds beyond timings: derived
   per-experiment reports, keyed under "derived". Populated by the lab
   tables and the live experiments below. *)
let derived_reports : (string * Dmutex_obs.Json.t) list ref = ref []

(* ------------------------------------------------------------------ *)
(* Big-N comparison lab: table:scale, table:wan, table:faults. The
   derived rows are embedded in the JSON summary (schema 3) so the
   gate can hold the dmutex Eq. 4 band at every N and watch the
   scaling exponent against the committed baseline. *)

let scale_json ~replicates (rows : Experiments.scale_row list) =
  let open Dmutex_obs.Json in
  let cell (c : Experiments.scale_cell) =
    Obj
      [
        ("n", Num (float_of_int c.Experiments.n_nodes));
        ("messages_per_cs", Num c.Experiments.msgs.Experiments.mean);
        ("messages_ci95", Num c.Experiments.msgs.Experiments.ci95);
        ("mean_delay", Num c.Experiments.dly.Experiments.mean);
        ("alloc_mb", Num c.Experiments.alloc_mb);
      ]
  in
  Obj
    [
      ("replicates", Num (float_of_int replicates));
      ( "rows",
        List
          (List.map
             (fun (r : Experiments.scale_row) ->
               Obj
                 [
                   ("algorithm", Str r.Experiments.algorithm);
                   ("exponent", Num r.Experiments.exponent);
                   ("cells", List (List.map cell r.Experiments.cells));
                 ])
             rows) );
    ]

let wan_json (rows : Experiments.wan_row list) =
  let open Dmutex_obs.Json in
  let region (s : Experiments.wan_region_stats) =
    Obj
      [
        ("region", Num (float_of_int s.Experiments.region));
        ("grants", Num (float_of_int s.Experiments.grants));
        ("p50", Num s.Experiments.p50);
        ("p95", Num s.Experiments.p95);
        ("p99", Num s.Experiments.p99);
      ]
  in
  List
    (List.map
       (fun (r : Experiments.wan_row) ->
         Obj
           [
             ("algorithm", Str r.Experiments.wan_algorithm);
             ("scenario", Str r.Experiments.scenario);
             ("messages_per_cs", Num r.Experiments.wan_msgs);
             ("mean_delay", Num r.Experiments.wan_mean_delay);
             ("regions", List (List.map region r.Experiments.regions));
           ])
       rows)

let faults_json (rows : Experiments.fault_row list) =
  let open Dmutex_obs.Json in
  List
    (List.map
       (fun (r : Experiments.fault_row) ->
         Obj
           [
             ("algorithm", Str r.Experiments.fault_algorithm);
             ("supported", Bool r.Experiments.supported);
             ("completed", Num (float_of_int r.Experiments.fault_completed));
             ("messages_per_cs", Num r.Experiments.fault_msgs);
             ("mean_delay", Num r.Experiments.fault_mean_delay);
             ("max_delay", Num r.Experiments.fault_max_delay);
             ("unserved", Num (float_of_int r.Experiments.fault_unserved));
           ])
       rows)

let lab () =
  let replicates = if quick then 1 else 3 in
  let scale =
    timed "table:scale" (fun () -> Experiments.table_scale ~replicates ())
  in
  Experiments.print_scale fmt scale;
  line ();
  let wan_n = if quick then 12 else 24 in
  let wan_requests = if quick then 1_500 else 6_000 in
  let wan =
    timed "table:wan" (fun () ->
        Experiments.table_wan ~n:wan_n ~requests:wan_requests ())
  in
  Experiments.print_wan fmt wan;
  line ();
  let fault_n = if quick then 10 else 20 in
  let fault_requests = if quick then 1_000 else 4_000 in
  let faults =
    timed "table:faults" (fun () ->
        Experiments.table_faults ~n:fault_n ~requests:fault_requests ())
  in
  Experiments.print_faults fmt faults;
  line ();
  derived_reports :=
    ("faults", faults_json faults) :: ("wan", wan_json wan)
    :: ("scale", scale_json ~replicates scale)
    :: !derived_reports

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the kernels behind each experiment.      *)

open Bechamel
open Toolkit
module RB = Dmutex.Sim_runner.Make (Dmutex.Basic)
module RM = Dmutex.Sim_runner.Make (Dmutex.Monitored)
module RRA = Dmutex.Sim_runner.Make (Baselines.Ricart_agrawala)

let micro_tests =
  let cfg10 = Dmutex.Basic.config ~n:10 () in
  [
    (* fig3/4/5 kernel: one saturated epoch (10 CSs) of the basic
       algorithm in the simulator. *)
    Test.make ~name:"fig3-5:sim-epoch-basic"
      (Staged.stage (fun () ->
           ignore (RB.run_saturated ~seed:1 ~requests:10 cfg10)));
    (* fig6 kernel: the comparison's heaviest comparator. *)
    Test.make ~name:"fig6:sim-epoch-ricart"
      (Staged.stage (fun () ->
           ignore
             (RRA.run_saturated ~seed:1 ~requests:10
                (Dmutex.Types.Config.default ~n:10))));
    (* table:monitor kernel: one monitored epoch. *)
    Test.make ~name:"table-monitor:sim-epoch-monitored"
      (Staged.stage (fun () ->
           ignore
             (RM.run_saturated ~seed:1 ~requests:10
                (Dmutex.Monitored.config ~n:10 ()))));
    (* Protocol step: a request landing at a collecting arbiter. *)
    (let st = Dmutex.Protocol.init cfg10 0 in
     let req =
       Dmutex.Protocol.Request (Dmutex.Qlist.entry ~node:3 ~seq:0 ())
     in
     Test.make ~name:"kernel:protocol-handle"
       (Staged.stage (fun () ->
            ignore
              (Dmutex.Protocol.handle cfg10 ~now:0.0 st
                 (Dmutex.Types.Receive (3, req))))));
    (* Wire codec: the token message that dominates traffic. *)
    (let tok =
       Dmutex.Protocol.Privilege
         {
           Dmutex.Protocol.tq =
             List.init 10 (fun i -> Dmutex.Qlist.entry ~node:i ~seq:4 ());
           granted = Array.make 10 3;
           epoch = 1;
           election = 99;
           vepoch = 0;
         }
     in
     let enc = Wire.Protocol_codec.encode tok in
     Test.make ~name:"kernel:codec-roundtrip"
       (Staged.stage (fun () -> ignore (Wire.Protocol_codec.decode enc))));
    (* Engine: schedule + fire one event. *)
    (let e = Simkit.Engine.create () in
     Test.make ~name:"kernel:engine-event"
       (Staged.stage (fun () ->
            ignore (Simkit.Engine.schedule e ~delay:0.0 (fun _ -> ()));
            ignore (Simkit.Engine.step e))));
    (* Transport flush: serialize a 16-frame coalesced batch (a
       request payload per frame, pooled buffer, no per-frame
       allocation) and push it through one write syscall. *)
    (let payload =
       Wire.Protocol_codec.encode
         (Dmutex.Protocol.Request (Dmutex.Qlist.entry ~node:3 ~seq:7 ()))
     in
     let fb = Netkit.Transport.Flush.create () in
     let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
     Test.make ~name:"kernel:transport-flush"
       (Staged.stage (fun () ->
            Netkit.Transport.Flush.reset fb;
            for i = 0 to 15 do
              Netkit.Transport.Flush.add_frame fb ~src:1
                ~lock:(Printf.sprintf "shard-%d" (i land 7))
                Wire.Frame.Data payload
            done;
            ignore (Netkit.Transport.Flush.write fb devnull ~pos:0))));
  ]

(* ------------------------------------------------------------------ *)
(* Derived per-CS accounting through the observability registry: the
   same canonical series a live cluster exposes, derived the same way
   (Dmutex_obs.Report), embedded into the JSON summary and enforced by
   the CI regression gate (bench/gate.ml). The sim's own outcome
   counter rides along as a cross-check: the registry-derived value
   and the simulator's native count must agree. *)

let derived () =
  let open Dmutex_obs in
  let n = 10 in
  let cfg = Dmutex.Basic.config ~n () in
  let one key ~predicted run =
    let reg = Registry.create () in
    let (outcome : Dmutex.Sim_runner.outcome) =
      timed ("derived:" ^ key) (fun () -> run reg)
    in
    let report = Report.derive (Registry.snapshot reg) in
    Format.fprintf fmt
      "derived:%s — %a@.   (sim native %.3f msgs/CS, analysis predicts \
       %.3f)@.@."
      key Report.pp report outcome.Dmutex.Sim_runner.messages_per_cs predicted;
    let json =
      match Report.to_json report with
      | Json.Obj fields ->
          Json.Obj
            (fields
            @ [
                ("predicted_messages_per_cs", Json.Num predicted);
                ( "sim_messages_per_cs",
                  Json.Num outcome.Dmutex.Sim_runner.messages_per_cs );
                ("n", Json.Num (float_of_int n));
              ])
      | j -> j
    in
    derived_reports := (key, json) :: !derived_reports
  in
  (* Saturation: Eq. 4, M = 3 - 2/N. *)
  one "high_load"
    ~predicted:(3.0 -. (2.0 /. float_of_int n))
    (fun reg ->
      RB.run_saturated ~seed:11 ~requests:(min requests 5_000) ~obs:reg cfg);
  (* Light load: Eq. 1, M = (N^2 - 1)/N. *)
  one "light_load"
    ~predicted:(float_of_int ((n * n) - 1) /. float_of_int n)
    (fun reg ->
      RB.run_poisson ~seed:11 ~rate:0.01
        ~requests:(min (requests / 2) 2_000)
        ~obs:reg cfg)

(* ------------------------------------------------------------------ *)
(* Sharded throughput: the lock namespace measured live. K independent
   locks on an N-node loopback cluster (real sockets, one multiplexed
   transport per node), every node driving a closed loop on every
   lock. Reports aggregate critical sections per second and the
   per-lock messages-per-CS — each shard must stay in the same Eq. 4
   band as a single-lock cluster, making the multiplexing provably
   free in protocol messages. *)

module SCluster = Netkit.Cluster.Make (Dmutex.Resilient) (Wire.Protocol_codec)

let sharded () =
  let open Dmutex_obs in
  let n = 5 in
  let k = 8 in
  (* Enough rounds per (node, lock) pair that the free startup grants
     cannot drag the per-lock mean below the Eq. 4 band. *)
  let rounds = if quick then 12 else 25 in
  let locks = List.init k (fun i -> Printf.sprintf "shard-%d" i) in
  (* Tight collection timers: the reactor transport coalesces the
     frames of a protocol step (and anything else in the same flush
     window) into single writes, so the paper's batching no longer
     needs a long T_collect to keep syscall costs down — the timer can
     be latency-sized instead of throughput-sized. *)
  let cfg =
    {
      (Dmutex.Resilient.config ~n ()) with
      Dmutex.Types.Config.t_collect = 0.002;
      t_forward = 0.002;
    }
  in
  let cluster, elapsed, timeouts =
    timed "sharded:throughput" (fun () ->
        let cluster = SCluster.launch ~base_port:8901 ~locks cfg in
        let timeouts = Atomic.make 0 in
        let t0 = Unix.gettimeofday () in
        let worker i lock () =
          for _ = 1 to rounds do
            match
              SCluster.Node.with_lock ~timeout:30.0 ~lock
                (SCluster.node cluster i) (fun () -> ())
            with
            | Some () -> ()
            | None -> Atomic.incr timeouts
          done
        in
        let threads =
          List.concat_map
            (fun lock ->
              List.init n (fun i -> Thread.create (worker i lock) ()))
            locks
        in
        List.iter Thread.join threads;
        (cluster, Unix.gettimeofday () -. t0, Atomic.get timeouts))
  in
  let report = SCluster.obs_report cluster in
  let by_lock = SCluster.obs_report_by_lock cluster in
  SCluster.shutdown cluster;
  let cs_per_sec =
    if elapsed > 0.0 then float_of_int report.Report.cs_entries /. elapsed
    else 0.0
  in
  Format.fprintf fmt
    "sharded:throughput — %d locks x %d nodes: %d CS in %.2f s (%.1f CS/s \
     aggregate), %.3f msgs/CS, %d timeouts@."
    k n report.Report.cs_entries elapsed cs_per_sec
    report.Report.messages_per_cs timeouts;
  List.iter
    (fun (lock, (r : Report.t)) ->
      Format.fprintf fmt "   %-10s %4d CS  %.3f msgs/CS@." lock
        r.Report.cs_entries r.Report.messages_per_cs)
    by_lock;
  line ();
  let json =
    Json.Obj
      [
        ("locks", Json.Num (float_of_int k));
        ("nodes", Json.Num (float_of_int n));
        ("cs_entries", Json.Num (float_of_int report.Report.cs_entries));
        ("cs_per_sec", Json.Num cs_per_sec);
        ("messages_per_cs", Json.Num report.Report.messages_per_cs);
        ("timeouts", Json.Num (float_of_int timeouts));
        ( "per_lock",
          Json.Obj
            (List.map
               (fun (lock, (r : Report.t)) ->
                 ( lock,
                   Json.Obj
                     [
                       ("cs_entries", Json.Num (float_of_int r.Report.cs_entries));
                       ("messages_per_cs", Json.Num r.Report.messages_per_cs);
                     ] ))
               by_lock) );
      ]
  in
  derived_reports := ("sharded", json) :: !derived_reports

(* ------------------------------------------------------------------ *)
(* Client swarm: the session layer measured live. M ≫ N thin clients
   (each a Session_client over loopback TCP) hammer K locks through
   the session services of an N-node cluster. Reports the aggregate
   grant rate and — the acceptance criterion — the protocol
   messages-per-CS, which must stay in the same Eq. 4 band as a
   clientless cluster: sessions multiplex onto the node's token
   passing, they add zero protocol messages. *)

module SSession = Netkit.Session.Make (Dmutex.Resilient) (Wire.Protocol_codec)

let client_swarm () =
  let open Dmutex_obs in
  let n = 5 in
  let k = 4 in
  let clients = if quick then 48 else 200 in
  let rounds = if quick then 2 else 3 in
  let locks = List.init k (fun i -> Printf.sprintf "swarm-%d" i) in
  let cfg =
    {
      (Dmutex.Resilient.config ~n ()) with
      Dmutex.Types.Config.t_collect = 0.002;
      t_forward = 0.002;
    }
  in
  let grants = Atomic.make 0 and failures = Atomic.make 0 in
  let cluster, elapsed =
    timed "client:swarm" (fun () ->
        let cluster = SCluster.launch ~base_port:8951 ~locks cfg in
        let servers =
          Array.init n (fun i ->
              SSession.create
                ~fencing:Dmutex_store.Protocol_view.fencing_of_state
                ~node:(SCluster.node cluster i)
                ~addr:{ Netkit.Transport.host = "127.0.0.1"; port = 0 }
                ())
        in
        let addrs =
          Array.to_list
            (Array.map
               (fun s ->
                 { Netkit.Transport.host = "127.0.0.1"; port = SSession.port s })
               servers)
        in
        let t0 = Unix.gettimeofday () in
        let worker c () =
          let cl =
            Netkit.Session_client.connect ~seed:(0x5eed + c) ~addrs ()
          in
          let lock = Printf.sprintf "swarm-%d" (c mod k) in
          for _ = 1 to rounds do
            match
              Netkit.Session_client.with_lock ~timeout:60.0 ~lock cl
                (fun ~fencing:_ -> ())
            with
            | Ok () -> Atomic.incr grants
            | Error _ -> Atomic.incr failures
          done;
          Netkit.Session_client.close cl
        in
        let threads = List.init clients (fun c -> Thread.create (worker c) ()) in
        List.iter Thread.join threads;
        let elapsed = Unix.gettimeofday () -. t0 in
        Array.iter SSession.shutdown servers;
        (cluster, elapsed))
  in
  let report = SCluster.obs_report cluster in
  SCluster.shutdown cluster;
  let granted = Atomic.get grants and failed = Atomic.get failures in
  let acq_per_sec =
    if elapsed > 0.0 then float_of_int granted /. elapsed else 0.0
  in
  Format.fprintf fmt
    "client:swarm — %d clients x %d rounds over %d locks, %d nodes: %d \
     grants in %.2f s (%.1f acq/s), %.3f protocol msgs/CS, %d failures@."
    clients rounds k n granted elapsed acq_per_sec
    report.Report.messages_per_cs failed;
  line ();
  let json =
    Json.Obj
      [
        ("clients", Json.Num (float_of_int clients));
        ("nodes", Json.Num (float_of_int n));
        ("locks", Json.Num (float_of_int k));
        ("grants", Json.Num (float_of_int granted));
        ("failures", Json.Num (float_of_int failed));
        ("acq_per_sec", Json.Num acq_per_sec);
        ("messages_per_cs", Json.Num report.Report.messages_per_cs);
      ]
  in
  derived_reports := ("client", json) :: !derived_reports

(* ------------------------------------------------------------------ *)
(* Read-write throughput: the shared-grant batching quantified. A
   saturated cluster under the read-write policy with a 90/10
   read-heavy mix serves maximal reader runs concurrently under one
   grant batch, so CS throughput must come out well above — the CI
   floor says at least twice — the same workload served exclusively.
   Same seed for both runs: the only variable is the mode mix. *)

module RW = Dmutex.Sim_runner.Make (Dmutex.Prioritized)

let rw_throughput () =
  let open Dmutex_obs in
  let n = 8 in
  let reqs = min requests 20_000 in
  let cfg = Dmutex.Prioritized.rw_config ~n () in
  let rw, excl =
    timed "rw:throughput" (fun () ->
        ( RW.run_saturated ~seed:21 ~requests:reqs ~read_fraction:0.9 cfg,
          RW.run_saturated ~seed:21 ~requests:reqs cfg ))
  in
  let rate (o : Dmutex.Sim_runner.outcome) =
    if o.sim_time > 0.0 then float_of_int o.completed /. o.sim_time else 0.0
  in
  let speedup = if rate excl > 0.0 then rate rw /. rate excl else 0.0 in
  let batches =
    match List.assoc_opt "read-batch" rw.notes with Some k -> k | None -> 0
  in
  Format.fprintf fmt
    "rw:throughput — %d nodes saturated, 90%% shared: %.1f CS/s vs %.1f \
     CS/s exclusive-only (speedup %.2fx), %d reader batches, %d violations@."
    n (rate rw) (rate excl) speedup batches rw.safety_violations;
  line ();
  let json =
    Json.Obj
      [
        ("nodes", Json.Num (float_of_int n));
        ("read_fraction", Json.Num 0.9);
        ("cs_per_sec", Json.Num (rate rw));
        ("exclusive_cs_per_sec", Json.Num (rate excl));
        ("speedup", Json.Num speedup);
        ("read_batches", Json.Num (float_of_int batches));
        ("messages_per_cs", Json.Num rw.messages_per_cs);
        ("safety_violations", Json.Num (float_of_int rw.safety_violations));
      ]
  in
  derived_reports := ("rw", json) :: !derived_reports

let kernel_estimates : (string * float) list ref = ref []

let run_micro () =
  Format.fprintf fmt "== micro-benchmarks (Bechamel, monotonic clock) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              kernel_estimates := (name, est) :: !kernel_estimates;
              Format.fprintf fmt "%-36s %12.1f ns/run@." name est
          | _ -> Format.fprintf fmt "%-36s (no estimate)@." name)
        results)
    micro_tests;
  line ()

(* ------------------------------------------------------------------ *)
(* Machine-readable summary (DMUTEX_BENCH_JSON=path).                  *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~total =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"schema\": 3,\n");
  add (Printf.sprintf "  \"quick\": %b,\n" quick);
  add (Printf.sprintf "  \"requests_per_point\": %d,\n" requests);
  add (Printf.sprintf "  \"runs\": %d,\n" runs);
  add (Printf.sprintf "  \"rates\": %d,\n" (List.length rates));
  add (Printf.sprintf "  \"jobs\": %d,\n" (Simkit.Pool.jobs ()));
  add "  \"experiments\": [\n";
  let exps = List.rev !timings in
  List.iteri
    (fun i (name, dt) ->
      add
        (Printf.sprintf "    {\"name\": \"%s\", \"seconds\": %.6f}%s\n"
           (json_escape name) dt
           (if i = List.length exps - 1 then "" else ",")))
    exps;
  add "  ],\n";
  add "  \"kernels\": [\n";
  let kernels = List.rev !kernel_estimates in
  List.iteri
    (fun i (name, est) ->
      add
        (Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %.2f}%s\n"
           (json_escape name) est
           (if i = List.length kernels - 1 then "" else ",")))
    kernels;
  add "  ],\n";
  add "  \"derived\": {\n";
  let ds = List.rev !derived_reports in
  List.iteri
    (fun i (key, json) ->
      (* Re-indent the pretty-printed report to sit two levels deep. *)
      let pretty = Dmutex_obs.Json.to_string_pretty json in
      let indented =
        String.concat "\n    " (String.split_on_char '\n' pretty)
      in
      add
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape key) indented
           (if i = List.length ds - 1 then "" else ",")))
    ds;
  add "  },\n";
  add (Printf.sprintf "  \"total_seconds\": %.6f\n" total);
  add "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

let () =
  Format.fprintf fmt
    "dmutex bench — requests/point=%d runs=%d rates=%d jobs=%d%s@.@." requests
    runs (List.length rates) (Simkit.Pool.jobs ())
    (if quick then " (QUICK mode)" else "");
  let t0 = Unix.gettimeofday () in
  if section "figures" then figures ();
  if section "tables" then tables ();
  if section "lab" then lab ();
  if section "derived" then derived ();
  if section "rw" then rw_throughput ();
  if section "sharded" then sharded ();
  if section "client" then client_swarm ();
  if section "micro" then run_micro ();
  let total = Unix.gettimeofday () -. t0 in
  Format.fprintf fmt "total wall-clock: %.2f s (jobs=%d)@." total
    (Simkit.Pool.jobs ());
  (match Sys.getenv_opt "DMUTEX_BENCH_JSON" with
  | Some path when path <> "" ->
      write_json path ~total;
      Format.fprintf fmt "wrote %s@." path
  | Some _ | None -> ());
  Format.fprintf fmt "done.@."
