type severity = Debug | Info | Warn | Error

type event = {
  seq : int;
  ts : float;
  severity : severity;
  name : string;
  fields : (string * string) list;
}

type sink = {
  mu : Mutex.t;
  ring : event option array;
  mutable total : int;
}

(* Process-wide sequence: totally orders events across sinks even when
   the wall clock steps backwards. *)
let next_seq = Atomic.make 0

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Events.create: capacity must be >= 1";
  { mu = Mutex.create (); ring = Array.make capacity None; total = 0 }

let emit t ?(severity = Info) ?(fields = []) name =
  let e =
    {
      seq = Atomic.fetch_and_add next_seq 1;
      ts = Unix.gettimeofday ();
      severity;
      name;
      fields;
    }
  in
  Mutex.lock t.mu;
  t.ring.(t.total mod Array.length t.ring) <- Some e;
  t.total <- t.total + 1;
  Mutex.unlock t.mu

let capacity t = Array.length t.ring

let total t =
  Mutex.lock t.mu;
  let n = t.total in
  Mutex.unlock t.mu;
  n

let events t =
  Mutex.lock t.mu;
  let cap = Array.length t.ring in
  let n = min t.total cap in
  let first = t.total - n in
  let out =
    List.init n (fun i ->
        match t.ring.((first + i) mod cap) with
        | Some e -> e
        | None -> assert false)
  in
  Mutex.unlock t.mu;
  out

let string_of_severity = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let to_jsonl e =
  (* Fields live in their own object so user keys can never collide
     with the envelope (seq/ts/severity/name). *)
  let fields = List.map (fun (k, v) -> (k, Json.Str v)) e.fields in
  Json.to_string
    (Json.Obj
       [
         ("seq", Json.Num (float_of_int e.seq));
         ("ts", Json.Num e.ts);
         ("severity", Json.Str (string_of_severity e.severity));
         ("name", Json.Str e.name);
         ("fields", Json.Obj fields);
       ])

let flush t oc =
  let evs = events t in
  let tot = total t in
  let header =
    Json.Obj
      [
        ("trace_header", Json.Bool true);
        ("total", Json.Num (float_of_int tot));
        ("retained", Json.Num (float_of_int (List.length evs)));
        ("capacity", Json.Num (float_of_int (capacity t)));
      ]
  in
  output_string oc (Json.to_string header);
  output_char oc '\n';
  List.iter
    (fun e ->
      output_string oc (to_jsonl e);
      output_char oc '\n')
    evs;
  Stdlib.flush oc

let flush_file t path =
  match open_out path with
  | exception _ -> ()
  | oc ->
      (try flush t oc with _ -> ());
      close_out_noerr oc

let attach_at_exit t path = at_exit (fun () -> flush_file t path)
