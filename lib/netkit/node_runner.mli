(** Host one protocol state machine on a real network.

    The same pure {!Dmutex.Types.ALGO} implementations that the
    simulator and the model checker drive are run here over framed TCP
    ({!Transport}) with wall-clock timers, turning the paper's
    algorithm into a usable distributed lock. Timers use
    earliest-deadline sleeping (a [select] on a self-pipe, woken
    whenever the timer set changes) rather than polling. *)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) : sig
  type t

  val create :
    ?on_grant:(unit -> unit) ->
    ?fault:Fault.t ->
    ?heartbeat_period:float ->
    ?suspect_timeout:float ->
    ?on_suspect:(int -> unit) ->
    ?on_alive:(int -> unit) ->
    ?seed:int ->
    ?initial:A.state ->
    ?store:Dmutex_store.Store.t ->
    ?persist:(A.state -> Dmutex_store.Store.view) ->
    ?obs:Dmutex_obs.Registry.t ->
    ?trace:Dmutex_obs.Events.sink ->
    Dmutex.Types.Config.t ->
    me:int ->
    peers:Transport.endpoint array ->
    unit ->
    t
  (** Start a node: bind its endpoint, start its timer thread, and put
      the state machine in its initial state. [on_grant] fires (on an
      internal thread) whenever the node enters the critical section;
      alternatively use {!with_lock}.

      [initial] overrides [A.init] — used to restart a node from a
      durable store ([Dmutex_store.Protocol_view.restore]). [store] +
      [persist] enable durability: after {e every} step the post-step
      state's [persist] view is {!Dmutex_store.Store.record}ed — and
      fsynced — {e before} any of the step's effects (sends, CS entry)
      are applied, which is what makes the store's custody record
      safety-critical-correct: it can never over-claim a token the
      node no longer holds. The starting state is recorded at creation
      time too.

      [fault] plugs a (normally cluster-shared) chaos injector into
      the transport. [heartbeat_period] > 0 enables the peer liveness
      monitor: the transport beacons every period, and a peer silent
      (no data, no heartbeat) for longer than [suspect_timeout]
      (default 1 s) triggers [on_suspect]; the first frame heard
      afterwards triggers [on_alive]. Both callbacks run on internal
      threads and may call {!inject} — e.g. to feed a suspicion into
      the protocol as a timer or WARNING.

      [obs] plugs this node into a metrics registry: per-kind
      send/receive counters, CS entry/exit spans, sync delay, queue
      lengths, phase durations, note counters, heartbeat suspicions —
      the canonical {!Dmutex_obs.Names} series, same names the
      simulator emits — plus the transport's [dmutex_transport_*]
      counters. One registry per node; [Cluster] merges them.
      [trace] plugs in a (normally cluster-shared) structured event
      sink: CS enter/exit, recovery milestones and liveness suspicions
      are recorded with the node id attached. *)

  val acquire : t -> unit
  (** Ask for the critical section (non-blocking). *)

  val release : t -> unit
  (** Leave the critical section. Must only be called while holding
      it. *)

  val holding : t -> bool
  (** Whether this node is currently inside the critical section. *)

  val with_lock : ?timeout:float -> t -> (unit -> 'a) -> 'a option
  (** [with_lock t f] acquires the distributed lock, runs [f], and
      releases. Returns [None] if [timeout] (default 30 s) expires
      before the lock is granted. The abandoned request remains queued
      cluster-wide, so the node remembers it and {e drains} the stale
      grant the moment it lands (immediate release, no [on_grant]) —
      a later [with_lock] can never be granted on the back of an
      abandoned request. *)

  val state : t -> A.state
  (** Snapshot of the protocol state (for inspection and tests). *)

  val messages_sent : t -> int

  val metrics : t -> Transport.metrics
  (** Live transport counters (all zero after {!shutdown}). *)

  val notes : t -> (string * int) list
  (** Protocol [Note] events counted since start, sorted by name —
      e.g. [("recovery-started", 2)]. The live-cluster equivalent of
      the simulator's outcome notes. *)

  val note_count : t -> string -> int

  val suspected : t -> int list
  (** Peers currently suspected down by the liveness monitor (always
      empty when the monitor is off). *)

  val set_loss : t -> float -> unit
  (** Drop outgoing frames with this probability (chaos testing; see
      {!Transport.set_loss}). *)

  val inject : t -> (A.message, A.timer) Dmutex.Types.input -> unit
  (** Feed an arbitrary input to the state machine — test hook for
      fault drills (e.g. simulating a WARNING or a timer). *)

  val store_stats : t -> Dmutex_store.Store.stats option
  (** Durability counters of the attached store, if any. *)

  val obs : t -> Dmutex_obs.Registry.t option
  (** The registry passed at [create], if any. *)

  val shutdown : t -> unit
  (** Graceful stop: close sockets, stop the timer, liveness and
      writer threads, then {e flush and close} the attached store (if
      any). To the rest of the cluster this is still a crash — the
      node stops responding — but its own durable state is complete.
      Idempotent. *)

  val crash : t -> unit
  (** Crash-style stop: like {!shutdown} but the store is closed
      {e without} flushing ({!Dmutex_store.Store.abort}), leaving on
      disk exactly what explicit fsyncs made durable — what a real
      crash leaves. Restart drills use this. Idempotent. *)
end
