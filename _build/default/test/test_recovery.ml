(* Section 6: failure recovery. Fault injection on the resilient
   variant through the simulated network. *)

open Dmutex
module R = Sim_runner.Make (Resilient)

let cfg ?(n = 8) () =
  Resilient.config ~token_timeout:1.5 ~enquiry_timeout:0.8
    ~arbiter_timeout:2.5 ~n ()

let load t n rate =
  let rng = Simkit.Rng.create 37 in
  for i = 0 to n - 1 do
    let node_rng = Simkit.Rng.split rng in
    ignore
      (Simkit.Workload.poisson (R.engine t) ~rng:node_rng ~rate
         ~on_arrival:(fun _ -> R.request t i))
  done

let note o name = try List.assoc name (o : Sim_runner.outcome).notes with Not_found -> 0

(* Probe from [start] until the predicate-chosen victim exists, then
   apply the fault. *)
let inject_when t ~start f =
  let rec probe delay =
    ignore
      (Simkit.Engine.schedule (R.engine t) ~delay (fun _ ->
           if not (f t) then probe 0.05))
  in
  probe start

let test_no_fault_baseline () =
  (* The recovery machinery must not perturb a healthy run. *)
  let o = R.run_poisson ~seed:1 ~requests:10_000 ~rate:0.2 (cfg ()) in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check int) "all served" 0 o.unserved;
  Alcotest.(check int) "no recoveries triggered" 0 (note o "recovery-started")

let test_token_holder_crash () =
  let n = 8 in
  let t = R.create ~seed:2 (cfg ~n ()) in
  load t n 0.3;
  inject_when t ~start:5.0 (fun t ->
      match
        List.find_opt
          (fun i ->
            let st = R.state t i in
            st.Protocol.in_cs || st.Protocol.token <> None)
          (List.init n Fun.id)
      with
      | Some i ->
          R.crash t i;
          true
      | None -> false);
  R.step_until t 100.0;
  let o = R.outcome t in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "token regenerated" true (note o "token-regenerated" >= 1);
  Alcotest.(check bool) "service continued" true (o.completed > 100)

let test_privilege_drop () =
  let n = 8 in
  let t = R.create ~seed:3 (cfg ~n ()) in
  load t n 0.3;
  let dropped = ref false in
  ignore
    (Simkit.Engine.schedule (R.engine t) ~delay:5.0 (fun _ ->
         Simkit.Network.set_interceptor (R.network t) (fun ~src:_ ~dst:_ m ->
             match m with
             | Protocol.Privilege _ when not !dropped ->
                 dropped := true;
                 Simkit.Network.Drop
             | _ -> Simkit.Network.Deliver)));
  R.step_until t 100.0;
  let o = R.outcome t in
  Alcotest.(check bool) "the drop happened" true !dropped;
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "recovery ran" true (note o "recovery-started" >= 1);
  Alcotest.(check bool) "service continued" true (o.completed > 100)

let test_arbiter_crash_takeover () =
  let n = 8 in
  let t = R.create ~seed:4 (cfg ~n ()) in
  load t n 0.3;
  inject_when t ~start:5.0 (fun t ->
      match
        List.find_opt
          (fun i ->
            let st = R.state t i in
            st.Protocol.token = None
            &&
            match st.Protocol.role with
            | Protocol.Await_token _ -> true
            | _ -> false)
          (List.init n Fun.id)
      with
      | Some i ->
          R.crash t i;
          true
      | None -> false);
  R.step_until t 100.0;
  let o = R.outcome t in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "service continued" true (o.completed > 100)

let test_lossy_network () =
  (* 2% uniform loss: retransmission + recovery keep the system live.
     (The paper: "with the increasing quality of emerging networks,
     loss will be minimized" — we are harsher.) *)
  let n = 6 in
  let t = R.create ~seed:5 (cfg ~n ()) in
  Simkit.Network.set_loss (R.network t) 0.02;
  load t n 0.2;
  R.step_until t 400.0;
  let o = R.outcome t in
  Alcotest.(check int) "no violations under loss" 0 o.safety_violations;
  Alcotest.(check bool) "most requests served" true
    (o.completed > 300 && o.unserved < 8)

let test_request_loss_detected () =
  (* Drop the first REQUEST: the NEW-ARBITER implicit-ack mechanism
     must retransmit it. *)
  let n = 5 in
  let t = R.create ~seed:6 (cfg ~n ()) in
  let dropped = ref false in
  Simkit.Network.set_interceptor (R.network t) (fun ~src:_ ~dst:_ m ->
      match m with
      | Protocol.Request _ when not !dropped ->
          dropped := true;
          Simkit.Network.Drop
      | _ -> Simkit.Network.Deliver);
  load t n 0.2;
  R.step_until t 120.0;
  let o = R.outcome t in
  Alcotest.(check bool) "drop happened" true !dropped;
  (* At most the steady-state in-flight request can be pending at the
     cutoff; the dropped request itself was recovered long before. *)
  Alcotest.(check bool) "no backlog beyond in-flight" true (o.unserved <= 2);
  Alcotest.(check bool) "plenty served" true (o.completed > 80);
  Alcotest.(check int) "no violations" 0 o.safety_violations

let test_repeated_faults () =
  (* Crash three different token holders in sequence; the protocol
     must survive each. *)
  let n = 10 in
  let t = R.create ~seed:7 (cfg ~n ()) in
  load t n 0.3;
  let crashes = ref 0 in
  let rec probe delay =
    ignore
      (Simkit.Engine.schedule (R.engine t) ~delay (fun _ ->
           if !crashes < 3 then begin
             (match
                List.find_opt
                  (fun i ->
                    (not (Simkit.Network.is_crashed (R.network t) i))
                    &&
                    let st = R.state t i in
                    st.Protocol.in_cs || st.Protocol.token <> None)
                  (List.init n Fun.id)
              with
             | Some i ->
                 R.crash t i;
                 incr crashes
             | None -> ());
             probe 15.0
           end))
  in
  probe 5.0;
  R.step_until t 200.0;
  let o = R.outcome t in
  Alcotest.(check int) "three crashes injected" 3 !crashes;
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "multiple regenerations" true
    (note o "token-regenerated" >= 2);
  Alcotest.(check bool) "service continued" true (o.completed > 200)

let test_crash_recover_rejoin () =
  (* A crashed node that recovers with a fresh state rejoins the
     protocol and gets served again. *)
  let n = 6 in
  let t = R.create ~seed:8 (cfg ~n ()) in
  load t n 0.2;
  ignore
    (Simkit.Engine.schedule (R.engine t) ~delay:5.0 (fun _ ->
         (* Crash a bystander. *)
         let victim =
           List.find
             (fun i ->
               let st = R.state t i in
               (not st.Protocol.in_cs)
               && st.Protocol.token = None
               &&
               match st.Protocol.role with
               | Protocol.Normal -> true
               | _ -> false)
             (List.init n Fun.id)
         in
         R.crash t victim;
         ignore
           (Simkit.Engine.schedule (R.engine t) ~delay:20.0 (fun _ ->
                R.recover t victim))));
  R.step_until t 150.0;
  let o = R.outcome t in
  Alcotest.(check int) "no violations" 0 o.safety_violations;
  Alcotest.(check bool) "system live" true (o.completed > 100)

let test_drill_harness () =
  (* The packaged Section 6 drills must all report resumed service. *)
  let rows = Experiments.table_recovery ~n:10 () in
  Alcotest.(check int) "four scenarios" 4 (List.length rows);
  List.iter
    (fun (r : Experiments.recovery_row) ->
      Alcotest.(check bool) (r.scenario ^ " resumed") true
        r.served_after_fault)
    rows

let suite =
  ( "recovery",
    [
      Alcotest.test_case "healthy run untouched" `Quick test_no_fault_baseline;
      Alcotest.test_case "token holder crash" `Quick test_token_holder_crash;
      Alcotest.test_case "privilege message drop" `Quick test_privilege_drop;
      Alcotest.test_case "arbiter crash and takeover" `Quick
        test_arbiter_crash_takeover;
      Alcotest.test_case "2% message loss" `Slow test_lossy_network;
      Alcotest.test_case "request loss implicit-ack" `Quick
        test_request_loss_detected;
      Alcotest.test_case "three successive holder crashes" `Slow
        test_repeated_faults;
      Alcotest.test_case "crash, recover, rejoin" `Quick
        test_crash_recover_rejoin;
      Alcotest.test_case "packaged drills resume" `Slow test_drill_harness;
    ] )
