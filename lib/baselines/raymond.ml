(** Raymond's tree-based token algorithm (TOCS 1989), reference [9] of
    the paper and its headline comparator: "approximately 4 messages
    at high loads". Nodes form a static spanning tree (here the
    complete binary tree rooted at node 0); each node keeps a HOLDER
    pointer toward the token and a FIFO of unserved neighbour
    requests. Messages travel only along tree edges, giving O(log N)
    per CS at low load and ~4 at saturation. *)

open Dmutex.Types

type message = Request | Privilege
type timer = |

type state = {
  me : node_id;
  holder : node_id;  (* = me when we hold the token *)
  rq : node_id list;  (* FIFO of requesting neighbours; may contain me *)
  asked : bool;  (* a REQUEST toward the holder is outstanding *)
  in_cs : bool;
  pending : int;
}

let name = "raymond"

(* No failure model: the original algorithm assumes reliable nodes and
   channels, so injected crashes or losses must fail loudly rather
   than silently measure behaviour the algorithm never claimed. *)
let fault_support = { crash_stop = false; message_loss = false }

(* The tree is the binary heap layout: parent of i is (i-1)/2. The
   initial holder pointers all aim at node 0, the initial token
   holder. *)
let parent i = (i - 1) / 2

let init cfg me =
  ignore cfg;
  {
    me;
    holder = (if me = 0 then me else parent me);
    rq = [];
    asked = false;
    in_cs = false;
    pending = 0;
  }

(* A restarted non-root node re-enters pointing at its parent, the
   direction the token must lie in a fresh tree. A restarted root
   cannot know which subtree holds the token; it guesses its first
   child (best effort — Raymond's algorithm has no recovery story). *)
let rejoin cfg me =
  let st = init cfg me in
  if me = 0 && cfg.Config.n > 1 then { st with holder = 1 } else st

let in_cs st = st.in_cs

(* No shared-mode path: every grant is exclusive. *)
let cs_mode _ = Exclusive
let wants_cs st = List.mem st.me st.rq || st.pending > 0 || st.in_cs

(* Raymond's two standard auxiliary procedures, run after every
   event. *)
let assign_privilege st =
  if st.holder = st.me && (not st.in_cs) && st.rq <> [] then
    match st.rq with
    | head :: rest ->
        if head = st.me then
          ({ st with rq = rest; in_cs = true }, [ Enter_cs ])
        else
          ( { st with rq = rest; holder = head; asked = false },
            [ Send (head, Privilege) ] )
    | [] -> (st, [])
  else (st, [])

let make_request st =
  if st.holder <> st.me && st.rq <> [] && not st.asked then
    ({ st with asked = true }, [ Send (st.holder, Request) ])
  else (st, [])

let after_event st =
  let st, e1 = assign_privilege st in
  let st, e2 = make_request st in
  (st, e1 @ e2)

let rec handle cfg ~now st input =
  match input with
  | Request_cs | Request_shared_cs ->
      if st.in_cs || List.mem st.me st.rq then
        ({ st with pending = st.pending + 1 }, [])
      else after_event { st with rq = st.rq @ [ st.me ] }
  | Receive (j, Request) -> after_event { st with rq = st.rq @ [ j ] }
  | Receive (_, Privilege) -> after_event { st with holder = st.me }
  | Cs_done ->
      let st = { st with in_cs = false } in
      let st, effs = after_event st in
      if st.pending > 0 then
        let st, effs' =
          handle cfg ~now { st with pending = st.pending - 1 } Request_cs
        in
        (st, effs @ effs')
      else (st, effs)
  | Timer_fired _ -> (st, [])

let message_kind = function Request -> "REQUEST" | Privilege -> "PRIVILEGE"
let pp_message ppf m = Format.pp_print_string ppf (message_kind m)

let pp_state ppf st =
  Format.fprintf ppf "node %d: holder=%d rq=[%a]%s%s" st.me st.holder
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    st.rq
    (if st.asked then " asked" else "")
    (if st.in_cs then " IN-CS" else "")
