type outcome = { lines : string list; failures : string list }

(* Which way is "worse": costs (messages/CS, wall-clock) regress
   upward, rates (throughput) regress downward. *)
type direction = Higher_bad | Lower_bad

type check = {
  label : string;
  path : string list;
  tolerance : float;  (* relative: fail when cur is worse than base by more *)
  band : (float * float) option;  (* absolute bounds on the current value *)
  direction : direction;
  optional : bool;  (* absent from both runs: skip instead of failing *)
}

let get path json = Option.bind (Json.path path json) Json.num

let run ?(tolerance = 0.25) ?(wall_tolerance = 0.25) ?(band = (2.5, 4.5))
    ?sharded_floor ?client_floor ~baseline ~current () =
  let checks =
    [
      {
        label = "high-load messages/CS";
        path = [ "derived"; "high_load"; "messages_per_cs" ];
        tolerance;
        band = Some band;
        direction = Higher_bad;
        optional = false;
      };
      {
        label = "light-load messages/CS";
        path = [ "derived"; "light_load"; "messages_per_cs" ];
        tolerance;
        band = None;
        direction = Higher_bad;
        optional = false;
      };
      (* The sharded (multi-lock) live experiment: per-CS cost must
         stay in the same Eq. 4 band as the single lock — the keyed
         multiplexing is free in protocol messages — and aggregate
         throughput must not collapse. Both are optional so baselines
         recorded before the lock namespace existed still gate. *)
      {
        label = "sharded messages/CS";
        path = [ "derived"; "sharded"; "messages_per_cs" ];
        tolerance;
        band = Some band;
        direction = Higher_bad;
        optional = true;
      };
      {
        label = "sharded aggregate throughput";
        path = [ "derived"; "sharded"; "cs_per_sec" ];
        (* Live wall-clock rate on a shared runner: same looseness as
           the wall-clock check. The optional absolute floor pins the
           reactor transport's throughput win so a drifting baseline
           cannot ratchet it away. *)
        tolerance = wall_tolerance;
        band = Option.map (fun lo -> (lo, infinity)) sharded_floor;
        direction = Lower_bad;
        optional = true;
      };
      (* The client-swarm experiment: M ≫ N thin clients behind the
         session layer. Per-CS protocol cost must stay in the Eq. 4
         band — sessions multiplex onto the same token passing, they
         do not add protocol messages — and the aggregate grant rate
         must not collapse (optional absolute floor, like sharded).
         Optional so baselines recorded before the session layer
         existed still gate. *)
      {
        label = "client-swarm messages/CS";
        path = [ "derived"; "client"; "messages_per_cs" ];
        tolerance;
        band = Some band;
        direction = Higher_bad;
        optional = true;
      };
      {
        label = "client-swarm acquisitions/sec";
        path = [ "derived"; "client"; "acq_per_sec" ];
        tolerance = wall_tolerance;
        band = Option.map (fun lo -> (lo, infinity)) client_floor;
        direction = Lower_bad;
        optional = true;
      };
      {
        label = "total wall-clock";
        path = [ "total_seconds" ];
        tolerance = wall_tolerance;
        band = None;
        direction = Higher_bad;
        optional = false;
      };
    ]
  in
  let lines = ref [] and failures = ref [] in
  let say l = lines := l :: !lines in
  let fail l =
    failures := l :: !failures;
    say l
  in
  List.iter
    (fun c ->
      let dotted = String.concat "." c.path in
      match (get c.path baseline, get c.path current) with
      | None, None when c.optional ->
          say (Printf.sprintf "skip %s: not measured in either run" c.label)
      | _, None ->
          fail (Printf.sprintf "FAIL %s: missing %s in current run" c.label dotted)
      | None, Some cur -> (
          say
            (Printf.sprintf "skip %s: baseline has no %s (current %.4f)"
               c.label dotted cur);
          (* The acceptance band is absolute — it applies even when the
             baseline predates the metric. *)
          match c.band with
          | Some (lo, hi) when cur < lo || cur > hi ->
              fail
                (Printf.sprintf
                   "FAIL %s — current %.4f outside acceptance band [%.2f, %.2f]"
                   c.label cur lo hi)
          | Some _ | None -> ())
      | Some base, Some cur ->
          let delta = if base = 0. then 0. else (cur -. base) /. base in
          let rel_ok =
            match c.direction with
            | Higher_bad -> cur <= base *. (1. +. c.tolerance)
            | Lower_bad -> cur >= base *. (1. -. c.tolerance)
          in
          let band_bad =
            match c.band with
            | Some (lo, hi) when cur < lo || cur > hi -> Some (lo, hi)
            | Some _ | None -> None
          in
          let detail =
            Printf.sprintf "%s: baseline %.4f current %.4f (%+.1f%%, tol %.0f%%)"
              c.label base cur (100. *. delta) (100. *. c.tolerance)
          in
          (match (rel_ok, band_bad) with
          | true, None -> say ("ok   " ^ detail)
          | false, _ ->
              fail ("FAIL " ^ detail ^ " — regression over tolerance")
          | true, Some (lo, hi) ->
              fail
                (Printf.sprintf
                   "FAIL %s — current %.4f outside acceptance band [%.2f, %.2f]"
                   c.label cur lo hi)))
    checks;
  { lines = List.rev !lines; failures = List.rev !failures }
