(** Bounded in-memory event tracing.

    A cheap ring buffer of timestamped records. Tracing is off by
    default; simulations pass a trace to protocol runners to debug a
    schedule or to render an execution like the paper's Figure 2. *)

type t

type record = {
  time : float;
  node : int;  (** Node the event concerns, [-1] for global events. *)
  tag : string;  (** Short category, e.g. ["send"], ["enter-cs"]. *)
  detail : string;
}

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained records (default 4096); older records
    are discarded first. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val add : t -> time:float -> node:int -> tag:string -> string -> unit
(** Record an event (no-op when disabled). *)

val addf :
  t ->
  time:float ->
  node:int ->
  tag:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted variant of {!add}; the format arguments are not evaluated
    when tracing is disabled. *)

val records : t -> record list
(** Retained records, oldest first. *)

val length : t -> int
val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render one record per line: [time node tag detail]. *)
