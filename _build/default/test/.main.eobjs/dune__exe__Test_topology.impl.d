test/test_topology.ml: Alcotest Experiments List QCheck QCheck_alcotest Simkit Stats Topology
