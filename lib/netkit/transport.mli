(** Length-prefixed framed messaging over TCP, hardened for chaos.

    Each wire frame is a 4-byte big-endian length followed by a body
    that starts with a {!Wire.Frame} header (sender id + kind + lock
    key), so many protocol instances multiplex over the same
    supervised connections and the receiver demultiplexes payloads by
    lock key. A {!t} owns one listening socket plus one {e supervised
    outbound channel} per peer: a bounded send queue with its own mutex,
    drained by a dedicated writer thread that (re)connects lazily with
    capped exponential backoff and jitter. A dead or slow peer can
    therefore only stall its own channel — never sends to the rest of
    the cluster — and transient socket errors are retried instead of
    silently losing the frame. Incoming frames from any peer are
    handed to the receive callback on a dedicated reader thread per
    connection. *)

type endpoint = { host : string; port : int }

val pp_endpoint : Format.formatter -> endpoint -> unit

(** Counters mirroring [Simkit.Network]'s accounting on live sockets.
    Only data frames count; transport heartbeats are invisible here. *)
type metrics = {
  sent : int;  (** Data frames successfully handed to the kernel. *)
  delivered : int;  (** Inbound data frames handed to [on_frame]. *)
  dropped : int;
      (** Frames lost to chaos (loss draw, fault verdicts), to a full
          send queue, or shed after the per-frame retry budget against
          an unreachable peer. Never also counted in [sent]. *)
  retries : int;  (** Failed connect/write attempts that were retried. *)
  reconnects : int;  (** Connections re-established after the first. *)
  queue_depth : int;  (** Frames currently waiting across all channels. *)
}

val pp_metrics : Format.formatter -> metrics -> unit

type t

val create :
  ?fault:Fault.t ->
  ?heartbeat_period:float ->
  ?max_queue:int ->
  ?seed:int ->
  ?on_heartbeat:(src:int -> unit) ->
  ?obs:Dmutex_obs.Registry.t ->
  me:int ->
  peers:endpoint array ->
  on_frame:(src:int -> lock:string -> string -> unit) ->
  unit ->
  t
(** [create ~me ~peers ~on_frame ()] binds and listens on
    [peers.(me)].port and starts the accept loop. [on_frame] runs on
    reader threads; it must be thread-safe, and receives the lock key
    the frame was addressed to so the caller can route it to the right
    protocol instance. Each frame carries the sender's id, so [src] is
    trustworthy only on a trusted network — this is a research
    runtime, not an authenticated one.

    [fault] installs a chaos interceptor consulted for every outgoing
    frame (and re-checked for connectivity at write and receive time);
    normally one injector shared by a whole in-process cluster.
    [heartbeat_period] > 0 starts a thread that sends a transport
    heartbeat to every peer each period; arrivals are reported via
    [on_heartbeat] and feed peer-liveness monitoring upstream.
    [max_queue] bounds each per-peer send queue (default 1024 frames);
    [seed] makes the loss and backoff-jitter draws reproducible.
    [obs] mirrors every counter bump into that registry's
    [dmutex_transport_*] series ({!Dmutex_obs.Names}); [metrics] reads
    additionally sample the queue depth into its gauge. *)

val send : t -> dst:int -> ?lock:string -> string -> bool
(** Frame a payload for lock instance [lock] (default [""]) and hand
    it to [dst]'s outbound channel. Returns
    [false] only if the transport is closed, [dst] is this node or out
    of range, or the channel's queue is full — [true] means {e
    accepted}, not yet written: the writer thread delivers (or retries
    and eventually sheds) it asynchronously. A frame eaten by chaos
    ({!set_loss} or a [fault] verdict) also returns [true]: to the
    caller the network ate it, which is exactly what the Section 6
    machinery must tolerate; the counters record it as [dropped] and
    never as [sent]. *)

val broadcast : t -> ?lock:string -> string -> int
(** Send to every other peer; returns how many frames were accepted. *)

val set_loss : t -> float -> unit
(** Drop each outgoing frame with this probability {e before} it
    reaches the socket — chaos testing for the Section 6 machinery on
    a real network (TCP itself never loses accepted data). Applied
    independently of (and before) any [fault] injector. *)

val sent : t -> int
(** Data frames successfully handed to the kernel so far. *)

val metrics : t -> metrics

val close : t -> unit
(** Stop the accept, writer and heartbeat threads and close every
    socket. Queued frames are discarded. Idempotent. *)
