(* Section 6 live: crash the token holder mid-CS and watch the
   two-phase token invalidation protocol regenerate the token.

     dune exec examples/failure_drill.exe *)

module Runner = Dmutex.Sim_runner.Make (Dmutex.Resilient)
open Dmutex

let () =
  let n = 6 in
  let cfg =
    Resilient.config ~token_timeout:1.5 ~enquiry_timeout:0.8
      ~arbiter_timeout:2.5 ~n ()
  in
  let trace = Simkit.Trace.create ~capacity:100_000 () in
  Simkit.Trace.set_enabled trace true;
  let t = Runner.create ~seed:7 ~trace cfg in
  let engine = Runner.engine t in

  (* Steady request stream on every node. *)
  let rng = Simkit.Rng.create 99 in
  for i = 0 to n - 1 do
    let node_rng = Simkit.Rng.split rng in
    ignore
      (Simkit.Workload.poisson engine ~rng:node_rng ~rate:0.4
         ~on_arrival:(fun _ -> Runner.request t i))
  done;

  (* From t = 3.0, look for whoever is inside the CS and kill it. *)
  let victim = ref None in
  let rec probe delay =
    ignore
      (Simkit.Engine.schedule engine ~delay (fun _ ->
           match !victim with
           | Some _ -> ()
           | None -> (
               let holder =
                 List.find_opt
                   (fun i -> (Runner.state t i).Protocol.in_cs)
                   (List.init n (fun i -> i))
               in
               match holder with
               | Some i ->
                   victim := Some i;
                   Format.printf "t=%.2f: crashing node %d inside its CS@."
                     (Simkit.Engine.now engine) i;
                   Runner.crash t i
               | None -> probe 0.05)))
  in
  probe 3.0;
  Runner.step_until t 60.0;

  let o = Runner.outcome t in
  let count name = try List.assoc name o.notes with Not_found -> 0 in
  Format.printf "completed CSs      : %d@." o.completed;
  Format.printf "recoveries started : %d@." (count "recovery-started");
  Format.printf "tokens regenerated : %d@." (count "token-regenerated");
  Format.printf "arbiter takeovers  : %d@." (count "arbiter-takeover");
  Format.printf "safety violations  : %d@." o.safety_violations;
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Format.printf "@.Recovery-related trace events:@.";
  List.iter
    (fun (r : Simkit.Trace.record) ->
      let recovery_message =
        (r.tag = "send" || r.tag = "broadcast")
        && List.exists (contains r.detail)
             [ "WARNING"; "ENQUIRY"; "RESUME"; "INVALIDATE"; "PROBE" ]
      in
      if r.tag = "crash" then
        Format.printf "  %8.3f  node %d crashed@." r.time r.node
      else if recovery_message then
        Format.printf "  %8.3f  node %d  %-9s %s@." r.time r.node r.tag
          r.detail)
    (Simkit.Trace.records trace);
  if o.safety_violations > 0 then exit 1
