(** Cross-lock wait-for-graph deadlock detector.

    Vertices are node ids (standing for the client transactions they
    run); an edge [waiter -> holder] says the waiter queues for a lock
    the holder is inside. Per-lock edges come from the token holder's
    Q-list snapshot ([Dmutex.Protocol.wait_edges]); this module unions
    them across locks and looks for a cycle — the signature of a
    multi-lock deadlock. Transactions that acquire in canonical key
    order can never produce one, which the transaction soak asserts by
    scanning continuously and failing on the first cycle.

    The detector is an {e observer}: it never blocks or aborts
    anything. A cycle is surfaced as a metric ({!Names.wfg_cycles_total}),
    a [wfg.cycle] trace event, and the [dmutexd] [/wfg] endpoint. *)

type edge = { waiter : int; holder : int; lock : string }

type t
(** An immutable edge set (one scan of the cluster). *)

val empty : t

val add_edges : t -> lock:string -> (int * int) list -> t
(** Add one lock's [(waiter, holder)] pairs. Self-edges are dropped:
    a node queued behind its own shared batch is not waiting on
    anyone. *)

val of_scan : (string * (int * int) list) list -> t
(** Build a graph from per-lock edge lists in one go. *)

val edges : t -> edge list
val edge_count : t -> int

val find_cycle : t -> int list option
(** A cycle as the list of node ids in wait order (first waits on
    second, ..., last waits on first), or [None] when the graph is
    acyclic. Deterministic for a given scan. *)

val cycle_free : t -> bool

val pp_cycle : Format.formatter -> int list -> unit
(** ["3 -> 1 -> 3"]-style rendering of {!find_cycle}'s result. *)

(** Metric integration: resolve the gauge/counter handles once, then
    {!record} each scan. *)
type obs

val obs : Registry.t -> obs

val record : ?trace:Events.sink -> obs -> t -> int list option
(** Record one scan: sets {!Names.wfg_edges} to the edge count and, if
    a cycle exists, bumps {!Names.wfg_cycles_total}, emits a
    [wfg.cycle] trace event (severity [Warn]) when [trace] is given,
    and returns the cycle. *)
