lib/core/protocol.mli: Config Format Qlist Types
