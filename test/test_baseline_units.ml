(* Message-level unit tests of the baseline state machines, mirroring
   test_protocol.ml: each algorithm's individual transitions, not just
   its end-to-end metrics. *)

open Dmutex.Types

let cfg = Config.default ~n:4

let sends effs =
  List.filter_map
    (function Send (dst, m) -> Some (dst, m) | _ -> None)
    effs

let broadcasts effs =
  List.filter_map (function Broadcast m -> Some m | _ -> None) effs

let has_enter effs = List.exists (function Enter_cs -> true | _ -> false) effs

(* --------------------------- central server ---------------------- *)

module CS = Baselines.Central_server

let test_central_grant_queue () =
  (* Server grants the first request, queues the second, grants it on
     release. *)
  let server = CS.init cfg 0 in
  let server, effs = CS.handle cfg ~now:0.0 server (Receive (1, CS.Request)) in
  Alcotest.(check bool) "grant to 1" true
    (sends effs = [ (1, CS.Grant) ]);
  let server, effs = CS.handle cfg ~now:0.0 server (Receive (2, CS.Request)) in
  Alcotest.(check int) "2 queued, nothing sent" 0 (List.length (sends effs));
  let _, effs = CS.handle cfg ~now:0.0 server (Receive (1, CS.Release)) in
  Alcotest.(check bool) "grant to 2 on release" true
    (sends effs = [ (2, CS.Grant) ])

let test_central_server_self () =
  (* The server itself enters directly and releases locally. *)
  let server = CS.init cfg 0 in
  let server, effs = CS.handle cfg ~now:0.0 server Request_cs in
  Alcotest.(check bool) "server enters own CS" true (has_enter effs);
  let server, effs = CS.handle cfg ~now:0.0 server (Receive (3, CS.Request)) in
  Alcotest.(check int) "3 must wait" 0 (List.length (sends effs));
  let _, effs = CS.handle cfg ~now:0.0 server Cs_done in
  Alcotest.(check bool) "grant to 3 after own CS" true
    (sends effs = [ (3, CS.Grant) ])

(* --------------------------- suzuki-kasami ----------------------- *)

module SK = Baselines.Suzuki_kasami

let test_sk_request_broadcast () =
  let st = SK.init cfg 2 in
  let _, effs = SK.handle cfg ~now:0.0 st Request_cs in
  match broadcasts effs with
  | [ SK.Request { j = 2; sn = 1 } ] -> ()
  | _ -> Alcotest.fail "expected broadcast REQUEST(2,1)"

let test_sk_holder_enters_directly () =
  let st = SK.init cfg 0 in
  let st, effs = SK.handle cfg ~now:0.0 st Request_cs in
  Alcotest.(check bool) "holder enters with zero messages" true
    (has_enter effs && sends effs = [] && broadcasts effs = []);
  ignore st

let test_sk_idle_holder_hands_over () =
  let st = SK.init cfg 0 in
  let _, effs =
    SK.handle cfg ~now:0.0 st (Receive (3, SK.Request { j = 3; sn = 1 }))
  in
  match sends effs with
  | [ (3, SK.Token _) ] -> ()
  | _ -> Alcotest.fail "idle holder must send the token"

let test_sk_stale_request_ignored () =
  let st = SK.init cfg 0 in
  let st, _ =
    SK.handle cfg ~now:0.0 st (Receive (3, SK.Request { j = 3; sn = 1 }))
  in
  (* Token gone; duplicate (stale) request must not send a second
     token (there is none) nor crash. *)
  let _, effs =
    SK.handle cfg ~now:0.0 st (Receive (3, SK.Request { j = 3; sn = 1 }))
  in
  Alcotest.(check int) "stale request ignored" 0 (List.length (sends effs))

let test_sk_queue_append_on_exit () =
  let st = SK.init cfg 0 in
  let st, _ = SK.handle cfg ~now:0.0 st Request_cs in
  (* requests from 1 and 2 arrive while 0 is in CS *)
  let st, _ =
    SK.handle cfg ~now:0.0 st (Receive (1, SK.Request { j = 1; sn = 1 }))
  in
  let st, _ =
    SK.handle cfg ~now:0.0 st (Receive (2, SK.Request { j = 2; sn = 1 }))
  in
  let _, effs = SK.handle cfg ~now:0.0 st Cs_done in
  (* Token goes to node 1 (scan order me+1..) with 2 still queued. *)
  match sends effs with
  | [ (1, SK.Token { tq = [ 2 ]; _ }) ] -> ()
  | _ -> Alcotest.fail "token must go to 1 with 2 queued"

(* --------------------------- ricart-agrawala --------------------- *)

module RA = Baselines.Ricart_agrawala

let test_ra_defer_lower_priority () =
  let st = RA.init cfg 1 in
  let st, _ = RA.handle cfg ~now:0.0 st Request_cs in
  (* Our ts = 1. An incoming request with ts 5 loses: deferred. *)
  let st, effs =
    RA.handle cfg ~now:0.0 st (Receive (2, RA.Request { ts = 5; j = 2 }))
  in
  Alcotest.(check int) "deferred" 0 (List.length (sends effs));
  (* An incoming request with ts 1 from a smaller id (0 < 1) wins. *)
  let st, effs =
    RA.handle cfg ~now:0.0 st (Receive (0, RA.Request { ts = 1; j = 0 }))
  in
  Alcotest.(check bool) "tie broken by id" true
    (sends effs = [ (0, RA.Reply) ]);
  (* All replies collected -> enter CS. *)
  let st, effs = RA.handle cfg ~now:0.0 st (Receive (0, RA.Reply)) in
  Alcotest.(check bool) "not yet" false (has_enter effs);
  let st, effs = RA.handle cfg ~now:0.0 st (Receive (2, RA.Reply)) in
  Alcotest.(check bool) "still not" false (has_enter effs);
  let st, effs = RA.handle cfg ~now:0.0 st (Receive (3, RA.Reply)) in
  Alcotest.(check bool) "entered after N-1 replies" true (has_enter effs);
  (* Leaving flushes the deferred reply to node 2. *)
  let _, effs = RA.handle cfg ~now:0.0 st Cs_done in
  Alcotest.(check bool) "deferred reply flushed" true
    (sends effs = [ (2, RA.Reply) ])

let test_ra_idle_always_replies () =
  let st = RA.init cfg 3 in
  let _, effs =
    RA.handle cfg ~now:0.0 st (Receive (1, RA.Request { ts = 9; j = 1 }))
  in
  Alcotest.(check bool) "idle node replies" true
    (sends effs = [ (1, RA.Reply) ])

(* --------------------------- raymond ----------------------------- *)

module RY = Baselines.Raymond

let test_raymond_root_grants_child () =
  let root = RY.init cfg 0 in
  let root, effs = RY.handle cfg ~now:0.0 root (Receive (1, RY.Request)) in
  Alcotest.(check bool) "privilege to child" true
    (sends effs = [ (1, RY.Privilege) ]);
  (* A later request must chase the token. *)
  let _, effs = RY.handle cfg ~now:0.0 root (Receive (2, RY.Request)) in
  Alcotest.(check bool) "chases the token" true
    (sends effs = [ (1, RY.Request) ])

let test_raymond_leaf_asks_parent () =
  let leaf = RY.init cfg 3 in
  let leaf, effs = RY.handle cfg ~now:0.0 leaf Request_cs in
  Alcotest.(check bool) "asks parent 1" true
    (sends effs = [ (1, RY.Request) ]);
  (* A second local request does not re-ask. *)
  let leaf, effs = RY.handle cfg ~now:0.0 leaf Request_cs in
  Alcotest.(check int) "no duplicate ask" 0 (List.length (sends effs));
  (* Privilege arrives: enter CS. *)
  let _, effs = RY.handle cfg ~now:0.0 leaf (Receive (1, RY.Privilege)) in
  Alcotest.(check bool) "entered" true (has_enter effs)

let test_raymond_relay () =
  (* Node 1 relays between its child 3 and the root 0. *)
  let mid = RY.init cfg 1 in
  let mid, effs = RY.handle cfg ~now:0.0 mid (Receive (3, RY.Request)) in
  Alcotest.(check bool) "asks holder (root)" true
    (sends effs = [ (0, RY.Request) ]);
  let _, effs = RY.handle cfg ~now:0.0 mid (Receive (0, RY.Privilege)) in
  Alcotest.(check bool) "passes privilege down" true
    (sends effs = [ (3, RY.Privilege) ])

(* --------------------------- maekawa ----------------------------- *)

module MK = Baselines.Maekawa

let test_maekawa_vote_once () =
  let v = MK.init cfg 1 in
  let v, effs =
    MK.handle cfg ~now:0.0 v (Receive (0, MK.Request { ts = 1; j = 0 }))
  in
  Alcotest.(check bool) "locked for 0" true
    (sends effs = [ (0, MK.Locked { ts = 1 }) ]);
  (* A worse concurrent request fails. *)
  let v, effs =
    MK.handle cfg ~now:0.0 v (Receive (2, MK.Request { ts = 5; j = 2 }))
  in
  Alcotest.(check bool) "failed for 2" true
    (sends effs = [ (2, MK.Failed { ts = 5 }) ]);
  (* A better one inquires the current candidate. *)
  let v, effs =
    MK.handle cfg ~now:0.0 v (Receive (3, MK.Request { ts = 0; j = 3 }))
  in
  Alcotest.(check bool) "inquire current candidate" true
    (sends effs = [ (0, MK.Inquire { ts = 1 }) ]);
  (* Release hands the vote to the best waiting request (ts 0). *)
  let _, effs = MK.handle cfg ~now:0.0 v (Receive (0, MK.Release { ts = 1 })) in
  Alcotest.(check bool) "re-vote best" true
    (sends effs = [ (3, MK.Locked { ts = 0 }) ])

let test_maekawa_stale_locked_ignored () =
  let c = MK.init cfg 0 in
  let c, _ = MK.handle cfg ~now:0.0 c Request_cs in
  (* my_ts = 1; a LOCKED for an old candidacy must not count. *)
  let c', effs =
    MK.handle cfg ~now:0.0 c (Receive (1, MK.Locked { ts = 77 }))
  in
  Alcotest.(check bool) "stale locked dropped" true
    (effs = [] && c'.MK.grants = c.MK.grants)

let test_maekawa_relinquish_on_failed () =
  let c = MK.init cfg 0 in
  let c, _ = MK.handle cfg ~now:0.0 c Request_cs in
  (* An inquire arrives first (we may still win): deferred. *)
  let c, effs = MK.handle cfg ~now:0.0 c (Receive (2, MK.Inquire { ts = 1 })) in
  Alcotest.(check int) "inquire deferred" 0 (List.length (sends effs));
  (* Then a FAILED: we must relinquish to the inquirer. *)
  let _, effs = MK.handle cfg ~now:0.0 c (Receive (3, MK.Failed { ts = 1 })) in
  Alcotest.(check bool) "relinquish sent" true
    (List.mem (2, MK.Relinquish { ts = 1 }) (sends effs))

(* --------------------------- singhal ----------------------------- *)

module SG = Baselines.Singhal

let test_singhal_staircase () =
  (* Node 0 asks nobody; node 3 asks 0,1,2. *)
  let st0 = SG.init cfg 0 in
  let _, effs = SG.handle cfg ~now:0.0 st0 Request_cs in
  Alcotest.(check bool) "node 0 enters alone" true
    (has_enter effs && sends effs = []);
  let st3 = SG.init cfg 3 in
  let _, effs = SG.handle cfg ~now:0.0 st3 Request_cs in
  Alcotest.(check (list int)) "node 3 asks everyone below" [ 0; 1; 2 ]
    (List.map fst (sends effs))

let test_singhal_echo_rule () =
  (* Node 0 (requesting, ts 1) receives a better request from node 2,
     which it never asked: it must reply AND echo its own request. *)
  let st = SG.init cfg 0 in
  let st, _ = SG.handle cfg ~now:0.0 st Request_cs in
  (* node 0's request enters CS immediately (empty R); exit first. *)
  let st, _ = SG.handle cfg ~now:0.0 st Cs_done in
  let st, effs = SG.handle cfg ~now:0.0 st Request_cs in
  Alcotest.(check bool) "second request also instant" true (has_enter effs);
  ignore st;
  (* Now a node with a non-trivial R set: node 1 requesting. *)
  let st = SG.init cfg 1 in
  let st, _ = SG.handle cfg ~now:0.0 st Request_cs in
  (* my ts = 1; better request (ts 1, id 0) from node 0, already in R
     — plain reply, no echo. *)
  let st, effs =
    SG.handle cfg ~now:0.0 st (Receive (0, SG.Request { ts = 1; j = 0 }))
  in
  Alcotest.(check bool) "reply only" true (sends effs = [ (0, SG.Reply) ]);
  (* Better request from node 2 (ts 0), NOT in node 1's R: reply +
     echo. *)
  let _, effs =
    SG.handle cfg ~now:0.0 st (Receive (2, SG.Request { ts = 0; j = 2 }))
  in
  let ms = List.map snd (sends effs) in
  Alcotest.(check int) "two messages" 2 (List.length ms);
  Alcotest.(check bool) "one is a reply" true (List.mem SG.Reply ms);
  Alcotest.(check bool) "one is the echoed request" true
    (List.exists (function SG.Request _ -> true | SG.Reply -> false) ms)

let test_singhal_shrink_on_exit () =
  let st = SG.init cfg 3 in
  let st, _ = SG.handle cfg ~now:0.0 st Request_cs in
  (* replies from 0,1,2 -> CS *)
  let st, _ = SG.handle cfg ~now:0.0 st (Receive (0, SG.Reply)) in
  let st, _ = SG.handle cfg ~now:0.0 st (Receive (1, SG.Reply)) in
  let st, effs = SG.handle cfg ~now:0.0 st (Receive (2, SG.Reply)) in
  Alcotest.(check bool) "entered" true (has_enter effs);
  (* node 1 requests while we're inside: deferred. *)
  let st, _ =
    SG.handle cfg ~now:0.0 st (Receive (1, SG.Request { ts = 9; j = 1 }))
  in
  let st, effs = SG.handle cfg ~now:0.0 st Cs_done in
  Alcotest.(check bool) "deferred reply flushed" true
    (sends effs = [ (1, SG.Reply) ]);
  (* R shrank to {me, 1}: the next request asks only node 1. *)
  let _, effs = SG.handle cfg ~now:0.0 st Request_cs in
  Alcotest.(check (list int)) "shrunken request set" [ 1 ]
    (List.map fst (sends effs))

(* --------------------------- lamport ----------------------------- *)

module LM = Baselines.Lamport

let test_lamport_needs_everyone () =
  let st = LM.init cfg 1 in
  let st, effs = LM.handle cfg ~now:0.0 st Request_cs in
  Alcotest.(check int) "request broadcast" 1 (List.length (broadcasts effs));
  (* Two acks are not enough with n = 4. *)
  let st, effs = LM.handle cfg ~now:0.0 st (Receive (0, LM.Ack { ts = 5 })) in
  Alcotest.(check bool) "not yet" false (has_enter effs);
  let st, effs = LM.handle cfg ~now:0.0 st (Receive (2, LM.Ack { ts = 5 })) in
  Alcotest.(check bool) "still not" false (has_enter effs);
  let st, effs = LM.handle cfg ~now:0.0 st (Receive (3, LM.Ack { ts = 5 })) in
  Alcotest.(check bool) "entered with all acks" true (has_enter effs);
  (* Exit broadcasts the release. *)
  let _, effs = LM.handle cfg ~now:0.0 st Cs_done in
  Alcotest.(check int) "release broadcast" 1 (List.length (broadcasts effs))

let test_lamport_queue_order () =
  (* We requested second: acks alone must not let us in; the earlier
     request's release must. *)
  let st = LM.init cfg 2 in
  let st, _ =
    LM.handle cfg ~now:0.0 st (Receive (0, LM.Request { ts = 1; j = 0 }))
  in
  let st, _ = LM.handle cfg ~now:0.0 st Request_cs in
  let st, effs = LM.handle cfg ~now:0.0 st (Receive (0, LM.Ack { ts = 9 })) in
  Alcotest.(check bool) "behind node 0" false (has_enter effs);
  let st, effs = LM.handle cfg ~now:0.0 st (Receive (1, LM.Ack { ts = 9 })) in
  Alcotest.(check bool) "acks insufficient" false (has_enter effs);
  let st, effs = LM.handle cfg ~now:0.0 st (Receive (3, LM.Ack { ts = 9 })) in
  Alcotest.(check bool) "still behind" false (has_enter effs);
  let _, effs =
    LM.handle cfg ~now:0.0 st (Receive (0, LM.Release { ts = 10; j = 0 }))
  in
  Alcotest.(check bool) "enter after head releases" true (has_enter effs)

let test_lamport_ack_timestamp () =
  (* The ack must carry a timestamp strictly above the request's. *)
  let st = LM.init cfg 3 in
  let _, effs =
    LM.handle cfg ~now:0.0 st (Receive (1, LM.Request { ts = 7; j = 1 }))
  in
  match sends effs with
  | [ (1, LM.Ack { ts }) ] ->
      Alcotest.(check bool) "ack ts above request ts" true (ts > 7)
  | _ -> Alcotest.fail "expected one ACK"

(* ----------------------- fault capability ------------------------ *)

(* None of the eight baselines models failures, and each must say so:
   injecting a crash into a simulation of one raises
   [Unsupported_fault] instead of silently measuring behaviour the
   algorithm never claimed. One pin per baseline, so adding a ninth
   without deciding its fault story breaks a test, not a comparison
   table. *)
let test_baselines_refuse_faults () =
  let check_refuses name (module A : ALGO) =
    Alcotest.(check bool)
      (name ^ " declares no crash model")
      false A.fault_support.crash_stop;
    Alcotest.(check bool)
      (name ^ " declares no loss model")
      false A.fault_support.message_loss;
    let module R = Dmutex.Sim_runner.Make (A) in
    let t = R.create ~seed:1 (Config.default ~n:4) in
    (match R.crash t 1 with
    | () -> Alcotest.failf "%s absorbed a crash silently" name
    | exception Unsupported_fault _ -> ());
    match R.set_loss t 0.1 with
    | () -> Alcotest.failf "%s absorbed message loss silently" name
    | exception Unsupported_fault _ -> ()
  in
  check_refuses "central-server" (module Baselines.Central_server);
  check_refuses "suzuki-kasami" (module Baselines.Suzuki_kasami);
  check_refuses "raymond" (module Baselines.Raymond);
  check_refuses "ricart-agrawala" (module Baselines.Ricart_agrawala);
  check_refuses "lamport" (module Baselines.Lamport);
  check_refuses "singhal" (module Baselines.Singhal);
  check_refuses "maekawa" (module Baselines.Maekawa);
  check_refuses "tree-quorum" (module Baselines.Tree_quorum)

let test_fault_plan_validation () =
  (* A whole plan is validated before anything is scheduled: the
     capability error arrives at injection time... *)
  let module R = Dmutex.Sim_runner.Make (Baselines.Suzuki_kasami) in
  let t = R.create ~seed:1 (Config.default ~n:4) in
  let plan =
    [
      Dmutex.Sim_runner.Crash_at { node = 1; at = 5.0; restart_after = None };
    ]
  in
  (match R.apply_faults t plan with
  | () -> Alcotest.fail "unsupported plan accepted"
  | exception Unsupported_fault msg ->
      Alcotest.(check bool) "error names the algorithm" true
        (Str_present.contains_substring msg "suzuki"));
  (* ...while the protocol's own family accepts the same plan. *)
  let module RP = Dmutex.Sim_runner.Make (Dmutex.Basic) in
  let tp = RP.create ~seed:1 (Dmutex.Basic.config ~n:4 ()) in
  RP.apply_faults tp plan;
  (* Out-of-range entries are Invalid_argument, not capability errors. *)
  Alcotest.(check bool) "bad node rejected" true
    (match
       RP.apply_faults tp
         [
           Dmutex.Sim_runner.Crash_at
             { node = 9; at = 1.0; restart_after = None };
         ]
     with
    | () -> false
    | exception Invalid_argument _ -> true)

let suite =
  ( "baseline-units",
    [
      Alcotest.test_case "central: grant and queue" `Quick
        test_central_grant_queue;
      Alcotest.test_case "central: server self-service" `Quick
        test_central_server_self;
      Alcotest.test_case "suzuki: request broadcast" `Quick
        test_sk_request_broadcast;
      Alcotest.test_case "suzuki: holder enters free" `Quick
        test_sk_holder_enters_directly;
      Alcotest.test_case "suzuki: idle holder hands over" `Quick
        test_sk_idle_holder_hands_over;
      Alcotest.test_case "suzuki: stale request ignored" `Quick
        test_sk_stale_request_ignored;
      Alcotest.test_case "suzuki: queue built on exit" `Quick
        test_sk_queue_append_on_exit;
      Alcotest.test_case "ricart: defer and tie-break" `Quick
        test_ra_defer_lower_priority;
      Alcotest.test_case "ricart: idle replies" `Quick
        test_ra_idle_always_replies;
      Alcotest.test_case "raymond: root grants child" `Quick
        test_raymond_root_grants_child;
      Alcotest.test_case "raymond: leaf asks parent" `Quick
        test_raymond_leaf_asks_parent;
      Alcotest.test_case "raymond: mid-tree relay" `Quick test_raymond_relay;
      Alcotest.test_case "maekawa: vote/fail/inquire/re-vote" `Quick
        test_maekawa_vote_once;
      Alcotest.test_case "maekawa: stale LOCKED ignored" `Quick
        test_maekawa_stale_locked_ignored;
      Alcotest.test_case "maekawa: relinquish on FAILED" `Quick
        test_maekawa_relinquish_on_failed;
      Alcotest.test_case "singhal: staircase init" `Quick
        test_singhal_staircase;
      Alcotest.test_case "singhal: echo rule" `Quick test_singhal_echo_rule;
      Alcotest.test_case "singhal: request set shrinks" `Quick
        test_singhal_shrink_on_exit;
      Alcotest.test_case "lamport: needs every ack" `Quick
        test_lamport_needs_everyone;
      Alcotest.test_case "lamport: queue order respected" `Quick
        test_lamport_queue_order;
      Alcotest.test_case "lamport: ack timestamps" `Quick
        test_lamport_ack_timestamp;
      Alcotest.test_case "all baselines refuse injected faults" `Quick
        test_baselines_refuse_faults;
      Alcotest.test_case "fault plans validated before scheduling" `Quick
        test_fault_plan_validation;
    ] )
