open Dmutex

type point = { mean : float; ci95 : float }

type sweep_row = { rate : float; series : (string * point) list }

let default_rates = [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.3; 0.5; 1.0; 2.0; 5.0 ]

module RBasic = Sim_runner.Make (Basic)
module RMon = Sim_runner.Make (Monitored)
module RRes = Sim_runner.Make (Resilient)
module RRA = Sim_runner.Make (Baselines.Ricart_agrawala)
module RSing = Sim_runner.Make (Baselines.Singhal)
module RSK = Sim_runner.Make (Baselines.Suzuki_kasami)
module RRay = Sim_runner.Make (Baselines.Raymond)
module RMk = Sim_runner.Make (Baselines.Maekawa)
module RCs = Sim_runner.Make (Baselines.Central_server)
module RLam = Sim_runner.Make (Baselines.Lamport)
module RTq = Sim_runner.Make (Baselines.Tree_quorum)

(* Every simulation point below owns its own [Rng]/[Engine]/[Network]
   and is seeded only by its position in the sweep, so sweeps dispatch
   independent points through [Simkit.Pool] — parallel results are
   bit-for-bit identical to a sequential run (DMUTEX_JOBS=1). *)

(* Replicate an experiment over [runs] seeds and summarize one metric
   with its across-runs 95% CI — the paper's "multiple runs" CIs. *)
let replicated ~runs f metric =
  let outcomes = Simkit.Pool.init runs ~f:(fun k -> f ~seed:(1000 + (7919 * k))) in
  let tally = Simkit.Stats.Tally.create () in
  List.iter (fun o -> Simkit.Stats.Tally.add tally (metric o)) outcomes;
  {
    mean = Simkit.Stats.Tally.mean tally;
    ci95 = Simkit.Stats.Tally.ci95_halfwidth tally;
  }

let messages (o : Sim_runner.outcome) = o.messages_per_cs
let delay (o : Sim_runner.outcome) = o.mean_delay
let forwarded (o : Sim_runner.outcome) = o.forwarded_fraction

(* ------------------------------------------------------------------ *)
(* Figures 3-5                                                         *)

let basic_outcomes ~n ~requests ~runs ~rates () =
  (* For each λ and each collection length, the list of replicated
     outcomes. *)
  Simkit.Pool.map rates ~f:(fun rate ->
      let per_collect t_collect =
        let cfg = Basic.config ~t_collect ~n () in
        Simkit.Pool.init runs ~f:(fun k ->
            RBasic.run_poisson ~seed:(1000 + (7919 * k)) ~requests ~rate cfg)
      in
      (rate, per_collect 0.1, per_collect 0.2))

let summarize outcomes metric =
  let tally = Simkit.Stats.Tally.create () in
  List.iter (fun o -> Simkit.Stats.Tally.add tally (metric o)) outcomes;
  {
    mean = Simkit.Stats.Tally.mean tally;
    ci95 = Simkit.Stats.Tally.ci95_halfwidth tally;
  }

let fig345 ?(n = 10) ?(requests = 50_000) ?(runs = 3) ?(rates = default_rates)
    () =
  let data = basic_outcomes ~n ~requests ~runs ~rates () in
  let build metric =
    List.map
      (fun (rate, o1, o2) ->
        {
          rate;
          series =
            [
              ("Tcoll=0.1", summarize o1 metric);
              ("Tcoll=0.2", summarize o2 metric);
            ];
        })
      data
  in
  (build messages, build delay, build forwarded)

let fig3_messages ?n ?requests ?runs ?rates () =
  let f3, _, _ = fig345 ?n ?requests ?runs ?rates () in
  f3

let fig4_delay ?n ?requests ?runs ?rates () =
  let _, f4, _ = fig345 ?n ?requests ?runs ?rates () in
  f4

let fig5_forwarded ?n ?requests ?runs ?rates () =
  let _, _, f5 = fig345 ?n ?requests ?runs ?rates () in
  f5

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)

let fig6_comparison ?(n = 10) ?(requests = 50_000) ?(runs = 3)
    ?(rates = default_rates) () =
  let cfg = Types.Config.default ~n in
  Simkit.Pool.map rates ~f:(fun rate ->
      let new_alg =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate cfg)
          messages
      in
      let ra =
        replicated ~runs
          (fun ~seed -> RRA.run_poisson ~seed ~requests ~rate cfg)
          messages
      in
      let sing =
        replicated ~runs
          (fun ~seed -> RSing.run_poisson ~seed ~requests ~rate cfg)
          messages
      in
      {
        rate;
        series =
          [
            ("this-paper", new_alg);
            ("ricart-agrawala", ra);
            ("singhal-dynamic", sing);
          ];
      })

(* ------------------------------------------------------------------ *)
(* Analytic tables                                                     *)

type bound_row = { n_nodes : int; analytic : float; measured : point }

let low_rate = 0.005
(* λ low enough that requests essentially never overlap for any N we
   sweep: the Eq. 1 regime. *)

let table_light_load ?(requests = 20_000) ?(runs = 3)
    ?(ns = [ 5; 10; 20; 50 ]) () =
  Simkit.Pool.map ns ~f:(fun n ->
      let cfg = Basic.config ~n () in
      let measured =
        replicated ~runs
          (fun ~seed ->
            RBasic.run_poisson ~seed ~requests ~rate:low_rate cfg)
          messages
      in
      { n_nodes = n; analytic = Analysis.light_load_messages ~n; measured })

let table_heavy_load ?(requests = 50_000) ?(runs = 3)
    ?(ns = [ 5; 10; 20; 50 ]) () =
  Simkit.Pool.map ns ~f:(fun n ->
      let cfg = Basic.config ~n () in
      let measured =
        replicated ~runs
          (fun ~seed -> RBasic.run_saturated ~seed ~requests cfg)
          messages
      in
      { n_nodes = n; analytic = Analysis.heavy_load_messages ~n; measured })

let table_service_time ?(requests = 20_000) ?(runs = 3)
    ?(ns = [ 5; 10; 20; 50 ]) () =
  let light =
    Simkit.Pool.map ns ~f:(fun n ->
        let cfg = Basic.config ~n () in
        let measured =
          replicated ~runs
            (fun ~seed ->
              RBasic.run_poisson ~seed ~requests ~rate:low_rate cfg)
            delay
        in
        {
          n_nodes = n;
          analytic = Analysis.light_load_service_time cfg;
          measured;
        })
  in
  let heavy =
    Simkit.Pool.map ns ~f:(fun n ->
        let cfg = Basic.config ~n () in
        let measured =
          replicated ~runs
            (fun ~seed -> RBasic.run_saturated ~seed ~requests cfg)
            delay
        in
        {
          n_nodes = n;
          analytic = Analysis.heavy_load_service_time cfg;
          measured;
        })
  in
  (light, heavy)

(* ------------------------------------------------------------------ *)
(* Monitor overhead (Section 4)                                        *)

let table_monitor_overhead ?(n = 10) ?(requests = 30_000) ?(runs = 3)
    ?(rates = [ 0.01; 0.05; 0.2; 0.5; 2.0 ]) () =
  let basic_cfg = Basic.config ~n () in
  let mon_cfg = Monitored.config ~n () in
  Simkit.Pool.map rates ~f:(fun rate ->
      let basic =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate basic_cfg)
          messages
      in
      let mon =
        replicated ~runs
          (fun ~seed -> RMon.run_poisson ~seed ~requests ~rate mon_cfg)
          messages
      in
      {
        rate;
        series =
          [
            ("basic", basic);
            ("monitored", mon);
            ( "overhead",
              { mean = mon.mean -. basic.mean; ci95 = mon.ci95 +. basic.ci95 }
            );
          ];
      })

(* ------------------------------------------------------------------ *)
(* Recovery drills (Section 6)                                         *)

type recovery_row = {
  scenario : string;
  completed : int;
  recoveries : int;
  regenerated : int;
  takeovers : int;
  served_after_fault : bool;
}

let note o name = List.assoc_opt name (o : Sim_runner.outcome).notes
let note0 o name = Option.value ~default:0 (note o name)

(* Drive a resilient simulation under load; from t=5.0 keep probing
   every 50 ms until the fault can actually be injected (e.g. the
   token may be in flight at any single sampling instant), then
   observe whether service continues. [inject] returns [true] once it
   has fired. *)
let drill ~n ~scenario ~inject () =
  let cfg =
    Resilient.config ~token_timeout:2.0 ~enquiry_timeout:1.0
      ~arbiter_timeout:3.0 ~n ()
  in
  let t = RRes.create ~seed:77 cfg in
  let engine = RRes.engine t in
  let rng = Simkit.Rng.create 4242 in
  for i = 0 to n - 1 do
    let node_rng = Simkit.Rng.split rng in
    ignore
      (Simkit.Workload.poisson engine ~rng:node_rng ~rate:0.3
         ~on_arrival:(fun _ -> RRes.request t i))
  done;
  let rec arm_probe delay =
    ignore
      (Simkit.Engine.schedule engine ~delay (fun _ ->
           if not (inject t) then arm_probe 0.05))
  in
  arm_probe 5.0;
  RRes.step_until t 5.0;
  let before = (RRes.outcome t).completed in
  RRes.step_until t 120.0;
  let o = RRes.outcome t in
  {
    scenario;
    completed = o.completed;
    recoveries = note0 o "recovery-started";
    regenerated = note0 o "token-regenerated";
    takeovers = note0 o "arbiter-takeover";
    served_after_fault = o.completed > before + 10;
  }

let find_node ~n t pred =
  let rec go i =
    if i >= 0 then if pred (RRes.state t i) then Some i else go (i - 1)
    else None
  in
  go (n - 1)

let table_recovery ?(n = 10) () =
  let holder_crash () =
    drill ~n ~scenario:"token holder crashes in CS" ~inject:(fun t ->
        match
          find_node ~n t (fun st ->
              st.Protocol.in_cs || st.Protocol.token <> None)
        with
        | Some i ->
            RRes.crash t i;
            true
        | None -> false)
      ()
  in
  let privilege_drop () =
    drill ~n ~scenario:"PRIVILEGE message lost in transit" ~inject:(fun t ->
        let dropped = ref false in
        Simkit.Network.set_interceptor (RRes.network t)
          (fun ~src:_ ~dst:_ msg ->
            match msg with
            | Protocol.Privilege _ when not !dropped ->
                dropped := true;
                Simkit.Network.Drop
            | _ -> Simkit.Network.Deliver);
        true)
      ()
  in
  let arbiter_crash () =
    drill ~n ~scenario:"current arbiter crashes" ~inject:(fun t ->
        let is_arbiter st =
          match st.Protocol.role with
          | Protocol.Await_token _ | Protocol.Collecting _ -> true
          | Protocol.Normal | Protocol.Forwarding _ -> false
        in
        match
          find_node ~n t (fun st -> is_arbiter st && st.Protocol.token = None)
        with
        | Some i ->
            RRes.crash t i;
            true
        | None -> false)
      ()
  in
  let minimal_three () =
    drill ~n ~scenario:"all but three nodes crash" ~inject:(fun t ->
        (* Keep the token holder, the believed arbiter and one more
           node alive: the paper's minimal operational set. *)
        match
          find_node ~n t (fun st ->
              st.Protocol.token <> None || st.Protocol.in_cs)
        with
        | None -> false
        | Some holder ->
            let arbiter = (RRes.state t holder).Protocol.arbiter in
            let third = (holder + 1) mod n in
            let keep =
              List.sort_uniq compare [ holder; arbiter; third ]
            in
            for i = 0 to n - 1 do
              if not (List.mem i keep) then RRes.crash t i
            done;
            true)
      ()
  in
  Simkit.Pool.map
    [ holder_crash; privilege_drop; arbiter_crash; minimal_three ]
    ~f:(fun d -> d ())

(* ------------------------------------------------------------------ *)
(* All-algorithms context table                                        *)

let table_all_algorithms ?(n = 10) ?(requests = 30_000) ?(runs = 3) () =
  let cfg = Types.Config.default ~n in
  let pair (type s)
      (run_poisson :
        seed:int -> requests:int -> rate:float -> Types.Config.t -> s)
      (run_saturated : seed:int -> requests:int -> Types.Config.t -> s)
      (metric : s -> float) =
    ( replicated ~runs
        (fun ~seed -> run_poisson ~seed ~requests ~rate:low_rate cfg)
        metric,
      replicated ~runs
        (fun ~seed -> run_saturated ~seed ~requests cfg)
        metric )
  in
  (* One task per algorithm: each measures its own low-load and
     saturated pair, so the nine algorithms run concurrently. *)
  let algorithms =
    [
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RBasic.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RBasic.run_saturated ~seed ~requests cfg)
            messages
        in
        ("this-paper (basic)", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RSK.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RSK.run_saturated ~seed ~requests cfg)
            messages
        in
        ("suzuki-kasami", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RRay.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RRay.run_saturated ~seed ~requests cfg)
            messages
        in
        ("raymond-tree", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RRA.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RRA.run_saturated ~seed ~requests cfg)
            messages
        in
        ("ricart-agrawala", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RLam.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RLam.run_saturated ~seed ~requests cfg)
            messages
        in
        ("lamport", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RSing.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RSing.run_saturated ~seed ~requests cfg)
            messages
        in
        ("singhal-dynamic", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RMk.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RMk.run_saturated ~seed ~requests cfg)
            messages
        in
        ("maekawa", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RTq.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RTq.run_saturated ~seed ~requests cfg)
            messages
        in
        ("tree-quorum", low, sat));
      (fun () ->
        let low, sat =
          pair
            (fun ~seed ~requests ~rate cfg -> RCs.run_poisson ~seed ~requests ~rate cfg)
            (fun ~seed ~requests cfg -> RCs.run_saturated ~seed ~requests cfg)
            messages
        in
        ("central-server", low, sat));
    ]
  in
  Simkit.Pool.map algorithms ~f:(fun a -> a ())

(* Eq. 1 charges, per non-self CS at light load: 1 REQUEST, (N-1)
   NEW-ARBITER messages, 1 PRIVILEGE; the requester-is-arbiter case
   (probability 1/N) charges nothing. Eq. 4 charges, per N CSs at
   saturation: N REQUESTs (minus the arbiter's own), N-1 PRIVILEGE
   hops and one (N-1)-message broadcast. *)
let table_message_mix ?(n = 10) ?(requests = 30_000) () =
  let nf = float_of_int n in
  let cfg = Basic.config ~n () in
  let low, sat =
    match
      Simkit.Pool.map
        [
          (fun () -> RBasic.run_poisson ~seed:44 ~requests ~rate:low_rate cfg);
          (fun () -> RBasic.run_saturated ~seed:44 ~requests cfg);
        ]
        ~f:(fun s -> s ())
    with
    | [ low; sat ] -> (low, sat)
    | _ -> assert false
  in
  let per_cs (o : Sim_runner.outcome) kind =
    float_of_int
      (match List.assoc_opt kind o.Sim_runner.by_kind with
      | Some v -> v
      | None -> 0)
    /. float_of_int o.Sim_runner.completed
  in
  let non_self = 1.0 -. (1.0 /. nf) in
  (* Saturation analytic terms use the paper's Eq. 4 decomposition:
     N REQUESTs, N-1 PRIVILEGE hops and one (N-1)-message broadcast per
     N critical sections. Our realization swaps one unit between the
     first two terms — the arbiter registers its own request without a
     message (paper charges it) while the token takes one extra hop
     from the dispatching arbiter to Head(Q) (paper folds it away) —
     and the total matches Eq. 4 exactly. *)
  [
    ("REQUEST", per_cs low "REQUEST", non_self, per_cs sat "REQUEST", 1.0);
    ("PRIVILEGE", per_cs low "PRIVILEGE", non_self,
     per_cs sat "PRIVILEGE", non_self);
    ("NEW-ARBITER", per_cs low "NEW-ARBITER", non_self *. (nf -. 1.0),
     per_cs sat "NEW-ARBITER", (nf -. 1.0) /. nf);
  ]

let print_message_mix ppf rows =
  Format.fprintf ppf
    "@[<v>== message mix per CS: Eqs. 1 and 4 term by term (N=10) ==@,";
  Format.fprintf ppf "%-12s | %10s | %10s | %10s | %10s@," "kind"
    "low meas" "low Eq.1" "sat meas" "sat Eq.4";
  List.iter
    (fun (kind, lm, la, sm, sa) ->
      Format.fprintf ppf "%-12s | %10.3f | %10.3f | %10.3f | %10.3f@," kind
        lm la sm sa)
    rows;
  Format.fprintf ppf
    "note: at saturation our realization moves one unit from REQUEST@,";
  Format.fprintf ppf
    "(arbiter self-enqueues, no message) to PRIVILEGE (explicit hop to@,";
  Format.fprintf ppf
    "Head(Q)); the terms swap but the Eq. 4 total is exact.@,@]"

(* ------------------------------------------------------------------ *)
(* Section 5.1: load balance and fairness                              *)

type balance_row = {
  node : int;
  req_rate : float;
  grants_share : float;
  arbiter_share : float;
  msg_share : float;
}

module RFair = Sim_runner.Make (Fair)

let table_load_balance ?(n = 10) ?(requests = 30_000) () =
  (* Node i offers load proportional to i: nodes 0 and 1 are idle
     freeloaders, node n-1 is the chattiest. *)
  let rate i = 0.05 *. float_of_int i in
  let cfg = Basic.config ~n () in
  let t = RBasic.create ~seed:91 cfg in
  let rng = Simkit.Rng.create 17 in
  for i = 0 to n - 1 do
    let node_rng = Simkit.Rng.split rng in
    if rate i > 0.0 then
      ignore
        (Simkit.Workload.poisson (RBasic.engine t) ~rng:node_rng
           ~rate:(rate i) ~on_arrival:(fun _ -> RBasic.request t i))
  done;
  let horizon =
    float_of_int requests
    /. List.fold_left (fun a i -> a +. rate i) 0.0 (List.init n Fun.id)
  in
  RBasic.step_until t horizon;
  let o = RBasic.outcome t in
  let total f =
    float_of_int (Array.fold_left (fun a st -> a + f st) 0 o.Sim_runner.per_node)
  in
  let tg = total (fun st -> st.Sim_runner.grants)
  and td = total (fun st -> st.Sim_runner.dispatches)
  and tm = total (fun st -> st.Sim_runner.sent) in
  let share x t = if t = 0.0 then 0.0 else float_of_int x /. t in
  let rows =
    List.init n (fun i ->
        let st = o.Sim_runner.per_node.(i) in
        {
          node = i;
          req_rate = rate i;
          grants_share = share st.Sim_runner.grants tg;
          arbiter_share = share st.Sim_runner.dispatches td;
          msg_share = share st.Sim_runner.sent tm;
        })
  in
  (* Jain fairness of arbiter duty per unit of offered load, over the
     requesting nodes only: 1.0 = duty exactly proportional to load. *)
  let normalized =
    rows
    |> List.filter (fun r -> r.req_rate > 0.0)
    |> List.map (fun r -> r.arbiter_share /. r.req_rate)
    |> Array.of_list
  in
  (rows, Simkit.Stats.jain_fairness normalized)

let table_fairness ?(n = 8) ?(requests = 20_000) () =
  (* Skewed demand: half the nodes request 4x as often. Measure how
     evenly grants are spread per unit of demand. *)
  let rate i = if i < n / 2 then 0.8 else 0.2 in
  let run (type s m tm)
      (module A : Types.ALGO
        with type state = s and type message = m and type timer = tm) cfg =
    let module R = Sim_runner.Make (A) in
    let t = R.create ~seed:92 cfg in
    let rng = Simkit.Rng.create 23 in
    for i = 0 to n - 1 do
      let node_rng = Simkit.Rng.split rng in
      ignore
        (Simkit.Workload.poisson (R.engine t) ~rng:node_rng ~rate:(rate i)
           ~on_arrival:(fun _ -> R.request t i))
    done;
    let horizon =
      float_of_int requests
      /. List.fold_left (fun a i -> a +. rate i) 0.0 (List.init n Fun.id)
    in
    R.step_until t horizon;
    let o = R.outcome t in
    let per_demand =
      Array.mapi
        (fun i st -> float_of_int st.Sim_runner.grants /. rate i)
        o.Sim_runner.per_node
    in
    (Simkit.Stats.jain_fairness per_demand, o.Sim_runner.messages_per_cs)
  in
  Simkit.Pool.map
    [
      (fun () -> ("fcfs (basic)", run (module Basic) (Basic.config ~n ())));
      (fun () -> ("least-served-first", run (module Fair) (Fair.config ~n ())));
    ]
    ~f:(fun v ->
      let name, (jain, msgs) = v () in
      (name, jain, msgs))

let table_delay_model ?(n = 10) ?(requests = 20_000) ?(runs = 3)
    ?(rates = [ 0.02; 0.1; 0.2; 0.3; 0.4; 0.45 ]) () =
  let cfg = Basic.config ~n () in
  Simkit.Pool.map rates ~f:(fun rate ->
      let measured =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate cfg)
          delay
      in
      let predicted =
        match Analysis.predicted_delay cfg ~rate with
        | Some p -> { mean = p; ci95 = 0.0 }
        | None -> { mean = nan; ci95 = 0.0 }
      in
      { rate; series = [ ("predicted", predicted); ("measured", measured) ] })

(* ------------------------------------------------------------------ *)
(* Topology sensitivity                                                *)

let table_topology ?(n = 10) ?(requests = 20_000) () =
  Simkit.Pool.map Simkit.Topology.all ~f:(fun topo ->
      let cfg = Basic.config ~n () in
      let latency = Simkit.Topology.latency topo ~n ~per_hop:0.1 in
      let o = RBasic.run_saturated ~seed:93 ~requests ~latency cfg in
      ( Format.asprintf "%a" Simkit.Topology.pp topo,
        Simkit.Topology.mean_distance topo ~n,
        o.Sim_runner.messages_per_cs,
        o.Sim_runner.mean_delay ))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let table_collection_tuning ?(n = 10) ?(requests = 30_000) ?(runs = 3)
    ?(t_collects = [ 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 ]) ?(rate = 0.2) () =
  Simkit.Pool.map t_collects ~f:(fun t_collect ->
      let cfg = Basic.config ~t_collect ~n () in
      let msgs =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate cfg)
          messages
      in
      let dly =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate cfg)
          delay
      in
      { rate = t_collect; series = [ ("messages/CS", msgs); ("delay", dly) ] })

let table_skip_broadcast ?(n = 10) ?(requests = 30_000) ?(runs = 3) () =
  let rates = [ 0.005; 0.02; 0.1 ] in
  Simkit.Pool.map rates ~f:(fun rate ->
      let base = Basic.config ~n () in
      let on = { base with Types.Config.skip_new_arbiter_to_tail = true } in
      let m_off =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate base)
          messages
      in
      let m_on =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate on)
          messages
      in
      { rate; series = [ ("broadcast-always", m_off); ("skip-to-tail", m_on) ] })

let table_forwarding_tuning ?(n = 10) ?(requests = 30_000) ?(runs = 3)
    ?(t_forwards = [ 0.0; 0.05; 0.1; 0.2; 0.4 ]) ?(rate = 0.2) () =
  Simkit.Pool.map t_forwards ~f:(fun t_forward ->
      let cfg =
        { (Basic.config ~n ()) with Types.Config.t_forward }
      in
      let run metric =
        replicated ~runs
          (fun ~seed -> RBasic.run_poisson ~seed ~requests ~rate cfg)
          metric
      in
      {
        rate = t_forward;
        series =
          [
            ("forwarded-frac", run forwarded);
            ("messages/CS", run messages);
            ("delay", run delay);
          ];
      })

(* ------------------------------------------------------------------ *)
(* Big-N comparison lab: table:scale, table:wan, table:faults          *)

(* The full comparison set as first-class modules, with each
   algorithm's canonical config for a given N. Every sweep below
   instantiates its own [Sim_runner.Make] at the point, so points stay
   independent and Pool-dispatchable. *)
let comparison_set : (string * (module Types.ALGO) * (int -> Types.Config.t)) list
    =
  [
    ( "this-paper (basic)",
      (module Basic : Types.ALGO),
      fun n -> Basic.config ~n () );
    ( "suzuki-kasami",
      (module Baselines.Suzuki_kasami : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "raymond-tree",
      (module Baselines.Raymond : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "ricart-agrawala",
      (module Baselines.Ricart_agrawala : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "lamport",
      (module Baselines.Lamport : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "singhal-dynamic",
      (module Baselines.Singhal : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "maekawa",
      (module Baselines.Maekawa : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "tree-quorum",
      (module Baselines.Tree_quorum : Types.ALGO),
      fun n -> Types.Config.default ~n );
    ( "central-server",
      (module Baselines.Central_server : Types.ALGO),
      fun n -> Types.Config.default ~n );
  ]

type scale_cell = {
  n_nodes : int;
  msgs : point;
  dly : point;
  alloc_mb : float;
}

type scale_row = {
  algorithm : string;
  cells : scale_cell list;
  exponent : float;
}

let default_scale_ns = [ 10; 50; 100; 250; 500; 1000 ]

(* One sweep point: [replicates] saturated runs at a fixed (algorithm,
   N), all sharing a single simulation arena via [Sim_runner.reset] —
   the per-point state is allocated once, so even N=1000 points cost
   one engine/network/node-array build. [alloc_mb] is the total bytes
   allocated by the point (GC-reported, so minor-heap churn counts),
   the memory-cost metric the scaling table compares. *)
let scale_point (module A : Types.ALGO) cfg ~requests ~replicates =
  let module R = Sim_runner.Make (A) in
  let before = Gc.allocated_bytes () in
  let m_tally = Simkit.Stats.Tally.create () in
  let d_tally = Simkit.Stats.Tally.create () in
  let t = R.create ~seed:1000 cfg in
  for k = 0 to replicates - 1 do
    if k > 0 then R.reset ~seed:(1000 + (7919 * k)) t;
    let o = R.saturate ~requests t in
    Simkit.Stats.Tally.add m_tally o.Sim_runner.messages_per_cs;
    Simkit.Stats.Tally.add d_tally o.Sim_runner.mean_delay
  done;
  let alloc_mb = (Gc.allocated_bytes () -. before) /. (1024.0 *. 1024.0) in
  ( {
      mean = Simkit.Stats.Tally.mean m_tally;
      ci95 = Simkit.Stats.Tally.ci95_halfwidth m_tally;
    },
    {
      mean = Simkit.Stats.Tally.mean d_tally;
      ci95 = Simkit.Stats.Tally.ci95_halfwidth d_tally;
    },
    alloc_mb )

(* Least-squares slope of ln(messages/CS) against ln(N): the empirical
   scaling exponent. ~0 for token-asking algorithms whose per-CS cost
   is O(1) amortized, ~1 for broadcast-per-CS algorithms. *)
let scale_exponent cells =
  let pts =
    List.filter_map
      (fun c ->
        if c.msgs.mean > 0.0 then
          Some (log (float_of_int c.n_nodes), log c.msgs.mean)
        else None)
      cells
  in
  match pts with
  | [] | [ _ ] -> 0.0
  | pts ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
      ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

(* Per-point request budget. Two epochs (2N requests) for every
   algorithm: the dmutex Eq. 4 band needs at least N requests to
   complete a saturated epoch (below that, messages/CS reads under
   2.5), and for broadcast algorithms the O(N²) start-up flood then
   amortizes over enough CS executions to approximate steady state.
   The [~algorithm] parameter lets callers reshape the budget per
   algorithm (e.g. trimming broadcast baselines in a constrained CI
   lane) without forking the sweep. *)
let default_scale_requests ~algorithm:_ ~n = 2 * n

let table_scale ?(ns = default_scale_ns) ?requests_at ?(replicates = 2) () =
  let requests_at =
    match requests_at with Some f -> f | None -> default_scale_requests
  in
  (* One Pool task per (algorithm, N) point: the N=1000 broadcast
     algorithms dominate wall-clock, so finer granularity than
     one-task-per-algorithm keeps the domains busy. *)
  let points =
    List.concat_map
      (fun (name, m, cfg_of) -> List.map (fun n -> (name, m, cfg_of, n)) ns)
      comparison_set
  in
  let cells =
    Simkit.Pool.map points ~f:(fun (name, m, cfg_of, n) ->
        let msgs, dly, alloc_mb =
          scale_point m (cfg_of n)
            ~requests:(requests_at ~algorithm:name ~n)
            ~replicates
        in
        (name, { n_nodes = n; msgs; dly; alloc_mb }))
  in
  List.map
    (fun (name, _, _) ->
      let mine =
        List.filter_map
          (fun (nm, c) -> if String.equal nm name then Some c else None)
          cells
      in
      let mine =
        List.sort (fun a b -> compare a.n_nodes b.n_nodes) mine
      in
      { algorithm = name; cells = mine; exponent = scale_exponent mine })
    comparison_set

type wan_region_stats = {
  region : int;
  grants : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type wan_row = {
  wan_algorithm : string;
  scenario : string;
  wan_msgs : float;
  wan_mean_delay : float;
  regions : wan_region_stats list;
}

(* Three regions in blocks (nodes 0..n/3-1 in region 0, ...), with a
   one-way latency matrix shaped like a US/EU/APAC triangle (seconds
   scaled to the paper's T_msg=0.1 LAN unit: intra-region fast,
   transpacific slowest). *)
let wan_region_of ~n ~nregions i = i * nregions / n

let wan_scenarios ~n =
  let nregions = 3 in
  let region_of = Array.init n (wan_region_of ~n ~nregions) in
  let base =
    [|
      [| 0.02; 0.12; 0.18 |];
      [| 0.12; 0.02; 0.25 |];
      [| 0.18; 0.25; 0.02 |];
    |]
  in
  ( nregions,
    region_of,
    [
      ("lan-uniform", Simkit.Network.Uniform (0.05, 0.15));
      ( "wan-regions",
        Simkit.Network.regions ~region_of ~base ~jitter_sigma:0.3 () );
      ( "wan-pareto",
        Simkit.Network.Pareto { scale = 0.02; shape = 1.5; cap = 5.0 } );
    ] )

let wan_algorithms =
  List.filter
    (fun (name, _, _) ->
      List.mem name
        [ "this-paper (basic)"; "suzuki-kasami"; "ricart-agrawala" ])
    comparison_set

let table_wan ?(n = 12) ?(requests = 3_000) () =
  let nregions, region_of, scenarios = wan_scenarios ~n in
  let points =
    List.concat_map
      (fun (name, m, cfg_of) ->
        List.map (fun (scen, lat) -> (name, m, cfg_of, scen, lat)) scenarios)
      wan_algorithms
  in
  Simkit.Pool.map points ~f:(fun (name, m, cfg_of, scenario, latency) ->
      let module A = (val m : Types.ALGO) in
      let module R = Sim_runner.Make (A) in
      let t = R.create ~seed:4242 ~latency (cfg_of n) in
      (* Per-region request→exit delay distributions. Saturated delays
         are full-rotation waits (N · (T_exec + latency)), so the
         histogram spans well past the heaviest Pareto rotation. *)
      let hists =
        Array.init nregions (fun _ ->
            Simkit.Stats.Histogram.create ~lo:0.0 ~hi:60.0 ~buckets:1200)
      in
      R.on_grant t (fun ~node ~delay ->
          Simkit.Stats.Histogram.add hists.(region_of.(node)) delay);
      let o = R.saturate ~requests t in
      let regions =
        List.init nregions (fun r ->
            let h = hists.(r) in
            let q x =
              if Simkit.Stats.Histogram.count h = 0 then 0.0
              else Simkit.Stats.Histogram.quantile h x
            in
            {
              region = r;
              grants = Simkit.Stats.Histogram.count h;
              p50 = q 0.5;
              p95 = q 0.95;
              p99 = q 0.99;
            })
      in
      {
        wan_algorithm = name;
        scenario;
        wan_msgs = o.Sim_runner.messages_per_cs;
        wan_mean_delay = o.Sim_runner.mean_delay;
        regions;
      })

type fault_row = {
  fault_algorithm : string;
  supported : bool;
  fault_completed : int;
  fault_msgs : float;
  fault_mean_delay : float;
  fault_max_delay : float;
  fault_unserved : int;
}

(* One schedule replayed verbatim against every algorithm: two
   crash-and-restart events (one early, one mid-run) and a 5% loss
   window. Algorithms without a failure model refuse the plan loudly
   ([Types.Unsupported_fault]) and are reported as unsupported rather
   than silently measured. *)
let default_fault_plan ~n : Sim_runner.fault_plan =
  [
    Sim_runner.Crash_at { node = 1 mod n; at = 15.0; restart_after = Some 8.0 };
    Sim_runner.Crash_at { node = n / 2; at = 40.0; restart_after = Some 10.0 };
    Sim_runner.Loss_between { from_ = 60.0; until_ = 75.0; p = 0.05 };
  ]

let fault_set ~n:_ =
  ( "this-paper (resilient)",
    (module Resilient : Types.ALGO),
    fun n ->
      Resilient.config ~token_timeout:2.0 ~enquiry_timeout:1.0
        ~arbiter_timeout:3.0 ~n () )
  :: List.filter
       (fun (name, _, _) -> not (String.equal name "this-paper (basic)"))
       comparison_set

let table_faults ?(n = 10) ?(requests = 2_000) () =
  let plan = default_fault_plan ~n in
  Simkit.Pool.map (fault_set ~n) ~f:(fun (name, m, cfg_of) ->
      let module A = (val m : Types.ALGO) in
      let module R = Sim_runner.Make (A) in
      match
        let t = R.create ~seed:77 (cfg_of n) in
        (* Horizon bound: a wedged recovery must end the run, not hang
           the sweep. Generous vs the ~0.2 s/CS saturated cycle. *)
        R.saturate ~requests ~faults:plan
          ~until:(1000.0 +. (0.5 *. float_of_int requests))
          t
      with
      | o ->
          {
            fault_algorithm = name;
            supported = true;
            fault_completed = o.Sim_runner.completed;
            fault_msgs = o.Sim_runner.messages_per_cs;
            fault_mean_delay = o.Sim_runner.mean_delay;
            fault_max_delay = o.Sim_runner.max_delay;
            fault_unserved = o.Sim_runner.unserved;
          }
      | exception Types.Unsupported_fault _ ->
          {
            fault_algorithm = name;
            supported = false;
            fault_completed = 0;
            fault_msgs = 0.0;
            fault_mean_delay = 0.0;
            fault_max_delay = 0.0;
            fault_unserved = 0;
          })

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let print_sweep ?(xlabel = "rate") ~title ppf rows =
  Format.fprintf ppf "@[<v>== %s ==@," title;
  (match rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "%10s" xlabel;
      List.iter
        (fun (name, _) -> Format.fprintf ppf " | %22s" name)
        first.series;
      Format.fprintf ppf "@,";
      List.iter
        (fun row ->
          Format.fprintf ppf "%10.3f" row.rate;
          List.iter
            (fun (_, p) ->
              Format.fprintf ppf " | %12.4f +/-%6.4f" p.mean p.ci95)
            row.series;
          Format.fprintf ppf "@,")
        rows);
  Format.fprintf ppf "@]"

let print_bounds ~title ppf rows =
  Format.fprintf ppf "@[<v>== %s ==@,%6s | %12s | %12s | %8s@," title "N"
    "analytic" "measured" "ratio";
  List.iter
    (fun (r : bound_row) ->
      Format.fprintf ppf "%6d | %12.4f | %12.4f | %8.3f@," r.n_nodes r.analytic
        r.measured.mean
        (r.measured.mean /. r.analytic))
    rows;
  Format.fprintf ppf "@]"

let print_recovery ppf rows =
  Format.fprintf ppf
    "@[<v>== Section 6 recovery drills (resilient variant) ==@,";
  Format.fprintf ppf "%-34s | %9s | %10s | %11s | %9s | %s@," "scenario"
    "completed" "recoveries" "regenerated" "takeovers" "progress";
  List.iter
    (fun (r : recovery_row) ->
      Format.fprintf ppf "%-34s | %9d | %10d | %11d | %9d | %s@," r.scenario
        r.completed r.recoveries r.regenerated r.takeovers
        (if r.served_after_fault then "RESUMED" else "STALLED"))
    rows;
  Format.fprintf ppf "@]"

let print_balance ppf (rows, jain) =
  Format.fprintf ppf
    "@[<v>== Section 5.1 load balance (heterogeneous demand) ==@,";
  Format.fprintf ppf "%5s | %8s | %12s | %13s | %10s@," "node" "rate"
    "grants-share" "arbiter-share" "msg-share";
  List.iter
    (fun r ->
      Format.fprintf ppf "%5d | %8.3f | %12.3f | %13.3f | %10.3f@," r.node
        r.req_rate r.grants_share r.arbiter_share r.msg_share)
    rows;
  Format.fprintf ppf
    "Jain index of arbiter duty per unit load (requesters): %.3f@,@]" jain

let print_fairness ppf rows =
  Format.fprintf ppf
    "@[<v>== Section 5.1 strict fairness: FCFS vs least-served-first ==@,";
  Format.fprintf ppf "%-20s | %16s | %12s@," "policy" "Jain(grants/rate)"
    "messages/CS";
  List.iter
    (fun (name, jain, msgs) ->
      Format.fprintf ppf "%-20s | %16.4f | %12.3f@," name jain msgs)
    rows;
  Format.fprintf ppf "@]"

let print_topology ppf rows =
  Format.fprintf ppf
    "@[<v>== topology sensitivity (saturated, per-hop latency 0.1) ==@,";
  Format.fprintf ppf "%-10s | %10s | %12s | %10s@," "topology" "mean-hops"
    "messages/CS" "delay/CS";
  List.iter
    (fun (name, hops, msgs, delay) ->
      Format.fprintf ppf "%-10s | %10.2f | %12.3f | %10.3f@," name hops msgs
        delay)
    rows;
  Format.fprintf ppf "@]"

let print_algorithms ppf rows =
  Format.fprintf ppf "@[<v>== messages per CS: all algorithms (N=10) ==@,";
  Format.fprintf ppf "%-22s | %22s | %22s@," "algorithm" "low load"
    "saturation";
  List.iter
    (fun (name, low, sat) ->
      Format.fprintf ppf "%-22s | %12.3f +/-%6.3f | %12.3f +/-%6.3f@," name
        low.mean low.ci95 sat.mean sat.ci95)
    rows;
  Format.fprintf ppf "@]"

let print_scale ppf rows =
  Format.fprintf ppf "@[<v>== big-N scaling: messages/CS (top), delay, alloc MB ==@,";
  (match rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "%-22s" "algorithm";
      List.iter
        (fun c -> Format.fprintf ppf " | N=%-9d" c.n_nodes)
        first.cells;
      Format.fprintf ppf " | %8s@," "exponent";
      List.iter
        (fun r ->
          Format.fprintf ppf "%-22s" r.algorithm;
          List.iter
            (fun c -> Format.fprintf ppf " | %11.3f" c.msgs.mean)
            r.cells;
          Format.fprintf ppf " | %8.3f@," r.exponent;
          Format.fprintf ppf "%-22s" "  delay";
          List.iter
            (fun c -> Format.fprintf ppf " | %11.3f" c.dly.mean)
            r.cells;
          Format.fprintf ppf " |@,";
          Format.fprintf ppf "%-22s" "  alloc-MB";
          List.iter
            (fun c -> Format.fprintf ppf " | %11.2f" c.alloc_mb)
            r.cells;
          Format.fprintf ppf " |@,")
        rows);
  Format.fprintf ppf "@]"

let print_wan ppf rows =
  Format.fprintf ppf
    "@[<v>== WAN delay models: per-region CS latency percentiles ==@,";
  Format.fprintf ppf "%-22s | %-12s | %11s | %6s | %8s %8s %8s@," "algorithm"
    "scenario" "messages/CS" "region" "p50" "p95" "p99";
  List.iter
    (fun r ->
      List.iteri
        (fun i reg ->
          Format.fprintf ppf "%-22s | %-12s | %11s | %6d | %8.3f %8.3f %8.3f@,"
            (if i = 0 then r.wan_algorithm else "")
            (if i = 0 then r.scenario else "")
            (if i = 0 then Printf.sprintf "%.3f" r.wan_msgs else "")
            reg.region reg.p50 reg.p95 reg.p99)
        r.regions)
    rows;
  Format.fprintf ppf "@]"

let print_faults ppf rows =
  Format.fprintf ppf
    "@[<v>== uniform fault schedule: recovery cost per algorithm ==@,";
  Format.fprintf ppf "%-24s | %-11s | %9s | %11s | %10s | %9s | %8s@,"
    "algorithm" "faults" "completed" "messages/CS" "mean-delay" "max-delay"
    "unserved";
  List.iter
    (fun r ->
      if r.supported then
        Format.fprintf ppf "%-24s | %-11s | %9d | %11.3f | %10.3f | %9.3f | %8d@,"
          r.fault_algorithm "injected" r.fault_completed r.fault_msgs
          r.fault_mean_delay r.fault_max_delay r.fault_unserved
      else
        Format.fprintf ppf "%-24s | %-11s | %9s | %11s | %10s | %9s | %8s@,"
          r.fault_algorithm "UNSUPPORTED" "-" "-" "-" "-" "-")
    rows;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* CSV export                                                          *)

module Csv = struct
  let buf_add_row buf cells =
    Buffer.add_string buf (String.concat "," cells);
    Buffer.add_char buf '\n'

  (* Quote a field if it contains a comma or a quote. *)
  let field s =
    if String.exists (fun c -> c = ',' || c = '"') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s

  let of_sweep (rows : sweep_row list) =
    let buf = Buffer.create 1024 in
    (match rows with
    | [] -> buf_add_row buf [ "x" ]
    | first :: _ ->
        buf_add_row buf
          ("x"
          :: List.concat_map
               (fun (name, _) ->
                 [ field (name ^ " mean"); field (name ^ " ci95") ])
               first.series);
        List.iter
          (fun (row : sweep_row) ->
            buf_add_row buf
              (Printf.sprintf "%g" row.rate
              :: List.concat_map
                   (fun (_, (p : point)) ->
                     [ Printf.sprintf "%g" p.mean; Printf.sprintf "%g" p.ci95 ])
                   row.series))
          rows);
    Buffer.contents buf

  let of_bounds (rows : bound_row list) =
    let buf = Buffer.create 512 in
    buf_add_row buf [ "n"; "analytic"; "measured"; "ci95"; "ratio" ];
    List.iter
      (fun (r : bound_row) ->
        buf_add_row buf
          [
            string_of_int r.n_nodes;
            Printf.sprintf "%g" r.analytic;
            Printf.sprintf "%g" r.measured.mean;
            Printf.sprintf "%g" r.measured.ci95;
            Printf.sprintf "%g" (r.measured.mean /. r.analytic);
          ])
      rows;
    Buffer.contents buf

  let of_recovery (rows : recovery_row list) =
    let buf = Buffer.create 512 in
    buf_add_row buf
      [
        "scenario"; "completed"; "recoveries"; "regenerated"; "takeovers";
        "resumed";
      ];
    List.iter
      (fun (r : recovery_row) ->
        buf_add_row buf
          [
            field r.scenario;
            string_of_int r.completed;
            string_of_int r.recoveries;
            string_of_int r.regenerated;
            string_of_int r.takeovers;
            string_of_bool r.served_after_fault;
          ])
      rows;
    Buffer.contents buf

  let of_algorithms rows =
    let buf = Buffer.create 512 in
    buf_add_row buf
      [ "algorithm"; "low mean"; "low ci95"; "sat mean"; "sat ci95" ];
    List.iter
      (fun (name, (low : point), (sat : point)) ->
        buf_add_row buf
          [
            field name;
            Printf.sprintf "%g" low.mean;
            Printf.sprintf "%g" low.ci95;
            Printf.sprintf "%g" sat.mean;
            Printf.sprintf "%g" sat.ci95;
          ])
      rows;
    Buffer.contents buf

  let of_balance ((rows : balance_row list), jain) =
    let buf = Buffer.create 512 in
    buf_add_row buf
      [ "node"; "rate"; "grants_share"; "arbiter_share"; "msg_share" ];
    List.iter
      (fun (r : balance_row) ->
        buf_add_row buf
          [
            string_of_int r.node;
            Printf.sprintf "%g" r.req_rate;
            Printf.sprintf "%g" r.grants_share;
            Printf.sprintf "%g" r.arbiter_share;
            Printf.sprintf "%g" r.msg_share;
          ])
      rows;
    Buffer.add_string buf (Printf.sprintf "# jain_index,%g\n" jain);
    Buffer.contents buf

  let of_topology rows =
    let buf = Buffer.create 512 in
    buf_add_row buf [ "topology"; "mean_hops"; "messages_per_cs"; "delay" ];
    List.iter
      (fun (name, hops, msgs, delay) ->
        buf_add_row buf
          [
            field name;
            Printf.sprintf "%g" hops;
            Printf.sprintf "%g" msgs;
            Printf.sprintf "%g" delay;
          ])
      rows;
    Buffer.contents buf

  let of_scale (rows : scale_row list) =
    let buf = Buffer.create 1024 in
    buf_add_row buf
      [
        "algorithm"; "n"; "messages_per_cs"; "msgs_ci95"; "mean_delay";
        "delay_ci95"; "alloc_mb"; "exponent";
      ];
    List.iter
      (fun (r : scale_row) ->
        List.iter
          (fun (c : scale_cell) ->
            buf_add_row buf
              [
                field r.algorithm;
                string_of_int c.n_nodes;
                Printf.sprintf "%g" c.msgs.mean;
                Printf.sprintf "%g" c.msgs.ci95;
                Printf.sprintf "%g" c.dly.mean;
                Printf.sprintf "%g" c.dly.ci95;
                Printf.sprintf "%g" c.alloc_mb;
                Printf.sprintf "%g" r.exponent;
              ])
          r.cells)
      rows;
    Buffer.contents buf

  let of_wan (rows : wan_row list) =
    let buf = Buffer.create 1024 in
    buf_add_row buf
      [
        "algorithm"; "scenario"; "messages_per_cs"; "mean_delay"; "region";
        "grants"; "p50"; "p95"; "p99";
      ];
    List.iter
      (fun (r : wan_row) ->
        List.iter
          (fun (reg : wan_region_stats) ->
            buf_add_row buf
              [
                field r.wan_algorithm;
                field r.scenario;
                Printf.sprintf "%g" r.wan_msgs;
                Printf.sprintf "%g" r.wan_mean_delay;
                string_of_int reg.region;
                string_of_int reg.grants;
                Printf.sprintf "%g" reg.p50;
                Printf.sprintf "%g" reg.p95;
                Printf.sprintf "%g" reg.p99;
              ])
          r.regions)
      rows;
    Buffer.contents buf

  let of_faults (rows : fault_row list) =
    let buf = Buffer.create 512 in
    buf_add_row buf
      [
        "algorithm"; "supported"; "completed"; "messages_per_cs";
        "mean_delay"; "max_delay"; "unserved";
      ];
    List.iter
      (fun (r : fault_row) ->
        buf_add_row buf
          [
            field r.fault_algorithm;
            string_of_bool r.supported;
            string_of_int r.fault_completed;
            Printf.sprintf "%g" r.fault_msgs;
            Printf.sprintf "%g" r.fault_mean_delay;
            Printf.sprintf "%g" r.fault_max_delay;
            string_of_int r.fault_unserved;
          ])
      rows;
    Buffer.contents buf

  let write ~dir ~name csv =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc csv);
    path

end
