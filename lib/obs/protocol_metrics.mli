(** Shared protocol instrumentation.

    Both runtimes — the discrete-event simulator and the live TCP
    node — observe the same protocol activity: messages in and out,
    CS entries and exits, queue-length samples, phase durations,
    [Note] effects. This helper maps that activity onto the canonical
    series of {!Names} so the two runtimes stay comparable
    apples-to-apples (same names, same labels, same units).

    One instance per node. Instances may share a registry (the
    simulator aggregates a whole run into one) — series handles are
    find-or-create, so counts accumulate; but per-node transient
    state (outstanding request marks, CS entry time) lives in the
    instance. Timestamps are caller-supplied so simulated time and
    wall-clock time both work; only durations and deltas are ever
    derived from them. *)

type t

val create : ?labels:(string * string) list -> Registry.t -> t
(** [labels] (default none) are appended to every series this instance
    touches — the keyed runtime passes {!Names.lock_label} so each
    protocol instance on a node writes its own [lock=<key>] series
    while sharing the node's registry. *)

val registry : t -> Registry.t

val sent : t -> kind:string -> unit

val sent_many : t -> kind:string -> int -> unit
(** Count [n] sends of one kind at once (broadcast = n-1 sends). *)

val received : t -> kind:string -> unit

val mark_request : t -> now:float -> unit
(** The node (re-)issued a CS request. If a previous mark is still
    outstanding the new one is ignored — sync delay measures first
    request to entry, retries included. *)

val cs_entered : t -> now:float -> unit
(** Counts the entry; observes sync delay against the outstanding
    {!mark_request} (if any) and starts the CS occupancy span. *)

val cs_exited : t -> now:float -> unit
(** Closes the occupancy span opened by [cs_entered], if open. *)

val queue_length : t -> int -> unit

val read_batch : t -> int -> unit
(** One shared reader batch granted, of this size — counts
    {!Names.read_batches_total} and observes {!Names.read_batch_size}. *)

val phase : t -> name:string -> float -> unit
val note : t -> string -> unit
