type t = {
  messages_sent : int;
  messages_received : int;
  cs_entries : int;
  messages_per_cs : float;
  by_kind : (string * int) list;
  sync_delay_mean : float;
  sync_delay_max : float;
  queue_length_mean : float;
}

(* [lock = None] aggregates across every instance; [lock = Some l]
   restricts to series carrying a [lock=l] label. *)
let series_matches lock (s : Registry.series) =
  match lock with
  | None -> true
  | Some l -> List.assoc_opt "lock" s.labels = Some l

let counter_total ?lock snap name =
  List.fold_left
    (fun acc ((s : Registry.series), v) ->
      if String.equal s.name name && series_matches lock s then acc + v
      else acc)
    0 snap.Registry.counters

let counter_by_label ?lock snap name label =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ((s : Registry.series), v) ->
      if String.equal s.name name && series_matches lock s then
        match List.assoc_opt label s.labels with
        | Some l ->
            Hashtbl.replace tbl l
              (v + Option.value ~default:0 (Hashtbl.find_opt tbl l))
        | None -> ())
    snap.Registry.counters;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Merge every histogram series of [name] that passes the lock filter.
   Only count / sum / max feed the report, so the merge leaves buckets
   and min to the first series. *)
let histo ?lock snap name =
  let fmax a b =
    if Float.is_nan a then b else if Float.is_nan b then a else Float.max a b
  in
  List.fold_left
    (fun acc ((s : Registry.series), (h : Registry.histo)) ->
      if String.equal s.name name && series_matches lock s then
        match acc with
        | None -> Some h
        | Some (a : Registry.histo) ->
            Some
              {
                a with
                Registry.h_count = a.Registry.h_count + h.Registry.h_count;
                h_sum = a.Registry.h_sum +. h.Registry.h_sum;
                h_max = fmax a.Registry.h_max h.Registry.h_max;
              }
      else acc)
    None snap.Registry.histograms

let locks snap =
  let add acc ((s : Registry.series), _) =
    match List.assoc_opt "lock" s.labels with
    | Some l when not (List.mem l acc) -> l :: acc
    | _ -> acc
  in
  List.fold_left add
    (List.fold_left add [] snap.Registry.counters)
    snap.Registry.histograms
  |> List.sort compare

let derive ?lock snap =
  let messages_sent = counter_total ?lock snap Names.messages_sent_total in
  let messages_received =
    counter_total ?lock snap Names.messages_received_total
  in
  let cs_entries = counter_total ?lock snap Names.cs_entries_total in
  let messages_per_cs =
    if cs_entries = 0 then nan
    else float_of_int messages_sent /. float_of_int cs_entries
  in
  let sync = histo ?lock snap Names.sync_delay_seconds in
  let qlen = histo ?lock snap Names.queue_length in
  {
    messages_sent;
    messages_received;
    cs_entries;
    messages_per_cs;
    by_kind = counter_by_label ?lock snap Names.messages_sent_total "kind";
    sync_delay_mean =
      (match sync with Some h -> Registry.histo_mean h | None -> nan);
    sync_delay_max = (match sync with Some h -> h.Registry.h_max | None -> nan);
    queue_length_mean =
      (match qlen with Some h -> Registry.histo_mean h | None -> nan);
  }

let by_lock snap = List.map (fun l -> (l, derive ~lock:l snap)) (locks snap)

let jnum v = if Float.is_nan v then Json.Null else Json.Num v

let to_json t =
  Json.Obj
    [
      ("messages_sent", Json.Num (float_of_int t.messages_sent));
      ("messages_received", Json.Num (float_of_int t.messages_received));
      ("cs_entries", Json.Num (float_of_int t.cs_entries));
      ("messages_per_cs", jnum t.messages_per_cs);
      ( "by_kind",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) t.by_kind) );
      ("sync_delay_mean_s", jnum t.sync_delay_mean);
      ("sync_delay_max_s", jnum t.sync_delay_max);
      ("queue_length_mean", jnum t.queue_length_mean);
    ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>messages/CS %.3f (%d msgs / %d entries)@,sync delay mean %.4fs max %.4fs@,queue length mean %.2f@,by kind:%a@]"
    t.messages_per_cs t.messages_sent t.cs_entries t.sync_delay_mean
    t.sync_delay_max t.queue_length_mean
    (fun ppf l ->
      List.iter (fun (k, v) -> Format.fprintf ppf "@, %-12s %d" k v) l)
    t.by_kind
