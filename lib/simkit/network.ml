type latency =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Per_pair of (int -> int -> float)
  | Lognormal of { median : float; sigma : float }
  | Pareto of { scale : float; shape : float; cap : float }
  | Regions of {
      region_of : int array;
      base : float array array;
      jitter_sigma : float;
    }

let sample rng latency ~src ~dst =
  match latency with
  | Constant d -> d
  | Uniform (lo, hi) -> Rng.range rng lo hi
  | Exponential mean -> Rng.exponential rng ~rate:(1.0 /. mean)
  | Per_pair f -> f src dst
  | Lognormal { median; sigma } -> Rng.lognormal rng ~median ~sigma
  | Pareto { scale; shape; cap } -> Float.min cap (Rng.pareto rng ~scale ~shape)
  | Regions { region_of; base; jitter_sigma } ->
      let b = base.(region_of.(src)).(region_of.(dst)) in
      if jitter_sigma = 0.0 then b
      else b *. Rng.lognormal rng ~median:1.0 ~sigma:jitter_sigma

let regions ~region_of ~base ?(jitter_sigma = 0.0) () =
  let nr = Array.length base in
  Array.iter
    (fun r ->
      if r < 0 || r >= nr then
        invalid_arg "Network.regions: region id out of range")
    region_of;
  Array.iter
    (fun row ->
      if Array.length row <> nr then
        invalid_arg "Network.regions: base matrix must be square")
    base;
  Regions { region_of; base; jitter_sigma }

type verdict = Deliver | Drop | Delay of float

type 'm t = {
  engine : Engine.t;
  n : int;
  rng : Rng.t;
  latency : latency;
  mutable handler : (src:int -> dst:int -> 'm -> unit) option;
  mutable loss : float;
  mutable interceptor : (src:int -> dst:int -> 'm -> verdict) option;
  crashed : bool array;
  mutable group_of : int array option; (* partition group per node *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create engine ~n ~rng ~latency =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  { engine; n; rng; latency; handler = None; loss = 0.0; interceptor = None;
    crashed = Array.make n false; group_of = None;
    sent = 0; delivered = 0; dropped = 0 }

let n t = t.n
let engine t = t.engine
let rng t = t.rng
let set_handler t f = t.handler <- Some f
let set_loss t p = t.loss <- p
let set_interceptor t f = t.interceptor <- Some f
let clear_interceptor t = t.interceptor <- None
let crash t i = t.crashed.(i) <- true
let recover t i = t.crashed.(i) <- false
let is_crashed t i = t.crashed.(i)

let partition t groups =
  let group_of = Array.make t.n (-1) in
  List.iteri
    (fun g members -> List.iter (fun i -> group_of.(i) <- g) members)
    groups;
  t.group_of <- Some group_of

let heal t = t.group_of <- None

let base_delay t ~src ~dst = sample t.rng t.latency ~src ~dst

let severed t ~src ~dst =
  t.crashed.(src) || t.crashed.(dst)
  ||
  match t.group_of with
  | None -> false
  | Some g -> g.(src) <> g.(dst)

let rec send t ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Network.send: node id out of range";
  let counted = src <> dst in
  if counted then t.sent <- t.sent + 1;
  let verdict =
    if severed t ~src ~dst then Drop
    else if t.loss > 0.0 && Rng.uniform t.rng < t.loss then Drop
    else
      match t.interceptor with
      | None -> Deliver
      | Some f -> f ~src ~dst msg
  in
  match verdict with
  | Drop -> if counted then t.dropped <- t.dropped + 1
  | Deliver -> deliver t ~src ~dst ~counted ~delay:(base_delay t ~src ~dst) msg
  | Delay d ->
      deliver t ~src ~dst ~counted ~delay:(base_delay t ~src ~dst +. d) msg

and deliver t ~src ~dst ~counted ~delay msg =
  ignore
    (Engine.schedule t.engine ~delay (fun _engine ->
         (* Re-check the destination: it may have crashed in flight. *)
         if t.crashed.(dst) then begin
           if counted then t.dropped <- t.dropped + 1
         end
         else begin
           if counted then t.delivered <- t.delivered + 1;
           match t.handler with
           | Some h -> h ~src ~dst msg
           | None -> failwith "Network: no handler installed"
         end))

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0

let reset t =
  t.loss <- 0.0;
  t.interceptor <- None;
  Array.fill t.crashed 0 t.n false;
  t.group_of <- None;
  reset_counters t
