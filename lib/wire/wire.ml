exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Bumped whenever the frame or store-record layout changes
   incompatibly. Every transport frame and every persistent store
   record leads with this byte, so a mixed-version cluster (or a state
   directory written by an older binary) fails loudly at decode time
   instead of misparsing. v3: dynamic membership — tokens carry a view
   epoch, NEW-ARBITER carries the membership view, and the
   JOIN-REQUEST / LEAVE-REQUEST / VIEW-CHANGE / VIEW-ACK messages and
   the store's membership-view record exist. *)
let format_version = 3

module Enc = struct
  type t = Buffer.t

  let create ?(size = 128) () = Buffer.create size
  let contents = Buffer.contents
  let u8 e v =
    if v < 0 || v > 0xFF then invalid_arg "Enc.u8: out of range";
    Buffer.add_uint8 e v

  let u16 e v =
    if v < 0 || v > 0xFFFF then invalid_arg "Enc.u16: out of range";
    Buffer.add_uint16_be e v

  let i32 e v =
    if v < Int32.(to_int min_int) || v > Int32.(to_int max_int) then
      invalid_arg "Enc.i32: out of range";
    Buffer.add_int32_be e (Int32.of_int v)

  let i64 e v = Buffer.add_int64_be e v
  let int_ e v = i64 e (Int64.of_int v)
  let bool e b = u8 e (if b then 1 else 0)
  let float e f = i64 e (Int64.bits_of_float f)

  let string e s =
    i32 e (String.length s);
    Buffer.add_string e s

  let option e enc = function
    | None -> u8 e 0
    | Some v ->
        u8 e 1;
        enc e v

  let list e enc l =
    i32 e (List.length l);
    List.iter (enc e) l

  let array e enc a =
    i32 e (Array.length a);
    Array.iter (enc e) a

  let pair e enc_a enc_b (a, b) =
    enc_a e a;
    enc_b e b
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let remaining d = String.length d.data - d.pos
  let eof d = remaining d = 0

  let check_eof d =
    if not (eof d) then fail "trailing garbage: %d bytes" (remaining d)

  let need d n =
    if remaining d < n then
      fail "truncated input: need %d bytes, have %d" n (remaining d)

  let u8 d =
    need d 1;
    let v = Char.code d.data.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u16 d =
    need d 2;
    let v = String.get_uint16_be d.data d.pos in
    d.pos <- d.pos + 2;
    v

  let i32 d =
    need d 4;
    let v = String.get_int32_be d.data d.pos in
    d.pos <- d.pos + 4;
    Int32.to_int v

  let i64 d =
    need d 8;
    let v = String.get_int64_be d.data d.pos in
    d.pos <- d.pos + 8;
    v

  let int_ d =
    let v = i64 d in
    let r = Int64.to_int v in
    if Int64.of_int r <> v then fail "integer overflow on this platform";
    r

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | v -> fail "invalid boolean byte %d" v

  let float d = Int64.float_of_bits (i64 d)

  let string d =
    let n = i32 d in
    if n < 0 then fail "negative string length %d" n;
    need d n;
    let s = String.sub d.data d.pos n in
    d.pos <- d.pos + n;
    s

  let option d dec = match u8 d with
    | 0 -> None
    | 1 -> Some (dec d)
    | v -> fail "invalid option tag %d" v

  let list d dec =
    let n = i32 d in
    if n < 0 then fail "negative list length %d" n;
    List.init n (fun _ -> dec d)

  let array d dec =
    let n = i32 d in
    if n < 0 then fail "negative array length %d" n;
    Array.init n (fun _ -> dec d)

  let pair d dec_a dec_b =
    let a = dec_a d in
    let b = dec_b d in
    (a, b)
end

module Frame = struct
  type kind = Data | Heartbeat
  type header = { src : int; kind : kind; lock : string; payload_start : int }

  let fixed_len = 8
  let max_lock_len = 0xFFFF

  let header_len ~lock =
    let ll = String.length lock in
    if ll > max_lock_len then
      invalid_arg "Frame.header_len: lock key longer than 65535 bytes";
    fixed_len + ll

  (* Write the header into [b] at [pos] without allocating; returns
     the offset just past the header. The transport serializes whole
     coalesced flushes through this into one pooled buffer. *)
  let blit_header b ~pos ~src ~lock kind =
    let ll = String.length lock in
    if ll > max_lock_len then
      invalid_arg "Frame.blit_header: lock key longer than 65535 bytes";
    Bytes.set_uint8 b pos format_version;
    Bytes.set_int32_be b (pos + 1) (Int32.of_int src);
    Bytes.set_uint8 b (pos + 5) (match kind with Data -> 0 | Heartbeat -> 1);
    Bytes.set_uint16_be b (pos + 6) ll;
    Bytes.blit_string lock 0 b (pos + fixed_len) ll;
    pos + fixed_len + ll

  let encode_header ~src ~lock kind =
    let b = Bytes.create (header_len ~lock) in
    ignore (blit_header b ~pos:0 ~src ~lock kind);
    Bytes.unsafe_to_string b

  (* Decode a frame header in place from [len] bytes of [b] starting
     at [off] — the pooled-read-buffer twin of {!decode_header}.
     [payload_start] is relative to [off]. Only the lock key is
     materialized (the receiver needs it as a lookup key anyway). *)
  let decode_header_bytes b ~off ~len =
    if len < fixed_len then
      fail "frame shorter than its %d-byte header (%d bytes)" fixed_len len;
    let v = Bytes.get_uint8 b off in
    if v <> format_version then
      fail "frame format version mismatch: peer speaks v%d, this node v%d" v
        format_version;
    let src = Int32.to_int (Bytes.get_int32_be b (off + 1)) in
    let kind =
      match Bytes.get_uint8 b (off + 5) with
      | 0 -> Data
      | 1 -> Heartbeat
      | k -> fail "unknown frame kind %d" k
    in
    let ll = Bytes.get_uint16_be b (off + 6) in
    if len < fixed_len + ll then
      fail "frame truncated inside its %d-byte lock key (%d bytes total)" ll
        len;
    let lock = Bytes.sub_string b (off + fixed_len) ll in
    { src; kind; lock; payload_start = fixed_len + ll }

  let decode_header s =
    decode_header_bytes
      (Bytes.unsafe_of_string s)
      ~off:0 ~len:(String.length s)
end

module type CODEC = sig
  type message

  val encode : message -> string
  val decode : string -> message
end

module Protocol_codec = struct
  open Dmutex

  type message = Protocol.message

  let enc_entry e (x : Qlist.entry) =
    Enc.int_ e x.Qlist.node;
    Enc.int_ e x.Qlist.seq;
    Enc.int_ e x.Qlist.hops

  let dec_entry d =
    let node = Dec.int_ d in
    let seq = Dec.int_ d in
    let hops = Dec.int_ d in
    { Qlist.node; seq; hops }

  let enc_token e (t : Protocol.token) =
    Enc.list e enc_entry t.Protocol.tq;
    Enc.array e Enc.int_ t.Protocol.granted;
    Enc.int_ e t.Protocol.epoch;
    Enc.int_ e t.Protocol.election;
    Enc.int_ e t.Protocol.vepoch

  let dec_token d =
    let tq = Dec.list d dec_entry in
    let granted = Dec.array d Dec.int_ in
    let epoch = Dec.int_ d in
    let election = Dec.int_ d in
    let vepoch = Dec.int_ d in
    { Protocol.tq; granted; epoch; election; vepoch }

  let enc_member e (m : Protocol.member) =
    Enc.int_ e m.Protocol.mid;
    Enc.string e m.Protocol.maddr

  let dec_member d =
    let mid = Dec.int_ d in
    let maddr = Dec.string d in
    { Protocol.mid; maddr }

  let enc_view e (v : Protocol.view) =
    Enc.int_ e v.Protocol.vnum;
    Enc.list e enc_member v.Protocol.vmembers

  let dec_view d =
    let vnum = Dec.int_ d in
    let vmembers = Dec.list d dec_member in
    { Protocol.vnum; vmembers }

  let enc_status e = function
    | Protocol.Have_token -> Enc.u8 e 0
    | Protocol.Executed -> Enc.u8 e 1
    | Protocol.Waiting_token -> Enc.u8 e 2

  let dec_status d =
    match Dec.u8 d with
    | 0 -> Protocol.Have_token
    | 1 -> Protocol.Executed
    | 2 -> Protocol.Waiting_token
    | v -> fail "invalid enquiry status %d" v

  let encode (m : message) =
    let e = Enc.create () in
    (match m with
    | Protocol.Request x ->
        Enc.u8 e 0;
        enc_entry e x
    | Protocol.Monitor_request x ->
        Enc.u8 e 1;
        enc_entry e x
    | Protocol.Privilege t ->
        Enc.u8 e 2;
        enc_token e t
    | Protocol.Monitor_privilege t ->
        Enc.u8 e 3;
        enc_token e t
    | Protocol.New_arbiter na ->
        Enc.u8 e 4;
        Enc.int_ e na.Protocol.na_arbiter;
        Enc.list e enc_entry na.Protocol.na_q;
        Enc.array e Enc.int_ na.Protocol.na_granted;
        Enc.int_ e na.Protocol.na_counter;
        Enc.int_ e na.Protocol.na_monitor;
        Enc.int_ e na.Protocol.na_epoch;
        Enc.int_ e na.Protocol.na_election;
        enc_view e na.Protocol.na_view
    | Protocol.Warning -> Enc.u8 e 5
    | Protocol.Enquiry { round } ->
        Enc.u8 e 6;
        Enc.int_ e round
    | Protocol.Enquiry_reply { round; status } ->
        Enc.u8 e 7;
        Enc.int_ e round;
        enc_status e status
    | Protocol.Resume { round } ->
        Enc.u8 e 8;
        Enc.int_ e round
    | Protocol.Invalidate { round } ->
        Enc.u8 e 9;
        Enc.int_ e round
    | Protocol.Probe -> Enc.u8 e 10
    | Protocol.Probe_ack -> Enc.u8 e 11
    | Protocol.Join_request m ->
        Enc.u8 e 12;
        enc_member e m
    | Protocol.Leave_request lid ->
        Enc.u8 e 13;
        Enc.int_ e lid
    | Protocol.View_change vc ->
        Enc.u8 e 14;
        enc_view e vc.Protocol.vc_view;
        Enc.bool e vc.Protocol.vc_commit;
        Enc.array e Enc.int_ vc.Protocol.vc_granted;
        Enc.int_ e vc.Protocol.vc_epoch;
        Enc.int_ e vc.Protocol.vc_election;
        Enc.int_ e vc.Protocol.vc_arbiter
    | Protocol.View_ack { va_vnum } ->
        Enc.u8 e 15;
        Enc.int_ e va_vnum);
    Enc.contents e

  let decode s =
    let d = Dec.of_string s in
    let m =
      match Dec.u8 d with
      | 0 -> Protocol.Request (dec_entry d)
      | 1 -> Protocol.Monitor_request (dec_entry d)
      | 2 -> Protocol.Privilege (dec_token d)
      | 3 -> Protocol.Monitor_privilege (dec_token d)
      | 4 ->
          let na_arbiter = Dec.int_ d in
          let na_q = Dec.list d dec_entry in
          let na_granted = Dec.array d Dec.int_ in
          let na_counter = Dec.int_ d in
          let na_monitor = Dec.int_ d in
          let na_epoch = Dec.int_ d in
          let na_election = Dec.int_ d in
          let na_view = dec_view d in
          Protocol.New_arbiter
            { na_arbiter; na_q; na_granted; na_counter; na_monitor; na_epoch;
              na_election; na_view }
      | 5 -> Protocol.Warning
      | 6 -> Protocol.Enquiry { round = Dec.int_ d }
      | 7 ->
          let round = Dec.int_ d in
          let status = dec_status d in
          Protocol.Enquiry_reply { round; status }
      | 8 -> Protocol.Resume { round = Dec.int_ d }
      | 9 -> Protocol.Invalidate { round = Dec.int_ d }
      | 10 -> Protocol.Probe
      | 11 -> Protocol.Probe_ack
      | 12 -> Protocol.Join_request (dec_member d)
      | 13 -> Protocol.Leave_request (Dec.int_ d)
      | 14 ->
          let vc_view = dec_view d in
          let vc_commit = Dec.bool d in
          let vc_granted = Dec.array d Dec.int_ in
          let vc_epoch = Dec.int_ d in
          let vc_election = Dec.int_ d in
          let vc_arbiter = Dec.int_ d in
          Protocol.View_change
            { vc_view; vc_commit; vc_granted; vc_epoch; vc_election;
              vc_arbiter }
      | 15 -> Protocol.View_ack { va_vnum = Dec.int_ d }
      | t -> fail "unknown message tag %d" t
    in
    Dec.check_eof d;
    m
end
