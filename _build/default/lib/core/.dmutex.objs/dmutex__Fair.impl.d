lib/core/fair.ml: Protocol Types
