(** Host a registry of protocol state machines on a real network.

    The same pure {!Dmutex.Types.ALGO} implementations that the
    simulator and the model checker drive are run here over framed TCP
    ({!Transport}) with wall-clock timers, turning the paper's
    algorithm into a usable distributed lock {e service}: one node
    hosts an independent protocol instance per {e lock key}, all
    multiplexed over the node's single transport (frames carry the
    key), sharing one heartbeat/liveness monitor and one timer thread.
    Timers live in a node-wide wheel keyed by [(lock, timer)] with
    earliest-deadline sleeping (a [select] on a self-pipe, woken
    whenever the timer set changes) rather than polling — one sleeping
    thread per node, not per lock. *)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) : sig
  type t

  val default_lock : string
  (** The lock key every keyed operation defaults to (["default"]), so
      single-lock deployments never have to name it. *)

  val create :
    ?on_grant:(lock:string -> unit) ->
    ?fault:Fault.t ->
    ?heartbeat_period:float ->
    ?suspect_timeout:float ->
    ?on_suspect:(int -> unit) ->
    ?on_alive:(int -> unit) ->
    ?seed:int ->
    ?locks:string list ->
    ?initial:(lock:string -> A.state option) ->
    ?store:(lock:string -> Dmutex_store.Store.t option) ->
    ?persist:(A.state -> Dmutex_store.Store.view) ->
    ?obs:Dmutex_obs.Registry.t ->
    ?trace:Dmutex_obs.Events.sink ->
    ?flush_us:int ->
    ?io_domains:int ->
    Dmutex.Types.Config.t ->
    me:int ->
    peers:Transport.endpoint array ->
    unit ->
    t
  (** Start a node: bind its endpoint, start its (single) timer
      thread, and put one state machine per [locks] entry (default
      [[default_lock]]; duplicates and the empty list are rejected) in
      its initial state. [on_grant] fires (on an internal thread)
      whenever the node enters the critical section of that lock;
      alternatively use {!with_lock}.

      [initial ~lock] overrides [A.init] per instance — used to
      restart a node from a durable store
      ([Dmutex_store.Protocol_view.restore]). [store ~lock] + [persist]
      enable durability per instance: after {e every} step the
      post-step state's [persist] view is
      {!Dmutex_store.Store.record}ed — and fsynced — {e before} any of
      the step's effects (sends, CS entry) are applied, which is what
      makes the store's custody record safety-critical-correct: it can
      never over-claim a token the node no longer holds. Starting
      states are recorded at creation time too. Each instance must get
      its own store (directory); open them with matching
      [Store.open_ ~key].

      [fault] plugs a (normally cluster-shared) chaos injector into
      the transport. [heartbeat_period] > 0 enables the peer liveness
      monitor, shared by every instance: the transport beacons every
      period (once per peer, not per lock), and a peer silent (no
      data for any lock, no heartbeat) for longer than
      [suspect_timeout] (default 1 s) triggers [on_suspect]; the first
      frame heard afterwards triggers [on_alive]. Both callbacks run
      on internal threads and may call {!inject} — e.g. to feed a
      suspicion into the protocol as a timer or WARNING.

      [obs] plugs this node into a metrics registry: per-kind
      send/receive counters, CS entry/exit spans, sync delay, queue
      lengths, phase durations, note counters, heartbeat suspicions —
      the canonical {!Dmutex_obs.Names} series, same names the
      simulator emits — plus the transport's [dmutex_transport_*]
      counters. Protocol series carry a [lock=<key>] label per
      instance ({!Dmutex_obs.Names.lock_label}); transport and store
      series stay per-node. One registry per node; [Cluster] merges
      them. [trace] plugs in a (normally cluster-shared) structured
      event sink: CS enter/exit, recovery milestones and liveness
      suspicions are recorded with the node id (and lock key, where
      one applies) attached.

      [flush_us] and [io_domains] tune the transport's coalesced-flush
      timer and reactor pool size (see {!Transport.create}); the
      defaults — flush on the next reactor pass, one I/O domain — are
      right for most deployments. *)

  val id : t -> int
  (** This node's id (the [me] passed at [create]). *)

  val locks : t -> string list
  (** The lock keys this node hosts, in [create] order. *)

  val acquire : ?lock:string -> ?mode:Dmutex.Types.mode -> t -> unit
  (** Ask for the critical section of [lock] (non-blocking). [mode]
      (default [Exclusive]) labels the request; [Shared] requests at
      the head of the queue are served together as one reader batch. *)

  val release : ?lock:string -> t -> unit
  (** Leave the critical section of [lock]. Must only be called while
      holding it. *)

  val holding : ?lock:string -> t -> bool
  (** Whether this node is currently inside [lock]'s critical
      section. *)

  val with_lock :
    ?timeout:float ->
    ?lock:string ->
    ?mode:Dmutex.Types.mode ->
    t ->
    (unit -> 'a) ->
    'a option
  (** [with_lock t f] acquires the distributed lock [lock] (default
      {!default_lock}) in [mode] (default [Exclusive]), runs [f], and
      releases. Returns [None] if [timeout] (default 30 s) expires
      before the lock is granted. The abandoned request remains queued
      cluster-wide, so the node remembers it and {e drains} the stale
      grant the moment it lands (immediate release, no [on_grant]) — a
      later [with_lock] can never be granted on the back of an
      abandoned request. Independent locks never block each other:
      each instance has its own mutex and grant condition. *)

  val acquire_all :
    ?timeout:float ->
    ?retries:int ->
    locks:(string * Dmutex.Types.mode) list ->
    t ->
    bool
  (** Atomic multi-lock acquisition: block until {e every} lock of the
      set is held (in its given mode), or give everything back and
      return [false]. Locks are always grabbed in canonical order
      (sorted by key) — with every transaction acquiring in the one
      global order, hold-and-wait is acyclic, so transactions cannot
      deadlock each other. Within [timeout] (default 30 s) the attempt
      is retried up to [retries] (default 4) times: an attempt that
      cannot get some lock within its time slice releases all the
      locks it grabbed (all-or-nothing) before trying again, so a
      transaction never camps on a partial set. Duplicate keys and the
      empty set are rejected with [Invalid_argument]. On [true] the
      caller holds every lock and must {!release} each (or use
      {!with_locks}). *)

  val with_locks :
    ?timeout:float ->
    ?retries:int ->
    locks:(string * Dmutex.Types.mode) list ->
    t ->
    (unit -> 'a) ->
    'a option
  (** [with_locks ~locks t f]: {!acquire_all}, run [f] holding the
      whole set, release everything (reverse canonical order) even if
      [f] raises. [None] when the set could not be acquired within
      [timeout]. *)

  val state : ?lock:string -> t -> A.state
  (** Snapshot of one instance's protocol state (for inspection and
      tests). Raises [Invalid_argument] for a key the node does not
      host, as do all keyed operations. *)

  val messages_sent : t -> int

  val metrics : t -> Transport.metrics
  (** Live transport counters, shared across instances (all zero after
      {!shutdown}). *)

  val notes : ?lock:string -> t -> (string * int) list
  (** Protocol [Note] events counted since start, sorted by name —
      e.g. [("recovery-started", 2)]. Without [lock], summed across
      every instance; with it, that instance only. The live-cluster
      equivalent of the simulator's outcome notes. *)

  val note_count : ?lock:string -> t -> string -> int

  val suspected : t -> int list
  (** Peers currently suspected down by the liveness monitor (always
      empty when the monitor is off). *)

  val membership : ?lock:string -> t -> (int * string) list
  (** The member set [(id, addr)] this node currently believes for
      [lock]: the birth set (addrs [""]) until the first committed
      view's [Membership] note lands, then that view's members. The
      runner keeps the transport peer set and the liveness monitor
      pointed at the union of these sets across locks; frames from a
      sender outside a lock's set are dropped before protocol
      dispatch (counted as [dmutex_unknown_peer_total]), except
      membership traffic and PRIVILEGE hand-offs. *)

  val set_loss : t -> float -> unit
  (** Drop outgoing frames with this probability (chaos testing; see
      {!Transport.set_loss}). *)

  val inject : ?lock:string -> t -> (A.message, A.timer) Dmutex.Types.input -> unit
  (** Feed an arbitrary input to one instance's state machine — test
      hook for fault drills (e.g. simulating a WARNING or a timer). *)

  val store_stats : ?lock:string -> t -> Dmutex_store.Store.stats option
  (** Durability counters of one instance's store, if any. *)

  val obs : t -> Dmutex_obs.Registry.t option
  (** The registry passed at [create], if any. *)

  val shutdown : t -> unit
  (** Graceful stop: close sockets, stop the timer, liveness and
      writer threads, then {e flush and close} every instance's store.
      To the rest of the cluster this is still a crash — the node
      stops responding — but its own durable state is complete.
      Idempotent. *)

  val crash : t -> unit
  (** Crash-style stop: like {!shutdown} but the stores are closed
      {e without} flushing ({!Dmutex_store.Store.abort}), leaving on
      disk exactly what explicit fsyncs made durable — what a real
      crash leaves. Restart drills use this. Idempotent. *)
end
