(** Portability shim over OCaml 5 domains.

    The build selects one of two implementations (see the rules in
    this directory's [dune] file): on OCaml >= 5.0 the shim is a
    zero-cost wrapper around {!Domain}, giving true parallelism; on
    4.14 it falls back to system threads, preserving the API and the
    deterministic semantics of {!Pool} (results, ordering, exception
    propagation) at parallelism 1. Everything that needs a domain in
    this repository goes through this module, which is what lets the
    whole tree build on the 4.14 leg of the CI matrix. *)

type 'a t
(** A running domain (or fallback thread) computing an ['a]. *)

val spawn : (unit -> 'a) -> 'a t

val join : 'a t -> 'a
(** Wait for completion and return the result; re-raises (with its
    backtrace) if the computation raised. *)

val recommended_domain_count : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5; [1] on the
    threads fallback, so {!Pool} defaults to sequential there. *)

(** Domain-local (thread-local on the fallback) storage. *)
module DLS : sig
  type 'a key

  val new_key : (unit -> 'a) -> 'a key
  val get : 'a key -> 'a
  val set : 'a key -> 'a -> unit
end
