lib/core/qlist.mli: Format Types
