lib/core/analysis.mli: Types
