type event = { mutable cancelled : bool; action : t -> unit }

and t = {
  agenda : event Heap.t;
  mutable clock : float;
  mutable live : int; (* scheduled, not fired, not cancelled *)
  mutable stopping : bool;
}

type handle = event

let create ?(capacity = 256) () =
  { agenda = Heap.create ~capacity (); clock = 0.0; live = 0; stopping = false }

let reset t =
  Heap.clear t.agenda;
  t.clock <- 0.0;
  t.live <- 0;
  t.stopping <- false

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.clock);
  let ev = { cancelled = false; action } in
  Heap.push t.agenda ~priority:time ev;
  t.live <- t.live + 1;
  ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live
let stop t = t.stopping <- true

let rec step t =
  match Heap.pop t.agenda with
  | None -> false
  | Some (time, ev) ->
      if ev.cancelled then step t
      else begin
        t.clock <- time;
        t.live <- t.live - 1;
        ev.action t;
        true
      end

let run ?until ?max_events t =
  t.stopping <- false;
  let fired = ref 0 in
  let continue () =
    (not t.stopping)
    && (match max_events with Some m -> !fired < m | None -> true)
  in
  let rec loop () =
    if continue () then
      match Heap.peek t.agenda with
      | None -> ()
      | Some (time, ev) ->
          if ev.cancelled then begin
            ignore (Heap.pop t.agenda);
            loop ()
          end
          else begin
            match until with
            | Some u when time > u -> t.clock <- u
            | _ ->
                if step t then begin
                  incr fired;
                  loop ()
                end
          end
  in
  loop ()
