module Obs = Dmutex_obs

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) =
struct
  module Node = Node_runner.Make (A) (C)
  module WC = Wire.Client

  type conn = {
    fd : Unix.file_descr;
    wmu : Mutex.t;
    mutable wopen : bool;  (** false once a write failed or we closed it. *)
  }

  type session = {
    sid : string;
    s_lease_ms : int;
    smu : Mutex.t;
    scond : Condition.t;
        (** Signalled on release, expiry and close — what a serving
            pump thread sleeps on while its client is in the CS. *)
    mutable sconn : conn option;  (** [None] while detached. *)
    mutable s_deadline : float;
        (** Lease deadline while attached; grace deadline once
            detached. The sweeper expires the session past it. *)
    mutable s_alive : bool;
    mutable s_held : (string * int) list;  (** lock -> fencing token *)
    mutable s_inflight : int;  (** queued acquires, all locks *)
  }

  type waiter = {
    w_rid : int;
    w_sess : session;
    w_mode : Dmutex.Types.mode;
        (** Shared waiters at the head of the queue are granted
            together under one node hold; exclusive ones alone. *)
    w_deadline : float;
    mutable w_pending : bool;
  }

  type lockq = {
    lq_lock : string;
    lq_mu : Mutex.t;
    lq_cond : Condition.t;  (** wakes the pump when a waiter arrives *)
    mutable lq_waiters : waiter list;  (** FIFO, head served first *)
    mutable lq_last_fencing : int;
    lq_grants : Obs.Registry.Counter.handle option;
    lq_fencing : Obs.Registry.Gauge.handle option;
    lq_depth : Obs.Registry.Gauge.handle option;
  }

  type stats = {
    opened : int;
    resumed : int;
    expired : int;
    granted : int;
    rejected : int;
    stale_grants : int;
  }

  type t = {
    node : Node.t;
    fencing : A.state -> int option;
    lease_ms : int;
    grace_ms : int;
    max_sessions : int;
    max_waiters : int;
    max_inflight : int;
    mu : Mutex.t;  (** registry, rng, counters *)
    sessions : (string, session) Hashtbl.t;
    locks : (string, lockq) Hashtbl.t;
    rng : Random.State.t;
    sock : Unix.file_descr;
    port : int;
    mutable stopping : bool;
    mutable accept_thread : Thread.t option;
    mutable sweep_thread : Thread.t option;
    (* plain counters under [mu]; mirrored into [obs] when present *)
    mutable n_opened : int;
    mutable n_resumed : int;
    mutable n_expired : int;
    mutable n_granted : int;
    mutable n_rejected : int;
    mutable n_stale : int;
    obs : Obs.Registry.t option;
    g_sessions : Obs.Registry.Gauge.handle option;
    c_opened : Obs.Registry.Counter.handle option;
    c_resumes : Obs.Registry.Counter.handle option;
    c_expiries : Obs.Registry.Counter.handle option;
    c_stale : Obs.Registry.Counter.handle option;
    trace : Obs.Events.sink option;
  }

  let trace t ?(severity = Obs.Events.Info) name fields =
    match t.trace with
    | None -> ()
    | Some sink -> Obs.Events.emit sink ~severity ~fields name

  let incr_counter = function
    | None -> ()
    | Some h -> Obs.Registry.Counter.incr h

  let set_gauge g v = match g with
    | None -> ()
    | Some h -> Obs.Registry.Gauge.set h v

  let now () = Unix.gettimeofday ()

  (* ---------------------------------------------------------------- *)
  (* Connection writes *)

  (* Serialized per connection; a failed or timed-out write marks the
     connection dead and closes it, which pops the reader thread out
     of its blocking read and runs the detach path. Never raises. *)
  let send_resp conn resp =
    Mutex.lock conn.wmu;
    (try
       if conn.wopen then
         Session_frame.send conn.fd (WC.encode_response resp)
     with _ ->
       conn.wopen <- false;
       (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ()));
    Mutex.unlock conn.wmu

  let close_conn conn =
    Mutex.lock conn.wmu;
    conn.wopen <- false;
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ());
    Mutex.unlock conn.wmu

  (* ---------------------------------------------------------------- *)
  (* Session registry *)

  let fresh_sid t =
    let b = Buffer.create 32 in
    for _ = 0 to 3 do
      Buffer.add_string b (Printf.sprintf "%08x" (Random.State.bits t.rng))
    done;
    Buffer.contents b

  let live_sessions t =
    Hashtbl.fold (fun _ s acc -> if s.s_alive then acc + 1 else acc)
      t.sessions 0

  let reject t conn ~rid reason ~retry_after_ms =
    Mutex.lock t.mu;
    t.n_rejected <- t.n_rejected + 1;
    Mutex.unlock t.mu;
    (match t.obs with
    | Some reg ->
        Obs.Registry.Counter.incr
          (Obs.Registry.Counter.get reg
             ~labels:(Obs.Names.reason_label (WC.string_of_reason reason))
             Obs.Names.client_rejections_total)
    | None -> ());
    trace t ~severity:Obs.Events.Warn "session.reject"
      [ ("reason", WC.string_of_reason reason) ];
    send_resp conn (WC.Rejected { rid; reason; retry_after_ms })

  (* Cancel every queued acquire of [s] (session closing, expiring or
     detaching). The waiters stay in their lock queues — the pump and
     sweeper skip non-pending entries — they just stop being eligible
     for a grant. *)
  let cancel_waiters t s =
    Hashtbl.iter
      (fun _ lq ->
        Mutex.lock lq.lq_mu;
        List.iter
          (fun w -> if w.w_sess == s && w.w_pending then w.w_pending <- false)
          lq.lq_waiters;
        Mutex.unlock lq.lq_mu)
      t.locks;
    Mutex.lock s.smu;
    s.s_inflight <- 0;
    Mutex.unlock s.smu

  (* Expire a session: lease ran out (attached: the client stalled;
     detached: the grace window closed) or the node is shutting down.
     Held grants are not revoked here — flipping [s_alive] and
     broadcasting wakes the pump thread serving the grant, which
     strips the hold and releases the distributed lock; the fencing
     token the client still has is then stale by construction. *)
  let expire_session t s ~reason =
    let conn =
      Mutex.lock s.smu;
      let c = s.sconn in
      if s.s_alive then begin
        s.s_alive <- false;
        s.sconn <- None;
        Condition.broadcast s.scond
      end;
      Mutex.unlock s.smu;
      c
    in
    cancel_waiters t s;
    Mutex.lock t.mu;
    Hashtbl.remove t.sessions s.sid;
    t.n_expired <- t.n_expired + 1;
    set_gauge t.g_sessions (float_of_int (live_sessions t));
    Mutex.unlock t.mu;
    incr_counter t.c_expiries;
    trace t ~severity:Obs.Events.Warn "session.expire"
      [ ("sid", s.sid); ("reason", reason) ];
    match conn with
    | None -> ()
    | Some conn ->
        send_resp conn (WC.Session_lost { rid = 0; reason });
        close_conn conn

  (* ---------------------------------------------------------------- *)
  (* Grant pump: one thread per lock. It waits for a pending waiter,
     asks the node for the distributed lock with [with_lock] (whose
     timeout machinery also drains abandoned grants), and while inside
     the CS serves the oldest still-pending waiter until that client
     releases, closes, or its lease expires. *)

  (* Pop the run of waiters one node hold can serve in [mode]:
     exclusive — just the oldest eligible waiter; shared — the maximal
     leading run of shared waiters, stopping at the first eligible
     exclusive waiter so writers keep their queue position (the
     session-layer mirror of the protocol's reader batch). Expired
     waiters met on the way are rejected with [Lock_timeout]. *)
  let pop_batch t lq ~mode =
    let rec go acc = function
      | [] -> (List.rev acc, [])
      | w :: rest ->
          if not w.w_pending then go acc rest
          else if now () > w.w_deadline then begin
            w.w_pending <- false;
            Mutex.lock w.w_sess.smu;
            w.w_sess.s_inflight <- max 0 (w.w_sess.s_inflight - 1);
            let conn = w.w_sess.sconn in
            Mutex.unlock w.w_sess.smu;
            (match conn with
            | Some conn ->
                reject t conn ~rid:w.w_rid WC.Lock_timeout ~retry_after_ms:0
            | None -> ());
            go acc rest
          end
          else begin
            match (mode : Dmutex.Types.mode) with
            | Exclusive -> (List.rev (w :: acc), rest)
            | Shared ->
                if w.w_mode = Dmutex.Types.Shared then go (w :: acc) rest
                else (List.rev acc, w :: rest)
          end
    in
    Mutex.lock lq.lq_mu;
    let batch, rest = go [] lq.lq_waiters in
    lq.lq_waiters <- rest;
    set_gauge lq.lq_depth (float_of_int (List.length rest));
    Mutex.unlock lq.lq_mu;
    batch

  (* Runs inside [Node.with_lock ~mode]: the node is in the CS for
     [lq.lq_lock] on some clients' behalf. In [Shared] mode the whole
     leading run of shared waiters is granted together under one
     fencing token — shared holders are peers, not an order, exactly
     as in the protocol's reader batch; in [Exclusive] mode exactly
     one client is served. Returns [true] if any client was actually
     served (so the caller knows progress was made). *)
  let serve t lq mode () =
    let st = Node.state ~lock:lq.lq_lock t.node in
    match t.fencing st with
    | None ->
        (* Not a genuine first-time grant (e.g. a recovery re-granted
           an already-served request): issuing a fencing token here
           could repeat a value, so drop the grant and retry. *)
        Mutex.lock t.mu;
        t.n_stale <- t.n_stale + 1;
        Mutex.unlock t.mu;
        incr_counter t.c_stale;
        trace t ~severity:Obs.Events.Warn "session.stale_grant"
          [ ("lock", lq.lq_lock) ];
        false
    | Some fencing ->
        if fencing <= lq.lq_last_fencing then begin
          (* Defence in depth: never let a non-increasing token out. *)
          Mutex.lock t.mu;
          t.n_stale <- t.n_stale + 1;
          Mutex.unlock t.mu;
          incr_counter t.c_stale;
          trace t ~severity:Obs.Events.Error "session.fencing_regression"
            [
              ("lock", lq.lq_lock);
              ("fencing", string_of_int fencing);
              ("last", string_of_int lq.lq_last_fencing);
            ];
          false
        end
        else begin
          match pop_batch t lq ~mode with
          | [] -> false (* nobody still wants it; release right away *)
          | batch ->
              lq.lq_last_fencing <- fencing;
              let mode_label =
                match (mode : Dmutex.Types.mode) with
                | Dmutex.Types.Shared -> "shared"
                | Dmutex.Types.Exclusive -> "exclusive"
              in
              let granted =
                List.filter_map
                  (fun w ->
                    let s = w.w_sess in
                    Mutex.lock s.smu;
                    w.w_pending <- false;
                    s.s_inflight <- max 0 (s.s_inflight - 1);
                    if not s.s_alive then begin
                      (* Raced its own expiry: drop this grant. *)
                      Mutex.unlock s.smu;
                      None
                    end
                    else begin
                      s.s_held <- (lq.lq_lock, fencing) :: s.s_held;
                      let conn = s.sconn in
                      Mutex.unlock s.smu;
                      Mutex.lock t.mu;
                      t.n_granted <- t.n_granted + 1;
                      Mutex.unlock t.mu;
                      incr_counter lq.lq_grants;
                      set_gauge lq.lq_fencing (float_of_int fencing);
                      trace t "session.grant"
                        [
                          ("sid", s.sid);
                          ("lock", lq.lq_lock);
                          ("fencing", string_of_int fencing);
                          ("mode", mode_label);
                        ];
                      (match conn with
                      | Some conn ->
                          send_resp conn
                            (WC.Granted
                               { rid = w.w_rid; lock = lq.lq_lock; fencing })
                      | None -> ());
                      Some s
                    end)
                  batch
              in
              if granted = [] then false
              else begin
                (* Hold the CS until every granted client releases,
                   closes, or the lease sweeper kills its session.
                   Waiting the sessions out one by one is fine: the
                   hold ends when the slowest is done regardless of
                   the order we observe the others in. *)
                List.iter
                  (fun s ->
                    Mutex.lock s.smu;
                    while s.s_alive && List.mem_assoc lq.lq_lock s.s_held do
                      Condition.wait s.scond s.smu
                    done;
                    if List.mem_assoc lq.lq_lock s.s_held then
                      (* Expiry path: strip the hold ourselves. *)
                      s.s_held <- List.remove_assoc lq.lq_lock s.s_held;
                    Mutex.unlock s.smu)
                  granted;
                true
              end
        end

  let pending_exists lq =
    List.exists (fun w -> w.w_pending) lq.lq_waiters

  let pump t lq =
    while not t.stopping do
      Mutex.lock lq.lq_mu;
      while (not t.stopping) && not (pending_exists lq) do
        Condition.wait lq.lq_cond lq.lq_mu
      done;
      let horizon =
        List.fold_left
          (fun acc w -> if w.w_pending then Float.max acc w.w_deadline else acc)
          0. lq.lq_waiters
      in
      (* Acquire in the head waiter's mode: a shared head pulls its
         whole run of fellow readers in with it, an exclusive head is
         served alone. *)
      let mode =
        match List.find_opt (fun w -> w.w_pending) lq.lq_waiters with
        | Some w -> w.w_mode
        | None -> Dmutex.Types.Exclusive
      in
      Mutex.unlock lq.lq_mu;
      if not t.stopping then begin
        let timeout = Float.max 0.05 (horizon -. now ()) in
        match
          Node.with_lock ~timeout ~lock:lq.lq_lock ~mode t.node
            (serve t lq mode)
        with
        | Some _ -> ()
        | None ->
            (* Grant never arrived inside the horizon; the sweeper (or
               the next pop) times the waiters out individually. *)
            ()
      end
    done

  (* ---------------------------------------------------------------- *)
  (* Request dispatch (per-connection reader thread) *)

  let renew_lease s =
    s.s_deadline <- now () +. (float_of_int s.s_lease_ms /. 1000.)

  let handle_open t conn attached ~rid ~lease_ms ~resume =
    let lease_ms = if lease_ms <= 0 then t.lease_ms else lease_ms in
    match resume with
    | Some sid -> (
        let s =
          Mutex.lock t.mu;
          let s = Hashtbl.find_opt t.sessions sid in
          Mutex.unlock t.mu;
          s
        in
        match s with
        | Some s when s.s_alive ->
            Mutex.lock s.smu;
            (match s.sconn with
            | Some old when old != conn -> close_conn old
            | _ -> ());
            s.sconn <- Some conn;
            renew_lease s;
            let held = s.s_held in
            Mutex.unlock s.smu;
            attached := Some s;
            Mutex.lock t.mu;
            t.n_resumed <- t.n_resumed + 1;
            Mutex.unlock t.mu;
            incr_counter t.c_resumes;
            trace t "session.resume" [ ("sid", s.sid) ];
            send_resp conn
              (WC.Session_opened
                 {
                   rid;
                   sid = s.sid;
                   lease_ms = s.s_lease_ms;
                   grace_ms = t.grace_ms;
                   resumed = true;
                   held;
                 })
        | _ ->
            send_resp conn
              (WC.Session_lost
                 { rid; reason = "unknown or expired session " ^ sid }))
    | None ->
        let admitted =
          Mutex.lock t.mu;
          let ok = live_sessions t < t.max_sessions in
          let s =
            if ok then begin
              let sid = fresh_sid t in
              let s =
                {
                  sid;
                  s_lease_ms = lease_ms;
                  smu = Mutex.create ();
                  scond = Condition.create ();
                  sconn = Some conn;
                  s_deadline = now () +. (float_of_int lease_ms /. 1000.);
                  s_alive = true;
                  s_held = [];
                  s_inflight = 0;
                }
              in
              Hashtbl.replace t.sessions sid s;
              t.n_opened <- t.n_opened + 1;
              set_gauge t.g_sessions (float_of_int (live_sessions t));
              Some s
            end
            else None
          in
          Mutex.unlock t.mu;
          s
        in
        (match admitted with
        | Some s ->
            attached := Some s;
            incr_counter t.c_opened;
            trace t "session.open" [ ("sid", s.sid) ];
            send_resp conn
              (WC.Session_opened
                 {
                   rid;
                   sid = s.sid;
                   lease_ms;
                   grace_ms = t.grace_ms;
                   resumed = false;
                   held = [];
                 })
        | None ->
            (* Admission control: shed load with an explicit
               retry-after instead of queueing unboundedly. *)
            reject t conn ~rid WC.Session_limit
              ~retry_after_ms:(t.lease_ms / 2))

  let handle_acquire t conn s ~rid ~lock ~timeout_ms ~try_only ~shared =
    Mutex.lock s.smu;
    renew_lease s;
    let already = List.mem_assoc lock s.s_held in
    let inflight = s.s_inflight in
    Mutex.unlock s.smu;
    match Hashtbl.find_opt t.locks lock with
    | None -> reject t conn ~rid WC.Unknown_lock ~retry_after_ms:0
    | Some _ when already -> reject t conn ~rid WC.Already_held ~retry_after_ms:0
    | Some _ when inflight >= t.max_inflight ->
        reject t conn ~rid WC.Queue_full ~retry_after_ms:(t.lease_ms / 4)
    | Some lq ->
        let timeout_ms =
          if timeout_ms > 0 then timeout_ms else if try_only then 1_000
          else 30_000
        in
        let w =
          {
            w_rid = rid;
            w_sess = s;
            w_mode =
              (if shared then Dmutex.Types.Shared else Dmutex.Types.Exclusive);
            w_deadline = now () +. (float_of_int timeout_ms /. 1000.);
            w_pending = true;
          }
        in
        Mutex.lock lq.lq_mu;
        let depth =
          List.length (List.filter (fun w -> w.w_pending) lq.lq_waiters)
        in
        if depth >= t.max_waiters then begin
          Mutex.unlock lq.lq_mu;
          reject t conn ~rid WC.Queue_full ~retry_after_ms:(t.lease_ms / 4)
        end
        else begin
          lq.lq_waiters <- lq.lq_waiters @ [ w ];
          set_gauge lq.lq_depth (float_of_int (depth + 1));
          Condition.signal lq.lq_cond;
          Mutex.unlock lq.lq_mu;
          Mutex.lock s.smu;
          s.s_inflight <- s.s_inflight + 1;
          Mutex.unlock s.smu
        end

  let handle_release t conn s ~rid ~lock =
    Mutex.lock s.smu;
    renew_lease s;
    let held = List.mem_assoc lock s.s_held in
    if held then begin
      s.s_held <- List.remove_assoc lock s.s_held;
      Condition.broadcast s.scond
    end;
    Mutex.unlock s.smu;
    if held then send_resp conn (WC.Released { rid; lock })
    else reject t conn ~rid WC.Not_held ~retry_after_ms:0

  let handle_close t conn s ~rid attached =
    cancel_waiters t s;
    Mutex.lock s.smu;
    s.s_alive <- false;
    s.s_held <- [];
    s.sconn <- None;
    Condition.broadcast s.scond;
    Mutex.unlock s.smu;
    Mutex.lock t.mu;
    Hashtbl.remove t.sessions s.sid;
    set_gauge t.g_sessions (float_of_int (live_sessions t));
    Mutex.unlock t.mu;
    attached := None;
    trace t "session.close" [ ("sid", s.sid) ];
    send_resp conn (WC.Closed { rid })

  (* Session-scoped requests: no session on this connection is a
     protocol error; a session the sweeper already expired gets a loud
     [Session_lost] — a renewal racing its own expiry must lose
     visibly, never silently revive. *)
  let with_session t conn attached ~rid f =
    match !attached with
    | None -> reject t conn ~rid WC.Bad_request ~retry_after_ms:0
    | Some s when not s.s_alive ->
        attached := None;
        send_resp conn (WC.Session_lost { rid; reason = "session expired" })
    | Some s -> f s

  let dispatch t conn attached req =
    match req with
    | WC.Hello { rid } ->
        send_resp conn
          (WC.Hello_ok { rid; node = Node.id t.node; proto = WC.version })
    | WC.Open_session { rid; lease_ms; resume } ->
        handle_open t conn attached ~rid ~lease_ms ~resume
    | WC.Acquire { rid; lock; timeout_ms; try_only; shared } ->
        with_session t conn attached ~rid (fun s ->
            handle_acquire t conn s ~rid ~lock ~timeout_ms ~try_only ~shared)
    | WC.Release { rid; lock } ->
        with_session t conn attached ~rid (fun s ->
            handle_release t conn s ~rid ~lock)
    | WC.Renew { rid } ->
        with_session t conn attached ~rid (fun s ->
            Mutex.lock s.smu;
            renew_lease s;
            Mutex.unlock s.smu;
            send_resp conn (WC.Renewed { rid; lease_ms = s.s_lease_ms }))
    | WC.Close { rid } ->
        with_session t conn attached ~rid (fun s ->
            handle_close t conn s ~rid attached)

  (* A connection died (EOF, error, or we closed it). Detach its
     session: the session survives until the grace deadline so the
     client can fail over and resume by sid; its queued acquires are
     cancelled (the client re-issues them after resuming), and its
     held grants stay held — release still belongs to the client until
     the lease/grace runs out. *)
  let detach t conn s =
    cancel_waiters t s;
    Mutex.lock s.smu;
    (match s.sconn with
    | Some c when c == conn ->
        s.sconn <- None;
        s.s_deadline <- now () +. (float_of_int t.grace_ms /. 1000.)
    | _ -> () (* already re-attached elsewhere *));
    Mutex.unlock s.smu;
    trace t "session.detach" [ ("sid", s.sid) ]

  let serve_conn t conn =
    let attached = ref None in
    (try
       while conn.wopen && not t.stopping do
         let body = Session_frame.recv conn.fd in
         match WC.decode_request body with
         | req -> dispatch t conn attached req
         | exception Wire.Malformed m ->
             trace t ~severity:Obs.Events.Warn "session.malformed"
               [ ("error", m) ];
             send_resp conn
               (WC.Session_lost { rid = 0; reason = "malformed request: " ^ m });
             raise Exit
       done
     with _ -> ());
    close_conn conn;
    (try Unix.close conn.fd with _ -> ());
    match !attached with None -> () | Some s -> detach t conn s

  (* ---------------------------------------------------------------- *)
  (* Background threads *)

  let accept_loop t =
    while not t.stopping do
      match Unix.accept t.sock with
      | fd, _ ->
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0 with _ -> ());
          let conn = { fd; wmu = Mutex.create (); wopen = true } in
          ignore (Thread.create (serve_conn t) conn)
      | exception _ -> if not t.stopping then Thread.delay 0.05
    done

  let sweep t =
    while not t.stopping do
      Thread.delay 0.05;
      let t_now = now () in
      (* Lease / grace expiries. *)
      let expired =
        Mutex.lock t.mu;
        let es =
          Hashtbl.fold
            (fun _ s acc ->
              if s.s_alive && t_now > s.s_deadline then s :: acc else acc)
            t.sessions []
        in
        Mutex.unlock t.mu;
        es
      in
      List.iter (fun s -> expire_session t s ~reason:"lease expired") expired;
      (* Queued acquires past their deadline get a prompt, explicit
         timeout even while the pump is blocked waiting for a grant. *)
      Hashtbl.iter
        (fun _ lq ->
          let timed_out =
            Mutex.lock lq.lq_mu;
            let ws =
              List.filter
                (fun w -> w.w_pending && t_now > w.w_deadline)
                lq.lq_waiters
            in
            List.iter (fun w -> w.w_pending <- false) ws;
            lq.lq_waiters <-
              List.filter (fun w -> w.w_pending) lq.lq_waiters;
            set_gauge lq.lq_depth (float_of_int (List.length lq.lq_waiters));
            Mutex.unlock lq.lq_mu;
            ws
          in
          List.iter
            (fun w ->
              Mutex.lock w.w_sess.smu;
              w.w_sess.s_inflight <- max 0 (w.w_sess.s_inflight - 1);
              let conn = w.w_sess.sconn in
              Mutex.unlock w.w_sess.smu;
              match conn with
              | Some conn ->
                  reject t conn ~rid:w.w_rid WC.Lock_timeout ~retry_after_ms:0
              | None -> ())
            timed_out)
        t.locks
    done

  (* ---------------------------------------------------------------- *)

  let create ?(lease_ms = 5_000) ?grace_ms ?(max_sessions = 1_024)
      ?(max_waiters = 256) ?(max_inflight = 32) ?obs ?trace:trace_sink ?seed
      ~fencing ~node ~addr () =
    let grace_ms = Option.value grace_ms ~default:lease_ms in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    (try
       Unix.bind sock
         (Unix.ADDR_INET
            (Unix.inet_addr_of_string addr.Transport.host, addr.Transport.port));
       Unix.listen sock 128
     with e ->
       (try Unix.close sock with _ -> ());
       raise e);
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> addr.Transport.port
    in
    let seed =
      match seed with
      | Some s -> s
      | None ->
          (int_of_float (Unix.gettimeofday () *. 1e6) lxor Unix.getpid ())
          land max_int
    in
    let ghandle name =
      Option.map (fun reg -> Obs.Registry.Gauge.get reg name) obs
    in
    let chandle name =
      Option.map (fun reg -> Obs.Registry.Counter.get reg name) obs
    in
    let locks = Hashtbl.create 16 in
    List.iter
      (fun lock ->
        Hashtbl.replace locks lock
          {
            lq_lock = lock;
            lq_mu = Mutex.create ();
            lq_cond = Condition.create ();
            lq_waiters = [];
            lq_last_fencing = -1;
            lq_grants =
              Option.map
                (fun reg ->
                  Obs.Registry.Counter.get reg
                    ~labels:(Obs.Names.lock_label lock)
                    Obs.Names.client_grants_total)
                obs;
            lq_fencing =
              Option.map
                (fun reg ->
                  Obs.Registry.Gauge.get reg
                    ~labels:(Obs.Names.lock_label lock)
                    Obs.Names.client_fencing)
                obs;
            lq_depth =
              Option.map
                (fun reg ->
                  Obs.Registry.Gauge.get reg
                    ~labels:(Obs.Names.lock_label lock)
                    Obs.Names.client_waiters)
                obs;
          })
      (Node.locks node);
    let t =
      {
        node;
        fencing;
        lease_ms;
        grace_ms;
        max_sessions;
        max_waiters;
        max_inflight;
        mu = Mutex.create ();
        sessions = Hashtbl.create 64;
        locks;
        rng = Random.State.make [| seed; 0x5e55 |];
        sock;
        port;
        stopping = false;
        accept_thread = None;
        sweep_thread = None;
        n_opened = 0;
        n_resumed = 0;
        n_expired = 0;
        n_granted = 0;
        n_rejected = 0;
        n_stale = 0;
        obs;
        g_sessions = ghandle Obs.Names.client_sessions;
        c_opened = chandle Obs.Names.client_sessions_opened_total;
        c_resumes = chandle Obs.Names.client_resumes_total;
        c_expiries = chandle Obs.Names.client_lease_expiries_total;
        c_stale = chandle Obs.Names.client_stale_grants_total;
        trace = trace_sink;
      }
    in
    Hashtbl.iter (fun _ lq -> ignore (Thread.create (pump t) lq)) locks;
    t.accept_thread <- Some (Thread.create accept_loop t);
    t.sweep_thread <- Some (Thread.create sweep t);
    t

  let port t = t.port
  let sessions t = Mutex.lock t.mu; let n = live_sessions t in Mutex.unlock t.mu; n

  let stats t =
    Mutex.lock t.mu;
    let s =
      {
        opened = t.n_opened;
        resumed = t.n_resumed;
        expired = t.n_expired;
        granted = t.n_granted;
        rejected = t.n_rejected;
        stale_grants = t.n_stale;
      }
    in
    Mutex.unlock t.mu;
    s

  let last_fencing t ~lock =
    match Hashtbl.find_opt t.locks lock with
    | None -> None
    | Some lq ->
        Mutex.lock lq.lq_mu;
        let f = lq.lq_last_fencing in
        Mutex.unlock lq.lq_mu;
        if f < 0 then None else Some f

  let shutdown t =
    if not t.stopping then begin
      t.stopping <- true;
      (* Tell every attached client loudly before the sockets vanish,
         so failover starts now rather than on a TCP timeout. *)
      let sessions =
        Mutex.lock t.mu;
        let ss = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
        Mutex.unlock t.mu;
        ss
      in
      List.iter (fun s -> expire_session t s ~reason:"node shutting down")
        sessions;
      Hashtbl.iter
        (fun _ lq ->
          Mutex.lock lq.lq_mu;
          Condition.broadcast lq.lq_cond;
          Mutex.unlock lq.lq_mu)
        t.locks;
      (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.close t.sock with _ -> ());
      (match t.sweep_thread with Some th -> Thread.join th | None -> ());
      match t.accept_thread with Some th -> Thread.join th | None -> ()
    end
end
