lib/baselines/lamport.ml: Array Config Dmutex Format Fun List Printf String
