(* Unit tests of the dynamic-membership machinery: join/leave
   choreography, quorum-gated view commits, excision draining, the
   stale-view token guard, the non-member frame gate, and — most
   delicately — the mid-CS excision deferral (a committed view that
   excludes the node currently inside the critical section must not
   hand the token away until [Cs_done]). Node 0 is the initial
   arbiter throughout, exactly as in [Test_protocol]. *)

open Dmutex
open Dmutex.Types

let cfg = Basic.config ~n:4 ()

let step ?(now = 0.0) cfg st input = Protocol.handle cfg ~now st input

let sends effs =
  List.filter_map
    (function Send (dst, m) -> Some (dst, m) | _ -> None)
    effs

let notes effs =
  List.filter_map
    (function Note n -> Some (string_of_note n) | _ -> None)
    effs

let has_note effs s = List.mem s (notes effs)

let privilege_sends effs =
  List.filter_map
    (function
      | Send (dst, Protocol.Privilege tok) -> Some (dst, tok) | _ -> None)
    effs

let member_ids st = Protocol.member_ids st.Protocol.view

let mk_member ?(addr = "") mid = { Protocol.mid; maddr = addr }

(* A committed VIEW-CHANGE as a peer coordinator would send it. *)
let commit_vc ?(src = 0) ?(arbiter = 0) ~vnum members =
  Receive
    ( src,
      Protocol.View_change
    { Protocol.vc_view =
        { Protocol.vnum; vmembers = List.map mk_member members };
      vc_commit = true;
      vc_granted = Qlist.Granted.create 4;
      vc_epoch = 0;
      vc_election = 0;
      vc_arbiter = arbiter } )

(* ------------------------------------------------------------------ *)
(* Join choreography at the coordinator                                *)

let test_join_propose_then_commit () =
  (* The initial arbiter holds the token: a JOIN-REQUEST from an
     outsider triggers a proposal to every old-view member, and the
     commit waits for a majority of the OLD view (3 of 4, counting the
     coordinator itself). *)
  let st = Protocol.init cfg 0 in
  let joiner = mk_member ~addr:"127.0.0.1:9999" 4 in
  let st, effs = step cfg st (Receive (4, Protocol.Join_request joiner)) in
  Alcotest.(check bool) "proposal noted" true (has_note effs "view-proposed");
  let proposals =
    List.filter
      (function
        | _, Protocol.View_change { Protocol.vc_commit = false; _ } -> true
        | _ -> false)
      (sends effs)
  in
  Alcotest.(check (list int)) "proposed to every old member" [ 1; 2; 3 ]
    (List.sort compare (List.map fst proposals));
  Alcotest.(check int) "view unchanged before quorum" 0
    st.Protocol.view.Protocol.vnum;
  (* First ack: 2 of 3 — still short of quorum. *)
  let st, effs = step cfg st (Receive (1, Protocol.View_ack { va_vnum = 1 })) in
  Alcotest.(check int) "no commit on first ack" 0 (List.length (sends effs));
  Alcotest.(check int) "still the birth view" 0 st.Protocol.view.Protocol.vnum;
  (* Second ack reaches quorum: commit, local apply first. *)
  let st, effs = step cfg st (Receive (2, Protocol.View_ack { va_vnum = 1 })) in
  Alcotest.(check bool) "commit noted" true (has_note effs "view-committed");
  Alcotest.(check int) "epoch bumped" 1 st.Protocol.view.Protocol.vnum;
  Alcotest.(check (list int)) "joiner admitted" [ 0; 1; 2; 3; 4 ]
    (List.sort compare (member_ids st));
  let commits =
    List.filter
      (function
        | _, Protocol.View_change { Protocol.vc_commit = true; _ } -> true
        | _ -> false)
      (sends effs)
  in
  Alcotest.(check (list int)) "commit reaches old members and the joiner"
    [ 1; 2; 3; 4 ]
    (List.sort compare (List.map fst commits));
  (* The token in the coordinator's hands is stamped with the new
     view epoch. *)
  match st.Protocol.token with
  | Some tok -> Alcotest.(check int) "token vepoch" 1 tok.Protocol.vepoch
  | None -> Alcotest.fail "coordinator should still hold the token"

let test_join_relayed_by_non_arbiter () =
  (* A member that is not the arbiter relays the knock toward its
     believed arbiter instead of proposing. *)
  let st = Protocol.init cfg 1 in
  let joiner = mk_member ~addr:"127.0.0.1:9999" 4 in
  let _, effs = step cfg st (Receive (4, Protocol.Join_request joiner)) in
  match sends effs with
  | [ (0, Protocol.Join_request m) ] ->
      Alcotest.(check int) "relayed joiner id" 4 m.Protocol.mid;
      Alcotest.(check string) "address travels with the relay"
        "127.0.0.1:9999" m.Protocol.maddr
  | _ -> Alcotest.fail "expected one relayed JOIN-REQUEST to node 0"

let test_joiner_knocks_until_admitted () =
  (* A brand-new node knows only itself and a seed: every T_view
     firing knocks again; a commit admits it and stops the retries. *)
  let st = Protocol.joiner cfg ~me:4 ~seed:2 ~addr:"127.0.0.1:9999" in
  Alcotest.(check bool) "starts joining" true st.Protocol.joining;
  Alcotest.(check bool) "parks app requests" true st.Protocol.sync_wait;
  let st, effs = step cfg st (Timer_fired Protocol.T_view) in
  (match sends effs with
  | [ (2, Protocol.Join_request m) ] ->
      Alcotest.(check int) "knock carries our id" 4 m.Protocol.mid;
      Alcotest.(check string) "knock carries our address" "127.0.0.1:9999"
        m.Protocol.maddr
  | _ -> Alcotest.fail "expected JOIN-REQUEST to the seed");
  Alcotest.(check bool) "re-arms the knock timer" true
    (List.exists
       (function Set_timer (Protocol.T_view, _) -> true | _ -> false)
       effs);
  (* A commit excluding us must NOT stop the knocking. *)
  let st, _ = step cfg st (commit_vc ~vnum:1 [ 0; 1; 2 ]) in
  Alcotest.(check bool) "still joining after foreign commit" true
    st.Protocol.joining;
  (* The admitting commit flips us to member. *)
  let st, effs = step cfg st (commit_vc ~vnum:2 [ 0; 1; 2; 3; 4 ]) in
  Alcotest.(check bool) "admitted" false st.Protocol.joining;
  Alcotest.(check int) "adopted epoch" 2 st.Protocol.view.Protocol.vnum;
  Alcotest.(check bool) "acked the commit" true
    (List.exists
       (function
         | Send (_, Protocol.View_ack { va_vnum = 2 }) -> true | _ -> false)
       effs);
  Alcotest.(check bool) "knock timer cancelled" true
    (List.exists
       (function Cancel_timer Protocol.T_view -> true | _ -> false)
       effs)

(* ------------------------------------------------------------------ *)
(* Leave / excision                                                    *)

let test_leave_drains_queues () =
  (* The coordinator is collecting requests from 2 and 3 when node 2
     asks to leave: after the quorum commit, 2 is gone from the view
     AND from the collection queue. *)
  let st = Protocol.init cfg 0 in
  let st, _ =
    step cfg st (Receive (2, Protocol.Request (Qlist.entry ~node:2 ~seq:0 ())))
  in
  let st, _ =
    step cfg st (Receive (3, Protocol.Request (Qlist.entry ~node:3 ~seq:0 ())))
  in
  let st, effs = step cfg st (Receive (2, Protocol.Leave_request 2)) in
  Alcotest.(check bool) "proposal noted" true (has_note effs "view-proposed");
  let st, _ = step cfg st (Receive (1, Protocol.View_ack { va_vnum = 1 })) in
  let st, effs = step cfg st (Receive (3, Protocol.View_ack { va_vnum = 1 })) in
  Alcotest.(check bool) "commit noted" true (has_note effs "view-committed");
  Alcotest.(check (list int)) "view shrunk" [ 0; 1; 3 ]
    (List.sort compare (member_ids st));
  (match st.Protocol.role with
  | Protocol.Collecting { cq; _ } ->
      Alcotest.(check bool) "leaver drained from collection" false
        (Qlist.mem 2 cq);
      Alcotest.(check bool) "survivor kept" true (Qlist.mem 3 cq)
  | _ -> Alcotest.fail "coordinator should still be collecting");
  match st.Protocol.token with
  | Some tok -> Alcotest.(check int) "token vepoch" 1 tok.Protocol.vepoch
  | None -> Alcotest.fail "coordinator should still hold the token"

let test_leave_refused_for_last_member () =
  (* Excising the only member would leave an empty universe. *)
  let cfg1 = Basic.config ~n:1 () in
  let st = Protocol.init cfg1 0 in
  let _, effs = step cfg1 st (Receive (0, Protocol.Leave_request 0)) in
  Alcotest.(check bool) "refused" true (has_note effs "leave-refused-last")

(* ------------------------------------------------------------------ *)
(* Token / frame guards                                                *)

let test_stale_view_token_rejected () =
  (* A node that adopted view 1 rejects a token still stamped with
     view 0: view changes only happen in the coordinator's hands, so
     that token is a relic of a superseded universe. *)
  let st = Protocol.init cfg 1 in
  let st, _ = step cfg st (commit_vc ~vnum:1 [ 0; 1; 2 ]) in
  Alcotest.(check int) "adopted epoch" 1 st.Protocol.view.Protocol.vnum;
  let relic =
    { Protocol.tq = [ Qlist.entry ~node:1 ~seq:0 () ];
      granted = Qlist.Granted.create 4;
      epoch = 0; election = 1; vepoch = 0 }
  in
  let st, effs = step cfg st (Receive (0, Protocol.Privilege relic)) in
  Alcotest.(check bool) "rejected" true (has_note effs "stale-view-token");
  Alcotest.(check bool) "not adopted" true (st.Protocol.token = None)

let test_nonmember_frames_dropped () =
  (* After a commit that excised node 3, its protocol frames bounce
     off the membership gate — but a knock to rejoin passes. *)
  let st = Protocol.init cfg 0 in
  let st, _ = step cfg st (commit_vc ~vnum:1 [ 0; 1; 2 ]) in
  let st', effs =
    step cfg st
      (Receive (3, Protocol.Request (Qlist.entry ~node:3 ~seq:0 ())))
  in
  Alcotest.(check bool) "dropped" true (has_note effs "nonmember-dropped");
  Alcotest.(check int) "no sends for a dropped frame" 0
    (List.length (sends effs));
  Alcotest.(check bool) "state untouched" true (st' = st);
  (* The same sender's JOIN-REQUEST is membership traffic: allowed. *)
  let _, effs =
    step cfg st (Receive (3, Protocol.Join_request (mk_member 3)))
  in
  Alcotest.(check bool) "knock not dropped" false
    (has_note effs "nonmember-dropped")

(* ------------------------------------------------------------------ *)
(* Mid-CS excision deferral                                            *)

let test_excised_in_cs_defers_handoff () =
  (* Node 0 is INSIDE the critical section when a commit excises it.
     Mutual exclusion outranks membership: the view is adopted but the
     token must stay put until Cs_done — only then does the hand-off
     to the heir happen, stamped with the new view epoch. *)
  let st = Protocol.init cfg 0 in
  let st, _ = step cfg st Request_cs in
  let st, _ =
    step cfg st (Receive (2, Protocol.Request (Qlist.entry ~node:2 ~seq:0 ())))
  in
  let st, _ = step cfg st (Timer_fired Protocol.T_dispatch) in
  Alcotest.(check bool) "in cs before the commit" true (Protocol.in_cs st);
  (* Commit excising node 0 arrives from a surviving member. *)
  let st, effs =
    step cfg st (commit_vc ~src:1 ~arbiter:1 ~vnum:1 [ 1; 2; 3 ])
  in
  Alcotest.(check bool) "deferral noted" true (has_note effs "excised-in-cs");
  Alcotest.(check int) "no privilege leaves mid-cs" 0
    (List.length (privilege_sends effs));
  Alcotest.(check bool) "still in cs" true (Protocol.in_cs st);
  Alcotest.(check bool) "token retained" true (st.Protocol.token <> None);
  Alcotest.(check int) "view adopted anyway" 1
    st.Protocol.view.Protocol.vnum;
  (* Leaving the CS performs the deferred hand-off. *)
  let st, effs = step cfg st Cs_done in
  Alcotest.(check bool) "handoff noted" true (has_note effs "excised-handoff");
  (match privilege_sends effs with
  | [ (2, tok) ] ->
      Alcotest.(check int) "token stamped with new view" 1
        tok.Protocol.vepoch;
      Alcotest.(check (list int)) "queue drained to survivors" [ 2 ]
        (List.map (fun e -> e.Qlist.node) tok.Protocol.tq)
  | _ -> Alcotest.fail "expected the token to go to the waiting survivor");
  Alcotest.(check bool) "token released" true (st.Protocol.token = None);
  Alcotest.(check bool) "out of cs" false (Protocol.in_cs st)

let test_excised_idle_hands_off_immediately () =
  (* Outside the CS the hand-off happens right at the commit: the
     coordinator excising itself gives the token to the lowest
     surviving member when no requests wait. *)
  let st = Protocol.init cfg 0 in
  let st, _ = step cfg st (Receive (0, Protocol.Leave_request 0)) in
  let st, _ = step cfg st (Receive (1, Protocol.View_ack { va_vnum = 1 })) in
  let st, effs = step cfg st (Receive (2, Protocol.View_ack { va_vnum = 1 })) in
  Alcotest.(check bool) "excision noted" true (has_note effs "excised");
  (match privilege_sends effs with
  | [ (dst, tok) ] ->
      Alcotest.(check int) "token to the lowest survivor" 1 dst;
      Alcotest.(check int) "token stamped with new view" 1 tok.Protocol.vepoch
  | _ -> Alcotest.fail "expected exactly one PRIVILEGE hand-off");
  Alcotest.(check bool) "token released" true (st.Protocol.token = None);
  Alcotest.(check (list int)) "view excludes us" [ 1; 2; 3 ]
    (List.sort compare (member_ids st))

let suite =
  ( "membership",
    [
      Alcotest.test_case "join: propose then quorum commit" `Quick
        test_join_propose_then_commit;
      Alcotest.test_case "join: relayed toward the arbiter" `Quick
        test_join_relayed_by_non_arbiter;
      Alcotest.test_case "joiner knocks until admitted" `Quick
        test_joiner_knocks_until_admitted;
      Alcotest.test_case "leave drains queues" `Quick test_leave_drains_queues;
      Alcotest.test_case "leave refused for last member" `Quick
        test_leave_refused_for_last_member;
      Alcotest.test_case "stale-view token rejected" `Quick
        test_stale_view_token_rejected;
      Alcotest.test_case "non-member frames dropped" `Quick
        test_nonmember_frames_dropped;
      Alcotest.test_case "mid-CS excision defers hand-off" `Quick
        test_excised_in_cs_defers_handoff;
      Alcotest.test_case "idle excision hands off immediately" `Quick
        test_excised_idle_hands_off_immediately;
    ] )
