(* Tuning study: the paper's two knobs are the request-collection and
   request-forwarding phase lengths (Sections 2.1 and 7). Longer
   collection batches more requests per token rotation (fewer
   messages) but delays every grant — this example sweeps the
   trade-off at a moderate load, reproducing the 0.1-vs-0.2 contrast
   of Figures 3 and 4 over a wider range.

     dune exec examples/tuning.exe *)

let () =
  let rows =
    Experiments.table_collection_tuning ~n:10 ~requests:20_000 ~runs:3
      ~t_collects:[ 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 ] ~rate:0.2 ()
  in
  Experiments.print_sweep ~xlabel:"Tcoll" Format.std_formatter
    ~title:"Collection-phase tuning at lambda = 0.2 (N = 10)" rows;
  Format.printf "@.";
  Format.printf
    "Reading: messages/CS falls as Tcoll grows (more batching per@.";
  Format.printf
    "rotation), while delay grows roughly linearly in Tcoll — the@.";
  Format.printf "trade-off the paper leaves to the deployment to choose.@."
