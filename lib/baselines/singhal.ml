(** Singhal's dynamic information-structure algorithm (IEEE TPDS
    1992), reference [13] of the paper and the second Figure 6
    comparator. Each node keeps a dynamic request set R_i (whom to
    ask), initialized to the staircase R_i = {0..i}; receivers always
    learn about requesters, a requester that loses a priority tie
    echoes its own REQUEST to the winner, and on leaving the CS a node
    shrinks R_i to itself plus the requests it deferred. Message cost
    therefore adapts to contention: ≈ N/2 exchanges at low load,
    approaching Ricart-Agrawala's 2(N-1) under saturation. *)

open Dmutex.Types

type message = Request of { ts : int; j : node_id } | Reply
type timer = |

type state = {
  me : node_id;
  n : int;
  clock : int;
  my_ts : int option;
  awaited : int;  (* replies still awaited *)
  r : bool array;  (* request set membership (me always in) *)
  d : bool array;  (* deferred requesters *)
  in_cs : bool;
  pending : int;
}

let name = "singhal-dynamic"

(* No failure model: the original algorithm assumes reliable nodes and
   channels, so injected crashes or losses must fail loudly rather
   than silently measure behaviour the algorithm never claimed. *)
let fault_support = { crash_stop = false; message_loss = false }

let init cfg me =
  let n = cfg.Config.n in
  {
    me;
    n;
    clock = 0;
    my_ts = None;
    awaited = 0;
    r = Array.init n (fun j -> j <= me);  (* staircase *)
    d = Array.make n false;
    in_cs = false;
    pending = 0;
  }

let rejoin = init

let in_cs st = st.in_cs

(* No shared-mode path: every grant is exclusive. *)
let cs_mode _ = Exclusive
let wants_cs st = st.my_ts <> None || st.pending > 0

let set arr i v =
  let a = Array.copy arr in
  a.(i) <- v;
  a

let beats (ts, j) (ts', j') = ts < ts' || (ts = ts' && j < j')

let rec handle cfg ~now st input =
  match input with
  | Request_cs | Request_shared_cs ->
      if st.my_ts <> None || st.in_cs then
        ({ st with pending = st.pending + 1 }, [])
      else begin
        let ts = st.clock + 1 in
        let targets =
          List.filter (fun j -> j <> st.me && st.r.(j))
            (List.init st.n (fun j -> j))
        in
        let st =
          { st with clock = ts; my_ts = Some ts;
            awaited = List.length targets }
        in
        if st.awaited = 0 then ({ st with in_cs = true }, [ Enter_cs ])
        else
          (st, List.map (fun j -> Send (j, Request { ts; j = st.me })) targets)
      end
  | Receive (_, Request { ts; j }) -> begin
      let st = { st with clock = max st.clock ts } in
      if st.in_cs then
        (* Defer until we leave the CS; remember the requester. *)
        ({ st with d = set st.d j true; r = set st.r j true }, [])
      else
        match st.my_ts with
        | Some mine when beats (ts, j) (mine, st.me) ->
            (* The incoming request wins the tie: answer it, and if we
               had not asked j (it was outside R), echo our own REQUEST
               so j also answers us — this is what preserves the
               pairwise-connectivity invariant. *)
            if st.r.(j) then (st, [ Send (j, Reply) ])
            else
              ( { st with r = set st.r j true; awaited = st.awaited + 1 },
                [ Send (j, Reply); Send (j, Request { ts = mine; j = st.me }) ] )
        | Some _ ->
            (* We win: defer the reply. *)
            ({ st with d = set st.d j true; r = set st.r j true }, [])
        | None ->
            (* Idle: answer immediately and learn about j. *)
            ({ st with r = set st.r j true }, [ Send (j, Reply) ])
    end
  | Receive (_, Reply) ->
      let awaited = st.awaited - 1 in
      if awaited = 0 && st.my_ts <> None then
        ({ st with awaited; in_cs = true }, [ Enter_cs ])
      else ({ st with awaited }, [])
  | Cs_done ->
      let deferred =
        List.filter (fun j -> st.d.(j)) (List.init st.n (fun j -> j))
      in
      let effs = List.map (fun j -> Send (j, Reply)) deferred in
      (* Shrink the request set to ourselves plus the nodes we know
         are still interested. *)
      let r = Array.init st.n (fun j -> j = st.me || st.d.(j)) in
      let st =
        { st with in_cs = false; my_ts = None; r;
          d = Array.make st.n false }
      in
      if st.pending > 0 then
        let st, effs' =
          handle cfg ~now { st with pending = st.pending - 1 } Request_cs
        in
        (st, effs @ effs')
      else (st, effs)
  | Timer_fired _ -> (st, [])

let message_kind = function Request _ -> "REQUEST" | Reply -> "REPLY"

let pp_message ppf = function
  | Request { ts; j } -> Format.fprintf ppf "REQUEST(%d,%d)" ts j
  | Reply -> Format.pp_print_string ppf "REPLY"

let pp_state ppf st =
  let members arr =
    List.filter (fun j -> arr.(j)) (List.init st.n (fun j -> j))
  in
  Format.fprintf ppf "node %d: R={%a} D={%a} awaited=%d%s" st.me
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (members st.r)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (members st.d)
    st.awaited
    (if st.in_cs then " IN-CS" else "")
