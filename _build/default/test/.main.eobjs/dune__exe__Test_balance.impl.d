test/test_balance.ml: Alcotest Analysis Array Basic Dmutex Experiments Fair List Printf Qlist Sim_runner Simkit
