(** In-process test cluster: [n] protocol nodes on loopback TCP.

    Each node is a full {!Node_runner} with its own sockets and
    threads; only the process boundary is missing compared to a real
    deployment. Used by the examples and the end-to-end tests. *)

module Make
    (A : Dmutex.Types.ALGO)
    (C : Wire.CODEC with type message = A.message) : sig
  module Node : module type of Node_runner.Make (A) (C)

  type t

  val launch : ?base_port:int -> Dmutex.Types.Config.t -> t
  (** Start [cfg.n] nodes on 127.0.0.1 ports [base_port ..
      base_port+n-1] (default base port 7801; picks free ports by
      retrying a few bases on bind failure). *)

  val node : t -> int -> Node.t
  val n : t -> int

  val crash : t -> int -> unit
  (** Fail-stop one node (sockets closed, threads stopped). *)

  val shutdown : t -> unit
  (** Stop every node. *)
end
