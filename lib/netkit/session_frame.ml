exception Closed

let max_frame = 1 lsl 20

let rec really_read fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.read fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n = 0 then raise Closed;
    if n < 0 then really_read fd buf pos len
    else really_read fd buf (pos + n) (len - n)
  end

let recv fd =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    raise (Wire.Malformed (Printf.sprintf "client frame length %d" len));
  let body = Bytes.create len in
  really_read fd body 0 len;
  Bytes.unsafe_to_string body

let send fd msg =
  let len = String.length msg in
  if len > max_frame then
    invalid_arg "Session_frame.send: message exceeds the frame cap";
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string msg 0 b 4 len;
  let rec write pos remaining =
    if remaining > 0 then begin
      let n =
        try Unix.write fd b pos remaining
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      write (pos + n) (remaining - n)
    end
  in
  write 0 (4 + len)
