(** Bench regression gate: compares the derived metrics of a fresh
    [BENCH_RESULTS.json] against the committed baseline.

    Two families of checks:

    - {b relative}: messages-per-CS (high and light load) and total
      wall-clock must not regress by more than a tolerance fraction
      over the baseline. Messages-per-CS is deterministic (pure
      simulation, fixed seeds) so its tolerance can be tight;
      wall-clock depends on the host, so its tolerance is separate
      and CI passes a loose one.
    - {b absolute}: the high-load messages-per-CS must sit inside the
      acceptance band derived from the paper's Eq. 4 (M = 3 - 2/N),
      independent of what the baseline says — a drifting baseline
      cannot ratchet the protocol away from the analysis.

    The big-N scale table ([derived.scale], schema 3) adds dynamic
    checks generated from the current run: the dmutex row's
    messages-per-CS must sit inside the Eq. 4 band {e at every swept
    N}, each cell is compared against the baseline's matching cell
    when one exists, and the empirical scaling exponent must stay
    within an absolute tolerance of the baseline's. A current run with
    no scale table at all fails — the band must not vanish silently —
    unless [allow_missing] marks the run as deliberately sectioned
    (e.g. [DMUTEX_BENCH_ONLY] in the nightly lab).

    Checks are direction-aware: costs (messages/CS, wall-clock)
    regress {e upward}, while the sharded experiment's aggregate
    throughput regresses {e downward} — a lower [cs_per_sec] than the
    baseline beyond tolerance fails, a higher one never does. The
    sharded messages-per-CS shares the Eq. 4 acceptance band: hosting
    many locks must not change any one lock's per-CS cost.

    Improvements never fail. Metrics missing from the {e baseline} are
    skipped with a note (forward compatibility); metrics missing from
    the {e current} run fail — except the optional sharded and
    client-swarm metrics, which are skipped when absent from both runs
    (baselines and runs that predate the lock namespace or the client
    session layer). *)

type outcome = {
  lines : string list;  (** human-readable report, one line per check *)
  failures : string list;  (** subset describing failed checks; empty = pass *)
  summary : string list;
      (** fixed-width per-metric table (header first): label, baseline,
          current, delta, status — the one-glance digest printed under
          the per-check report *)
}

val run :
  ?tolerance:float ->
  (* messages-per-CS relative tolerance, default 0.25 *)
  ?wall_tolerance:float ->
  (* wall-clock relative tolerance, default 0.25 *)
  ?band:float * float ->
  (* absolute high-load messages-per-CS band, default (2.5, 4.5);
     also applied to every N of the scale table's dmutex row *)
  ?exponent_tolerance:float ->
  (* absolute tolerance on the dmutex scaling exponent vs the
     baseline's, default 0.15 — relative tolerances are meaningless
     for a metric that sits near zero by design *)
  ?sharded_floor:float ->
  (* absolute floor on the sharded experiment's aggregate cs_per_sec;
     default none. Like [band], it applies regardless of the baseline,
     pinning the transport's throughput so later changes cannot walk
     it back one tolerated regression at a time. *)
  ?client_floor:float ->
  (* absolute floor on the client-swarm experiment's acq_per_sec
     (grants issued to thin clients per second); default none. The
     client-swarm checks are optional like the sharded ones —
     baselines that predate the session layer skip them. *)
  ?allow_missing:bool ->
  (* default false. True turns "metric missing from the current run"
     into a skip instead of a failure, for deliberately sectioned
     benches (DMUTEX_BENCH_ONLY) whose JSON legitimately lacks whole
     sections. Band checks on metrics that are present still apply. *)
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  outcome
