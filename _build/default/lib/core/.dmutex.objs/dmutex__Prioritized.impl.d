lib/core/prioritized.ml: Array Protocol Types
