test/test_protocol_variants.ml: Alcotest Dmutex List Monitored Protocol Qlist Resilient
