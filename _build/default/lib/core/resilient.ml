(** The failure-handling variant of Section 6: token timeouts and
    WARNING messages, the two-phase token invalidation protocol
    (ENQUIRY / RESUME / INVALIDATE), and failed-arbiter takeover by the
    previous arbiter (PROBE). *)

include Protocol

let name = "bc-resilient"

let config ?(token_timeout = 5.0) ?(enquiry_timeout = 1.0)
    ?(arbiter_timeout = 5.0) ?(t_collect = 0.1) ~n () =
  {
    (Types.Config.default ~n) with
    Types.Config.recovery = true;
    token_timeout;
    enquiry_timeout;
    arbiter_timeout;
    t_collect;
  }
