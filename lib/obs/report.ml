type t = {
  messages_sent : int;
  messages_received : int;
  cs_entries : int;
  messages_per_cs : float;
  by_kind : (string * int) list;
  sync_delay_mean : float;
  sync_delay_max : float;
  queue_length_mean : float;
}

let counter_total snap name =
  List.fold_left
    (fun acc ((s : Registry.series), v) ->
      if String.equal s.name name then acc + v else acc)
    0 snap.Registry.counters

let counter_by_label snap name label =
  List.filter_map
    (fun ((s : Registry.series), v) ->
      if String.equal s.name name then
        match List.assoc_opt label s.labels with
        | Some l -> Some (l, v)
        | None -> None
      else None)
    snap.Registry.counters
  |> List.sort compare

let histo snap name =
  List.find_map
    (fun ((s : Registry.series), h) ->
      if String.equal s.name name && s.labels = [] then Some h else None)
    snap.Registry.histograms

let derive snap =
  let messages_sent = counter_total snap Names.messages_sent_total in
  let messages_received = counter_total snap Names.messages_received_total in
  let cs_entries = counter_total snap Names.cs_entries_total in
  let messages_per_cs =
    if cs_entries = 0 then nan
    else float_of_int messages_sent /. float_of_int cs_entries
  in
  let sync = histo snap Names.sync_delay_seconds in
  let qlen = histo snap Names.queue_length in
  {
    messages_sent;
    messages_received;
    cs_entries;
    messages_per_cs;
    by_kind = counter_by_label snap Names.messages_sent_total "kind";
    sync_delay_mean =
      (match sync with Some h -> Registry.histo_mean h | None -> nan);
    sync_delay_max = (match sync with Some h -> h.Registry.h_max | None -> nan);
    queue_length_mean =
      (match qlen with Some h -> Registry.histo_mean h | None -> nan);
  }

let jnum v = if Float.is_nan v then Json.Null else Json.Num v

let to_json t =
  Json.Obj
    [
      ("messages_sent", Json.Num (float_of_int t.messages_sent));
      ("messages_received", Json.Num (float_of_int t.messages_received));
      ("cs_entries", Json.Num (float_of_int t.cs_entries));
      ("messages_per_cs", jnum t.messages_per_cs);
      ( "by_kind",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) t.by_kind) );
      ("sync_delay_mean_s", jnum t.sync_delay_mean);
      ("sync_delay_max_s", jnum t.sync_delay_max);
      ("queue_length_mean", jnum t.queue_length_mean);
    ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>messages/CS %.3f (%d msgs / %d entries)@,sync delay mean %.4fs max %.4fs@,queue length mean %.2f@,by kind:%a@]"
    t.messages_per_cs t.messages_sent t.cs_entries t.sync_delay_mean
    t.sync_delay_max t.queue_length_mean
    (fun ppf l ->
      List.iter (fun (k, v) -> Format.fprintf ppf "@, %-12s %d" k v) l)
    t.by_kind
