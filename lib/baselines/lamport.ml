(** Lamport's classic timestamp mutual exclusion algorithm (from the
    papers cited as [4, 5] in the ICDCS'96 reference list, in its
    standard message-passing formulation). Every node maintains a
    local request queue ordered by (timestamp, id); a requester
    broadcasts REQUEST, enters the CS once (a) its own request heads
    its queue and (b) it has heard a later-timestamped message from
    every other node (an ACK suffices), and broadcasts RELEASE on
    exit: 3(N-1) messages per CS.

    Correctness relies on FIFO channels between each pair of nodes —
    true of both our simulated network (deterministic per-pair latency)
    and TCP.

    The state is kept in persistent sets/maps rather than sorted lists
    and copied arrays: a saturated start floods ~2N² messages, and at
    N=1000 an O(N)-per-message representation turns one sweep point
    into minutes of list churn. Everything below is O(log N) per
    message; the only O(N) work is the per-candidacy scan when a
    request is issued. *)

open Dmutex.Types

type message =
  | Request of { ts : int; j : node_id }
  | Ack of { ts : int }
  | Release of { ts : int; j : node_id }

type timer = |

(* The request queue as a set of (timestamp, node): min element = head
   of Lamport's queue. *)
module Rq = Set.Make (struct
  type t = int * node_id

  let compare = compare
end)

module Im = Map.Make (Int)

type state = {
  me : node_id;
  n : int;
  clock : int;
  queue : Rq.t;  (* pending requests, (ts, j) ordered *)
  ts_of : int Im.t;  (* j -> its queued request's timestamp *)
  last_heard : int Im.t;  (* highest timestamp heard per node *)
  requesting : bool;
  heard_count : int;
      (* nodes k <> me with last_heard(k) > our request's timestamp —
         maintained incrementally so the CS entry check is O(1)
         instead of an O(N) scan per incoming message *)
  in_cs : bool;
  pending : int;
}

let name = "lamport"

(* No failure model: the original algorithm assumes reliable nodes and
   channels, so injected crashes or losses must fail loudly rather
   than silently measure behaviour the algorithm never claimed. *)
let fault_support = { crash_stop = false; message_loss = false }

let init cfg me =
  {
    me;
    n = cfg.Config.n;
    clock = 0;
    queue = Rq.empty;
    ts_of = Im.empty;
    last_heard = Im.empty;
    requesting = false;
    heard_count = 0;
    in_cs = false;
    pending = 0;
  }

let rejoin = init
let in_cs st = st.in_cs

(* No shared-mode path: every grant is exclusive. *)
let cs_mode _ = Exclusive
let wants_cs st = st.requesting || st.pending > 0
let heard st k = match Im.find_opt k st.last_heard with Some t -> t | None -> 0
let my_ts st = match Im.find_opt st.me st.ts_of with Some t -> t | None -> -1

(* Record a (monotone) timestamp heard from [src], bumping
   [heard_count] when it first crosses our candidacy's timestamp. *)
let note_heard st src ts =
  let old = heard st src in
  if ts <= old then st
  else
    let heard_count =
      if st.requesting && src <> st.me && old <= my_ts st && ts > my_ts st
      then st.heard_count + 1
      else st.heard_count
    in
    { st with last_heard = Im.add src ts st.last_heard; heard_count }

let enqueue (ts, j) st =
  { st with queue = Rq.add (ts, j) st.queue; ts_of = Im.add j ts st.ts_of }

(* Remove [j]'s queued request, if any (FIFO channels guarantee at
   most one is queued per node). *)
let dequeue j st =
  match Im.find_opt j st.ts_of with
  | None -> st
  | Some ts ->
      { st with queue = Rq.remove (ts, j) st.queue; ts_of = Im.remove j st.ts_of }

(* CS entry condition: our request heads the queue and every other
   node has spoken since our request's timestamp. *)
let try_enter st =
  if
    st.requesting && (not st.in_cs)
    && st.heard_count = st.n - 1
    && Rq.min_elt_opt st.queue = Some (my_ts st, st.me)
  then ({ st with in_cs = true }, [ Enter_cs ])
  else (st, [])

let rec handle cfg ~now st input =
  match input with
  | Request_cs | Request_shared_cs ->
      if st.requesting || st.in_cs then
        ({ st with pending = st.pending + 1 }, [])
      else begin
        let ts = st.clock + 1 in
        let st = enqueue (ts, st.me) { st with clock = ts; requesting = true } in
        (* One O(N) scan per candidacy seeds the incremental count. *)
        let heard_count =
          Im.fold
            (fun k h acc -> if k <> st.me && h > ts then acc + 1 else acc)
            st.last_heard 0
        in
        let st = { st with heard_count } in
        if st.n = 1 then ({ st with in_cs = true }, [ Enter_cs ])
        else (st, [ Broadcast (Request { ts; j = st.me }) ])
      end
  | Receive (src, Request { ts; j }) ->
      let clock = max st.clock ts + 1 in
      let st = note_heard (enqueue (ts, j) { st with clock }) src ts in
      (* The ACK's timestamp must exceed the request's. *)
      let st, effs = try_enter st in
      (st, Send (src, Ack { ts = clock }) :: effs)
  | Receive (src, Ack { ts }) ->
      let st = note_heard { st with clock = max st.clock ts } src ts in
      try_enter st
  | Receive (src, Release { ts; j }) ->
      let st = note_heard (dequeue j { st with clock = max st.clock ts }) src ts in
      try_enter st
  | Cs_done ->
      let ts = st.clock + 1 in
      let st =
        dequeue st.me
          { st with clock = ts; in_cs = false; requesting = false;
            heard_count = 0 }
      in
      let effs =
        if st.n = 1 then [] else [ Broadcast (Release { ts; j = st.me }) ]
      in
      if st.pending > 0 then
        let st, effs' =
          handle cfg ~now { st with pending = st.pending - 1 } Request_cs
        in
        (st, effs @ effs')
      else (st, effs)
  | Timer_fired _ -> (st, [])

let message_kind = function
  | Request _ -> "REQUEST"
  | Ack _ -> "ACK"
  | Release _ -> "RELEASE"

let pp_message ppf = function
  | Request { ts; j } -> Format.fprintf ppf "REQUEST(%d,%d)" ts j
  | Ack { ts } -> Format.fprintf ppf "ACK(%d)" ts
  | Release { ts; j } -> Format.fprintf ppf "RELEASE(%d,%d)" ts j

let pp_state ppf st =
  Format.fprintf ppf "node %d: clock=%d queue=[%s]%s%s" st.me st.clock
    (String.concat ";"
       (List.map
          (fun (ts, j) -> Printf.sprintf "(%d,%d)" ts j)
          (Rq.elements st.queue)))
    (if st.requesting then " requesting" else "")
    (if st.in_cs then " IN-CS" else "")
