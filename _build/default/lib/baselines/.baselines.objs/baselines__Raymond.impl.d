lib/baselines/raymond.ml: Config Dmutex Format List
