lib/netkit/cluster.mli: Dmutex Node_runner Wire
