type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* A single shared placeholder fills every unused slot, so a popped
   value (and any closure it captures) is released to the GC at pop
   time instead of lingering in the backing array. The [value] field
   holds an immediate int and is never read: [size] guards every
   access, making the cast safe. *)
let dummy_entry : Obj.t entry = { prio = nan; seq = -1; value = Obj.repr 0 }
let dummy () = (Obj.magic dummy_entry : _ entry)

let create ?(capacity = 64) () =
  let data = if capacity <= 0 then [||] else Array.make capacity (dummy ()) in
  { data; size = 0; next_seq = 0 }

let size t = t.size
let is_empty t = t.size = 0

let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndata = Array.make ncap (dummy ()) in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority v =
  let entry = { prio = priority; seq = t.next_seq; value = v } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.prio, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- dummy ();
      sift_down t 0
    end
    else t.data.(0) <- dummy ();
    Some (top.prio, top.value)
  end

let clear t =
  Array.fill t.data 0 t.size (dummy ());
  t.size <- 0

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some pv -> drain (pv :: acc)
  in
  drain []
