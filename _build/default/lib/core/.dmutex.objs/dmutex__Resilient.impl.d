lib/core/resilient.ml: Protocol Types
