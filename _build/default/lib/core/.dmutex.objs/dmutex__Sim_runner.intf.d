lib/core/sim_runner.mli: Format Simkit Types
