test/test_recovery.ml: Alcotest Dmutex Experiments Fun List Protocol Resilient Sim_runner Simkit
