(* Reactor transport: framed TCP over an event-loop core.

   The previous transport spent a thread per inbound connection plus a
   writer thread per peer channel, one [Unix.write] per frame and a
   fresh [Bytes.create] per frame on both paths. This version runs a
   small fixed pool of I/O event loops ({!Reactor}, one domain each
   via [Simkit.Domainx]) over non-blocking sockets:

   - outbound frames land in a per-peer ring buffer; the owning
     reactor serializes every due frame — across all lock instances
     multiplexed on the connection — into one pooled flush buffer and
     pushes it with one [write] (a coalesced flush);
   - inbound bytes are read into a per-connection pooled buffer and
     parsed in place, many frames per syscall, with no per-frame
     allocation beyond the payload string handed to [on_frame];
   - heartbeats piggyback on traffic: a beacon is only emitted for a
     peer the transport has not written to for a full period, because
     any frame proves liveness to the receiver's monitor;
   - an optional flush timer ([?flush_us] / [DMUTEX_FLUSH_US], default
     0 = flush on the next reactor pass) delays frames briefly so more
     of them share one syscall, bounding added latency by the knob.

   Supervision semantics are unchanged from the writer-thread design:
   bounded per-peer queues shed new frames when full, reconnects use
   capped exponential backoff with jitter, a frame gets a bounded
   number of connect attempts before it is shed (DME tolerates loss by
   design), chaos [Fault] verdicts are honoured both at send time and
   again at flush time, and the full metrics contract
   (sent/delivered/dropped/retries/reconnects, mirrored into [?obs])
   survives, extended with flush observability
   (flushes/frames-per-flush). *)

type endpoint = { host : string; port : int }

let pp_endpoint ppf e = Format.fprintf ppf "%s:%d" e.host e.port

let src_log = Logs.Src.create "netkit.transport" ~doc:"framed TCP transport"

module Log = (val Logs.src_log src_log)

type metrics = {
  sent : int;
  delivered : int;
  dropped : int;
  retries : int;
  reconnects : int;
  flushes : int;
  queue_depth : int;
}

let pp_metrics ppf m =
  Format.fprintf ppf
    "sent=%d delivered=%d dropped=%d retries=%d reconnects=%d flushes=%d \
     queued=%d"
    m.sent m.delivered m.dropped m.retries m.reconnects m.flushes
    m.queue_depth

let backoff_floor = 0.05
let backoff_cap = 1.0
let connect_attempts_per_frame = 6
let connect_timeout = 1.0
let max_frame_len = 64 * 1024 * 1024

(* Stop topping up a flush batch past this many serialized bytes; the
   remainder goes in the next flush. *)
let flush_bytes_cap = 256 * 1024

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v >= 0 -> v
  | Some _ | None -> default

(* ------------------------------------------------------------------ *)
(* Coalesced flush buffer: frames serialize into one pooled [Bytes.t]
   — length prefix, wire-v2 header and payload written in place, no
   per-frame allocation. Also the unit benched by
   [kernel:transport-flush]. *)

module Flush = struct
  type t = { mutable b : Bytes.t; mutable len : int }

  let create () = { b = Bufpool.take Bufpool.min_size; len = 0 }
  let length t = t.len
  let reset t = t.len <- 0

  let release t =
    Bufpool.give t.b;
    t.b <- Bytes.create 0

  let add_frame t ~src ~lock kind payload =
    let hl = Wire.Frame.header_len ~lock in
    let pl = String.length payload in
    let total = 4 + hl + pl in
    if t.len + total > Bytes.length t.b then
      t.b <- Bufpool.grow t.b ~len:t.len (t.len + total);
    Bytes.set_int32_be t.b t.len (Int32.of_int (hl + pl));
    let p = Wire.Frame.blit_header t.b ~pos:(t.len + 4) ~src ~lock kind in
    Bytes.blit_string payload 0 t.b p pl;
    t.len <- t.len + total

  (* One write syscall from [pos]; returns bytes written. *)
  let write t fd ~pos = Unix.write fd t.b pos (t.len - pos)
end

(* ------------------------------------------------------------------ *)
(* Per-peer outbound ring buffer.                                      *)

type item = {
  i_kind : Wire.Frame.kind;
  i_lock : string;
  i_payload : string;
  i_counted : bool;
  i_not_before : float;
  mutable i_attempts : int;
}

module Ring = struct
  type t = {
    mutable buf : item array;
    mutable head : int;
    mutable len : int;
    cap : int; (* enqueue bound; requeue may transiently exceed it *)
  }

  let dummy =
    {
      i_kind = Wire.Frame.Heartbeat;
      i_lock = "";
      i_payload = "";
      i_counted = false;
      i_not_before = 0.0;
      i_attempts = 0;
    }

  let create cap = { buf = Array.make (max 8 (min cap 64)) dummy; head = 0; len = 0; cap }
  let length t = t.len
  let is_full t = t.len >= t.cap

  let grow t need =
    if need > Array.length t.buf then begin
      let cap' = max need (2 * Array.length t.buf) in
      let buf' = Array.make cap' dummy in
      for k = 0 to t.len - 1 do
        buf'.(k) <- t.buf.((t.head + k) mod Array.length t.buf)
      done;
      t.buf <- buf';
      t.head <- 0
    end

  let push t it =
    grow t (t.len + 1);
    t.buf.((t.head + t.len) mod Array.length t.buf) <- it;
    t.len <- t.len + 1

  let push_front t it =
    grow t (t.len + 1);
    t.head <- (t.head + Array.length t.buf - 1) mod Array.length t.buf;
    t.buf.(t.head) <- it;
    t.len <- t.len + 1

  let peek t = if t.len = 0 then None else Some t.buf.(t.head)

  let pop t =
    let it = t.buf.(t.head) in
    t.buf.(t.head) <- dummy;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    it

  (* Remove items failing [keep], in order; returns the removed. *)
  let reject t keep =
    let kept = ref [] and gone = ref [] in
    for _ = 1 to t.len do
      let it = pop t in
      if keep it then kept := it :: !kept else gone := it :: !gone
    done;
    List.iter (push t) (List.rev !kept);
    List.rev !gone
end

(* ------------------------------------------------------------------ *)

type obs_handles = {
  o_sent : Dmutex_obs.Registry.Counter.handle;
  o_delivered : Dmutex_obs.Registry.Counter.handle;
  o_dropped : Dmutex_obs.Registry.Counter.handle;
  o_retries : Dmutex_obs.Registry.Counter.handle;
  o_reconnects : Dmutex_obs.Registry.Counter.handle;
  o_flushes : Dmutex_obs.Registry.Counter.handle;
  o_frames_per_flush : Dmutex_obs.Registry.Histogram.handle;
  o_queue_depth : Dmutex_obs.Registry.Gauge.handle;
}

(* Outbound connection state, owned by the peer's reactor. *)
type conn =
  | Off
  | Connecting of Unix.file_descr * float (* fd, give-up deadline *)
  | On of Unix.file_descr

type peer = {
  dst : int;
  reactor : int; (* index of the owning reactor *)
  mu : Mutex.t; (* guards [ring] *)
  ring : Ring.t;
  retired : bool Atomic.t;
      (* Excised from the membership view: sends are shed, the
         connection is torn down by the owning reactor, and the slot
         stays dead until [add_peer] revives it (a rejoin). *)
  mutable endpoint : endpoint; (* may be re-pointed on rejoin *)
  (* Everything below is touched only by the owning reactor. *)
  mutable conn : conn;
  mutable next_attempt : float;
  mutable backoff : float;
  mutable connected_once : bool;
  fb : Flush.t;
  mutable fb_pos : int; (* first unwritten byte of [fb] *)
  mutable inflight : (item * int) list; (* serialized items, end offsets *)
  mutable last_tx : float; (* last successful write, for hb piggyback *)
}

(* Inbound connection: a pooled parse buffer refilled in place. *)
type iconn = {
  ic_fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int; (* valid bytes *)
  mutable rpos : int; (* parse cursor *)
}

type t = {
  me : int;
  mutable peers : endpoint array;
  on_frame : src:int -> lock:string -> string -> unit;
  on_heartbeat : src:int -> unit;
  fault : Fault.t option;
  listener : Unix.file_descr;
  mutable ps : peer array;
  peers_mu : Mutex.t; (* guards replacement of [peers]/[ps] *)
  reactors : Reactor.t array;
  iconns : (Unix.file_descr, iconn) Hashtbl.t array; (* per reactor *)
  max_queue : int;
  heartbeat_period : float option;
  hb_next : float ref; (* reactor-0 owned *)
  flush_s : float; (* flush timer in seconds; 0 = next pass *)
  obs : obs_handles option;
  stats : Mutex.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable retries : int;
  mutable reconnects : int;
  mutable flushes : int;
  closed : bool Atomic.t;
  mutable loss : float;
  loss_rng : Random.State.t;
  backoff_rng : Random.State.t;
  cork_depth : int Atomic.t;
  pending_wake : bool Atomic.t array; (* per reactor *)
  accept_rr : int ref; (* reactor-0 owned: inbound round-robin *)
}

let closed t = Atomic.get t.closed

let bump t f =
  Mutex.lock t.stats;
  f t;
  Mutex.unlock t.stats

let obs_incr t pick =
  match t.obs with
  | Some h -> Dmutex_obs.Registry.Counter.incr (pick h)
  | None -> ()

let count_dropped t counted =
  if counted then begin
    bump t (fun t -> t.dropped <- t.dropped + 1);
    obs_incr t (fun h -> h.o_dropped)
  end

let count_retry t =
  bump t (fun t -> t.retries <- t.retries + 1);
  obs_incr t (fun h -> h.o_retries)

let jittered t backoff =
  let j =
    Mutex.lock t.stats;
    let j = Random.State.float t.backoff_rng 1.0 in
    Mutex.unlock t.stats;
    j
  in
  backoff *. (0.5 +. j)

(* ------------------------------------------------------------------ *)
(* Waking and corking.

   Senders never touch the reactor state; they push into the ring and
   wake the owning reactor through a deduplicated flag, so a burst of
   sends costs at most one pipe write. [cork]/[uncork] suspend even
   that: while corked, wakes are latched and delivered on the last
   uncork — the protocol layer corks around a state-machine step so
   every frame the step emits rides one reactor pass (and usually one
   coalesced flush per peer). *)

let wake_reactor t k =
  Atomic.set t.pending_wake.(k) true;
  if Atomic.get t.cork_depth = 0 then
    if Atomic.exchange t.pending_wake.(k) false then
      Reactor.wake t.reactors.(k)

let cork t = ignore (Atomic.fetch_and_add t.cork_depth 1)

let uncork t =
  if Atomic.fetch_and_add t.cork_depth (-1) = 1 then
    Array.iteri
      (fun k pending ->
        if Atomic.exchange pending false then Reactor.wake t.reactors.(k))
      t.pending_wake

(* ------------------------------------------------------------------ *)
(* Send path (any thread).                                             *)

let enqueue t ~dst ~counted ~not_before ~kind ~lock payload =
  let pe = t.ps.(dst) in
  Mutex.lock pe.mu;
  let ok =
    if closed t then false
    else if Ring.is_full pe.ring then begin
      count_dropped t counted;
      false
    end
    else begin
      Ring.push pe.ring
        {
          i_kind = kind;
          i_lock = lock;
          i_payload = payload;
          i_counted = counted;
          i_not_before = not_before;
          i_attempts = 0;
        };
      true
    end
  in
  Mutex.unlock pe.mu;
  if ok then wake_reactor t pe.reactor;
  ok

let send_kind t ~dst ~lock ~counted kind payload =
  if closed t || dst = t.me || dst < 0 || dst >= Array.length t.ps then
    false
  else if Atomic.get t.ps.(dst).retired then begin
    (* The membership view excised this peer: the network ate it, as
       far as the protocol is concerned. *)
    count_dropped t counted;
    true
  end
  else begin
    let lost =
      Mutex.lock t.stats;
      let l = t.loss > 0.0 && Random.State.float t.loss_rng 1.0 < t.loss in
      Mutex.unlock t.stats;
      l
    in
    if lost then begin
      (* Chaos mode: the network ate it. The caller sees success (that
         is the point) but the counters record a drop, never a send —
         matching [Simkit.Network] accounting. *)
      count_dropped t counted;
      true
    end
    else
      let flush_after =
        if t.flush_s > 0.0 then Unix.gettimeofday () +. t.flush_s else 0.0
      in
      match t.fault with
      | None -> enqueue t ~dst ~counted ~not_before:flush_after ~kind ~lock payload
      | Some f -> (
          match Fault.verdict f ~src:t.me ~dst payload with
          | Fault.Drop ->
              count_dropped t counted;
              true
          | Fault.Deliver ->
              enqueue t ~dst ~counted ~not_before:flush_after ~kind ~lock
                payload
          | Fault.Delay d ->
              enqueue t ~dst ~counted
                ~not_before:(Float.max flush_after (Unix.gettimeofday () +. d))
                ~kind ~lock payload)
  end

let send t ~dst ?(lock = "") payload =
  send_kind t ~dst ~lock ~counted:true Wire.Frame.Data payload

let broadcast t ?(lock = "") payload =
  let ok = ref 0 in
  cork t;
  let ps = t.ps in
  for dst = 0 to Array.length ps - 1 do
    if dst <> t.me && (not (Atomic.get ps.(dst).retired))
       && send t ~dst ~lock payload
    then incr ok
  done;
  uncork t;
  !ok

(* ------------------------------------------------------------------ *)
(* Outbound reactor side: connect, coalesce, flush.                    *)

let reactor_of t pe = t.reactors.(pe.reactor)

let set_write_interest t pe fd w =
  Reactor.modify (reactor_of t pe) fd ~read:false ~write:w

let close_conn_fd t pe fd =
  Reactor.remove (reactor_of t pe) fd;
  (try Unix.close fd with _ -> ());
  pe.conn <- Off

(* A connect attempt failed: every queued frame ages by one attempt
   and frames over budget are shed — the peer looks gone, and the
   queue must keep draining (DME tolerates loss by design). *)
let connect_failed t pe now =
  count_retry t;
  Mutex.lock pe.mu;
  let shed =
    Ring.reject pe.ring (fun it ->
        it.i_attempts <- it.i_attempts + 1;
        it.i_attempts < connect_attempts_per_frame)
  in
  Mutex.unlock pe.mu;
  List.iter (fun it -> count_dropped t it.i_counted) shed;
  if shed <> [] then
    Log.debug (fun m ->
        m "node %d: shedding %d frame(s) for dead peer %d" t.me
          (List.length shed) pe.dst);
  pe.next_attempt <- now +. jittered t pe.backoff;
  pe.backoff <- Float.min backoff_cap (pe.backoff *. 2.0)

let conn_broken t pe fd =
  count_retry t;
  close_conn_fd t pe fd;
  (* Requeue the frames of the interrupted flush that were not fully
     handed to the kernel, preserving order: nothing queued is lost
     across a reconnect. (A frame cut mid-write is re-sent whole —
     the receiver's stream ended inside it, so it never decoded.) *)
  let unsent =
    List.filter (fun (_, e) -> e > pe.fb_pos) pe.inflight |> List.map fst
  in
  Mutex.lock pe.mu;
  List.iter (fun it -> Ring.push_front pe.ring it) (List.rev unsent);
  Mutex.unlock pe.mu;
  Flush.reset pe.fb;
  pe.fb_pos <- 0;
  pe.inflight <- [];
  let now = Unix.gettimeofday () in
  pe.next_attempt <- now +. jittered t pe.backoff;
  pe.backoff <- Float.min backoff_cap (pe.backoff *. 2.0)

(* Serialize every due frame (bounded by [flush_bytes_cap]) into the
   peer's pooled flush buffer. Returns the deadline of the nearest
   not-yet-due frame, if any. Chaos connectivity is re-checked per
   frame so a frame queued just before a crash/partition still
   honours it. *)
let refill t pe now =
  Flush.reset pe.fb;
  pe.fb_pos <- 0;
  pe.inflight <- [];
  let next = ref None in
  let frames = ref 0 in
  Mutex.lock pe.mu;
  let rec take () =
    if Flush.length pe.fb < flush_bytes_cap then
      match Ring.peek pe.ring with
      | Some it when it.i_not_before <= now ->
          let it = Ring.pop pe.ring in
          let reachable =
            match t.fault with
            | None -> true
            | Some f -> Fault.reachable f ~src:t.me ~dst:pe.dst
          in
          if reachable then begin
            Flush.add_frame pe.fb ~src:t.me ~lock:it.i_lock it.i_kind
              it.i_payload;
            incr frames;
            pe.inflight <- (it, Flush.length pe.fb) :: pe.inflight
          end
          else count_dropped t it.i_counted;
          take ()
      | Some it -> next := Some it.i_not_before
      | None -> ()
  in
  take ();
  Mutex.unlock pe.mu;
  pe.inflight <- List.rev pe.inflight;
  if !frames > 0 then begin
    match t.obs with
    | Some h ->
        Dmutex_obs.Registry.Histogram.observe h.o_frames_per_flush
          (float_of_int !frames)
    | None -> ()
  end;
  !next

let ring_has_due pe now =
  Mutex.lock pe.mu;
  let due =
    match Ring.peek pe.ring with
    | Some it -> it.i_not_before <= now
    | None -> false
  in
  Mutex.unlock pe.mu;
  due

(* Push the flush buffer out; top it up and keep writing while the
   socket accepts whole buffers. *)
let rec flush_peer t pe fd now upd =
  if pe.fb_pos >= Flush.length pe.fb then begin
    match refill t pe now with
    | Some d -> upd d
    | None -> ()
  end;
  let remaining = Flush.length pe.fb - pe.fb_pos in
  if remaining = 0 then set_write_interest t pe fd false
  else
    match Flush.write pe.fb fd ~pos:pe.fb_pos with
    | n ->
        pe.fb_pos <- pe.fb_pos + n;
        pe.last_tx <- now;
        bump t (fun t -> t.flushes <- t.flushes + 1);
        obs_incr t (fun h -> h.o_flushes);
        let rec settle () =
          match pe.inflight with
          | (it, e) :: rest when e <= pe.fb_pos ->
              if it.i_counted then begin
                bump t (fun t -> t.sent <- t.sent + 1);
                obs_incr t (fun h -> h.o_sent)
              end;
              pe.inflight <- rest;
              settle ()
          | _ -> ()
        in
        settle ();
        if pe.fb_pos < Flush.length pe.fb then set_write_interest t pe fd true
        else if ring_has_due pe now then flush_peer t pe fd now upd
        else set_write_interest t pe fd false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        set_write_interest t pe fd true
    | exception (Unix.Unix_error _ | Sys_error _) -> conn_broken t pe fd

let on_connected t pe fd now upd =
  pe.conn <- On fd;
  if pe.connected_once then begin
    bump t (fun t -> t.reconnects <- t.reconnects + 1);
    obs_incr t (fun h -> h.o_reconnects)
  end;
  pe.connected_once <- true;
  pe.backoff <- backoff_floor;
  flush_peer t pe fd now upd

let rec start_connect t pe now upd =
  let ep = pe.endpoint in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port))
  with
  | () ->
      Reactor.add (reactor_of t pe) fd ~read:false ~write:false
        (fun ~readable:_ ~writable:_ ->
          conn_event t pe fd);
      on_connected t pe fd now upd
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      let deadline = now +. connect_timeout in
      pe.conn <- Connecting (fd, deadline);
      Reactor.add (reactor_of t pe) fd ~read:false ~write:true
        (fun ~readable:_ ~writable ->
          if writable then conn_event t pe fd);
      upd deadline
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with _ -> ());
      connect_failed t pe now;
      upd pe.next_attempt

(* Writability on an outbound socket: either a pending connect
   resolved, or a partial flush can continue. *)
and conn_event t pe fd =
  if not (closed t) then
    let now = Unix.gettimeofday () in
    match pe.conn with
    | Connecting (cfd, _) when cfd = fd -> (
        match Unix.getsockopt_error fd with
        | None ->
            Reactor.modify (reactor_of t pe) fd ~read:false ~write:false;
            on_connected t pe fd now (fun _ -> ())
        | Some _ ->
            close_conn_fd t pe fd;
            connect_failed t pe now)
    | On cfd when cfd = fd -> flush_peer t pe fd now (fun _ -> ())
    | _ -> ()

(* A peer the view excised: tear the connection down and drain its
   ring — nothing queued for a dead member may linger or requeue. *)
let drain_retired t pe =
  (match pe.conn with
  | On fd | Connecting (fd, _) -> close_conn_fd t pe fd
  | Off -> ());
  Flush.reset pe.fb;
  pe.fb_pos <- 0;
  pe.inflight <- [];
  Mutex.lock pe.mu;
  let gone = Ring.reject pe.ring (fun _ -> false) in
  Mutex.unlock pe.mu;
  List.iter (fun it -> count_dropped t it.i_counted) gone

(* Per-iteration service of one peer: shed/connect/flush as its state
   demands, folding the peer's nearest deadline into [upd]. *)
let service_peer t pe now upd =
  if Atomic.get pe.retired then drain_retired t pe
  else
  match pe.conn with
  | On fd -> if ring_has_due pe now || pe.fb_pos < Flush.length pe.fb then flush_peer t pe fd now upd else begin
      (* Idle connection: still surface the wake-up for delayed frames. *)
      Mutex.lock pe.mu;
      (match Ring.peek pe.ring with
      | Some it -> upd it.i_not_before
      | None -> ());
      Mutex.unlock pe.mu
    end
  | Connecting (fd, deadline) ->
      if now >= deadline then begin
        close_conn_fd t pe fd;
        connect_failed t pe now;
        upd pe.next_attempt
      end
      else upd deadline
  | Off ->
      let pending =
        Mutex.lock pe.mu;
        let n = Ring.length pe.ring in
        Mutex.unlock pe.mu;
        n > 0
      in
      if pending then
        if now >= pe.next_attempt then start_connect t pe now upd
        else upd pe.next_attempt

(* ------------------------------------------------------------------ *)
(* Inbound reactor side: accept, buffered parse, dispatch.             *)

let close_iconn t k ic =
  Reactor.remove t.reactors.(k) ic.ic_fd;
  Hashtbl.remove t.iconns.(k) ic.ic_fd;
  (try Unix.close ic.ic_fd with _ -> ());
  Bufpool.give ic.rbuf;
  ic.rbuf <- Bytes.create 0

exception Bad_stream of string

(* Parse every complete frame sitting in [ic.rbuf]. *)
let parse_frames t ic =
  let continue = ref true in
  while !continue && ic.rlen - ic.rpos >= 4 do
    let len = Int32.to_int (Bytes.get_int32_be ic.rbuf ic.rpos) in
    if len < 0 || len > max_frame_len then
      raise (Bad_stream (Printf.sprintf "bad frame length %d" len));
    if ic.rlen - ic.rpos - 4 < len then begin
      (* Incomplete: make sure the buffer can hold the whole frame,
         compacting parsed bytes away first. *)
      if ic.rpos > 0 then begin
        Bytes.blit ic.rbuf ic.rpos ic.rbuf 0 (ic.rlen - ic.rpos);
        ic.rlen <- ic.rlen - ic.rpos;
        ic.rpos <- 0
      end;
      if 4 + len > Bytes.length ic.rbuf then
        ic.rbuf <- Bufpool.grow ic.rbuf ~len:ic.rlen (4 + len);
      continue := false
    end
    else begin
      let off = ic.rpos + 4 in
      let h = Wire.Frame.decode_header_bytes ic.rbuf ~off ~len in
      let src = h.Wire.Frame.src in
      (* The upper bound is soft: a joiner's frames arrive before the
         local peer table has a slot for it (its JOIN-REQUEST is what
         creates one). Ids that cannot be node ids are still garbage. *)
      if src < 0 || src > 0xFFFF || src = t.me then
        raise (Wire.Malformed (Printf.sprintf "bad sender id %d" src));
      let admit =
        match t.fault with
        | None -> true
        | Some f -> Fault.reachable f ~src ~dst:t.me
      in
      (if admit then
         match h.Wire.Frame.kind with
         | Wire.Frame.Heartbeat -> t.on_heartbeat ~src
         | Wire.Frame.Data ->
             let payload =
               Bytes.sub_string ic.rbuf
                 (off + h.Wire.Frame.payload_start)
                 (len - h.Wire.Frame.payload_start)
             in
             bump t (fun t -> t.delivered <- t.delivered + 1);
             obs_incr t (fun h -> h.o_delivered);
             t.on_frame ~src ~lock:h.Wire.Frame.lock payload
       else count_dropped t (h.Wire.Frame.kind = Wire.Frame.Data));
      ic.rpos <- ic.rpos + 4 + len
    end
  done;
  if ic.rpos = ic.rlen then begin
    ic.rpos <- 0;
    ic.rlen <- 0
  end

let iconn_readable t k ic =
  try
    let progress = ref true in
    let budget = ref 8 in
    while !progress && !budget > 0 do
      decr budget;
      progress := false;
      (* Keep headroom to read into. *)
      if ic.rlen = Bytes.length ic.rbuf then
        if ic.rpos > 0 then begin
          Bytes.blit ic.rbuf ic.rpos ic.rbuf 0 (ic.rlen - ic.rpos);
          ic.rlen <- ic.rlen - ic.rpos;
          ic.rpos <- 0
        end
        else ic.rbuf <- Bufpool.grow ic.rbuf ~len:ic.rlen (2 * ic.rlen);
      match
        Unix.read ic.ic_fd ic.rbuf ic.rlen (Bytes.length ic.rbuf - ic.rlen)
      with
      | 0 -> raise End_of_file
      | n ->
          ic.rlen <- ic.rlen + n;
          parse_frames t ic;
          progress := true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
    done
  with
  | End_of_file | Unix.Unix_error _ -> close_iconn t k ic
  | Bad_stream msg | Failure msg | Wire.Malformed msg ->
      Log.warn (fun m -> m "reader stopped: %s" msg);
      close_iconn t k ic

let register_inbound t fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let k = !(t.accept_rr) mod Array.length t.reactors in
  t.accept_rr := !(t.accept_rr) + 1;
  let ic = { ic_fd = fd; rbuf = Bufpool.take Bufpool.min_size; rlen = 0; rpos = 0 } in
  let install () =
    if closed t then (try Unix.close fd with _ -> ())
    else begin
      Hashtbl.replace t.iconns.(k) fd ic;
      Reactor.add t.reactors.(k) fd ~read:true ~write:false
        (fun ~readable ~writable:_ -> if readable then iconn_readable t k ic)
    end
  in
  if k = 0 then install () else Reactor.post t.reactors.(k) install

let listener_readable t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listener with
    | fd, _ -> register_inbound t fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* The per-reactor tick: heartbeats (reactor 0), then every owned
   peer. Returns the earliest deadline this reactor must wake for. *)

let tick t k now =
  if closed t then None
  else begin
    let next = ref None in
    let upd d =
      match !next with
      | None -> next := Some d
      | Some d' -> if d < d' then next := Some d
    in
    (match t.heartbeat_period with
    | Some p when k = 0 ->
        if now >= !(t.hb_next) then begin
          let ps = t.ps in
          for dst = 0 to Array.length ps - 1 do
            (* Piggybacking: any frame written within the last period
               already proved liveness to [dst]'s monitor — only emit
               a beacon for peers the transport has been silent to. *)
            if
              dst <> t.me
              && (not (Atomic.get ps.(dst).retired))
              && now -. ps.(dst).last_tx >= p
            then
              ignore
                (send_kind t ~dst ~lock:"" ~counted:false Wire.Frame.Heartbeat
                   "")
          done;
          t.hb_next := now +. p
        end;
        upd !(t.hb_next)
    | Some _ | None -> ());
    Array.iter
      (fun pe ->
        if pe.dst <> t.me && pe.reactor = k then service_peer t pe now upd)
      t.ps;
    !next
  end

(* ------------------------------------------------------------------ *)

let make_peer ~n_io ~max_queue ~retired dst endpoint =
  {
    dst;
    reactor = dst mod n_io;
    mu = Mutex.create ();
    ring = Ring.create max_queue;
    retired = Atomic.make retired;
    endpoint;
    conn = Off;
    next_attempt = 0.0;
    backoff = backoff_floor;
    connected_once = false;
    fb = Flush.create ();
    fb_pos = 0;
    inflight = [];
    last_tx = 0.0;
  }

let create ?fault ?heartbeat_period ?(max_queue = 1024) ?(seed = 0x10ad)
    ?(on_heartbeat = fun ~src:_ -> ()) ?obs ?flush_us ?io_domains ~me ~peers
    ~on_frame () =
  (* A write to a peer that closed mid-stream must surface as [EPIPE]
     for the flush path to handle, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let flush_us =
    match flush_us with Some v -> v | None -> env_int "DMUTEX_FLUSH_US" 0
  in
  let n_io =
    max 1 (match io_domains with
          | Some v -> v
          | None -> env_int "DMUTEX_IO_DOMAINS" 1)
  in
  let ep = peers.(me) in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener
    (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port));
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let reactors = Array.init n_io (fun _ -> Reactor.create ()) in
  let ps =
    Array.init (Array.length peers) (fun dst ->
        make_peer ~n_io ~max_queue ~retired:false dst peers.(dst))
  in
  let now = Unix.gettimeofday () in
  let t =
    {
      me;
      peers = Array.copy peers;
      on_frame;
      on_heartbeat;
      fault;
      listener;
      ps;
      peers_mu = Mutex.create ();
      reactors;
      iconns = Array.init n_io (fun _ -> Hashtbl.create 8);
      max_queue;
      heartbeat_period;
      hb_next = ref (now +. Option.value ~default:0.0 heartbeat_period);
      flush_s = float_of_int flush_us /. 1_000_000.0;
      obs =
        Option.map
          (fun reg ->
            let open Dmutex_obs in
            {
              o_sent = Registry.Counter.get reg Names.transport_sent_total;
              o_delivered =
                Registry.Counter.get reg Names.transport_delivered_total;
              o_dropped =
                Registry.Counter.get reg Names.transport_dropped_total;
              o_retries =
                Registry.Counter.get reg Names.transport_retries_total;
              o_reconnects =
                Registry.Counter.get reg Names.transport_reconnects_total;
              o_flushes =
                Registry.Counter.get reg Names.transport_flushes_total;
              o_frames_per_flush =
                Registry.Histogram.get reg Names.transport_frames_per_flush;
              o_queue_depth =
                Registry.Gauge.get reg Names.transport_queue_depth;
            })
          obs;
      stats = Mutex.create ();
      sent = 0;
      delivered = 0;
      dropped = 0;
      retries = 0;
      reconnects = 0;
      flushes = 0;
      closed = Atomic.make false;
      loss = 0.0;
      loss_rng = Random.State.make [| seed; me |];
      backoff_rng = Random.State.make [| seed; me; 0xb0ff |];
      cork_depth = Atomic.make 0;
      pending_wake = Array.init n_io (fun _ -> Atomic.make false);
      accept_rr = ref 0;
    }
  in
  Reactor.add reactors.(0) listener ~read:true ~write:false
    (fun ~readable ~writable:_ -> if readable then listener_readable t);
  Array.iteri (fun k r -> Reactor.set_tick r (fun now -> tick t k now)) reactors;
  Array.iter Reactor.start reactors;
  t

let set_loss t p = bump t (fun t -> t.loss <- p)
let sent t = t.sent

(* ------------------------------------------------------------------ *)
(* Dynamic membership: the peer table follows the committed view.
   Slots are append-only — a removed peer's slot is retired, never
   reused for a different endpoint under the same id, so queued frames
   can never leak to a new incarnation at another address. *)

let add_peer t ~dst ~host ~port =
  if dst < 0 || dst > 0xFFFF then invalid_arg "Transport.add_peer: bad id";
  if dst <> t.me && not (closed t) then begin
    let ep = { host; port } in
    Mutex.lock t.peers_mu;
    let len = Array.length t.ps in
    if dst < len then begin
      (* Revive (or re-point) an existing slot — a rejoining peer may
         come back at a new address. *)
      let pe = t.ps.(dst) in
      pe.endpoint <- ep;
      t.peers.(dst) <- ep;
      Atomic.set pe.retired false
    end
    else begin
      let n_io = Array.length t.reactors in
      (* Gap slots (ids between the old length and [dst]) are born
         retired: they exist only so the array is dense. *)
      let ps' =
        Array.init (dst + 1) (fun i ->
            if i < len then t.ps.(i)
            else if i = dst then
              make_peer ~n_io ~max_queue:t.max_queue ~retired:false i ep
            else
              make_peer ~n_io ~max_queue:t.max_queue ~retired:true i
                { host = "127.0.0.1"; port = 0 })
      in
      let peers' =
        Array.init (dst + 1) (fun i ->
            if i < Array.length t.peers then t.peers.(i)
            else if i = dst then ep
            else { host = "127.0.0.1"; port = 0 })
      in
      t.ps <- ps';
      t.peers <- peers'
    end;
    Mutex.unlock t.peers_mu;
    wake_reactor t t.ps.(dst).reactor
  end

let retire_peer t ~dst =
  if dst >= 0 && dst < Array.length t.ps && dst <> t.me then begin
    let pe = t.ps.(dst) in
    if not (Atomic.exchange pe.retired true) then
      (* The owning reactor tears the connection down and drains the
         ring on its next pass. *)
      wake_reactor t pe.reactor
  end

let peer_retired t ~dst =
  dst >= 0 && dst < Array.length t.ps && Atomic.get t.ps.(dst).retired

let queue_depth t =
  let total = ref 0 in
  Array.iter
    (fun pe ->
      if pe.dst <> t.me then begin
        Mutex.lock pe.mu;
        total := !total + Ring.length pe.ring;
        Mutex.unlock pe.mu;
        total := !total + List.length pe.inflight
      end)
    t.ps;
  !total

let metrics t =
  Mutex.lock t.stats;
  let m =
    {
      sent = t.sent;
      delivered = t.delivered;
      dropped = t.dropped;
      retries = t.retries;
      reconnects = t.reconnects;
      flushes = t.flushes;
      queue_depth = 0;
    }
  in
  Mutex.unlock t.stats;
  let qd = queue_depth t in
  (match t.obs with
  | Some h ->
      (* The queue depth is a level, not a stream of events: sample it
         into the gauge whenever somebody reads the metrics. *)
      Dmutex_obs.Registry.Gauge.set h.o_queue_depth (float_of_int qd)
  | None -> ());
  { m with queue_depth = qd }

(* Must not be called from a transport callback (it joins the I/O
   domains). Safe to call more than once. *)
let close t =
  if not (Atomic.exchange t.closed true) then begin
    Array.iteri
      (fun k r ->
        Reactor.post r (fun () ->
            if k = 0 then (try Unix.close t.listener with _ -> ());
            Hashtbl.iter (fun _ ic -> close_iconn t k ic)
              (Hashtbl.copy t.iconns.(k));
            Array.iter
              (fun pe ->
                if pe.reactor = k && pe.dst <> t.me then begin
                  (match pe.conn with
                  | On fd | Connecting (fd, _) -> close_conn_fd t pe fd
                  | Off -> ());
                  Flush.release pe.fb
                end)
              t.ps))
      t.reactors;
    Array.iter Reactor.stop t.reactors
  end
