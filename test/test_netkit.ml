(* End-to-end over real loopback TCP: the same protocol state machine
   behind sockets, threads and wall-clock timers. *)

module Cluster = Netkit.Cluster.Make (Dmutex.Basic) (Wire.Protocol_codec)
module RCluster = Netkit.Cluster.Make (Dmutex.Resilient) (Wire.Protocol_codec)

let fast_cfg n =
  { (Dmutex.Basic.config ~n ()) with
    Dmutex.Types.Config.t_collect = 0.02;
    t_forward = 0.02 }

let test_mutual_exclusion_counter () =
  let n = 4 and rounds = 15 in
  let cluster = Cluster.launch ~base_port:7911 (fast_cfg n) in
  let counter = ref 0 in
  let failures = ref 0 in
  let worker i () =
    for _ = 1 to rounds do
      match
        Cluster.Node.with_lock ~timeout:30.0 (Cluster.node cluster i)
          (fun () ->
            let v = !counter in
            Thread.delay 0.001;
            counter := v + 1)
      with
      | Some () -> ()
      | None -> incr failures
    done
  in
  let threads = List.init n (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Cluster.shutdown cluster;
  Alcotest.(check int) "no timeouts" 0 !failures;
  Alcotest.(check int) "no lost increments" (n * rounds) !counter

let test_single_node_holding () =
  let cluster = Cluster.launch ~base_port:7931 (fast_cfg 3) in
  let node = Cluster.node cluster 1 in
  Alcotest.(check bool) "not holding initially" false
    (Cluster.Node.holding node);
  let r =
    Cluster.Node.with_lock ~timeout:10.0 node (fun () ->
        Cluster.Node.holding node)
  in
  Alcotest.(check (option bool)) "holding inside" (Some true) r;
  (* Release happened; lock is reacquirable. *)
  let r2 = Cluster.Node.with_lock ~timeout:10.0 node (fun () -> 42) in
  Alcotest.(check (option int)) "reacquire" (Some 42) r2;
  Alcotest.(check bool) "messages flowed" true
    (Cluster.Node.messages_sent node > 0);
  Cluster.shutdown cluster

let test_sequential_handoff () =
  (* The token visits each node in turn. *)
  let n = 3 in
  let cluster = Cluster.launch ~base_port:7951 (fast_cfg n) in
  let visited = ref [] in
  for round = 0 to 2 do
    for i = 0 to n - 1 do
      match
        Cluster.Node.with_lock ~timeout:20.0 (Cluster.node cluster i)
          (fun () -> visited := (round, i) :: !visited)
      with
      | Some () -> ()
      | None -> Alcotest.failf "round %d node %d timed out" round i
    done
  done;
  Cluster.shutdown cluster;
  Alcotest.(check int) "nine grants" 9 (List.length !visited)

let test_transport_unreachable_peer () =
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 7971 };
      { Netkit.Transport.host = "127.0.0.1"; port = 7972 };
    |]
  in
  let tr =
    Netkit.Transport.create ~me:0 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  (* Peer 1 never started: the frame is accepted (the writer thread
     retries and eventually sheds it in the background) instead of
     raising or blocking. *)
  Alcotest.(check bool) "send to dead peer accepted" true
    (Netkit.Transport.send tr ~dst:1 "hello");
  Alcotest.(check bool) "self-send refused" false
    (Netkit.Transport.send tr ~dst:0 "self");
  Netkit.Transport.close tr;
  (* Closing twice is fine, and a closed transport refuses sends. *)
  Netkit.Transport.close tr;
  Alcotest.(check bool) "send after close refused" false
    (Netkit.Transport.send tr ~dst:1 "late")

let test_transport_roundtrip () =
  let received = ref [] in
  let mutex = Mutex.create () in
  let peers =
    [|
      { Netkit.Transport.host = "127.0.0.1"; port = 7981 };
      { Netkit.Transport.host = "127.0.0.1"; port = 7982 };
    |]
  in
  let t0 =
    Netkit.Transport.create ~me:0 ~peers
      ~on_frame:(fun ~src ~lock:_ payload ->
        Mutex.lock mutex;
        received := (src, payload) :: !received;
        Mutex.unlock mutex)
      ()
  in
  let t1 =
    Netkit.Transport.create ~me:1 ~peers ~on_frame:(fun ~src:_ ~lock:_ _ -> ()) ()
  in
  Alcotest.(check bool) "send ok" true (Netkit.Transport.send t1 ~dst:0 "ping");
  Alcotest.(check bool) "empty frame ok" true (Netkit.Transport.send t1 ~dst:0 "");
  let big = String.make 100_000 'x' in
  Alcotest.(check bool) "large frame ok" true (Netkit.Transport.send t1 ~dst:0 big);
  (* Wait for delivery. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    Mutex.lock mutex;
    let n = List.length !received in
    Mutex.unlock mutex;
    if n < 3 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ();
  Netkit.Transport.close t0;
  Netkit.Transport.close t1;
  let got = List.rev !received in
  Alcotest.(check int) "three frames" 3 (List.length got);
  List.iter
    (fun (src, _) -> Alcotest.(check int) "src id" 1 src)
    got;
  Alcotest.(check (list string)) "payloads in order" [ "ping"; ""; big ]
    (List.map snd got)

let test_crash_tolerance_tcp () =
  (* Resilient variant over TCP: kill a node; the others keep making
     progress thanks to Section 6 recovery. *)
  let n = 4 in
  let cfg =
    { (Dmutex.Resilient.config ~token_timeout:0.8 ~enquiry_timeout:0.4
         ~arbiter_timeout:1.2 ~n ()) with
      Dmutex.Types.Config.t_collect = 0.02;
      t_forward = 0.02 }
  in
  let cluster = RCluster.launch ~base_port:8001 cfg in
  (* Warm up: one grant each. *)
  for i = 0 to n - 1 do
    match
      RCluster.Node.with_lock ~timeout:20.0 (RCluster.node cluster i)
        (fun () -> ())
    with
    | Some () -> ()
    | None -> Alcotest.failf "warmup: node %d timed out" i
  done;
  (* Crash node 3 (possibly while idle — its role is unknowable from
     outside, which is the point of the drill). *)
  RCluster.crash cluster 3;
  let ok = ref 0 in
  for round = 1 to 5 do
    for i = 0 to n - 2 do
      match
        RCluster.Node.with_lock ~timeout:30.0 (RCluster.node cluster i)
          (fun () -> incr ok)
      with
      | Some () -> ()
      | None -> Alcotest.failf "round %d node %d timed out after crash" round i
    done
  done;
  RCluster.shutdown cluster;
  Alcotest.(check int) "survivors kept acquiring" 15 !ok

let test_lossy_tcp () =
  (* Resilient variant over TCP with 5% outgoing-frame loss on every
     node: the Section 6 machinery must keep the lock usable. *)
  let n = 3 in
  let cfg =
    { (Dmutex.Resilient.config ~token_timeout:0.5 ~enquiry_timeout:0.3
         ~arbiter_timeout:0.8 ~n ()) with
      Dmutex.Types.Config.t_collect = 0.02;
      t_forward = 0.02;
      retry_timeout = 0.3 }
  in
  let cluster = RCluster.launch ~base_port:8101 cfg in
  for i = 0 to n - 1 do
    RCluster.Node.set_loss (RCluster.node cluster i) 0.05
  done;
  let ok = ref 0 in
  for _round = 1 to 4 do
    for i = 0 to n - 1 do
      match
        RCluster.Node.with_lock ~timeout:30.0 (RCluster.node cluster i)
          (fun () -> incr ok)
      with
      | Some () -> ()
      | None -> () (* a timeout under loss is tolerated; count below *)
    done
  done;
  RCluster.shutdown cluster;
  Alcotest.(check bool)
    (Printf.sprintf "most acquisitions succeed under loss (%d/12)" !ok)
    true (!ok >= 10)

(* ------------------------------------------------------------------ *)
(* Lock namespace validation and multi-lock transactions *)

let test_launch_rejects_bad_lock_lists () =
  (* A duplicate key would silently alias two protocol instances; an
     empty list leaves the node with nothing to serve. Both must be
     rejected before any socket is bound. *)
  (match Cluster.launch ~base_port:7971 ~locks:[ "a"; "b"; "a" ] (fast_cfg 2) with
  | c ->
      Cluster.shutdown c;
      Alcotest.fail "duplicate lock list must be rejected"
  | exception Invalid_argument _ -> ());
  match Cluster.launch ~base_port:7973 ~locks:[] (fast_cfg 2) with
  | c ->
      Cluster.shutdown c;
      Alcotest.fail "empty lock list must be rejected"
  | exception Invalid_argument _ -> ()

let test_acquire_all_validates () =
  let cluster = Cluster.launch ~base_port:7975 ~locks:[ "a"; "b" ] (fast_cfg 2) in
  let node = Cluster.node cluster 0 in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      (match Cluster.Node.acquire_all ~locks:[] node with
      | _ -> Alcotest.fail "empty lock set must be rejected"
      | exception Invalid_argument _ -> ());
      (match
         Cluster.Node.acquire_all
           ~locks:
             [ ("a", Dmutex.Types.Exclusive); ("a", Dmutex.Types.Shared) ]
           node
       with
      | _ -> Alcotest.fail "duplicate key must be rejected"
      | exception Invalid_argument _ -> ());
      (* A valid set works end-to-end and releases cleanly. *)
      match
        Cluster.Node.with_locks ~timeout:20.0
          ~locks:[ ("b", Dmutex.Types.Exclusive); ("a", Dmutex.Types.Exclusive) ]
          node
          (fun () ->
            Cluster.Node.holding ~lock:"a" node
            && Cluster.Node.holding ~lock:"b" node)
      with
      | Some true ->
          Alcotest.(check bool) "released a" false
            (Cluster.Node.holding ~lock:"a" node);
          Alcotest.(check bool) "released b" false
            (Cluster.Node.holding ~lock:"b" node)
      | Some false -> Alcotest.fail "not holding both inside with_locks"
      | None -> Alcotest.fail "with_locks timed out on an idle cluster")

let test_with_locks_transactions () =
  (* Concurrent two-lock transactions from every node, each passing
     the lock set in a different order: canonical acquisition must
     keep them deadlock-free, and atomicity must keep two counters
     (one guarded by each lock, always updated together) in step. *)
  let n = 3 and rounds = 6 in
  let cluster =
    Cluster.launch ~base_port:7977 ~locks:[ "acct-a"; "acct-b" ] (fast_cfg n)
  in
  let ca = ref 0 and cb = ref 0 in
  let drift = ref 0 and timeouts = ref 0 in
  let worker i () =
    for r = 1 to rounds do
      let locks =
        (* Scrambled order per (node, round): with_locks must sort. *)
        if (i + r) mod 2 = 0 then
          [ ("acct-a", Dmutex.Types.Exclusive); ("acct-b", Dmutex.Types.Exclusive) ]
        else
          [ ("acct-b", Dmutex.Types.Exclusive); ("acct-a", Dmutex.Types.Exclusive) ]
      in
      match
        Cluster.with_locks ~timeout:60.0 ~locks cluster i (fun () ->
            let a = !ca and b = !cb in
            if a <> b then incr drift;
            Thread.delay 0.002;
            ca := a + 1;
            cb := b + 1)
      with
      | Some () -> ()
      | None -> incr timeouts
    done
  in
  let threads = List.init n (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Cluster.shutdown cluster;
  Alcotest.(check int) "no transaction timeouts" 0 !timeouts;
  Alcotest.(check int) "counters never observed apart" 0 !drift;
  Alcotest.(check int) "every transaction committed" (n * rounds) !ca;
  Alcotest.(check int) "both counters advanced in step" !ca !cb

module PCluster = Netkit.Cluster.Make (Dmutex.Prioritized) (Wire.Protocol_codec)

let test_prioritized_rw_keyed () =
  (* The read-write policy under the keyed namespace: one Prioritized
     cluster hosting two locks. Per lock, two reader nodes hammer
     shared acquisitions while node 0 interleaves exclusive rounds —
     writer priority must serve every writer round despite the reader
     flood (the starvation pin, live), shared grants on at least one
     lock must actually overlap (batching), and a writer must never
     overlap anyone. *)
  let n = 3 and writer_rounds = 4 and reader_rounds = 10 in
  let cfg =
    {
      (Dmutex.Prioritized.rw_config ~n ()) with
      Dmutex.Types.Config.t_collect = 0.02;
      t_forward = 0.02;
    }
  in
  let locks = [ "ra"; "rb" ] in
  let cluster = PCluster.launch ~base_port:7985 ~locks cfg in
  let state =
    List.map
      (fun l ->
        (l, (Mutex.create (), ref 0 (* readers in *), ref false (* writer in *),
             ref 0 (* max concurrent readers *), ref 0 (* violations *))))
      locks
  in
  let failures = Atomic.make 0 in
  let reader_enter l =
    let mu, readers, writer, maxr, viol = List.assoc l state in
    Mutex.lock mu;
    if !writer then incr viol;
    incr readers;
    if !readers > !maxr then maxr := !readers;
    Mutex.unlock mu
  in
  let reader_leave l =
    let mu, readers, _, _, _ = List.assoc l state in
    Mutex.lock mu;
    decr readers;
    Mutex.unlock mu
  in
  let writer_span l f =
    let mu, readers, writer, _, viol = List.assoc l state in
    Mutex.lock mu;
    if !writer || !readers > 0 then incr viol;
    writer := true;
    Mutex.unlock mu;
    f ();
    Mutex.lock mu;
    writer := false;
    Mutex.unlock mu
  in
  let reader i l () =
    for _ = 1 to reader_rounds do
      match
        PCluster.Node.with_lock ~timeout:60.0 ~lock:l ~mode:Dmutex.Types.Shared
          (PCluster.node cluster i)
          (fun () ->
            reader_enter l;
            Thread.delay 0.004;
            reader_leave l)
      with
      | Some () -> ()
      | None -> Atomic.incr failures
    done
  in
  let writer_done = List.map (fun l -> (l, ref 0)) locks in
  let writer () =
    for _ = 1 to writer_rounds do
      List.iter
        (fun l ->
          match
            PCluster.Node.with_lock ~timeout:60.0 ~lock:l
              (PCluster.node cluster 0)
              (fun () -> writer_span l (fun () -> Thread.delay 0.002))
          with
          | Some () -> incr (List.assoc l writer_done)
          | None -> Atomic.incr failures)
        locks
    done
  in
  let threads =
    Thread.create writer ()
    :: List.concat_map
         (fun l -> [ Thread.create (reader 1 l) (); Thread.create (reader 2 l) () ])
         locks
  in
  List.iter Thread.join threads;
  PCluster.shutdown cluster;
  Alcotest.(check int) "no acquisition timeouts" 0 (Atomic.get failures);
  List.iter
    (fun (l, (_, _, _, _, viol)) ->
      Alcotest.(check int)
        (Printf.sprintf "no rw-exclusion violation on %s" l)
        0 !viol)
    state;
  List.iter
    (fun (l, d) ->
      Alcotest.(check int)
        (Printf.sprintf "writer never starved on %s" l)
        writer_rounds !d)
    writer_done;
  (* Batching is timing-dependent per lock, but across 2 locks x 10
     rounds of paired readers at least one shared overlap must occur. *)
  let batched =
    List.exists (fun (_, (_, _, _, maxr, _)) -> !maxr >= 2) state
  in
  Alcotest.(check bool) "some shared grants overlapped" true batched

let suite =
  ( "netkit",
    [
      Alcotest.test_case "TCP counter mutual exclusion" `Slow
        test_mutual_exclusion_counter;
      Alcotest.test_case "hold and reacquire" `Quick test_single_node_holding;
      Alcotest.test_case "sequential hand-off" `Slow test_sequential_handoff;
      Alcotest.test_case "unreachable peer" `Quick
        test_transport_unreachable_peer;
      Alcotest.test_case "transport roundtrip + framing" `Quick
        test_transport_roundtrip;
      Alcotest.test_case "crash tolerance over TCP" `Slow
        test_crash_tolerance_tcp;
      Alcotest.test_case "5% frame loss over TCP" `Slow test_lossy_tcp;
      Alcotest.test_case "launch rejects duplicate/empty lock lists" `Quick
        test_launch_rejects_bad_lock_lists;
      Alcotest.test_case "acquire_all validates its lock set" `Quick
        test_acquire_all_validates;
      Alcotest.test_case "multi-lock transactions stay atomic" `Slow
        test_with_locks_transactions;
      Alcotest.test_case "rw policy under the keyed namespace" `Slow
        test_prioritized_rw_keyed;
    ] )
