(** Closed-form performance bounds from Section 3 of the paper
    (Equations 1-6), plus the textbook per-CS message counts of the
    comparison algorithms quoted in Sections 2.4 and 3.3. All are exact
    transcriptions; the benches print them next to measured values. *)

val light_load_messages : n:int -> float
(** Eq. 1: average messages per CS invocation at very light load,
    [(N^2 - 1) / N]; tends to [N] (Eq. 2). *)

val heavy_load_messages : n:int -> float
(** Eq. 4: average messages per CS at saturation, [3 - 2/N]; tends to
    [3] (Eq. 5). *)

val light_load_service_time : Types.Config.t -> float
(** Eq. 3: average service time per CS at light load,
    [(1 - 1/N) * 2 * T_msg + T_req + T_exec]. *)

val heavy_load_service_time : Types.Config.t -> float
(** Eq. 6: average service time at heavy load,
    [(1 - 1/N) * T_msg + T_req + (N/2 + 1)(T_msg + T_exec)]. *)

val utilization : Types.Config.t -> rate:float -> float
(** Offered load ρ = N·λ·(T_msg + T_exec): the fraction of time the
    token is busy moving or serving. ρ ≥ 1 means the open-loop system
    is beyond saturation and queues grow without bound. *)

val predicted_delay : Types.Config.t -> rate:float -> float option
(** Heuristic mean delay per CS at per-node Poisson rate λ, bridging
    the paper's two extremes (Eqs. 3 and 6) with an M/D/1-style
    queueing term under the gated-service correction:
    base + ρ·S·(1 + ρ) ∕ (2(1 − ρ)) where S = T_msg + T_exec.
    [None] when ρ ≥ 1 (no steady state). The paper only analyses the
    extremes; simulation validates this interpolation to within ≈ 15%
    for ρ ≤ 0.8 (see the test suite). *)

val no_starvation_bound : Types.Config.t -> float
(** Eq. 7's left-hand side [T_privilege + T_exec + T_req] with
    [T_privilege = T_msg]: the budget that must exceed the forwarding
    path for indefinite forwarding to be impossible under deterministic
    timing (Section 4). *)

(** Reference per-CS message counts for the comparison algorithms, as
    cited by the paper. *)
module Reference : sig
  val ricart_agrawala : n:int -> float
  (** [2 (N - 1)] at every load. *)

  val suzuki_kasami : n:int -> float
  (** [N] when the requester does not hold the token. *)

  val raymond_high_load : float
  (** ≈ 4 messages at high load (cited from Raymond's paper). *)

  val raymond_low_load : n:int -> float
  (** ≈ [4/3 * log2 N + 1]-ish; we expose [2 * log2 N] as the usual
      low-load bound quoted in surveys. *)

  val maekawa : n:int -> float
  (** Between [3 sqrt N] and [5 sqrt N]; we return [3 sqrt N]. *)

  val central_server : float
  (** 3 messages: request, grant, release. *)
end
