(** Discrete-event simulation engine.

    A single-threaded event loop over simulated (real-valued) time.
    Events scheduled for the same instant fire in scheduling order, so a
    run is a deterministic function of the seed and the program. *)

type t
(** A simulation instance. *)

type handle
(** A cancellable reference to a scheduled event. *)

val create : ?capacity:int -> unit -> t
(** A fresh engine with clock at [0.0] and an empty agenda.
    [capacity] pre-sizes the agenda heap (default 256). *)

val reset : t -> unit
(** Return the engine to its just-created state — clock at [0.0],
    agenda empty — while keeping the heap's backing array, so a sweep
    can reuse one engine across replicates without re-growing the
    agenda each time. Outstanding handles become dangling and must not
    be cancelled after a reset. *)

val now : t -> float
(** Current simulated time. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f t] at time [now t +. delay].
    [delay] must be non-negative. *)

val schedule_at : t -> time:float -> (t -> unit) -> handle
(** [schedule_at t ~time f] runs [f t] at absolute time [time], which
    must not be in the simulated past. *)

val cancel : t -> handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

val stop : t -> unit
(** Make the innermost [run] return after the current event handler
    finishes. *)

val step : t -> bool
(** Fire the next event. Returns [false] when the agenda is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events in timestamp order until the agenda empties, the clock
    would pass [until], [max_events] events have fired, or [stop] is
    called. The clock is left at the last fired event's time (or at
    [until] if that bound was hit). *)
