lib/baselines/singhal.ml: Array Config Dmutex Format List
