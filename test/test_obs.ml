(* The observability layer: registry correctness under concurrency,
   trace-ring semantics, the hand-rolled JSON, the bench regression
   gate, and — the acceptance criterion of the layer — per-CS message
   accounting that matches the paper's analysis from both runtimes:
   the simulator and a live 5-node cluster over real sockets. *)

open Dmutex_obs
module RB = Dmutex.Sim_runner.Make (Dmutex.Basic)
module RCluster = Netkit.Cluster.Make (Dmutex.Resilient) (Wire.Protocol_codec)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_counter_basics () =
  let reg = Registry.create () in
  let c = Registry.Counter.get reg "requests_total" in
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "value" 42 (Registry.Counter.value c);
  (* Find-or-create: a second lookup is the same cell. *)
  let c' = Registry.Counter.get reg "requests_total" in
  Registry.Counter.incr c';
  Alcotest.(check int) "same cell" 43 (Registry.Counter.value c);
  (* Different labels are a different series. *)
  let lab =
    Registry.Counter.get reg ~labels:[ ("kind", "REQUEST") ] "requests_total"
  in
  Registry.Counter.incr lab;
  Alcotest.(check int) "labelled series separate" 43
    (Registry.Counter.value c);
  let snap = Registry.snapshot reg in
  Alcotest.(check int) "two series" 2 (List.length snap.Registry.counters)

let test_wrong_type_lookup_raises () =
  let reg = Registry.create () in
  ignore (Registry.Counter.get reg "x");
  Alcotest.check_raises "counter fetched as gauge"
    (Invalid_argument "Registry: x is not a gauge") (fun () ->
      ignore (Registry.Gauge.get reg "x"))

let test_histogram_log2_buckets () =
  let reg = Registry.create () in
  let h = Registry.Histogram.get reg "lat" in
  (* Exact powers of two land in their own bucket (v <= 2^e, smallest
     such e), values just above land in the next. *)
  Registry.Histogram.observe h 1.0;
  Registry.Histogram.observe h 1.5;
  Registry.Histogram.observe h 2.0;
  Registry.Histogram.observe h 0.25;
  Registry.Histogram.observe h 0.0;
  (* Non-positive: lowest bucket. *)
  let snap = Registry.snapshot reg in
  let _, histo = List.hd snap.Registry.histograms in
  Alcotest.(check int) "count" 5 histo.Registry.h_count;
  Alcotest.(check bool) "sum" true (feq histo.Registry.h_sum 4.75);
  Alcotest.(check bool) "min" true (feq histo.Registry.h_min 0.0);
  Alcotest.(check bool) "max" true (feq histo.Registry.h_max 2.0);
  let count_at ub =
    List.assoc_opt ub histo.Registry.h_buckets |> Option.value ~default:0
  in
  Alcotest.(check int) "1.0 -> le 1" 1 (count_at 1.0);
  Alcotest.(check int) "1.5 -> le 2 joins 2.0" 2 (count_at 2.0);
  Alcotest.(check int) "0.25 -> le 0.25" 1 (count_at 0.25);
  Alcotest.(check int) "0.0 -> lowest bucket" 1 (count_at (Float.pow 2. (-30.)))

let test_counter_concurrent () =
  let reg = Registry.create () in
  let c = Registry.Counter.get reg "hits" in
  let workers = 8 and per = 25_000 in
  let ths =
    List.init workers (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per do
              Registry.Counter.incr c
            done)
          ())
  in
  List.iter Thread.join ths;
  Alcotest.(check int) "no lost increments" (workers * per)
    (Registry.Counter.value c)

let test_snapshot_while_writing () =
  let reg = Registry.create () in
  let c = Registry.Counter.get reg "n" in
  let h = Registry.Histogram.get reg "h" in
  let stop = Atomic.make false in
  let writer =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Registry.Counter.incr c;
          Registry.Histogram.observe h 0.5
        done)
      ()
  in
  (* Each snapshot must be internally sane (count = sum of buckets)
     and counters monotone across snapshots. *)
  let last = ref 0 in
  for _ = 1 to 200 do
    let snap = Registry.snapshot reg in
    let v = List.assoc_opt { Registry.name = "n"; labels = [] }
        snap.Registry.counters |> Option.value ~default:0
    in
    Alcotest.(check bool) "monotone" true (v >= !last);
    last := v;
    List.iter
      (fun (_, histo) ->
        let bucket_total =
          List.fold_left (fun a (_, k) -> a + k) 0 histo.Registry.h_buckets
        in
        Alcotest.(check int) "buckets sum to count" histo.Registry.h_count
          bucket_total)
      snap.Registry.histograms
  done;
  Atomic.set stop true;
  Thread.join writer

let test_merge_and_expose () =
  let mk v =
    let reg = Registry.create () in
    Registry.Counter.add (Registry.Counter.get reg "msgs") v;
    Registry.Histogram.observe (Registry.Histogram.get reg "d")
      (float_of_int v);
    Registry.snapshot reg
  in
  let merged = Registry.merge [ mk 1; mk 2; mk 4 ] in
  Alcotest.(check int) "counters sum" 7
    (List.assoc { Registry.name = "msgs"; labels = [] }
       merged.Registry.counters);
  let _, histo = List.hd merged.Registry.histograms in
  Alcotest.(check int) "histogram counts sum" 3 histo.Registry.h_count;
  Alcotest.(check bool) "histogram sums sum" true
    (feq histo.Registry.h_sum 7.0);
  Alcotest.(check bool) "min/max combine" true
    (feq histo.Registry.h_min 1.0 && feq histo.Registry.h_max 4.0);
  let text = Registry.expose merged in
  Alcotest.(check bool) "exposition has TYPE lines" true
    (Str_present.contains_substring text "# TYPE msgs counter"
    && Str_present.contains_substring text "msgs 7");
  Alcotest.(check bool) "histogram is cumulative with +Inf" true
    (Str_present.contains_substring text "d_bucket{le=\"+Inf\"} 3"
    && Str_present.contains_substring text "d_count 3")

let test_label_value_escaping () =
  (* Lock keys are arbitrary strings and flow into label values, so
     the exposition must escape backslash, quote and newline per the
     Prometheus text format — and not corrupt the line structure. *)
  let reg = Registry.create () in
  Registry.Counter.incr
    (Registry.Counter.get reg
       ~labels:[ ("lock", "a\\b\"c\nd") ]
       "evil_total");
  let text = Registry.expose (Registry.snapshot reg) in
  Alcotest.(check bool) "escaped label value rendered" true
    (Str_present.contains_substring text
       {|evil_total{lock="a\\b\"c\nd"} 1|});
  (* The raw newline must never reach the output mid-line. *)
  Alcotest.(check bool) "no raw newline inside the label" false
    (Str_present.contains_substring text "c\nd")

let test_protocol_metrics_lock_labels () =
  (* Two instances sharing one registry but labelled with different
     lock keys must write disjoint series, and Report can split them
     back apart. *)
  let reg = Registry.create () in
  let a = Protocol_metrics.create ~labels:(Names.lock_label "a") reg in
  let b = Protocol_metrics.create ~labels:(Names.lock_label "b") reg in
  Protocol_metrics.sent a ~kind:"REQUEST";
  Protocol_metrics.sent a ~kind:"REQUEST";
  Protocol_metrics.sent b ~kind:"REQUEST";
  Protocol_metrics.cs_entered a ~now:1.0;
  Protocol_metrics.cs_exited a ~now:1.1;
  Protocol_metrics.cs_entered b ~now:2.0;
  Protocol_metrics.cs_exited b ~now:2.1;
  Protocol_metrics.cs_entered b ~now:3.0;
  Protocol_metrics.cs_exited b ~now:3.1;
  let snap = Registry.snapshot reg in
  Alcotest.(check (list string)) "locks discovered" [ "a"; "b" ]
    (Report.locks snap);
  let ra = Report.derive ~lock:"a" snap in
  let rb = Report.derive ~lock:"b" snap in
  let rall = Report.derive snap in
  Alcotest.(check int) "a sends" 2 ra.Report.messages_sent;
  Alcotest.(check int) "b sends" 1 rb.Report.messages_sent;
  Alcotest.(check int) "a entries" 1 ra.Report.cs_entries;
  Alcotest.(check int) "b entries" 2 rb.Report.cs_entries;
  Alcotest.(check int) "unscoped aggregates both" 3 rall.Report.cs_entries;
  let by = Report.by_lock snap in
  Alcotest.(check int) "by_lock covers both" 2 (List.length by);
  Alcotest.(check (option int)) "by_lock b entries" (Some 2)
    (Option.map
       (fun (r : Report.t) -> r.Report.cs_entries)
       (List.assoc_opt "b" by))

(* ------------------------------------------------------------------ *)
(* Trace events *)

let test_trace_ring_wraparound () =
  let sink = Events.create ~capacity:8 () in
  for i = 1 to 20 do
    Events.emit sink ~fields:[ ("i", string_of_int i) ] "tick"
  done;
  Alcotest.(check int) "total counts everything" 20 (Events.total sink);
  let evs = Events.events sink in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length evs);
  let is = List.map (fun e -> List.assoc "i" e.Events.fields) evs in
  Alcotest.(check (list string)) "most recent, oldest first"
    (List.map string_of_int [ 13; 14; 15; 16; 17; 18; 19; 20 ])
    is;
  (* Sequence numbers are strictly increasing. *)
  let seqs = List.map (fun e -> e.Events.seq) evs in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.for_all2 (fun a b -> a < b) seqs (List.tl seqs @ [ max_int ]))

let test_trace_flush_jsonl () =
  let sink = Events.create ~capacity:4 () in
  Events.emit sink ~severity:Events.Warn
    ~fields:[ ("node", "3"); ("peer", "1") ]
    "liveness.suspect";
  let path = Filename.temp_file "dmutex-trace" ".jsonl" in
  Events.flush_file sink path;
  let ic = open_in path in
  let header = input_line ic in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  (* Every line is one parseable JSON object. *)
  (match Json.of_string header with
  | Ok j ->
      Alcotest.(check (option bool)) "header marker" (Some true)
        (Option.bind (Json.member "trace_header" j) (function
          | Json.Bool b -> Some b
          | _ -> None));
      Alcotest.(check (option (float 0.0))) "total" (Some 1.0)
        (Option.bind (Json.member "total" j) Json.num)
  | Error e -> Alcotest.failf "header unparseable: %s" e);
  match Json.of_string line with
  | Ok j ->
      Alcotest.(check (option string)) "name" (Some "liveness.suspect")
        (Option.bind (Json.member "name" j) Json.str);
      Alcotest.(check (option string)) "severity" (Some "warn")
        (Option.bind (Json.member "severity" j) Json.str);
      Alcotest.(check (option string)) "field" (Some "3")
        (Option.bind (Json.path [ "fields"; "node" ] j) Json.str)
  | Error e -> Alcotest.failf "event unparseable: %s" e

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Str "x\"y\n" ]);
        ("c", Json.Num 3.0);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_json_byte_roundtrip () =
  (* Strings are byte sequences (Latin-1 semantics): control bytes and
     non-ASCII bytes are escaped as \u00XX on output and decoded back
     to the same bytes on input — a trace field holding raw bytes
     survives the trip and stays ASCII on the wire. *)
  let raw = "\x01tab\there\xff\x7f \xc3\xa9" in
  let text = Json.to_string (Json.Str raw) in
  String.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "output stays printable ASCII (0x%02x)" (Char.code c))
        true
        (Char.code c >= 0x20 && Char.code c < 0x7f))
    text;
  Alcotest.(check bool) "control byte escaped" true
    (Str_present.contains_substring text {|\u0001|});
  Alcotest.(check bool) "high byte escaped" true
    (Str_present.contains_substring text {|\u00ff|});
  match Json.of_string text with
  | Ok (Json.Str s) -> Alcotest.(check string) "bytes roundtrip" raw s
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_json_errors () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "truncated list" true (bad "[1,");
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "bare word" true (bad "nope");
  Alcotest.(check bool) "valid nested ok" true (not (bad "{\"a\":[{}]}"))

(* ------------------------------------------------------------------ *)
(* Gate *)

(* A minimal schema-3 results file: the classic derived metrics plus a
   two-point scale table for the dmutex row (the gate generates a band
   check per swept N and an exponent check from it). *)
let results ?(scale_mpc1000 = 3.5) ?(exponent = 0.02) ~mpc ~wall () =
  let cell n v =
    Json.Obj [ ("n", Json.Num n); ("messages_per_cs", Json.Num v) ]
  in
  Json.Obj
    [
      ( "derived",
        Json.Obj
          [
            ( "high_load",
              Json.Obj [ ("messages_per_cs", Json.Num mpc) ] );
            ( "light_load",
              Json.Obj [ ("messages_per_cs", Json.Num 9.9) ] );
            ( "scale",
              Json.Obj
                [
                  ( "rows",
                    Json.List
                      [
                        Json.Obj
                          [
                            ("algorithm", Json.Str "this-paper (basic)");
                            ("exponent", Json.Num exponent);
                            ( "cells",
                              Json.List
                                [ cell 10. 3.25; cell 1000. scale_mpc1000 ] );
                          ];
                      ] );
                ] );
          ] );
      ("total_seconds", Json.Num wall);
    ]

let test_gate_pass_and_fail () =
  let baseline = results ~mpc:2.8 ~wall:10.0 () in
  (* Identical run passes. *)
  let ok = Gate.run ~baseline ~current:baseline () in
  Alcotest.(check (list string)) "no failures" [] ok.Gate.failures;
  (* A small improvement passes. *)
  let better = Gate.run ~baseline ~current:(results ~mpc:2.6 ~wall:8.0 ()) () in
  Alcotest.(check int) "improvement ok" 0 (List.length better.Gate.failures);
  (* A >25% messages-per-CS regression fails, even inside the band. *)
  let worse = Gate.run ~baseline ~current:(results ~mpc:3.6 ~wall:10.0 ()) () in
  Alcotest.(check bool) "regression fails" true (worse.Gate.failures <> []);
  (* Out of the absolute band fails even with a complicit baseline. *)
  let drifted =
    Gate.run
      ~baseline:(results ~mpc:4.6 ~wall:10.0 ())
      ~current:(results ~mpc:4.7 ~wall:10.0 ())
      ()
  in
  Alcotest.(check bool) "band fails independently" true
    (List.exists
       (fun l -> Str_present.contains_substring l "band")
       drifted.Gate.failures);
  (* Wall-clock uses its own tolerance. *)
  let slow =
    Gate.run ~wall_tolerance:4.0 ~baseline
      ~current:(results ~mpc:2.8 ~wall:45.0 ())
      ()
  in
  Alcotest.(check (list string)) "loose wall tolerance" [] slow.Gate.failures

let test_gate_missing_metrics () =
  let baseline = results ~mpc:2.8 ~wall:10.0 () in
  (* Missing in current: fail. *)
  let broken =
    Gate.run ~baseline ~current:(Json.Obj [ ("total_seconds", Json.Num 1.0) ]) ()
  in
  Alcotest.(check bool) "missing current fails" true
    (List.length broken.Gate.failures >= 2);
  (* Missing in baseline: skip the relative check, keep the band. *)
  let old_baseline = Json.Obj [ ("total_seconds", Json.Num 10.0) ] in
  let vs_old =
    Gate.run ~baseline:old_baseline ~current:(results ~mpc:2.8 ~wall:10.0 ()) ()
  in
  Alcotest.(check (list string)) "skips pass" [] vs_old.Gate.failures;
  let vs_old_bad =
    Gate.run ~baseline:old_baseline ~current:(results ~mpc:9.0 ~wall:10.0 ()) ()
  in
  Alcotest.(check bool) "band still applies without baseline" true
    (vs_old_bad.Gate.failures <> [])

let test_gate_scale_checks () =
  let baseline = results ~mpc:2.8 ~wall:10.0 () in
  (* The Eq. 4 band applies to every swept N of the dmutex row. *)
  let bad_n =
    Gate.run ~baseline
      ~current:(results ~scale_mpc1000:5.2 ~mpc:2.8 ~wall:10.0 ())
      ()
  in
  Alcotest.(check bool) "band violation at one N fails" true
    (List.exists
       (fun l -> Str_present.contains_substring l "N=1000")
       bad_n.Gate.failures);
  (* Exponent drifts are judged by absolute tolerance vs the baseline. *)
  let drift =
    Gate.run ~baseline
      ~current:(results ~exponent:0.4 ~mpc:2.8 ~wall:10.0 ())
      ()
  in
  Alcotest.(check bool) "exponent drift fails" true
    (List.exists
       (fun l -> Str_present.contains_substring l "exponent")
       drift.Gate.failures);
  let ok = Gate.run ~baseline ~current:baseline () in
  Alcotest.(check (list string)) "identical scale passes" [] ok.Gate.failures;
  (* The summary table has a header plus one row per evaluated metric. *)
  Alcotest.(check bool) "summary present" true
    (List.length ok.Gate.summary > 5)

let test_gate_allow_missing () =
  let baseline = results ~mpc:2.8 ~wall:10.0 () in
  let sectioned = Json.Obj [ ("total_seconds", Json.Num 10.0) ] in
  (* A run without the lab section fails by default — the per-N band
     checks must not vanish silently... *)
  let strict = Gate.run ~baseline ~current:sectioned () in
  Alcotest.(check bool) "missing scale fails" true
    (List.exists
       (fun l -> Str_present.contains_substring l "scale")
       strict.Gate.failures);
  (* ...but a deliberately sectioned bench gates what it has. *)
  let lax = Gate.run ~allow_missing:true ~baseline ~current:sectioned () in
  Alcotest.(check (list string)) "allow_missing skips" [] lax.Gate.failures

(* ------------------------------------------------------------------ *)
(* Wait-for graph *)

let test_wfg_cycles () =
  let g = Wfg.of_scan [ ("a", [ (1, 2) ]); ("b", [ (2, 3); (9, 9) ]) ] in
  Alcotest.(check int) "self-edges dropped" 2 (Wfg.edge_count g);
  Alcotest.(check bool) "chain is acyclic" true (Wfg.cycle_free g);
  let g = Wfg.add_edges g ~lock:"c" [ (3, 1) ] in
  (match Wfg.find_cycle g with
  | None -> Alcotest.fail "closing the chain must produce a cycle"
  | Some cycle ->
      Alcotest.(check int) "cycle covers all three" 3 (List.length cycle);
      (* Every consecutive pair (wrapping) must be a real edge. *)
      let es =
        List.map (fun e -> (e.Wfg.waiter, e.Wfg.holder)) (Wfg.edges g)
      in
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | [ last ] -> [ (last, List.hd cycle) ]
        | [] -> []
      in
      List.iter
        (fun p ->
          Alcotest.(check bool) "cycle follows edges" true (List.mem p es))
        (pairs cycle);
      Alcotest.(check string) "pp renders wait order" "1 -> 2 -> 3"
        (Format.asprintf "%a" Wfg.pp_cycle [ 1; 2; 3 ]));
  Alcotest.(check bool) "not cycle-free anymore" false (Wfg.cycle_free g);
  (* Two disjoint locks without a shared vertex cannot deadlock. *)
  let disjoint = Wfg.of_scan [ ("a", [ (1, 2) ]); ("b", [ (3, 4) ]) ] in
  Alcotest.(check bool) "disjoint locks acyclic" true (Wfg.cycle_free disjoint)

let test_wfg_record_metrics () =
  let reg = Registry.create () in
  let ob = Wfg.obs reg in
  let trace = Events.create () in
  let acyclic = Wfg.of_scan [ ("a", [ (1, 2); (3, 2) ]) ] in
  (match Wfg.record ~trace ob acyclic with
  | None -> ()
  | Some _ -> Alcotest.fail "acyclic scan must not report a cycle");
  Alcotest.(check bool) "edge gauge set" true
    (feq (Registry.Gauge.value (Registry.Gauge.get reg Names.wfg_edges)) 2.0);
  Alcotest.(check int) "no cycle counted" 0
    (Registry.Counter.value (Registry.Counter.get reg Names.wfg_cycles_total));
  let deadlocked = Wfg.of_scan [ ("a", [ (1, 2) ]); ("b", [ (2, 1) ]) ] in
  (match Wfg.record ~trace ob deadlocked with
  | Some _ -> ()
  | None -> Alcotest.fail "deadlock scan must report its cycle");
  Alcotest.(check int) "cycle counted" 1
    (Registry.Counter.value (Registry.Counter.get reg Names.wfg_cycles_total));
  Alcotest.(check bool) "wfg.cycle trace event emitted" true
    (List.exists
       (fun e -> e.Events.name = "wfg.cycle")
       (Events.events trace))

(* ------------------------------------------------------------------ *)
(* Per-CS accounting: simulator vs the paper's analysis *)

let test_sim_high_load_messages_per_cs () =
  let n = 10 in
  let reg = Registry.create () in
  let outcome =
    RB.run_saturated ~seed:3 ~requests:2_000 ~obs:reg
      (Dmutex.Basic.config ~n ())
  in
  let report = Report.derive (Registry.snapshot reg) in
  (* The registry-derived value must agree with the simulator's own
     accounting... *)
  Alcotest.(check bool) "registry agrees with sim counters" true
    (feq ~eps:1e-6 report.Report.messages_per_cs
       outcome.Dmutex.Sim_runner.messages_per_cs);
  Alcotest.(check int) "every CS counted" 2_000 report.Report.cs_entries;
  (* ...and with Eq. 4: M = 3 - 2/N at saturation (within 5%). *)
  let predicted = 3.0 -. (2.0 /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "high load %.3f within 5%% of %.3f"
       report.Report.messages_per_cs predicted)
    true
    (Float.abs (report.Report.messages_per_cs -. predicted) /. predicted
    < 0.05);
  (* At saturation the queue holds everyone: mean sampled Q length is
     close to N. *)
  Alcotest.(check bool) "queue near N" true
    (report.Report.queue_length_mean > float_of_int n *. 0.8)

let test_sim_light_load_messages_per_cs () =
  let n = 10 in
  let reg = Registry.create () in
  ignore
    (RB.run_poisson ~seed:3 ~rate:0.01 ~requests:1_000 ~obs:reg
       (Dmutex.Basic.config ~n ()));
  let report = Report.derive (Registry.snapshot reg) in
  (* Eq. 1: M = (N^2 - 1)/N ~= N at light load (within 10%). *)
  let predicted = float_of_int ((n * n) - 1) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "light load %.3f within 10%% of %.3f"
       report.Report.messages_per_cs predicted)
    true
    (Float.abs (report.Report.messages_per_cs -. predicted) /. predicted
    < 0.10)

(* ------------------------------------------------------------------ *)
(* Live cluster: the acceptance criterion. A chaos-free 5-node run at
   high load must report messages-per-CS inside [2.5, 4.5] through
   Cluster.obs_report — the same derivation the bench embeds and the
   CI gate enforces. *)

let test_live_high_load_band () =
  let n = 5 and rounds = 30 in
  let cfg =
    { (Dmutex.Resilient.config ~n ()) with
      Dmutex.Types.Config.t_collect = 0.02;
      t_forward = 0.02 }
  in
  let trace = Events.create () in
  let cluster = RCluster.launch ~base_port:8701 ~trace cfg in
  let timeouts = ref 0 in
  (* Closed loop: every node re-requests as soon as it leaves the CS,
     which is the regime of Eq. 4. *)
  let worker i () =
    for _ = 1 to rounds do
      match
        RCluster.Node.with_lock ~timeout:30.0 (RCluster.node cluster i)
          (fun () -> ())
      with
      | Some () -> ()
      | None -> incr timeouts
    done
  in
  let threads = List.init n (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  let report = RCluster.obs_report cluster in
  let snap = RCluster.obs_snapshot cluster in
  RCluster.shutdown cluster;
  Alcotest.(check int) "no lock timeouts" 0 !timeouts;
  Alcotest.(check int) "every CS entry counted" (n * rounds)
    report.Report.cs_entries;
  Alcotest.(check bool)
    (Printf.sprintf "live messages/CS %.3f in [2.5, 4.5]"
       report.Report.messages_per_cs)
    true
    (report.Report.messages_per_cs >= 2.5
    && report.Report.messages_per_cs <= 4.5);
  Alcotest.(check bool) "sync delay observed" true
    (report.Report.sync_delay_mean > 0.0);
  (* The merged snapshot carries the transport series too, and they
     roughly corroborate the protocol counters (transport counts
     frames including heartbeats/duplicates, so >=). *)
  let transport_sent =
    List.fold_left
      (fun acc (s, v) ->
        if s.Registry.name = Names.transport_sent_total then acc + v else acc)
      0 snap.Registry.counters
  in
  Alcotest.(check bool) "transport sent >= protocol sent" true
    (transport_sent >= report.Report.messages_sent);
  (* The shared trace sink saw every node's CS activity. *)
  let enters =
    List.filter (fun e -> e.Events.name = "cs.enter") (Events.events trace)
  in
  Alcotest.(check bool) "trace records CS entries" true
    (List.length enters > 0 || Events.total trace > Events.capacity trace)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics and labels" `Quick
        test_counter_basics;
      Alcotest.test_case "wrong-type lookup raises" `Quick
        test_wrong_type_lookup_raises;
      Alcotest.test_case "log2 histogram bucket edges" `Quick
        test_histogram_log2_buckets;
      Alcotest.test_case "concurrent counter increments" `Quick
        test_counter_concurrent;
      Alcotest.test_case "snapshot while writing" `Quick
        test_snapshot_while_writing;
      Alcotest.test_case "merge and Prometheus exposition" `Quick
        test_merge_and_expose;
      Alcotest.test_case "label value escaping" `Quick
        test_label_value_escaping;
      Alcotest.test_case "per-lock series split and report" `Quick
        test_protocol_metrics_lock_labels;
      Alcotest.test_case "trace ring wraparound" `Quick
        test_trace_ring_wraparound;
      Alcotest.test_case "trace flush is parseable JSONL" `Quick
        test_trace_flush_jsonl;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json byte escaping roundtrip" `Quick
        test_json_byte_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_errors;
      Alcotest.test_case "wfg cycle detection" `Quick test_wfg_cycles;
      Alcotest.test_case "wfg metric recording" `Quick
        test_wfg_record_metrics;
      Alcotest.test_case "gate pass/regression/band" `Quick
        test_gate_pass_and_fail;
      Alcotest.test_case "gate missing metrics" `Quick
        test_gate_missing_metrics;
      Alcotest.test_case "gate per-N scale band and exponent" `Quick
        test_gate_scale_checks;
      Alcotest.test_case "gate allow-missing for sectioned runs" `Quick
        test_gate_allow_missing;
      Alcotest.test_case "sim high load matches Eq. 4" `Quick
        test_sim_high_load_messages_per_cs;
      Alcotest.test_case "sim light load matches Eq. 1" `Quick
        test_sim_light_load_messages_per_cs;
      Alcotest.test_case "live 5-node high load in band (acceptance)" `Slow
        test_live_high_load_band;
    ] )
