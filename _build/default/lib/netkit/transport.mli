(** Length-prefixed framed messaging over TCP.

    Each frame is a 4-byte big-endian length followed by the payload.
    A {!t} owns one listening socket plus one outbound connection per
    peer, established lazily and re-established on failure. Incoming
    frames from any peer are handed to the receive callback on a
    dedicated reader thread per connection. *)

type endpoint = { host : string; port : int }

val pp_endpoint : Format.formatter -> endpoint -> unit

type t

val create :
  me:int ->
  peers:endpoint array ->
  on_frame:(src:int -> string -> unit) ->
  unit ->
  t
(** [create ~me ~peers ~on_frame ()] binds and listens on
    [peers.(me)].port and starts the accept loop. [on_frame] runs on
    reader threads; it must be thread-safe. Outbound connections to
    other peers are opened on first {!send}. Each frame is prefixed
    with the sender's id, so [src] is trustworthy only on a trusted
    network — this is a research runtime, not an authenticated one. *)

val send : t -> dst:int -> string -> bool
(** Frame and send a payload. Returns [false] (and drops the frame) if
    the peer is unreachable — distributed mutual exclusion must
    tolerate message loss anyway, and the paper's Section 6 machinery
    is exercised by exactly this. *)

val broadcast : t -> string -> int
(** Send to every other peer; returns how many sends succeeded. *)

val set_loss : t -> float -> unit
(** Drop each outgoing frame with this probability {e before} it
    reaches the socket — chaos testing for the Section 6 machinery on
    a real network (TCP itself never loses accepted data). Drops still
    count as successful sends from the caller's perspective. *)

val sent : t -> int
(** Frames successfully handed to the kernel so far. *)

val close : t -> unit
(** Stop the accept loop and close every socket. Idempotent. *)
