lib/simkit/rng.ml: Array Float Int64
