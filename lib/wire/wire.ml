exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Bumped whenever the frame or store-record layout changes
   incompatibly. Every transport frame and every persistent store
   record leads with this byte, so a mixed-version cluster (or a state
   directory written by an older binary) fails loudly at decode time
   instead of misparsing. v3: dynamic membership — tokens carry a view
   epoch, NEW-ARBITER carries the membership view, and the
   JOIN-REQUEST / LEAVE-REQUEST / VIEW-CHANGE / VIEW-ACK messages and
   the store's membership-view record exist. v4: read-write modes —
   Q-list entries carry a mode byte (so REQUEST and PRIVILEGE frames
   carry it), the READ-GRANT / READ-DONE shared-batch messages exist,
   and the store's custody record carries a shared-batch flag. *)
let format_version = 4

module Enc = struct
  type t = Buffer.t

  let create ?(size = 128) () = Buffer.create size
  let contents = Buffer.contents
  let u8 e v =
    if v < 0 || v > 0xFF then invalid_arg "Enc.u8: out of range";
    Buffer.add_uint8 e v

  let u16 e v =
    if v < 0 || v > 0xFFFF then invalid_arg "Enc.u16: out of range";
    Buffer.add_uint16_be e v

  let i32 e v =
    if v < Int32.(to_int min_int) || v > Int32.(to_int max_int) then
      invalid_arg "Enc.i32: out of range";
    Buffer.add_int32_be e (Int32.of_int v)

  let i64 e v = Buffer.add_int64_be e v
  let int_ e v = i64 e (Int64.of_int v)
  let bool e b = u8 e (if b then 1 else 0)
  let float e f = i64 e (Int64.bits_of_float f)

  let string e s =
    i32 e (String.length s);
    Buffer.add_string e s

  let option e enc = function
    | None -> u8 e 0
    | Some v ->
        u8 e 1;
        enc e v

  let list e enc l =
    i32 e (List.length l);
    List.iter (enc e) l

  let array e enc a =
    i32 e (Array.length a);
    Array.iter (enc e) a

  let pair e enc_a enc_b (a, b) =
    enc_a e a;
    enc_b e b
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let remaining d = String.length d.data - d.pos
  let eof d = remaining d = 0

  let check_eof d =
    if not (eof d) then fail "trailing garbage: %d bytes" (remaining d)

  let need d n =
    if remaining d < n then
      fail "truncated input: need %d bytes, have %d" n (remaining d)

  let u8 d =
    need d 1;
    let v = Char.code d.data.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u16 d =
    need d 2;
    let v = String.get_uint16_be d.data d.pos in
    d.pos <- d.pos + 2;
    v

  let i32 d =
    need d 4;
    let v = String.get_int32_be d.data d.pos in
    d.pos <- d.pos + 4;
    Int32.to_int v

  let i64 d =
    need d 8;
    let v = String.get_int64_be d.data d.pos in
    d.pos <- d.pos + 8;
    v

  let int_ d =
    let v = i64 d in
    let r = Int64.to_int v in
    if Int64.of_int r <> v then fail "integer overflow on this platform";
    r

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | v -> fail "invalid boolean byte %d" v

  let float d = Int64.float_of_bits (i64 d)

  let string d =
    let n = i32 d in
    if n < 0 then fail "negative string length %d" n;
    need d n;
    let s = String.sub d.data d.pos n in
    d.pos <- d.pos + n;
    s

  let option d dec = match u8 d with
    | 0 -> None
    | 1 -> Some (dec d)
    | v -> fail "invalid option tag %d" v

  let list d dec =
    let n = i32 d in
    if n < 0 then fail "negative list length %d" n;
    List.init n (fun _ -> dec d)

  let array d dec =
    let n = i32 d in
    if n < 0 then fail "negative array length %d" n;
    Array.init n (fun _ -> dec d)

  let pair d dec_a dec_b =
    let a = dec_a d in
    let b = dec_b d in
    (a, b)
end

module Frame = struct
  type kind = Data | Heartbeat
  type header = { src : int; kind : kind; lock : string; payload_start : int }

  let fixed_len = 8
  let max_lock_len = 0xFFFF

  let header_len ~lock =
    let ll = String.length lock in
    if ll > max_lock_len then
      invalid_arg "Frame.header_len: lock key longer than 65535 bytes";
    fixed_len + ll

  (* Write the header into [b] at [pos] without allocating; returns
     the offset just past the header. The transport serializes whole
     coalesced flushes through this into one pooled buffer. *)
  let blit_header b ~pos ~src ~lock kind =
    let ll = String.length lock in
    if ll > max_lock_len then
      invalid_arg "Frame.blit_header: lock key longer than 65535 bytes";
    Bytes.set_uint8 b pos format_version;
    Bytes.set_int32_be b (pos + 1) (Int32.of_int src);
    Bytes.set_uint8 b (pos + 5) (match kind with Data -> 0 | Heartbeat -> 1);
    Bytes.set_uint16_be b (pos + 6) ll;
    Bytes.blit_string lock 0 b (pos + fixed_len) ll;
    pos + fixed_len + ll

  let encode_header ~src ~lock kind =
    let b = Bytes.create (header_len ~lock) in
    ignore (blit_header b ~pos:0 ~src ~lock kind);
    Bytes.unsafe_to_string b

  (* Decode a frame header in place from [len] bytes of [b] starting
     at [off] — the pooled-read-buffer twin of {!decode_header}.
     [payload_start] is relative to [off]. Only the lock key is
     materialized (the receiver needs it as a lookup key anyway). *)
  let decode_header_bytes b ~off ~len =
    if len < fixed_len then
      fail "frame shorter than its %d-byte header (%d bytes)" fixed_len len;
    let v = Bytes.get_uint8 b off in
    if v <> format_version then
      fail "frame format version mismatch: peer speaks v%d, this node v%d" v
        format_version;
    let src = Int32.to_int (Bytes.get_int32_be b (off + 1)) in
    let kind =
      match Bytes.get_uint8 b (off + 5) with
      | 0 -> Data
      | 1 -> Heartbeat
      | k -> fail "unknown frame kind %d" k
    in
    let ll = Bytes.get_uint16_be b (off + 6) in
    if len < fixed_len + ll then
      fail "frame truncated inside its %d-byte lock key (%d bytes total)" ll
        len;
    let lock = Bytes.sub_string b (off + fixed_len) ll in
    { src; kind; lock; payload_start = fixed_len + ll }

  let decode_header s =
    decode_header_bytes
      (Bytes.unsafe_of_string s)
      ~off:0 ~len:(String.length s)
end

module type CODEC = sig
  type message

  val encode : message -> string
  val decode : string -> message
end

module Client = struct
  (* The thin-client frame family is versioned independently of the
     node-to-node {!format_version}: clients are deployed separately
     from the cluster, so their protocol can evolve without
     invalidating state directories or the inter-node frame layout.
     Every request and response leads with this byte. v2: [Acquire]
     carries a [shared] mode flag. *)
  let version = 2

  type reject_reason =
    | Lock_timeout  (** The acquire deadline passed while queued. *)
    | Queue_full  (** Per-lock wait queue or per-session cap hit. *)
    | Session_limit  (** Admission control: node is at max sessions. *)
    | Already_held  (** The session already holds this lock. *)
    | Not_held  (** Release/renew of something the session lacks. *)
    | Unknown_lock  (** The node does not host this lock instance. *)
    | Bad_request  (** Protocol misuse (e.g. acquire before open). *)

  type req =
    | Hello of { rid : int }
    | Open_session of { rid : int; lease_ms : int; resume : string option }
    | Acquire of {
        rid : int;
        lock : string;
        timeout_ms : int;
        try_only : bool;
        shared : bool;
      }
    | Release of { rid : int; lock : string }
    | Renew of { rid : int }
    | Close of { rid : int }

  type resp =
    | Hello_ok of { rid : int; node : int; proto : int }
    | Session_opened of {
        rid : int;
        sid : string;
        lease_ms : int;
        grace_ms : int;
        resumed : bool;
        held : (string * int) list;
      }
    | Granted of { rid : int; lock : string; fencing : int }
    | Rejected of { rid : int; reason : reject_reason; retry_after_ms : int }
    | Released of { rid : int; lock : string }
    | Renewed of { rid : int; lease_ms : int }
    | Closed of { rid : int }
    | Session_lost of { rid : int; reason : string }

  let string_of_reason = function
    | Lock_timeout -> "timeout"
    | Queue_full -> "queue-full"
    | Session_limit -> "session-limit"
    | Already_held -> "already-held"
    | Not_held -> "not-held"
    | Unknown_lock -> "unknown-lock"
    | Bad_request -> "bad-request"

  let enc_reason e = function
    | Lock_timeout -> Enc.u8 e 0
    | Queue_full -> Enc.u8 e 1
    | Session_limit -> Enc.u8 e 2
    | Already_held -> Enc.u8 e 3
    | Not_held -> Enc.u8 e 4
    | Unknown_lock -> Enc.u8 e 5
    | Bad_request -> Enc.u8 e 6

  let dec_reason d =
    match Dec.u8 d with
    | 0 -> Lock_timeout
    | 1 -> Queue_full
    | 2 -> Session_limit
    | 3 -> Already_held
    | 4 -> Not_held
    | 5 -> Unknown_lock
    | 6 -> Bad_request
    | v -> fail "invalid reject reason %d" v

  let check_version d =
    let v = Dec.u8 d in
    if v <> version then
      fail "client frame version mismatch: peer speaks v%d, this end v%d" v
        version

  let encode_request (r : req) =
    let e = Enc.create ~size:64 () in
    Enc.u8 e version;
    (match r with
    | Hello { rid } ->
        Enc.u8 e 0;
        Enc.int_ e rid
    | Open_session { rid; lease_ms; resume } ->
        Enc.u8 e 1;
        Enc.int_ e rid;
        Enc.int_ e lease_ms;
        Enc.option e Enc.string resume
    | Acquire { rid; lock; timeout_ms; try_only; shared } ->
        Enc.u8 e 2;
        Enc.int_ e rid;
        Enc.string e lock;
        Enc.int_ e timeout_ms;
        Enc.bool e try_only;
        Enc.bool e shared
    | Release { rid; lock } ->
        Enc.u8 e 3;
        Enc.int_ e rid;
        Enc.string e lock
    | Renew { rid } ->
        Enc.u8 e 4;
        Enc.int_ e rid
    | Close { rid } ->
        Enc.u8 e 5;
        Enc.int_ e rid);
    Enc.contents e

  let decode_request s =
    let d = Dec.of_string s in
    check_version d;
    let r =
      match Dec.u8 d with
      | 0 -> Hello { rid = Dec.int_ d }
      | 1 ->
          let rid = Dec.int_ d in
          let lease_ms = Dec.int_ d in
          let resume = Dec.option d Dec.string in
          Open_session { rid; lease_ms; resume }
      | 2 ->
          let rid = Dec.int_ d in
          let lock = Dec.string d in
          let timeout_ms = Dec.int_ d in
          let try_only = Dec.bool d in
          let shared = Dec.bool d in
          Acquire { rid; lock; timeout_ms; try_only; shared }
      | 3 ->
          let rid = Dec.int_ d in
          let lock = Dec.string d in
          Release { rid; lock }
      | 4 -> Renew { rid = Dec.int_ d }
      | 5 -> Close { rid = Dec.int_ d }
      | t -> fail "unknown client request tag %d" t
    in
    Dec.check_eof d;
    r

  let encode_response (r : resp) =
    let e = Enc.create ~size:64 () in
    Enc.u8 e version;
    (match r with
    | Hello_ok { rid; node; proto } ->
        Enc.u8 e 0;
        Enc.int_ e rid;
        Enc.int_ e node;
        Enc.int_ e proto
    | Session_opened { rid; sid; lease_ms; grace_ms; resumed; held } ->
        Enc.u8 e 1;
        Enc.int_ e rid;
        Enc.string e sid;
        Enc.int_ e lease_ms;
        Enc.int_ e grace_ms;
        Enc.bool e resumed;
        Enc.list e (fun e kv -> Enc.pair e Enc.string Enc.int_ kv) held
    | Granted { rid; lock; fencing } ->
        Enc.u8 e 2;
        Enc.int_ e rid;
        Enc.string e lock;
        Enc.int_ e fencing
    | Rejected { rid; reason; retry_after_ms } ->
        Enc.u8 e 3;
        Enc.int_ e rid;
        enc_reason e reason;
        Enc.int_ e retry_after_ms
    | Released { rid; lock } ->
        Enc.u8 e 4;
        Enc.int_ e rid;
        Enc.string e lock
    | Renewed { rid; lease_ms } ->
        Enc.u8 e 5;
        Enc.int_ e rid;
        Enc.int_ e lease_ms
    | Closed { rid } ->
        Enc.u8 e 6;
        Enc.int_ e rid
    | Session_lost { rid; reason } ->
        Enc.u8 e 7;
        Enc.int_ e rid;
        Enc.string e reason);
    Enc.contents e

  let decode_response s =
    let d = Dec.of_string s in
    check_version d;
    let r =
      match Dec.u8 d with
      | 0 ->
          let rid = Dec.int_ d in
          let node = Dec.int_ d in
          let proto = Dec.int_ d in
          Hello_ok { rid; node; proto }
      | 1 ->
          let rid = Dec.int_ d in
          let sid = Dec.string d in
          let lease_ms = Dec.int_ d in
          let grace_ms = Dec.int_ d in
          let resumed = Dec.bool d in
          let held = Dec.list d (fun d -> Dec.pair d Dec.string Dec.int_) in
          Session_opened { rid; sid; lease_ms; grace_ms; resumed; held }
      | 2 ->
          let rid = Dec.int_ d in
          let lock = Dec.string d in
          let fencing = Dec.int_ d in
          Granted { rid; lock; fencing }
      | 3 ->
          let rid = Dec.int_ d in
          let reason = dec_reason d in
          let retry_after_ms = Dec.int_ d in
          Rejected { rid; reason; retry_after_ms }
      | 4 ->
          let rid = Dec.int_ d in
          let lock = Dec.string d in
          Released { rid; lock }
      | 5 ->
          let rid = Dec.int_ d in
          let lease_ms = Dec.int_ d in
          Renewed { rid; lease_ms }
      | 6 -> Closed { rid = Dec.int_ d }
      | 7 ->
          let rid = Dec.int_ d in
          let reason = Dec.string d in
          Session_lost { rid; reason }
      | t -> fail "unknown client response tag %d" t
    in
    Dec.check_eof d;
    r
end

module Protocol_codec = struct
  open Dmutex

  type message = Protocol.message

  let enc_mode e = function
    | Types.Exclusive -> Enc.u8 e 0
    | Types.Shared -> Enc.u8 e 1

  let dec_mode d =
    match Dec.u8 d with
    | 0 -> Types.Exclusive
    | 1 -> Types.Shared
    | v -> fail "invalid mode byte %d" v

  let enc_entry e (x : Qlist.entry) =
    Enc.int_ e x.Qlist.node;
    Enc.int_ e x.Qlist.seq;
    Enc.int_ e x.Qlist.hops;
    enc_mode e x.Qlist.mode

  let dec_entry d =
    let node = Dec.int_ d in
    let seq = Dec.int_ d in
    let hops = Dec.int_ d in
    let mode = dec_mode d in
    { Qlist.node; seq; hops; mode }

  let enc_token e (t : Protocol.token) =
    Enc.list e enc_entry t.Protocol.tq;
    Enc.array e Enc.int_ t.Protocol.granted;
    Enc.int_ e t.Protocol.epoch;
    Enc.int_ e t.Protocol.election;
    Enc.int_ e t.Protocol.vepoch

  let dec_token d =
    let tq = Dec.list d dec_entry in
    let granted = Dec.array d Dec.int_ in
    let epoch = Dec.int_ d in
    let election = Dec.int_ d in
    let vepoch = Dec.int_ d in
    { Protocol.tq; granted; epoch; election; vepoch }

  let enc_member e (m : Protocol.member) =
    Enc.int_ e m.Protocol.mid;
    Enc.string e m.Protocol.maddr

  let dec_member d =
    let mid = Dec.int_ d in
    let maddr = Dec.string d in
    { Protocol.mid; maddr }

  let enc_view e (v : Protocol.view) =
    Enc.int_ e v.Protocol.vnum;
    Enc.list e enc_member v.Protocol.vmembers

  let dec_view d =
    let vnum = Dec.int_ d in
    let vmembers = Dec.list d dec_member in
    { Protocol.vnum; vmembers }

  let enc_status e = function
    | Protocol.Have_token -> Enc.u8 e 0
    | Protocol.Executed -> Enc.u8 e 1
    | Protocol.Waiting_token -> Enc.u8 e 2

  let dec_status d =
    match Dec.u8 d with
    | 0 -> Protocol.Have_token
    | 1 -> Protocol.Executed
    | 2 -> Protocol.Waiting_token
    | v -> fail "invalid enquiry status %d" v

  let encode (m : message) =
    let e = Enc.create () in
    (match m with
    | Protocol.Request x ->
        Enc.u8 e 0;
        enc_entry e x
    | Protocol.Monitor_request x ->
        Enc.u8 e 1;
        enc_entry e x
    | Protocol.Privilege t ->
        Enc.u8 e 2;
        enc_token e t
    | Protocol.Monitor_privilege t ->
        Enc.u8 e 3;
        enc_token e t
    | Protocol.New_arbiter na ->
        Enc.u8 e 4;
        Enc.int_ e na.Protocol.na_arbiter;
        Enc.list e enc_entry na.Protocol.na_q;
        Enc.array e Enc.int_ na.Protocol.na_granted;
        Enc.int_ e na.Protocol.na_counter;
        Enc.int_ e na.Protocol.na_monitor;
        Enc.int_ e na.Protocol.na_epoch;
        Enc.int_ e na.Protocol.na_election;
        enc_view e na.Protocol.na_view
    | Protocol.Warning -> Enc.u8 e 5
    | Protocol.Enquiry { round } ->
        Enc.u8 e 6;
        Enc.int_ e round
    | Protocol.Enquiry_reply { round; status } ->
        Enc.u8 e 7;
        Enc.int_ e round;
        enc_status e status
    | Protocol.Resume { round } ->
        Enc.u8 e 8;
        Enc.int_ e round
    | Protocol.Invalidate { round } ->
        Enc.u8 e 9;
        Enc.int_ e round
    | Protocol.Probe -> Enc.u8 e 10
    | Protocol.Probe_ack -> Enc.u8 e 11
    | Protocol.Join_request m ->
        Enc.u8 e 12;
        enc_member e m
    | Protocol.Leave_request lid ->
        Enc.u8 e 13;
        Enc.int_ e lid
    | Protocol.View_change vc ->
        Enc.u8 e 14;
        enc_view e vc.Protocol.vc_view;
        Enc.bool e vc.Protocol.vc_commit;
        Enc.array e Enc.int_ vc.Protocol.vc_granted;
        Enc.int_ e vc.Protocol.vc_epoch;
        Enc.int_ e vc.Protocol.vc_election;
        Enc.int_ e vc.Protocol.vc_arbiter
    | Protocol.View_ack { va_vnum } ->
        Enc.u8 e 15;
        Enc.int_ e va_vnum
    | Protocol.Read_grant { rg_epoch; rg_minor; rg_entry } ->
        Enc.u8 e 16;
        Enc.int_ e rg_epoch;
        Enc.int_ e rg_minor;
        enc_entry e rg_entry
    | Protocol.Read_done { rd_seq } ->
        Enc.u8 e 17;
        Enc.int_ e rd_seq);
    Enc.contents e

  let decode s =
    let d = Dec.of_string s in
    let m =
      match Dec.u8 d with
      | 0 -> Protocol.Request (dec_entry d)
      | 1 -> Protocol.Monitor_request (dec_entry d)
      | 2 -> Protocol.Privilege (dec_token d)
      | 3 -> Protocol.Monitor_privilege (dec_token d)
      | 4 ->
          let na_arbiter = Dec.int_ d in
          let na_q = Dec.list d dec_entry in
          let na_granted = Dec.array d Dec.int_ in
          let na_counter = Dec.int_ d in
          let na_monitor = Dec.int_ d in
          let na_epoch = Dec.int_ d in
          let na_election = Dec.int_ d in
          let na_view = dec_view d in
          Protocol.New_arbiter
            { na_arbiter; na_q; na_granted; na_counter; na_monitor; na_epoch;
              na_election; na_view }
      | 5 -> Protocol.Warning
      | 6 -> Protocol.Enquiry { round = Dec.int_ d }
      | 7 ->
          let round = Dec.int_ d in
          let status = dec_status d in
          Protocol.Enquiry_reply { round; status }
      | 8 -> Protocol.Resume { round = Dec.int_ d }
      | 9 -> Protocol.Invalidate { round = Dec.int_ d }
      | 10 -> Protocol.Probe
      | 11 -> Protocol.Probe_ack
      | 12 -> Protocol.Join_request (dec_member d)
      | 13 -> Protocol.Leave_request (Dec.int_ d)
      | 14 ->
          let vc_view = dec_view d in
          let vc_commit = Dec.bool d in
          let vc_granted = Dec.array d Dec.int_ in
          let vc_epoch = Dec.int_ d in
          let vc_election = Dec.int_ d in
          let vc_arbiter = Dec.int_ d in
          Protocol.View_change
            { vc_view; vc_commit; vc_granted; vc_epoch; vc_election;
              vc_arbiter }
      | 15 -> Protocol.View_ack { va_vnum = Dec.int_ d }
      | 16 ->
          let rg_epoch = Dec.int_ d in
          let rg_minor = Dec.int_ d in
          let rg_entry = dec_entry d in
          Protocol.Read_grant { rg_epoch; rg_minor; rg_entry }
      | 17 -> Protocol.Read_done { rd_seq = Dec.int_ d }
      | t -> fail "unknown message tag %d" t
    in
    Dec.check_eof d;
    m
end
