test/test_sim_basic.ml: Alcotest Analysis Basic Dmutex List Printf Sim_runner Types
