open Simkit

let test_complete () =
  Alcotest.(check int) "one hop" 1 (Topology.hops Topology.Complete ~n:10 3 7);
  Alcotest.(check int) "self" 0 (Topology.hops Topology.Complete ~n:10 3 3);
  Alcotest.(check int) "diameter" 1 (Topology.diameter Topology.Complete ~n:10)

let test_ring () =
  Alcotest.(check int) "adjacent" 1 (Topology.hops Topology.Ring ~n:10 0 1);
  Alcotest.(check int) "wraps" 1 (Topology.hops Topology.Ring ~n:10 0 9);
  Alcotest.(check int) "across" 5 (Topology.hops Topology.Ring ~n:10 0 5);
  Alcotest.(check int) "diameter" 5 (Topology.diameter Topology.Ring ~n:10)

let test_star () =
  Alcotest.(check int) "to hub" 1 (Topology.hops (Topology.Star 0) ~n:10 4 0);
  Alcotest.(check int) "via hub" 2 (Topology.hops (Topology.Star 0) ~n:10 4 7);
  Alcotest.(check int) "diameter" 2 (Topology.diameter (Topology.Star 0) ~n:10)

let test_grid () =
  (* n=9, 3x3: node 0 at (0,0), node 8 at (2,2). *)
  Alcotest.(check int) "corner to corner" 4 (Topology.hops Topology.Grid ~n:9 0 8);
  Alcotest.(check int) "same row" 2 (Topology.hops Topology.Grid ~n:9 0 2);
  Alcotest.(check int) "diameter" 4 (Topology.diameter Topology.Grid ~n:9)

let test_tree () =
  (* heap tree: 0 root; 1,2 children; 3,4 under 1; 5,6 under 2. *)
  Alcotest.(check int) "parent-child" 1 (Topology.hops Topology.Tree ~n:7 0 1);
  Alcotest.(check int) "siblings" 2 (Topology.hops Topology.Tree ~n:7 1 2);
  Alcotest.(check int) "leaf to leaf across" 4
    (Topology.hops Topology.Tree ~n:7 3 5);
  Alcotest.(check int) "cousin leaves" 2 (Topology.hops Topology.Tree ~n:7 3 4)

let test_line () =
  Alcotest.(check int) "ends" 9 (Topology.hops Topology.Line ~n:10 0 9);
  Alcotest.(check int) "diameter" 9 (Topology.diameter Topology.Line ~n:10)

let test_mean_distance_ordering () =
  let mean topo = Topology.mean_distance topo ~n:16 in
  Alcotest.(check bool) "complete < star" true
    (mean Topology.Complete < mean (Topology.Star 0));
  Alcotest.(check bool) "star < line" true
    (mean (Topology.Star 0) < mean Topology.Line);
  Alcotest.(check bool) "ring < line" true
    (mean Topology.Ring < mean Topology.Line)

let test_of_string () =
  Alcotest.(check bool) "parse ring" true
    (Topology.of_string "ring" = Ok Topology.Ring);
  Alcotest.(check bool) "reject junk" true
    (match Topology.of_string "torus" with Error _ -> true | Ok _ -> false)

let prop_symmetry =
  QCheck.Test.make ~name:"hop distance is symmetric" ~count:300
    QCheck.(triple (int_range 2 30) (int_range 0 29) (int_range 0 29))
    (fun (n, i, j) ->
      let i = i mod n and j = j mod n in
      List.for_all
        (fun topo ->
          Simkit.Topology.hops topo ~n i j = Simkit.Topology.hops topo ~n j i)
        Simkit.Topology.all)

let prop_triangle =
  QCheck.Test.make ~name:"hop distance satisfies the triangle inequality"
    ~count:300
    QCheck.(
      quad (int_range 2 20) (int_range 0 19) (int_range 0 19) (int_range 0 19))
    (fun (n, i, j, k) ->
      let i = i mod n and j = j mod n and k = k mod n in
      List.for_all
        (fun topo ->
          Simkit.Topology.hops topo ~n i j
          <= Simkit.Topology.hops topo ~n i k + Simkit.Topology.hops topo ~n k j)
        Simkit.Topology.all)

let test_jain () =
  Alcotest.(check (float 1e-9)) "even" 1.0
    (Stats.jain_fairness [| 2.0; 2.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "one hog" (1.0 /. 4.0)
    (Stats.jain_fairness [| 0.0; 0.0; 0.0; 8.0 |]);
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Stats.jain_fairness [||]);
  Alcotest.(check (float 1e-9)) "all zero" 1.0
    (Stats.jain_fairness [| 0.0; 0.0 |])

let test_sim_topology_invariance () =
  (* Message counts must not depend on the topology; only delay does. *)
  let rows = Experiments.table_topology ~n:6 ~requests:3_000 () in
  let msgs = List.map (fun (_, _, m, _) -> m) rows in
  let mn = List.fold_left min infinity msgs
  and mx = List.fold_left max 0.0 msgs in
  Alcotest.(check bool) "message count topology-invariant" true
    (mx -. mn < 0.05);
  let complete_delay =
    List.find_map
      (fun (name, _, _, d) -> if name = "complete" then Some d else None)
      rows
  in
  let line_delay =
    List.find_map
      (fun (name, _, _, d) -> if name = "line" then Some d else None)
      rows
  in
  match (complete_delay, line_delay) with
  | Some c, Some l ->
      Alcotest.(check bool) "delay grows with distance" true (l > c)
  | _ -> Alcotest.fail "rows missing"

let suite =
  ( "topology",
    [
      Alcotest.test_case "complete" `Quick test_complete;
      Alcotest.test_case "ring" `Quick test_ring;
      Alcotest.test_case "star" `Quick test_star;
      Alcotest.test_case "grid" `Quick test_grid;
      Alcotest.test_case "tree" `Quick test_tree;
      Alcotest.test_case "line" `Quick test_line;
      Alcotest.test_case "mean distance ordering" `Quick
        test_mean_distance_ordering;
      Alcotest.test_case "of_string" `Quick test_of_string;
      QCheck_alcotest.to_alcotest prop_symmetry;
      QCheck_alcotest.to_alcotest prop_triangle;
      Alcotest.test_case "jain fairness index" `Quick test_jain;
      Alcotest.test_case "simulated topology invariance" `Slow
        test_sim_topology_invariance;
    ] )
