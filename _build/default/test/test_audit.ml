(* The offline trace auditor: unit behaviour on hand-made traces, and
   agreement with the online runner on real simulations (two
   bookkeepers must concur). *)

open Simkit

let mk events =
  let trace = Trace.create () in
  Trace.set_enabled trace true;
  List.iter
    (fun (time, node, tag) -> Trace.add trace ~time ~node ~tag "")
    events;
  trace

let test_clean_run () =
  let r =
    Audit.run
      (mk
         [
           (0.0, 0, "request"); (1.0, 0, "enter-cs"); (2.0, 0, "exit-cs");
           (2.5, 1, "request"); (3.0, 1, "enter-cs"); (4.0, 1, "exit-cs");
         ])
  in
  Alcotest.(check bool) "ok" true (Audit.ok r);
  Alcotest.(check int) "entries" 2 r.entries;
  Alcotest.(check int) "max concurrency" 1 r.max_concurrency;
  Alcotest.(check (float 1e-9)) "mean wait" 0.75 (Stats.Tally.mean r.waits);
  Alcotest.(check (float 1e-9)) "mean hold" 1.0 (Stats.Tally.mean r.holds);
  Alcotest.(check int) "nothing unmatched" 0 r.unmatched_requests

let test_detects_overlap () =
  let r =
    Audit.run
      (mk
         [
           (1.0, 0, "enter-cs"); (1.5, 1, "enter-cs"); (2.0, 0, "exit-cs");
           (2.5, 1, "exit-cs");
         ])
  in
  Alcotest.(check bool) "not ok" false (Audit.ok r);
  (match r.violations with
  | [ Audit.Overlap { holder = 0; intruder = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected one overlap 0/1");
  Alcotest.(check int) "peak concurrency 2" 2 r.max_concurrency

let test_detects_double_entry () =
  let r = Audit.run (mk [ (1.0, 0, "enter-cs"); (2.0, 0, "enter-cs") ]) in
  match r.violations with
  | [ Audit.Entry_while_inside { node = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected re-entry violation"

let test_detects_orphan_exit () =
  let r = Audit.run (mk [ (1.0, 2, "exit-cs") ]) in
  match r.violations with
  | [ Audit.Exit_without_entry { node = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected orphan exit"

let test_crash_clears_holder () =
  let r =
    Audit.run
      (mk
         [
           (1.0, 0, "enter-cs"); (1.5, 0, "crash"); (2.0, 1, "enter-cs");
           (3.0, 1, "exit-cs");
         ])
  in
  Alcotest.(check bool) "crash forgives the open CS" true (Audit.ok r)

let test_unmatched_requests () =
  let r = Audit.run (mk [ (0.0, 0, "request"); (0.5, 1, "request") ]) in
  Alcotest.(check int) "both unmatched" 2 r.unmatched_requests

let agree_with_runner (type s m tm)
    (module A : Dmutex.Types.ALGO
      with type state = s and type message = m and type timer = tm) cfg =
  let module R = Dmutex.Sim_runner.Make (A) in
  let trace = Trace.create ~capacity:1_000_000 () in
  Trace.set_enabled trace true;
  let o = R.run_poisson ~seed:5 ~requests:2_000 ~rate:0.3 ~trace cfg in
  let audit = Audit.run trace in
  Alcotest.(check bool) (A.name ^ ": audit clean") true (Audit.ok audit);
  Alcotest.(check int) (A.name ^ ": runner agrees") o.safety_violations 0;
  Alcotest.(check int)
    (A.name ^ ": same completion count")
    o.completed audit.exits

let test_agreement_basic () =
  agree_with_runner (module Dmutex.Basic) (Dmutex.Basic.config ~n:8 ())

let test_agreement_maekawa () =
  agree_with_runner
    (module Baselines.Maekawa)
    (Dmutex.Types.Config.default ~n:8)

let test_agreement_lamport () =
  agree_with_runner
    (module Baselines.Lamport)
    (Dmutex.Types.Config.default ~n:8)

let test_audit_pp () =
  let r = Audit.run (mk [ (1.0, 0, "enter-cs"); (1.5, 1, "enter-cs") ]) in
  let s = Format.asprintf "%a" Audit.pp r in
  Alcotest.(check bool) "mentions violation" true
    (Str_present.contains_substring s "VIOLATIONS")

let suite =
  ( "audit",
    [
      Alcotest.test_case "clean run" `Quick test_clean_run;
      Alcotest.test_case "detects overlap" `Quick test_detects_overlap;
      Alcotest.test_case "detects double entry" `Quick
        test_detects_double_entry;
      Alcotest.test_case "detects orphan exit" `Quick test_detects_orphan_exit;
      Alcotest.test_case "crash clears holder" `Quick test_crash_clears_holder;
      Alcotest.test_case "unmatched requests" `Quick test_unmatched_requests;
      Alcotest.test_case "agrees with runner: basic" `Quick
        test_agreement_basic;
      Alcotest.test_case "agrees with runner: maekawa" `Quick
        test_agreement_maekawa;
      Alcotest.test_case "agrees with runner: lamport" `Quick
        test_agreement_lamport;
      Alcotest.test_case "report rendering" `Quick test_audit_pp;
    ] )
