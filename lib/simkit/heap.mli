(** Array-based binary min-heap keyed by [(priority, sequence)].

    The sequence number is assigned at insertion time, so elements with
    equal priority are extracted in insertion order. This determinism is
    load-bearing for the discrete-event engine: two events scheduled at
    the same simulated instant always fire in the order they were
    scheduled, which keeps simulations reproducible across runs. *)

type 'a t
(** A mutable min-heap holding values of type ['a]. *)

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty heap. [capacity] pre-sizes the backing
    array (default 64), avoiding doubling-growth churn when the final
    size is known up front. *)

val size : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** [push t ~priority v] inserts [v]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority, or [None]
    if empty. Ties broken by insertion order. O(log n). The heap drops
    its reference to the removed value, so popped values are
    collectable immediately. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum without removing it. O(1). *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Destructively drain the heap into an ascending list. Mostly useful
    for tests. *)
