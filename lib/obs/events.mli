(** Structured trace-event sink: a bounded in-memory ring buffer of
    timestamped events, flushable to JSONL on demand, at exit, or
    from a crash handler.

    The ring keeps the most recent [capacity] events; older events
    are overwritten but still counted ([total]), so a flushed trace
    records how much history was lost. Every event carries a
    wall-clock timestamp and a process-wide strictly increasing
    sequence number; the sequence gives a total order even when the
    wall clock steps. Emission is mutex-protected and cheap (no
    allocation beyond the event itself), safe from any thread or
    domain. *)

type severity = Debug | Info | Warn | Error

type event = {
  seq : int;  (** strictly increasing across all sinks in the process *)
  ts : float;  (** [Unix.gettimeofday] at emission *)
  severity : severity;
  name : string;  (** e.g. ["cs.enter"], ["recovery.elected"] *)
  fields : (string * string) list;
}

type sink

val create : ?capacity:int -> unit -> sink
(** Default capacity: 4096 events. *)

val emit :
  sink -> ?severity:severity -> ?fields:(string * string) list -> string -> unit
(** [emit sink name] records an event now. Default severity [Info]. *)

val capacity : sink -> int

val total : sink -> int
(** Number of events ever emitted (>= number retained). *)

val events : sink -> event list
(** Retained events, oldest first. Safe while writers are active. *)

val string_of_severity : severity -> string

val to_jsonl : event -> string
(** One JSON object, no trailing newline. *)

val flush : sink -> out_channel -> unit
(** Write retained events as JSONL, oldest first, preceded by a
    header object recording [total] and [capacity] (so dropped
    history is visible), then flush the channel. The sink keeps its
    contents — flushing is a read. *)

val flush_file : sink -> string -> unit
(** [flush] to [path] (truncate-create). Failures are swallowed:
    this is called from exit paths where raising would mask the
    original error. *)

val attach_at_exit : sink -> string -> unit
(** Register an [at_exit] hook that [flush_file]s the sink — the
    crash-/exit-flush required of the trace subsystem. *)
