test/test_experiments.ml: Alcotest Buffer Experiments Float Format List Printf
