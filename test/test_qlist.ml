open Dmutex

let e ?(hops = 0) node seq = Qlist.entry ~hops ~node ~seq ()

let test_enqueue_order () =
  let q = [] |> Qlist.enqueue (e 3 0) |> Qlist.enqueue (e 1 0)
          |> Qlist.enqueue (e 2 0) in
  Alcotest.(check (list int)) "FCFS order" [ 3; 1; 2 ]
    (List.map (fun x -> x.Qlist.node) q)

let test_enqueue_dedup () =
  let q = [] |> Qlist.enqueue (e 3 0) |> Qlist.enqueue (e 1 0) in
  (* A retransmission of node 3 with the same seq keeps position. *)
  let q1 = Qlist.enqueue (e 3 0) q in
  Alcotest.(check int) "no duplicate" 2 (List.length q1);
  (* A newer request from node 3 replaces in place. *)
  let q2 = Qlist.enqueue (e 3 5) q in
  Alcotest.(check int) "still two" 2 (List.length q2);
  Alcotest.(check int) "newer seq kept" 5 (List.hd q2).Qlist.seq;
  (* An older duplicate never downgrades. *)
  let q3 = Qlist.enqueue (e 3 2) q2 in
  Alcotest.(check int) "no downgrade" 5 (List.hd q3).Qlist.seq

let test_head_tail () =
  Alcotest.(check bool) "empty head" true (Qlist.head [] = None);
  Alcotest.(check bool) "empty tail" true (Qlist.tail_node [] = None);
  let q = [ e 4 0; e 2 1; e 9 0 ] in
  Alcotest.(check int) "head" 4
    (match Qlist.head q with Some x -> x.Qlist.node | None -> -1);
  Alcotest.(check (option int)) "tail" (Some 9) (Qlist.tail_node q)

let test_mem () =
  let q = [ e 4 0; e 2 1 ] in
  Alcotest.(check bool) "present" true (Qlist.mem 2 q);
  Alcotest.(check bool) "absent" false (Qlist.mem 7 q)

let test_priority_sort_stable () =
  let priorities = [| 0; 5; 0; 5 |] in
  let q = [ e 0 0; e 1 0; e 2 0; e 3 0 ] in
  let sorted = Qlist.sort_by_priority priorities q in
  Alcotest.(check (list int)) "high first, FCFS within level" [ 1; 3; 0; 2 ]
    (List.map (fun x -> x.Qlist.node) sorted)

let test_granted () =
  let g = Qlist.Granted.create 4 in
  Alcotest.(check bool) "nothing served" false
    (Qlist.Granted.already_served g (e 2 0));
  let g = Qlist.Granted.mark g (e 2 3) in
  Alcotest.(check bool) "served up to seq" true
    (Qlist.Granted.already_served g (e 2 3));
  Alcotest.(check bool) "older also served" true
    (Qlist.Granted.already_served g (e 2 1));
  Alcotest.(check bool) "newer not served" false
    (Qlist.Granted.already_served g (e 2 4));
  let g2 = Qlist.Granted.mark (Qlist.Granted.create 4) (e 2 1) in
  let merged = Qlist.Granted.merge g g2 in
  Alcotest.(check bool) "merge keeps max" true
    (Qlist.Granted.already_served merged (e 2 3))

let test_prune () =
  let g = Qlist.Granted.mark (Qlist.Granted.create 4) (e 1 2) in
  let q = [ e 0 0; e 1 2; e 1 3 ] in
  (* note: enqueue would never produce two entries for node 1; prune
     must still behave on arbitrary lists *)
  let pruned = Qlist.prune g q in
  Alcotest.(check int) "served removed" 2 (List.length pruned);
  Alcotest.(check bool) "newer kept" true
    (List.exists (fun x -> x.Qlist.node = 1 && x.Qlist.seq = 3) pruned)

(* Recovery scenarios: what the Q-list machinery must guarantee when
   a node crashes mid-queue and a new incarnation of it rejoins. *)

let test_rejoin_duplicate_insertion () =
  (* The crashed incarnation's request (node 1, seq 7) is still
     queued when the restarted incarnation, whose counter reset to 0,
     requests again. Enqueue must neither duplicate the node nor
     downgrade to the stale-looking lower seq — the old entry wins
     until the L vector clears it. *)
  let q = [] |> Qlist.enqueue (e 0 3) |> Qlist.enqueue (e 1 7)
          |> Qlist.enqueue (e 2 1) in
  let q' = Qlist.enqueue (e 1 0) q in
  Alcotest.(check int) "no duplicate node after rejoin" 3 (List.length q');
  let kept = List.find (fun x -> x.Qlist.node = 1) q' in
  Alcotest.(check int) "pre-crash seq never downgraded" 7 kept.Qlist.seq;
  (* Position is preserved too: the rejoined node does not jump the
     queue by re-requesting. *)
  Alcotest.(check (list int)) "order unchanged" [ 0; 1; 2 ]
    (List.map (fun x -> x.Qlist.node) q')

let test_rejoin_after_service () =
  (* Once the pre-crash request was served (L vector knows seq 7), the
     new incarnation's fresh seq-0 request looks "already served" —
     the trap a restored next_seq avoids. A node restarted WITH its
     counter (seq 8) is served normally. *)
  let g = Qlist.Granted.mark (Qlist.Granted.create 3) (e 1 7) in
  Alcotest.(check bool) "amnesiac seq 0 looks served" true
    (Qlist.Granted.already_served g (e 1 0));
  Alcotest.(check bool) "restored seq continues past the grant" false
    (Qlist.Granted.already_served g (e 1 8));
  (* prune applies the same rule to queued entries. *)
  let q = [ e 0 1; e 1 0 ] in
  Alcotest.(check (list int)) "stale incarnation entry pruned" [ 0 ]
    (List.map (fun x -> x.Qlist.node) (Qlist.prune g q))

let test_rejoin_head_tail_invariants () =
  (* Head/tail stay well-defined through a crash-rejoin churn: the
     head is served, the old entry drops off, the new incarnation
     lands at the tail. *)
  let q = [] |> Qlist.enqueue (e 0 3) |> Qlist.enqueue (e 1 7)
          |> Qlist.enqueue (e 2 1) in
  (* Serve the head, as dispatch does. *)
  let q = match q with _ :: rest -> rest | [] -> [] in
  Alcotest.(check int) "new head" 1
    (match Qlist.head q with Some x -> x.Qlist.node | None -> -1);
  (* The restarted node 1's old entry is cleared by the L vector when
     its grant lands, then its new incarnation re-enqueues. *)
  let g = Qlist.Granted.mark (Qlist.Granted.create 3) (e 1 7) in
  let q = Qlist.prune g q in
  let q = Qlist.enqueue (e 1 8) q in
  Alcotest.(check int) "head survives churn" 2
    (match Qlist.head q with Some x -> x.Qlist.node | None -> -1);
  Alcotest.(check (option int)) "new incarnation at the tail" (Some 1)
    (Qlist.tail_node q);
  Alcotest.(check int) "exactly one entry per node" 2 (List.length q)

let entry_gen =
  QCheck.Gen.(
    map2 (fun node seq -> e node seq) (int_range 0 5) (int_range 0 10))

let prop_enqueue_unique =
  QCheck.Test.make ~name:"enqueue keeps at most one entry per node"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 30) entry_gen))
    (fun entries ->
      let q = List.fold_left (fun acc x -> Qlist.enqueue x acc) [] entries in
      let nodes = List.map (fun x -> x.Qlist.node) q in
      List.length nodes = List.length (List.sort_uniq compare nodes))

let prop_enqueue_max_seq =
  QCheck.Test.make ~name:"enqueue keeps the maximal seq per node" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 30) entry_gen))
    (fun entries ->
      let q = List.fold_left (fun acc x -> Qlist.enqueue x acc) [] entries in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              y.Qlist.node <> x.Qlist.node || y.Qlist.seq <= x.Qlist.seq)
            entries)
        q)

let prop_sort_permutation =
  QCheck.Test.make ~name:"priority sort is a permutation" ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) entry_gen))
    (fun entries ->
      let priorities = Array.init 6 (fun i -> (i * 7) mod 3) in
      let q = List.fold_left (fun acc x -> Qlist.enqueue x acc) [] entries in
      let sorted = Qlist.sort_by_priority priorities q in
      List.sort compare sorted = List.sort compare q)

let prop_sort_stable_within_level =
  (* The FCFS guarantee under prioritisation: among entries sharing a
     priority level, the original queue order is preserved exactly —
     no same-priority overtaking, whatever the level layout. *)
  QCheck.Test.make ~name:"priority sort never reorders within a level"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) entry_gen))
    (fun entries ->
      let priorities = Array.init 6 (fun i -> (i * 5) mod 4) in
      let q = List.fold_left (fun acc x -> Qlist.enqueue x acc) [] entries in
      let sorted = Qlist.sort_by_priority priorities q in
      List.for_all
        (fun level ->
          let at_level l =
            List.filter (fun x -> priorities.(x.Qlist.node) = l)
          in
          at_level level sorted = at_level level q)
        [ 0; 1; 2; 3 ])

let test_granted_idempotent () =
  (* Grant bookkeeping is retransmission-proof: re-marking the same
     grant, or a grant the vector already covers, changes nothing —
     the L vector is a max, not a log. *)
  let g0 = Qlist.Granted.create 4 in
  let g1 = Qlist.Granted.mark g0 (e 2 3) in
  let g2 = Qlist.Granted.mark g1 (e 2 3) in
  Alcotest.(check bool) "re-mark is identity" true (g1 = g2);
  let g3 = Qlist.Granted.mark g1 (e 2 1) in
  Alcotest.(check bool) "older mark absorbed" true (g1 = g3);
  (* Merge shares the algebra: idempotent, commutative, and absorbing
     against the empty vector. *)
  let h = Qlist.Granted.mark (Qlist.Granted.create 4) (e 1 5) in
  Alcotest.(check bool) "merge idempotent" true
    (Qlist.Granted.merge g1 g1 = g1);
  Alcotest.(check bool) "merge commutative" true
    (Qlist.Granted.merge g1 h = Qlist.Granted.merge h g1);
  Alcotest.(check bool) "empty vector is neutral" true
    (Qlist.Granted.merge g1 g0 = g1);
  (* And prune after a duplicated grant removes exactly the same
     entries as after the single grant. *)
  let q = [ e 0 0; e 2 2; e 2 4 ] in
  Alcotest.(check bool) "prune unaffected by re-mark" true
    (Qlist.prune g1 q = Qlist.prune g2 q)

(* ------------------------------------------------------------------ *)
(* Read-write modes: compatibility, batching, writer priority *)

let se ?(hops = 0) node seq =
  Qlist.entry ~hops ~mode:Types.Shared ~node ~seq ()

let nodes_of q = List.map (fun x -> x.Qlist.node) q

let test_compatible () =
  Alcotest.(check bool) "shared+shared" true
    (Qlist.compatible (se 1 0) (se 2 0));
  Alcotest.(check bool) "shared+exclusive" false
    (Qlist.compatible (se 1 0) (e 2 0));
  Alcotest.(check bool) "exclusive+shared" false
    (Qlist.compatible (e 1 0) (se 2 0));
  Alcotest.(check bool) "exclusive+exclusive" false
    (Qlist.compatible (e 1 0) (e 2 0))

let test_head_batch () =
  Alcotest.(check int) "empty" 0 (List.length (Qlist.head_batch []));
  (* An exclusive head is served alone, whatever follows. *)
  Alcotest.(check (list int)) "exclusive head alone" [ 0 ]
    (nodes_of (Qlist.head_batch [ e 0 1; se 1 0; se 2 0 ]));
  (* A shared head pulls in the maximal prefix run of readers… *)
  Alcotest.(check (list int)) "maximal shared prefix" [ 0; 1; 2 ]
    (nodes_of (Qlist.head_batch [ se 0 0; se 1 0; se 2 0; e 3 0; se 4 0 ]));
  (* …but never a reader queued behind a writer: FCFS is preserved
     across the mode boundary. *)
  Alcotest.(check (list int)) "batch stops at the first writer" [ 0 ]
    (nodes_of (Qlist.head_batch [ se 0 0; e 1 0; se 2 0 ]))

let test_sort_writers_first () =
  let q = [ se 0 0; e 1 0; se 2 0; e 3 0; se 4 0 ] in
  let sorted = Qlist.sort_writers_first q in
  Alcotest.(check (list int)) "writers first, FCFS within class"
    [ 1; 3; 0; 2; 4 ] (nodes_of sorted);
  (* Sorting readers adjacent is what lets the batch form. *)
  let after_writers =
    match sorted with _ :: _ :: readers -> readers | _ -> []
  in
  Alcotest.(check (list int)) "reader run batches as one grant" [ 0; 2; 4 ]
    (nodes_of (Qlist.head_batch after_writers));
  (* All-exclusive and all-shared lists are left untouched. *)
  Alcotest.(check (list int)) "pure writer list unchanged" [ 0; 1; 2 ]
    (nodes_of (Qlist.sort_writers_first [ e 0 0; e 1 0; e 2 0 ]));
  Alcotest.(check (list int)) "pure reader list unchanged" [ 0; 1; 2 ]
    (nodes_of (Qlist.sort_writers_first [ se 0 0; se 1 0; se 2 0 ]))

let test_final_holder () =
  (* Where does the token rest once the queue is fully served? The
     tail — unless the queue *ends* in a run of ≥ 2 readers, in which
     case the run's first entry coordinates the batch and keeps the
     token. NEW-ARBITER must name this node (protocol.ml). *)
  Alcotest.(check (option int)) "empty queue: nobody" None
    (Qlist.final_holder []);
  Alcotest.(check (option int)) "singleton: itself" (Some 7)
    (Qlist.final_holder [ e 7 0 ]);
  Alcotest.(check (option int)) "exclusive tail: the tail" (Some 3)
    (Qlist.final_holder [ se 1 0; se 2 0; e 3 0 ]);
  Alcotest.(check (option int)) "trailing reader run: its first entry"
    (Some 1)
    (Qlist.final_holder [ e 0 0; se 1 0; se 2 0; se 3 0 ]);
  (* A solo trailing reader is a batch of one — the plain exclusive
     path, so the tail itself. *)
  Alcotest.(check (option int)) "solo trailing reader: the tail" (Some 3)
    (Qlist.final_holder [ se 1 0; e 2 0; se 3 0 ]);
  Alcotest.(check (option int)) "trailing run after a writer" (Some 3)
    (Qlist.final_holder [ se 0 0; se 1 0; e 2 0; se 3 0; se 4 0 ]);
  Alcotest.(check (option int)) "mid-queue readers don't matter" (Some 4)
    (Qlist.final_holder [ e 0 0; se 1 0; se 2 0; e 3 0; e 4 0 ])

let test_mark_all_batch () =
  let g = Qlist.Granted.create 5 in
  let batch = [ se 0 2; se 1 0; se 4 3 ] in
  let t0 = Qlist.Granted.total g in
  let g' = Qlist.Granted.mark_all g batch in
  List.iter
    (fun x ->
      Alcotest.(check bool) "every batch member served" true
        (Qlist.Granted.already_served g' x))
    batch;
  Alcotest.(check bool) "total strictly advanced" true
    (Qlist.Granted.total g' > t0);
  (* Re-marking the same batch is the identity — grant bookkeeping
     stays retransmission-proof with batches too. *)
  Alcotest.(check bool) "mark_all idempotent" true
    (Qlist.Granted.mark_all g' batch = g');
  (* mark_all = fold of mark: one fencing step per batch is a property
     of when the total is *read*, not a different algebra. *)
  Alcotest.(check bool) "mark_all agrees with iterated mark" true
    (List.fold_left Qlist.Granted.mark g batch = g')

let prop_head_batch_compatible =
  QCheck.Test.make ~name:"head_batch members are pairwise compatible or singleton"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (0 -- 20)
           (map2
              (fun (node, seq) shared -> if shared then se node seq else e node seq)
              (pair (int_range 0 5) (int_range 0 10))
              bool)))
    (fun entries ->
      let q = List.fold_left (fun acc x -> Qlist.enqueue x acc) [] entries in
      let b = Qlist.head_batch q in
      match b with
      | [] -> q = []
      | [ _ ] -> true
      | _ ->
          List.for_all
            (fun x -> List.for_all (fun y -> x == y || Qlist.compatible x y) b)
            b)

let suite =
  ( "qlist",
    [
      Alcotest.test_case "FCFS order" `Quick test_enqueue_order;
      Alcotest.test_case "dedup by node" `Quick test_enqueue_dedup;
      Alcotest.test_case "head and tail" `Quick test_head_tail;
      Alcotest.test_case "mem" `Quick test_mem;
      Alcotest.test_case "stable priority sort" `Quick
        test_priority_sort_stable;
      Alcotest.test_case "granted vector" `Quick test_granted;
      Alcotest.test_case "granted idempotence" `Quick test_granted_idempotent;
      Alcotest.test_case "prune" `Quick test_prune;
      Alcotest.test_case "rejoin: duplicate insertion" `Quick
        test_rejoin_duplicate_insertion;
      Alcotest.test_case "rejoin: served-history trap" `Quick
        test_rejoin_after_service;
      Alcotest.test_case "rejoin: head/tail invariants" `Quick
        test_rejoin_head_tail_invariants;
      Alcotest.test_case "rw: mode compatibility" `Quick test_compatible;
      Alcotest.test_case "rw: head batch" `Quick test_head_batch;
      Alcotest.test_case "rw: writers-first sort" `Quick
        test_sort_writers_first;
      Alcotest.test_case "rw: batch grant bookkeeping" `Quick
        test_mark_all_batch;
      Alcotest.test_case "rw: final holder of a served queue" `Quick
        test_final_holder;
      QCheck_alcotest.to_alcotest prop_head_batch_compatible;
      QCheck_alcotest.to_alcotest prop_enqueue_unique;
      QCheck_alcotest.to_alcotest prop_enqueue_max_seq;
      QCheck_alcotest.to_alcotest prop_sort_permutation;
      QCheck_alcotest.to_alcotest prop_sort_stable_within_level;
    ] )
