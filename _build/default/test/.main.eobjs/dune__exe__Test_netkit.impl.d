test/test_netkit.ml: Alcotest Dmutex List Mutex Netkit Printf String Thread Unix Wire
