test/test_baselines.ml: Alcotest Array Baselines Basic Dmutex List Printf QCheck QCheck_alcotest Sim_runner Types
