(* Shared pool of byte buffers for the transport's encode and decode
   paths. Frames are serialized into (and parsed out of) long-lived
   pooled buffers, so the steady state allocates nothing per frame;
   the pool is only touched when a connection opens, closes, or
   outgrows its current buffer — never per frame.

   Buffers are handed out in power-of-two sizes so a returned buffer
   is maximally reusable. The pool is process-global and mutex-
   guarded: reactors on different domains share it, and the lock is
   uncontended in the steady state because take/give happen at
   connection granularity. *)

let min_size = 4 * 1024
let max_pooled = 1 * 1024 * 1024 (* bigger buffers are freed, not pooled *)
let max_kept = 32 (* per-process cap on idle pooled buffers *)

let mu = Mutex.create ()
let pool : Bytes.t list ref = ref []
let kept = ref 0

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let take n =
  let n = pow2 (max n min_size) min_size in
  Mutex.lock mu;
  let rec pick acc = function
    | [] ->
        pool := acc;
        None
    | b :: rest when Bytes.length b >= n ->
        pool := List.rev_append acc rest;
        decr kept;
        Some b
    | b :: rest -> pick (b :: acc) rest
  in
  let found = pick [] !pool in
  Mutex.unlock mu;
  match found with Some b -> b | None -> Bytes.create n

let give b =
  if Bytes.length b <= max_pooled then begin
    Mutex.lock mu;
    if !kept < max_kept then begin
      pool := b :: !pool;
      incr kept
    end;
    Mutex.unlock mu
  end

(* Grow [b] to hold at least [n] bytes, preserving [len] bytes of
   content, returning the (possibly new) buffer. *)
let grow b ~len n =
  if Bytes.length b >= n then b
  else begin
    let b' = take n in
    Bytes.blit b 0 b' 0 len;
    give b;
    b'
  end
