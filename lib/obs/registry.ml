type series = { name : string; labels : (string * string) list }

let min_exp = -30
let max_exp = 30
let n_buckets = max_exp - min_exp + 1

(* Bucket index for [v]: smallest [e] with [v <= 2^e], clamped.
   [frexp v = (m, e)] with [0.5 <= m < 1] gives [2^(e-1) <= v < 2^e],
   so ceil(log2 v) is [e] except when [v] is an exact power of two
   ([m = 0.5]), where it is [e - 1]. *)
let bucket_of v =
  if not (v > 0.) then 0
  else
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    let e = if e < min_exp then min_exp else if e > max_exp then max_exp else e in
    e - min_exp

let bound_of_bucket i = Float.ldexp 1.0 (i + min_exp)

type histo_cell = {
  hmu : Mutex.t;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type gauge_cell = { gmu : Mutex.t; mutable g : float }

type metric =
  | Mcounter of int Atomic.t
  | Mgauge of gauge_cell
  | Mhisto of histo_cell

type t = { mu : Mutex.t; tbl : (series, metric) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

let with_mu mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let find_or_add t series mk =
  with_mu t.mu (fun () ->
      match Hashtbl.find_opt t.tbl series with
      | Some m -> m
      | None ->
          let m = mk () in
          Hashtbl.add t.tbl series m;
          m)

let series name labels = { name; labels }

module Counter = struct
  type handle = int Atomic.t

  let get t ?(labels = []) name =
    match find_or_add t (series name labels) (fun () -> Mcounter (Atomic.make 0)) with
    | Mcounter c -> c
    | Mgauge _ | Mhisto _ ->
        invalid_arg (Printf.sprintf "Registry: %s is not a counter" name)

  let incr c = ignore (Atomic.fetch_and_add c 1)
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value = Atomic.get
end

module Gauge = struct
  type handle = gauge_cell

  let get t ?(labels = []) name =
    match
      find_or_add t (series name labels) (fun () ->
          Mgauge { gmu = Mutex.create (); g = 0. })
    with
    | Mgauge g -> g
    | Mcounter _ | Mhisto _ ->
        invalid_arg (Printf.sprintf "Registry: %s is not a gauge" name)

  let set c v = with_mu c.gmu (fun () -> c.g <- v)
  let add c v = with_mu c.gmu (fun () -> c.g <- c.g +. v)
  let value c = with_mu c.gmu (fun () -> c.g)
end

module Histogram = struct
  type handle = histo_cell

  let get t ?(labels = []) name =
    match
      find_or_add t (series name labels) (fun () ->
          Mhisto
            {
              hmu = Mutex.create ();
              buckets = Array.make n_buckets 0;
              count = 0;
              sum = 0.;
              min_v = nan;
              max_v = nan;
            })
    with
    | Mhisto h -> h
    | Mcounter _ | Mgauge _ ->
        invalid_arg (Printf.sprintf "Registry: %s is not a histogram" name)

  let observe h v =
    with_mu h.hmu (fun () ->
        let i = bucket_of v in
        h.buckets.(i) <- h.buckets.(i) + 1;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if h.count = 1 then begin
          h.min_v <- v;
          h.max_v <- v
        end
        else begin
          if v < h.min_v then h.min_v <- v;
          if v > h.max_v then h.max_v <- v
        end)

  let count h = with_mu h.hmu (fun () -> h.count)
  let sum h = with_mu h.hmu (fun () -> h.sum)
end

type histo = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type snapshot = {
  counters : (series * int) list;
  gauges : (series * float) list;
  histograms : (series * histo) list;
}

let compare_series a b =
  match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c

let freeze_histo (h : histo_cell) =
  with_mu h.hmu (fun () ->
      let bs = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.buckets.(i) > 0 then bs := (bound_of_bucket i, h.buckets.(i)) :: !bs
      done;
      {
        h_count = h.count;
        h_sum = h.sum;
        h_min = h.min_v;
        h_max = h.max_v;
        h_buckets = !bs;
      })

let snapshot t =
  let entries =
    with_mu t.mu (fun () -> Hashtbl.fold (fun s m acc -> (s, m) :: acc) t.tbl [])
  in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (s, m) ->
      match m with
      | Mcounter c -> counters := (s, Atomic.get c) :: !counters
      | Mgauge g -> gauges := (s, Gauge.value g) :: !gauges
      | Mhisto h -> histograms := (s, freeze_histo h) :: !histograms)
    entries;
  let by_series l = List.sort (fun (a, _) (b, _) -> compare_series a b) l in
  {
    counters = by_series !counters;
    gauges = by_series !gauges;
    histograms = by_series !histograms;
  }

let merge snaps =
  let combine_min a b =
    if Float.is_nan a then b else if Float.is_nan b then a else Float.min a b
  and combine_max a b =
    if Float.is_nan a then b else if Float.is_nan b then a else Float.max a b
  in
  let merge_histo a b =
    let tbl = Hashtbl.create 16 in
    let feed (bound, n) =
      let prev = try Hashtbl.find tbl bound with Not_found -> 0 in
      Hashtbl.replace tbl bound (prev + n)
    in
    List.iter feed a.h_buckets;
    List.iter feed b.h_buckets;
    let buckets =
      Hashtbl.fold (fun bound n acc -> (bound, n) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    {
      h_count = a.h_count + b.h_count;
      h_sum = a.h_sum +. b.h_sum;
      h_min = combine_min a.h_min b.h_min;
      h_max = combine_max a.h_max b.h_max;
      h_buckets = buckets;
    }
  in
  let fold_assoc combine lists =
    let tbl = Hashtbl.create 64 in
    List.iter
      (List.iter (fun (s, v) ->
           match Hashtbl.find_opt tbl s with
           | None -> Hashtbl.replace tbl s v
           | Some prev -> Hashtbl.replace tbl s (combine prev v)))
      lists;
    Hashtbl.fold (fun s v acc -> (s, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare_series a b)
  in
  {
    counters = fold_assoc ( + ) (List.map (fun s -> s.counters) snaps);
    gauges = fold_assoc ( +. ) (List.map (fun s -> s.gauges) snaps);
    histograms = fold_assoc merge_histo (List.map (fun s -> s.histograms) snaps);
  }

let histo_mean h = if h.h_count = 0 then nan else h.h_sum /. float_of_int h.h_count

(* Prometheus text format, version 0.0.4. *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let add_sample buf name labels value =
  Buffer.add_string buf name;
  render_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let expose snap =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s, v) ->
      type_line s.name "counter";
      add_sample buf s.name s.labels (string_of_int v))
    snap.counters;
  List.iter
    (fun (s, v) ->
      type_line s.name "gauge";
      add_sample buf s.name s.labels (render_float v))
    snap.gauges;
  List.iter
    (fun (s, h) ->
      type_line s.name "histogram";
      let cum = ref 0 in
      List.iter
        (fun (bound, n) ->
          cum := !cum + n;
          add_sample buf (s.name ^ "_bucket")
            (s.labels @ [ ("le", render_float bound) ])
            (string_of_int !cum))
        h.h_buckets;
      add_sample buf (s.name ^ "_bucket")
        (s.labels @ [ ("le", "+Inf") ])
        (string_of_int h.h_count);
      add_sample buf (s.name ^ "_sum") s.labels (render_float h.h_sum);
      add_sample buf (s.name ^ "_count") s.labels (string_of_int h.h_count))
    snap.histograms;
  Buffer.contents buf
