(* The model checker itself, and the exhaustive checks it provides for
   small configurations (the paper's Section 2.3 argument,
   mechanized). *)

open Dmutex

let newline = String.make 1 '\n'

let basic_cfg n =
  let base = Basic.config ~n () in
  { base with Types.Config.max_retries = 0 }

let check_ok name (r : Mcheck.Make(Basic).result) =
  match r.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "%s: %s\n%s" name
        (match v.kind with `Safety -> "safety" | `Deadlock -> "deadlock")
        (String.concat "\n" v.trace)

let test_basic_n2_exhaustive () =
  let module M = Mcheck.Make (Basic) in
  let r = M.run ~requests_per_node:1 (basic_cfg 2) in
  check_ok "n=2 r=1" r;
  Alcotest.(check bool) "exhausted (not truncated)" false r.truncated;
  Alcotest.(check bool) "non-trivial space" true (r.states > 100)

let test_basic_n2_r2_bounded () =
  let module M = Mcheck.Make (Basic) in
  let r = M.run ~max_states:150_000 ~requests_per_node:2 (basic_cfg 2) in
  (match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace));
  Alcotest.(check bool) "explored the budget" true (r.states > 100_000)

let test_basic_n3_bounded () =
  let module M = Mcheck.Make (Basic) in
  let r = M.run ~max_states:150_000 ~requests_per_node:1 (basic_cfg 3) in
  match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace)

let test_basic_n2_no_timers () =
  (* With deterministic timers off the space is tiny and exhaustible
     even for two requests per node. *)
  let module M = Mcheck.Make (Basic) in
  let r =
    M.run ~fire_timers:true ~requests_per_node:1 (basic_cfg 2)
  in
  check_ok "n=2" r

let test_central_exhaustive () =
  let module M = Mcheck.Make (Baselines.Central_server) in
  let r = M.run ~requests_per_node:2 (Types.Config.default ~n:3) in
  (match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace));
  Alcotest.(check bool) "exhausted" false r.truncated

let test_ricart_exhaustive () =
  let module M = Mcheck.Make (Baselines.Ricart_agrawala) in
  let r = M.run ~requests_per_node:1 (Types.Config.default ~n:3) in
  (match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace));
  Alcotest.(check bool) "exhausted" false r.truncated

let test_suzuki_exhaustive () =
  let module M = Mcheck.Make (Baselines.Suzuki_kasami) in
  let r = M.run ~requests_per_node:1 (Types.Config.default ~n:3) in
  match r.violation with
  | None -> Alcotest.(check bool) "exhausted" false r.truncated
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace)

let test_raymond_exhaustive () =
  let module M = Mcheck.Make (Baselines.Raymond) in
  let r = M.run ~requests_per_node:2 (Types.Config.default ~n:3) in
  match r.violation with
  | None -> Alcotest.(check bool) "exhausted" false r.truncated
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace)

let test_lamport_fifo_exhaustive () =
  (* Lamport's algorithm assumes FIFO channels; under them it is
     exhaustively safe at n=3. *)
  let module M = Mcheck.Make (Baselines.Lamport) in
  let r = M.run ~fifo:true ~requests_per_node:1 (Types.Config.default ~n:3) in
  match r.violation with
  | None -> Alcotest.(check bool) "exhausted" false r.truncated
  | Some v -> Alcotest.failf "violation: %s" (String.concat newline v.trace)

let test_lamport_needs_fifo () =
  (* ...and without FIFO the checker finds the classic reordering
     violation (an ACK overtaking the REQUEST it acknowledges). *)
  let module M = Mcheck.Make (Baselines.Lamport) in
  let r = M.run ~fifo:false ~requests_per_node:1 (Types.Config.default ~n:3) in
  match r.violation with
  | Some { kind = `Safety; _ } -> ()
  | Some { kind = `Deadlock; _ } -> Alcotest.fail "wrong verdict"
  | None -> Alcotest.fail "expected the FIFO-dependence to be exposed"

let test_basic_fifo_also_ok () =
  (* The paper's algorithm needs no FIFO assumption; checking under
     FIFO (a smaller space) must of course also pass. *)
  let module M = Mcheck.Make (Basic) in
  let r = M.run ~fifo:true ~requests_per_node:1 (basic_cfg 2) in
  check_ok "n=2 fifo" r

let test_maekawa_bounded () =
  let module M = Mcheck.Make (Baselines.Maekawa) in
  let r =
    M.run ~max_states:150_000 ~requests_per_node:1
      (Types.Config.default ~n:3)
  in
  match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat "\n" v.trace)

(* Validate the checker itself: a deliberately broken algorithm in
   which the initial holder grants everyone immediately must be caught
   as a safety violation, and a sulking algorithm that never grants
   must be caught as a deadlock. *)
module Broken_grant_all = struct
  type state = { me : int; in_cs : bool; wanting : bool }
  type message = Go
  type timer = unit

  let name = "broken-grant-all"
  let init _ me = { me; in_cs = false; wanting = false }
  let rejoin = init

  let handle _ ~now:_ st input =
    match input with
    | Types.Request_cs ->
        (* Everybody may simply enter: blatantly unsafe. *)
        ({ st with in_cs = true; wanting = false }, [ Types.Enter_cs ])
    | Types.Cs_done -> ({ st with in_cs = false }, [])
    | Types.Receive _ | Types.Timer_fired _ -> (st, [])

  let in_cs st = st.in_cs
  let wants_cs st = st.wanting
  let message_kind Go = "GO"
  let pp_message ppf Go = Format.pp_print_string ppf "GO"
  let pp_state ppf st = Format.fprintf ppf "%d" st.me
end

module Broken_never_grant = struct
  type state = { me : int; wanting : bool }
  type message = Go
  type timer = unit

  let name = "broken-never-grant"
  let init _ me = { me; wanting = false }
  let rejoin = init

  let handle _ ~now:_ st input =
    match input with
    | Types.Request_cs -> ({ st with wanting = true }, [])
    | Types.Cs_done | Types.Receive _ | Types.Timer_fired _ -> (st, [])

  let in_cs _ = false
  let wants_cs st = st.wanting
  let message_kind Go = "GO"
  let pp_message ppf Go = Format.pp_print_string ppf "GO"
  let pp_state ppf st = Format.fprintf ppf "%d" st.me
end

let test_random_walks_basic () =
  (* Monte-Carlo exploration of a configuration too big to exhaust. *)
  let module M = Mcheck.Make (Basic) in
  let r =
    M.run_random ~walks:300 ~depth:300 ~requests_per_node:2 (basic_cfg 4)
  in
  (match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat "
" v.trace));
  Alcotest.(check bool) "explored states" true (r.states > 1_000)

let test_random_walks_monitored () =
  (* The monitored variant needs the retransmission timer for liveness
     (it drops over-τ requests and the monitor escape hatch relies on
     broadcasts that a quiescent system stops producing); a bounded
     retry budget keeps the walker's reachable space finite. *)
  let module M = Mcheck.Make (Monitored) in
  let cfg =
    { (Monitored.config ~n:3 ()) with Types.Config.max_retries = 2 }
  in
  let r = M.run_random ~walks:300 ~depth:300 ~requests_per_node:2 cfg in
  match r.violation with
  | None -> ()
  | Some v -> Alcotest.failf "violation: %s" (String.concat newline v.trace)

let test_monitored_without_retries_starves () =
  (* Pin the hole: with retries disabled, the walker finds the
     quiescent-starvation deadlock (a dropped over-τ request whose
     owner never sees another broadcast). This is the behaviour the
     paper's Section 4.1 leaves to 'appropriate timeouts'. *)
  let module M = Mcheck.Make (Monitored) in
  let cfg =
    { (Monitored.config ~n:3 ()) with Types.Config.max_retries = 0 }
  in
  let r = M.run_random ~walks:2000 ~depth:300 ~requests_per_node:2 cfg in
  match r.violation with
  | Some { kind = `Deadlock; _ } -> ()
  | Some { kind = `Safety; trace } ->
      Alcotest.failf "unexpected safety violation: %s"
        (String.concat newline trace)
  | None ->
      Alcotest.fail
        "expected the known starvation deadlock to be reachable"

let test_detects_safety_violation () =
  let module M = Mcheck.Make (Broken_grant_all) in
  let r = M.run ~requests_per_node:1 (Types.Config.default ~n:2) in
  match r.violation with
  | Some { kind = `Safety; _ } -> ()
  | Some { kind = `Deadlock; _ } -> Alcotest.fail "wrong verdict"
  | None -> Alcotest.fail "missed an obvious violation"

let test_random_walks_find_planted_bug () =
  (* The random walker must also catch the planted violation. *)
  let module M = Mcheck.Make (Broken_grant_all) in
  let r =
    M.run_random ~walks:200 ~depth:50 ~requests_per_node:1
      (Types.Config.default ~n:2)
  in
  (match r.violation with
  | Some { kind = `Safety; _ } -> ()
  | _ -> Alcotest.fail "random walker missed the planted violation");
  ()

let test_detects_deadlock () =
  let module M = Mcheck.Make (Broken_never_grant) in
  let r = M.run ~requests_per_node:1 (Types.Config.default ~n:2) in
  match r.violation with
  | Some { kind = `Deadlock; trace } ->
      Alcotest.(check bool) "trace nonempty" true (trace <> [])
  | Some { kind = `Safety; _ } -> Alcotest.fail "wrong verdict"
  | None -> Alcotest.fail "missed an obvious deadlock"

let suite =
  ( "mcheck",
    [
      Alcotest.test_case "basic n=2 exhaustive" `Quick test_basic_n2_exhaustive;
      Alcotest.test_case "basic n=2 two requests (bounded)" `Slow
        test_basic_n2_r2_bounded;
      Alcotest.test_case "basic n=3 (bounded)" `Slow test_basic_n3_bounded;
      Alcotest.test_case "basic n=2 (timers)" `Quick test_basic_n2_no_timers;
      Alcotest.test_case "central n=3 exhaustive" `Quick
        test_central_exhaustive;
      Alcotest.test_case "ricart-agrawala n=3 exhaustive" `Quick
        test_ricart_exhaustive;
      Alcotest.test_case "suzuki-kasami n=3 exhaustive" `Quick
        test_suzuki_exhaustive;
      Alcotest.test_case "raymond n=3 exhaustive" `Slow
        test_raymond_exhaustive;
      Alcotest.test_case "maekawa n=3 (bounded)" `Slow test_maekawa_bounded;
      Alcotest.test_case "lamport n=3 exhaustive (FIFO)" `Quick
        test_lamport_fifo_exhaustive;
      Alcotest.test_case "lamport unsafe without FIFO" `Quick
        test_lamport_needs_fifo;
      Alcotest.test_case "basic n=2 under FIFO" `Quick
        test_basic_fifo_also_ok;
      Alcotest.test_case "random walks: basic n=4" `Slow
        test_random_walks_basic;
      Alcotest.test_case "random walks: monitored n=3" `Slow
        test_random_walks_monitored;
      Alcotest.test_case "monitored needs retries (pinned hole)" `Slow
        test_monitored_without_retries_starves;
      Alcotest.test_case "random walks find planted bug" `Quick
        test_random_walks_find_planted_bug;
      Alcotest.test_case "checker finds planted violation" `Quick
        test_detects_safety_violation;
      Alcotest.test_case "checker finds planted deadlock" `Quick
        test_detects_deadlock;
    ] )
