test/test_extensions.ml: Alcotest Analysis Basic Dmutex Experiments Filename List Printf Sim_runner Simkit Str_present String Sys Types
