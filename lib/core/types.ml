(** Shared vocabulary for every mutual-exclusion algorithm in this
    repository.

    All algorithms — the paper's arbiter protocol and the six baselines
    — are expressed as {e pure} state machines over the {!input} /
    {!effect_} types below, which is what lets a single implementation
    be driven by the discrete-event simulator ({!Sim_runner}), by the
    real TCP runtime ([Netkit.Node_runner]), and by the exhaustive
    model checker ([Mcheck]). *)

type node_id = int
(** Nodes are numbered [0 .. n-1]. The paper's "node 1" is our node
    [0]. *)

(** Access mode of a critical-section request. The paper grants one
    exclusive CS at a time; [Shared] generalizes the grant pipeline to
    the partial-mutual-exclusion regime — a maximal run of compatible
    readers at the head of the Q-list is served as {e one} grant batch.
    Two [Shared] requests are compatible; anything involving
    [Exclusive] is not. [Exclusive] is the default everywhere, which
    pins single-mode behavior bit-identical to the original protocol. *)
type mode = Shared | Exclusive

let string_of_mode = function Shared -> "shared" | Exclusive -> "exclusive"

(** Protocol configuration. Field names follow the paper's notation
    where one exists. *)
module Config = struct
  type t = {
    n : int;  (** Number of nodes, [N]. *)
    t_msg : float;  (** Message transmission time [T_msg] (analysis & timeouts). *)
    t_exec : float;  (** CS execution time [T_exec] (driven by the runner). *)
    t_collect : float;  (** Request collection phase duration [T_req]. *)
    t_forward : float;  (** Request forwarding phase duration [T_fwd]. *)
    initial_arbiter : node_id;  (** The node assigned arbiter at start-up. *)
    skip_new_arbiter_to_tail : bool;
        (** Section 3.1 optimization: suppress the NEW-ARBITER broadcast
            when the Q-list is a singleton (the token alone proves
            arbitership to its receiver). Default [false], matching the
            accounting of Eq. 1. *)
    monitor : node_id option;
        (** Enable the Section 4.1 starvation-free variant with this
            monitor node. *)
    rotate_monitor : bool;
        (** Section 5.1: rotate the monitor role round-robin via the
            NEW-ARBITER broadcast. Only meaningful with [monitor]. *)
    forward_threshold : int;
        (** τ: forwarding hop budget for a request, and the number of
            consecutive NEW-ARBITER misses after which a requester
            resubmits to the monitor. *)
    window : int;
        (** Moving-window length (in NEW-ARBITER observations) for the
            average Q-list size that adapts the monitor period. *)
    retransmit_misses : int;
        (** Consecutive NEW-ARBITER broadcasts that may omit an
            outstanding request before the requester retransmits
            (Section 6, Lost Request). [2] tolerates the benign case of
            a request still in flight or being forwarded when a
            broadcast goes out. *)
    retry_timeout : float;
        (** Requester's blind retransmission timeout (Section 6:
            "appropriate timeouts may also be used to retransmit a
            request"). Without it a dropped request whose owner never
            observes another NEW-ARBITER broadcast would wait forever —
            the model checker exhibits exactly that deadlock. *)
    max_retries : int;
        (** Bound on timeout-driven retransmissions per request;
            [-1] = unbounded (production default). The model checker
            sets a small bound to keep its state space finite. *)
    priorities : int array option;
        (** Section 5.2 static priorities (larger = more urgent). The
            arbiter stably sorts the Q-list by priority at dispatch. *)
    writer_priority : bool;
        (** Read-write mode policy: stably sort each dispatched Q-list
            writers ([Exclusive]) first, reusing the Section 5.2
            machinery with mode as the priority key. Keeps writers from
            starving behind a steady reader stream, and groups readers
            adjacently so maximal batches form. Grouping is per
            dispatch window, so a reader arriving after a writer waits
            at most one window — bounded, not starvation. Ignored when
            [priorities] is set (explicit priorities win). *)
    least_served_first : bool;
        (** Section 5.1's stricter fairness ("a scheme similar to
            Suzuki-Kasami's"): the arbiter stably sorts each dispatched
            Q-list so nodes with fewer past grants (smaller entries in
            the token's L vector) go first. Mutually composable with
            FCFS (it is the tie-break) but ignored when [priorities]
            is set. *)
    recovery : bool;
        (** Enable the Section 6 failure-recovery machinery (token
            timeouts, WARNING / two-phase invalidation, arbiter
            takeover). *)
    token_timeout : float;
        (** Requester's patience for the token after its request was
            confirmed scheduled. *)
    enquiry_timeout : float;  (** Arbiter's patience for ENQUIRY replies. *)
    arbiter_timeout : float;
        (** Previous arbiter's patience for evidence that the new
            arbiter is alive. *)
  }

  (** Defaults mirror the paper's simulation: [t_msg = t_forward =
      t_exec = 0.1], [t_collect = 0.1], node 0 as initial arbiter, no
      monitor, no priorities, recovery off. *)
  let default ~n =
    if n <= 0 then invalid_arg "Config.default: n must be positive";
    {
      n;
      t_msg = 0.1;
      t_exec = 0.1;
      t_collect = 0.1;
      t_forward = 0.1;
      initial_arbiter = 0;
      skip_new_arbiter_to_tail = false;
      monitor = None;
      rotate_monitor = false;
      forward_threshold = 3;
      window = 16;
      retransmit_misses = 2;
      retry_timeout = 4.0;
      max_retries = -1;
      priorities = None;
      writer_priority = false;
      least_served_first = false;
      recovery = false;
      token_timeout = 5.0;
      enquiry_timeout = 1.0;
      arbiter_timeout = 5.0;
    }

  let validate t =
    if t.n <= 0 then invalid_arg "Config: n must be positive";
    if t.initial_arbiter < 0 || t.initial_arbiter >= t.n then
      invalid_arg "Config: initial_arbiter out of range";
    (match t.monitor with
    | Some m when m < 0 || m >= t.n ->
        invalid_arg "Config: monitor out of range"
    | _ -> ());
    (match t.priorities with
    | Some p when Array.length p <> t.n ->
        invalid_arg "Config: priorities array must have length n"
    | _ -> ());
    if t.t_collect < 0.0 || t.t_forward < 0.0 || t.t_exec < 0.0 then
      invalid_arg "Config: negative duration";
    t
end

(** Events fed into a node's state machine by whichever runtime hosts
    it. *)
type ('msg, 'timer) input =
  | Request_cs  (** The local application wants the critical section. *)
  | Request_shared_cs
      (** The local application wants the critical section in [Shared]
          (read) mode. Algorithms without a shared-mode path treat this
          exactly like {!Request_cs}. *)
  | Cs_done  (** The local application left the critical section. *)
  | Receive of node_id * 'msg  (** A message arrived from a peer. *)
  | Timer_fired of 'timer  (** A timer armed via [Set_timer] expired. *)

(** Observable metric events emitted by algorithms via [Note]; the
    runtimes count them. *)
type note =
  | Forwarded  (** A REQUEST was relayed during the forwarding phase. *)
  | Dropped_request  (** A REQUEST was discarded (late or over τ hops). *)
  | Stashed
      (** A REQUEST reached a node that is not (or not yet) the
          arbiter; it is parked and handed to the next known arbiter
          instead of being dropped. *)
  | Stash_forwarded  (** A parked REQUEST was passed along. *)
  | Retransmitted  (** A requester resent after a NEW-ARBITER miss. *)
  | Resubmitted_to_monitor  (** Starvation escape hatch used (§4.1). *)
  | Became_arbiter
  | Monitor_pass  (** The token was routed through the monitor. *)
  | Queue_length of int  (** Q-list length at dispatch. *)
  | Read_batch of int
      (** A shared grant batch of this many readers was launched as one
          grant (emitted only for batches of two or more; a batch of
          one rides the unchanged exclusive path). *)
  | Phase of string * float
      (** A protocol phase (e.g. ["collection"], ["forwarding"]) ran
          for the given duration in the emitting node's clock. *)
  | Recovery_started  (** Two-phase token invalidation began (§6). *)
  | Token_regenerated  (** A lost token was replaced (§6). *)
  | Arbiter_takeover  (** Previous arbiter proclaimed itself (§6). *)
  | Membership of { vepoch : int; members : (node_id * string) list }
      (** The membership view changed (or was re-announced): epoch
          number and the member set with each member's opaque address
          metadata. Runtimes re-point transports, liveness monitors
          and gauges off this note. *)
  | Custom of string

let string_of_note = function
  | Forwarded -> "forwarded"
  | Dropped_request -> "dropped-request"
  | Stashed -> "stashed"
  | Stash_forwarded -> "stash-forwarded"
  | Retransmitted -> "retransmitted"
  | Resubmitted_to_monitor -> "resubmitted-to-monitor"
  | Became_arbiter -> "became-arbiter"
  | Monitor_pass -> "monitor-pass"
  | Queue_length _ -> "queue-length"
  | Read_batch _ -> "read-batch"
  | Phase (p, _) -> "phase-" ^ p
  | Recovery_started -> "recovery-started"
  | Token_regenerated -> "token-regenerated"
  | Arbiter_takeover -> "arbiter-takeover"
  | Membership _ -> "membership"
  | Custom s -> s

(** Actions requested of the hosting runtime by a state-machine step. *)
type ('msg, 'timer) effect_ =
  | Send of node_id * 'msg
  | Broadcast of 'msg  (** Deliver to every node except the sender. *)
  | Enter_cs
      (** Start executing the critical section; the runtime answers
          with [Cs_done] when the application (or the simulated
          [t_exec]) finishes. *)
  | Set_timer of 'timer * float
      (** Arm (or re-arm) the timer identified by the key. *)
  | Cancel_timer of 'timer
  | Note of note

(** Which injected faults an algorithm models honestly. A host must
    consult this before injecting: crashing a node running an
    algorithm whose state machine has no recovery path would silently
    measure garbage (the run wedges or violates safety in ways the
    original algorithm never claimed to survive). *)
type fault_support = { crash_stop : bool; message_loss : bool }

exception Unsupported_fault of string
(** Raised by a host when a fault is injected into an algorithm whose
    {!fault_support} does not cover it. The payload names the
    algorithm and the fault, e.g. ["raymond does not model crash-stop
    failures"]. *)

(** The interface every algorithm implements. Implementations must be
    pure: [handle] returns a fresh state and never mutates. *)
module type ALGO = sig
  type state
  type message
  type timer

  val name : string

  val fault_support : fault_support
  (** Which injected faults this algorithm models. Hosts raise
      {!Unsupported_fault} rather than inject an unmodelled fault. *)

  val init : Config.t -> node_id -> state
  (** Initial state of one node. *)

  val rejoin : Config.t -> node_id -> state
  (** State for a node restarting after a fail-stop crash: like
      [init], but a rejoining node must never resurrect authority it
      lost — in particular it must not re-manufacture the token or a
      coordinator role it held at start-up. *)

  val handle :
    Config.t ->
    now:float ->
    state ->
    (message, timer) input ->
    state * (message, timer) effect_ list
  (** One atomic step: consume an input, produce the successor state
      and the effects to apply. [now] is the host's current time; pure
      algorithms may only use it to compute relative deadlines. *)

  val in_cs : state -> bool
  (** Whether this node believes it is inside the critical section
      (used by safety checks). *)

  val cs_mode : state -> mode
  (** The mode of the node's current (or imminent) CS occupancy:
      [Shared] only while the node participates in a shared grant
      batch. Safety checks allow two nodes in the CS simultaneously
      only when both report [Shared]. Algorithms without a shared-mode
      path return [Exclusive] unconditionally. *)

  val wants_cs : state -> bool
  (** Whether this node has an unserved request (used by liveness
      checks). *)

  val message_kind : message -> string
  (** Short label for per-kind message accounting, e.g. ["REQUEST"]. *)

  val pp_message : Format.formatter -> message -> unit
  val pp_state : Format.formatter -> state -> unit
end
