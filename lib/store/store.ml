exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type custody = No_token | Holding of { epoch : int; shared : bool }

type view = {
  epoch : int;
  election : int;
  enq_round : int;
  next_seq : int;
  granted : int array;
  custody : custody;
  mview : (int * (int * string) list) option;
}

type stats = {
  wal_records : int;
  wal_bytes : int;
  snapshots : int;
  replayed : int;
  last_flush : float;
}

let empty_view ~n =
  {
    epoch = 0;
    election = 0;
    enq_round = 0;
    next_seq = 0;
    granted = Array.make n (-1);
    custody = No_token;
    mview = None;
  }

let copy_view v = { v with granted = Array.copy v.granted }

(* ------------------------------------------------------------------ *)
(* Lock-key <-> directory-name encoding                                *)

let is_dir_safe = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true
  | _ -> false

let hex_val = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> corrupt "lock-key directory name: invalid hex digit %C" c

let key_of_dir_name name =
  let n = String.length name in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match name.[!i] with
    | '%' ->
        if !i + 2 >= n then
          corrupt "lock-key directory name %S: truncated %%-escape" name;
        let hi = hex_val name.[!i + 1] and lo = hex_val name.[!i + 2] in
        Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
        i := !i + 2
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let dir_name_of_key key =
  let buf = Buffer.create (String.length key + 8) in
  String.iter
    (fun c ->
      if is_dir_safe c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    key;
  let name = Buffer.contents buf in
  (* Round-trip guard: a key whose encoding does not decode back to
     the exact original would let two distinct keys share a state
     directory (silent cross-feeding) — fail loudly instead. *)
  let back = try key_of_dir_name name with Corrupt e -> e in
  if not (String.equal back key) then
    corrupt "lock-key encoding round-trip mismatch: %S encoded as %S decodes \
             to %S"
      key name back;
  name

(* ------------------------------------------------------------------ *)
(* Fencing tokens                                                      *)

(* A fencing token packs the token-regeneration epoch above a
   per-epoch grant counter in one non-negative OCaml int:
   [epoch * 2^40 + minor]. Both components are already persisted
   (epoch directly, the grant counter as the [L] vector whose marked
   sum only grows within an epoch), so a restarted node can never
   reissue a smaller token than one it durably recorded. 2^40 grants
   per epoch and 2^22 epochs fit a 63-bit int with room to spare. *)
let fencing_minor_bits = 40
let fencing_minor_mask = (1 lsl fencing_minor_bits) - 1

let fencing ~epoch ~minor =
  if epoch < 0 then invalid_arg "Store.fencing: negative epoch";
  if minor < 0 then invalid_arg "Store.fencing: negative minor";
  (epoch lsl fencing_minor_bits) lor (minor land fencing_minor_mask)

let fencing_epoch f = f lsr fencing_minor_bits
let fencing_minor f = f land fencing_minor_mask

let grant_sum granted =
  Array.fold_left (fun acc s -> if s >= 0 then acc + s + 1 else acc) 0 granted

let fencing_floor v = fencing ~epoch:v.epoch ~minor:(grant_sum v.granted)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s ~pos ~len =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* [version:u8 | tag:u8 | len:u16 | payload | crc32:u32], the CRC
   taken over everything before it. Tag 0 is the full-view snapshot;
   tags 1..6 are the WAL's field deltas. *)

let tag_snapshot = 0
let tag_epoch = 1
let tag_election = 2
let tag_enq_round = 3
let tag_next_seq = 4
let tag_served = 5
let tag_custody = 6

(* Lock-key stamp: first record of every fresh WAL, naming the lock
   instance the log belongs to. A key-namespaced deployment points
   each instance at its own subdirectory; the stamp (and its twin
   embedded in the snapshot) turns a mis-wired directory into a loud
   {!Corrupt} instead of silently feeding one lock's epochs to
   another. *)
let tag_key = 7

(* Committed membership view: a restart must rejoin the *current*
   view, not the birth view, or it would knock on excised peers and
   miss joined ones. *)
let tag_mview = 8

let frame tag payload =
  let len = String.length payload in
  if len > 0xFFFF then invalid_arg "Store: record payload too large";
  let b = Bytes.create (4 + len + 4) in
  Bytes.set_uint8 b 0 Wire.format_version;
  Bytes.set_uint8 b 1 tag;
  Bytes.set_uint16_be b 2 len;
  Bytes.blit_string payload 0 b 4 len;
  let crc = crc32 (Bytes.unsafe_to_string b) ~pos:0 ~len:(4 + len) in
  Bytes.set_int32_be b (4 + len) (Int32.of_int crc);
  Bytes.to_string b

(* Parse one frame at [off]. [None] means the tail is torn: too short
   for a header, shorter than its declared length, or failing its CRC
   — all the shapes a crash mid-append leaves behind. A frame whose
   CRC is intact but whose version byte or structure is wrong is not
   crash damage and raises {!Corrupt}. *)
let parse_frame ~what s off =
  let avail = String.length s - off in
  if avail < 8 then None
  else
    let len = String.get_uint16_be s (off + 2) in
    if avail < 4 + len + 4 then None
    else
      let stored =
        Int32.to_int (String.get_int32_be s (off + 4 + len)) land 0xFFFFFFFF
      in
      if crc32 s ~pos:off ~len:(4 + len) <> stored then None
      else begin
        let v = String.get_uint8 s off in
        if v <> Wire.format_version then
          corrupt "%s: record format v%d, this binary speaks v%d" what v
            Wire.format_version;
        let tag = String.get_uint8 s (off + 1) in
        Some (tag, String.sub s (off + 4) len, off + 8 + len)
      end

let enc_payload f =
  let e = Wire.Enc.create () in
  f e;
  Wire.Enc.contents e

let enc_custody e = function
  | No_token -> Wire.Enc.u8 e 0
  | Holding { epoch; shared } ->
      Wire.Enc.u8 e 1;
      Wire.Enc.int_ e epoch;
      Wire.Enc.u8 e (if shared then 1 else 0)

let dec_custody d =
  match Wire.Dec.u8 d with
  | 0 -> No_token
  | 1 ->
      let epoch = Wire.Dec.int_ d in
      let shared = Wire.Dec.u8 d <> 0 in
      Holding { epoch; shared }
  | c -> raise (Wire.Malformed (Printf.sprintf "invalid custody tag %d" c))

let enc_mview e mv =
  Wire.Enc.option e
    (fun e (vnum, members) ->
      Wire.Enc.int_ e vnum;
      Wire.Enc.list e
        (fun e (mid, addr) ->
          Wire.Enc.int_ e mid;
          Wire.Enc.string e addr)
        members)
    mv

let dec_mview d =
  Wire.Dec.option d (fun d ->
      let vnum = Wire.Dec.int_ d in
      let members =
        Wire.Dec.list d (fun d ->
            let mid = Wire.Dec.int_ d in
            let addr = Wire.Dec.string d in
            (mid, addr))
      in
      (vnum, members))

let snapshot_payload ~n ~key v =
  enc_payload (fun e ->
      Wire.Enc.int_ e n;
      Wire.Enc.string e key;
      Wire.Enc.int_ e v.epoch;
      Wire.Enc.int_ e v.election;
      Wire.Enc.int_ e v.enq_round;
      Wire.Enc.int_ e v.next_seq;
      Wire.Enc.array e Wire.Enc.int_ v.granted;
      enc_custody e v.custody;
      enc_mview e v.mview)

let decode_snapshot ~n ~key payload =
  match
    let d = Wire.Dec.of_string payload in
    let stored_n = Wire.Dec.int_ d in
    let stored_key = Wire.Dec.string d in
    let epoch = Wire.Dec.int_ d in
    let election = Wire.Dec.int_ d in
    let enq_round = Wire.Dec.int_ d in
    let next_seq = Wire.Dec.int_ d in
    let granted = Wire.Dec.array d Wire.Dec.int_ in
    let custody = dec_custody d in
    let mview = dec_mview d in
    Wire.Dec.check_eof d;
    ( stored_n,
      stored_key,
      { epoch; election; enq_round; next_seq; granted; custody; mview } )
  with
  | stored_n, stored_key, v ->
      if stored_key <> key then
        corrupt "snapshot written for lock key %S, this store opened for %S"
          stored_key key;
      (* A store that never witnessed a committed view change still
         belongs to the birth cluster, where the size is an invariant.
         Once an mview is recorded the cluster has churned and the
         granted vector may legitimately exceed the birth size. *)
      if v.mview = None then begin
        if stored_n <> n then
          corrupt "snapshot written for a %d-node cluster, this one has %d"
            stored_n n;
        if Array.length v.granted <> n then
          corrupt "snapshot granted vector has %d entries, expected %d"
            (Array.length v.granted) n
      end;
      v
  | exception Wire.Malformed m -> corrupt "snapshot payload: %s" m

(* Fold one CRC-intact WAL record into [base]. Payload decode errors
   on an intact record mean a foreign format, not crash damage. *)
let apply_record ~n base (tag, payload) =
  match
    let d = Wire.Dec.of_string payload in
    let r =
      if tag = tag_epoch then { base with epoch = Wire.Dec.int_ d }
      else if tag = tag_election then { base with election = Wire.Dec.int_ d }
      else if tag = tag_enq_round then
        { base with enq_round = Wire.Dec.int_ d }
      else if tag = tag_next_seq then { base with next_seq = Wire.Dec.int_ d }
      else if tag = tag_served then begin
        let node = Wire.Dec.int_ d in
        let seq = Wire.Dec.int_ d in
        (* Joined nodes carry ids beyond the birth size, so the upper
           bound is soft: grow the vector rather than reject. An id
           that is negative or absurdly large is still corruption. *)
        if node < 0 || node >= n + 4096 then
          corrupt "WAL served record for node %d of %d" node n;
        let len = Array.length base.granted in
        let granted =
          if node < len then Array.copy base.granted
          else Array.append base.granted (Array.make (node + 1 - len) (-1))
        in
        granted.(node) <- seq;
        { base with granted }
      end
      else if tag = tag_custody then { base with custody = dec_custody d }
      else if tag = tag_mview then { base with mview = dec_mview d }
      else corrupt "unknown WAL record tag %d" tag
    in
    Wire.Dec.check_eof d;
    r
  with
  | r -> r
  | exception Wire.Malformed m -> corrupt "WAL record payload: %s" m

(* ------------------------------------------------------------------ *)
(* The store                                                           *)

(* Registry handles resolved once at [open_]: the store's own [stats]
   record stays authoritative, these mirror the same activity into the
   canonical [Dmutex_obs.Names] series. *)
type obs_handles = {
  o_appends : Dmutex_obs.Registry.Counter.handle;
  o_fsync : Dmutex_obs.Registry.Histogram.handle;
  o_snapshots : Dmutex_obs.Registry.Counter.handle;
}

type t = {
  dir : string;
  n : int;
  key : string;
  wal_limit : int;
  obs : obs_handles option;
  mu : Mutex.t;
  mutable wal_fd : Unix.file_descr option;
  mutable cur : view option;  (** Last durable view. *)
  mutable wal_records : int;
  mutable wal_bytes : int;
  mutable snapshots : int;
  mutable replayed : int;
  mutable last_flush : float;
}

let snapshot_path t = Filename.concat t.dir "snapshot.bin"
let wal_path t = Filename.concat t.dir "wal.bin"

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let open_ ?(wal_limit = 4096) ?(key = "") ?obs ~dir ~n () =
  if n <= 0 then invalid_arg "Store.open_: n must be positive";
  if wal_limit <= 0 then invalid_arg "Store.open_: wal_limit must be positive";
  (try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (Unix.ENOENT, _, _) ->
      invalid_arg (Printf.sprintf "Store.open_: parent of %s missing" dir));
  let t =
    {
      dir;
      n;
      key;
      wal_limit;
      obs =
        Option.map
          (fun reg ->
            let open Dmutex_obs in
            {
              o_appends =
                Registry.Counter.get reg Names.store_wal_appends_total;
              o_fsync = Registry.Histogram.get reg Names.store_fsync_seconds;
              o_snapshots =
                Registry.Counter.get reg Names.store_snapshots_total;
            })
          obs;
      mu = Mutex.create ();
      wal_fd = None;
      cur = None;
      wal_records = 0;
      wal_bytes = 0;
      snapshots = 0;
      replayed = 0;
      last_flush = 0.0;
    }
  in
  (* Recover: snapshot first, then replay the WAL over it, truncating
     any torn tail to the last intact record. *)
  let base =
    match read_file (snapshot_path t) with
    | None -> None
    | Some raw -> (
        match parse_frame ~what:"snapshot" raw 0 with
        | None -> corrupt "snapshot truncated or CRC mismatch"
        | Some (tag, payload, next) ->
            if tag <> tag_snapshot then
              corrupt "snapshot file holds record tag %d" tag;
            if next <> String.length raw then
              corrupt "snapshot file has %d trailing bytes"
                (String.length raw - next);
            Some (decode_snapshot ~n ~key payload))
  in
  let wal_raw = Option.value ~default:"" (read_file (wal_path t)) in
  let check_key_record payload =
    match
      let d = Wire.Dec.of_string payload in
      let k = Wire.Dec.string d in
      Wire.Dec.check_eof d;
      k
    with
    | k ->
        if k <> key then
          corrupt "WAL written for lock key %S, this store opened for %S" k
            key
    | exception Wire.Malformed m -> corrupt "WAL key record payload: %s" m
  in
  let rec replay view off =
    match parse_frame ~what:"WAL" wal_raw off with
    | None -> (view, off)
    | Some (tag, payload, next) ->
        if tag = tag_snapshot then corrupt "snapshot record inside the WAL";
        t.replayed <- t.replayed + 1;
        if tag = tag_key then begin
          check_key_record payload;
          replay view next
        end
        else
          let base = match view with Some v -> v | None -> empty_view ~n in
          replay (Some (apply_record ~n base (tag, payload))) next
  in
  let view, valid_len = replay base 0 in
  if valid_len < String.length wal_raw then begin
    (* Torn tail: drop it so the next append starts on a frame
       boundary. *)
    let fd = Unix.openfile (wal_path t) [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd valid_len;
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  end;
  t.cur <- Option.map copy_view view;
  t.wal_records <- t.replayed;
  t.wal_bytes <- valid_len;
  t.wal_fd <-
    Some
      (Unix.openfile (wal_path t)
         [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
         0o644);
  t

let view t =
  with_mu t (fun () -> Option.map copy_view t.cur)

let stats t =
  with_mu t (fun () ->
      {
        wal_records = t.wal_records;
        wal_bytes = t.wal_bytes;
        snapshots = t.snapshots;
        replayed = t.replayed;
        last_flush = t.last_flush;
      })

(* Delta frames turning [old] into [v]; [old = None] diffs against the
   never-ran view so a first record persists every live field. *)
let delta_frames ~n old v =
  if Array.length v.granted < n && v.mview = None then
    invalid_arg "Store.record: granted vector length mismatch";
  let old = match old with Some o -> o | None -> empty_view ~n in
  let fs = ref [] in
  let add tag payload = fs := frame tag payload :: !fs in
  if v.epoch <> old.epoch then
    add tag_epoch (enc_payload (fun e -> Wire.Enc.int_ e v.epoch));
  if v.election <> old.election then
    add tag_election (enc_payload (fun e -> Wire.Enc.int_ e v.election));
  if v.enq_round <> old.enq_round then
    add tag_enq_round (enc_payload (fun e -> Wire.Enc.int_ e v.enq_round));
  if v.next_seq <> old.next_seq then
    add tag_next_seq (enc_payload (fun e -> Wire.Enc.int_ e v.next_seq));
  let old_served j =
    if j < Array.length old.granted then old.granted.(j) else -1
  in
  Array.iteri
    (fun j seq ->
      if seq <> old_served j then
        add tag_served
          (enc_payload (fun e ->
               Wire.Enc.int_ e j;
               Wire.Enc.int_ e seq)))
    v.granted;
  if v.custody <> old.custody then
    add tag_custody (enc_payload (fun e -> enc_custody e v.custody));
  if v.mview <> old.mview then
    add tag_mview (enc_payload (fun e -> enc_mview e v.mview));
  List.rev !fs

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec push off =
    if off < Bytes.length b then
      push (off + Unix.write fd b off (Bytes.length b - off))
  in
  push 0

(* Must hold [t.mu]. *)
let flush_locked t =
  match (t.cur, t.wal_fd) with
  | None, _ | _, None -> ()
  | Some v, Some wal_fd ->
      let tmp = Filename.concat t.dir "snapshot.tmp" in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      write_all fd (frame tag_snapshot (snapshot_payload ~n:t.n ~key:t.key v));
      Unix.fsync fd;
      Unix.close fd;
      Unix.rename tmp (snapshot_path t);
      fsync_dir t.dir;
      Unix.ftruncate wal_fd 0;
      (try Unix.fsync wal_fd with Unix.Unix_error _ -> ());
      t.wal_records <- 0;
      t.wal_bytes <- 0;
      t.snapshots <- t.snapshots + 1;
      (match t.obs with
      | Some h -> Dmutex_obs.Registry.Counter.incr h.o_snapshots
      | None -> ());
      t.last_flush <- Unix.gettimeofday ()

let record t v =
  with_mu t (fun () ->
      match t.wal_fd with
      | None -> ()
      | Some fd ->
          let frames = delta_frames ~n:t.n t.cur v in
          if frames <> [] then begin
            (* A fresh WAL opens with the lock-key stamp so replay can
               verify the log belongs to this instance. *)
            let frames =
              if t.wal_bytes = 0 then
                frame tag_key
                  (enc_payload (fun e -> Wire.Enc.string e t.key))
                :: frames
              else frames
            in
            let batch = String.concat "" frames in
            write_all fd batch;
            let t0 = Unix.gettimeofday () in
            Unix.fsync fd;
            (match t.obs with
            | Some h ->
                Dmutex_obs.Registry.Counter.add h.o_appends
                  (List.length frames);
                Dmutex_obs.Registry.Histogram.observe h.o_fsync
                  (Unix.gettimeofday () -. t0)
            | None -> ());
            t.wal_records <- t.wal_records + List.length frames;
            t.wal_bytes <- t.wal_bytes + String.length batch;
            t.last_flush <- Unix.gettimeofday ();
            t.cur <- Some (copy_view v);
            if t.wal_records > t.wal_limit then flush_locked t
          end)

let flush t = with_mu t (fun () -> flush_locked t)

let close t =
  with_mu t (fun () ->
      match t.wal_fd with
      | None -> ()
      | Some fd ->
          flush_locked t;
          t.wal_fd <- None;
          (try Unix.close fd with Unix.Unix_error _ -> ()))

let abort t =
  with_mu t (fun () ->
      match t.wal_fd with
      | None -> ()
      | Some fd ->
          t.wal_fd <- None;
          (try Unix.close fd with Unix.Unix_error _ -> ()))
