lib/simkit/timeline.ml: Array Bytes Float Format Hashtbl List Printf String Trace
