open Simkit

let make ?(n = 4) ?(latency = Network.Constant 0.1) () =
  let e = Engine.create () in
  let rng = Rng.create 1 in
  let net = Network.create e ~n ~rng ~latency in
  let log = ref [] in
  Network.set_handler net (fun ~src ~dst msg ->
      log := (Engine.now e, src, dst, msg) :: !log);
  (e, net, log)

let test_delivery_delay () =
  let e, net, log = make () in
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  match !log with
  | [ (t, 0, 1, "hello") ] ->
      Alcotest.(check (float 1e-9)) "constant latency" 0.1 t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_broadcast_count () =
  let e, net, log = make ~n:5 () in
  Network.broadcast net ~src:2 "x";
  Engine.run e;
  Alcotest.(check int) "n-1 deliveries" 4 (List.length !log);
  Alcotest.(check int) "n-1 sends counted" 4 (Network.sent net);
  Alcotest.(check bool) "sender not included" true
    (List.for_all (fun (_, _, dst, _) -> dst <> 2) !log)

let test_self_send_uncounted () =
  let e, net, log = make () in
  Network.send net ~src:3 ~dst:3 "self";
  Engine.run e;
  Alcotest.(check int) "delivered" 1 (List.length !log);
  Alcotest.(check int) "not counted" 0 (Network.sent net)

let test_loss () =
  let e, net, log = make () in
  Network.set_loss net 1.0;
  for _ = 1 to 10 do
    Network.send net ~src:0 ~dst:1 "m"
  done;
  Engine.run e;
  Alcotest.(check int) "all dropped" 0 (List.length !log);
  Alcotest.(check int) "drop counter" 10 (Network.dropped net);
  Alcotest.(check int) "sent counter includes drops" 10 (Network.sent net)

let test_interceptor () =
  let e, net, log = make () in
  Network.set_interceptor net (fun ~src:_ ~dst:_ msg ->
      match msg with
      | "drop-me" -> Network.Drop
      | "slow" -> Network.Delay 1.0
      | _ -> Network.Deliver);
  Network.send net ~src:0 ~dst:1 "drop-me";
  Network.send net ~src:0 ~dst:1 "slow";
  Network.send net ~src:0 ~dst:1 "normal";
  Engine.run e;
  let times = List.map (fun (t, _, _, m) -> (m, t)) !log in
  Alcotest.(check bool) "dropped" true (not (List.mem_assoc "drop-me" times));
  Alcotest.(check (float 1e-9)) "delayed" 1.1 (List.assoc "slow" times);
  Alcotest.(check (float 1e-9)) "normal" 0.1 (List.assoc "normal" times);
  Network.clear_interceptor net;
  Network.send net ~src:0 ~dst:1 "drop-me";
  Engine.run e;
  Alcotest.(check int) "interceptor cleared" 3 (List.length !log)

let test_crash_recover () =
  let e, net, log = make () in
  Network.crash net 1;
  Alcotest.(check bool) "is crashed" true (Network.is_crashed net 1);
  Network.send net ~src:0 ~dst:1 "lost";
  Network.send net ~src:1 ~dst:0 "also lost";
  Engine.run e;
  Alcotest.(check int) "no deliveries" 0 (List.length !log);
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 "ok";
  Engine.run e;
  Alcotest.(check int) "delivered after recover" 1 (List.length !log)

let test_crash_in_flight () =
  let e, net, log = make () in
  Network.send net ~src:0 ~dst:1 "in-flight";
  ignore (Engine.schedule e ~delay:0.05 (fun _ -> Network.crash net 1));
  Engine.run e;
  Alcotest.(check int) "dropped on arrival at dead node" 0 (List.length !log)

let test_partition_heal () =
  let e, net, log = make ~n:4 () in
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Network.send net ~src:0 ~dst:1 "same-side";
  Network.send net ~src:0 ~dst:2 "cross";
  Engine.run e;
  Alcotest.(check int) "only same side delivered" 1 (List.length !log);
  Network.heal net;
  Network.send net ~src:0 ~dst:2 "healed";
  Engine.run e;
  Alcotest.(check int) "healed" 2 (List.length !log)

let test_uniform_latency () =
  let e, net, log = make ~latency:(Network.Uniform (0.1, 0.2)) () in
  for _ = 1 to 50 do
    Network.send net ~src:0 ~dst:1 "m"
  done;
  Engine.run e;
  List.iter
    (fun (t, _, _, _) ->
      if t < 0.1 || t >= 0.2 then Alcotest.fail "latency outside bounds")
    !log

let test_per_pair_latency () =
  let latency = Network.Per_pair (fun src dst -> float_of_int (src + dst)) in
  let e, net, log = make ~latency () in
  Network.send net ~src:1 ~dst:2 "m";
  Engine.run e;
  match !log with
  | [ (t, _, _, _) ] -> Alcotest.(check (float 1e-9)) "pair latency" 3.0 t
  | _ -> Alcotest.fail "one delivery expected"

let suite =
  ( "network",
    [
      Alcotest.test_case "delivery delay" `Quick test_delivery_delay;
      Alcotest.test_case "broadcast costs n-1" `Quick test_broadcast_count;
      Alcotest.test_case "self-send uncounted" `Quick test_self_send_uncounted;
      Alcotest.test_case "loss model" `Quick test_loss;
      Alcotest.test_case "interceptor verdicts" `Quick test_interceptor;
      Alcotest.test_case "crash and recover" `Quick test_crash_recover;
      Alcotest.test_case "crash catches in-flight" `Quick test_crash_in_flight;
      Alcotest.test_case "partition and heal" `Quick test_partition_heal;
      Alcotest.test_case "uniform latency bounds" `Quick test_uniform_latency;
      Alcotest.test_case "per-pair latency" `Quick test_per_pair_latency;
    ] )
