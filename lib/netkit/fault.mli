(** Fault injection for the live TCP stack.

    Mirrors the verdict surface of [Simkit.Network] — uniform loss,
    partitions, crash-stop, and an arbitrary per-frame interceptor —
    but applied to real frames on their way to real sockets, so the
    Section 6 recovery machinery can be exercised where it matters.

    One {!t} is normally shared by every node of an in-process
    {!Cluster}: senders consult it before handing a frame to the
    writer thread, which makes a [crash i] symmetric (node [i] can
    neither be heard nor heard from) without reaching into [i]'s
    process state. A "crashed" node keeps running its local timers —
    to its peers it is indistinguishable from a fail-stop crash, and
    the protocol's epoch machinery must cope with whatever it does
    when (if) it is recovered.

    All operations are thread-safe; the loss draw uses a seeded RNG so
    a chaos run is reproducible given its seed and schedule. *)

(** Decision for one frame, same shape as [Simkit.Network.verdict]. *)
type verdict =
  | Deliver  (** Hand to the writer thread normally. *)
  | Drop  (** Silently lose the frame (counted by the transport). *)
  | Delay of float  (** Hold the frame this many seconds first. *)

(** One step of a chaos schedule (see {!Cluster.chaos}). *)
type event =
  | Set_loss of float  (** Uniform i.i.d. frame-drop probability. *)
  | Crash of int  (** Sever a node from the network (crash-stop). *)
  | Recover of int
  | Restart of { node : int; after : float }
      (** Sever [node] now and automatically recover it [after]
          seconds later (on a helper thread — the caller's schedule is
          not blocked). Network-level only: the node's in-memory state
          survives the outage. A full process-style restart that
          rebuilds the node from its durable state directory is
          [Cluster]'s restart events. *)
  | Partition of int list list
      (** Frames between nodes in different groups are dropped; nodes
          absent from every group form an implicit extra group. *)
  | Heal  (** Remove any partition. *)

type schedule = (float * event) list
(** Events paired with wall-clock offsets (seconds from schedule
    start). *)

type t

val create : ?seed:int -> n:int -> unit -> t
(** A fault injector for nodes [0 .. n-1], initially transparent
    (no loss, no partition, nobody crashed). Node ids beyond [n]
    (dynamically joined members) are accepted by every operation;
    the internal tables grow on demand. *)

val n : t -> int

val set_loss : t -> float -> unit
val crash : t -> int -> unit
val recover : t -> int -> unit
val is_crashed : t -> int -> bool
val partition : t -> int list list -> unit
val heal : t -> unit

val set_interceptor : t -> (src:int -> dst:int -> string -> verdict) -> unit
(** Targeted fault hook consulted for every surviving frame (after
    connectivity and the loss draw); sees the encoded payload.
    Replaces any previous interceptor. *)

val clear_interceptor : t -> unit

val reachable : t -> src:int -> dst:int -> bool
(** Whether frames from [src] to [dst] currently pass the crash and
    partition filters. No loss draw, no interceptor: used by writer
    threads to re-check connectivity at write time for frames that
    were queued before a crash or partition landed. *)

val verdict : t -> src:int -> dst:int -> string -> verdict
(** Full decision for one frame: crash/partition, then the seeded loss
    draw, then the interceptor. *)

val drops : t -> int
(** Frames this injector has told callers to drop so far. *)

val apply : t -> event -> unit
val pp_event : Format.formatter -> event -> unit
