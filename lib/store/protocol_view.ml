open Dmutex

let capture (st : Protocol.state) : Store.view =
  let granted =
    match st.Protocol.token with
    | Some tk -> Qlist.Granted.merge st.Protocol.granted_known tk.Protocol.granted
    | None -> Array.copy st.Protocol.granted_known
  in
  {
    Store.epoch = st.Protocol.token_epoch;
    election = st.Protocol.election;
    enq_round = st.Protocol.enq_round;
    next_seq = st.Protocol.next_seq;
    granted;
    custody =
      (match st.Protocol.token with
      | Some tk -> Store.Holding { epoch = tk.Protocol.epoch }
      | None -> Store.No_token);
    (* Only committed (post-churn) views are worth persisting: the
       birth view is implied by the configuration, and a joiner's
       provisional singleton view must not shadow it. *)
    mview =
      (if st.Protocol.view.Protocol.vnum > 0 then
         Some
           ( st.Protocol.view.Protocol.vnum,
             List.map
               (fun (m : Protocol.member) -> (m.Protocol.mid, m.Protocol.maddr))
               st.Protocol.view.Protocol.vmembers )
       else None);
  }

let to_restored (v : Store.view) : Protocol.restored =
  {
    Protocol.r_epoch = v.Store.epoch;
    r_election = v.Store.election;
    r_enq_round = v.Store.enq_round;
    r_next_seq = v.Store.next_seq;
    r_granted = Array.copy v.Store.granted;
    r_had_token = (match v.Store.custody with
                   | Store.Holding _ -> true
                   | Store.No_token -> false);
    r_view = v.Store.mview;
  }

(* The trailing T_view firing makes the node re-announce its recovered
   membership to its own runtime (a [Membership] note) so the runner
   can point the transport and liveness monitor at the *current* view
   before any protocol traffic flows. *)
let view_kick = Types.Timer_fired Protocol.T_view

let restore cfg ~me (v : Store.view option) :
    Protocol.state * (Protocol.message, Protocol.timer) Types.input list =
  match v with
  | None ->
      (* Empty state directory on a restart: amnesia. The node comes
         back gated against token regeneration until resynchronized. *)
      (Protocol.rejoin cfg me, [ view_kick ])
  | Some v ->
      let r = to_restored v in
      let st = Protocol.rejoin_restored cfg me r in
      (* Durable custody means the token provably died with us (the
         store records No_token before a dispatched PRIVILEGE can hit
         the socket, so custody never over-claims). A self-addressed
         WARNING starts the Section 6 invalidation immediately instead
         of waiting for some requester's token timeout. *)
      let inputs =
        if r.Protocol.r_had_token && cfg.Types.Config.recovery then
          [ Types.Receive (me, Protocol.Warning) ]
        else []
      in
      (st, inputs @ [ view_kick ])
