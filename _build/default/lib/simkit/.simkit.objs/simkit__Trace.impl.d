lib/simkit/trace.ml: Format List
