(* See wfg.mli. The graph is tiny (nodes of a cluster), so plain
   association lists and a recursive DFS are the right weight — no
   per-scan allocation beyond the result. *)

type edge = { waiter : int; holder : int; lock : string }

type t = { edges : edge list }

let empty = { edges = [] }

let add_edges t ~lock pairs =
  {
    edges =
      List.fold_left
        (fun acc (waiter, holder) ->
          if waiter = holder then acc
          else { waiter; holder; lock } :: acc)
        t.edges pairs;
  }

let of_scan scan =
  List.fold_left (fun t (lock, pairs) -> add_edges t ~lock pairs) empty scan

let edges t = List.rev t.edges

let edge_count t = List.length t.edges

let successors t v =
  List.filter_map
    (fun e -> if e.waiter = v then Some e.holder else None)
    t.edges

let vertices t =
  List.sort_uniq compare
    (List.concat_map (fun e -> [ e.waiter; e.holder ]) t.edges)

(* DFS with the classic three colours: [`Gray] marks the current stack,
   so hitting a gray vertex closes a cycle; the gray path suffix from
   that vertex is the cycle itself. *)
let find_cycle t =
  let colour = Hashtbl.create 16 in
  let state v = Option.value ~default:`White (Hashtbl.find_opt colour v) in
  let rec dfs path v =
    match state v with
    | `Gray ->
        (* [path] is newest-first; the cycle is the prefix up to and
           including [v], reversed into wait order. *)
        let rec take acc = function
          | [] -> acc
          | u :: rest -> if u = v then v :: acc else take (u :: acc) rest
        in
        Some (take [] path)
    | `Black -> None
    | `White -> (
        Hashtbl.replace colour v `Gray;
        let r =
          List.fold_left
            (fun found s ->
              match found with Some _ -> found | None -> dfs (v :: path) s)
            None (successors t v)
        in
        match r with
        | Some _ -> r
        | None ->
            Hashtbl.replace colour v `Black;
            None)
  in
  List.fold_left
    (fun found v -> match found with Some _ -> found | None -> dfs [] v)
    None (vertices t)

let cycle_free t = find_cycle t = None

let pp_cycle ppf cycle =
  Format.fprintf ppf "%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       Format.pp_print_int)
    cycle

type obs = {
  o_edges : Registry.Gauge.handle;
  o_cycles : Registry.Counter.handle;
}

let obs reg =
  {
    o_edges = Registry.Gauge.get reg Names.wfg_edges;
    o_cycles = Registry.Counter.get reg Names.wfg_cycles_total;
  }

let record ?trace o t =
  Registry.Gauge.set o.o_edges (float_of_int (edge_count t));
  match find_cycle t with
  | None -> None
  | Some cycle ->
      Registry.Counter.incr o.o_cycles;
      (match trace with
      | Some sink ->
          Events.emit sink ~severity:Events.Warn
            ~fields:
              [
                ("cycle", Format.asprintf "%a" pp_cycle cycle);
                ("edges", string_of_int (edge_count t));
              ]
            "wfg.cycle"
      | None -> ());
      Some cycle
