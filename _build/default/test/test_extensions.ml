(* Extensions beyond the paper's text: the intermediate-load queueing
   model, the ASCII timeline renderer, CSV export, and the golden
   replay of the paper's Section 2.2 example. *)

open Dmutex

(* ------------------------- queueing model ------------------------ *)

let test_utilization () =
  let cfg = Basic.config ~n:10 () in
  Alcotest.(check (float 1e-9)) "rho at 0.2/node" 0.4
    (Analysis.utilization cfg ~rate:0.2);
  Alcotest.(check bool) "beyond capacity gives None" true
    (Analysis.predicted_delay cfg ~rate:1.0 = None)

let test_prediction_accuracy () =
  let cfg = Basic.config ~n:10 () in
  let module R = Sim_runner.Make (Basic) in
  List.iter
    (fun rate ->
      let o = R.run_poisson ~seed:3 ~requests:15_000 ~rate cfg in
      match Analysis.predicted_delay cfg ~rate with
      | Some p ->
          let err = abs_float (p -. o.mean_delay) /. o.mean_delay in
          Alcotest.(check bool)
            (Printf.sprintf "rate %.2f: predicted %.3f vs %.3f (err %.0f%%)"
               rate p o.mean_delay (100.0 *. err))
            true (err < 0.20)
      | None -> Alcotest.fail "unexpected capacity cutoff")
    [ 0.05; 0.2; 0.4 ]

let test_prediction_converges_to_eq3 () =
  let cfg = Basic.config ~n:10 () in
  match Analysis.predicted_delay cfg ~rate:1e-9 with
  | Some p ->
      (* At λ→0 the model is Eq. 3 with the residual-window refinement
         (T_req/2 instead of T_req). *)
      let expected =
        Analysis.light_load_service_time cfg -. (cfg.Types.Config.t_collect /. 2.0)
      in
      Alcotest.(check (float 1e-3)) "zero-load limit" expected p
  | None -> Alcotest.fail "zero load must have a steady state"

(* --------------------------- timeline ---------------------------- *)

let test_timeline_marks () =
  let trace = Simkit.Trace.create () in
  Simkit.Trace.set_enabled trace true;
  Simkit.Trace.add trace ~time:0.0 ~node:0 ~tag:"request" "";
  Simkit.Trace.add trace ~time:2.0 ~node:0 ~tag:"enter-cs" "";
  Simkit.Trace.add trace ~time:4.0 ~node:0 ~tag:"exit-cs" "";
  Simkit.Trace.add trace ~time:5.0 ~node:1 ~tag:"crash" "";
  let tl = Simkit.Timeline.create ~columns:40 ~n:2 trace in
  let s = Simkit.Timeline.to_string tl in
  Alcotest.(check bool) "has CS bar" true (String.contains s 'C');
  Alcotest.(check bool) "has request mark" true (String.contains s 'R');
  Alcotest.(check bool) "has crash mark" true (String.contains s 'X');
  (* Two lanes labelled. *)
  Alcotest.(check bool) "lane 0" true
    (String.length s > 0
    && Str_present.contains_substring s "node  0 |");
  Alcotest.(check bool) "lane 1" true
    (Str_present.contains_substring s "node  1 |")

let test_timeline_cs_span () =
  (* A CS from 25% to 50% of the range must fill roughly a quarter of
     the lane. *)
  let trace = Simkit.Trace.create () in
  Simkit.Trace.set_enabled trace true;
  Simkit.Trace.add trace ~time:0.0 ~node:0 ~tag:"request" "";
  Simkit.Trace.add trace ~time:2.5 ~node:0 ~tag:"enter-cs" "";
  Simkit.Trace.add trace ~time:5.0 ~node:0 ~tag:"exit-cs" "";
  Simkit.Trace.add trace ~time:10.0 ~node:0 ~tag:"request" "";
  let tl = Simkit.Timeline.create ~columns:80 ~n:1 trace in
  let s = Simkit.Timeline.to_string tl in
  let c_count =
    String.fold_left (fun acc ch -> if ch = 'C' then acc + 1 else acc) 0 s
  in
  Alcotest.(check bool)
    (Printf.sprintf "~20 C cells (%d)" c_count)
    true
    (c_count >= 17 && c_count <= 25)

let test_timeline_empty_trace () =
  let trace = Simkit.Trace.create () in
  let tl = Simkit.Timeline.create ~n:3 trace in
  let s = Simkit.Timeline.to_string tl in
  Alcotest.(check bool) "renders without events" true (String.length s > 0)

(* ------------------------------ CSV ------------------------------ *)

let test_csv_sweep () =
  let rows =
    [
      { Experiments.rate = 0.1;
        series = [ ("a", { Experiments.mean = 1.5; ci95 = 0.25 }) ] };
      { Experiments.rate = 0.2;
        series = [ ("a", { Experiments.mean = 2.5; ci95 = 0.5 }) ] };
    ]
  in
  let csv = Experiments.Csv.of_sweep rows in
  Alcotest.(check string) "csv"
    "x,a mean,a ci95\n0.1,1.5,0.25\n0.2,2.5,0.5\n" csv

let test_csv_quoting () =
  let rows =
    [ ("weird, \"name\"", { Experiments.mean = 1.0; ci95 = 0.0 },
       { Experiments.mean = 2.0; ci95 = 0.0 }) ]
  in
  let csv = Experiments.Csv.of_algorithms rows in
  Alcotest.(check bool) "quoted field" true
    (Str_present.contains_substring csv "\"weird, \"\"name\"\"\"")

let test_csv_write () =
  let dir = Filename.temp_file "dmutex" "" in
  Sys.remove dir;
  let path = Experiments.Csv.write ~dir ~name:"test" "a,b\n1,2\n" in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "roundtrip through disk" "a,b" line;
  Sys.remove path;
  Sys.rmdir dir

(* ------------------- golden Figure 2 replay ---------------------- *)

let test_figure2_golden () =
  (* The paper's Section 2.2 example with unit delays, nodes
     renumbered 0-4 (paper 1-5). The exact event schedule is pinned:
     a change to protocol timing semantics must show up here. *)
  let module R = Sim_runner.Make (Basic) in
  let cfg =
    { (Basic.config ~t_collect:1.0 ~n:5 ()) with
      Types.Config.t_msg = 1.0;
      t_exec = 1.0;
      t_forward = 1.0 }
  in
  let trace = Simkit.Trace.create () in
  Simkit.Trace.set_enabled trace true;
  let t = R.create ~seed:1 ~trace cfg in
  R.request t 1;
  (* paper node 2 *)
  R.request t 4;
  (* paper node 5 *)
  ignore
    (Simkit.Engine.schedule (R.engine t) ~delay:1.5 (fun _ -> R.request t 3));
  (* paper node 4, arrives during node 0's forwarding phase *)
  ignore
    (Simkit.Engine.schedule (R.engine t) ~delay:4.0 (fun _ -> R.request t 2));
  (* paper node 3, reaches the new arbiter's collection phase *)
  R.step_until t 20.0;
  let events =
    List.filter_map
      (fun (r : Simkit.Trace.record) ->
        match r.tag with
        | "enter-cs" -> Some (r.time, r.node)
        | _ -> None)
      (Simkit.Trace.records trace)
  in
  (* Paper's narrative: node 2 (our 1) first, then node 5 (our 4),
     then node 4 (our 3), then node 3 (our 2). *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "CS entries match the paper's Figure 2 schedule"
    [ (3.0, 1); (5.0, 4); (8.0, 3); (10.0, 2) ]
    events;
  let o = R.outcome t in
  Alcotest.(check int) "forwarded REQUEST(4) once" 1
    (match List.assoc_opt "forwarded" o.notes with Some v -> v | None -> 0)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "utilization + capacity cutoff" `Quick
        test_utilization;
      Alcotest.test_case "delay prediction within 20%" `Slow
        test_prediction_accuracy;
      Alcotest.test_case "prediction converges to Eq. 3" `Quick
        test_prediction_converges_to_eq3;
      Alcotest.test_case "timeline marks" `Quick test_timeline_marks;
      Alcotest.test_case "timeline CS span" `Quick test_timeline_cs_span;
      Alcotest.test_case "timeline empty trace" `Quick
        test_timeline_empty_trace;
      Alcotest.test_case "csv sweep format" `Quick test_csv_sweep;
      Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
      Alcotest.test_case "csv write to disk" `Quick test_csv_write;
      Alcotest.test_case "golden Figure 2 replay" `Quick test_figure2_golden;
    ] )
