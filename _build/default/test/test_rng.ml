open Simkit

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* Crude independence check: no long common run. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 4)

let test_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.(check_raises) "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_uniform_range () =
  let r = Rng.create 4 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform r in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform out of [0,1)"
  done

let mean_of n f =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_exponential_mean () =
  let r = Rng.create 5 in
  let m = mean_of 100_000 (fun () -> Rng.exponential r ~rate:2.0) in
  Alcotest.(check bool) "mean ~ 1/rate" true (abs_float (m -. 0.5) < 0.01)

let test_poisson_mean () =
  let r = Rng.create 6 in
  let m =
    mean_of 50_000 (fun () -> float_of_int (Rng.poisson r ~mean:3.5))
  in
  Alcotest.(check bool) "poisson mean" true (abs_float (m -. 3.5) < 0.1);
  let m =
    mean_of 20_000 (fun () -> float_of_int (Rng.poisson r ~mean:80.0))
  in
  Alcotest.(check bool) "poisson mean (normal approx)" true
    (abs_float (m -. 80.0) < 1.0)

let test_shuffle_permutation () =
  let r = Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_range =
  QCheck.Test.make ~name:"range stays inside bounds" ~count:500
    QCheck.(triple small_int (float_bound_exclusive 100.0) pos_float)
    (fun (seed, lo, width) ->
      QCheck.assume (width > 0.0 && Float.is_finite (lo +. width));
      let r = Rng.create seed in
      let v = Rng.range r lo (lo +. width) in
      v >= lo && v < lo +. width)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
      Alcotest.test_case "copy replays" `Quick test_copy;
      Alcotest.test_case "split independence" `Quick test_split_independent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "uniform range" `Quick test_uniform_range;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
      Alcotest.test_case "shuffle is a permutation" `Quick
        test_shuffle_permutation;
      QCheck_alcotest.to_alcotest prop_range;
    ] )
