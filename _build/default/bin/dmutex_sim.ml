(* Command-line driver for every experiment in the reproduction: the
   paper's figures (3-6), the analytic tables (Eqs. 1-6), the variant
   studies, the model checker, and free-form simulation runs. *)

open Cmdliner

let fmt = Format.std_formatter

(* Common options *)

let n_arg =
  Arg.(value & opt int 10 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")

let requests_arg default =
  Arg.(
    value & opt int default
    & info [ "r"; "requests" ]
        ~doc:"Critical-section executions per simulation point.")

let runs_arg =
  Arg.(
    value & opt int 3
    & info [ "runs" ] ~doc:"Independent replications per point (for CIs).")

let rates_arg =
  Arg.(
    value
    & opt (list float) Experiments.default_rates
    & info [ "rates" ] ~doc:"Per-node Poisson arrival rates to sweep.")

(* Figures *)

let csv_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-dir" ]
        ~doc:"Also write each table as a CSV file into this directory.")

let maybe_csv csv_dir name csv =
  match csv_dir with
  | None -> ()
  | Some dir ->
      let path = Experiments.Csv.write ~dir ~name csv in
      Format.fprintf fmt "(csv written to %s)@." path

let fig345_cmd =
  let run n requests runs rates csv_dir =
    let f3, f4, f5 = Experiments.fig345 ~n ~requests ~runs ~rates () in
    Experiments.print_sweep ~xlabel:"lambda" fmt
      ~title:"Figure 3: average messages per CS" f3;
    maybe_csv csv_dir "fig3_messages" (Experiments.Csv.of_sweep f3);
    Format.fprintf fmt "@.";
    Experiments.print_sweep ~xlabel:"lambda" fmt
      ~title:"Figure 4: average delay per CS (s)" f4;
    maybe_csv csv_dir "fig4_delay" (Experiments.Csv.of_sweep f4);
    Format.fprintf fmt "@.";
    Experiments.print_sweep ~xlabel:"lambda" fmt
      ~title:"Figure 5: fraction of forwarded messages" f5;
    maybe_csv csv_dir "fig5_forwarded" (Experiments.Csv.of_sweep f5);
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Regenerate Figures 3, 4 and 5 (basic algorithm, collection \
          phase 0.1 vs 0.2) from one sweep.")
    Term.(
      const run $ n_arg $ requests_arg 50_000 $ runs_arg $ rates_arg
      $ csv_dir_arg)

let fig6_cmd =
  let run n requests runs rates csv_dir =
    let rows = Experiments.fig6_comparison ~n ~requests ~runs ~rates () in
    Experiments.print_sweep ~xlabel:"lambda" fmt
      ~title:
        "Figure 6: messages per CS, this paper vs Ricart-Agrawala vs \
         Singhal"
      rows;
    maybe_csv csv_dir "fig6_comparison" (Experiments.Csv.of_sweep rows);
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Regenerate Figure 6 (comparison).")
    Term.(
      const run $ n_arg $ requests_arg 50_000 $ runs_arg $ rates_arg
      $ csv_dir_arg)

(* Analytic tables *)

let tables_cmd =
  let run requests runs =
    Experiments.print_bounds fmt
      ~title:"Eq. 1: light-load messages per CS = (N^2-1)/N"
      (Experiments.table_light_load ~requests ~runs ());
    Format.fprintf fmt "@.";
    Experiments.print_bounds fmt
      ~title:"Eq. 4: heavy-load messages per CS = 3 - 2/N"
      (Experiments.table_heavy_load ~requests ~runs ());
    Format.fprintf fmt "@.";
    let light, heavy = Experiments.table_service_time ~requests ~runs () in
    Experiments.print_bounds fmt
      ~title:"Eq. 3: light-load service time" light;
    Format.fprintf fmt "@.";
    Experiments.print_bounds fmt
      ~title:"Eq. 6: heavy-load service time (shape only; see EXPERIMENTS.md)"
      heavy;
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Analytic bounds (Eqs. 1-6) vs measured values, across N.")
    Term.(const run $ requests_arg 30_000 $ runs_arg)

let monitor_cmd =
  let run n requests runs =
    Experiments.print_sweep ~xlabel:"lambda" fmt
      ~title:
        "Section 4: starvation-free variant message overhead (paper: ~+1 \
         at low load, ~+0 at high load)"
      (Experiments.table_monitor_overhead ~n ~requests ~runs ());
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Monitored (starvation-free) variant overhead.")
    Term.(const run $ n_arg $ requests_arg 30_000 $ runs_arg)

let recovery_cmd =
  let run n =
    Experiments.print_recovery fmt (Experiments.table_recovery ~n ());
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Section 6 fault-injection drills.")
    Term.(const run $ n_arg)

let algorithms_cmd =
  let run n requests runs =
    Experiments.print_algorithms fmt
      (Experiments.table_all_algorithms ~n ~requests ~runs ());
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "algorithms"
       ~doc:"Messages per CS for all seven implemented algorithms.")
    Term.(const run $ n_arg $ requests_arg 30_000 $ runs_arg)

let balance_cmd =
  let run n requests =
    Experiments.print_balance fmt
      (Experiments.table_load_balance ~n ~requests ());
    Format.fprintf fmt "@.";
    Experiments.print_fairness fmt
      (Experiments.table_fairness ~requests:(requests / 2) ());
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:"Section 5.1: load-balance and strict-fairness studies.")
    Term.(const run $ n_arg $ requests_arg 30_000)

let topology_cmd =
  let run n requests =
    Experiments.print_topology fmt
      (Experiments.table_topology ~n ~requests ());
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:
         "Topology sensitivity: message counts are invariant, delay           scales with hop distance (Section 2.1's 'no assumptions').")
    Term.(const run $ n_arg $ requests_arg 20_000)

let ablation_cmd =
  let run n requests runs =
    Experiments.print_sweep ~xlabel:"Tcoll" fmt
      ~title:"Ablation: collection-phase length at lambda=0.2"
      (Experiments.table_collection_tuning ~n ~requests ~runs ());
    Format.fprintf fmt "@.";
    Experiments.print_sweep ~xlabel:"lambda" fmt
      ~title:"Ablation: Section 3.1 NEW-ARBITER suppression"
      (Experiments.table_skip_broadcast ~n ~requests ~runs ());
    Format.fprintf fmt "@.";
    Experiments.print_sweep ~xlabel:"Tfwd" fmt
      ~title:"Ablation: forwarding-phase length at lambda=0.2"
      (Experiments.table_forwarding_tuning ~n ~requests ~runs ());
    Format.fprintf fmt "@."
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations from DESIGN.md.")
    Term.(const run $ n_arg $ requests_arg 30_000 $ runs_arg)

let all_cmd =
  let dir_arg =
    Arg.(
      value & opt string "results"
      & info [ "out" ] ~doc:"Directory for CSV files and gnuplot scripts.")
  in
  let run n requests runs rates dir =
    let save name csv = ignore (Experiments.Csv.write ~dir ~name csv) in
    Format.fprintf fmt "running all experiments into %s/ ...@." dir;
    let f3, f4, f5 = Experiments.fig345 ~n ~requests ~runs ~rates () in
    save "fig3_messages" (Experiments.Csv.of_sweep f3);
    save "fig4_delay" (Experiments.Csv.of_sweep f4);
    save "fig5_forwarded" (Experiments.Csv.of_sweep f5);
    save "fig6_comparison"
      (Experiments.Csv.of_sweep
         (Experiments.fig6_comparison ~n ~requests ~runs ~rates ()));
    save "table_light_load"
      (Experiments.Csv.of_bounds
         (Experiments.table_light_load ~requests:(requests / 2) ~runs ()));
    save "table_heavy_load"
      (Experiments.Csv.of_bounds
         (Experiments.table_heavy_load ~requests ~runs ()));
    let light, heavy =
      Experiments.table_service_time ~requests:(requests / 2) ~runs ()
    in
    save "table_service_time_light" (Experiments.Csv.of_bounds light);
    save "table_service_time_heavy" (Experiments.Csv.of_bounds heavy);
    save "table_monitor"
      (Experiments.Csv.of_sweep
         (Experiments.table_monitor_overhead ~n ~requests:(requests / 2)
            ~runs ()));
    save "table_recovery"
      (Experiments.Csv.of_recovery (Experiments.table_recovery ~n ()));
    save "table_all_algorithms"
      (Experiments.Csv.of_algorithms
         (Experiments.table_all_algorithms ~n ~requests:(requests / 2) ~runs ()));
    save "table_load_balance"
      (Experiments.Csv.of_balance
         (Experiments.table_load_balance ~n ~requests:(requests / 2) ()));
    save "table_topology"
      (Experiments.Csv.of_topology
         (Experiments.table_topology ~n ~requests:(requests / 2) ()));
    save "table_delay_model"
      (Experiments.Csv.of_sweep
         (Experiments.table_delay_model ~n ~requests:(requests / 2) ~runs ()));
    (* A minimal gnuplot script for the figures. *)
    let gp =
      String.concat "\n"
        [
          "set datafile separator ','";
          "set key autotitle columnhead; set key left top";
          "set logscale x; set xlabel 'per-node arrival rate'";
          "set terminal pngcairo size 900,600";
          "set output 'fig3_messages.png'";
          "set ylabel 'messages per CS'";
          "plot 'fig3_messages.csv' using 1:2 with linespoints, \\";
          "     '' using 1:4 with linespoints";
          "set output 'fig6_comparison.png'";
          "plot 'fig6_comparison.csv' using 1:2 with linespoints, \\";
          "     '' using 1:4 with linespoints, '' using 1:6 with linespoints";
          "set output 'fig5_forwarded.png'";
          "set ylabel 'forwarded fraction'";
          "plot 'fig5_forwarded.csv' using 1:2 with linespoints, \\";
          "     '' using 1:4 with linespoints";
          "";
        ]
    in
    let oc = open_out (Filename.concat dir "plots.gp") in
    output_string oc gp;
    close_out oc;
    Format.fprintf fmt "done: CSVs + plots.gp written to %s/@." dir
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every experiment and write machine-readable CSVs plus a \
          gnuplot script.")
    Term.(const run $ n_arg $ requests_arg 50_000 $ runs_arg $ rates_arg
          $ dir_arg)

(* Model checking *)

let check_cmd =
  let variant_arg =
    Arg.(
      value & opt string "basic"
      & info [ "variant" ]
          ~doc:"Algorithm to check: basic | monitored | suzuki-kasami | \
                raymond | ricart-agrawala | lamport | singhal | maekawa | \
                tree-quorum | central.")
  in
  let r_arg =
    Arg.(
      value & opt int 1
      & info [ "requests-per-node" ] ~doc:"CS requests injectable per node.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-states" ] ~doc:"State exploration budget.")
  in
  let fifo_arg =
    Arg.(
      value & flag
      & info [ "fifo" ]
          ~doc:"Restrict channels to in-order delivery (e.g. Lamport's \
                assumption).")
  in
  let random_arg =
    Arg.(
      value & opt (some int) None
      & info [ "random" ]
          ~doc:"Monte-Carlo mode: this many random walks instead of \
                exhaustive BFS.")
  in
  let run variant n r max_states fifo random =
    let check (type s m tm)
        (module A : Dmutex.Types.ALGO
          with type state = s and type message = m and type timer = tm) cfg =
      let module M = Mcheck.Make (A) in
      match random with
      | Some walks ->
          Format.asprintf "%a" M.pp_result
            (M.run_random ~walks ~fifo ~requests_per_node:r cfg)
      | None ->
          Format.asprintf "%a" M.pp_result
            (M.run ~max_states ~fifo ~requests_per_node:r cfg)
    in
    let basic_cfg () =
      let base = Dmutex.Basic.config ~n () in
      { base with Dmutex.Types.Config.max_retries = 0 }
    in
    let default = Dmutex.Types.Config.default ~n in
    let result =
      match variant with
      | "basic" -> check (module Dmutex.Basic) (basic_cfg ())
      | "monitored" ->
          check
            (module Dmutex.Monitored)
            { (Dmutex.Monitored.config ~n ()) with
              Dmutex.Types.Config.max_retries = 2 }
      | "suzuki-kasami" -> check (module Baselines.Suzuki_kasami) default
      | "raymond" -> check (module Baselines.Raymond) default
      | "ricart-agrawala" -> check (module Baselines.Ricart_agrawala) default
      | "lamport" -> check (module Baselines.Lamport) default
      | "singhal" -> check (module Baselines.Singhal) default
      | "maekawa" -> check (module Baselines.Maekawa) default
      | "tree-quorum" -> check (module Baselines.Tree_quorum) default
      | "central" -> check (module Baselines.Central_server) default
      | other -> Printf.sprintf "unknown variant %S" other
    in
    Format.fprintf fmt "%s@." result
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check mutual exclusion and deadlock freedom on a small \
          configuration (exhaustive BFS, FIFO-restricted, or Monte-Carlo).")
    Term.(
      const run $ variant_arg
      $ Arg.(value & opt int 2 & info [ "n"; "nodes" ] ~doc:"Nodes.")
      $ r_arg $ max_states_arg $ fifo_arg $ random_arg)

(* Free-form run *)

let run_cmd =
  let rate_arg =
    Arg.(value & opt float 0.2 & info [ "rate" ] ~doc:"Per-node rate.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the event trace.")
  in
  let run n requests rate seed trace_on =
    let module R = Dmutex.Sim_runner.Make (Dmutex.Basic) in
    let cfg = Dmutex.Basic.config ~n () in
    let trace = Simkit.Trace.create ~capacity:100_000 () in
    Simkit.Trace.set_enabled trace trace_on;
    let o = R.run_poisson ~seed ~requests ~rate ~trace cfg in
    if trace_on then begin
      Format.fprintf fmt "%a@." Simkit.Trace.pp trace;
      Format.fprintf fmt "@.%a@." Simkit.Timeline.pp
        (Simkit.Timeline.create ~n trace)
    end;
    Format.fprintf fmt "%a@." Dmutex.Sim_runner.pp_outcome o
  in
  Cmd.v
    (Cmd.info "run" ~doc:"One simulation of the basic algorithm.")
    Term.(
      const run $ n_arg $ requests_arg 10_000 $ rate_arg $ seed_arg
      $ trace_arg)

let example_cmd =
  (* The paper's Figure 2 walk-through: 5 nodes, requests from 2, 4, 5
     (our 1, 3, 4), printed as an event trace. *)
  let run () =
    let module R = Dmutex.Sim_runner.Make (Dmutex.Basic) in
    let cfg =
      { (Dmutex.Basic.config ~t_collect:1.0 ~n:5 ()) with
        Dmutex.Types.Config.t_msg = 1.0;
        t_exec = 1.0;
        t_forward = 1.0 }
    in
    let trace = Simkit.Trace.create () in
    Simkit.Trace.set_enabled trace true;
    let t = R.create ~seed:1 ~trace cfg in
    R.request t 1;
    R.request t 4;
    ignore
      (Simkit.Engine.schedule (R.engine t) ~delay:1.5 (fun _ -> R.request t 3));
    ignore
      (Simkit.Engine.schedule (R.engine t) ~delay:4.0 (fun _ -> R.request t 2));
    R.step_until t 20.0;
    Format.fprintf fmt
      "Figure 2 walk-through (nodes renumbered 0-4; unit delays):@.%a@."
      Simkit.Trace.pp trace;
    Format.fprintf fmt "@.%a@."
      Simkit.Timeline.pp
      (Simkit.Timeline.create ~n:5 trace)
  in
  Cmd.v
    (Cmd.info "example"
       ~doc:"Replay the paper's Section 2.2 illustrative example.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "dmutex_sim" ~version:"1.0.0"
       ~doc:
         "Reproduction driver for 'A New Token Passing Distributed Mutual \
          Exclusion Algorithm' (ICDCS 1996).")
    [
      fig345_cmd;
      fig6_cmd;
      tables_cmd;
      monitor_cmd;
      recovery_cmd;
      algorithms_cmd;
      all_cmd;
      balance_cmd;
      topology_cmd;
      ablation_cmd;
      check_cmd;
      run_cmd;
      example_cmd;
    ]

let () = exit (Cmd.eval main)
