(* Each baseline: safety, liveness, and the message counts the
   literature attributes to it. *)

open Dmutex

let check_correct name (o : Sim_runner.outcome) =
  Alcotest.(check int) (name ^ ": no violations") 0 o.safety_violations;
  Alcotest.(check bool) (name ^ ": liveness") true (o.unserved <= o.n)

let n = 10
let cfg = Types.Config.default ~n

let test_central () =
  let module R = Sim_runner.Make (Baselines.Central_server) in
  let low = R.run_poisson ~seed:1 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "central" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* 3 messages unless the requester is the server: 3 * (N-1)/N. *)
  Alcotest.(check bool)
    (Printf.sprintf "~2.7 messages (%.2f)" low.messages_per_cs)
    true
    (abs_float (low.messages_per_cs -. 2.7) < 0.1);
  let sat = R.run_saturated ~seed:1 ~requests:10_000 cfg in
  check_correct "central sat" sat

let test_suzuki_kasami () =
  let module R = Sim_runner.Make (Baselines.Suzuki_kasami) in
  let low = R.run_poisson ~seed:2 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "suzuki" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* N messages (N-1 broadcast + token) unless holder: ~ (N)(1-1/N). *)
  Alcotest.(check bool)
    (Printf.sprintf "~9 messages low (%.2f)" low.messages_per_cs)
    true
    (abs_float (low.messages_per_cs -. 9.0) < 0.5);
  let sat = R.run_saturated ~seed:2 ~requests:10_000 cfg in
  check_correct "suzuki sat" sat;
  Alcotest.(check bool)
    (Printf.sprintf "~N messages at saturation (%.2f)" sat.messages_per_cs)
    true
    (sat.messages_per_cs > 9.0 && sat.messages_per_cs < 10.5)

let test_ricart_agrawala () =
  let module R = Sim_runner.Make (Baselines.Ricart_agrawala) in
  let low = R.run_poisson ~seed:3 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "ricart" low;
  Alcotest.(check (float 0.01)) "exactly 2(N-1) low" 18.0 low.messages_per_cs;
  let sat = R.run_saturated ~seed:3 ~requests:10_000 cfg in
  check_correct "ricart sat" sat;
  Alcotest.(check bool) "2(N-1) at saturation" true
    (abs_float (sat.messages_per_cs -. 18.0) < 0.1)

let test_raymond () =
  let module R = Sim_runner.Make (Baselines.Raymond) in
  let low = R.run_poisson ~seed:4 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "raymond" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* O(log N) at low load for the binary tree. *)
  Alcotest.(check bool)
    (Printf.sprintf "low load O(log N) (%.2f)" low.messages_per_cs)
    true
    (low.messages_per_cs < 8.0);
  let sat = R.run_saturated ~seed:4 ~requests:10_000 cfg in
  check_correct "raymond sat" sat;
  (* The paper quotes "approximately 4 at high loads". *)
  Alcotest.(check bool)
    (Printf.sprintf "~4 at saturation (%.2f)" sat.messages_per_cs)
    true
    (sat.messages_per_cs < 4.5)

let test_singhal () =
  let module R = Sim_runner.Make (Baselines.Singhal) in
  let low = R.run_poisson ~seed:5 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "singhal" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* Dynamic: cheaper than Ricart-Agrawala at low load... *)
  Alcotest.(check bool)
    (Printf.sprintf "below RA at low load (%.2f)" low.messages_per_cs)
    true
    (low.messages_per_cs < 14.0);
  let sat = R.run_saturated ~seed:5 ~requests:10_000 cfg in
  check_correct "singhal sat" sat;
  (* ...and converges to ~2(N-1) at saturation. *)
  Alcotest.(check bool)
    (Printf.sprintf "~2(N-1) at saturation (%.2f)" sat.messages_per_cs)
    true
    (abs_float (sat.messages_per_cs -. 18.0) < 1.0)

let test_maekawa () =
  let module R = Sim_runner.Make (Baselines.Maekawa) in
  let low = R.run_poisson ~seed:6 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "maekawa" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* 3-5 sqrt(N) band: sqrt(10) ~ 3.16 so [9.5, 17]. *)
  Alcotest.(check bool)
    (Printf.sprintf "within the 3-5 sqrtN band (%.2f)" low.messages_per_cs)
    true
    (low.messages_per_cs > 9.0 && low.messages_per_cs < 17.5);
  let sat = R.run_saturated ~seed:6 ~requests:10_000 cfg in
  check_correct "maekawa sat" sat;
  Alcotest.(check bool)
    (Printf.sprintf "saturation in band (%.2f)" sat.messages_per_cs)
    true
    (sat.messages_per_cs > 9.0 && sat.messages_per_cs < 17.5)

let test_lamport () =
  let module R = Sim_runner.Make (Baselines.Lamport) in
  let low = R.run_poisson ~seed:7 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "lamport" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* Exactly 3(N-1): request broadcast + N-1 acks + release broadcast. *)
  Alcotest.(check (float 0.05)) "3(N-1) at low load" 27.0 low.messages_per_cs;
  let sat = R.run_saturated ~seed:7 ~requests:10_000 cfg in
  check_correct "lamport sat" sat;
  Alcotest.(check bool)
    (Printf.sprintf "~3(N-1) at saturation (%.2f)" sat.messages_per_cs)
    true
    (abs_float (sat.messages_per_cs -. 27.0) < 0.5)

let test_maekawa_quorums () =
  (* Pairwise intersection for assorted n, including non-squares. *)
  List.iter
    (fun n ->
      let qs = Baselines.Maekawa.quorums n in
      Array.iteri
        (fun i qi ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d: %d in own quorum" n i)
            true (List.mem i qi);
          Array.iteri
            (fun j qj ->
              let inter = List.exists (fun x -> List.mem x qj) qi in
              if not inter then
                Alcotest.fail
                  (Printf.sprintf "n=%d: quorums %d and %d disjoint" n i j))
            qs)
        qs)
    [ 2; 3; 4; 5; 7; 9; 10; 13; 16; 17; 25 ]

let test_tree_quorum () =
  let module R = Sim_runner.Make (Baselines.Tree_quorum) in
  let low = R.run_poisson ~seed:8 ~requests:5_000 ~rate:0.05 cfg in
  check_correct "tree-quorum" low;
  Alcotest.(check int) "all served" 0 low.unserved;
  (* Path quorums are O(log N): cheaper than Maekawa's 2*sqrt(N)-1
     grid at the same N. *)
  let module RM = Sim_runner.Make (Baselines.Maekawa) in
  let mk = RM.run_poisson ~seed:8 ~requests:5_000 ~rate:0.05 cfg in
  Alcotest.(check bool)
    (Printf.sprintf "cheaper than maekawa at low load (%.2f vs %.2f)"
       low.messages_per_cs mk.messages_per_cs)
    true
    (low.messages_per_cs < mk.messages_per_cs);
  let sat = R.run_saturated ~seed:8 ~requests:10_000 cfg in
  check_correct "tree-quorum sat" sat

let test_tree_quorum_rule () =
  (* The TOCS'91 substitution rule, spot checks on n=7. *)
  let q ?failed n = Baselines.Tree_quorum.quorum ?failed n in
  Alcotest.(check (option (list int))) "no failures: a root path"
    (Some [ 0; 1; 3 ]) (q 7);
  Alcotest.(check (option (list int))) "root failed: both subtree paths"
    (Some [ 1; 3; 2; 5 ])
    (q ~failed:(fun i -> i = 0) 7);
  Alcotest.(check (option (list int))) "interior failure substituted"
    (Some [ 0; 3; 4 ])
    (q ~failed:(fun i -> i = 1) 7);
  (* All interior nodes dead: the rule still assembles the leaf
     front. *)
  Alcotest.(check (option (list int))) "survives losing every interior node"
    (Some [ 3; 4; 5; 6 ])
    (q ~failed:(fun i -> i <= 2) 7);
  (* Root plus one whole subtree dead: no quorum can be formed. *)
  Alcotest.(check bool) "fails when a full subtree is gone" true
    (q ~failed:(fun i -> i = 0 || i = 3 || i = 4) 7 = None)

let prop_tree_quorum_intersection =
  (* The paper's theorem: any two constructible quorums intersect,
     even under different failure views. *)
  QCheck.Test.make ~name:"tree quorums intersect under failures" ~count:500
    QCheck.(triple (int_range 1 31) (small_list (int_range 0 30))
              (small_list (int_range 0 30)))
    (fun (n, dead_a, dead_b) ->
      let failed dead i = List.mem i dead in
      match
        ( Baselines.Tree_quorum.quorum ~failed:(failed dead_a) n,
          Baselines.Tree_quorum.quorum ~failed:(failed dead_b) n )
      with
      | Some qa, Some qb -> List.exists (fun x -> List.mem x qb) qa
      | _ -> true (* no quorum constructible: vacuous *))

let test_paper_ordering_at_saturation () =
  (* The paper's headline comparison: new algorithm < Raymond <
     Suzuki-Kasami < Ricart-Agrawala at high load. *)
  let module RB = Sim_runner.Make (Basic) in
  let module RRay = Sim_runner.Make (Baselines.Raymond) in
  let module RSK = Sim_runner.Make (Baselines.Suzuki_kasami) in
  let module RRA = Sim_runner.Make (Baselines.Ricart_agrawala) in
  let b = (RB.run_saturated ~seed:7 ~requests:10_000 (Basic.config ~n ())).messages_per_cs in
  let ray = (RRay.run_saturated ~seed:7 ~requests:10_000 cfg).messages_per_cs in
  let sk = (RSK.run_saturated ~seed:7 ~requests:10_000 cfg).messages_per_cs in
  let ra = (RRA.run_saturated ~seed:7 ~requests:10_000 cfg).messages_per_cs in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f < %.2f < %.2f < %.2f" b ray sk ra)
    true
    (b < ray && ray < sk && sk < ra)

let test_fig6_crossover () =
  (* Figure 6: Singhal's dynamic algorithm wins only at very low
     loads; the paper's algorithm wins everywhere else. *)
  let module RB = Sim_runner.Make (Basic) in
  let module RS = Sim_runner.Make (Baselines.Singhal) in
  let basic_cfg = Basic.config ~n () in
  let at rate =
    ( (RB.run_poisson ~seed:8 ~requests:5_000 ~rate basic_cfg).messages_per_cs,
      (RS.run_poisson ~seed:8 ~requests:5_000 ~rate cfg).messages_per_cs )
  in
  let b_hi, s_hi = at 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "new wins at high load (%.2f vs %.2f)" b_hi s_hi)
    true (b_hi < s_hi)

let suite =
  ( "baselines",
    [
      Alcotest.test_case "central server" `Quick test_central;
      Alcotest.test_case "suzuki-kasami" `Quick test_suzuki_kasami;
      Alcotest.test_case "ricart-agrawala" `Quick test_ricart_agrawala;
      Alcotest.test_case "raymond" `Quick test_raymond;
      Alcotest.test_case "singhal dynamic" `Quick test_singhal;
      Alcotest.test_case "maekawa" `Quick test_maekawa;
      Alcotest.test_case "lamport" `Quick test_lamport;
      Alcotest.test_case "tree-quorum" `Quick test_tree_quorum;
      Alcotest.test_case "tree-quorum substitution rule" `Quick
        test_tree_quorum_rule;
      QCheck_alcotest.to_alcotest prop_tree_quorum_intersection;
      Alcotest.test_case "maekawa quorum intersection" `Quick
        test_maekawa_quorums;
      Alcotest.test_case "paper's saturation ordering" `Slow
        test_paper_ordering_at_saturation;
      Alcotest.test_case "figure 6 winner at high load" `Slow
        test_fig6_crossover;
    ] )
