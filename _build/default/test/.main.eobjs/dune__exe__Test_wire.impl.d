test/test_wire.ml: Alcotest Array Dmutex List Protocol QCheck QCheck_alcotest Qlist String Wire
